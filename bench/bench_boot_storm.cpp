// §V-A vs §V-B — the prepopulated/dynamic trade-off at boot and VM-start.
//
// Prepopulated: the initial path computation covers every VF LID (larger
// PCt, larger LFT distribution), but starting a VM costs nothing on the
// network. Dynamic: minimal initial configuration, but every VM start sends
// one SMP per switch. This bench boots both schemes on the same fabric and
// then starts a storm of VMs, reporting both halves; it also prints the
// §V-A LID budget arithmetic (17 LIDs/hypervisor -> 2891 hypervisors).
#include <benchmark/benchmark.h>

#include "bench/common.hpp"
#include "model/cost.hpp"

namespace {

using namespace ibvs;

void print_boot_comparison() {
  std::printf("\nBoot + VM-start cost, virtualized 324-node tree, 18 "
              "hypervisors x 16 VFs\n");
  std::printf("%-24s %10s %12s %12s | %12s %14s\n", "scheme", "boot LIDs",
              "boot PCt(ms)", "boot SMPs", "VM-start SMPs", "(48 VMs total)");
  bench::rule(96);
  for (const auto scheme :
       {core::LidScheme::kPrepopulated, core::LidScheme::kDynamic}) {
    auto b = bench::VirtualBench::make(scheme, 18, 16);
    const std::size_t boot_lids = b.sm->lids().count();
    // make() just booted: PCt comes from the routing result, boot SMPs from
    // the transport counters (no VM has started yet).
    const double pc_ms = b.sm->routing_result().compute_seconds * 1e3;
    const auto boot_smps = b.sm->transport().counters().lft_block_writes;

    std::uint64_t storm_smps = 0;
    for (int i = 0; i < 48; ++i) {
      storm_smps += b.vsf->create_vm().lft_smps;
    }
    std::printf("%-24s %10zu %12.3f %12llu | %12llu %14s\n",
                core::to_string(scheme).c_str(), boot_lids, pc_ms,
                static_cast<unsigned long long>(boot_smps),
                static_cast<unsigned long long>(storm_smps), "");
  }
  bench::rule(96);

  const auto limits = model::prepopulated_limits(16);
  std::printf(
      "Prepopulated LID budget (§V-A, 16 VFs/hypervisor): %zu LIDs per "
      "hypervisor ->\n  max %zu hypervisors, max %zu VMs in one subnet "
      "(unicast LID limit %zu).\n\n",
      limits.lids_per_hypervisor, limits.max_hypervisors, limits.max_vms,
      kUnicastLidCount);
}

void BM_CreateVmPrepopulated(benchmark::State& state) {
  auto b = bench::VirtualBench::make(core::LidScheme::kPrepopulated, 18, 16);
  for (auto _ : state) {
    auto report = b.vsf->create_vm(0);
    benchmark::DoNotOptimize(report.lid);
    state.PauseTiming();
    b.vsf->destroy_vm(report.vm);
    state.ResumeTiming();
  }
}
BENCHMARK(BM_CreateVmPrepopulated)->Unit(benchmark::kMicrosecond);

void BM_CreateVmDynamic(benchmark::State& state) {
  auto b = bench::VirtualBench::make(core::LidScheme::kDynamic, 18, 16);
  for (auto _ : state) {
    auto report = b.vsf->create_vm(0);
    benchmark::DoNotOptimize(report.lid);
    state.PauseTiming();
    b.vsf->destroy_vm(report.vm);
    state.ResumeTiming();
  }
}
BENCHMARK(BM_CreateVmDynamic)->Unit(benchmark::kMicrosecond);

/// Boot path computation with and without prepopulated VF LIDs — the PCt
/// asymmetry of §V-A/§V-B, measured end to end.
void BM_BootPathComputation(benchmark::State& state) {
  const auto scheme = static_cast<core::LidScheme>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Fabric fabric;
    auto built =
        topology::build_paper_fat_tree(fabric, topology::PaperFatTree::k324);
    auto hyps = core::attach_hypervisors(fabric, built.host_slots, 16, 18);
    const NodeId sm_node = fabric.add_ca("sm");
    fabric.connect(sm_node, 1, built.host_slots[18].leaf,
                   built.host_slots[18].port);
    sm::SubnetManager smgr(
        fabric, sm_node, routing::make_engine(routing::EngineKind::kFatTree));
    core::VSwitchFabric vsf(smgr, hyps, scheme);
    state.ResumeTiming();
    auto report = vsf.boot();
    benchmark::DoNotOptimize(report.path_computation_seconds);
  }
  state.SetLabel(core::to_string(scheme));
}
BENCHMARK(BM_BootPathComputation)
    ->Arg(static_cast<int>(core::LidScheme::kPrepopulated))
    ->Arg(static_cast<int>(core::LidScheme::kDynamic))
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const auto metrics_out = ibvs::bench::consume_metrics_out(argc, argv);
  const auto trace_out = ibvs::bench::consume_trace_out(argc, argv);
  ibvs::bench::consume_threads(argc, argv);
  print_boot_comparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  ibvs::bench::dump_metrics(metrics_out);
  ibvs::bench::dump_trace(trace_out);
  return 0;
}
