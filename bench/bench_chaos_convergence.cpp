// Chaos re-convergence under MAD loss (the fault-injection experiment).
//
// The paper's reconfiguration costs assume a healthy fabric; this bench
// measures what recovery costs when the fabric is not healthy. A seeded
// chaos run — link cuts, flaps, switch death/revival, interleaved live
// migrations — executes against the paper's fat-trees while every MAD
// traversal is dropped with probability p. Reported per (tree, p): the LFT
// SMPs spent re-converging, the resends and response timeouts the
// reliable-MAD layer paid, and the *simulated* elapsed time under the
// batched timing model — the same clock the reconfiguration benches use,
// so degraded-fabric recovery is directly comparable to the healthy-path
// numbers. Identical seeds produce identical tables, digest included.
#include <benchmark/benchmark.h>

#include <string_view>

#include "bench/common.hpp"
#include "inject/chaos.hpp"

namespace {

using namespace ibvs;

std::uint64_t g_seed = 7;  ///< default; override with --seed
bool g_migration_faults = false;  ///< --migration-faults
bool g_topology_faults = false;   ///< --topology-faults

/// Strips the valueless flag `name` from argv. --migration-faults adds
/// destination/master kills mid-migration (rollback + journal replay);
/// --topology-faults adds live attach/detach deltas plus their fault
/// twins (switch killed mid-attach, master killed mid-detach).
bool consume_flag(int& argc, char** argv, std::string_view name) {
  bool found = false;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == name) {
      found = true;
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;
  argv[argc] = nullptr;
  return found;
}

constexpr double kFaultRates[] = {0.0, 0.01, 0.05, 0.20};
constexpr std::size_t kSteps = 12;

/// A booted, virtualized subnet on the requested paper tree (Min-Hop: the
/// routing must survive arbitrarily degraded topologies, which the
/// fat-tree engine does not promise).
bench::VirtualBench make_tree(topology::PaperFatTree which) {
  bench::VirtualBench b;
  b.built = topology::build_paper_fat_tree(b.fabric, which);
  std::vector<topology::HostSlot> spread;
  const std::size_t per_leaf =
      b.built.host_slots.size() / b.built.leaves.size();
  const std::size_t hyps_count = 18;
  for (std::size_t i = 0; spread.size() < hyps_count + 1; ++i) {
    const std::size_t leaf = i / 2;
    const std::size_t idx = leaf * per_leaf + (i % 2);
    if (idx >= b.built.host_slots.size()) break;
    spread.push_back(b.built.host_slots[idx]);
  }
  b.hyps = core::attach_hypervisors(b.fabric, spread, /*num_vfs=*/2,
                                    hyps_count);
  const auto& slot = spread.at(hyps_count);
  const NodeId sm_node = b.fabric.add_ca("sm-node");
  b.fabric.connect(sm_node, 1, slot.leaf, slot.port);
  b.sm = std::make_unique<sm::SubnetManager>(
      b.fabric, sm_node, routing::make_engine(routing::EngineKind::kMinHop));
  b.vsf = std::make_unique<core::VSwitchFabric>(
      *b.sm, b.hyps, core::LidScheme::kDynamic);
  b.vsf->boot();
  return b;
}

void print_table() {
  std::printf(
      "\nChaos re-convergence: %zu seeded events per run (cuts, flaps, "
      "switch kills, migrations%s%s), seed=%llu\n",
      kSteps, g_migration_faults ? ", migration faults" : "",
      g_topology_faults ? ", topology deltas" : "",
      static_cast<unsigned long long>(g_seed));
  std::printf("%-28s %7s %7s %7s %8s %9s %9s %13s %7s %5s %-18s\n", "tree",
              "drop-p", "events", "rounds", "smps", "retries", "timeouts",
              "time_us", "undeliv", "viol", "digest");
  bench::rule(128);

  std::size_t tree_idx = 0;
  std::size_t txn_commits = 0;
  std::size_t txn_rollbacks = 0;
  std::size_t topo_commits = 0;
  std::size_t topo_rollbacks = 0;
  for (const auto which : bench::selected_paper_trees()) {
    for (std::size_t r = 0; r < std::size(kFaultRates); ++r) {
      auto b = make_tree(which);
      cloud::CloudOrchestrator cloud(*b.vsf, cloud::Placement::kSpread);
      cloud.launch_vms(b.hyps.size());
      inject::FaultInjector injector(b.fabric, g_seed + 101 * tree_idx + r);
      inject::ChaosConfig config;
      config.seed = g_seed + 101 * tree_idx + r;
      config.steps = kSteps;
      config.mad_faults.drop_probability = kFaultRates[r];
      if (g_migration_faults) {
        config.weight_kill_dst_mid_migration = 2;
        config.weight_kill_master_mid_reconfig = 2;
      }
      if (g_topology_faults) {
        config.weight_attach_switch = 2;
        config.weight_detach_switch = 2;
        config.weight_kill_switch_mid_attach = 1;
        config.weight_kill_master_mid_detach = 1;
      }
      const auto report = inject::run_chaos(cloud, injector, config);
      txn_commits += report.migration_commits;
      txn_rollbacks += report.migration_rollbacks;
      topo_commits += report.topology_commits;
      topo_rollbacks += report.topology_rollbacks;
      std::printf(
          "%-28s %7.2f %7zu %7zu %8llu %9llu %9llu %13.1f %7llu %5zu "
          "0x%016llx%s\n",
          topology::to_string(which).c_str(), kFaultRates[r],
          report.steps - report.skipped, report.reconverge_rounds,
          static_cast<unsigned long long>(report.reconverge_smps),
          static_cast<unsigned long long>(report.reconverge_retries),
          static_cast<unsigned long long>(report.reconverge_timeouts),
          report.reconverge_time_us,
          static_cast<unsigned long long>(report.undeliverable),
          report.checker_violations,
          static_cast<unsigned long long>(report.digest),
          report.all_converged ? "" : "  (!converged)");
    }
    ++tree_idx;
  }
  bench::rule(128);
  if (g_migration_faults) {
    std::printf(
        "migration txns under fault: committed=%zu rolled_back=%zu "
        "(every transaction terminal)\n",
        txn_commits, txn_rollbacks);
  }
  if (g_topology_faults) {
    std::printf(
        "topology txns under fault: committed=%zu rolled_back=%zu "
        "(every delta terminal)\n",
        topo_commits, topo_rollbacks);
  }
  std::printf(
      "Lossier fabrics pay in resends and response timeouts, not in "
      "correctness: the checker stays clean\nand every run re-converges. "
      "Time is the simulated batch clock, so rows are seed-reproducible.\n\n");
}

/// Recovery cost of one cut/restore cycle on the 324-node tree: each
/// iteration severs an inter-switch cable, reconverges, restores it, and
/// reconverges again.
void BM_ReconvergeAfterLinkCut(benchmark::State& state) {
  auto b = make_tree(topology::PaperFatTree::k324);
  inject::FaultInjector injector(b.fabric, g_seed);
  injector.attach_transport(&b.sm->transport());
  // First inter-switch cable (leaf uplink): deterministic target.
  NodeId node = kInvalidNode;
  PortNum port = 0;
  for (NodeId id = 0; id < b.fabric.size() && node == kInvalidNode; ++id) {
    if (!b.fabric.node(id).is_physical_switch()) continue;
    const Node& n = b.fabric.node(id);
    for (PortNum p = 1; p <= n.num_ports(); ++p) {
      if (n.ports[p].connected() &&
          b.fabric.node(n.ports[p].peer).is_physical_switch()) {
        node = id;
        port = p;
        break;
      }
    }
  }
  for (auto _ : state) {
    injector.cut_link(node, port);
    const auto cut = b.sm->reconverge();
    injector.restore_link(node, port);
    const auto back = b.sm->reconverge();
    benchmark::DoNotOptimize(cut.smps + back.smps);
  }
}
BENCHMARK(BM_ReconvergeAfterLinkCut)->Unit(benchmark::kMillisecond);

/// Cost of the full invariant suite on the 324-node tree.
void BM_FabricCheckerSweep(benchmark::State& state) {
  auto b = make_tree(topology::PaperFatTree::k324);
  const inject::FabricChecker checker(*b.sm);
  for (auto _ : state) {
    const auto report = checker.check(b.vsf.get());
    benchmark::DoNotOptimize(report.violations.size());
  }
}
BENCHMARK(BM_FabricCheckerSweep)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const auto metrics_out = ibvs::bench::consume_metrics_out(argc, argv);
  const auto trace_out = ibvs::bench::consume_trace_out(argc, argv);
  ibvs::bench::consume_threads(argc, argv);
  g_seed = ibvs::bench::consume_seed(argc, argv, g_seed);
  g_migration_faults = consume_flag(argc, argv, "--migration-faults");
  g_topology_faults = consume_flag(argc, argv, "--topology-faults");
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  ibvs::bench::dump_metrics(metrics_out);
  ibvs::bench::dump_trace(trace_out);
  return 0;
}
