// Checker makespan scaling: the FabricChecker's blocked bitset-reachability
// pass across thread counts and paper fat-trees.
//
// The checker is the hot loop of every chaos convergence assertion (one full
// check per injected fault), so its makespan bounds how fast the harness can
// iterate. For each paper tree and thread count this reports, in wall-clock
// microseconds:
//
//   checker_us   full FabricChecker::check() (duplicate LIDs, LidMap
//                consistency, and the sharded reachability pass — the last
//                dominating by orders of magnitude),
//   reach_pairs  (source, target) walks the reachability pass covers, i.e.
//                paths_traced of the report: the work the bitset pass
//                replays against the serial per-pair trace contract.
//
// `--json-out <file>` writes the rows as JSON (schema "checker_scaling");
// CI's perf-smoke job runs it next to bench_sweep_scaling and checks that
// the makespan does not regress with threads. `--threads <n>` restricts the
// sweep to one thread count; default sweeps 1/2/4/8. IBVS_FIG7_LARGE=1 adds
// the 5832-node tree (the acceptance topology for the single-thread win).
#include <benchmark/benchmark.h>

#include <thread>

#include "bench/common.hpp"
#include "inject/checker.hpp"
#include "routing/engine.hpp"
#include "util/timer.hpp"

namespace {

using namespace ibvs;

constexpr int kSchemaVersion = 1;

struct Row {
  std::string topo;
  std::size_t switches = 0;
  std::size_t threads = 0;
  std::size_t sources = 0;
  std::size_t reach_pairs = 0;
  double checker_us = 0.0;
};

/// One booted paper tree with an SM attached to the last host slot (the
/// same harness shape as bench_sweep_scaling).
struct Subnet {
  Fabric fabric;
  std::unique_ptr<sm::SubnetManager> smgr;

  explicit Subnet(topology::PaperFatTree which) {
    auto built = topology::build_paper_fat_tree(fabric, which);
    auto slots = built.host_slots;
    const auto sm_slot = slots.back();
    slots.pop_back();
    topology::attach_hosts(fabric, slots);
    const NodeId sm_node = fabric.add_ca("sm-node");
    fabric.connect(sm_node, 1, sm_slot.leaf, sm_slot.port);
    smgr = std::make_unique<sm::SubnetManager>(
        fabric, sm_node, routing::make_engine(routing::EngineKind::kFatTree));
    smgr->full_sweep();
  }
};

Row measure(Subnet& net, const std::string& topo, std::size_t threads) {
  Row row;
  row.topo = topo;
  row.switches = net.fabric.switch_ids().size();
  row.threads = threads;
  ThreadPool::set_global_threads(threads);

  // Same checker shape as the sweep-scaling baseline: 16 sampled sources,
  // every active LID. Min of several runs — makespan free of first-touch
  // and scheduler noise.
  const inject::FabricChecker checker(
      *net.smgr, inject::CheckerConfig{.max_violations = 16,
                                       .max_sources = 16});
  constexpr int kRuns = 5;
  for (int i = 0; i < kRuns; ++i) {
    Stopwatch watch;
    const auto report = checker.check();
    const double us = watch.elapsed_seconds() * 1e6;
    if (i == 0 || us < row.checker_us) row.checker_us = us;
    row.sources = report.sources_sampled;
    row.reach_pairs = report.paths_traced;
    if (!report.clean()) {
      std::fprintf(stderr, "# checker found violations on %s!\n",
                   topo.c_str());
    }
  }
  return row;
}

void write_json(const std::string& path, const std::vector<Row>& rows) {
  std::FILE* file = path == "-" ? stdout : std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(file,
               "{\n  \"bench\": \"checker_scaling\",\n"
               "  \"schema_version\": %d,\n"
               "  \"hardware_threads\": %u,\n  \"rows\": [\n",
               kSchemaVersion, std::thread::hardware_concurrency());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(file,
                 "    {\"topology\": \"%s\", \"switches\": %zu, "
                 "\"threads\": %zu, \"sources\": %zu, "
                 "\"reach_pairs\": %zu, \"checker_us\": %.1f}%s\n",
                 r.topo.c_str(), r.switches, r.threads, r.sources,
                 r.reach_pairs, r.checker_us,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(file, "  ]\n}\n");
  if (file != stdout) {
    std::fclose(file);
    std::fprintf(stderr, "# baseline written to %s\n", path.c_str());
  }
}

std::vector<Row> run_sweep(const std::vector<std::size_t>& thread_counts) {
  std::vector<Row> rows;
  std::printf("\nChecker makespan scaling (wall-clock us; bitset "
              "reachability pass, 16 sampled sources)\n");
  std::printf("%-34s %8s %8s %8s %12s %12s %10s\n", "topology", "switches",
              "threads", "sources", "reach-pairs", "checker", "speedup");
  bench::rule(100);
  for (const auto which : bench::selected_paper_trees()) {
    const std::string topo = topology::to_string(which);
    Subnet net(which);
    double checker_1t = 0.0;
    for (const std::size_t t : thread_counts) {
      Row row = measure(net, topo, t);
      if (t == thread_counts.front()) checker_1t = row.checker_us;
      const double speedup =
          row.checker_us > 0.0 ? checker_1t / row.checker_us : 0.0;
      std::printf("%-34s %8zu %8zu %8zu %12zu %12.1f %9.2fx\n", topo.c_str(),
                  row.switches, row.threads, row.sources, row.reach_pairs,
                  row.checker_us, speedup);
      std::fflush(stdout);
      rows.push_back(std::move(row));
    }
  }
  bench::rule(100);
  std::printf("Shape to reproduce: the reachability pass shards targets "
              "across workers, so makespan\nmust not grow with threads; "
              "per-pair results stay byte-identical to a serial trace "
              "scan.\n\n");
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  const auto metrics_out = ibvs::bench::consume_metrics_out(argc, argv);
  const auto trace_out = ibvs::bench::consume_trace_out(argc, argv);
  const auto json_out =
      ibvs::bench::consume_flag_value(argc, argv, "--json-out");
  const auto threads_flag =
      ibvs::bench::consume_flag_value(argc, argv, "--threads");
  benchmark::Initialize(&argc, argv);  // tolerate --benchmark_* flags

  std::vector<std::size_t> thread_counts{1, 2, 4, 8};
  if (threads_flag) {
    char* end = nullptr;
    const unsigned long long parsed =
        std::strtoull(threads_flag->c_str(), &end, 0);
    if (end == threads_flag->c_str() || *end != '\0' || parsed == 0) {
      std::fprintf(stderr,
                   "error: --threads wants a positive integer, got '%s'\n",
                   threads_flag->c_str());
      return 2;
    }
    thread_counts = {static_cast<std::size_t>(parsed)};
  }

  const auto rows = run_sweep(thread_counts);
  if (json_out) write_json(*json_out, rows);
  ibvs::ThreadPool::set_global_threads(0);  // restore the default sizing
  benchmark::RunSpecifiedBenchmarks();
  ibvs::bench::dump_metrics(metrics_out);
  ibvs::bench::dump_trace(trace_out);
  return 0;
}
