// Fig. 7 — "Path computation time for different routing algorithms on a
// Fat-Tree topology with a varied number of Nodes".
//
// Regenerates the figure's data series: for each of the paper's fat-trees,
// the time each routing engine (fat-tree, minhop, dfsssp, lash) needs to
// compute the full set of LFTs — and the "LID Copying/Swapping" series,
// which is identically zero because the proposed reconfiguration never
// recomputes paths (it is measured here as the actual path-computation time
// during a live migration: none).
//
// Default: the 324- and 648-node trees (seconds). IBVS_FIG7_LARGE=1 adds
// 5832 nodes; IBVS_FIG7_FULL=1 adds 11664 nodes, where DFSSSP and LASH run
// for a long time — the very effect the figure demonstrates.
#include <benchmark/benchmark.h>

#include "bench/common.hpp"
#include "ib/lid_map.hpp"
#include "routing/engine.hpp"
#include "util/timer.hpp"

namespace {

using namespace ibvs;

struct Fig7Row {
  std::string topo;
  std::size_t nodes;
  double seconds[5];  // fat-tree, minhop, dfsssp, lash, lid-swap
  bool ran[5];
};

/// Paper's reported seconds (8-core Xeon, OpenSM) for reference printing.
constexpr double kPaperSeconds[4][4] = {
    // fat-tree, minhop, dfsssp, lash
    {0.012, 0.017, 0.142, 0.012},  // 324
    {0.04, 0.06, 0.63, 0.045},     // 648
    {16.5, 18.8, 123, 3859},       // 5832
    {67, 71, 625, 39145},          // 11664
};

int paper_index(topology::PaperFatTree which) {
  switch (which) {
    case topology::PaperFatTree::k324:
      return 0;
    case topology::PaperFatTree::k648:
      return 1;
    case topology::PaperFatTree::k5832:
      return 2;
    case topology::PaperFatTree::k11664:
      return 3;
  }
  return 0;
}

Fig7Row run_tree(topology::PaperFatTree which) {
  Fig7Row row{};
  row.topo = topology::to_string(which);
  row.nodes = static_cast<std::size_t>(which);

  Fabric fabric;
  const auto built = topology::build_paper_fat_tree(fabric, which);
  const auto hosts = topology::attach_hosts(fabric, built.host_slots);
  LidMap lids;
  for (NodeId sw : fabric.switch_ids()) lids.assign_next(fabric, sw, 0);
  for (NodeId host : hosts) lids.assign_next(fabric, host, 1);

  const auto engines = routing::fig7_engines();
  for (std::size_t i = 0; i < engines.size(); ++i) {
    // LASH at >= 5832 nodes runs for roughly an hour (the paper's point);
    // keep it opt-in even in large mode.
    if (engines[i] == routing::EngineKind::kLash &&
        row.nodes >= 5832 && !bench::env_flag("IBVS_FIG7_LASH")) {
      row.ran[i] = false;
      continue;
    }
    auto engine = routing::make_engine(engines[i]);
    const auto result = engine->compute(fabric, lids);
    row.seconds[i] = result.compute_seconds;
    row.ran[i] = true;
    // Progress on stderr: the large trees take minutes per engine.
    std::fprintf(stderr, "# %-32s %-10s %10.3f s\n", row.topo.c_str(),
                 routing::to_string(engines[i]).c_str(), row.seconds[i]);
    std::fflush(stderr);
  }

  // The "LID Copying/Swapping" series: path-computation time spent by one
  // live migration under the proposed method. Measured, not asserted: the
  // migration path never calls a routing engine, so this is exactly 0.
  {
    Fabric vfabric;
    auto vbuilt = topology::build_paper_fat_tree(
        vfabric, topology::PaperFatTree::k324);
    auto hyps = core::attach_hypervisors(vfabric, vbuilt.host_slots, 2, 8);
    const NodeId sm_node = vfabric.add_ca("sm");
    vfabric.connect(sm_node, 1, vbuilt.host_slots[8].leaf,
                    vbuilt.host_slots[8].port);
    sm::SubnetManager smgr(vfabric, sm_node,
                           routing::make_engine(routing::EngineKind::kFatTree));
    core::VSwitchFabric vsf(smgr, hyps, core::LidScheme::kPrepopulated);
    vsf.boot();
    const auto vm = vsf.create_vm(0);
    const double pc_before = smgr.routing_result().compute_seconds;
    vsf.migrate_vm(vm.vm, 7);
    row.seconds[4] = smgr.routing_result().compute_seconds - pc_before;
    row.ran[4] = true;
  }
  return row;
}

void print_fig7() {
  std::printf(
      "\nFig. 7 — Path computation time (seconds) per routing engine\n");
  std::printf("%-34s %12s %12s %12s %12s %14s\n", "topology", "fat-tree",
              "minhop", "dfsssp", "lash", "LID swap/copy");
  ibvs::bench::rule(100);
  for (const auto which : bench::selected_paper_trees()) {
    const auto row = run_tree(which);
    std::printf("%-34s", row.topo.c_str());
    for (int i = 0; i < 5; ++i) {
      if (row.ran[i]) {
        std::printf(" %12.4f", row.seconds[i]);
      } else {
        std::printf(" %12s", "(skipped)");
      }
    }
    std::printf("\n");
    const int p = paper_index(which);
    std::printf("%-34s %12.3f %12.3f %12.3f %12.3f %14.1f   (paper)\n", "",
                kPaperSeconds[p][0], kPaperSeconds[p][1], kPaperSeconds[p][2],
                kPaperSeconds[p][3], 0.0);
  }
  ibvs::bench::rule(100);
  std::printf(
      "Shape to reproduce: PCt grows polynomially with subnet size; DFSSSP "
      "and LASH dominate at scale;\nthe proposed LID swap/copy "
      "reconfiguration spends zero time on path computation at any size.\n\n");
}

/// Micro-benchmark: routing engines on the 324-node tree.
void BM_PathComputation(benchmark::State& state) {
  const auto kind = static_cast<routing::EngineKind>(state.range(0));
  Fabric fabric;
  const auto built =
      topology::build_paper_fat_tree(fabric, topology::PaperFatTree::k324);
  const auto hosts = topology::attach_hosts(fabric, built.host_slots);
  LidMap lids;
  for (NodeId sw : fabric.switch_ids()) lids.assign_next(fabric, sw, 0);
  for (NodeId host : hosts) lids.assign_next(fabric, host, 1);
  auto engine = routing::make_engine(kind);
  for (auto _ : state) {
    auto result = engine->compute(fabric, lids);
    benchmark::DoNotOptimize(result.lfts.data());
  }
  state.SetLabel(routing::to_string(kind));
}
BENCHMARK(BM_PathComputation)
    ->Arg(static_cast<int>(routing::EngineKind::kFatTree))
    ->Arg(static_cast<int>(routing::EngineKind::kMinHop))
    ->Arg(static_cast<int>(routing::EngineKind::kDfsssp))
    ->Arg(static_cast<int>(routing::EngineKind::kLash))
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const auto metrics_out = ibvs::bench::consume_metrics_out(argc, argv);
  const auto trace_out = ibvs::bench::consume_trace_out(argc, argv);
  ibvs::bench::consume_threads(argc, argv);
  print_fig7();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  ibvs::bench::dump_metrics(metrics_out);
  ibvs::bench::dump_trace(trace_out);
  return 0;
}
