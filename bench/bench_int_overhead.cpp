// In-band telemetry (INT) overhead vs congestion-map fidelity.
//
// INT metadata is not free: every stacked hop record costs dwords on every
// subsequent link, and those dwords land in the same PMA data counters as
// tenant traffic. This bench sweeps the sampling rate on an incast-heavy
// workload and reports, per topology:
//   * the telemetry overhead as a fraction of all transmitted dwords, and
//   * how well the sampled congestion map agrees with (a) the full-rate
//     map and (b) the PMA ground truth — the top-k ports by xmit-wait +
//     congestion-mark delta on the same run.
// The full-rate congestion map of the last topology is dumped via --int-out.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "fabric/credit_sim.hpp"
#include "perf/int_collector.hpp"
#include "util/rng.hpp"

namespace {

using namespace ibvs;

struct IntSetup {
  Fabric fabric;
  std::vector<NodeId> hosts;
  std::unique_ptr<sm::SubnetManager> sm;
  std::string name;

  static IntSetup make_small() {
    IntSetup s;
    s.name = "two-level-16";
    const auto built = topology::build_two_level_fat_tree(
        s.fabric, topology::TwoLevelParams{.num_leaves = 4,
                                           .num_spines = 2,
                                           .hosts_per_leaf = 4,
                                           .radix = 12});
    s.hosts = topology::attach_hosts(s.fabric, built.host_slots);
    s.boot();
    return s;
  }

  static IntSetup make_paper(topology::PaperFatTree which) {
    IntSetup s;
    s.name = topology::to_string(which);
    const auto built = topology::build_paper_fat_tree(s.fabric, which);
    s.hosts = topology::attach_hosts(s.fabric, built.host_slots);
    s.boot();
    return s;
  }

  void boot() {
    sm = std::make_unique<sm::SubnetManager>(
        fabric, hosts[0],
        routing::make_engine(routing::EngineKind::kFatTree));
    sm->full_sweep();
  }
};

/// Incast workload: `groups` victim destinations, each hammered by
/// `srcs_per_group` distinct sources (one tenant per group). Incast is the
/// worst case the paper's tenant-isolation story cares about: the hot link
/// is the last hop, and PMA counters alone cannot say whose traffic queued.
std::vector<fabric::FlowSpec> incast_flows(const IntSetup& s,
                                           SplitMix64& rng,
                                           std::size_t groups,
                                           std::size_t srcs_per_group,
                                           std::size_t packets) {
  std::vector<fabric::FlowSpec> flows;
  std::vector<NodeId> victims;
  for (std::size_t g = 0; g < groups && victims.size() < s.hosts.size();
       ++g) {
    NodeId victim = kInvalidNode;
    do {
      victim = s.hosts[rng.below(s.hosts.size())];
    } while (std::find(victims.begin(), victims.end(), victim) !=
             victims.end());
    victims.push_back(victim);
    const Lid dst = s.fabric.node(victim).lid();
    for (std::size_t i = 0; i < srcs_per_group; ++i) {
      NodeId src = kInvalidNode;
      do {
        src = s.hosts[rng.below(s.hosts.size())];
      } while (src == victim);
      flows.push_back(fabric::FlowSpec{.src = src,
                                       .dst = dst,
                                       .packets = packets,
                                       .vl = 0,
                                       .packet_dwords = 64,
                                       .tenant = static_cast<std::uint32_t>(g)});
    }
  }
  return flows;
}

struct PortSnapshot {
  std::uint32_t xmit_wait = 0;
  std::uint16_t congestion_marks = 0;
  std::uint64_t ext_xmit_data = 0;
};

using Snapshot = std::map<perf::LinkKey, PortSnapshot>;

Snapshot snapshot_ports(const Fabric& fabric) {
  Snapshot snap;
  for (std::size_t n = 0; n < fabric.size(); ++n) {
    const auto& node = fabric.node(static_cast<NodeId>(n));
    for (std::size_t p = 1; p < node.ports.size(); ++p) {
      const auto& c = node.ports[p].counters;
      snap[perf::LinkKey{static_cast<NodeId>(n),
                         static_cast<PortNum>(p)}] =
          PortSnapshot{c.xmit_wait, c.congestion_marks, c.ext_xmit_data};
    }
  }
  return snap;
}

struct RunResult {
  fabric::CreditSimReport report;
  perf::CongestionMap map;
  std::uint64_t xmit_dwords = 0;  ///< total transmitted this run (ext delta)
  /// Ground truth: ports ranked by PMA xmit-wait + congestion-mark delta.
  std::vector<perf::LinkKey> pma_hot;
};

RunResult run_once(IntSetup& s, const std::vector<fabric::FlowSpec>& flows,
                   double rate, std::uint64_t seed, std::size_t top_k) {
  const Snapshot before = snapshot_ports(s.fabric);
  perf::IntCollector collector;
  fabric::CreditSimConfig config;
  config.credits_per_channel = 1;
  config.int_mode.enabled = rate > 0.0;
  config.int_mode.sample_rate = rate;
  config.int_mode.seed = seed;
  config.int_mode.sink = &collector;
  RunResult r;
  r.report = fabric::simulate_flows(s.fabric, flows, config);
  r.map = collector.build_map(top_k);

  struct Scored {
    perf::LinkKey link;
    std::uint64_t score = 0;
  };
  std::vector<Scored> scored;
  for (const auto& [key, after] : snapshot_ports(s.fabric)) {
    const auto it = before.find(key);
    const PortSnapshot base = it == before.end() ? PortSnapshot{} : it->second;
    r.xmit_dwords += after.ext_xmit_data - base.ext_xmit_data;
    const std::uint64_t wait = after.xmit_wait - base.xmit_wait;
    const std::uint64_t marks =
        static_cast<std::uint64_t>(after.congestion_marks) -
        base.congestion_marks;
    if (wait + marks > 0) scored.push_back(Scored{key, wait + marks});
  }
  std::sort(scored.begin(), scored.end(), [](const Scored& a,
                                             const Scored& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.link < b.link;
  });
  if (scored.size() > top_k) scored.resize(top_k);
  for (const auto& e : scored) r.pma_hot.push_back(e.link);
  return r;
}

std::size_t hot_overlap(const std::vector<perf::HotLink>& hot,
                        const std::vector<perf::LinkKey>& truth) {
  std::size_t n = 0;
  for (const auto& h : hot) {
    if (std::find(truth.begin(), truth.end(), h.link) != truth.end()) ++n;
  }
  return n;
}

constexpr double kRates[] = {0.0, 0.05, 0.25, 1.0};
constexpr std::size_t kTopK = 8;

std::string sweep_topology(IntSetup& s, std::uint64_t seed,
                           std::string* map_json) {
  SplitMix64 rng(seed);
  const std::size_t groups = std::min<std::size_t>(4, s.hosts.size() / 4);
  const auto flows = incast_flows(s, rng, groups, /*srcs_per_group=*/6,
                                  /*packets=*/24);

  // Reference pass at full sampling: the fidelity yardstick.
  RunResult full = run_once(s, flows, 1.0, seed, kTopK);
  std::vector<perf::LinkKey> full_hot;
  for (const auto& h : full.map.hot_links) full_hot.push_back(h.link);
  if (map_json != nullptr) *map_json = full.map.to_json();

  std::printf("\n%s: %zu incast flows (%zu groups)\n", s.name.c_str(),
              flows.size(), groups);
  std::printf("%-8s %9s %9s %11s %9s %11s %11s\n", "rate", "sampled",
              "stacks", "ovh dwords", "ovh %", "vs PMA", "vs full");
  bench::rule(74);
  std::ostringstream rows;
  for (const double rate : kRates) {
    const RunResult r = run_once(s, flows, rate, seed, kTopK);
    const double pct =
        r.xmit_dwords == 0
            ? 0.0
            : 100.0 * static_cast<double>(r.report.int_overhead_dwords) /
                  static_cast<double>(r.xmit_dwords);
    const std::size_t vs_pma = hot_overlap(r.map.hot_links, r.pma_hot);
    const std::size_t vs_full = hot_overlap(r.map.hot_links, full_hot);
    std::printf("%-8.2f %9zu %9zu %11llu %8.2f%% %7zu/%-3zu %7zu/%-3zu\n",
                rate, r.report.int_sampled, r.report.int_stacks_delivered,
                static_cast<unsigned long long>(r.report.int_overhead_dwords),
                pct, vs_pma, r.pma_hot.size(), vs_full, full_hot.size());
    if (rows.tellp() > 0) rows << ",";
    rows << "{\"sample_rate\":" << rate
         << ",\"sampled\":" << r.report.int_sampled
         << ",\"stacks_delivered\":" << r.report.int_stacks_delivered
         << ",\"stacks_truncated\":" << r.report.int_stacks_truncated
         << ",\"overhead_dwords\":" << r.report.int_overhead_dwords
         << ",\"xmit_dwords\":" << r.xmit_dwords
         << ",\"hot_links\":" << r.map.hot_links.size()
         << ",\"pma_topk_overlap\":" << vs_pma
         << ",\"pma_topk\":" << r.pma_hot.size()
         << ",\"fullrate_topk_overlap\":" << vs_full << "}";
  }
  bench::rule(74);
  return rows.str();
}

void BM_CreditSimIntOff(benchmark::State& state) {
  auto s = IntSetup::make_small();
  SplitMix64 rng(42);
  const auto flows = incast_flows(s, rng, 2, 6, 24);
  fabric::CreditSimConfig config;
  config.credits_per_channel = 1;
  for (auto _ : state) {
    const auto report = fabric::simulate_flows(s.fabric, flows, config);
    benchmark::DoNotOptimize(report.delivered);
  }
}
BENCHMARK(BM_CreditSimIntOff)->Unit(benchmark::kMicrosecond);

void BM_CreditSimIntFull(benchmark::State& state) {
  auto s = IntSetup::make_small();
  SplitMix64 rng(42);
  const auto flows = incast_flows(s, rng, 2, 6, 24);
  perf::IntCollector collector;
  fabric::CreditSimConfig config;
  config.credits_per_channel = 1;
  config.int_mode.enabled = true;
  config.int_mode.sink = &collector;
  for (auto _ : state) {
    const auto report = fabric::simulate_flows(s.fabric, flows, config);
    benchmark::DoNotOptimize(report.int_stacks_delivered);
  }
}
BENCHMARK(BM_CreditSimIntFull)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  const auto metrics_out = ibvs::bench::consume_metrics_out(argc, argv);
  const auto trace_out = ibvs::bench::consume_trace_out(argc, argv);
  const auto int_out = ibvs::bench::consume_int_out(argc, argv);
  const std::uint64_t seed = ibvs::bench::consume_seed(argc, argv, 42);
  ibvs::bench::consume_threads(argc, argv);

  std::ostringstream doc;
  doc << "{\"bench\":\"int_overhead\",\"schema_version\":1,\"seed\":" << seed
      << ",\"topologies\":[";
  std::string map_json;
  bool first = true;
  {
    auto small = IntSetup::make_small();
    const std::string rows = sweep_topology(small, seed, &map_json);
    doc << "{\"topology\":\"" << small.name << "\",\"rows\":[" << rows
        << "],\"map\":" << map_json << "}";
    first = false;
  }
  for (const auto which : ibvs::bench::selected_paper_trees()) {
    auto s = IntSetup::make_paper(which);
    const std::string rows = sweep_topology(s, seed, &map_json);
    if (!first) doc << ",";
    first = false;
    doc << "{\"topology\":\"" << s.name << "\",\"rows\":[" << rows
        << "],\"map\":" << map_json << "}";
  }
  doc << "]}\n";
  std::printf(
      "\"vs PMA\" = top-%zu INT hot links also in the top-%zu ports by PMA "
      "xmit-wait+marks delta on the same run.\n",
      kTopK, kTopK);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  ibvs::bench::dump_json(int_out, doc.str(), "INT congestion map");
  ibvs::bench::dump_metrics(metrics_out);
  ibvs::bench::dump_trace(trace_out);
  return 0;
}
