// Fig. 6 / §VI-D — "LFTs Update on Limited Switches".
//
// On a 3-level fat-tree, migrations of increasing interconnection distance
// (same leaf, same pod, across pods) are compared by:
//   * n' under the deterministic method (balancing-preserving),
//   * the minimal (skyline) set size — 1 for an intra-leaf move,
//   * how many migrations can run concurrently (disjoint update sets).
#include <benchmark/benchmark.h>

#include "bench/common.hpp"
#include "cloud/orchestrator.hpp"

namespace {

using namespace ibvs;

struct Fig6Bench {
  Fabric fabric;
  topology::Built built;
  std::vector<core::VirtualHca> hyps;
  std::unique_ptr<sm::SubnetManager> sm;
  std::unique_ptr<core::VSwitchFabric> vsf;

  // A small 3-level tree: 4 pods x (2 leaves x 2 spines), 4 cores,
  // 2 hosts per leaf -> 16 host slots on 8 leaves across 4 pods.
  static Fig6Bench make(core::LidScheme scheme) {
    Fig6Bench b;
    b.built = topology::build_three_level_fat_tree(
        b.fabric, topology::ThreeLevelParams{.num_pods = 4,
                                             .leaves_per_pod = 2,
                                             .spines_per_pod = 2,
                                             .num_cores = 4,
                                             .hosts_per_leaf = 2,
                                             .radix = 8});
    // One hypervisor on every host slot except the last (SM node).
    std::vector<topology::HostSlot> slots(b.built.host_slots.begin(),
                                          b.built.host_slots.end() - 1);
    b.hyps = core::attach_hypervisors(b.fabric, slots, 2);
    const auto& sm_slot = b.built.host_slots.back();
    const NodeId sm_node = b.fabric.add_ca("sm-node");
    b.fabric.connect(sm_node, 1, sm_slot.leaf, sm_slot.port);
    b.sm = std::make_unique<sm::SubnetManager>(
        b.fabric, sm_node,
        routing::make_engine(routing::EngineKind::kFatTree));
    b.vsf = std::make_unique<core::VSwitchFabric>(*b.sm, b.hyps, scheme);
    b.vsf->boot();
    return b;
  }
};

void print_distance_table(core::LidScheme scheme) {
  std::printf("%s:\n", core::to_string(scheme).c_str());
  std::printf("  %-34s %16s %14s %14s\n", "migration", "n' deterministic",
              "minimal set", "switches n");
  bench::rule(86);
  struct Move {
    const char* label;
    std::size_t src, dst;
  };
  // Hypervisors are slot-ordered: 0,1 on leaf0(pod0); 2,3 on leaf1(pod0);
  // 4..7 pod1; etc.
  const Move moves[] = {
      {"within one leaf switch", 0, 1},
      {"across leaves, same pod", 0, 2},
      {"across pods (through the core)", 0, 6},
      {"across pods, far corner", 0, 14},
  };
  for (const auto& move : moves) {
    auto b = Fig6Bench::make(scheme);
    const auto vm = b.vsf->create_vm(move.src);
    const auto det = b.vsf->migrate_vm(vm.vm, move.dst);

    auto b2 = Fig6Bench::make(scheme);
    const auto vm2 = b2.vsf->create_vm(move.src);
    core::MigrationOptions minimal;
    minimal.mode = core::ReconfigMode::kMinimal;
    const auto min = b2.vsf->migrate_vm(vm2.vm, move.dst, minimal);

    std::printf("  %-34s %16zu %14zu %14zu\n", move.label,
                det.reconfig.switches_updated, min.reconfig.switches_updated,
                det.reconfig.switches_total);
  }
  bench::rule(86);
}

void print_parallel_rounds() {
  std::printf(
      "Concurrent migrations (minimal mode, disjoint update sets):\n");
  auto b = Fig6Bench::make(core::LidScheme::kDynamic);
  cloud::CloudOrchestrator orch(*b.vsf, cloud::Placement::kRoundRobin);
  const auto vms = orch.launch_vms(static_cast<std::size_t>(b.hyps.size()));

  // One intra-leaf migration per leaf: all of them fit in a single round —
  // "as many concurrent migrations as there exist leaf switches" (§VI-D).
  std::vector<cloud::MigrationRequest> intra;
  for (std::size_t leaf = 0; leaf + 1 < b.hyps.size() / 2; ++leaf) {
    intra.push_back({vms[2 * leaf], 2 * leaf + 1});
  }
  const auto intra_plan =
      orch.plan_parallel(intra, core::ReconfigMode::kMinimal);
  std::printf("  %zu intra-leaf migrations -> %zu round(s)\n", intra.size(),
              intra_plan.num_rounds());

  // The same number of cross-pod migrations conflict much more.
  std::vector<cloud::MigrationRequest> wide;
  for (std::size_t i = 0; i < intra.size(); ++i) {
    wide.push_back({vms[2 * i], (2 * i + 7) % b.hyps.size()});
  }
  const auto wide_plan =
      orch.plan_parallel(wide, core::ReconfigMode::kMinimal);
  std::printf("  %zu cross-pod  migrations -> %zu round(s)\n\n", wide.size(),
              wide_plan.num_rounds());
}

void BM_MinimalSetComputation(benchmark::State& state) {
  auto b = Fig6Bench::make(core::LidScheme::kDynamic);
  const auto vm = b.vsf->create_vm(0);
  core::MigrationOptions minimal;
  minimal.mode = core::ReconfigMode::kMinimal;
  std::size_t dst = 14;
  for (auto _ : state) {
    auto report = b.vsf->migrate_vm(vm.vm, dst, minimal);
    benchmark::DoNotOptimize(report.minimal_set_size);
    dst = b.vsf->vm(vm.vm).hypervisor == 14 ? 0 : 14;
  }
}
BENCHMARK(BM_MinimalSetComputation)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  const auto metrics_out = ibvs::bench::consume_metrics_out(argc, argv);
  const auto trace_out = ibvs::bench::consume_trace_out(argc, argv);
  ibvs::bench::consume_threads(argc, argv);
  std::printf(
      "\nFig. 6 — switches updated vs migration distance (3-level "
      "fat-tree: 4 pods, 20 switches)\n\n");
  print_distance_table(core::LidScheme::kDynamic);
  print_distance_table(core::LidScheme::kPrepopulated);
  print_parallel_rounds();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  ibvs::bench::dump_metrics(metrics_out);
  ibvs::bench::dump_trace(trace_out);
  return 0;
}
