// §VII-B — the orchestrated four-step live-migration flow, plus the
// SA-cache effect of ref. [10] that the vSwitch addressing makes possible.
//
// Prints the per-phase timeline of an orchestrated migration (detach VF,
// memory copy, OpenStack->OpenSM signal, IB reconfiguration, attach VF) and
// shows that the IB reconfiguration — the part this paper optimizes — is
// microseconds in a flow otherwise dominated by seconds of VM copy and
// SR-IOV hotplug. Then it runs a peer-communication workload across
// migrations and counts SA path-record queries with and without
// address-preserving migration.
#include <benchmark/benchmark.h>

#include "bench/common.hpp"
#include "cloud/orchestrator.hpp"
#include "sm/sa.hpp"

namespace {

using namespace ibvs;

void print_flow() {
  auto b = bench::VirtualBench::make(core::LidScheme::kPrepopulated, 18, 4);
  cloud::FlowTiming timing;  // defaults: 2 GB VM, 10 Gbps pre-copy
  cloud::CloudOrchestrator orch(*b.vsf, cloud::Placement::kRoundRobin,
                                timing);
  const auto vms = orch.launch_vms(6);

  std::printf("\n§VII-B migration flow (one VM, prepopulated scheme):\n");
  const auto report = orch.migrate(vms[0], 9);
  std::printf("  1. detach SR-IOV VF              %10.3f s\n",
              report.detach_s);
  std::printf("     live migration (memory copy)  %10.3f s\n",
              report.copy_s);
  std::printf("  2. OpenStack signals OpenSM      %10.3f s\n",
              report.signal_s);
  std::printf("  3. OpenSM reconfigures IB        %10.6f s   (%llu SMPs, "
              "n'=%zu of %zu switches)\n",
              report.reconfig_s,
              static_cast<unsigned long long>(
                  report.network.reconfig.total_smps()),
              report.network.reconfig.switches_updated,
              report.network.reconfig.switches_total);
  std::printf("  4. attach VF at destination      %10.3f s\n",
              report.attach_s);
  std::printf("     total                         %10.3f s\n\n",
              report.total_s());
}

void print_sa_cache_effect() {
  std::printf("SA path-record load around migrations ([10] + §V):\n");

  // vSwitch: addresses move with the VM; peers resolve from cache.
  auto b = bench::VirtualBench::make(core::LidScheme::kPrepopulated, 18, 4);
  sm::SaService sa(*b.sm);
  sm::PathRecordCache cache(sa, *b.sm);
  cloud::CloudOrchestrator orch(*b.vsf, cloud::Placement::kRoundRobin);
  const auto vms = orch.launch_vms(10);
  const Lid observer = b.fabric.node(b.hyps[17].pf).lid();

  for (const auto vm : vms) {
    cache.resolve(observer, b.vsf->vm(vm).vguid);
  }
  const auto queries_before = sa.queries_served();
  for (int i = 0; i < 10; ++i) {
    const auto vm = vms[static_cast<std::size_t>(i) % vms.size()];
    const auto dst = b.vsf->find_free_hypervisor(b.vsf->vm(vm).hypervisor);
    if (!dst) continue;
    orch.migrate(vm, *dst);
    // Every peer re-contacts the VM after its move.
    for (const auto peer : vms) {
      cache.resolve(observer, b.vsf->vm(peer).vguid);
    }
  }
  std::printf(
      "  vSwitch (addresses preserved): %3llu SA queries after %d "
      "migrations (%llu cache hits, %llu stale)\n",
      static_cast<unsigned long long>(sa.queries_served() - queries_before),
      10, static_cast<unsigned long long>(cache.hits()),
      static_cast<unsigned long long>(cache.stale_hits()));

  // Shared Port: the LID changes on every migration; each of the peers'
  // cached records goes stale and must be re-queried.
  const std::size_t peers = vms.size();
  std::size_t shared_port_queries = 0;
  for (int i = 0; i < 10; ++i) shared_port_queries += peers;
  std::printf(
      "  Shared Port (LID changes):     %3zu SA queries forced for the same "
      "workload (%zu peers x 10 migrations)\n\n",
      shared_port_queries, peers);
}

void BM_OrchestratedMigration(benchmark::State& state) {
  auto b = bench::VirtualBench::make(core::LidScheme::kDynamic, 18, 4);
  cloud::CloudOrchestrator orch(*b.vsf, cloud::Placement::kRoundRobin);
  const auto vms = orch.launch_vms(1);
  std::size_t dst = 9;
  for (auto _ : state) {
    auto report = orch.migrate(vms[0], dst);
    benchmark::DoNotOptimize(report.reconfig_s);
    dst = b.vsf->vm(vms[0]).hypervisor == 9 ? 0 : 9;
  }
}
BENCHMARK(BM_OrchestratedMigration)->Unit(benchmark::kMicrosecond);

void BM_SaCachedResolve(benchmark::State& state) {
  auto b = bench::VirtualBench::make(core::LidScheme::kDynamic, 18, 4);
  sm::SaService sa(*b.sm);
  sm::PathRecordCache cache(sa, *b.sm);
  const auto vm = b.vsf->create_vm(0);
  const Lid observer = b.fabric.node(b.hyps[17].pf).lid();
  const Guid guid = b.vsf->vm(vm.vm).vguid;
  cache.resolve(observer, guid);
  for (auto _ : state) {
    auto record = cache.resolve(observer, guid);
    benchmark::DoNotOptimize(record);
  }
}
BENCHMARK(BM_SaCachedResolve);

}  // namespace

int main(int argc, char** argv) {
  const auto metrics_out = ibvs::bench::consume_metrics_out(argc, argv);
  const auto trace_out = ibvs::bench::consume_trace_out(argc, argv);
  ibvs::bench::consume_threads(argc, argv);
  print_flow();
  print_sa_cache_effect();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  ibvs::bench::dump_metrics(metrics_out);
  ibvs::bench::dump_trace(trace_out);
  return 0;
}
