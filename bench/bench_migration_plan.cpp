// Fleet migration planning: batched, conflict-aware evacuation vs the
// naive serial loop, and destination-swap vs the 3-move shuffle.
//
// Table 1 drains one full hypervisor on each paper fat-tree twice, from
// identically-populated twin fabrics. The naive column is what an operator
// without the planner writes: one migrate_txn at a time, round-robin
// destinations, default (deterministic full-diff) reconfiguration. The
// planned column is the MigrationPlanner + PlanExecutor path: §VI-D
// minimal update sets, spread-aware destination choice, and conflict-free
// batches whose wall-clock phases overlap — a batch costs its slowest
// member, not the sum. The acceptance bar is planned < naive on BOTH total
// SMPs and makespan.
//
// Table 2 isolates the fused destination swap: two VMs trade slots between
// two full hosts in one transaction (4 address SMPs, fused LFT deltas)
// versus the classic 3-move shuffle through a spare slot. Both sides run
// minimal reconfiguration — the table compares move structure, not mode.
//
// --chaos additionally runs the seeded evacuation-under-fire scenario
// (a safety-filtered switch dies mid-plan) and prints its digest; the
// chaos-smoke CI job asserts the digest is seed-stable and violation-free.
// --json-out emits the rows for the bench-smoke gate.
#include <benchmark/benchmark.h>

#include <sstream>
#include <string_view>

#include "bench/common.hpp"
#include "cloud/planner.hpp"
#include "inject/chaos.hpp"

namespace {

using namespace ibvs;

std::uint64_t g_seed = 11;  ///< default; override with --seed
bool g_chaos = false;       ///< --chaos

/// Strips the valueless `--chaos` flag from argv.
bool consume_chaos(int& argc, char** argv) {
  bool found = false;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--chaos") {
      found = true;
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;
  argv[argc] = nullptr;
  return found;
}

constexpr std::size_t kHyps = 18;
constexpr std::size_t kVfs = 8;

/// A booted, virtualized subnet on the requested paper tree (Min-Hop, like
/// the chaos bench: evacuations must survive arbitrary topologies).
bench::VirtualBench make_tree(topology::PaperFatTree which,
                              std::size_t num_vfs) {
  bench::VirtualBench b;
  b.built = topology::build_paper_fat_tree(b.fabric, which);
  std::vector<topology::HostSlot> spread;
  const std::size_t per_leaf =
      b.built.host_slots.size() / b.built.leaves.size();
  for (std::size_t i = 0; spread.size() < kHyps + 1; ++i) {
    const std::size_t leaf = i / 2;
    const std::size_t idx = leaf * per_leaf + (i % 2);
    if (idx >= b.built.host_slots.size()) break;
    spread.push_back(b.built.host_slots[idx]);
  }
  b.hyps = core::attach_hypervisors(b.fabric, spread, num_vfs, kHyps);
  const auto& slot = spread.at(kHyps);
  const NodeId sm_node = b.fabric.add_ca("sm-node");
  b.fabric.connect(sm_node, 1, slot.leaf, slot.port);
  b.sm = std::make_unique<sm::SubnetManager>(
      b.fabric, sm_node, routing::make_engine(routing::EngineKind::kMinHop));
  b.vsf = std::make_unique<core::VSwitchFabric>(
      *b.sm, b.hyps, core::LidScheme::kDynamic);
  b.vsf->boot();
  return b;
}

/// The evacuation workload: host 0 filled to every VF, one VM on each
/// other host. Deterministic create order -> twin fabrics populate with
/// identical VM ids, LIDs and vGUIDs.
void populate_evacuation(core::VSwitchFabric& vsf) {
  for (std::size_t i = 0; i < kVfs; ++i) vsf.create_vm(0);
  for (std::size_t h = 1; h < kHyps; ++h) vsf.create_vm(h);
}

struct EvacRow {
  std::string topology;
  std::size_t switches = 0;
  std::size_t vms = 0;
  std::size_t moves = 0;
  std::size_t batches = 0;
  std::size_t skipped = 0;
  std::uint64_t naive_smps = 0;
  double naive_elapsed_s = 0.0;
  std::uint64_t planned_smps = 0;
  double planned_makespan_s = 0.0;
  double planned_serial_s = 0.0;
};

EvacRow run_evacuation(topology::PaperFatTree which) {
  EvacRow row;
  row.topology = topology::to_string(which);

  // Naive twin: serial migrate_txn, round-robin destinations, defaults.
  {
    auto b = make_tree(which, kVfs);
    row.switches = b.built.num_switches();
    populate_evacuation(*b.vsf);
    row.vms = b.vsf->active_vm_ids().size();
    cloud::CloudOrchestrator cloud(*b.vsf, cloud::Placement::kRoundRobin);
    std::vector<std::uint32_t> leaving;
    for (const std::uint32_t id : b.vsf->active_vm_ids()) {
      if (b.vsf->vm({id}).hypervisor == 0) leaving.push_back(id);
    }
    std::size_t cursor = 1;
    for (const std::uint32_t id : leaving) {
      while (b.vsf->free_vf_count(cursor) == 0) {
        cursor = cursor % (kHyps - 1) + 1;
      }
      const auto report = cloud.migrate_txn({id}, cursor);
      cursor = cursor % (kHyps - 1) + 1;
      row.naive_elapsed_s += report.elapsed_s;
      row.naive_smps +=
          report.reconfig.total_smps() + report.rollback_smps;
      ++row.moves;
    }
  }

  // Planned twin: MigrationPlanner + PlanExecutor, minimal mode.
  {
    auto b = make_tree(which, kVfs);
    populate_evacuation(*b.vsf);
    cloud::CloudOrchestrator cloud(*b.vsf, cloud::Placement::kSpread);
    cloud::MigrationPlanner planner(
        cloud, {.mode = core::ReconfigMode::kMinimal});
    cloud::FleetGoal goal;
    goal.kind = cloud::FleetGoalKind::kEvacuateHypervisor;
    goal.hypervisor = 0;
    const auto plan = planner.plan(goal);
    cloud::PlanExecutor executor(cloud);
    const auto exec = executor.execute(
        planner, plan, {.mode = core::ReconfigMode::kMinimal});
    row.batches = exec.batches.size();
    row.skipped = exec.skipped + exec.failed + exec.rolled_back;
    row.planned_smps = exec.smps + exec.rollback_smps;
    row.planned_makespan_s = exec.makespan_s;
    row.planned_serial_s = exec.serial_s;
  }
  return row;
}

struct SwapRow {
  std::string topology;
  std::uint64_t swap_smps = 0;
  double swap_elapsed_s = 0.0;
  std::uint64_t shuffle_smps = 0;
  double shuffle_elapsed_s = 0.0;
};

/// Two full hosts, one spare VF elsewhere. The swap twin trades the VMs in
/// one fused transaction; the shuffle twin routes through the spare slot.
SwapRow run_swap_vs_shuffle(topology::PaperFatTree which) {
  SwapRow row;
  row.topology = topology::to_string(which);
  constexpr std::size_t vfs = 2;
  const auto populate = [](core::VSwitchFabric& vsf) {
    // Hosts 0 and 1 full; host 2 keeps one free VF for the shuffle.
    std::vector<core::VmHandle> vms;
    for (std::size_t i = 0; i < vfs; ++i) vms.push_back(vsf.create_vm(0).vm);
    for (std::size_t i = 0; i < vfs; ++i) vms.push_back(vsf.create_vm(1).vm);
    vsf.create_vm(2);
    return vms;
  };
  const core::MigrationOptions minimal{.mode =
                                           core::ReconfigMode::kMinimal};

  {
    auto b = make_tree(which, vfs);
    const auto vms = populate(*b.vsf);
    cloud::CloudOrchestrator cloud(*b.vsf, cloud::Placement::kFirstFit);
    const auto report = cloud.swap_txn(vms[0], vms[vfs], minimal);
    row.swap_smps = report.reconfig.total_smps() + report.rollback_smps;
    row.swap_elapsed_s = report.elapsed_s;
  }
  {
    auto b = make_tree(which, vfs);
    const auto vms = populate(*b.vsf);
    cloud::CloudOrchestrator cloud(*b.vsf, cloud::Placement::kFirstFit);
    for (const auto& [vm, dst] :
         {std::pair{vms[0], std::size_t{2}}, {vms[vfs], std::size_t{0}},
          {vms[0], std::size_t{1}}}) {
      const auto report = cloud.migrate_txn(vm, dst, minimal);
      row.shuffle_smps +=
          report.reconfig.total_smps() + report.rollback_smps;
      row.shuffle_elapsed_s += report.elapsed_s;
    }
  }
  return row;
}

struct ChaosRow {
  std::string topology;
  inject::ChaosReport report;
};

ChaosRow run_evacuation_chaos(topology::PaperFatTree which,
                              std::size_t tree_idx) {
  ChaosRow row;
  row.topology = topology::to_string(which);
  auto b = make_tree(which, kVfs);
  populate_evacuation(*b.vsf);
  cloud::CloudOrchestrator cloud(*b.vsf, cloud::Placement::kSpread);
  inject::FaultInjector injector(b.fabric, g_seed + 101 * tree_idx);
  inject::ChaosConfig config;
  config.seed = g_seed + 101 * tree_idx;
  config.scenario = inject::ChaosScenario::kEvacuation;
  row.report = inject::run_chaos(cloud, injector, config);
  return row;
}

void print_tables(const std::optional<std::string>& json_out) {
  std::vector<EvacRow> evac;
  std::vector<SwapRow> swaps;
  std::vector<ChaosRow> chaos;
  std::size_t tree_idx = 0;
  for (const auto which : bench::selected_paper_trees()) {
    evac.push_back(run_evacuation(which));
    swaps.push_back(run_swap_vs_shuffle(which));
    if (g_chaos) chaos.push_back(run_evacuation_chaos(which, tree_idx));
    ++tree_idx;
  }

  std::printf(
      "\nFleet evacuation: drain a full hypervisor (%zu VMs), naive serial "
      "loop vs planned batches\n",
      kVfs);
  std::printf("%-28s %5s %5s %7s %9s %12s %11s %14s %13s %8s\n", "tree",
              "vms", "moves", "batches", "naive_smp", "naive_s",
              "planned_smp", "planned_mks_s", "plan_serial_s", "speedup");
  bench::rule(122);
  for (const auto& r : evac) {
    std::printf(
        "%-28s %5zu %5zu %7zu %9llu %12.2f %11llu %14.2f %13.2f %7.1fx%s\n",
        r.topology.c_str(), r.vms, r.moves, r.batches,
        static_cast<unsigned long long>(r.naive_smps), r.naive_elapsed_s,
        static_cast<unsigned long long>(r.planned_smps),
        r.planned_makespan_s, r.planned_serial_s,
        r.planned_makespan_s > 0.0 ? r.naive_elapsed_s / r.planned_makespan_s
                                   : 0.0,
        r.skipped != 0 ? "  (!clean)" : "");
  }
  bench::rule(122);
  std::printf(
      "Batches overlap their wall-clock phases (detach/copy/attach), so the "
      "makespan is the per-batch\nmaximum; minimal-mode updates and spread "
      "destinations cut the SMP bill. plan_serial_s is what\nthe same moves "
      "cost one at a time.\n");

  std::printf(
      "\nDestination swap vs 3-move shuffle (two full hosts, one spare "
      "VF, minimal mode)\n");
  std::printf("%-28s %9s %8s %12s %11s %9s\n", "tree", "swap_smp", "swap_s",
              "shuffle_smp", "shuffle_s", "smp_save");
  bench::rule(84);
  for (const auto& r : swaps) {
    const double save =
        r.shuffle_smps > 0
            ? 100.0 * (1.0 - static_cast<double>(r.swap_smps) /
                                 static_cast<double>(r.shuffle_smps))
            : 0.0;
    std::printf("%-28s %9llu %8.2f %12llu %11.2f %8.1f%%\n",
                r.topology.c_str(),
                static_cast<unsigned long long>(r.swap_smps),
                r.swap_elapsed_s,
                static_cast<unsigned long long>(r.shuffle_smps),
                r.shuffle_elapsed_s, save);
  }
  bench::rule(84);

  if (g_chaos) {
    std::printf(
        "\nEvacuation under chaos (switch killed mid-plan), seed=%llu\n",
        static_cast<unsigned long long>(g_seed));
    std::printf("%-28s %5s %5s %7s %7s %8s %5s %-18s\n", "tree", "moves",
                "swaps", "batches", "replans", "complete", "viol", "digest");
    bench::rule(96);
    for (const auto& r : chaos) {
      std::printf("%-28s %5zu %5zu %7zu %7zu %8s %5zu 0x%016llx\n",
                  r.topology.c_str(), r.report.evacuation_moves,
                  r.report.evacuation_swaps, r.report.evacuation_batches,
                  r.report.evacuation_replans,
                  r.report.evacuation_complete ? "yes" : "NO",
                  r.report.checker_violations,
                  static_cast<unsigned long long>(r.report.digest));
    }
    bench::rule(96);
  }
  std::printf("\n");

  if (json_out) {
    std::ostringstream os;
    os << "{\n  \"bench\": \"migration_plan\",\n  \"schema_version\": 1,\n"
       << "  \"hardware_threads\": " << ThreadPool::global_thread_count()
       << ",\n  \"rows\": [\n";
    for (std::size_t i = 0; i < evac.size(); ++i) {
      const auto& e = evac[i];
      const auto& s = swaps[i];
      os << "    {\"topology\": \"" << e.topology
         << "\", \"switches\": " << e.switches << ", \"vms\": " << e.vms
         << ", \"moves\": " << e.moves << ", \"batches\": " << e.batches
         << ", \"unclean\": " << e.skipped
         << ", \"naive_smps\": " << e.naive_smps
         << ", \"naive_elapsed_s\": " << e.naive_elapsed_s
         << ", \"planned_smps\": " << e.planned_smps
         << ", \"planned_makespan_s\": " << e.planned_makespan_s
         << ", \"planned_serial_s\": " << e.planned_serial_s
         << ", \"swap_smps\": " << s.swap_smps
         << ", \"swap_elapsed_s\": " << s.swap_elapsed_s
         << ", \"shuffle_smps\": " << s.shuffle_smps
         << ", \"shuffle_elapsed_s\": " << s.shuffle_elapsed_s;
      if (g_chaos) {
        const auto& c = chaos[i].report;
        os << ", \"chaos_complete\": "
           << (c.evacuation_complete ? "true" : "false")
           << ", \"chaos_violations\": " << c.checker_violations
           << ", \"chaos_digest\": \"0x" << std::hex << c.digest << std::dec
           << "\"";
      }
      os << "}" << (i + 1 < evac.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    bench::dump_json(json_out, os.str(), "migration plan rows");
  }
}

/// Planning cost alone (no execution) for a full-host drain on the
/// 324-node tree: the price of prediction + conflict batching.
void BM_PlanEvacuation(benchmark::State& state) {
  auto b = make_tree(topology::PaperFatTree::k324, kVfs);
  populate_evacuation(*b.vsf);
  cloud::CloudOrchestrator cloud(*b.vsf, cloud::Placement::kSpread);
  cloud::MigrationPlanner planner(cloud,
                                  {.mode = core::ReconfigMode::kMinimal});
  cloud::FleetGoal goal;
  goal.kind = cloud::FleetGoalKind::kEvacuateHypervisor;
  goal.hypervisor = 0;
  for (auto _ : state) {
    const auto plan = planner.plan(goal);
    benchmark::DoNotOptimize(plan.total_moves());
  }
}
BENCHMARK(BM_PlanEvacuation)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const auto metrics_out = ibvs::bench::consume_metrics_out(argc, argv);
  const auto trace_out = ibvs::bench::consume_trace_out(argc, argv);
  const auto json_out =
      ibvs::bench::consume_flag_value(argc, argv, "--json-out");
  ibvs::bench::consume_threads(argc, argv);
  g_seed = ibvs::bench::consume_seed(argc, argv, g_seed);
  g_chaos = consume_chaos(argc, argv);
  print_tables(json_out);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  ibvs::bench::dump_metrics(metrics_out);
  ibvs::bench::dump_trace(trace_out);
  return 0;
}
