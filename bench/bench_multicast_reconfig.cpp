// Extension experiment: multicast across vSwitch live migration.
//
// The paper reconfigures *unicast* forwarding when a VM moves; a production
// subnet also carries multicast groups, whose spanning trees key on the
// members' attachment points. Because the vSwitch migration preserves the
// member's LID, the group state itself never changes — only the tree must
// be patched, and the same diff-based economics apply: an intra-leaf move
// costs a single MFT slice, a cross-tree move a handful, versus rebuilding
// every group's tree from scratch.
#include <benchmark/benchmark.h>

#include "bench/common.hpp"
#include "fabric/trace.hpp"
#include "sm/multicast.hpp"
#include "util/rng.hpp"

namespace {

using namespace ibvs;

std::uint64_t g_seed = 12;  ///< default; override with --seed

void print_table() {
  std::printf(
      "\nMulticast reconfiguration around live migration (virtualized "
      "324-node tree, 18 hypervisors)\n");
  std::printf("%-40s %12s %14s %12s\n", "event", "MFT SMPs",
              "switches", "groups");
  bench::rule(84);

  auto b = bench::VirtualBench::make(core::LidScheme::kPrepopulated, 18, 4);
  sm::McGroupManager mc(*b.sm);
  std::vector<core::VmHandle> vms;
  for (int i = 0; i < 18; ++i) vms.push_back(b.vsf->create_vm(i).vm);

  // Three groups with overlapping membership across the fabric.
  std::vector<Lid> groups;
  SplitMix64 rng(g_seed);
  for (int g = 0; g < 3; ++g) {
    const Lid mlid = mc.create_group(Guid{0xD000u + g});
    groups.push_back(mlid);
    for (int m = 0; m < 8; ++m) {
      const auto vm = vms[rng.below(vms.size())];
      const Lid lid = b.vsf->vm(vm).lid;
      if (mc.group(mlid).members.count(lid) == 0) mc.join(mlid, lid);
    }
  }
  auto dist = mc.distribute();
  std::printf("%-40s %12llu %14zu %12zu\n", "initial tree distribution",
              static_cast<unsigned long long>(dist.smps),
              dist.switches_touched, mc.num_groups());

  // Intra-leaf migration of a member of group 0.
  const Lid member = *mc.group(groups[0]).members.begin();
  core::VmHandle moving;
  for (const auto vm : vms) {
    if (b.vsf->vm(vm).lid == member) moving = vm;
  }
  if (moving.valid()) {
    const auto src = b.vsf->vm(moving).hypervisor;
    const std::size_t intra = src % 2 == 0 ? src + 1 : src - 1;
    if (b.vsf->free_vf_on(intra)) {
      b.vsf->migrate_vm(moving, intra);
      mc.refresh_after_move(member);
      dist = mc.distribute();
      std::printf("%-40s %12llu %14zu %12zu\n",
                  "intra-leaf migration of one member",
                  static_cast<unsigned long long>(dist.smps),
                  dist.switches_touched, mc.num_groups());
    }
    // Cross-fabric migration of the same member.
    const auto far = b.vsf->find_free_hypervisor(b.vsf->vm(moving).hypervisor);
    if (far) {
      b.vsf->migrate_vm(moving, *far);
      mc.refresh_after_move(member);
      dist = mc.distribute();
      std::printf("%-40s %12llu %14zu %12zu\n",
                  "cross-fabric migration of one member",
                  static_cast<unsigned long long>(dist.smps),
                  dist.switches_touched, mc.num_groups());
    }
  }

  // Baseline: rebuilding and redistributing everything from empty MFTs.
  for (NodeId sw : b.fabric.switch_ids()) {
    b.fabric.node(sw).mft.clear();
  }
  mc.recompute_all();
  dist = mc.distribute();
  std::printf("%-40s %12llu %14zu %12zu\n",
              "full rebuild (baseline)",
              static_cast<unsigned long long>(dist.smps),
              dist.switches_touched, mc.num_groups());
  bench::rule(84);
  std::printf(
      "The migrated member keeps its LID, so group membership is untouched;"
      "\nonly the MFT slices whose masks changed are written.\n\n");
}

void BM_McTreeRecompute(benchmark::State& state) {
  auto b = bench::VirtualBench::make(core::LidScheme::kDynamic, 18, 4);
  sm::McGroupManager mc(*b.sm);
  std::vector<core::VmHandle> vms;
  for (int i = 0; i < 12; ++i) vms.push_back(b.vsf->create_vm().vm);
  const Lid mlid = mc.create_group(Guid{0xE0});
  for (const auto vm : vms) mc.join(mlid, b.vsf->vm(vm).lid);
  const Lid member = b.vsf->vm(vms[0]).lid;
  for (auto _ : state) {
    mc.refresh_after_move(member);
    benchmark::DoNotOptimize(mc.num_groups());
  }
}
BENCHMARK(BM_McTreeRecompute)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  const auto metrics_out = ibvs::bench::consume_metrics_out(argc, argv);
  const auto trace_out = ibvs::bench::consume_trace_out(argc, argv);
  ibvs::bench::consume_threads(argc, argv);
  g_seed = ibvs::bench::consume_seed(argc, argv, g_seed);
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  ibvs::bench::dump_metrics(metrics_out);
  ibvs::bench::dump_trace(trace_out);
  return 0;
}
