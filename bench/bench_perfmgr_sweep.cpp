// PerfMgr polling cost vs fabric size.
//
// A PerfMgr sweep issues Get(PortCounters) [+ Get(PortCountersExtended)] per
// connected port on the same transport the SM uses, so the monitoring bill
// scales with ports, not nodes. Two parts:
//  1. A table across the paper's fat-tree topologies: ports polled, MADs per
//     sweep (classic-only vs +extended), and the modeled batch makespan —
//     i.e. what continuous monitoring costs the management plane.
//  2. Google-benchmark timers for the sweep itself on the 324-node tree.
#include <benchmark/benchmark.h>

#include "bench/common.hpp"
#include "perf/health.hpp"
#include "perf/perf_mgr.hpp"

namespace {

using namespace ibvs;

struct SweepSetup {
  Fabric fabric;
  std::unique_ptr<sm::SubnetManager> sm;

  static SweepSetup make(topology::PaperFatTree which) {
    SweepSetup s;
    const auto built = topology::build_paper_fat_tree(s.fabric, which);
    const auto hosts = topology::attach_hosts(s.fabric, built.host_slots);
    s.sm = std::make_unique<sm::SubnetManager>(
        s.fabric, hosts[0],
        routing::make_engine(routing::EngineKind::kFatTree));
    s.sm->full_sweep();
    return s;
  }
};

void print_polling_cost() {
  std::printf("\nPerfMgr polling cost per sweep (all connected ports)\n");
  std::printf("%-14s %8s %10s %12s %12s %14s\n", "Topology", "Ports",
              "MADs", "MADs+ext", "makespan us", "makespan+ext");
  bench::rule(76);
  for (const auto which : bench::selected_paper_trees()) {
    auto setup = SweepSetup::make(which);
    perf::PerfMgr classic(*setup.sm,
                          perf::PerfMgrConfig{.poll_extended = false});
    const auto classic_sweep = classic.sweep();
    perf::PerfMgr extended(*setup.sm,
                           perf::PerfMgrConfig{.poll_extended = true});
    const auto extended_sweep = extended.sweep();
    std::printf("%-14s %8zu %10llu %12llu %12.1f %14.1f\n",
                topology::to_string(which).c_str(),
                classic_sweep.ports_polled,
                static_cast<unsigned long long>(classic_sweep.mads),
                static_cast<unsigned long long>(extended_sweep.mads),
                classic_sweep.time_us, extended_sweep.time_us);
  }
  bench::rule(76);
  std::printf(
      "MADs land in ibvs_smp_total{attribute=PortCounters*}; polling is "
      "visible management traffic.\n\n");
}

void BM_PerfMgrSweep(benchmark::State& state) {
  auto setup = SweepSetup::make(topology::PaperFatTree::k324);
  perf::PerfMgr pmgr(*setup.sm);
  for (auto _ : state) {
    auto report = pmgr.sweep();
    benchmark::DoNotOptimize(report.ports_polled);
  }
}
BENCHMARK(BM_PerfMgrSweep)->Unit(benchmark::kMillisecond);

void BM_PerfMgrSweepAndAnalyze(benchmark::State& state) {
  auto setup = SweepSetup::make(topology::PaperFatTree::k324);
  perf::PerfMgr pmgr(*setup.sm);
  perf::HealthMonitor monitor;
  for (auto _ : state) {
    auto health = monitor.analyze(pmgr.sweep());
    benchmark::DoNotOptimize(health.ok);
  }
}
BENCHMARK(BM_PerfMgrSweepAndAnalyze)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const auto metrics_out = ibvs::bench::consume_metrics_out(argc, argv);
  const auto trace_out = ibvs::bench::consume_trace_out(argc, argv);
  ibvs::bench::consume_threads(argc, argv);
  print_polling_cost();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  ibvs::bench::dump_metrics(metrics_out);
  ibvs::bench::dump_trace(trace_out);
  return 0;
}
