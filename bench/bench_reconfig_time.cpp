// §VI-A/§VI-B — reconfiguration time under the cost model (eqs. 1-5),
// cross-checked against the event-driven transport simulation.
//
// Rows: for each paper topology, the analytical full-reconfiguration time
// RCt = PCt + n*m*(k+r) versus the vSwitch reconfiguration vSwitch_RCt =
// n'*m'*(k+r) (directed) and n'*m'*k (destination routed, eq. 5), plus the
// pipelined refinement. Then a simulated migration on the 324-node tree
// measures the same quantities from actual SMP traffic.
#include <benchmark/benchmark.h>

#include "bench/common.hpp"
#include "model/cost.hpp"

namespace {

using namespace ibvs;

void print_analytical() {
  // k and r from the default timing model over an average 3-hop path.
  const fabric::TimingModel timing;
  const double k_us = timing.smp_latency_us(3, false);
  const double r_us =
      timing.smp_latency_us(3, true) - timing.smp_latency_us(3, false);

  // PCt measured on this machine for the fat-tree engine (scaled per tree
  // by the closed-form table's sizes is not meaningful; we use the paper's
  // qualitative point: PCt dominates RCt at scale. Here we take the
  // measured fat-tree engine time on the small trees and the paper's 67 s
  // style magnitude on the large ones for illustration of the analysis.)
  std::printf("\nReconfiguration cost model (k = %.1f us, r = %.1f us)\n",
              k_us, r_us);
  std::printf("%8s %10s | %16s | %14s %14s %14s\n", "nodes", "LFTDt(ms)",
              "worst vSwitch", "swap DR (us)", "swap dest (us)",
              "best case (us)");
  bench::rule(92);
  for (const auto& row : model::table1_paper_rows()) {
    const model::CostParams full{.n = row.switches,
                                 .m = row.min_lft_blocks,
                                 .k_us = k_us,
                                 .r_us = r_us};
    const double lftd = model::lft_distribution_us(full);
    // Worst case swap: n' = n, m' = 2.
    const double swap_dr =
        model::vswitch_reconfiguration_us(row.switches, 2, k_us, r_us);
    const double swap_dest = model::vswitch_reconfiguration_destrouted_us(
        row.switches, 2, k_us);
    const double best =
        model::vswitch_reconfiguration_destrouted_us(1, 1, k_us);
    std::printf("%8zu %10.2f | %15llux | %14.1f %14.1f %14.1f\n", row.nodes,
                lftd / 1000.0,
                static_cast<unsigned long long>(row.min_smps_full_rc /
                                                row.max_smps_swap),
                swap_dr, swap_dest, best);
  }
  bench::rule(92);
  std::printf(
      "LFTDt alone (no PCt!) exceeds the worst-case vSwitch reconfiguration "
      "by the SMP ratio of Table I;\nadding PCt (seconds to hours at scale, "
      "Fig. 7) makes the gap the paper's headline: vSwitch_RCt << RCt.\n\n");
}

void print_simulated() {
  std::printf("Simulated on the virtualized 324-node tree:\n");
  for (const auto routing_mode :
       {SmpRouting::kDirected, SmpRouting::kLidRouted}) {
    for (const unsigned depth : {1u, 4u, 16u}) {
      auto b = bench::VirtualBench::make(core::LidScheme::kPrepopulated, 18,
                                         4);
      fabric::TimingModel timing;
      timing.pipeline_depth = depth;
      b.sm->transport().set_timing(timing);
      const auto vm = b.vsf->create_vm(0);

      // Full traditional reconfiguration (the baseline a LID move would
      // force without the paper's method).
      const auto full = b.vsf->full_reconfigure();

      core::MigrationOptions options;
      options.smp_routing = routing_mode;
      const auto migration = b.vsf->migrate_vm(vm.vm, 9, options);

      std::printf(
          "  %-10s depth=%-2u  full RC: PCt %8.2f us + LFTDt %8.2f us | "
          "vSwitch: %7.2f us (n'=%zu, %llu SMPs)\n",
          routing_mode == SmpRouting::kDirected ? "directed" : "dest-routed",
          depth, full.path_computation_seconds * 1e6,
          full.distribution.time_us, migration.reconfig.lft_time_us,
          migration.reconfig.switches_updated,
          static_cast<unsigned long long>(migration.reconfig.lft_smps));
    }
  }
  std::printf("\n");
}

void BM_MigrationReconfiguration(benchmark::State& state) {
  auto b = bench::VirtualBench::make(core::LidScheme::kPrepopulated, 18, 4);
  const auto vm = b.vsf->create_vm(0);
  std::size_t dst = 9;
  std::size_t src = 0;
  for (auto _ : state) {
    auto report = b.vsf->migrate_vm(vm.vm, dst);
    benchmark::DoNotOptimize(report.reconfig.lft_smps);
    std::swap(src, dst);
  }
}
BENCHMARK(BM_MigrationReconfiguration)->Unit(benchmark::kMicrosecond);

void BM_FullReconfiguration(benchmark::State& state) {
  auto b = bench::VirtualBench::make(core::LidScheme::kPrepopulated, 18, 4);
  for (auto _ : state) {
    auto report = b.vsf->full_reconfigure();
    benchmark::DoNotOptimize(report.distribution.smps);
  }
}
BENCHMARK(BM_FullReconfiguration)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  const auto metrics_out = ibvs::bench::consume_metrics_out(argc, argv);
  const auto trace_out = ibvs::bench::consume_trace_out(argc, argv);
  ibvs::bench::consume_threads(argc, argv);
  print_analytical();
  print_simulated();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  ibvs::bench::dump_metrics(metrics_out);
  ibvs::bench::dump_trace(trace_out);
  return 0;
}
