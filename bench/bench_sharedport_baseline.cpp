// §IV — Shared Port vs vSwitch on the same consolidation workload.
//
// The architectural comparison behind the paper: under Shared Port a
// migration always changes the VM's LID (breaking peers' path records) or —
// if the LID is emulated to travel, as the paper's testbed had to — cuts
// off every co-resident VM. Under either vSwitch scheme all three addresses
// travel with the VM and nothing else is disturbed. The table quantifies
// all of it on one workload.
#include <benchmark/benchmark.h>

#include "bench/common.hpp"
#include "core/shared_port.hpp"
#include "fabric/trace.hpp"
#include "util/rng.hpp"

namespace {

using namespace ibvs;

std::uint64_t g_seed = 17;  ///< default; override with --seed

struct SharedPortOutcome {
  std::size_t migrations = 0;
  std::size_t lid_changes = 0;
  std::size_t stale_path_records = 0;
  std::size_t co_residents_broken = 0;
};

SharedPortOutcome run_shared_port(bool emulate_lid_migration) {
  Fabric fabric;
  const auto built =
      topology::build_paper_fat_tree(fabric, topology::PaperFatTree::k324);
  LidMap lids;
  // 18 hypervisors, 2 per leaf on the first 9 leaves (like the vSwitch
  // side), each a plain HCA with one shared LID.
  std::vector<core::SharedPortHypervisor> hyps;
  std::vector<NodeId> hcas;
  for (std::size_t i = 0; i < 18; ++i) {
    const auto& slot = built.host_slots[(i / 2) * 18 + (i % 2)];
    const NodeId hca = fabric.add_ca("hyp-" + std::to_string(i));
    fabric.connect(hca, 1, slot.leaf, slot.port);
    hcas.push_back(hca);
  }
  for (NodeId sw : fabric.switch_ids()) lids.assign_next(fabric, sw, 0);
  for (NodeId hca : hcas) {
    lids.assign_next(fabric, hca, 1);
    hyps.push_back(core::SharedPortHypervisor{hca, 4});
  }
  core::SharedPortFabric sp(fabric, lids, hyps);

  std::vector<std::uint32_t> vms;
  for (std::size_t h = 0; h < hyps.size(); ++h) {
    vms.push_back(sp.create_vm(h));
    vms.push_back(sp.create_vm(h));
  }

  SharedPortOutcome outcome;
  SplitMix64 rng(g_seed);
  for (int i = 0; i < 40; ++i) {
    const auto id = vms[rng.below(vms.size())];
    const auto current = sp.vm(id).hypervisor;
    std::size_t dst = rng.below(hyps.size());
    if (dst == current) dst = (dst + 1) % hyps.size();
    if (sp.vms_on(dst) >= 4) continue;
    const auto report =
        sp.migrate_vm(id, dst, /*active_peers=*/vms.size() - 1,
                      emulate_lid_migration);
    ++outcome.migrations;
    if (report.lid_changed) ++outcome.lid_changes;
    outcome.stale_path_records += report.peers_with_stale_paths;
    outcome.co_residents_broken += report.co_resident_vms_broken;
  }
  return outcome;
}

struct VSwitchOutcome {
  std::size_t migrations = 0;
  std::size_t lid_changes = 0;
  std::size_t unreachable_after = 0;
  std::uint64_t lft_smps = 0;
};

VSwitchOutcome run_vswitch(core::LidScheme scheme) {
  auto b = bench::VirtualBench::make(scheme, 18, 4);
  std::vector<core::VmHandle> vms;
  for (int i = 0; i < 36; ++i) vms.push_back(b.vsf->create_vm().vm);
  std::vector<NodeId> pfs;
  for (const auto& h : b.hyps) pfs.push_back(h.pf);

  VSwitchOutcome outcome;
  SplitMix64 rng(g_seed);
  for (int i = 0; i < 40; ++i) {
    const auto vm = vms[rng.below(vms.size())];
    const Lid before = b.vsf->vm(vm).lid;
    const auto dst = b.vsf->find_free_hypervisor(b.vsf->vm(vm).hypervisor);
    if (!dst) continue;
    const auto report = b.vsf->migrate_vm(vm, *dst);
    ++outcome.migrations;
    outcome.lft_smps += report.reconfig.lft_smps;
    if (b.vsf->vm(vm).lid != before) ++outcome.lid_changes;
    // Does anyone lose connectivity to anyone?
    for (const auto other : vms) {
      if (!fabric::all_reach(b.fabric, pfs, b.vsf->vm(other).lid)) {
        ++outcome.unreachable_after;
      }
    }
  }
  return outcome;
}

void print_comparison() {
  std::printf(
      "\nShared Port vs vSwitch — 40 random migrations, 18 hypervisors, 36 "
      "VMs, 324-node tree\n");
  std::printf("%-36s %10s %12s %14s %14s\n", "architecture", "migrations",
              "LID changes", "stale records", "VMs cut off");
  bench::rule(92);
  const auto sp_plain = run_shared_port(false);
  std::printf("%-36s %10zu %12zu %14zu %14zu\n",
              "Shared Port (driver reality)", sp_plain.migrations,
              sp_plain.lid_changes, sp_plain.stale_path_records,
              sp_plain.co_residents_broken);
  const auto sp_emulated = run_shared_port(true);
  std::printf("%-36s %10zu %12zu %14zu %14zu\n",
              "Shared Port (LID emulated to move)", sp_emulated.migrations,
              sp_emulated.lid_changes, sp_emulated.stale_path_records,
              sp_emulated.co_residents_broken);
  for (const auto scheme :
       {core::LidScheme::kPrepopulated, core::LidScheme::kDynamic}) {
    const auto vs = run_vswitch(scheme);
    std::printf("%-36s %10zu %12zu %14zu %14zu   (%llu LFT SMPs total)\n",
                ("vSwitch, " + core::to_string(scheme)).c_str(),
                vs.migrations, vs.lid_changes, std::size_t{0},
                vs.unreachable_after,
                static_cast<unsigned long long>(vs.lft_smps));
  }
  bench::rule(92);
  std::printf(
      "Shared Port cannot migrate transparently: either the VM's LID "
      "changes (stale records at every peer)\nor co-residents break. The "
      "vSwitch schemes migrate all addresses with zero collateral damage.\n"
      "An SM can run in a VM only under vSwitch (QP0 is blocked for Shared "
      "Port VFs): %s.\n\n",
      core::SharedPortFabric::vm_may_run_sm() ? "violated!" : "confirmed");
}

void BM_SharedPortMigration(benchmark::State& state) {
  Fabric fabric;
  LidMap lids;
  const NodeId sw = fabric.add_switch("sw", 8);
  std::vector<core::SharedPortHypervisor> hyps;
  for (int i = 0; i < 2; ++i) {
    const NodeId hca = fabric.add_ca("h" + std::to_string(i));
    fabric.connect(hca, 1, sw, static_cast<PortNum>(1 + i));
    lids.assign_next(fabric, hca, 1);
    hyps.push_back(core::SharedPortHypervisor{hca, 64});
  }
  core::SharedPortFabric sp(fabric, lids, hyps);
  const auto id = sp.create_vm(0);
  std::size_t dst = 1;
  for (auto _ : state) {
    auto report = sp.migrate_vm(id, dst, 10);
    benchmark::DoNotOptimize(report.new_lid);
    dst = 1 - dst;
  }
}
BENCHMARK(BM_SharedPortMigration);

}  // namespace

int main(int argc, char** argv) {
  const auto metrics_out = ibvs::bench::consume_metrics_out(argc, argv);
  const auto trace_out = ibvs::bench::consume_trace_out(argc, argv);
  ibvs::bench::consume_threads(argc, argv);
  g_seed = ibvs::bench::consume_seed(argc, argv, g_seed);
  print_comparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  ibvs::bench::dump_metrics(metrics_out);
  ibvs::bench::dump_trace(trace_out);
  return 0;
}
