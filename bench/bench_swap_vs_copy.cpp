// §V-C / Fig. 5 — LID swapping vs LID copying mechanics.
//
// Measures, over a randomized migration workload on the virtualized
// 324-node tree under both schemes:
//   * the distribution of m' (LFT blocks touched per updated switch):
//     swap = 1 when both LIDs share a 64-entry block, 2 otherwise;
//     copy = always 1;
//   * the distribution of n' (switches actually updated) under the
//     deterministic method and the §VI-D minimal mode;
//   * the drain variant's extra n' SMPs (§VI-C).
#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench/common.hpp"
#include "util/rng.hpp"

namespace {

using namespace ibvs;

std::uint64_t g_seed = 99;  ///< default; override with --seed

struct Stats {
  std::uint64_t migrations = 0;
  std::uint64_t same_block = 0;   // m' = 1 everywhere
  std::uint64_t cross_block = 0;  // some switch needed 2 SMPs
  std::uint64_t total_smps = 0;
  std::uint64_t total_updated = 0;
  std::uint64_t total_minimal = 0;
  std::uint64_t min_smps = ~0ull;
  std::uint64_t max_smps = 0;
};

Stats run_workload(core::LidScheme scheme, core::ReconfigMode mode,
                   bool drain) {
  auto b = bench::VirtualBench::make(scheme, 18, 4);
  SplitMix64 rng(g_seed);
  std::vector<core::VmHandle> vms;
  for (int i = 0; i < 24; ++i) vms.push_back(b.vsf->create_vm().vm);

  Stats stats;
  core::MigrationOptions options;
  options.mode = mode;
  options.drain_first = drain;
  for (int i = 0; i < 100; ++i) {
    const auto vm = vms[rng.below(vms.size())];
    const auto dst = b.vsf->find_free_hypervisor(b.vsf->vm(vm).hypervisor);
    if (!dst) continue;
    const auto report = b.vsf->migrate_vm(vm, *dst, options);
    ++stats.migrations;
    const auto& r = report.reconfig;
    stats.total_smps += r.lft_smps + r.drain_smps;
    stats.total_updated += r.switches_updated;
    stats.total_minimal += report.minimal_set_size;
    stats.min_smps = std::min(stats.min_smps, r.lft_smps);
    stats.max_smps = std::max(stats.max_smps, r.lft_smps);
    if (r.lft_smps > r.switches_updated) {
      ++stats.cross_block;
    } else {
      ++stats.same_block;
    }
  }
  return stats;
}

void print_table() {
  std::printf(
      "\nLID swap vs copy — 100 random migrations, virtualized 324-node "
      "tree (36 switches)\n");
  std::printf("%-22s %-13s %5s | %9s %9s | %8s %8s | %10s %10s\n", "scheme",
              "mode", "drain", "m'=1 runs", "m'=2 runs", "min SMPs",
              "max SMPs", "avg n'", "avg min-set");
  bench::rule(112);
  for (const auto scheme :
       {core::LidScheme::kPrepopulated, core::LidScheme::kDynamic}) {
    for (const auto mode : {core::ReconfigMode::kDeterministic,
                            core::ReconfigMode::kMinimal}) {
      for (const bool drain : {false, true}) {
        if (drain && mode == core::ReconfigMode::kMinimal) continue;
        const auto s = run_workload(scheme, mode, drain);
        std::printf(
            "%-22s %-13s %5s | %9llu %9llu | %8llu %8llu | %10.1f %10.1f\n",
            core::to_string(scheme).c_str(),
            mode == core::ReconfigMode::kDeterministic ? "deterministic"
                                                       : "minimal",
            drain ? "yes" : "no",
            static_cast<unsigned long long>(s.same_block),
            static_cast<unsigned long long>(s.cross_block),
            static_cast<unsigned long long>(s.min_smps),
            static_cast<unsigned long long>(s.max_smps),
            static_cast<double>(s.total_updated) /
                static_cast<double>(s.migrations),
            static_cast<double>(s.total_minimal) /
                static_cast<double>(s.migrations));
      }
    }
  }
  bench::rule(112);
  std::printf(
      "Copy never exceeds 1 SMP per switch; swap needs 2 only when the two "
      "LIDs land in different 64-LID\nblocks (Fig. 5). Minimal mode drives "
      "n' toward the §VI-D skyline (1 for intra-leaf moves).\n\n");
}

void BM_MigrateSwap(benchmark::State& state) {
  auto b = bench::VirtualBench::make(core::LidScheme::kPrepopulated, 18, 4);
  const auto vm = b.vsf->create_vm(0);
  std::size_t dst = 9;
  for (auto _ : state) {
    auto report = b.vsf->migrate_vm(vm.vm, dst);
    benchmark::DoNotOptimize(report.reconfig.lft_smps);
    dst = b.vsf->vm(vm.vm).hypervisor == 9 ? 0 : 9;
  }
}
BENCHMARK(BM_MigrateSwap)->Unit(benchmark::kMicrosecond);

void BM_MigrateCopy(benchmark::State& state) {
  auto b = bench::VirtualBench::make(core::LidScheme::kDynamic, 18, 4);
  const auto vm = b.vsf->create_vm(0);
  std::size_t dst = 9;
  for (auto _ : state) {
    auto report = b.vsf->migrate_vm(vm.vm, dst);
    benchmark::DoNotOptimize(report.reconfig.lft_smps);
    dst = b.vsf->vm(vm.vm).hypervisor == 9 ? 0 : 9;
  }
}
BENCHMARK(BM_MigrateCopy)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  const auto metrics_out = ibvs::bench::consume_metrics_out(argc, argv);
  const auto trace_out = ibvs::bench::consume_trace_out(argc, argv);
  ibvs::bench::consume_threads(argc, argv);
  g_seed = ibvs::bench::consume_seed(argc, argv, g_seed);
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  ibvs::bench::dump_metrics(metrics_out);
  ibvs::bench::dump_trace(trace_out);
  return 0;
}
