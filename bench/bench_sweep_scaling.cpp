// Sweep fast-path scaling: how the parallel LFT diff, the checker's
// parallel reachability scan, and the full distribution pass scale with the
// global thread pool size.
//
// This is the repo's perf-regression baseline. For each paper fat-tree and
// each thread count it measures, in wall-clock microseconds:
//
//   distribute_full_us  cold distribution: every installed LFT cleared,
//                       one diff+send pass reprograms the whole fabric
//                       (send accounting is serial, so this is the
//                       Amdahl-limited end),
//   rediff_us           no-op re-distribution: installed == master, the
//                       pass is a pure block-diff scan — the memcmp-bound
//                       phase the thread pool parallelizes,
//   checker_us          FabricChecker reachability sweep, 16 sampled
//                       sources tracing every active LID.
//
// `--json-out <file>` writes the rows as JSON (schema below); CI's
// perf-smoke job diffs that against the checked-in BENCH_sweep.json and
// fails on gross regressions. `--threads <n>` restricts the sweep to one
// thread count; default sweeps 1/2/4/8. IBVS_FIG7_LARGE=1 adds the
// 5832-node tree (the acceptance topology for the >= 3x rediff speedup).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <thread>

#include "bench/common.hpp"
#include "inject/checker.hpp"
#include "routing/engine.hpp"
#include "util/timer.hpp"

namespace {

using namespace ibvs;

constexpr int kSchemaVersion = 1;

struct Row {
  std::string topo;
  std::size_t switches = 0;
  std::size_t threads = 0;
  double distribute_full_us = 0.0;
  double rediff_us = 0.0;
  double checker_us = 0.0;
};

/// One booted paper tree with an SM attached to the last host slot.
struct Subnet {
  Fabric fabric;
  std::unique_ptr<sm::SubnetManager> smgr;

  explicit Subnet(topology::PaperFatTree which) {
    auto built = topology::build_paper_fat_tree(fabric, which);
    auto slots = built.host_slots;
    const auto sm_slot = slots.back();
    slots.pop_back();
    topology::attach_hosts(fabric, slots);
    const NodeId sm_node = fabric.add_ca("sm-node");
    fabric.connect(sm_node, 1, sm_slot.leaf, sm_slot.port);
    smgr = std::make_unique<sm::SubnetManager>(
        fabric, sm_node, routing::make_engine(routing::EngineKind::kFatTree));
    smgr->full_sweep();
  }
};

Row measure(Subnet& net, const std::string& topo, std::size_t threads) {
  Row row;
  row.topo = topo;
  row.switches = net.fabric.switch_ids().size();
  row.threads = threads;
  ThreadPool::set_global_threads(threads);

  // Cold distribution: wipe every installed table, one pass reprograms all.
  // Min of two runs to shave scheduler noise off the checked-in baseline.
  constexpr int kColdRuns = 2;
  for (int i = 0; i < kColdRuns; ++i) {
    for (const NodeId sw : net.fabric.switch_ids()) {
      net.fabric.node(sw).lft.clear();
    }
    Stopwatch watch;
    const auto report = net.smgr->distribute_lfts();
    const double us = watch.elapsed_seconds() * 1e6;
    if (i == 0 || us < row.distribute_full_us) row.distribute_full_us = us;
    benchmark::DoNotOptimize(report.smps);
  }

  // Warm re-diff: nothing differs, the pass is the parallel block scan.
  // Min of several runs — the steady-state sweep cost, free of first-touch
  // and scheduler noise.
  constexpr int kRediffRuns = 5;
  row.rediff_us = 0.0;
  for (int i = 0; i < kRediffRuns; ++i) {
    Stopwatch watch;
    const auto report = net.smgr->distribute_lfts();
    const double us = watch.elapsed_seconds() * 1e6;
    if (i == 0 || us < row.rediff_us) row.rediff_us = us;
    benchmark::DoNotOptimize(report.blocks_skipped);
  }

  // Checker reachability: 16 sampled sources, every active LID.
  const inject::FabricChecker checker(
      *net.smgr, inject::CheckerConfig{.max_violations = 16,
                                       .max_sources = 16});
  constexpr int kCheckerRuns = 3;
  row.checker_us = 0.0;
  for (int i = 0; i < kCheckerRuns; ++i) {
    Stopwatch watch;
    const auto report = checker.check();
    const double us = watch.elapsed_seconds() * 1e6;
    if (i == 0 || us < row.checker_us) row.checker_us = us;
    if (!report.clean()) {
      std::fprintf(stderr, "# checker found violations on %s!\n",
                   topo.c_str());
    }
  }
  return row;
}

void write_json(const std::string& path, const std::vector<Row>& rows) {
  std::FILE* file =
      path == "-" ? stdout : std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(file,
               "{\n  \"bench\": \"sweep_scaling\",\n"
               "  \"schema_version\": %d,\n"
               "  \"hardware_threads\": %u,\n  \"rows\": [\n",
               kSchemaVersion, std::thread::hardware_concurrency());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(file,
                 "    {\"topology\": \"%s\", \"switches\": %zu, "
                 "\"threads\": %zu, \"distribute_full_us\": %.1f, "
                 "\"rediff_us\": %.1f, \"checker_us\": %.1f}%s\n",
                 r.topo.c_str(), r.switches, r.threads,
                 r.distribute_full_us, r.rediff_us, r.checker_us,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(file, "  ]\n}\n");
  if (file != stdout) {
    std::fclose(file);
    std::fprintf(stderr, "# baseline written to %s\n", path.c_str());
  }
}

std::vector<Row> run_sweep(const std::vector<std::size_t>& thread_counts) {
  std::vector<Row> rows;
  std::printf("\nSweep fast-path scaling (wall-clock us; rediff = pure "
              "parallel diff phase)\n");
  std::printf("%-34s %8s %8s %16s %12s %12s %10s\n", "topology", "switches",
              "threads", "distribute_full", "rediff", "checker",
              "rediff-x");
  bench::rule(106);
  for (const auto which : bench::selected_paper_trees()) {
    const std::string topo = topology::to_string(which);
    Subnet net(which);
    double rediff_1t = 0.0;
    for (const std::size_t t : thread_counts) {
      Row row = measure(net, topo, t);
      if (t == thread_counts.front()) rediff_1t = row.rediff_us;
      const double speedup =
          row.rediff_us > 0.0 ? rediff_1t / row.rediff_us : 0.0;
      std::printf("%-34s %8zu %8zu %16.1f %12.1f %12.1f %9.2fx\n",
                  topo.c_str(), row.switches, row.threads,
                  row.distribute_full_us, row.rediff_us, row.checker_us,
                  speedup);
      std::fflush(stdout);
      rows.push_back(std::move(row));
    }
  }
  bench::rule(106);
  std::printf("Shape to reproduce: rediff and checker scale with threads "
              "(the diff/trace phases are\nparallel); distribute_full "
              "flattens early — its send accounting is serial by design\n"
              "(the SMP stream must stay byte-identical to a "
              "single-threaded sweep).\n\n");
  return rows;
}

/// Micro-benchmark: the per-switch block-diff scan the sweep fast path is
/// built from (one identical-table scan = the steady-state per-switch cost).
void BM_LftDiffScan(benchmark::State& state) {
  const Lid top{static_cast<std::uint16_t>(state.range(0))};
  Lft master(top);
  for (std::uint16_t lid = 1; lid < top.value(); ++lid) {
    master.set(Lid{lid}, static_cast<PortNum>(1 + lid % 36));
  }
  const Lft installed = master;
  for (auto _ : state) {
    std::size_t diffs = 0;
    master.for_each_diff_block(installed, [&](std::size_t) { ++diffs; });
    benchmark::DoNotOptimize(diffs);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(master.block_count()));
}
BENCHMARK(BM_LftDiffScan)->Arg(1024)->Arg(8192)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  const auto metrics_out = ibvs::bench::consume_metrics_out(argc, argv);
  const auto trace_out = ibvs::bench::consume_trace_out(argc, argv);
  const auto json_out =
      ibvs::bench::consume_flag_value(argc, argv, "--json-out");
  const auto threads_flag =
      ibvs::bench::consume_flag_value(argc, argv, "--threads");
  benchmark::Initialize(&argc, argv);  // tolerate --benchmark_* flags

  std::vector<std::size_t> thread_counts{1, 2, 4, 8};
  if (threads_flag) {
    char* end = nullptr;
    const unsigned long long parsed =
        std::strtoull(threads_flag->c_str(), &end, 0);
    if (end == threads_flag->c_str() || *end != '\0' || parsed == 0) {
      std::fprintf(stderr,
                   "error: --threads wants a positive integer, got '%s'\n",
                   threads_flag->c_str());
      return 2;
    }
    thread_counts = {static_cast<std::size_t>(parsed)};
  }

  const auto rows = run_sweep(thread_counts);
  if (json_out) write_json(*json_out, rows);
  ibvs::ThreadPool::set_global_threads(0);  // restore the default sizing
  benchmark::RunSpecifiedBenchmarks();
  ibvs::bench::dump_metrics(metrics_out);
  ibvs::bench::dump_trace(trace_out);
  return 0;
}
