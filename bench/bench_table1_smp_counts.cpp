// Table I — "Number of required SMPs to update LFTs of all switches for the
// fat-tree topologies used in Fig. 7".
//
// Two parts:
//  1. The closed-form table for all four paper topologies (reproduces the
//     paper's integers exactly).
//  2. A simulation cross-check on the 324- and 648-node trees: a real SM
//     sweep counts actual distribution SMPs, and real migrations count
//     actual LID-swap/copy SMPs, confirming the formulas.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench/common.hpp"
#include "model/cost.hpp"
#include "util/rng.hpp"

namespace {

using namespace ibvs;

std::uint64_t g_seed = 5;  ///< default; override with --seed

void print_closed_form() {
  std::printf(
      "\nTable I — SMPs required to update the LFTs of all switches\n");
  std::printf("%8s %9s %7s %10s %14s %16s %16s %16s\n", "Nodes", "Switches",
              "LIDs", "Blocks/sw", "Min SMPs full", "Min SMPs vSwitch",
              "Max SMPs swap", "Max SMPs copy");
  bench::rule(104);
  for (const auto& row : model::table1_paper_rows()) {
    std::printf("%8zu %9zu %7zu %10zu %14llu %16llu %16llu %16llu\n",
                row.nodes, row.switches, row.lids, row.min_lft_blocks,
                static_cast<unsigned long long>(row.min_smps_full_rc),
                static_cast<unsigned long long>(row.min_smps_vswitch),
                static_cast<unsigned long long>(row.max_smps_swap),
                static_cast<unsigned long long>(row.max_smps_copy));
  }
  bench::rule(104);
  std::printf(
      "Paper's rows:   324/36/360/6/216/1/72   648/54/702/11/594/1/108\n"
      "              5832/972/6804/107/104004/1/1944   "
      "11664/1620/13284/208/336960/1/3240\n\n");
}

void simulate_tree(topology::PaperFatTree which) {
  // Telemetry is the single source of truth for SMP counts: the registry's
  // Set(LinearFwdTable) counter must move by exactly the SMPs this sweep
  // reports (test_telemetry asserts the same invariant).
  auto& registry = telemetry::Registry::global();
  const telemetry::Labels lft_labels{{"attribute", "LinearFwdTable"},
                                     {"method", "Set"},
                                     {"routing", "directed"}};
  const std::uint64_t lft_before =
      registry.counter_value("ibvs_smp_total", lft_labels).value_or(0);

  Fabric fabric;
  const auto built = topology::build_paper_fat_tree(fabric, which);
  const auto hosts = topology::attach_hosts(fabric, built.host_slots);
  const NodeId sm_node = hosts[0];
  sm::SubnetManager smgr(fabric, sm_node,
                         routing::make_engine(routing::EngineKind::kFatTree));
  const auto sweep = smgr.full_sweep();
  const auto expect = model::table1_row(hosts.size(), fabric.num_switches());
  const std::uint64_t lft_telemetry =
      registry.counter_value("ibvs_smp_total", lft_labels).value_or(0) -
      lft_before;
  std::printf(
      "  %-28s measured full-RC SMPs %8llu   formula %8llu   telemetry "
      "%8llu   %s\n",
      topology::to_string(which).c_str(),
      static_cast<unsigned long long>(sweep.distribution.smps),
      static_cast<unsigned long long>(expect.min_smps_full_rc),
      static_cast<unsigned long long>(lft_telemetry),
      sweep.distribution.smps == expect.min_smps_full_rc &&
              lft_telemetry == sweep.distribution.smps
          ? "MATCH"
          : "DIFFER");
}

void simulate_migration_smps() {
  // Real migrations on a virtualized 324-tree; the swap never exceeds
  // 2 * switches, the copy never exceeds switches, and the best observed
  // case is a single SMP (intra-leaf, same block).
  for (const auto scheme :
       {core::LidScheme::kPrepopulated, core::LidScheme::kDynamic}) {
    auto b = bench::VirtualBench::make(scheme, 18, 4);
    SplitMix64 rng(g_seed);
    std::vector<core::VmHandle> vms;
    for (int i = 0; i < 18; ++i) vms.push_back(b.vsf->create_vm().vm);
    std::uint64_t min_smps = ~0ull;
    std::uint64_t max_smps = 0;
    const std::size_t n = b.fabric.num_switches();
    for (int i = 0; i < 60; ++i) {
      const auto vm = vms[rng.below(vms.size())];
      const auto dst =
          b.vsf->find_free_hypervisor(b.vsf->vm(vm).hypervisor);
      if (!dst) continue;
      const auto report = b.vsf->migrate_vm(vm, *dst);
      min_smps = std::min(min_smps, report.reconfig.lft_smps);
      max_smps = std::max(max_smps, report.reconfig.lft_smps);
    }
    std::printf(
        "  %-28s migration LFT SMPs: min %3llu  max %3llu   (bounds: best 1, "
        "worst %llu)\n",
        core::to_string(scheme).c_str(),
        static_cast<unsigned long long>(min_smps),
        static_cast<unsigned long long>(max_smps),
        static_cast<unsigned long long>(
            scheme == core::LidScheme::kPrepopulated ? 2 * n : n));
  }
  std::printf("\n");
}

void BM_FullSweepDistribution(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Fabric fabric;
    const auto built =
        topology::build_paper_fat_tree(fabric, topology::PaperFatTree::k324);
    const auto hosts = topology::attach_hosts(fabric, built.host_slots);
    sm::SubnetManager smgr(
        fabric, hosts[0],
        routing::make_engine(routing::EngineKind::kFatTree));
    smgr.discover();
    smgr.assign_lids();
    smgr.compute_routes();
    state.ResumeTiming();
    auto report = smgr.distribute_lfts();
    benchmark::DoNotOptimize(report.smps);
  }
}
BENCHMARK(BM_FullSweepDistribution)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const auto metrics_out = ibvs::bench::consume_metrics_out(argc, argv);
  const auto trace_out = ibvs::bench::consume_trace_out(argc, argv);
  ibvs::bench::consume_threads(argc, argv);
  g_seed = ibvs::bench::consume_seed(argc, argv, g_seed);
  print_closed_form();
  std::printf("Simulation cross-check:\n");
  simulate_tree(topology::PaperFatTree::k324);
  simulate_tree(topology::PaperFatTree::k648);
  simulate_migration_smps();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  ibvs::bench::dump_metrics(metrics_out);
  ibvs::bench::dump_trace(trace_out);
  return 0;
}
