// Topology delta vs heavy sweep: expanding a running fat-tree by one pod.
//
// The paper's reconfiguration argument (§VI) is that a vSwitch event should
// cost a handful of targeted SMPs, not a subnet sweep. The same argument
// applies to *structural* growth: cabling new leaf switches into a running
// fabric. Twin fabrics run the same expansion two ways:
//
//   delta — one journaled TopologyTxn per new leaf: no discovery, no
//           routing run, a BFS-column plan applied through dirty-block
//           pushes and verified by diff-redistribution,
//   sweep — cable everything, then react the way a trap-driven OpenSM
//           does: full discovery, LID assignment, route recomputation
//           (PCt) and a diff distribution.
//
// Reported per paper tree: SMPs (the delta column separates LFT writes,
// addressing and the verification tail; the sweep column separates
// discovery from distribution) and convergence time — both sides measured
// as the SM transport's simulated clock across their whole reaction, the
// sweep additionally paying its measured PCt. The acceptance bar is delta
// < sweep on BOTH total SMPs and time. `--json-out <file>` writes the
// rows as JSON (schema "topology_delta") for the bench-smoke CI gate.
#include <benchmark/benchmark.h>

#include <sstream>
#include <vector>

#include "bench/common.hpp"
#include "inject/checker.hpp"
#include "sm/topology_txn.hpp"

namespace {

using namespace ibvs;

constexpr std::size_t kHyps = 18;
constexpr std::size_t kPodLeaves = 2;  ///< leaves one expansion adds
constexpr std::size_t kPodUplinks = 4; ///< uplink cables per new leaf (max)

/// A booted, virtualized subnet on the requested paper tree (Min-Hop: the
/// expansion changes the topology mid-run, which the fat-tree engine does
/// not promise to survive).
bench::VirtualBench make_tree(topology::PaperFatTree which) {
  bench::VirtualBench b;
  b.built = topology::build_paper_fat_tree(b.fabric, which);
  std::vector<topology::HostSlot> spread;
  const std::size_t per_leaf =
      b.built.host_slots.size() / b.built.leaves.size();
  for (std::size_t i = 0; spread.size() < kHyps + 1; ++i) {
    const std::size_t leaf = i / 2;
    const std::size_t idx = leaf * per_leaf + (i % 2);
    if (idx >= b.built.host_slots.size()) break;
    spread.push_back(b.built.host_slots[idx]);
  }
  b.hyps = core::attach_hypervisors(b.fabric, spread, /*num_vfs=*/2, kHyps);
  const auto& slot = spread.at(kHyps);
  const NodeId sm_node = b.fabric.add_ca("sm-node");
  b.fabric.connect(sm_node, 1, slot.leaf, slot.port);
  b.sm = std::make_unique<sm::SubnetManager>(
      b.fabric, sm_node, routing::make_engine(routing::EngineKind::kMinHop));
  b.vsf = std::make_unique<core::VSwitchFabric>(
      *b.sm, b.hyps, core::LidScheme::kDynamic);
  b.vsf->boot();
  return b;
}

/// The pod's cabling, deterministic across twin fabrics: each new leaf
/// uplinks to the first `kPodUplinks` switches that still have a free port,
/// spines (then cores) preferred over leaves.
std::vector<CableSpec> pod_cables(const Fabric& fabric,
                                  const topology::Built& built, NodeId leaf) {
  std::vector<NodeId> prefer;
  prefer.insert(prefer.end(), built.spines.begin(), built.spines.end());
  prefer.insert(prefer.end(), built.cores.begin(), built.cores.end());
  prefer.insert(prefer.end(), built.leaves.begin(), built.leaves.end());
  std::vector<CableSpec> cables;
  PortNum next = 1;
  for (const NodeId peer : prefer) {
    if (cables.size() >= kPodUplinks) break;
    const auto port = fabric.free_port(peer);
    if (!port) continue;
    cables.push_back({leaf, next++, peer, *port});
  }
  return cables;
}

struct Row {
  std::string topology;
  std::size_t switches = 0;      ///< before the expansion
  std::size_t cables = 0;        ///< uplinks the pod added
  std::uint64_t delta_lft_smps = 0;
  std::uint64_t delta_addr_smps = 0;
  std::uint64_t delta_verify_smps = 0;
  double delta_time_us = 0.0;    ///< transport clock across both txns
  std::size_t delta_switches_touched = 0;
  std::uint64_t sweep_discovery_smps = 0;
  std::uint64_t sweep_lft_smps = 0;
  double sweep_time_us = 0.0;    ///< transport clock across the sweep + PCt
  bool clean = true;             ///< both twins checker-clean

  [[nodiscard]] std::uint64_t delta_smps() const {
    return delta_lft_smps + delta_addr_smps + delta_verify_smps;
  }
  [[nodiscard]] std::uint64_t sweep_smps() const {
    return sweep_discovery_smps + sweep_lft_smps;
  }
};

Row run_expansion(topology::PaperFatTree which) {
  Row row;
  row.topology = topology::to_string(which);

  // Delta twin: one journaled transaction per new leaf.
  {
    auto b = make_tree(which);
    row.switches = b.fabric.switch_ids().size();
    sm::TopologyTxnManager topo(*b.sm, b.vsf->journal());
    const double clock_before = b.sm->transport().total_time_us();
    for (std::size_t i = 0; i < kPodLeaves; ++i) {
      const NodeId leaf =
          b.fabric.add_switch("pod-leaf" + std::to_string(i), kPodUplinks + 8);
      const auto cables = pod_cables(b.fabric, b.built, leaf);
      row.cables += cables.size();
      const auto txn = topo.attach_switch(leaf, cables);
      row.delta_lft_smps += txn.stats.lft_smps;
      row.delta_addr_smps += txn.stats.addressing_smps;
      row.delta_verify_smps += txn.stats.verify.smps;
      row.delta_switches_touched =
          std::max(row.delta_switches_touched, txn.stats.switches_updated);
    }
    row.delta_time_us = b.sm->transport().total_time_us() - clock_before;
    const inject::FabricChecker checker(*b.sm);
    row.clean = checker.check(b.vsf.get()).clean() && row.clean;
  }

  // Sweep twin: identical cabling, then the trap-driven heavy sweep.
  {
    auto b = make_tree(which);
    for (std::size_t i = 0; i < kPodLeaves; ++i) {
      const NodeId leaf =
          b.fabric.add_switch("pod-leaf" + std::to_string(i), kPodUplinks + 8);
      for (const CableSpec& c : pod_cables(b.fabric, b.built, leaf)) {
        b.fabric.connect(c.a, c.port_a, c.b, c.port_b);
      }
    }
    b.sm->transport().invalidate_topology();
    const double clock_before = b.sm->transport().total_time_us();
    const auto sweep = b.sm->full_sweep();
    row.sweep_discovery_smps = sweep.discovery.smps;
    row.sweep_lft_smps = sweep.distribution.smps;
    row.sweep_time_us = (b.sm->transport().total_time_us() - clock_before) +
                        sweep.path_computation_seconds * 1e6;
    const inject::FabricChecker checker(*b.sm);
    row.clean = checker.check(b.vsf.get()).clean() && row.clean;
  }
  return row;
}

void print_table(const std::optional<std::string>& json_out) {
  std::vector<Row> rows;
  for (const auto which : bench::selected_paper_trees()) {
    rows.push_back(run_expansion(which));
  }

  std::printf(
      "\nPod expansion (%zu new leaves, up to %zu uplinks each): journaled "
      "topology deltas vs trap-driven heavy sweep\n",
      kPodLeaves, kPodUplinks);
  std::printf("%-28s %4s %6s %9s %9s %10s %12s %10s %9s %12s %8s\n", "tree",
              "sw", "cables", "delta_lft", "delta_smp", "delta_us",
              "sweep_disc", "sweep_lft", "sweep_smp", "sweep_us", "save");
  bench::rule(128);
  for (const auto& r : rows) {
    const double save =
        r.sweep_smps() > 0
            ? 100.0 * (1.0 - static_cast<double>(r.delta_smps()) /
                                 static_cast<double>(r.sweep_smps()))
            : 0.0;
    std::printf(
        "%-28s %4zu %6zu %9llu %9llu %10.1f %12llu %10llu %9llu %12.1f "
        "%7.1f%%%s\n",
        r.topology.c_str(), r.switches, r.cables,
        static_cast<unsigned long long>(r.delta_lft_smps),
        static_cast<unsigned long long>(r.delta_smps()), r.delta_time_us,
        static_cast<unsigned long long>(r.sweep_discovery_smps),
        static_cast<unsigned long long>(r.sweep_lft_smps),
        static_cast<unsigned long long>(r.sweep_smps()), r.sweep_time_us,
        save, r.clean ? "" : "  (!clean)");
  }
  bench::rule(128);
  std::printf(
      "The delta pays only the new columns plus one PortInfo per leaf and "
      "verifies with a zero-send round;\nthe sweep re-walks every node "
      "(sweep_disc) and recomputes every route before it can distribute.\n"
      "Times are the SM transport's simulated clock over each reaction; "
      "the sweep adds its measured\npath-computation cost (PCt).\n\n");

  if (json_out) {
    std::ostringstream os;
    os << "{\n  \"bench\": \"topology_delta\",\n  \"schema_version\": 1,\n"
       << "  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const auto& r = rows[i];
      os << "    {\"topology\": \"" << r.topology
         << "\", \"switches\": " << r.switches << ", \"cables\": " << r.cables
         << ", \"delta_lft_smps\": " << r.delta_lft_smps
         << ", \"delta_addressing_smps\": " << r.delta_addr_smps
         << ", \"delta_verify_smps\": " << r.delta_verify_smps
         << ", \"delta_smps\": " << r.delta_smps()
         << ", \"delta_time_us\": " << r.delta_time_us
         << ", \"delta_switches_touched\": " << r.delta_switches_touched
         << ", \"sweep_discovery_smps\": " << r.sweep_discovery_smps
         << ", \"sweep_lft_smps\": " << r.sweep_lft_smps
         << ", \"sweep_smps\": " << r.sweep_smps()
         << ", \"sweep_time_us\": " << r.sweep_time_us
         << ", \"clean\": " << (r.clean ? "true" : "false") << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    bench::dump_json(json_out, os.str(), "topology delta rows");
  }
}

/// Steady-state cost of one attach+detach cycle on the 324-node tree: each
/// iteration cables a fresh leaf in through a transaction and detaches it
/// again (both committed, checker-clean by the tests).
void BM_AttachDetachCycle(benchmark::State& state) {
  auto b = make_tree(topology::PaperFatTree::k324);
  sm::TopologyTxnManager topo(*b.sm, b.vsf->journal());
  const NodeId leaf = b.fabric.add_switch("cycle-leaf", kPodUplinks + 8);
  for (auto _ : state) {
    const auto cables = pod_cables(b.fabric, b.built, leaf);
    const auto in = topo.attach_switch(leaf, cables);
    const auto out = topo.detach_switch(leaf);
    benchmark::DoNotOptimize(in.stats.lft_smps + out.stats.lft_smps);
    b.vsf->journal().truncate_reconciled();
  }
}
BENCHMARK(BM_AttachDetachCycle)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const auto metrics_out = ibvs::bench::consume_metrics_out(argc, argv);
  const auto trace_out = ibvs::bench::consume_trace_out(argc, argv);
  const auto json_out =
      ibvs::bench::consume_flag_value(argc, argv, "--json-out");
  ibvs::bench::consume_threads(argc, argv);
  print_table(json_out);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  ibvs::bench::dump_metrics(metrics_out);
  ibvs::bench::dump_trace(trace_out);
  return 0;
}
