// §VI-C — deadlock exposure during reconfiguration, made observable.
//
// The paper argues (a) two individually deadlock-free routing functions can
// cycle while they coexist during a transition, (b) the port-255 drain
// avoids that at the cost of n' extra SMPs and dropped packets, and (c) in
// the implementation, transient deadlocks are tolerated and resolved by IB
// timeouts. This bench runs all three on the credit-based flow simulator:
//
//   row 1  a deadlock-free fabric under load            -> drains clean
//   row 2  an adversarial transition state (old+new     -> wedges (no
//          coexist as a forwarding cycle), no timeout      timeout ever)
//   row 3  the same state with IB timeouts              -> drains w/ drops
//   row 4  drain-first (port 255) during the transition -> drains w/ drops,
//                                                          never wedges
//
// It also cross-checks the static analyzer: the transition CDG of row 2/3
// contains a cycle; after the drain of row 4 the affected LID contributes
// no dependencies.
#include <benchmark/benchmark.h>

#include "bench/common.hpp"
#include "deadlock/analysis.hpp"
#include "fabric/credit_sim.hpp"
#include "topology/hosts.hpp"
#include "topology/irregular.hpp"

namespace {

using namespace ibvs;

struct Ring {
  Fabric fabric;
  LidMap lids;
  std::vector<NodeId> hosts;
  routing::RoutingResult result;

  Ring() {
    const auto built = topology::build_ring(fabric, 7, 1, 8);
    hosts = topology::attach_hosts(fabric, built.host_slots);
    for (NodeId sw : fabric.switch_ids()) lids.assign_next(fabric, sw, 0);
    for (NodeId host : hosts) lids.assign_next(fabric, host, 1);
    result = routing::make_engine(routing::EngineKind::kUpDown)
                 ->compute(fabric, lids);
    for (routing::SwitchIdx i = 0; i < result.graph.num_switches(); ++i) {
      Node& sw = fabric.node(result.graph.switches[i]);
      for (std::size_t b = 0; b < result.lfts[i].block_count(); ++b) {
        sw.lft.set_block(b, result.lfts[i].block(b));
      }
    }
  }

  std::vector<fabric::FlowSpec> traffic(Lid victim,
                                        std::size_t packets) const {
    std::vector<fabric::FlowSpec> flows;
    for (NodeId src : hosts) {
      if (fabric.node(src).lid() == victim) continue;
      flows.push_back(fabric::FlowSpec{src, victim, packets, 0});
      // Background all-to-all keeps the rest of the fabric busy.
      for (NodeId dst : hosts) {
        if (dst != src && fabric.node(dst).lid() != victim) {
          flows.push_back(
              fabric::FlowSpec{src, fabric.node(dst).lid(), packets / 2, 0});
        }
      }
    }
    return flows;
  }

  /// Installs the adversarial transition state: half the ring keeps the old
  /// (up*/down*) entry for `victim`, the other half already has a "new"
  /// entry that happens to forward clockwise — together a cycle.
  void install_transition_state(Lid victim) {
    const auto& g = result.graph;
    for (routing::SwitchIdx s = 0; s < g.num_switches(); ++s) {
      Node& sw = fabric.node(g.switches[s]);
      sw.lft.set(victim, static_cast<PortNum>(sw.num_ports()));
    }
  }

  void drain(Lid victim) {
    for (routing::SwitchIdx s = 0; s < result.graph.num_switches(); ++s) {
      fabric.node(result.graph.switches[s]).lft.set(victim, kDropPort);
    }
  }
};

void run_row(const char* label, bool transition, bool timeout, bool drain) {
  Ring ring;
  const Lid victim = ring.fabric.node(ring.hosts[0]).lid();
  if (transition) ring.install_transition_state(victim);
  if (drain) ring.drain(victim);

  fabric::CreditSimConfig config;
  config.credits_per_channel = 1;
  config.timeout_steps = timeout ? 40 : 0;
  config.max_steps = 50000;
  const auto report =
      fabric::simulate_flows(ring.fabric, ring.traffic(victim, 12), config);
  std::printf("%-44s %9s %10zu %8zu %8zu %7zu\n", label,
              report.deadlocked ? "DEADLOCK" : "drained", report.delivered,
              report.dropped_timeout, report.dropped_unrouted, report.stuck);
}

void print_table() {
  std::printf(
      "\n§VI-C transition deadlock on a 7-switch ring (up*/down* routing, "
      "1 credit/channel)\n");
  std::printf("%-44s %9s %10s %8s %8s %7s\n", "scenario", "outcome",
              "delivered", "timeout", "dropped", "stuck");
  bench::rule(92);
  run_row("steady state (deadlock-free routing)", false, false, false);
  run_row("transition: old+new coexist, no timeout", true, false, false);
  run_row("transition with IB timeouts", true, true, false);
  run_row("drain-first (port 255) during transition", true, true, true);
  bench::rule(92);

  // Static cross-check via the transition analyzer.
  Ring ring;
  const Lid victim = ring.fabric.node(ring.hosts[0]).lid();
  std::vector<Lft> new_lfts = ring.result.lfts;
  const auto& g = ring.result.graph;
  for (routing::SwitchIdx s = 0; s < g.num_switches(); ++s) {
    const Node& sw = ring.fabric.node(g.switches[s]);
    new_lfts[s].set(victim, static_cast<PortNum>(sw.num_ports()));
  }
  std::vector<Lid> stable;
  for (const auto& t : g.targets) {
    if (t.lid != victim && t.port != 0) stable.push_back(t.lid);
  }
  const auto analysis = deadlock::analyze_transition(
      g, ring.result.lfts, new_lfts, {victim}, stable);
  std::printf(
      "static transition analysis agrees: transient cycle possible = %s "
      "(%zu union dependencies)\n\n",
      analysis.transient_cycle_possible ? "yes" : "no",
      analysis.union_dependencies);
}

void BM_CreditSimSteadyState(benchmark::State& state) {
  Ring ring;
  const Lid victim = ring.fabric.node(ring.hosts[0]).lid();
  const auto flows = ring.traffic(victim, 8);
  for (auto _ : state) {
    auto report = fabric::simulate_flows(ring.fabric, flows);
    benchmark::DoNotOptimize(report.delivered);
  }
}
BENCHMARK(BM_CreditSimSteadyState)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  const auto metrics_out = ibvs::bench::consume_metrics_out(argc, argv);
  const auto trace_out = ibvs::bench::consume_trace_out(argc, argv);
  ibvs::bench::consume_threads(argc, argv);
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  ibvs::bench::dump_metrics(metrics_out);
  ibvs::bench::dump_trace(trace_out);
  return 0;
}
