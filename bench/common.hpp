// Shared plumbing for the paper-reproduction benches.
//
// Each bench binary regenerates one table or figure of the paper. Default
// parameters keep every binary under a few seconds so `for b in bench/*`
// stays cheap; the paper's large subnets are enabled with environment
// variables:
//   IBVS_FIG7_LARGE=1  adds the 5832-node fat-tree where relevant
//   IBVS_FIG7_FULL=1   adds the 11664-node fat-tree (minutes to hours,
//                      dominated by DFSSSP/LASH — exactly as in the paper)
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "core/virtualizer.hpp"
#include "core/vswitch.hpp"
#include "sm/subnet_manager.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "topology/fat_tree.hpp"
#include "topology/hosts.hpp"
#include "util/thread_pool.hpp"

namespace ibvs::bench {

/// Strips `<flag> <value>` (or `<flag>=<value>`) from argv before
/// benchmark::Initialize rejects it as unknown. Returns the value.
inline std::optional<std::string> consume_flag_value(int& argc, char** argv,
                                                     std::string_view flag) {
  std::optional<std::string> value;
  const std::string prefix = std::string(flag) + "=";
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == flag) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s requires a value\n",
                     std::string(flag).c_str());
        std::exit(2);
      }
      value = argv[++i];
    } else if (arg.substr(0, prefix.size()) == prefix) {
      value = std::string(arg.substr(prefix.size()));
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  argv[argc] = nullptr;
  return value;
}

/// `--metrics-out <file>`: where to dump the registry JSON snapshot.
inline std::optional<std::string> consume_metrics_out(int& argc,
                                                      char** argv) {
  return consume_flag_value(argc, argv, "--metrics-out");
}

/// `--trace-out <file>`: where to dump the span trace as JSON lines.
inline std::optional<std::string> consume_trace_out(int& argc, char** argv) {
  return consume_flag_value(argc, argv, "--trace-out");
}

/// `--int-out <file>`: where benches with an INT phase dump the congestion
/// map / overhead report as JSON.
inline std::optional<std::string> consume_int_out(int& argc, char** argv) {
  return consume_flag_value(argc, argv, "--int-out");
}

/// Dumps a prebuilt JSON document to `path` ("-" for stdout); used by the
/// --int-out flag. No-op when the flag was absent.
inline void dump_json(const std::optional<std::string>& path,
                      const std::string& json, const char* what) {
  if (!path) return;
  if (path->empty()) {
    std::fprintf(stderr, "error: %s requires a non-empty path\n", what);
    return;
  }
  if (*path == "-") {
    std::fputs(json.c_str(), stdout);
    return;
  }
  std::FILE* file = std::fopen(path->c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s to %s\n", what, path->c_str());
    return;
  }
  std::fputs(json.c_str(), file);
  std::fclose(file);
  std::fprintf(stderr, "# %s written to %s\n", what, path->c_str());
}

/// `--seed <n>`: overrides a bench's default RNG seed so randomized
/// workloads (migration pairs, chaos event streams) can be varied — and
/// replayed — from the command line. Returns `fallback` when absent.
inline std::uint64_t consume_seed(int& argc, char** argv,
                                  std::uint64_t fallback) {
  const auto value = consume_flag_value(argc, argv, "--seed");
  if (!value) return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value->c_str(), &end, 0);
  if (end == value->c_str() || *end != '\0') {
    std::fprintf(stderr, "error: --seed wants an integer, got '%s'\n",
                 value->c_str());
    std::exit(2);
  }
  return parsed;
}

/// `--threads <n>`: sizes the global thread pool for the sweep fast paths
/// (0 restores the default: IBVS_THREADS, else hardware concurrency).
/// Returns the pool size in effect so benches can report it.
inline std::size_t consume_threads(int& argc, char** argv) {
  const auto value = consume_flag_value(argc, argv, "--threads");
  if (value) {
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(value->c_str(), &end, 0);
    if (end == value->c_str() || *end != '\0') {
      std::fprintf(stderr, "error: --threads wants an integer, got '%s'\n",
                   value->c_str());
      std::exit(2);
    }
    ThreadPool::set_global_threads(static_cast<std::size_t>(parsed));
  }
  return ThreadPool::global_thread_count();
}

/// Dumps the global registry's JSON snapshot to `path` ("-" for stdout) so
/// BENCH_*.json trajectories can track SMP counts next to wall-clock time.
/// No-op when the flag was absent.
inline void dump_metrics(const std::optional<std::string>& path) {
  if (!path) return;
  if (path->empty()) {
    std::fprintf(stderr, "error: --metrics-out requires a non-empty path\n");
    return;
  }
  const std::string snapshot =
      telemetry::Registry::global().json_snapshot();
  if (*path == "-") {
    std::fputs(snapshot.c_str(), stdout);
    return;
  }
  std::FILE* file = std::fopen(path->c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write metrics to %s\n", path->c_str());
    return;
  }
  std::fputs(snapshot.c_str(), file);
  std::fclose(file);
  std::fprintf(stderr, "# metrics snapshot written to %s\n", path->c_str());
}

/// Dumps the global tracer's buffered spans as JSON lines to `path` ("-"
/// for stdout). No-op when the flag was absent.
inline void dump_trace(const std::optional<std::string>& path) {
  if (!path) return;
  if (path->empty()) {
    std::fprintf(stderr, "error: --trace-out requires a non-empty path\n");
    return;
  }
  auto& tracer = telemetry::Tracer::global();
  if (*path == "-") {
    std::ostringstream os;
    tracer.dump_jsonl(os);
    std::fputs(os.str().c_str(), stdout);
    return;
  }
  if (!tracer.flush_to_file(*path)) {
    std::fprintf(stderr, "no spans to write to %s\n", path->c_str());
    return;
  }
  std::fprintf(stderr, "# span trace written to %s\n", path->c_str());
}

inline bool env_flag(const char* name) {
  const char* value = std::getenv(name);
  return value != nullptr && value[0] != '\0' && value[0] != '0';
}

inline std::vector<topology::PaperFatTree> selected_paper_trees() {
  std::vector<topology::PaperFatTree> trees{topology::PaperFatTree::k324,
                                            topology::PaperFatTree::k648};
  if (env_flag("IBVS_FIG7_LARGE") || env_flag("IBVS_FIG7_FULL")) {
    trees.push_back(topology::PaperFatTree::k5832);
  }
  if (env_flag("IBVS_FIG7_FULL")) {
    trees.push_back(topology::PaperFatTree::k11664);
  }
  return trees;
}

/// A booted, virtualized subnet for migration benches.
struct VirtualBench {
  Fabric fabric;
  topology::Built built;
  std::vector<core::VirtualHca> hyps;
  std::unique_ptr<sm::SubnetManager> sm;
  std::unique_ptr<core::VSwitchFabric> vsf;

  /// `hyps_count` hypervisors on the paper's 324-node switch fabric (or a
  /// smaller two-level tree when small=true).
  static VirtualBench make(core::LidScheme scheme, std::size_t hyps_count,
                           std::size_t vfs,
                           routing::EngineKind engine =
                               routing::EngineKind::kFatTree,
                           bool small = false) {
    VirtualBench b;
    if (small) {
      b.built = topology::build_two_level_fat_tree(
          b.fabric, topology::TwoLevelParams{.num_leaves = 4,
                                             .num_spines = 2,
                                             .hosts_per_leaf = 4,
                                             .radix = 12});
    } else {
      b.built = topology::build_paper_fat_tree(
          b.fabric, topology::PaperFatTree::k324);
    }
    // Spread hypervisors two per leaf so the workload has both intra-leaf
    // and cross-leaf migrations (piling all slots onto one leaf would
    // degenerate the n' statistics).
    std::vector<topology::HostSlot> spread;
    const std::size_t per_leaf =
        b.built.leaves.empty()
            ? b.built.host_slots.size()
            : b.built.host_slots.size() / b.built.leaves.size();
    for (std::size_t i = 0; spread.size() < hyps_count + 1; ++i) {
      const std::size_t leaf = i / 2;
      const std::size_t idx = leaf * per_leaf + (i % 2);
      if (idx >= b.built.host_slots.size()) break;
      spread.push_back(b.built.host_slots[idx]);
    }
    // Small fabrics may not offer 2*(leaves) slots; top up with the rest.
    for (std::size_t leaf = 0;
         spread.size() < hyps_count + 1 && leaf < b.built.leaves.size();
         ++leaf) {
      for (std::size_t j = 2;
           j < per_leaf && spread.size() < hyps_count + 1; ++j) {
        spread.push_back(b.built.host_slots[leaf * per_leaf + j]);
      }
    }
    b.hyps = core::attach_hypervisors(b.fabric, spread, vfs, hyps_count);
    const auto& slot = spread.at(hyps_count);
    const NodeId sm_node = b.fabric.add_ca("sm-node");
    b.fabric.connect(sm_node, 1, slot.leaf, slot.port);
    b.sm = std::make_unique<sm::SubnetManager>(
        b.fabric, sm_node, routing::make_engine(engine));
    b.vsf = std::make_unique<core::VSwitchFabric>(*b.sm, b.hyps, scheme);
    b.vsf->boot();
    return b;
  }
};

/// printf-style row helpers for fixed-width ASCII tables.
inline void rule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace ibvs::bench
