// Reproduction of the paper's §VII-A/§VII-B testbed emulation.
//
// The physical testbed: two 36-port IB switches, OpenStack with several
// compute nodes, and — because real SR-IOV hardware only implements Shared
// Port — an *emulation* of the prepopulated-LIDs vSwitch, restricted to one
// VM per compute node (migrating the shared LID would cut off co-resident
// VMs). The four orchestration steps are printed as they execute:
//
//   1. detach the SR-IOV VF, start the live migration
//   2. OpenStack signals OpenSM (over Ethernet)
//   3. OpenSM swaps the LIDs in the switch LFTs and moves the vGUID
//   4. the VF holding the VM's addresses is attached at the destination
//
// Both sides are shown here: first the Shared Port emulation with its
// restrictions, then the same scenario under the real (simulated) vSwitch
// architecture the paper proposes.
#include <cstdio>

#include "cloud/orchestrator.hpp"
#include "core/shared_port.hpp"
#include "core/virtualizer.hpp"
#include "core/vswitch.hpp"
#include "fabric/trace.hpp"
#include "sm/subnet_manager.hpp"
#include "topology/fat_tree.hpp"

using namespace ibvs;

namespace {

/// Two 36-port switches cabled together (the SUN DCS 36 pair), six compute
/// nodes: three per switch — mirroring the testbed's HP compute nodes.
struct Testbed {
  Fabric fabric;
  NodeId sw1 = kInvalidNode;
  NodeId sw2 = kInvalidNode;
  std::vector<topology::HostSlot> slots;
};

Testbed build_testbed() {
  Testbed t;
  t.sw1 = t.fabric.add_switch("dcs36-1", 36);
  t.sw2 = t.fabric.add_switch("dcs36-2", 36);
  // Inter-switch link on the top ports.
  t.fabric.connect(t.sw1, 36, t.sw2, 36);
  for (PortNum p = 1; p <= 3; ++p) {
    t.slots.push_back({t.sw1, p});
    t.slots.push_back({t.sw2, p});
  }
  return t;
}

void shared_port_emulation() {
  std::printf("=== Part 1: what the testbed had to do (Shared Port) ===\n");
  Testbed t = build_testbed();
  LidMap lids;
  std::vector<core::SharedPortHypervisor> hyps;
  std::vector<NodeId> hcas;
  for (std::size_t i = 0; i < t.slots.size(); ++i) {
    const NodeId hca =
        t.fabric.add_ca("compute-" + std::to_string(i));
    t.fabric.connect(hca, 1, t.slots[i].leaf, t.slots[i].port);
    hcas.push_back(hca);
  }
  for (NodeId sw : t.fabric.switch_ids()) lids.assign_next(t.fabric, sw, 0);
  for (NodeId hca : hcas) {
    lids.assign_next(t.fabric, hca, 1);
    hyps.push_back(core::SharedPortHypervisor{hca, 16});
  }
  core::SharedPortFabric sp(t.fabric, lids, hyps);

  // One VM per compute node — the §VII-B restriction.
  const auto vm = sp.create_vm(0);
  std::printf("VM on compute-0 shares its LID %u with the hypervisor\n",
              sp.shared_lid(0).value());

  // What if a second VM were running there and the LID migrated?
  const auto second = sp.create_vm(0);
  const auto report = sp.migrate_vm(vm, 1, /*active_peers=*/4,
                                    /*emulate_lid_migration=*/true);
  std::printf(
      "emulated LID migration compute-0 -> compute-1: %zu co-resident "
      "VM(s) lost connectivity\n-> hence the testbed allowed only ONE VM "
      "per node.\n\n",
      report.co_resident_vms_broken);
  (void)second;
}

void vswitch_simulation() {
  std::printf("=== Part 2: the same flow under the proposed vSwitch ===\n");
  Testbed t = build_testbed();
  const auto hyps =
      core::attach_hypervisors(t.fabric, t.slots, /*num_vfs=*/16, 5);
  const NodeId sm_node = t.fabric.add_ca("opensm-node");
  t.fabric.connect(sm_node, 1, t.slots[5].leaf, t.slots[5].port);
  t.fabric.validate();

  sm::SubnetManager smgr(t.fabric, sm_node,
                         routing::make_engine(routing::EngineKind::kMinHop));
  core::VSwitchFabric cloud(smgr, hyps, core::LidScheme::kPrepopulated);
  const auto boot = cloud.boot();
  std::printf("OpenSM sweep: %zu LIDs, %llu LFT SMPs distributed\n",
              smgr.lids().count(),
              static_cast<unsigned long long>(boot.distribution.smps));

  cloud::CloudOrchestrator stack(cloud, cloud::Placement::kRoundRobin);
  const auto vms = stack.launch_vms(5);  // several VMs per switch side

  std::printf("step 1  detach VF from VM-1, start live migration\n");
  std::printf("step 2  OpenStack signals OpenSM with VM-1 -> compute-4\n");
  const auto flow = stack.migrate(vms[0], 4);
  std::printf(
      "step 3  OpenSM reconfigured: swapped LIDs %u <-> %u on %zu of %zu "
      "switches (%llu SMPs, %.1f us)\n",
      flow.network.vm_lid.value(), flow.network.swapped_lid.value(),
      flow.network.reconfig.switches_updated,
      flow.network.reconfig.switches_total,
      static_cast<unsigned long long>(flow.network.reconfig.lft_smps),
      flow.network.reconfig.lft_time_us);
  std::printf("step 4  VF with the VM's vGUID attached at compute-4\n");
  std::printf("total flow time: %.2f s (%.2f s of it memory copy; the IB "
              "reconfiguration is %.6f s)\n",
              flow.total_s(), flow.copy_s, flow.reconfig_s);

  // Every other VM still reaches VM-1 at its unchanged address.
  bool all_ok = true;
  for (std::size_t i = 1; i < vms.size(); ++i) {
    const auto trace = fabric::trace_unicast(
        t.fabric, cloud.vm_node(vms[i]), cloud.vm(vms[0]).lid);
    all_ok = all_ok && trace.delivered();
  }
  std::printf("all peers reconnected without address rediscovery: %s\n",
              all_ok ? "yes" : "NO");
}

}  // namespace

int main() {
  shared_port_emulation();
  vswitch_simulation();
  return 0;
}
