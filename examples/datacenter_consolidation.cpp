// Data-center consolidation: the workload the paper motivates.
//
// A half-empty cloud wants to pack VMs onto fewer hypervisors (to power
// down the rest). That takes many live migrations — exactly the operation
// that is impractical on IB without the vSwitch architecture and its
// dynamic reconfiguration. This example:
//
//   1. builds a virtualized 324-node-class fat-tree with 18 hypervisors,
//   2. spreads 27 VMs thinly across all of them,
//   3. plans a consolidation onto the first 7 hypervisors,
//   4. executes the migrations in §VI-D-style concurrent rounds (disjoint
//      switch-update sets run in parallel),
//   5. reports the network cost: SMPs, switches touched, and elapsed time
//      vs what serial execution — or a traditional full reconfiguration per
//      migration — would have cost.
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "cloud/orchestrator.hpp"
#include "model/cost.hpp"

using namespace ibvs;

int main() {
  auto b = bench::VirtualBench::make(core::LidScheme::kDynamic,
                                     /*hyps=*/18, /*vfs=*/4);
  cloud::CloudOrchestrator orch(*b.vsf, cloud::Placement::kSpread);
  const auto vms = orch.launch_vms(27);
  std::printf("spread 27 VMs over 18 hypervisors (least-loaded placement)\n");

  // Consolidation plan: everything living on hypervisors 7.. moves to the
  // first 7 hypervisors (4 VFs each = 28 slots).
  std::vector<cloud::MigrationRequest> requests;
  std::size_t target = 0;
  std::vector<std::size_t> free_slots(7);
  for (std::size_t h = 0; h < 7; ++h) {
    free_slots[h] = 4;
    for (const auto vm : vms) {
      if (b.vsf->vm(vm).hypervisor == h) --free_slots[h];
    }
  }
  for (const auto vm : vms) {
    const auto h = b.vsf->vm(vm).hypervisor;
    if (h < 7) continue;
    while (target < 7 && free_slots[target] == 0) ++target;
    if (target == 7) break;
    requests.push_back({vm, target});
    --free_slots[target];
  }
  std::printf("consolidation needs %zu migrations\n\n", requests.size());

  // Plan concurrent rounds under minimal (skyline) reconfiguration.
  core::MigrationOptions options;
  options.mode = core::ReconfigMode::kMinimal;
  const auto plan = orch.plan_parallel(requests, options.mode);
  std::printf("parallel plan: %zu rounds (vs %zu serial migrations)\n",
              plan.num_rounds(), requests.size());

  const auto exec = orch.execute(plan, options);
  std::uint64_t smps = 0;
  std::size_t switches_touched = 0;
  for (const auto& report : exec.reports) {
    smps += report.network.reconfig.total_smps();
    switches_touched += report.network.reconfig.switches_updated;
  }
  std::printf(
      "executed: %.1f s elapsed (serial would be %.1f s), %llu SMPs total, "
      "%zu switch updates\n",
      exec.elapsed_s, exec.serial_s,
      static_cast<unsigned long long>(smps), switches_touched);

  // What a traditional reconfiguration per migration would have cost.
  const auto row = model::table1_row(324, b.fabric.num_switches());
  std::printf(
      "traditional method: >= %llu SMPs per migration (full LFT "
      "distribution) plus a full path\nrecomputation each time -> %llu SMPs "
      "for this consolidation, and minutes of PCt at scale.\n",
      static_cast<unsigned long long>(row.min_smps_full_rc),
      static_cast<unsigned long long>(row.min_smps_full_rc *
                                      requests.size()));

  // Verify: the cloud still works, hypervisors 7.. are empty.
  std::size_t residual = 0;
  for (const auto vm : vms) {
    if (b.vsf->vm(vm).hypervisor >= 7) ++residual;
  }
  std::printf("hypervisors 7..17 now host %zu VMs -> can be powered down\n",
              residual);
  return residual == 0 ? 0 : 1;
}
