// Quickstart: build a virtualized IB subnet, boot it, start VMs, and
// live-migrate one — watching the reconfiguration happen.
//
//   $ ./examples/quickstart
//   $ ./examples/quickstart --metrics   # also dump the telemetry registry
//   $ ./examples/quickstart --health    # PerfMgr sweep + fabric health report
//   $ ./examples/quickstart --chaos     # seeded fault injection + recovery
//
// This walks the library's main concepts in ~80 lines:
//   Fabric + topology builders  -> the physical subnet
//   attach_hypervisors          -> SR-IOV vSwitch hypervisors (§IV-B)
//   SubnetManager               -> OpenSM-like sweep (discovery, LIDs,
//                                  routing, LFT distribution)
//   VSwitchFabric               -> VM lifecycle + §V-C reconfiguration
//   trace_unicast               -> observing the data path end to end
//   telemetry::Registry         -> Prometheus-style counters every layer
//                                  updates as a side effect of the above
#include <cstdio>
#include <cstring>

#include "core/virtualizer.hpp"
#include "core/vswitch.hpp"
#include "fabric/trace.hpp"
#include "inject/chaos.hpp"
#include "perf/health.hpp"
#include "perf/perf_mgr.hpp"
#include "sm/subnet_manager.hpp"
#include "telemetry/metrics.hpp"
#include "topology/fat_tree.hpp"

using namespace ibvs;

int main(int argc, char** argv) {
  bool show_metrics = false;
  bool show_health = false;
  bool run_chaos = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics") == 0) show_metrics = true;
    if (std::strcmp(argv[i], "--health") == 0) show_health = true;
    if (std::strcmp(argv[i], "--chaos") == 0) run_chaos = true;
  }
  // 1. A small 2-level fat-tree: 4 leaves x 2 spines, 3 host slots each.
  Fabric fabric;
  const auto built = topology::build_two_level_fat_tree(
      fabric, topology::TwoLevelParams{.num_leaves = 4,
                                       .num_spines = 2,
                                       .hosts_per_leaf = 3,
                                       .radix = 12});

  // 2. Eight hypervisors, each an SR-IOV HCA in vSwitch mode with 4 VFs.
  const auto hyps = core::attach_hypervisors(fabric, built.host_slots,
                                             /*num_vfs=*/4, /*count=*/8);

  // 3. A dedicated subnet-manager node on the remaining slot.
  const NodeId sm_node = fabric.add_ca("sm-node");
  fabric.connect(sm_node, 1, built.host_slots[8].leaf,
                 built.host_slots[8].port);
  fabric.validate();

  // 4. The subnet manager, using the fat-tree routing engine.
  sm::SubnetManager smgr(fabric, sm_node,
                         routing::make_engine(routing::EngineKind::kFatTree));

  // 5. The vSwitch layer with prepopulated LIDs (§V-A).
  core::VSwitchFabric cloud(smgr, hyps, core::LidScheme::kPrepopulated);
  const auto boot = cloud.boot();
  std::printf("booted: %zu nodes discovered, %zu LIDs, %llu LFT SMPs, "
              "PCt=%.3f ms\n",
              boot.discovery.nodes_found, smgr.lids().count(),
              static_cast<unsigned long long>(boot.distribution.smps),
              boot.path_computation_seconds * 1e3);

  // 6. Start two VMs on hypervisor 0.
  const auto vm1 = cloud.create_vm(0);
  const auto vm2 = cloud.create_vm(0);
  std::printf("vm1 lid=%u vm2 lid=%u (no reconfiguration needed: %llu LFT "
              "SMPs)\n",
              vm1.lid.value(), vm2.lid.value(),
              static_cast<unsigned long long>(vm1.lft_smps + vm2.lft_smps));

  // 7. vm2 talks to vm1.
  auto trace = fabric::trace_unicast(fabric, cloud.vm_node(vm2.vm), vm1.lid);
  std::printf("vm2 -> vm1: %s in %zu hops\n",
              fabric::to_string(trace.status).c_str(), trace.hops);

  // 8. Live-migrate vm1 to hypervisor 7 (a different leaf). Its LID and
  //    vGUID travel along; the subnet is reconfigured by swapping two LFT
  //    entries on the switches that need it.
  const auto migration = cloud.migrate_vm(vm1.vm, 7);
  std::printf(
      "migrated vm1: updated %zu of %zu switches with %llu LFT SMPs "
      "(plus %llu hypervisor SMPs) in %.1f us\n",
      migration.reconfig.switches_updated, migration.reconfig.switches_total,
      static_cast<unsigned long long>(migration.reconfig.lft_smps),
      static_cast<unsigned long long>(
          migration.reconfig.hypervisor_lid_smps +
          migration.reconfig.guid_smps),
      migration.reconfig.lft_time_us);
  std::printf("vm1 kept lid=%u (swapped VF lid %u moved back)\n",
              cloud.vm(vm1.vm).lid.value(), migration.swapped_lid.value());

  // 9. vm2 reconnects without any address rediscovery.
  trace = fabric::trace_unicast(fabric, cloud.vm_node(vm2.vm), vm1.lid);
  std::printf("vm2 -> vm1 after migration: %s in %zu hops\n",
              fabric::to_string(trace.status).c_str(), trace.hops);

  // 10. --health: the PerfMgr polls every port's PMA counters (more MAD
  //     traffic, visible in the telemetry), and the health monitor turns
  //     the per-sweep deltas into an ibdiagnet-style verdict. A degrading
  //     cable is injected so the report has something to find.
  bool health_ok = true;
  if (show_health) {
    perf::PerfMgr pmgr(smgr);
    perf::HealthMonitor monitor;
    pmgr.sweep();  // baseline: the next sweep reports per-interval deltas
    fabric.node(hyps[0].leaf)
        .ports[hyps[0].leaf_port]
        .counters.add_symbol_errors(12);  // the injected bad link
    const auto health = monitor.analyze(pmgr.sweep());
    std::printf("\n%s", perf::render_fabric_health(health, fabric).c_str());
    perf::apply_to_sm(smgr, health);
    std::printf("sm flagged %zu degraded port(s)\n",
                smgr.degraded_ports().size());
    health_ok = !health.findings.empty() && !smgr.degraded_ports().empty();
  }

  // 11. --chaos: a fresh subnet takes seeded abuse — link cuts, flaps, a
  //     switch death, live migrations — with a lossy MAD plane (2% drops
  //     force the transport's retry/backoff machinery). After every event
  //     the SM re-converges and the FabricChecker proves the fabric is
  //     back in a consistent state. Min-hop routing: unlike the fat-tree
  //     engine it survives arbitrarily degraded topologies.
  bool chaos_ok = true;
  if (run_chaos) {
    Fabric chaos_fabric;
    const auto chaos_built = topology::build_two_level_fat_tree(
        chaos_fabric, topology::TwoLevelParams{.num_leaves = 4,
                                               .num_spines = 2,
                                               .hosts_per_leaf = 3,
                                               .radix = 12});
    const auto chaos_hyps = core::attach_hypervisors(
        chaos_fabric, chaos_built.host_slots, /*num_vfs=*/2, /*count=*/8);
    const NodeId chaos_sm = chaos_fabric.add_ca("sm-node");
    chaos_fabric.connect(chaos_sm, 1, chaos_built.host_slots[8].leaf,
                         chaos_built.host_slots[8].port);
    sm::SubnetManager chaos_smgr(
        chaos_fabric, chaos_sm,
        routing::make_engine(routing::EngineKind::kMinHop));
    core::VSwitchFabric chaos_cloud(chaos_smgr, chaos_hyps,
                                    core::LidScheme::kDynamic);
    const auto report = inject::run_chaos(chaos_cloud, /*seed=*/5,
                                          /*steps=*/16);
    std::printf("\n--- chaos (seed=5, 2%% MAD drop probability) ---\n%s",
                inject::to_string(report).c_str());
    chaos_ok = report.checker_violations == 0 && report.all_converged;
    std::printf("chaos verdict: %s\n",
                chaos_ok ? "fabric recovered after every event"
                         : "INVARIANT VIOLATIONS");

    // Second pass: migration faults. The same subnet now also loses the
    // destination hypervisor mid-migration and the master SM mid-LFT-batch;
    // the transactional flow must leave every migration committed or rolled
    // back (journal replayed), never in between, with the checker clean.
    cloud::CloudOrchestrator chaos_orch(chaos_cloud, cloud::Placement::kSpread);
    inject::FaultInjector mig_injector(chaos_fabric, /*seed=*/9);
    inject::ChaosConfig mig_config;
    mig_config.seed = 9;
    mig_config.steps = 12;
    mig_config.mad_faults.drop_probability = 0.02;
    mig_config.weight_kill_dst_mid_migration = 3;
    mig_config.weight_kill_master_mid_reconfig = 3;
    const auto mig_report =
        inject::run_chaos(chaos_orch, mig_injector, mig_config);
    std::printf("\n--- chaos with migration faults (seed=9) ---\n%s",
                inject::to_string(mig_report).c_str());
    const bool txns_terminal =
        mig_report.migration_commits + mig_report.migration_rollbacks > 0;
    chaos_ok = chaos_ok && mig_report.checker_violations == 0 &&
               mig_report.all_converged && txns_terminal;
    std::printf("migration-fault verdict: %s\n",
                chaos_ok ? "every transaction terminal, invariants hold"
                         : "INVARIANT VIOLATIONS");
  }

  // 12. Everything above also updated the process-wide telemetry registry:
  //     SMPs by {attribute, method, routing}, sweep phases, reconfig kinds.
  if (show_metrics) {
    std::printf("\n--- telemetry (Prometheus exposition) ---\n%s",
                telemetry::Registry::global().prometheus_text().c_str());
  }
  return trace.delivered() && health_ok && chaos_ok ? 0 : 1;
}
