// Routing explorer: run any engine on any built-in topology and inspect the
// result — path quality, balancing, virtual lanes, deadlock freedom.
//
//   usage: routing_explorer [engine] [topology]
//     engine:   minhop | fat-tree | updn | dfsssp | lash   (default minhop)
//     topology: fattree | ring | torus | irregular | 324 | 648
//               (default fattree)
//
// Exit code 0 iff the routing verifies and its data-VL CDG is acyclic.
#include <cstdio>
#include <cstring>
#include <string>

#include "deadlock/analysis.hpp"
#include "ib/lid_map.hpp"
#include "routing/verify.hpp"
#include "topology/export.hpp"
#include "topology/fat_tree.hpp"
#include "topology/hosts.hpp"
#include "topology/irregular.hpp"

using namespace ibvs;

namespace {

routing::EngineKind parse_engine(const std::string& name) {
  for (const auto kind : routing::all_engines()) {
    if (routing::to_string(kind) == name) return kind;
  }
  throw std::invalid_argument("unknown engine: " + name +
                              " (minhop|fat-tree|updn|dfsssp|lash)");
}

topology::Built build(Fabric& fabric, const std::string& name) {
  if (name == "fattree") {
    return topology::build_two_level_fat_tree(
        fabric, topology::TwoLevelParams{.num_leaves = 6,
                                         .num_spines = 3,
                                         .hosts_per_leaf = 4,
                                         .radix = 12});
  }
  if (name == "ring") return topology::build_ring(fabric, 8, 2, 8);
  if (name == "torus") return topology::build_torus_2d(fabric, 4, 4, 2, 8);
  if (name == "irregular") {
    return topology::build_irregular(
        fabric, topology::IrregularParams{.num_switches = 14,
                                          .hosts_per_switch = 2,
                                          .extra_links = 7,
                                          .radix = 12,
                                          .seed = 7});
  }
  if (name == "324") {
    return topology::build_paper_fat_tree(fabric,
                                          topology::PaperFatTree::k324);
  }
  if (name == "648") {
    return topology::build_paper_fat_tree(fabric,
                                          topology::PaperFatTree::k648);
  }
  throw std::invalid_argument("unknown topology: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string engine_name = argc > 1 ? argv[1] : "minhop";
  const std::string topo_name = argc > 2 ? argv[2] : "fattree";

  Fabric fabric;
  const auto built = build(fabric, topo_name);
  const auto hosts = topology::attach_hosts(fabric, built.host_slots);
  fabric.validate();
  std::printf("topology %s: %s\n", topo_name.c_str(),
              topology::summary(fabric).c_str());

  LidMap lids;
  for (NodeId sw : fabric.switch_ids()) lids.assign_next(fabric, sw, 0);
  for (NodeId host : hosts) lids.assign_next(fabric, host, 1);

  auto engine = routing::make_engine(parse_engine(engine_name));
  const auto result = engine->compute(fabric, lids);
  std::printf("engine %s: computed %zu LFTs in %.3f ms, %u virtual lane(s)\n",
              engine->name().data(), result.lfts.size(),
              result.compute_seconds * 1e3, result.num_vls);

  const auto report = routing::verify_routing(result);
  std::printf("verification: %s — %zu (switch, LID) pairs, max %u hops, "
              "avg %.2f hops\n",
              report.ok ? "OK" : "FAILED", report.pairs_checked,
              report.max_hops, report.avg_hops);
  for (const auto& issue : report.issues) {
    std::printf("  issue: %s\n", issue.c_str());
  }

  // Channel load spread (min/max routes per link) as a balance indicator.
  const auto load = routing::channel_route_load(result);
  if (!load.empty()) {
    std::uint32_t lo = ~0u;
    std::uint32_t hi = 0;
    for (const auto l : load) {
      lo = std::min(lo, l);
      hi = std::max(hi, l);
    }
    std::printf("channel load: min %u / max %u routes per link\n", lo, hi);
  }

  const auto cdg = deadlock::analyze_routing(result);
  for (const auto& vl : cdg.per_vl) {
    std::printf("VL %u: %zu dependencies, %s\n", vl.vl, vl.dependencies,
                vl.acyclic ? "acyclic" : "CYCLIC");
    if (!vl.acyclic) {
      std::printf("  cycle through %zu channels\n", vl.cycle.size());
    }
  }
  std::printf("deadlock free: %s\n", cdg.deadlock_free() ? "yes" : "NO");

  return (report.ok && cdg.deadlock_free()) ? 0 : 1;
}
