// A day in the life of a vSwitch-enabled IB subnet: everything at once.
//
// This example chains the features that only work *together* under the
// vSwitch architecture:
//   1. boot a virtualized fat-tree with a bare-metal master SM and a
//      VM-hosted standby SM (impossible under Shared Port: no QP0 in VMs),
//   2. run multicast groups over the VM fleet,
//   3. hot-add a hypervisor and grow the fleet onto it,
//   4. live-migrate a multicast member (unicast swap + MFT patch),
//   5. kill the master SM; the VM-hosted standby takes over and the subnet
//      keeps working — routing, unicast, multicast, everything.
#include <cstdio>

#include "cloud/orchestrator.hpp"
#include "core/virtualizer.hpp"
#include "core/vswitch.hpp"
#include "fabric/trace.hpp"
#include "routing/verify.hpp"
#include "sm/election.hpp"
#include "sm/multicast.hpp"
#include "topology/fat_tree.hpp"

using namespace ibvs;

int main() {
  // --- Fabric: 4 leaves x 2 spines, hypervisors on 10 slots. ---
  Fabric fabric;
  const auto built = topology::build_two_level_fat_tree(
      fabric, topology::TwoLevelParams{.num_leaves = 4,
                                       .num_spines = 2,
                                       .hosts_per_leaf = 3,
                                       .radix = 12});
  auto hyps = core::attach_hypervisors(fabric, built.host_slots, 4, 10);
  const NodeId sm_node = fabric.add_ca("opensm-node");
  fabric.connect(sm_node, 1, built.host_slots[10].leaf,
                 built.host_slots[10].port);
  fabric.validate();

  sm::SubnetManager smgr(fabric, sm_node,
                         routing::make_engine(routing::EngineKind::kFatTree));
  core::VSwitchFabric cloud(smgr, hyps, core::LidScheme::kPrepopulated);
  const auto boot = cloud.boot();
  std::printf("[boot] %zu LIDs assigned, %llu LFT SMPs, PCt %.2f ms\n",
              smgr.lids().count(),
              static_cast<unsigned long long>(boot.distribution.smps),
              boot.path_computation_seconds * 1e3);

  // --- Fleet + a VM-hosted standby SM. ---
  cloud::CloudOrchestrator stack(cloud, cloud::Placement::kRoundRobin);
  const auto vms = stack.launch_vms(10);
  sm::SmElection election(fabric, [] {
    return routing::make_engine(routing::EngineKind::kFatTree);
  });
  election.add_candidate(sm_node, 9);
  election.add_candidate(cloud.vm_node(vms[3]), 5);  // SM inside a VM!
  election.elect();
  election.master_sweep();
  std::printf("[sm] master on %s, standby inside VM %u\n",
              fabric.node(sm_node).name.c_str(), vms[3].id);

  // --- Multicast over the fleet (driven by the cloud's SM instance; the
  // election models the control-plane redundancy on top). ---
  sm::McGroupManager mc(smgr);
  const Lid mlid = mc.create_group(Guid{0xFEED});
  for (const auto vm : vms) mc.join(mlid, cloud.vm(vm).lid);
  auto mdist = mc.distribute();
  std::printf("[mc] group 0x%04X over %zu members: %llu MFT SMPs on %zu "
              "switches\n",
              mlid.value(), mc.group(mlid).members.size(),
              static_cast<unsigned long long>(mdist.smps),
              mdist.switches_touched);

  // --- Growth: hot-add a hypervisor, expand the fleet. ---
  const auto growth = cloud.add_hypervisor(built.host_slots[11], 4, "hyp-new");
  const auto extra = cloud.create_vm(growth.hypervisor);
  mc.join(mlid, extra.lid);
  mc.recompute_all();
  mdist = mc.distribute();
  std::printf("[grow] hypervisor %zu added (PCt %.2f ms, %llu LFT SMPs); VM "
              "%u joined the group (%llu MFT SMPs)\n",
              growth.hypervisor, growth.path_computation_seconds * 1e3,
              static_cast<unsigned long long>(growth.distribution.smps),
              extra.vm.id, static_cast<unsigned long long>(mdist.smps));

  // --- Live migration of a multicast member. ---
  const auto report = stack.migrate(vms[0], growth.hypervisor);
  mc.refresh_after_move(cloud.vm(vms[0]).lid);
  mdist = mc.distribute();
  std::printf("[migrate] VM %u moved (%llu LFT SMPs on %zu switches, "
              "%llu MFT SMPs) — LID %u unchanged\n",
              vms[0].id,
              static_cast<unsigned long long>(report.network.reconfig.lft_smps),
              report.network.reconfig.switches_updated,
              static_cast<unsigned long long>(mdist.smps),
              cloud.vm(vms[0]).lid.value());

  // --- Master SM dies; the VM takes over. ---
  election.fail_candidate(0);
  const auto failover = election.poll();
  std::printf("[failover] master now candidate %zu (the VM); subnet "
              "re-swept, %s\n",
              *failover.master,
              routing::verify_routing(election.master_sm()->routing_result())
                      .ok
                  ? "routing verifies"
                  : "ROUTING BROKEN");

  // --- Prove the subnet still works end to end. ---
  bool unicast_ok = true;
  for (const auto vm : vms) {
    for (const auto peer : vms) {
      if (vm.id == peer.id) continue;
      if (!fabric::trace_unicast(fabric, cloud.vm_node(vm),
                                 cloud.vm(peer).lid)
               .delivered()) {
        unicast_ok = false;
      }
    }
  }
  const auto mc_delivered =
      fabric::trace_multicast(fabric, cloud.vm_node(vms[1]), mlid);
  std::printf("[verify] unicast all-pairs: %s; multicast reaches %zu "
              "endpoints\n",
              unicast_ok ? "OK" : "BROKEN", mc_delivered.size());
  return unicast_ok ? 0 : 1;
}
