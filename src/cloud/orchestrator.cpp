#include "cloud/orchestrator.hpp"

#include <algorithm>
#include <limits>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "util/expect.hpp"

namespace ibvs::cloud {

namespace {

/// VM lifecycle and migration-latency metrics for the orchestrator.
struct CloudMetrics {
  telemetry::Counter& vms_launched;
  telemetry::Counter& migrations;
  telemetry::Histogram& migration_seconds;
  telemetry::Histogram& reconfig_us;
  /// Orchestrations that never opened a transaction; committed/rolled_back
  /// children of the same family are incremented by the vSwitch layer.
  telemetry::Counter& migrations_failed;

  static CloudMetrics& get() {
    auto& reg = telemetry::Registry::global();
    static CloudMetrics m{
        reg.counter("ibvs_cloud_vm_lifecycle_total", {{"event", "launch"}},
                    "VM lifecycle events handled by the orchestrator"),
        reg.counter("ibvs_cloud_vm_lifecycle_total", {{"event", "migrate"}}),
        reg.histogram(
            "ibvs_cloud_migration_seconds", {},
            telemetry::HistogramOptions{.min_bound = 0.25,
                                        .num_buckets = 12},
            "End-to-end §VII-B migration flow latency (modeled)"),
        reg.histogram(
            "ibvs_cloud_migration_reconfig_us", {},
            telemetry::HistogramOptions{.min_bound = 1.0, .num_buckets = 24},
            "IB reconfiguration share of each migration"),
        reg.counter("ibvs_migrations_total", {{"outcome", "failed"}},
                    "Migration transactions by terminal outcome"),
    };
    return m;
  }
};

}  // namespace

const char* to_string(TxnOutcome outcome) {
  switch (outcome) {
    case TxnOutcome::kCommitted:
      return "committed";
    case TxnOutcome::kRolledBack:
      return "rolled-back";
    case TxnOutcome::kFailed:
      return "failed";
  }
  return "?";
}

CloudOrchestrator::CloudOrchestrator(core::VSwitchFabric& fabric,
                                     Placement placement, FlowTiming timing)
    : fabric_(fabric), placement_(placement), timing_(timing) {}

bool CloudOrchestrator::hypervisor_attached(std::size_t h) const {
  const auto& hyp = fabric_.hypervisors()[h];
  return fabric_.subnet_manager()
      .fabric()
      .physical_attachment(hyp.pf)
      .has_value();
}

std::optional<std::size_t> CloudOrchestrator::pick_hypervisor() {
  const auto& hyps = fabric_.hypervisors();
  switch (placement_) {
    case Placement::kFirstFit: {
      for (std::size_t h = 0; h < hyps.size(); ++h) {
        if (fabric_.free_vf_on(h) && hypervisor_attached(h)) return h;
      }
      return std::nullopt;
    }
    case Placement::kRoundRobin: {
      for (std::size_t tried = 0; tried < hyps.size(); ++tried) {
        const std::size_t h = (rr_next_ + tried) % hyps.size();
        if (fabric_.free_vf_on(h) && hypervisor_attached(h)) {
          rr_next_ = (h + 1) % hyps.size();
          return h;
        }
      }
      return std::nullopt;
    }
    case Placement::kSpread: {
      // Occupancy straight off the per-hypervisor free-list: O(hosts), not
      // O(hosts * VMs) — the difference between a planner pass and a
      // quadratic stall at fleet scale.
      std::optional<std::size_t> best;
      std::size_t best_used = std::numeric_limits<std::size_t>::max();
      for (std::size_t h = 0; h < hyps.size(); ++h) {
        const std::size_t free = fabric_.free_vf_count(h);
        if (free == 0 || !hypervisor_attached(h)) continue;
        const std::size_t used = hyps[h].vfs.size() - free;
        if (used < best_used) {
          best_used = used;
          best = h;
        }
      }
      return best;
    }
    case Placement::kCongestionAware: {
      // Least-blocked uplink wins; without a map every score is 0 and this
      // degrades to first-fit order.
      std::optional<std::size_t> best;
      std::uint64_t best_score = std::numeric_limits<std::uint64_t>::max();
      for (std::size_t h = 0; h < hyps.size(); ++h) {
        if (!fabric_.free_vf_on(h) || !hypervisor_attached(h)) continue;
        const std::uint64_t score = uplink_congestion(h);
        if (score < best_score) {
          best_score = score;
          best = h;
        }
      }
      return best;
    }
  }
  return std::nullopt;
}

std::uint64_t CloudOrchestrator::uplink_congestion(std::size_t h) const {
  if (congestion_ == nullptr) return 0;
  const auto& hyp = fabric_.hypervisors()[h];
  // Down direction: the leaf's egress toward the hypervisor. Up direction:
  // the vSwitch's uplink egress (all VFs share it — the property the paper
  // exploits — so queueing there hits every VM on the host).
  std::uint64_t score = congestion_->blocked_on(hyp.leaf, hyp.leaf_port);
  const auto& fabric = fabric_.subnet_manager().fabric();
  if (const auto uplink = fabric.vswitch_uplink(hyp.vswitch)) {
    score += congestion_->blocked_on(hyp.vswitch, *uplink);
  }
  return score;
}

std::vector<std::pair<std::size_t, std::uint64_t>>
CloudOrchestrator::rank_destinations(core::VmHandle vm) const {
  const std::size_t src = fabric_.vm(vm).hypervisor;
  std::vector<std::pair<std::size_t, std::uint64_t>> ranked;
  const auto& hyps = fabric_.hypervisors();
  for (std::size_t h = 0; h < hyps.size(); ++h) {
    if (h == src) continue;
    if (fabric_.free_vf_count(h) == 0 || !hypervisor_attached(h)) continue;
    ranked.emplace_back(h, uplink_congestion(h));
  }
  // Equal congestion scores tie-break on the PF NodeId, then the index: a
  // total order independent of enumeration quirks, so seeded plans
  // reproduce byte-identically across platforms and thread counts.
  std::sort(ranked.begin(), ranked.end(),
            [&hyps](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second < b.second;
              const NodeId pf_a = hyps[a.first].pf;
              const NodeId pf_b = hyps[b.first].pf;
              if (pf_a != pf_b) return pf_a < pf_b;
              return a.first < b.first;
            });
  return ranked;
}

std::vector<core::VmHandle> CloudOrchestrator::launch_vms(std::size_t count) {
  auto span = telemetry::Tracer::global().span(
      "cloud.launch_vms", {{"count", std::to_string(count)}});
  std::vector<core::VmHandle> handles;
  handles.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto h = pick_hypervisor();
    IBVS_REQUIRE(h.has_value(), "cloud is full: no free VF");
    handles.push_back(fabric_.create_vm(*h).vm);
    CloudMetrics::get().vms_launched.inc();
  }
  return handles;
}

MigrationFlowReport CloudOrchestrator::migrate(
    core::VmHandle vm, std::size_t dst_hypervisor,
    const core::MigrationOptions& options) {
  const auto& hyps = fabric_.hypervisors();
  if (dst_hypervisor >= hyps.size()) {
    throw core::MigrationError(core::MigrationErrc::kBadDestination,
                               "hypervisor " + std::to_string(dst_hypervisor) +
                                   " out of range (have " +
                                   std::to_string(hyps.size()) + ")");
  }
  if (!fabric_.free_vf_on(dst_hypervisor)) {
    throw core::MigrationError(
        core::MigrationErrc::kNoFreeVf,
        "no free VF on hypervisor " + std::to_string(dst_hypervisor));
  }
  auto span = telemetry::Tracer::global().span("cloud.migrate");
  MigrationFlowReport report;
  // With a PerfMgr attached, bracket the flow with PMA snapshots of the
  // two uplinks so the report carries *measured* traffic, not just the
  // modeled SMP counts.
  std::vector<perf::PortKey> impact_keys;
  std::vector<perf::PortReading> before;
  if (perf_ != nullptr) {
    const auto& src = hyps[fabric_.vm(vm).hypervisor];
    const auto& dst = hyps[dst_hypervisor];
    impact_keys = {{src.leaf, src.leaf_port}, {dst.leaf, dst.leaf_port}};
    before = perf_->read_ports(impact_keys);
  }
  // Step 1: detach the VF; the live migration begins.
  report.detach_s = timing_.detach_vf_s;
  report.copy_s = timing_.memory_copy_s();
  // Step 2: OpenStack signals OpenSM (Ethernet-side, cheap).
  report.signal_s = timing_.signal_s;
  // Step 3: OpenSM reconfigures the IB network.
  report.network = fabric_.migrate_vm(vm, dst_hypervisor, options);
  report.reconfig_s = (report.network.reconfig.lft_time_us +
                       report.network.reconfig.drain_time_us) *
                      1e-6;
  // Step 4: the VF holding the VM's addresses is attached at the target.
  report.attach_s = timing_.attach_vf_s;
  if (perf_ != nullptr) {
    const auto after = perf_->read_ports(impact_keys);
    perf::MigrationImpact impact;
    impact.src_before = before[0];
    impact.src_after = after[0];
    impact.dst_before = before[1];
    impact.dst_after = after[1];
    // Two snapshots of two ports, classic + extended Get each.
    impact.poll_mads = 8;
    report.impact = impact;
  }
  auto& metrics = CloudMetrics::get();
  metrics.migrations.inc();
  metrics.migration_seconds.observe(report.total_s());
  metrics.reconfig_us.observe(report.reconfig_s * 1e6);
  span.set_attr("total_s", std::to_string(report.total_s()));
  span.set_attr("switches_updated",
                std::to_string(report.network.reconfig.switches_updated));
  return report;
}

std::vector<routing::SwitchIdx> CloudOrchestrator::predict_update_set(
    core::VmHandle vm, std::size_t dst_hypervisor,
    core::ReconfigMode mode) const {
  const auto& sm = fabric_.subnet_manager();
  const auto& routing = sm.routing_result();
  const auto& v = fabric_.vm(vm);
  const auto& hyps = fabric_.hypervisors();
  IBVS_REQUIRE(dst_hypervisor < hyps.size(), "hypervisor out of range");

  // The deterministic method updates exactly the switches where the two
  // involved entries differ. Dynamic scheme: VM entry vs destination PF
  // entry. Prepopulated: VM entry vs destination VF entry (either LID's
  // entry changes iff they differ).
  Lid other;
  if (fabric_.scheme() == core::LidScheme::kPrepopulated) {
    const auto free_vf = fabric_.free_vf_on(dst_hypervisor);
    IBVS_REQUIRE(free_vf.has_value(), "no free VF on the destination");
    other = sm.fabric().node(hyps[dst_hypervisor].vfs[*free_vf]).lid();
  } else {
    other = sm.fabric().node(hyps[dst_hypervisor].pf).lid();
  }

  core::EntryDelta delta;
  const std::size_t s_count = routing.graph.num_switches();
  delta.old_entry.resize(s_count);
  delta.new_entry.resize(s_count);
  for (routing::SwitchIdx s = 0; s < s_count; ++s) {
    delta.old_entry[s] = routing.lfts[s].get(v.lid);
    delta.new_entry[s] = routing.lfts[s].get(other);
  }
  if (mode == core::ReconfigMode::kMinimal) {
    const auto new_sw = routing.graph.dense(hyps[dst_hypervisor].leaf);
    return core::minimal_update_set(routing.graph, delta, new_sw,
                                    hyps[dst_hypervisor].leaf_port);
  }
  return core::changed_switches(delta);
}

std::vector<routing::SwitchIdx> CloudOrchestrator::predict_swap_update_set(
    core::VmHandle vm_a, core::VmHandle vm_b,
    core::ReconfigMode mode) const {
  const auto& sm = fabric_.subnet_manager();
  const auto& routing = sm.routing_result();
  const auto& a = fabric_.vm(vm_a);
  const auto& b = fabric_.vm(vm_b);
  const auto& hyps = fabric_.hypervisors();

  // The swap is the symmetric entry exchange: each LID takes the other's
  // entries, so both change on exactly the switches where they differ.
  core::EntryDelta delta;       // vm_a's LID takes vm_b's entries
  core::EntryDelta peer_delta;  // and vice versa
  const std::size_t s_count = routing.graph.num_switches();
  delta.old_entry.resize(s_count);
  delta.new_entry.resize(s_count);
  peer_delta.old_entry.resize(s_count);
  peer_delta.new_entry.resize(s_count);
  for (routing::SwitchIdx s = 0; s < s_count; ++s) {
    const PortNum pa = routing.lfts[s].get(a.lid);
    const PortNum pb = routing.lfts[s].get(b.lid);
    delta.old_entry[s] = pa;
    delta.new_entry[s] = pb;
    peer_delta.old_entry[s] = pb;
    peer_delta.new_entry[s] = pa;
  }
  if (mode == core::ReconfigMode::kMinimal) {
    // Each LID's own skyline toward its new attachment, unioned — the same
    // per-LID fixpoint rule txn_apply_lfts enforces.
    const auto set_a = core::minimal_update_set(
        routing.graph, delta, routing.graph.dense(hyps[b.hypervisor].leaf),
        hyps[b.hypervisor].leaf_port);
    const auto set_b = core::minimal_update_set(
        routing.graph, peer_delta,
        routing.graph.dense(hyps[a.hypervisor].leaf),
        hyps[a.hypervisor].leaf_port);
    std::vector<routing::SwitchIdx> merged;
    std::set_union(set_a.begin(), set_a.end(), set_b.begin(), set_b.end(),
                   std::back_inserter(merged));
    return merged;
  }
  return core::changed_switches(delta);
}

ParallelPlan CloudOrchestrator::plan_parallel(
    const std::vector<MigrationRequest>& requests, core::ReconfigMode mode) {
  ParallelPlan plan;
  std::vector<std::vector<routing::SwitchIdx>> round_union;

  for (const auto& request : requests) {
    auto set = predict_update_set(request.vm, request.dst_hypervisor, mode);
    std::sort(set.begin(), set.end());
    bool placed = false;
    for (std::size_t r = 0; r < plan.rounds.size() && !placed; ++r) {
      std::vector<routing::SwitchIdx> overlap;
      std::set_intersection(round_union[r].begin(), round_union[r].end(),
                            set.begin(), set.end(),
                            std::back_inserter(overlap));
      if (!overlap.empty()) continue;
      plan.rounds[r].push_back(request);
      std::vector<routing::SwitchIdx> merged;
      std::set_union(round_union[r].begin(), round_union[r].end(),
                     set.begin(), set.end(), std::back_inserter(merged));
      round_union[r] = std::move(merged);
      placed = true;
    }
    if (!placed) {
      plan.rounds.push_back({request});
      round_union.push_back(std::move(set));
    }
  }
  return plan;
}

CloudOrchestrator::PlanExecution CloudOrchestrator::execute(
    const ParallelPlan& plan, const core::MigrationOptions& options) {
  PlanExecution exec;
  for (const auto& round : plan.rounds) {
    double round_max = 0.0;
    for (const auto& request : round) {
      auto report = migrate(request.vm, request.dst_hypervisor, options);
      round_max = std::max(round_max, report.total_s());
      exec.serial_s += report.total_s();
      exec.reports.push_back(std::move(report));
    }
    exec.elapsed_s += round_max;
  }
  return exec;
}

std::optional<std::size_t> CloudOrchestrator::pick_fallback(
    core::VmHandle vm, const std::vector<std::size_t>& exclude) const {
  // With a congestion map attached, re-placement also avoids hot uplinks:
  // rank_destinations order instead of first-fit.
  if (congestion_ != nullptr) {
    for (const auto& [h, score] : rank_destinations(vm)) {
      if (std::find(exclude.begin(), exclude.end(), h) == exclude.end()) {
        return h;
      }
    }
    return std::nullopt;
  }
  const std::size_t src = fabric_.vm(vm).hypervisor;
  const auto& hyps = fabric_.hypervisors();
  for (std::size_t h = 0; h < hyps.size(); ++h) {
    if (h == src) continue;
    if (std::find(exclude.begin(), exclude.end(), h) != exclude.end()) {
      continue;
    }
    if (fabric_.free_vf_on(h) && hypervisor_attached(h)) return h;
  }
  return std::nullopt;
}

MigrationTxnReport CloudOrchestrator::migrate_txn(
    core::VmHandle vm, std::size_t dst_hypervisor,
    const core::MigrationOptions& options, const TxnPolicy& policy) {
  auto span = telemetry::Tracer::global().span("cloud.migrate_txn");
  MigrationTxnReport report;
  report.dst_hypervisor = dst_hypervisor;
  const std::size_t requested_dst = dst_hypervisor;
  std::vector<std::size_t> tried;
  bool opened_txn = false;

  const auto enter = [&](core::MigrationTxn& txn, core::TxnState state) {
    txn.state = state;
    if (policy.on_step) policy.on_step(state, txn);
  };

  for (std::size_t attempt = 1; attempt <= policy.max_attempts; ++attempt) {
    report.attempts = attempt;
    if (attempt > 1) {
      report.elapsed_s +=
          policy.backoff_base_s * static_cast<double>(1ULL << (attempt - 2));
    }
    std::optional<core::MigrationTxn> txn;
    try {
      txn = fabric_.begin_migration(vm, dst_hypervisor, options);
    } catch (const core::MigrationError& e) {
      report.error = e.what();
      const auto code = e.code();
      const bool placement_issue =
          code == core::MigrationErrc::kNoFreeVf ||
          code == core::MigrationErrc::kBadDestination;
      if (placement_issue && policy.allow_replacement) {
        tried.push_back(dst_hypervisor);
        if (const auto next = pick_fallback(vm, tried)) {
          dst_hypervisor = *next;
          continue;
        }
      }
      break;  // unrecoverable without a destination
    }
    opened_txn = true;
    try {
      if (policy.on_step) policy.on_step(core::TxnState::kPrepared, *txn);
      // §VII-B steps 1-2: detach the VF, pre-copy memory. These are
      // wall-clock phases; the chaos hook may kill the destination at any
      // of these edges and the next phase revalidates.
      enter(*txn, core::TxnState::kDetached);
      report.elapsed_s += timing_.detach_vf_s;
      enter(*txn, core::TxnState::kCopied);
      report.elapsed_s += timing_.memory_copy_s() + timing_.signal_s;
      // Step 3: the SM reconfigures. Unreachable switches abort here
      // rather than sending into the void.
      fabric_.txn_move_addresses(*txn);
      if (policy.on_step) {
        policy.on_step(core::TxnState::kReconfiguring, *txn);
      }
      fabric_.txn_apply_lfts(
          *txn, core::VSwitchFabric::ApplyOptions{.require_reachable = true});
      const double reconfig_us =
          txn->stats.lft_time_us + txn->stats.drain_time_us;
      report.elapsed_s += reconfig_us * 1e-6;
      // Per-step budget from the TimingModel: a batch slower than the
      // worst-case reliable-MAD budget for every touched switch (plus the
      // three address SMPs) means MADs are genuinely lost, not slow.
      double budget_us = policy.reconfig_timeout_us;
      if (budget_us <= 0.0) {
        const auto& tm = fabric_.subnet_manager().transport().timing();
        budget_us =
            tm.mad_budget_us(8) *
            static_cast<double>(txn->stats.switches_total + 3);
      }
      if (reconfig_us > budget_us) {
        throw core::MigrationError(
            core::MigrationErrc::kStepTimeout,
            "reconfiguration took " + std::to_string(reconfig_us) +
                "us against a budget of " + std::to_string(budget_us) + "us");
      }
      // Step 4: attach at the destination — which may have died since the
      // copy; a dead destination cannot complete the hot-plug.
      enter(*txn, core::TxnState::kAttached);
      report.elapsed_s += timing_.attach_vf_s;
      if (!hypervisor_attached(txn->dst_hypervisor)) {
        throw core::MigrationError(
            core::MigrationErrc::kDestinationDetached,
            "hypervisor " + std::to_string(txn->dst_hypervisor) +
                " died before the VF attach");
      }
      fabric_.txn_commit(*txn);
      report.outcome = TxnOutcome::kCommitted;
      report.dst_hypervisor = txn->dst_hypervisor;
      report.replaced = txn->dst_hypervisor != requested_dst;
      report.reconfig = txn->stats;
      report.error.clear();
      break;
    } catch (const core::MigrationError& e) {
      report.error = e.what();
      if (!txn->terminal()) fabric_.txn_rollback(*txn);
      report.rollback_smps += txn->rollback_smps;
      report.elapsed_s += txn->rollback_time_us * 1e-6;
      const auto code = e.code();
      const bool retryable =
          code == core::MigrationErrc::kDestinationDetached ||
          code == core::MigrationErrc::kSwitchUnreachable ||
          code == core::MigrationErrc::kStepTimeout ||
          code == core::MigrationErrc::kInterrupted ||
          code == core::MigrationErrc::kNoFreeVf;
      if (!retryable) break;
      if (policy.allow_replacement) {
        tried.push_back(dst_hypervisor);
        if (const auto next = pick_fallback(vm, tried)) {
          dst_hypervisor = *next;
        }
        // No fallback: retry the same destination — it may come back.
      }
    }
  }

  if (report.outcome != TxnOutcome::kCommitted) {
    report.outcome = opened_txn ? TxnOutcome::kRolledBack : TxnOutcome::kFailed;
    if (!opened_txn) CloudMetrics::get().migrations_failed.inc();
  }
  span.set_attr("outcome", to_string(report.outcome));
  span.set_attr("attempts", std::to_string(report.attempts));
  return report;
}

MigrationTxnReport CloudOrchestrator::swap_txn(
    core::VmHandle vm_a, core::VmHandle vm_b,
    const core::MigrationOptions& options, const TxnPolicy& policy) {
  auto span = telemetry::Tracer::global().span("cloud.swap_txn");
  MigrationTxnReport report;
  bool opened_txn = false;

  const auto enter = [&](core::MigrationTxn& txn, core::TxnState state) {
    txn.state = state;
    if (policy.on_step) policy.on_step(state, txn);
  };

  for (std::size_t attempt = 1; attempt <= policy.max_attempts; ++attempt) {
    report.attempts = attempt;
    if (attempt > 1) {
      report.elapsed_s +=
          policy.backoff_base_s * static_cast<double>(1ULL << (attempt - 2));
    }
    std::optional<core::MigrationTxn> txn;
    try {
      txn = fabric_.begin_swap(vm_a, vm_b, options);
    } catch (const core::MigrationError& e) {
      // No replacement path for a swap: the destination IS the peer.
      report.error = e.what();
      break;
    }
    opened_txn = true;
    report.dst_hypervisor = txn->dst_hypervisor;
    try {
      if (policy.on_step) policy.on_step(core::TxnState::kPrepared, *txn);
      // Both VFs detach and both memories pre-copy concurrently (the
      // copies cross different host pairs' links), so the wall clock pays
      // each phase once, not twice.
      enter(*txn, core::TxnState::kDetached);
      report.elapsed_s += timing_.detach_vf_s;
      enter(*txn, core::TxnState::kCopied);
      report.elapsed_s += timing_.memory_copy_s() + timing_.signal_s;
      fabric_.txn_move_addresses(*txn);
      if (policy.on_step) {
        policy.on_step(core::TxnState::kReconfiguring, *txn);
      }
      fabric_.txn_apply_lfts(
          *txn, core::VSwitchFabric::ApplyOptions{.require_reachable = true});
      const double reconfig_us =
          txn->stats.lft_time_us + txn->stats.drain_time_us;
      report.elapsed_s += reconfig_us * 1e-6;
      double budget_us = policy.reconfig_timeout_us;
      if (budget_us <= 0.0) {
        const auto& tm = fabric_.subnet_manager().transport().timing();
        // One extra address SMP against the plain-migration budget: a swap
        // sends four (two LIDs, two vGUIDs).
        budget_us = tm.mad_budget_us(8) *
                    static_cast<double>(txn->stats.switches_total + 4);
      }
      if (reconfig_us > budget_us) {
        throw core::MigrationError(
            core::MigrationErrc::kStepTimeout,
            "reconfiguration took " + std::to_string(reconfig_us) +
                "us against a budget of " + std::to_string(budget_us) + "us");
      }
      enter(*txn, core::TxnState::kAttached);
      report.elapsed_s += timing_.attach_vf_s;
      if (!hypervisor_attached(txn->dst_hypervisor) ||
          !hypervisor_attached(txn->src_hypervisor)) {
        throw core::MigrationError(
            core::MigrationErrc::kDestinationDetached,
            "a swap endpoint died before the VF attach");
      }
      fabric_.txn_commit(*txn);
      report.outcome = TxnOutcome::kCommitted;
      report.reconfig = txn->stats;
      report.error.clear();
      break;
    } catch (const core::MigrationError& e) {
      report.error = e.what();
      if (!txn->terminal()) fabric_.txn_rollback(*txn);
      report.rollback_smps += txn->rollback_smps;
      report.elapsed_s += txn->rollback_time_us * 1e-6;
      const auto code = e.code();
      const bool retryable =
          code == core::MigrationErrc::kDestinationDetached ||
          code == core::MigrationErrc::kSwitchUnreachable ||
          code == core::MigrationErrc::kStepTimeout ||
          code == core::MigrationErrc::kInterrupted;
      if (!retryable) break;
    }
  }

  if (report.outcome != TxnOutcome::kCommitted) {
    report.outcome = opened_txn ? TxnOutcome::kRolledBack : TxnOutcome::kFailed;
    if (!opened_txn) CloudMetrics::get().migrations_failed.inc();
  }
  span.set_attr("outcome", to_string(report.outcome));
  span.set_attr("attempts", std::to_string(report.attempts));
  return report;
}

CloudOrchestrator::MigrationImpactProbe
CloudOrchestrator::probe_migration_impact(
    core::VmHandle vm, std::size_t dst_hypervisor,
    const std::vector<fabric::FlowSpec>& victim_flows,
    const ProbeOptions& options) {
  auto span = telemetry::Tracer::global().span("cloud.probe_migration");
  const auto& fabric = fabric_.subnet_manager().fabric();

  // The switches this migration will touch, resolved to NodeIds before
  // anything moves — the "shared links" are their egresses.
  const auto update_set =
      predict_update_set(vm, dst_hypervisor, options.migration.mode);
  const auto& graph = fabric_.subnet_manager().routing_result().graph;
  std::vector<NodeId> updated_nodes;
  updated_nodes.reserve(update_set.size());
  for (const auto s : update_set) updated_nodes.push_back(graph.switches[s]);
  std::sort(updated_nodes.begin(), updated_nodes.end());

  MigrationImpactProbe probe;
  const auto run_phase = [&](perf::IntCollector& collector,
                             std::function<void(std::uint64_t)> on_step) {
    ProbeRun run;
    fabric::CreditSimConfig config = options.sim;
    config.int_mode.enabled = true;
    config.int_mode.sink = &collector;
    config.on_step = std::move(on_step);
    run.sim = fabric::simulate_flows(fabric, victim_flows, config);
    run.map = collector.build_map(options.top_k);
    for (const auto& [tenant, blocked] : run.map.tenant_blocked) {
      run.victim_blocked += blocked;
    }
    return run;
  };

  perf::IntCollector before, during, after;
  probe.before = run_phase(before, options.sim.on_step);
  bool migrated = false;
  probe.during = run_phase(during, [&](std::uint64_t step) {
    if (options.sim.on_step) options.sim.on_step(step);
    if (step == options.migrate_at_step && !migrated) {
      migrated = true;
      probe.migration =
          fabric_.migrate_vm(vm, dst_hypervisor, options.migration);
    }
  });
  // A short probe may settle before migrate_at_step; migrate anyway so the
  // "after" phase measures the post-move tables either way.
  if (!migrated) {
    probe.migration = fabric_.migrate_vm(vm, dst_hypervisor,
                                         options.migration);
  }
  probe.after = run_phase(after, options.sim.on_step);

  // Delta-blocking on every link of an updated switch that any phase saw.
  std::map<perf::LinkKey, SharedLinkDelta> shared;
  const auto fold = [&](const perf::CongestionMap& map,
                        std::uint64_t SharedLinkDelta::*phase) {
    for (const auto& [key, link] : map.links) {
      if (!std::binary_search(updated_nodes.begin(), updated_nodes.end(),
                              key.node)) {
        continue;
      }
      auto& delta = shared[key];
      delta.link = key;
      delta.*phase = link.blocked.sum;
    }
  };
  fold(probe.before.map, &SharedLinkDelta::blocked_before);
  fold(probe.during.map, &SharedLinkDelta::blocked_during);
  fold(probe.after.map, &SharedLinkDelta::blocked_after);
  probe.shared_links.reserve(shared.size());
  for (auto& [key, delta] : shared) probe.shared_links.push_back(delta);

  span.set_attr("victim_blocked_before",
                std::to_string(probe.before.victim_blocked));
  span.set_attr("victim_blocked_during",
                std::to_string(probe.during.victim_blocked));
  span.set_attr("shared_links", std::to_string(probe.shared_links.size()));
  return probe;
}

CloudOrchestrator::TxnPlanExecution CloudOrchestrator::execute_txn(
    const ParallelPlan& plan, const core::MigrationOptions& options,
    const TxnPolicy& policy) {
  TxnPlanExecution exec;
  for (const auto& round : plan.rounds) {
    double round_max = 0.0;
    for (const auto& request : round) {
      auto report =
          migrate_txn(request.vm, request.dst_hypervisor, options, policy);
      round_max = std::max(round_max, report.elapsed_s);
      exec.serial_s += report.elapsed_s;
      switch (report.outcome) {
        case TxnOutcome::kCommitted:
          ++exec.committed;
          break;
        case TxnOutcome::kRolledBack:
          ++exec.rolled_back;
          break;
        case TxnOutcome::kFailed:
          ++exec.failed;
          break;
      }
      exec.reports.push_back(std::move(report));
    }
    exec.elapsed_s += round_max;
  }
  return exec;
}

}  // namespace ibvs::cloud
