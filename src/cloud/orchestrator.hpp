// Cloud orchestration over a vSwitch-enabled IB subnet (§VII-B).
//
// Models the OpenStack side of the paper's testbed: VM placement, the
// four-step live-migration flow (detach VF -> signal the SM -> network
// reconfiguration -> attach VF at the destination), and the §VI-D
// observation that migrations whose reconfigurations touch disjoint switch
// sets can run concurrently — intra-leaf migrations in particular, one per
// leaf switch, without any interference.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/migration_txn.hpp"
#include "core/vswitch.hpp"
#include "fabric/credit_sim.hpp"
#include "perf/int_collector.hpp"
#include "perf/perf_mgr.hpp"

namespace ibvs::cloud {

enum class Placement {
  kFirstFit,    ///< lowest-index hypervisor with a free VF
  kRoundRobin,  ///< cycle through hypervisors
  kSpread,      ///< least-loaded hypervisor first
  /// Least-congested uplink first, judged by the attached INT congestion
  /// map (attach_congestion). Without a map it degrades to first-fit.
  kCongestionAware,
};

/// Wall-clock model of the non-IB parts of a live migration.
struct FlowTiming {
  double detach_vf_s = 0.5;       ///< SR-IOV hot-unplug at the source
  double signal_s = 0.01;         ///< OpenStack -> OpenSM over Ethernet
  double memory_copy_gbps = 10.0; ///< pre-copy bandwidth
  double vm_memory_gb = 2.0;
  double attach_vf_s = 0.5;       ///< SR-IOV hot-plug at the destination

  [[nodiscard]] double memory_copy_s() const noexcept {
    return vm_memory_gb * 8.0 / memory_copy_gbps;
  }
};

/// Timeline of one orchestrated migration (§VII-B steps 1-4).
struct MigrationFlowReport {
  core::MigrationReport network;  ///< the IB reconfiguration details
  double detach_s = 0.0;
  double copy_s = 0.0;
  double signal_s = 0.0;
  double reconfig_s = 0.0;  ///< SMP time under the transport's TimingModel
  double attach_s = 0.0;
  /// Measured counter movement on the two hypervisor uplinks, present when
  /// a PerfMgr is attached (attach_perf).
  std::optional<perf::MigrationImpact> impact;

  [[nodiscard]] double total_s() const noexcept {
    // Memory copy overlaps nothing here (conservative); reconfiguration
    // runs while the VM is paused between copy and resume.
    return detach_s + copy_s + signal_s + reconfig_s + attach_s;
  }
};

struct MigrationRequest {
  core::VmHandle vm;
  std::size_t dst_hypervisor = 0;
};

/// One concurrency round: requests whose predicted switch-update sets are
/// pairwise disjoint and can safely reconfigure in parallel.
struct ParallelPlan {
  std::vector<std::vector<MigrationRequest>> rounds;
  [[nodiscard]] std::size_t num_rounds() const noexcept {
    return rounds.size();
  }
};

/// Graceful-degradation policy for the transactional migration flow.
struct TxnPolicy {
  /// Total tries per migration, the first included.
  std::size_t max_attempts = 3;
  /// Attempt i (i >= 2) waits backoff_base_s * 2^(i-2) before retrying.
  double backoff_base_s = 0.25;
  /// On destination-side failures, re-place the VM on another hypervisor
  /// instead of hammering the dead one.
  bool allow_replacement = true;
  /// Budget for the IB reconfiguration step, microseconds. 0 derives it
  /// from the transport's TimingModel: the worst-case reliable-MAD budget
  /// per touched switch, plus the three address SMPs.
  double reconfig_timeout_us = 0.0;
  /// Test/chaos hook, invoked as the transaction enters each state. The
  /// hook may mutate the fabric (kill the destination, sever links) — the
  /// flow revalidates after every edge.
  std::function<void(core::TxnState, const core::MigrationTxn&)> on_step;
};

enum class TxnOutcome {
  kCommitted,   ///< the VM runs at (some) destination
  kRolledBack,  ///< all attempts undone; the VM runs at the source
  kFailed,      ///< never opened a transaction (validation/placement)
};

[[nodiscard]] const char* to_string(TxnOutcome outcome);

/// Result of one policy-driven migration (possibly several attempts).
struct MigrationTxnReport {
  TxnOutcome outcome = TxnOutcome::kFailed;
  std::size_t attempts = 0;
  std::size_t dst_hypervisor = 0;  ///< destination of the final attempt
  bool replaced = false;           ///< destination differs from requested
  double elapsed_s = 0.0;  ///< wall clock incl. backoff and failed attempts
  core::ReconfigStats reconfig;     ///< stats of the final attempt
  std::uint64_t rollback_smps = 0;  ///< undo cost across failed attempts
  std::string error;                ///< last failure; empty when committed
};

class CloudOrchestrator {
 public:
  CloudOrchestrator(core::VSwitchFabric& fabric, Placement placement,
                    FlowTiming timing = {});

  /// Boots `count` VMs under the placement policy. Returns their handles.
  std::vector<core::VmHandle> launch_vms(std::size_t count);

  /// The §VII-B four-step flow for one VM. Destination bounds and VF
  /// availability are validated up front with typed MigrationErrors.
  MigrationFlowReport migrate(core::VmHandle vm, std::size_t dst_hypervisor,
                              const core::MigrationOptions& options = {});

  /// The same flow as an abortable transaction with bounded retries:
  /// drives the vSwitch phases state by state, rolls back on attach
  /// failure / step timeout / unreachable switch, backs off exponentially
  /// and (policy permitting) re-places the VM on a fallback destination.
  /// Always terminates with the fabric consistent: the returned outcome is
  /// kCommitted or kRolledBack whenever a transaction was opened.
  MigrationTxnReport migrate_txn(core::VmHandle vm,
                                 std::size_t dst_hypervisor,
                                 const core::MigrationOptions& options = {},
                                 const TxnPolicy& policy = {});

  /// Destination-swap as a policy-driven transaction: both VMs trade slots
  /// through one fused MigrationTxn (core::VSwitchFabric::begin_swap). No
  /// re-placement on failure — the destination *is* the peer — but
  /// transient faults (unreachable switch, step timeout) retry under the
  /// same backoff schedule as migrate_txn.
  MigrationTxnReport swap_txn(core::VmHandle vm_a, core::VmHandle vm_b,
                              const core::MigrationOptions& options = {},
                              const TxnPolicy& policy = {});

  /// Predicts which physical switches a migration would update, from the
  /// SM's master tables, without executing anything. In kDeterministic mode
  /// this is the changed-entries set; in kMinimal mode the §VI-D skyline
  /// set (one leaf for an intra-leaf move).
  std::vector<routing::SwitchIdx> predict_update_set(
      core::VmHandle vm, std::size_t dst_hypervisor,
      core::ReconfigMode mode = core::ReconfigMode::kDeterministic) const;

  /// Predicted update set of a destination swap between two live VMs: the
  /// switches where the two VM LIDs' entries differ (identical for both
  /// LIDs — the swap is symmetric), or the union of the two per-LID
  /// skyline sets in kMinimal mode.
  std::vector<routing::SwitchIdx> predict_swap_update_set(
      core::VmHandle vm_a, core::VmHandle vm_b,
      core::ReconfigMode mode = core::ReconfigMode::kDeterministic) const;

  /// Greedy grouping of requests into rounds with pairwise-disjoint
  /// predicted update sets (first-fit on rounds, stable order).
  ParallelPlan plan_parallel(
      const std::vector<MigrationRequest>& requests,
      core::ReconfigMode mode = core::ReconfigMode::kDeterministic);

  /// Executes a plan round by round; within a round the elapsed time is the
  /// maximum of the members (they run concurrently), across rounds it sums.
  struct PlanExecution {
    double elapsed_s = 0.0;
    double serial_s = 0.0;  ///< what one-at-a-time would have cost
    std::vector<MigrationFlowReport> reports;
  };
  PlanExecution execute(const ParallelPlan& plan,
                        const core::MigrationOptions& options = {});

  /// Transactional plan execution: each member runs under migrate_txn, so
  /// one failed member rolls back (or re-places) alone while the rest of
  /// its round proceeds.
  struct TxnPlanExecution {
    double elapsed_s = 0.0;
    double serial_s = 0.0;
    std::size_t committed = 0;
    std::size_t rolled_back = 0;
    std::size_t failed = 0;
    std::vector<MigrationTxnReport> reports;
  };
  TxnPlanExecution execute_txn(const ParallelPlan& plan,
                               const core::MigrationOptions& options = {},
                               const TxnPolicy& policy = {});

  [[nodiscard]] const FlowTiming& timing() const noexcept { return timing_; }

  /// The vSwitch fabric this orchestrator drives.
  [[nodiscard]] core::VSwitchFabric& fabric() noexcept { return fabric_; }

  /// Attaches a PerfMgr: every subsequent migrate() snapshots the source
  /// and destination hypervisor uplink counters (PMA reads) right before
  /// and after the flow and reports the measured traffic impact. nullptr
  /// detaches.
  void attach_perf(perf::PerfMgr* perf) noexcept { perf_ = perf; }

  // --- INT congestion feedback (the control loop) ---

  /// Attaches a fabric congestion map (perf::IntCollector::build_map):
  /// kCongestionAware placement, fallback re-placement, and destination
  /// ranking then steer away from hot uplinks. The map is not copied —
  /// keep it alive, refresh it by re-attaching. nullptr detaches.
  void attach_congestion(const perf::CongestionMap* map) noexcept {
    congestion_ = map;
  }
  [[nodiscard]] bool congestion_aware() const noexcept {
    return congestion_ != nullptr;
  }

  /// Blocked-step score of one hypervisor's uplink in the attached map:
  /// the leaf egress toward the host (down direction) plus the vSwitch
  /// uplink egress (up direction). 0 without a map — or when no sampled
  /// packet ever queued there.
  [[nodiscard]] std::uint64_t uplink_congestion(std::size_t h) const;

  /// Migration-destination scoring: hypervisors with a free VF (excluding
  /// the VM's current one), ranked by uplink congestion ascending, ties
  /// broken by PF NodeId then index — a total order, so equal-score plans
  /// are byte-identical across platforms and thread counts. Front is the
  /// best destination under the attached map.
  [[nodiscard]] std::vector<std::pair<std::size_t, std::uint64_t>>
  rank_destinations(core::VmHandle vm) const;

  /// One credit-sim pass of the victim flows with INT sampling on.
  struct ProbeRun {
    fabric::CreditSimReport sim;
    perf::CongestionMap map;
    /// Blocked steps the victim tenants' stacks reported, total.
    std::uint64_t victim_blocked = 0;
  };

  /// Per-link blocking across the three probe phases, for links on
  /// switches the migration updates.
  struct SharedLinkDelta {
    perf::LinkKey link;
    std::uint64_t blocked_before = 0;
    std::uint64_t blocked_during = 0;
    std::uint64_t blocked_after = 0;

    /// Extra blocking the migration transient inflicted on this link.
    [[nodiscard]] std::int64_t transient_delta() const noexcept {
      return static_cast<std::int64_t>(blocked_during) -
             static_cast<std::int64_t>(blocked_before);
    }
  };

  struct ProbeOptions {
    /// Step of the "during" run at which the migration executes.
    std::uint64_t migrate_at_step = 20;
    core::MigrationOptions migration;
    /// Base simulator config; int_mode.{enabled,sink} are overridden per
    /// phase (sampling stays at the configured rate/seed).
    fabric::CreditSimConfig sim;
    std::size_t top_k = 8;
  };

  /// Measures what a migration does to traffic already on the wire: runs
  /// `victim_flows` before, during (the migration fires mid-flight via
  /// on_step), and after the move of `vm` to `dst_hypervisor`, each pass
  /// INT-sampled into its own congestion map, and reports delta-blocking
  /// on the links of every switch the migration updated. The migration is
  /// real — the fabric ends up reconfigured.
  struct MigrationImpactProbe {
    ProbeRun before, during, after;
    core::MigrationReport migration;
    std::vector<SharedLinkDelta> shared_links;
  };
  MigrationImpactProbe probe_migration_impact(
      core::VmHandle vm, std::size_t dst_hypervisor,
      const std::vector<fabric::FlowSpec>& victim_flows,
      const ProbeOptions& options);
  MigrationImpactProbe probe_migration_impact(
      core::VmHandle vm, std::size_t dst_hypervisor,
      const std::vector<fabric::FlowSpec>& victim_flows) {
    return probe_migration_impact(vm, dst_hypervisor, victim_flows,
                                  ProbeOptions{});
  }

 private:
  std::optional<std::size_t> pick_hypervisor();
  /// Placement only considers hypervisors whose PF is physically attached:
  /// a host whose uplink (or leaf) is down cannot receive a VM.
  [[nodiscard]] bool hypervisor_attached(std::size_t h) const;
  /// Fallback destination for a retried migration: any attached hypervisor
  /// with a free VF that is neither the VM's source nor already tried.
  [[nodiscard]] std::optional<std::size_t> pick_fallback(
      core::VmHandle vm, const std::vector<std::size_t>& exclude) const;

  core::VSwitchFabric& fabric_;
  Placement placement_;
  FlowTiming timing_;
  std::size_t rr_next_ = 0;
  perf::PerfMgr* perf_ = nullptr;
  const perf::CongestionMap* congestion_ = nullptr;
};

}  // namespace ibvs::cloud
