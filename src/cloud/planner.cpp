#include "cloud/planner.hpp"

#include <algorithm>
#include <limits>
#include <sstream>
#include <unordered_set>

#include "ib/types.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "util/expect.hpp"
#include "util/thread_pool.hpp"

namespace ibvs::cloud {

namespace {

struct PlannerMetrics {
  telemetry::Counter& plans;
  telemetry::Counter& moves_copy;
  telemetry::Counter& moves_swap;
  telemetry::Counter& replans;

  static PlannerMetrics& get() {
    auto& reg = telemetry::Registry::global();
    static PlannerMetrics m{
        reg.counter("ibvs_planner_plans_total", {},
                    "Fleet migration plans computed"),
        reg.counter("ibvs_planner_moves_total", {{"kind", "copy"}},
                    "Planned moves by kind"),
        reg.counter("ibvs_planner_moves_total", {{"kind", "swap"}}),
        reg.counter("ibvs_planner_replans_total", {},
                    "Executor passes that re-planned after failures"),
    };
    return m;
  }
};

/// The SMP write unit of one LFT entry: hardware programs LFTs in 64-entry
/// blocks, so two moves touching the same (switch, block) pair would fold
/// into each other's SMPs and must not run concurrently.
[[nodiscard]] std::uint64_t write_unit(routing::SwitchIdx s, Lid lid) {
  return (static_cast<std::uint64_t>(s) << 32) |
         (lid.value() / kLftBlockSize);
}

[[nodiscard]] bool sorted_intersect(const std::vector<std::uint64_t>& a,
                                    const std::vector<std::uint64_t>& b) {
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      return true;
    }
  }
  return false;
}

}  // namespace

const char* to_string(FleetGoalKind kind) {
  switch (kind) {
    case FleetGoalKind::kEvacuateHypervisor:
      return "evacuate-hypervisor";
    case FleetGoalKind::kEvacuateLeaf:
      return "evacuate-leaf";
    case FleetGoalKind::kConsolidateVms:
      return "consolidate-vms";
    case FleetGoalKind::kRebalanceCongestion:
      return "rebalance-congestion";
  }
  return "?";
}

std::string to_string(const MigrationPlan& plan) {
  std::ostringstream os;
  os << to_string(plan.goal.kind) << ": " << plan.total_moves() << " moves ("
     << plan.swap_moves() << " swaps) in " << plan.batches.size()
     << " batches, " << plan.predicted_smps() << " predicted SMPs";
  for (std::size_t b = 0; b < plan.batches.size(); ++b) {
    os << "\n  batch " << b << ":";
    for (const auto& m : plan.batches[b].moves) {
      os << " vm" << m.vm.id;
      if (m.is_swap()) {
        os << "<->vm" << m.swap_with.id;
      } else {
        os << "->" << m.dst_hypervisor;
      }
    }
  }
  return os.str();
}

MigrationPlanner::MigrationPlanner(CloudOrchestrator& cloud)
    : MigrationPlanner(cloud, Options{}) {}

MigrationPlanner::MigrationPlanner(CloudOrchestrator& cloud, Options options)
    : cloud_(&cloud), options_(options) {}

std::vector<MigrationPlanner::RawMove> MigrationPlanner::moves_for(
    const FleetGoal& goal) const {
  auto& fabric = cloud_->fabric();
  const auto& hyps = fabric.hypervisors();
  const auto& physical = fabric.subnet_manager().fabric();

  const auto attached = [&](std::size_t h) {
    return physical.physical_attachment(hyps[h].pf).has_value();
  };

  // VM ids per hypervisor, ascending — the deterministic enumeration every
  // goal below draws from.
  std::vector<std::vector<std::uint32_t>> on_host(hyps.size());
  for (const std::uint32_t id : fabric.active_vm_ids()) {
    on_host[fabric.vm({id}).hypervisor].push_back(id);
  }
  // Capacity snapshot. Planned copies consume destination slots; nothing is
  // credited back for vacated sources — a credited slot is only real after
  // the vacating move commits, and relying on it would impose cross-batch
  // ordering the executor does not promise.
  std::vector<std::size_t> free(hyps.size());
  for (std::size_t h = 0; h < hyps.size(); ++h) {
    free[h] = fabric.free_vf_count(h);
  }

  // Copy-destination choice shared by the evacuation goals. Hosts with the
  // fewest already-planned incoming moves win first: moves sharing a
  // destination conflict (VF-slot contention) and serialize across batches,
  // so spreading the fan-in is what turns an evacuation into one wide batch
  // instead of a convoy. Then same-leaf hosts (an intra-leaf move updates
  // exactly one switch, §VI-D), then coolest uplink, then PF NodeId, then
  // index — a total order, so plans reproduce byte-identically.
  std::vector<std::size_t> incoming(hyps.size(), 0);
  const auto pick_copy_dst =
      [&](std::size_t src,
          const std::vector<char>& forbidden) -> std::optional<std::size_t> {
    std::optional<std::size_t> best;
    auto better = [&](std::size_t a, std::size_t b) {
      if (incoming[a] != incoming[b]) return incoming[a] < incoming[b];
      const bool leaf_a = hyps[a].leaf == hyps[src].leaf;
      const bool leaf_b = hyps[b].leaf == hyps[src].leaf;
      if (leaf_a != leaf_b) return leaf_a;
      const auto ca = cloud_->uplink_congestion(a);
      const auto cb = cloud_->uplink_congestion(b);
      if (ca != cb) return ca < cb;
      if (hyps[a].pf != hyps[b].pf) return hyps[a].pf < hyps[b].pf;
      return a < b;
    };
    for (std::size_t h = 0; h < hyps.size(); ++h) {
      if (h == src || forbidden[h] || free[h] == 0 || !attached(h)) continue;
      if (!best || better(h, *best)) best = h;
    }
    return best;
  };

  std::vector<RawMove> moves;
  switch (goal.kind) {
    case FleetGoalKind::kEvacuateHypervisor:
    case FleetGoalKind::kEvacuateLeaf: {
      // Drained hosts are forbidden destinations — which also rules out
      // swaps, since a swap would park the peer on a host being emptied.
      std::vector<char> forbidden(hyps.size(), 0);
      std::vector<std::size_t> sources;
      if (goal.kind == FleetGoalKind::kEvacuateHypervisor) {
        IBVS_REQUIRE(goal.hypervisor < hyps.size(),
                     "evacuation hypervisor out of range");
        forbidden[goal.hypervisor] = 1;
        sources.push_back(goal.hypervisor);
      } else {
        for (std::size_t h = 0; h < hyps.size(); ++h) {
          if (hyps[h].leaf == goal.leaf) {
            forbidden[h] = 1;
            sources.push_back(h);
          }
        }
      }
      for (const std::size_t src : sources) {
        for (const std::uint32_t id : on_host[src]) {
          const auto dst = pick_copy_dst(src, forbidden);
          if (!dst) continue;  // cloud full: this VM cannot leave yet
          --free[*dst];
          ++incoming[*dst];
          moves.push_back({core::VmHandle{id}, src, *dst, {}});
        }
      }
      break;
    }
    case FleetGoalKind::kConsolidateVms: {
      std::unordered_set<std::uint32_t> active;
      for (const std::uint32_t id : fabric.active_vm_ids()) active.insert(id);
      std::vector<std::uint32_t> tenant_ids;
      for (const auto vm : goal.vms) {
        if (vm.valid() && active.count(vm.id) != 0) tenant_ids.push_back(vm.id);
      }
      std::sort(tenant_ids.begin(), tenant_ids.end());
      tenant_ids.erase(std::unique(tenant_ids.begin(), tenant_ids.end()),
                       tenant_ids.end());
      std::unordered_set<std::uint32_t> tenant(tenant_ids.begin(),
                                               tenant_ids.end());

      std::vector<std::size_t> tenant_count(hyps.size(), 0);
      std::vector<std::vector<std::uint32_t>> swap_peers(hyps.size());
      for (std::size_t h = 0; h < hyps.size(); ++h) {
        for (const std::uint32_t id : on_host[h]) {
          if (tenant.count(id) != 0) {
            ++tenant_count[h];
          } else {
            swap_peers[h].push_back(id);  // ascending: on_host is sorted
          }
        }
      }

      // Pack onto the hosts already holding the most tenant VMs; each
      // target absorbs tenants through free VFs first, then (option
      // permitting) by swapping out its non-tenant VMs.
      std::vector<std::size_t> order;
      for (std::size_t h = 0; h < hyps.size(); ++h) {
        if (attached(h)) order.push_back(h);
      }
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        if (tenant_count[a] != tenant_count[b]) {
          return tenant_count[a] > tenant_count[b];
        }
        if (hyps[a].pf != hyps[b].pf) return hyps[a].pf < hyps[b].pf;
        return a < b;
      });
      std::vector<char> is_target(hyps.size(), 0);
      std::size_t covered = 0;
      for (const std::size_t h : order) {
        if (covered >= tenant_ids.size()) break;
        is_target[h] = 1;
        covered += tenant_count[h] + free[h] +
                   (options_.allow_swaps ? swap_peers[h].size() : 0);
      }

      for (const std::uint32_t id : tenant_ids) {
        const std::size_t src = fabric.vm({id}).hypervisor;
        if (is_target[src]) continue;  // already packed
        bool placed = false;
        for (const std::size_t t : order) {
          if (!is_target[t] || t == src) continue;
          if (free[t] > 0) {
            --free[t];
            moves.push_back({core::VmHandle{id}, src, t, {}});
            placed = true;
            break;
          }
          if (options_.allow_swaps && !swap_peers[t].empty()) {
            const std::uint32_t peer = swap_peers[t].front();
            swap_peers[t].erase(swap_peers[t].begin());
            moves.push_back({core::VmHandle{id}, src, t,
                             core::VmHandle{peer}});
            placed = true;
            break;
          }
        }
        (void)placed;  // unplaceable tenants stay put; a re-plan retries
      }
      break;
    }
    case FleetGoalKind::kRebalanceCongestion: {
      IBVS_REQUIRE(cloud_->congestion_aware(),
                   "rebalance goal needs a congestion map "
                   "(CloudOrchestrator::attach_congestion)");
      std::vector<std::uint64_t> score(hyps.size());
      for (std::size_t h = 0; h < hyps.size(); ++h) {
        score[h] = cloud_->uplink_congestion(h);
      }
      std::vector<std::size_t> hot;
      for (std::size_t h = 0; h < hyps.size(); ++h) {
        if (score[h] > 0 && !on_host[h].empty() && attached(h)) {
          hot.push_back(h);
        }
      }
      std::sort(hot.begin(), hot.end(), [&](std::size_t a, std::size_t b) {
        if (score[a] != score[b]) return score[a] > score[b];
        if (hyps[a].pf != hyps[b].pf) return hyps[a].pf < hyps[b].pf;
        return a < b;
      });
      const std::size_t cap =
          goal.max_moves > 0 ? goal.max_moves : hot.size();
      std::vector<std::size_t> swap_cursor(hyps.size(), 0);
      for (const std::size_t h : hot) {
        if (moves.size() >= cap) break;
        const std::uint32_t vm_id = on_host[h].front();
        // Coldest strictly-cooler host wins; prefer a free VF, fall back to
        // swapping with its lowest-id VM.
        std::optional<std::size_t> dst;
        bool via_swap = false;
        auto cooler = [&](std::size_t a, std::size_t b) {
          if (score[a] != score[b]) return score[a] < score[b];
          if (hyps[a].pf != hyps[b].pf) return hyps[a].pf < hyps[b].pf;
          return a < b;
        };
        for (std::size_t c = 0; c < hyps.size(); ++c) {
          if (c == h || score[c] >= score[h] || !attached(c)) continue;
          const bool can_copy = free[c] > 0;
          const bool can_swap = options_.allow_swaps &&
                                swap_cursor[c] < on_host[c].size();
          if (!can_copy && !can_swap) continue;
          if (!dst || cooler(c, *dst)) {
            dst = c;
            via_swap = !can_copy;
          }
        }
        if (!dst) continue;
        if (via_swap) {
          const std::uint32_t peer = on_host[*dst][swap_cursor[*dst]++];
          moves.push_back({core::VmHandle{vm_id}, h, *dst,
                           core::VmHandle{peer}});
        } else {
          --free[*dst];
          moves.push_back({core::VmHandle{vm_id}, h, *dst, {}});
        }
      }
      break;
    }
  }
  return moves;
}

void MigrationPlanner::annotate(std::vector<PlannedMove>& moves) const {
  const auto& fabric = cloud_->fabric();
  const auto& sm = fabric.subnet_manager();
  const auto& hyps = fabric.hypervisors();
  // Pure reads of the master tables and the congestion map, one move per
  // index — results land by slot, so the pool size never changes the plan.
  ThreadPool::global().parallel_for(0, moves.size(), [&](std::size_t i) {
    PlannedMove& m = moves[i];
    std::vector<Lid> lids{fabric.vm(m.vm).lid};
    if (m.is_swap()) {
      m.update_set = cloud_->predict_swap_update_set(m.vm, m.swap_with,
                                                     options_.mode);
      lids.push_back(fabric.vm(m.swap_with).lid);
    } else {
      m.update_set = cloud_->predict_update_set(m.vm, m.dst_hypervisor,
                                                options_.mode);
      if (fabric.scheme() == core::LidScheme::kPrepopulated) {
        // The destination VF's prepopulated LID swaps back to the source —
        // its entries change on the same switches.
        const auto vf = fabric.free_vf_on(m.dst_hypervisor);
        if (vf) {
          lids.push_back(
              sm.fabric().node(hyps[m.dst_hypervisor].vfs[*vf]).lid());
        }
      }
    }
    std::sort(m.update_set.begin(), m.update_set.end());
    m.update_keys.reserve(m.update_set.size() * lids.size());
    for (const auto s : m.update_set) {
      for (const Lid lid : lids) m.update_keys.push_back(write_unit(s, lid));
    }
    std::sort(m.update_keys.begin(), m.update_keys.end());
    m.update_keys.erase(
        std::unique(m.update_keys.begin(), m.update_keys.end()),
        m.update_keys.end());
    // One SMP per dirty write unit, plus the address SMPs: LID + vGUID per
    // endpoint VF that changes owner (2 for a copy + the release, 4 for a
    // swap's crossed pair).
    m.predicted_smps =
        m.update_keys.size() + (m.is_swap() ? 4 : 3);
    m.hot_exposure = cloud_->uplink_congestion(m.src_hypervisor) +
                     cloud_->uplink_congestion(m.dst_hypervisor);
  });
}

bool MigrationPlanner::conflict(const PlannedMove& a, const PlannedMove& b,
                                bool uncoordinated) {
  // Endpoint rule. A destination consumes a VF slot, so two moves must not
  // race for the same host's slots; and a move out of a host must not run
  // beside a move into it (the incoming VM could land in the very slot the
  // outgoing one is vacating mid-transaction). A swap populates AND vacates
  // both of its endpoints. Two plain copies *out of* the same host do not
  // conflict — they leave through distinct VFs — which is exactly what lets
  // a single-hypervisor evacuation fan out in one batch.
  const auto receives = [](const PlannedMove& m, std::size_t h) {
    return m.dst_hypervisor == h || (m.is_swap() && m.src_hypervisor == h);
  };
  const auto vacates = [](const PlannedMove& m, std::size_t h) {
    return m.src_hypervisor == h || (m.is_swap() && m.dst_hypervisor == h);
  };
  const std::size_t hosts_a[2] = {a.src_hypervisor, a.dst_hypervisor};
  for (const std::size_t h : hosts_a) {
    if (receives(a, h) && (receives(b, h) || vacates(b, h))) return true;
    if (vacates(a, h) && receives(b, h)) return true;
  }
  // SMP write-unit rule, uncoordinated regime only: without a single agent
  // serializing emission, two writers of the same (switch, LFT-block) pair
  // read-modify-write the same 64-entry unit and one clobbers the other.
  // The repo's executor serializes, so the default regime skips this.
  return uncoordinated && sorted_intersect(a.update_keys, b.update_keys);
}

MigrationPlan MigrationPlanner::plan(const FleetGoal& goal) const {
  auto span = telemetry::Tracer::global().span(
      "planner.plan", {{"goal", to_string(goal.kind)}});
  MigrationPlan plan;
  plan.goal = goal;

  const auto raw = moves_for(goal);
  std::vector<PlannedMove> moves;
  moves.reserve(raw.size());
  for (const auto& r : raw) {
    PlannedMove m;
    m.vm = r.vm;
    m.src_hypervisor = r.src;
    m.dst_hypervisor = r.dst;
    m.swap_with = r.swap_with;
    moves.push_back(std::move(m));
  }
  annotate(moves);

  // Hottest exposure first: the batches that drain congested uplinks run
  // earliest, so the transient window where traffic crosses a hot link is
  // as short as the plan can make it. Ties: cheapest SMP bill, then VM id.
  std::sort(moves.begin(), moves.end(),
            [](const PlannedMove& a, const PlannedMove& b) {
              if (a.hot_exposure != b.hot_exposure) {
                return a.hot_exposure > b.hot_exposure;
              }
              if (a.predicted_smps != b.predicted_smps) {
                return a.predicted_smps < b.predicted_smps;
              }
              return a.vm.id < b.vm.id;
            });

  // Greedy first-fit: each move lands in the earliest batch it conflicts
  // with no member of.
  for (auto& m : moves) {
    bool placed = false;
    for (auto& batch : plan.batches) {
      if (options_.max_batch_size > 0 &&
          batch.moves.size() >= options_.max_batch_size) {
        continue;
      }
      const bool clash = std::any_of(
          batch.moves.begin(), batch.moves.end(),
          [&](const PlannedMove& other) { return conflicts(m, other); });
      if (clash) continue;
      batch.moves.push_back(std::move(m));
      placed = true;
      break;
    }
    if (!placed) plan.batches.push_back({{std::move(m)}});
  }

  auto& metrics = PlannerMetrics::get();
  metrics.plans.inc();
  for (const auto& b : plan.batches) {
    for (const auto& m : b.moves) {
      (m.is_swap() ? metrics.moves_swap : metrics.moves_copy).inc();
    }
  }
  span.set_attr("moves", std::to_string(plan.total_moves()));
  span.set_attr("batches", std::to_string(plan.batches.size()));
  span.set_attr("swaps", std::to_string(plan.swap_moves()));
  return plan;
}

PlanExecutor::PlanExecutor(CloudOrchestrator& cloud) : cloud_(&cloud) {}

FleetExecution PlanExecutor::execute(const MigrationPlanner& planner,
                                     const MigrationPlan& plan,
                                     const core::MigrationOptions& options,
                                     const ExecutorPolicy& policy) {
  auto span = telemetry::Tracer::global().span(
      "planner.execute", {{"goal", to_string(plan.goal.kind)}});
  FleetExecution out;
  auto& fabric = cloud_->fabric();
  const MigrationPlan* current = &plan;
  MigrationPlan replanned;
  std::size_t batch_index = 0;

  for (;;) {
    bool any_failure = false;
    for (const auto& batch : current->batches) {
      if (policy.on_batch_start) policy.on_batch_start(batch_index, batch);
      ++batch_index;
      BatchExecution be;

      // Revalidate against live fabric state — chaos (or an earlier batch's
      // rollback) may have destroyed a member or moved it elsewhere. Pure
      // reads, fanned out on the pool; verdicts land by index.
      std::vector<char> ok(batch.moves.size(), 0);
      std::unordered_set<std::uint32_t> active;
      for (const std::uint32_t id : fabric.active_vm_ids()) active.insert(id);
      ThreadPool::global().parallel_for(
          0, batch.moves.size(), [&](std::size_t i) {
            const auto& m = batch.moves[i];
            if (active.count(m.vm.id) == 0) return;
            if (fabric.vm(m.vm).hypervisor != m.src_hypervisor) return;
            if (m.is_swap()) {
              if (active.count(m.swap_with.id) == 0) return;
              if (fabric.vm(m.swap_with).hypervisor != m.dst_hypervisor) {
                return;
              }
            }
            ok[i] = 1;
          });

      // Members run serially in index order: conflict-freedom makes every
      // interleaving equivalent, and a fixed order keeps the SMP stream
      // byte-identical at any pool size. The wall-clock phases overlap —
      // the batch costs its slowest member, not the sum.
      for (std::size_t i = 0; i < batch.moves.size(); ++i) {
        const auto& m = batch.moves[i];
        if (!ok[i]) {
          ++be.skipped;
          continue;
        }
        MigrationTxnReport report =
            m.is_swap()
                ? cloud_->swap_txn(m.vm, m.swap_with, options, policy.txn)
                : cloud_->migrate_txn(m.vm, m.dst_hypervisor, options,
                                      policy.txn);
        be.elapsed_s = std::max(be.elapsed_s, report.elapsed_s);
        be.serial_s += report.elapsed_s;
        be.rollback_smps += report.rollback_smps;
        switch (report.outcome) {
          case TxnOutcome::kCommitted:
            ++be.committed;
            be.smps += report.reconfig.total_smps();
            if (m.is_swap()) ++out.swaps_committed;
            break;
          case TxnOutcome::kRolledBack:
            ++be.rolled_back;
            any_failure = true;
            break;
          case TxnOutcome::kFailed:
            ++be.failed;
            any_failure = true;
            break;
        }
        be.reports.push_back(std::move(report));
      }

      if (policy.on_batch_end) {
        policy.on_batch_end(batch_index - 1, batch, be);
      }
      out.makespan_s += be.elapsed_s;
      out.serial_s += be.serial_s;
      out.smps += be.smps;
      out.rollback_smps += be.rollback_smps;
      out.committed += be.committed;
      out.rolled_back += be.rolled_back;
      out.failed += be.failed;
      out.skipped += be.skipped;
      out.batches.push_back(std::move(be));
    }

    if (!any_failure || !policy.replan_on_failure ||
        out.replans >= policy.max_replans) {
      break;
    }
    // The goals are state-derived, so planning again against the live
    // fabric covers exactly the moves the failed pass left undone.
    ++out.replans;
    PlannerMetrics::get().replans.inc();
    replanned = planner.plan(current->goal);
    if (replanned.total_moves() == 0) break;
    current = &replanned;
  }

  span.set_attr("committed", std::to_string(out.committed));
  span.set_attr("rolled_back", std::to_string(out.rolled_back));
  span.set_attr("replans", std::to_string(out.replans));
  span.set_attr("makespan_s", std::to_string(out.makespan_s));
  return out;
}

DrainDetachReport drain_and_detach(
    CloudOrchestrator& cloud, NodeId leaf,
    const core::MigrationOptions& options, const ExecutorPolicy& policy,
    const sm::TopologyApplyOptions& detach_options) {
  core::VSwitchFabric& vsf = cloud.fabric();
  const auto& hyps = vsf.hypervisors();

  const auto resident_under_leaf = [&]() {
    std::size_t n = 0;
    for (std::size_t h = 0; h < hyps.size(); ++h) {
      if (hyps[h].leaf != leaf) continue;
      n += hyps[h].vfs.size() - vsf.free_vf_count(h);
    }
    return n;
  };

  DrainDetachReport report;
  const std::size_t before = resident_under_leaf();
  if (before > 0) {
    MigrationPlanner planner(cloud);
    FleetGoal goal;
    goal.kind = FleetGoalKind::kEvacuateLeaf;
    goal.leaf = leaf;
    report.plan = planner.plan(goal);
    PlanExecutor executor(cloud);
    report.evacuation =
        executor.execute(planner, report.plan, options, policy);
  }
  const std::size_t after = resident_under_leaf();
  report.vms_evacuated = before - after;
  if (after > 0) {
    // A fleet pass that exhausted its re-plans left live VMs behind; the
    // detach must not orphan them.
    throw sm::TopologyError(
        sm::TopologyErrc::kNotDrained,
        "evacuation left " + std::to_string(after) +
            " VM(s) resident under the leaf; detach refused");
  }
  sm::TopologyTxnManager topo(vsf.subnet_manager(), vsf.journal());
  report.detach =
      topo.detach_switch(leaf, /*allow_orphan_endpoints=*/true,
                         detach_options);
  return report;
}

}  // namespace ibvs::cloud
