// Fleet-level migration planning: batched, conflict-aware scheduling of
// concurrent MigrationTxns.
//
// The paper reconfigures the subnet for ONE migration; a production cloud
// runs thousands — rack evacuations, tenant consolidation, congestion
// rebalancing. Two ingredients from the literature close the gap:
// destination-swap moves (two VMs trade slots in one fused transaction,
// cheaper than two copies and possible even when both hosts are full) and
// migration planning (ordering moves under shared-resource constraints to
// bound total cost and transient interference).
//
// MigrationPlanner turns a FleetGoal into a MigrationPlan of *batches*.
// Moves inside a batch are pairwise conflict-free and may overlap in time;
// conflicting moves are ordered across batches, hottest exposure first, so
// congested uplinks are relieved as early as possible.
//
// The conflict model (see conflict()) distinguishes two concurrency
// regimes. Under this repo's executor every reconfiguration is emitted by
// the single master SM, serially, in member index order — so overlapping
// LFT writes are read-modify-written sequentially and cannot race, and the
// only true dependencies between moves are VF-slot ones: two moves into
// the same host contend for its free slots, and a move into a host depends
// on the move that vacates its slot. That endpoint rule alone decides
// batch membership by default — which is what lets a whole hypervisor
// drain in one batch even though every member's update set contains the
// source leaf. The §VI-D disjoint-set rule exists for *uncoordinated*
// reconfigurations (independent agents emitting concurrently); Options::
// uncoordinated restores that regime, refined from whole switches to the
// (switch, 64-LID block) write unit — the granularity at which one agent's
// block write would clobber another's in-flight entry.
//
// PlanExecutor drives batches through the transactional migrate path
// (CloudOrchestrator::migrate_txn / swap_txn) with per-batch abort policy:
// one member rolls back alone while the rest of its batch proceeds, and a
// failed batch can re-plan the remainder from live fabric state. Member
// reconfigurations are serialized in index order — the PR-4 determinism
// contract: the SMP stream is byte-identical at any thread count — while
// the wall-clock phases (detach, memory copy, attach) overlap, so a batch
// costs the *maximum* of its members, not the sum.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cloud/orchestrator.hpp"
#include "sm/topology_txn.hpp"

namespace ibvs::cloud {

enum class FleetGoalKind {
  kEvacuateHypervisor,  ///< drain every VM off one host (maintenance)
  kEvacuateLeaf,        ///< drain every host under one leaf switch (rack)
  kConsolidateVms,      ///< pack the given VMs onto as few hosts as possible
  kRebalanceCongestion, ///< move VMs off hot uplinks (needs a congestion map)
};

[[nodiscard]] const char* to_string(FleetGoalKind kind);

struct FleetGoal {
  FleetGoalKind kind = FleetGoalKind::kEvacuateHypervisor;
  std::size_t hypervisor = 0;        ///< kEvacuateHypervisor
  NodeId leaf = kInvalidNode;        ///< kEvacuateLeaf
  std::vector<core::VmHandle> vms;   ///< kConsolidateVms (the tenant)
  /// kRebalanceCongestion: cap on moves (0 = one per hot host).
  std::size_t max_moves = 0;
};

/// One scheduled move. swap_with.valid() marks a fused destination swap:
/// this VM and the peer trade slots in a single MigrationTxn.
struct PlannedMove {
  core::VmHandle vm;
  std::size_t src_hypervisor = 0;
  std::size_t dst_hypervisor = 0;
  core::VmHandle swap_with;
  /// Predicted switch update set (sorted SwitchIdx), for reporting and the
  /// plan property tests.
  std::vector<routing::SwitchIdx> update_set;
  /// Predicted SMP write units: (SwitchIdx << 32) | lid_block, sorted.
  /// This is the conflict-detection granularity.
  std::vector<std::uint64_t> update_keys;
  std::uint64_t predicted_smps = 0;  ///< LFT write units + address SMPs
  /// Congestion score of the two endpoint uplinks (0 without a map); moves
  /// relieving hotter links order earlier across batches.
  std::uint64_t hot_exposure = 0;

  [[nodiscard]] bool is_swap() const noexcept { return swap_with.valid(); }
};

struct MigrationBatch {
  std::vector<PlannedMove> moves;
};

struct MigrationPlan {
  FleetGoal goal;
  std::vector<MigrationBatch> batches;

  [[nodiscard]] std::size_t total_moves() const noexcept {
    std::size_t n = 0;
    for (const auto& b : batches) n += b.moves.size();
    return n;
  }
  [[nodiscard]] std::size_t swap_moves() const noexcept {
    std::size_t n = 0;
    for (const auto& b : batches) {
      for (const auto& m : b.moves) n += m.is_swap() ? 1 : 0;
    }
    return n;
  }
  [[nodiscard]] std::uint64_t predicted_smps() const noexcept {
    std::uint64_t n = 0;
    for (const auto& b : batches) {
      for (const auto& m : b.moves) n += m.predicted_smps;
    }
    return n;
  }
};

[[nodiscard]] std::string to_string(const MigrationPlan& plan);

class MigrationPlanner {
 public:
  struct Options {
    core::ReconfigMode mode = core::ReconfigMode::kMinimal;
    /// Emit fused destination-swap moves when the preferred target is full
    /// (consolidation / rebalancing only — an evacuation must not park the
    /// peer on the host being drained).
    bool allow_swaps = true;
    /// Cap on moves per batch (0 = unbounded).
    std::size_t max_batch_size = 0;
    /// Plan for uncoordinated emission: batch members' SMP streams may
    /// interleave (multiple agents, no serialization), so moves whose
    /// predicted writes share a (switch, LFT-block) SMP unit additionally
    /// conflict — §VI-D's rule at write-unit granularity. The default
    /// (false) models this repo's executor: one master SM, serial
    /// index-ordered emission, endpoint conflicts only.
    bool uncoordinated = false;
  };

  explicit MigrationPlanner(CloudOrchestrator& cloud);
  MigrationPlanner(CloudOrchestrator& cloud, Options options);

  /// Plans from live fabric state. Deterministic: same state + goal ->
  /// byte-identical plan at any thread count (per-move prediction runs on
  /// ThreadPool::global, but every result lands by move index).
  [[nodiscard]] MigrationPlan plan(const FleetGoal& goal) const;

  /// The batch-membership predicate: true when the two moves must NOT run
  /// in the same batch — a shared destination host, one's destination
  /// being the other's source (VF slot chaining), or, with `uncoordinated`
  /// set, shared SMP write units ((switch, LFT-block) pairs).
  [[nodiscard]] static bool conflict(const PlannedMove& a,
                                     const PlannedMove& b,
                                     bool uncoordinated);

  /// conflict() under this planner's configured regime.
  [[nodiscard]] bool conflicts(const PlannedMove& a,
                               const PlannedMove& b) const {
    return conflict(a, b, options_.uncoordinated);
  }

  [[nodiscard]] const Options& options() const noexcept { return options_; }

 private:
  struct RawMove {
    core::VmHandle vm;
    std::size_t src = 0;
    std::size_t dst = 0;
    core::VmHandle swap_with;
  };

  [[nodiscard]] std::vector<RawMove> moves_for(const FleetGoal& goal) const;
  void annotate(std::vector<PlannedMove>& moves) const;

  CloudOrchestrator* cloud_;
  Options options_;
};

/// Per-batch outcome of one execution pass.
struct BatchExecution {
  double elapsed_s = 0.0;  ///< max over members (wall phases overlap)
  double serial_s = 0.0;   ///< sum over members
  std::size_t committed = 0;
  std::size_t rolled_back = 0;
  std::size_t failed = 0;
  std::size_t skipped = 0;  ///< revalidation dropped the member pre-txn
  std::uint64_t smps = 0;   ///< reconfiguration SMPs of committed members
  std::uint64_t rollback_smps = 0;
  std::vector<MigrationTxnReport> reports;
};

struct ExecutorPolicy {
  TxnPolicy txn;
  /// After a pass with rollbacks/failures, re-plan the remainder from live
  /// fabric state and run again (the goal is state-derived, so a re-plan
  /// covers exactly the unfinished moves).
  bool replan_on_failure = true;
  std::size_t max_replans = 2;
  /// Chaos hook, called before each batch executes (may mutate the fabric).
  std::function<void(std::size_t, const MigrationBatch&)> on_batch_start;
  /// Called after each batch's members ran, before accounting rolls up —
  /// the chaos harness reconverges and checker-verifies here.
  std::function<void(std::size_t, const MigrationBatch&,
                     const BatchExecution&)>
      on_batch_end;
};

struct FleetExecution {
  double makespan_s = 0.0;  ///< sum of batch maxima
  double serial_s = 0.0;    ///< what one-at-a-time would have cost
  std::uint64_t smps = 0;
  std::uint64_t rollback_smps = 0;
  std::size_t committed = 0;
  std::size_t rolled_back = 0;
  std::size_t failed = 0;
  std::size_t skipped = 0;
  std::size_t swaps_committed = 0;
  std::size_t replans = 0;
  std::vector<BatchExecution> batches;
};

/// Outcome of one drain-and-detach: the evacuation fleet run (empty when
/// the leaf hosted no VMs) followed by the topology transaction that
/// severed the switch.
struct DrainDetachReport {
  MigrationPlan plan;
  FleetExecution evacuation;
  std::size_t vms_evacuated = 0;
  sm::TopologyTxn detach;
};

/// Maintenance drain: evacuates every VM resident under `leaf` with the
/// fleet planner (kEvacuateLeaf — batched, conflict-aware, swap-free), then
/// detaches the switch through a journaled TopologyTxnManager transaction.
/// The detach passes allow_orphan_endpoints because the emptied
/// hypervisors' PF/vSwitch LIDs stay cabled below the leaf (dark until a
/// re-attach); *VM* LIDs still resident after the evacuation — a fleet pass
/// that exhausted its re-plans — abort with TopologyErrc::kNotDrained
/// before any cable moves.
DrainDetachReport drain_and_detach(
    CloudOrchestrator& cloud, NodeId leaf,
    const core::MigrationOptions& options = {},
    const ExecutorPolicy& policy = {},
    const sm::TopologyApplyOptions& detach_options = {});

class PlanExecutor {
 public:
  explicit PlanExecutor(CloudOrchestrator& cloud);

  /// Runs the plan batch by batch. Members are revalidated against live
  /// fabric state in parallel (ThreadPool::global), then their
  /// transactions execute in index order — conflict-freedom makes any
  /// interleaving equivalent, and index order keeps the SMP stream
  /// byte-identical at every thread count. One member's rollback never
  /// aborts its batch; a pass that left rollbacks/failures behind
  /// re-plans via `planner` up to policy.max_replans times.
  FleetExecution execute(const MigrationPlanner& planner,
                         const MigrationPlan& plan,
                         const core::MigrationOptions& options = {},
                         const ExecutorPolicy& policy = {});

 private:
  CloudOrchestrator* cloud_;
};

}  // namespace ibvs::cloud
