// Typed migration errors.
//
// Migration failures are recoverable, policy-relevant events — the
// orchestrator retries, re-places, or rolls back depending on *which* step
// failed — so they carry a machine-readable code. MigrationError derives
// from std::invalid_argument: every condition it reports is a caller-visible
// precondition or environment failure (the IBVS_REQUIRE category), and
// callers that only know the standard hierarchy keep catching it.
#pragma once

#include <stdexcept>
#include <string>

namespace ibvs::core {

enum class MigrationErrc {
  kUnknownVm,            ///< the VM handle does not name an active VM
  kBadDestination,       ///< dst_hypervisor out of range
  kSameHypervisor,       ///< destination equals the VM's current host
  kNoFreeVf,             ///< destination has no free VF slot
  kDestinationDetached,  ///< destination PF physically unreachable
  kStepTimeout,          ///< a transaction step exceeded its budget
  kSwitchUnreachable,    ///< a required switch became SM-unreachable
  kInterrupted,          ///< the reconfiguration batch was cut short
  kNotBooted,            ///< the fabric has not booted yet
};

[[nodiscard]] inline const char* to_string(MigrationErrc code) {
  switch (code) {
    case MigrationErrc::kUnknownVm:
      return "unknown-vm";
    case MigrationErrc::kBadDestination:
      return "bad-destination";
    case MigrationErrc::kSameHypervisor:
      return "same-hypervisor";
    case MigrationErrc::kNoFreeVf:
      return "no-free-vf";
    case MigrationErrc::kDestinationDetached:
      return "destination-detached";
    case MigrationErrc::kStepTimeout:
      return "step-timeout";
    case MigrationErrc::kSwitchUnreachable:
      return "switch-unreachable";
    case MigrationErrc::kInterrupted:
      return "interrupted";
    case MigrationErrc::kNotBooted:
      return "not-booted";
  }
  return "?";
}

class MigrationError : public std::invalid_argument {
 public:
  MigrationError(MigrationErrc code, const std::string& message)
      : std::invalid_argument("migration failed [" +
                              std::string(to_string(code)) + "]: " + message),
        code_(code) {}

  [[nodiscard]] MigrationErrc code() const noexcept { return code_; }

 private:
  MigrationErrc code_;
};

}  // namespace ibvs::core
