// The per-migration transaction state machine.
//
// Algorithm 1 (§V-C) as an abortable, journaled transaction instead of an
// assumed-atomic call:
//
//   kPrepared ──> kDetached ──> kCopied ──> kReconfiguring ──> kAttached
//       │             │            │              │                │
//       └─────────────┴────────────┴──────┬───────┴────────────────┤
//                                         v                        v
//                                   kRolledBack              kCommitted
//
// The vSwitch layer owns the IB-visible phases (address move, LFT updates,
// rollback); the orchestrator owns the wall-clock phases (detach, memory
// copy, attach) plus retry/backoff/re-placement policy. Every transaction
// is backed by a write-ahead record in the SM's ReconfigJournal, so a crash
// at any arrow above is recoverable to exactly one of the two terminal
// states.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/vswitch.hpp"
#include "sm/reconfig_journal.hpp"

namespace ibvs::core {

enum class TxnState : std::uint8_t {
  kPrepared,       ///< validated, journal record opened, nothing sent
  kDetached,       ///< VF detached at the source (orchestrator step 1)
  kCopied,         ///< memory pre-copy done (orchestrator step 2)
  kReconfiguring,  ///< addresses moved and/or LFT updates in flight
  kAttached,       ///< VF attach at the destination initiated
  kCommitted,      ///< bookkeeping final; journal record committed
  kRolledBack,     ///< inverse deltas applied, VF re-attached at source
};

[[nodiscard]] std::string to_string(TxnState state);

/// One in-flight migration. Created by VSwitchFabric::begin_migration and
/// threaded through the phase calls; the struct is the unit the chaos
/// harness kills against and the journal recovers.
struct MigrationTxn {
  std::uint64_t id = 0;  ///< journal record id
  TxnState state = TxnState::kPrepared;
  VmHandle vm;
  std::size_t src_hypervisor = 0;
  std::size_t dst_hypervisor = 0;
  std::size_t src_vf_index = 0;
  std::size_t dst_vf_index = 0;
  Lid vm_lid;
  /// The second LID of the transaction: the destination VF's prepopulated
  /// LID for a plain migration, or the peer VM's LID for a swap.
  Lid swapped_lid;
  Guid vguid;
  /// Destination-swap pair (begin_swap): the transaction moves *two* live
  /// VMs, trading their slots with one fused LFT delta set. src_* then
  /// describes `vm`'s slot and dst_* the peer's.
  bool is_swap = false;
  VmHandle peer_vm;
  Guid peer_vguid;
  MigrationOptions options;
  bool addresses_moved = false;
  bool intra_leaf = false;
  std::size_t minimal_set_size = 0;
  ReconfigStats stats;
  /// Deltas actually applied to the master tables so far, in application
  /// order (includes §VI-C drain writes). Rollback replays their inverses
  /// in reverse, which restores the pre-transaction bytes exactly.
  std::vector<sm::LftDelta> applied;
  std::uint64_t rollback_smps = 0;  ///< LFT SMPs the rollback cost
  double rollback_time_us = 0.0;

  [[nodiscard]] bool terminal() const noexcept {
    return state == TxnState::kCommitted || state == TxnState::kRolledBack;
  }
};

}  // namespace ibvs::core
