#include "core/shared_port.hpp"

#include <algorithm>

#include "util/expect.hpp"

namespace ibvs::core {

SharedPortFabric::SharedPortFabric(
    Fabric& fabric, LidMap& lids,
    std::vector<SharedPortHypervisor> hypervisors)
    : fabric_(fabric), lids_(lids), hypervisors_(std::move(hypervisors)) {
  IBVS_REQUIRE(!hypervisors_.empty(), "at least one hypervisor required");
  resident_.resize(hypervisors_.size());
  for (const auto& hyp : hypervisors_) {
    IBVS_REQUIRE(fabric_.node(hyp.hca).is_ca(),
                 "shared-port hypervisor must be a CA");
  }
}

Lid SharedPortFabric::shared_lid(std::size_t hypervisor) const {
  IBVS_REQUIRE(hypervisor < hypervisors_.size(), "hypervisor out of range");
  return fabric_.node(hypervisors_[hypervisor].hca).lid();
}

std::uint32_t SharedPortFabric::create_vm(std::size_t hypervisor) {
  IBVS_REQUIRE(hypervisor < hypervisors_.size(), "hypervisor out of range");
  IBVS_REQUIRE(resident_[hypervisor].size() <
                   hypervisors_[hypervisor].num_vfs,
               "no free VF on that hypervisor");
  SharedPortVm vm;
  vm.id = next_id_++;
  vm.hypervisor = hypervisor;
  vm.vf_index = resident_[hypervisor].size();
  vm.vguid = fabric_.allocate_guid();
  resident_[hypervisor].push_back(vm.id);
  vms_.push_back(vm);
  return vm.id;
}

const SharedPortVm& SharedPortFabric::vm(std::uint32_t id) const {
  const auto it =
      std::find_if(vms_.begin(), vms_.end(),
                   [&](const SharedPortVm& v) { return v.id == id; });
  IBVS_REQUIRE(it != vms_.end(), "unknown VM");
  return *it;
}

std::size_t SharedPortFabric::vms_on(std::size_t hypervisor) const {
  IBVS_REQUIRE(hypervisor < hypervisors_.size(), "hypervisor out of range");
  return resident_[hypervisor].size();
}

SharedPortMigrationReport SharedPortFabric::migrate_vm(
    std::uint32_t id, std::size_t dst_hypervisor, std::size_t active_peers,
    bool emulate_lid_migration) {
  IBVS_REQUIRE(dst_hypervisor < hypervisors_.size(),
               "hypervisor out of range");
  auto it = std::find_if(vms_.begin(), vms_.end(),
                         [&](const SharedPortVm& v) { return v.id == id; });
  IBVS_REQUIRE(it != vms_.end(), "unknown VM");
  SharedPortVm& vm = *it;
  IBVS_REQUIRE(dst_hypervisor != vm.hypervisor, "already there");
  IBVS_REQUIRE(resident_[dst_hypervisor].size() <
                   hypervisors_[dst_hypervisor].num_vfs,
               "no free VF on the destination");

  SharedPortMigrationReport report;
  report.vm = id;
  report.old_lid = shared_lid(vm.hypervisor);

  auto& src_list = resident_[vm.hypervisor];
  src_list.erase(std::remove(src_list.begin(), src_list.end(), id),
                 src_list.end());

  if (emulate_lid_migration) {
    // §VII-B emulation: OpenSM swaps the LIDs of the source and the
    // destination compute node, so the VM keeps its LID. Every other VM on
    // either node suddenly answers to the wrong LID — hence the testbed's
    // one-VM-per-node rule.
    report.co_resident_vms_broken =
        src_list.size() + resident_[dst_hypervisor].size();
    const Lid src_lid = report.old_lid;
    const Lid dst_lid = shared_lid(dst_hypervisor);
    lids_.move(fabric_, src_lid, hypervisors_[dst_hypervisor].hca, 1);
    lids_.move(fabric_, dst_lid, hypervisors_[vm.hypervisor].hca, 1);
    report.new_lid = src_lid;
    report.lid_changed = false;
  } else {
    // Driver reality: the VM adopts the destination hypervisor's LID; its
    // own address changed, so every active peer's path record is stale.
    report.new_lid = shared_lid(dst_hypervisor);
    report.lid_changed = report.new_lid != report.old_lid;
    report.peers_with_stale_paths = report.lid_changed ? active_peers : 0;
  }

  resident_[dst_hypervisor].push_back(id);
  vm.hypervisor = dst_hypervisor;
  vm.vf_index = resident_[dst_hypervisor].size() - 1;
  return report;
}

}  // namespace ibvs::core
