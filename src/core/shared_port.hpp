// The SR-IOV Shared Port architecture (§IV-A, Fig. 1) — the model actually
// implemented by the IB drivers at the time of the paper, and the baseline
// whose shortcomings motivate the vSwitch work.
//
// One HCA = one port on the subnet: PF and all VFs share a single LID and
// the QP space; VFs get their own GIDs but QP0 is blocked for them (SMPs
// from VFs are discarded), so no SM can run inside a VM. On migration a VM
// cannot keep its LID — it assumes the destination hypervisor's LID — and
// if the LID were migrated along (as the paper's emulation had to do), every
// other VM sharing that LID loses connectivity.
//
// This model is deliberately lightweight: it exists so the examples and
// benches can put numbers on "what breaks" next to the vSwitch runs.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ib/fabric.hpp"
#include "ib/lid_map.hpp"

namespace ibvs::core {

struct SharedPortHypervisor {
  NodeId hca = kInvalidNode;  ///< one CA node; its LID is shared by all VFs
  std::size_t num_vfs = 16;
};

struct SharedPortVm {
  std::uint32_t id = 0;
  std::size_t hypervisor = 0;
  std::size_t vf_index = 0;
  Guid vguid;  ///< per-VF GUID/GID: the only address a VM keeps
};

struct SharedPortMigrationReport {
  std::uint32_t vm = 0;
  Lid old_lid;
  Lid new_lid;
  bool lid_changed = false;
  /// Peers holding cached path records keyed to the old LID must re-query
  /// the SA (the storm that ref. [10] measures).
  std::size_t peers_with_stale_paths = 0;
  /// VMs left on the source hypervisor that lose connectivity if the LID is
  /// emulated to move with the VM (the paper's §VII-B constraint: at most
  /// one VM per node in the emulation).
  std::size_t co_resident_vms_broken = 0;
};

class SharedPortFabric {
 public:
  SharedPortFabric(Fabric& fabric, LidMap& lids,
                   std::vector<SharedPortHypervisor> hypervisors);

  /// QP0 is proxied/blocked for VFs: an SM can never run inside a VM.
  [[nodiscard]] static constexpr bool vm_may_run_sm() noexcept {
    return false;
  }

  /// All VMs on a hypervisor answer to its single LID.
  [[nodiscard]] Lid shared_lid(std::size_t hypervisor) const;

  std::uint32_t create_vm(std::size_t hypervisor);
  [[nodiscard]] const SharedPortVm& vm(std::uint32_t id) const;

  /// Migrates a VM. `emulate_lid_migration` reproduces the paper's testbed
  /// emulation (the LID travels with the VM, breaking co-residents);
  /// otherwise the VM simply adopts the destination's LID, breaking its own
  /// peers' cached records. `active_peers` sizes the re-query storm.
  SharedPortMigrationReport migrate_vm(std::uint32_t id,
                                       std::size_t dst_hypervisor,
                                       std::size_t active_peers,
                                       bool emulate_lid_migration = false);

  [[nodiscard]] std::size_t vms_on(std::size_t hypervisor) const;

 private:
  Fabric& fabric_;
  LidMap& lids_;
  std::vector<SharedPortHypervisor> hypervisors_;
  std::vector<std::vector<std::uint32_t>> resident_;  // VM ids per hyp
  std::vector<SharedPortVm> vms_;
  std::uint32_t next_id_ = 1;
};

}  // namespace ibvs::core
