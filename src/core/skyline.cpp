#include "core/skyline.hpp"

#include <algorithm>

#include "util/expect.hpp"

namespace ibvs::core {

std::vector<routing::SwitchIdx> changed_switches(const EntryDelta& delta) {
  IBVS_REQUIRE(delta.old_entry.size() == delta.new_entry.size(),
               "delta vectors must align");
  std::vector<routing::SwitchIdx> result;
  for (routing::SwitchIdx s = 0; s < delta.old_entry.size(); ++s) {
    if (delta.old_entry[s] != delta.new_entry[s]) result.push_back(s);
  }
  return result;
}

std::vector<routing::SwitchIdx> minimal_update_set(
    const routing::SwitchGraph& graph, const EntryDelta& delta,
    routing::SwitchIdx new_attach_sw, PortNum new_attach_port) {
  const std::size_t s_count = graph.num_switches();
  IBVS_REQUIRE(delta.old_entry.size() == s_count &&
                   delta.new_entry.size() == s_count,
               "delta vectors must cover every switch");

  std::vector<bool> updated(s_count, false);
  std::vector<routing::SwitchIdx> path;

  // Traces from `start` over the hybrid table; returns true when delivered
  // to the new attachment. On failure `path` holds the visited switches.
  const auto trace = [&](routing::SwitchIdx start) {
    path.clear();
    routing::SwitchIdx x = start;
    std::size_t guard = 0;
    while (guard++ <= s_count) {
      path.push_back(x);
      const PortNum port =
          updated[x] ? delta.new_entry[x] : delta.old_entry[x];
      if (x == new_attach_sw && port == new_attach_port) return true;
      const std::uint32_t e = graph.edge_of(x, port);
      if (port == kDropPort || e == routing::SwitchGraph::kNoEdge) {
        return false;  // dropped or delivered out of a host port: wrong spot
      }
      x = graph.edges[e].to;
    }
    return false;  // loop
  };

  // Starts from which even the fully-new routing does not deliver (e.g. a
  // switch severed from the destination on a degraded fabric, whose entry
  // is legitimately kDropPort) are outside what any update set can fix;
  // the fixpoint must not demand delivery from them.
  std::vector<bool> delivers_when_new(s_count, false);
  {
    const auto trace_new = [&](routing::SwitchIdx start) {
      routing::SwitchIdx x = start;
      std::size_t guard = 0;
      while (guard++ <= s_count) {
        const PortNum port = delta.new_entry[x];
        if (x == new_attach_sw && port == new_attach_port) return true;
        const std::uint32_t e = graph.edge_of(x, port);
        if (port == kDropPort || e == routing::SwitchGraph::kNoEdge) {
          return false;
        }
        x = graph.edges[e].to;
      }
      return false;
    };
    for (routing::SwitchIdx s = 0; s < s_count; ++s) {
      delivers_when_new[s] = trace_new(s);
    }
    // The attachment switch must deliver under the new entries — if even
    // it cannot, the delta is bogus, not merely degraded.
    IBVS_ENSURE(delivers_when_new[new_attach_sw],
                "route cannot be repaired: new entries do not deliver");
  }

  // Fixpoint: each round repairs at least one switch, so it terminates in at
  // most |changed| rounds.
  for (;;) {
    bool all_ok = true;
    bool repaired = false;
    for (routing::SwitchIdx start = 0; start < s_count && !repaired;
         ++start) {
      if (!delivers_when_new[start]) continue;
      if (trace(start)) continue;
      all_ok = false;
      // Repair as close to the failure point as possible (the last switch
      // on the path whose entry changes): repairs near the destination fix
      // whole families of paths at once — an intra-leaf move converges to
      // just the leaf.
      for (auto it = path.rbegin(); it != path.rend(); ++it) {
        if (!updated[*it] && delta.old_entry[*it] != delta.new_entry[*it]) {
          updated[*it] = true;
          repaired = true;
          break;
        }
      }
      IBVS_ENSURE(repaired,
                  "route cannot be repaired: new entries do not deliver");
    }
    if (all_ok) break;
  }

  std::vector<routing::SwitchIdx> result;
  for (routing::SwitchIdx s = 0; s < s_count; ++s) {
    if (updated[s]) result.push_back(s);
  }
  return result;
}

}  // namespace ibvs::core
