// Limited-switch reconfiguration analysis (§VI-D).
//
// The deterministic reconfiguration method visits all n switches and updates
// the n' whose entries change — preserving the initial balancing, but
// sometimes updating more switches than strictly required for connectivity.
// The special case the paper highlights: a migration *within one leaf
// switch* only ever needs that leaf updated, whatever the topology.
//
// minimal_update_set() computes a connectivity-sufficient repair set the
// skyline way: starting from nothing, repeatedly trace every switch's route
// for the moved LID over a hybrid table (updated switches use the new entry,
// the rest keep the old) and pull in the first not-yet-updated switch with a
// differing entry along each failing path. The fixpoint is the set of
// switches a minimum reconfiguration must touch (plus possibly a few on
// shared path prefixes), and is what bounds how many migrations can run
// concurrently without interfering.
#pragma once

#include <vector>

#include "routing/graph.hpp"

namespace ibvs::core {

/// Per-switch old/new forwarding entry for one LID.
struct EntryDelta {
  std::vector<PortNum> old_entry;  ///< indexed by dense switch index
  std::vector<PortNum> new_entry;
};

/// Switches whose entries differ (the deterministic n' set).
std::vector<routing::SwitchIdx> changed_switches(const EntryDelta& delta);

/// Connectivity-sufficient repair set (see file comment). `new_attach` is
/// where the LID lives after the move: (switch, delivery port).
std::vector<routing::SwitchIdx> minimal_update_set(
    const routing::SwitchGraph& graph, const EntryDelta& delta,
    routing::SwitchIdx new_attach_sw, PortNum new_attach_port);

}  // namespace ibvs::core
