#include "core/virtualizer.hpp"

#include <string>

#include "util/expect.hpp"

namespace ibvs::core {

VirtualHca attach_hypervisor(Fabric& fabric, const topology::HostSlot& slot,
                             std::size_t num_vfs, std::string_view name) {
  IBVS_REQUIRE(num_vfs >= 1 && num_vfs <= 126,
               "SR-IOV VF count must be in [1, 126]");
  VirtualHca hca;
  hca.leaf = slot.leaf;
  hca.leaf_port = slot.port;

  const std::string base(name);
  hca.vswitch = fabric.add_switch(base + "/vsw", 2 + num_vfs,
                                  SwitchFlavor::kVSwitch);
  fabric.connect(hca.vswitch, 1, slot.leaf, slot.port);

  hca.pf = fabric.add_ca(base + "/pf", 1, CaRole::kPf);
  fabric.connect(hca.pf, 1, hca.vswitch, 2);

  hca.vfs.reserve(num_vfs);
  for (std::size_t i = 0; i < num_vfs; ++i) {
    const NodeId vf =
        fabric.add_ca(base + "/vf" + std::to_string(i), 1, CaRole::kVf);
    fabric.connect(vf, 1, hca.vswitch, static_cast<PortNum>(3 + i));
    hca.vfs.push_back(vf);
  }
  return hca;
}

std::vector<VirtualHca> attach_hypervisors(
    Fabric& fabric, const std::vector<topology::HostSlot>& slots,
    std::size_t num_vfs, std::size_t count) {
  const std::size_t n = count == 0 ? slots.size() : std::min(count, slots.size());
  std::vector<VirtualHca> result;
  result.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    result.push_back(attach_hypervisor(fabric, slots[i], num_vfs,
                                       "hyp-" + std::to_string(i)));
  }
  return result;
}

}  // namespace ibvs::core
