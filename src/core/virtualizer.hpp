// Turning host slots into SR-IOV vSwitch hypervisors (§IV-B, Fig. 2).
//
// Under the vSwitch model the HCA presents itself to the subnet as a small
// switch: the hypervisor drives the PF, the VMs drive the VFs, and every
// function is a *complete* vHCA with its own address set and QP space. Here
// that becomes: one vSwitch node, one PF endpoint, `num_vfs` VF endpoints,
// all cabled to the vSwitch, whose remaining port is the uplink into the
// physical leaf switch.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "ib/fabric.hpp"
#include "topology/fat_tree.hpp"

namespace ibvs::core {

/// One virtualized hypervisor as seen by the subnet.
struct VirtualHca {
  NodeId vswitch = kInvalidNode;
  NodeId pf = kInvalidNode;
  std::vector<NodeId> vfs;
  NodeId leaf = kInvalidNode;  ///< physical switch the uplink lands on
  PortNum leaf_port = 0;       ///< ...and the port there
};

/// Default VF count: ConnectX-3 enables 16 by default (up to 126), per the
/// paper's sizing example (17 LIDs per hypervisor -> 2891 hypervisors max).
inline constexpr std::size_t kDefaultVfs = 16;

/// Creates the vSwitch + PF + VFs for one hypervisor and cables the vSwitch
/// uplink into `slot`. Port 1 of the vSwitch is the uplink, port 2 the PF,
/// ports 3..2+num_vfs the VFs.
VirtualHca attach_hypervisor(Fabric& fabric, const topology::HostSlot& slot,
                             std::size_t num_vfs, std::string_view name);

/// Convenience: virtualizes the first `count` host slots (all when 0).
std::vector<VirtualHca> attach_hypervisors(
    Fabric& fabric, const std::vector<topology::HostSlot>& slots,
    std::size_t num_vfs = kDefaultVfs, std::size_t count = 0);

}  // namespace ibvs::core
