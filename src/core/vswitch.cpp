#include "core/vswitch.hpp"

#include <algorithm>

#include "core/migration_txn.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "util/expect.hpp"
#include "util/log.hpp"

namespace ibvs::core {

namespace {

/// Reconfiguration counters (n' vs n is the paper's headline statistic).
struct VSwitchMetrics {
  telemetry::Counter& reconfig_swap;
  telemetry::Counter& reconfig_copy;
  telemetry::Counter& switches_updated;
  telemetry::Counter& switches_skipped;
  telemetry::Counter& drain_passes;
  telemetry::Counter& migrations_committed;
  telemetry::Counter& migrations_rolled_back;
  telemetry::Histogram& rollback_smps;

  static VSwitchMetrics& get() {
    auto& reg = telemetry::Registry::global();
    static VSwitchMetrics m{
        reg.counter("ibvs_vswitch_reconfig_total", {{"kind", "swap"}},
                    "Migration reconfigurations by LFT-update kind"),
        reg.counter("ibvs_vswitch_reconfig_total", {{"kind", "copy"}}),
        reg.counter("ibvs_vswitch_reconfig_switches_updated_total", {},
                    "Switches whose LFTs a reconfiguration rewrote (n')"),
        reg.counter("ibvs_vswitch_reconfig_switches_skipped_total", {},
                    "Switches a reconfiguration left untouched (n - n')"),
        reg.counter("ibvs_vswitch_drain_passes_total", {},
                    "Port-255 drain passes before reconfiguration (§VI-C)"),
        reg.counter("ibvs_migrations_total", {{"outcome", "committed"}},
                    "Migration transactions by terminal outcome"),
        reg.counter("ibvs_migrations_total", {{"outcome", "rolled_back"}}),
        reg.histogram("ibvs_migration_rollback_smps", {},
                      telemetry::HistogramOptions{.min_bound = 1.0,
                                                  .num_buckets = 12},
                      "SMPs spent undoing an aborted migration"),
    };
    return m;
  }
};

}  // namespace

std::string to_string(LidScheme scheme) {
  return scheme == LidScheme::kPrepopulated ? "prepopulated-lids"
                                            : "dynamic-lid-assignment";
}

std::string to_string(TxnState state) {
  switch (state) {
    case TxnState::kPrepared:
      return "prepared";
    case TxnState::kDetached:
      return "detached";
    case TxnState::kCopied:
      return "copied";
    case TxnState::kReconfiguring:
      return "reconfiguring";
    case TxnState::kAttached:
      return "attached";
    case TxnState::kCommitted:
      return "committed";
    case TxnState::kRolledBack:
      return "rolled-back";
  }
  return "?";
}

VSwitchFabric::VSwitchFabric(sm::SubnetManager& sm,
                             std::vector<VirtualHca> hypervisors,
                             LidScheme scheme)
    : sm_(&sm),
      fabric_(&sm.fabric()),
      hypervisors_(std::move(hypervisors)),
      scheme_(scheme) {
  IBVS_REQUIRE(!hypervisors_.empty(), "at least one hypervisor required");
  slots_.resize(hypervisors_.size());
  free_slots_.resize(hypervisors_.size());
  for (std::size_t h = 0; h < hypervisors_.size(); ++h) {
    slots_[h].resize(hypervisors_[h].vfs.size());
    for (std::size_t i = 0; i < slots_[h].size(); ++i) {
      free_slots_[h].insert(i);
    }
  }
}

void VSwitchFabric::mark_slot_used(std::size_t hypervisor, std::size_t vf,
                                   std::uint32_t vm_id) {
  slots_[hypervisor][vf].vm = vm_id;
  free_slots_[hypervisor].erase(vf);
}

void VSwitchFabric::mark_slot_free(std::size_t hypervisor, std::size_t vf) {
  slots_[hypervisor][vf].vm = 0;
  free_slots_[hypervisor].insert(vf);
}

sm::SweepReport VSwitchFabric::boot() {
  IBVS_REQUIRE(!booted_, "already booted");
  auto span = telemetry::Tracer::global().span(
      "vswitch.boot", {{"scheme", to_string(scheme_)},
                       {"hypervisors", std::to_string(hypervisors_.size())}});
  sm::SweepReport report;
  report.discovery = sm_->discover();
  report.lids_assigned = sm_->assign_lids();
  if (scheme_ == LidScheme::kPrepopulated) {
    // §V-A: initialize *all* VFs with LIDs, used or not. This is what blows
    // up the initial path computation — and what makes later migrations a
    // pure swap.
    for (const auto& hyp : hypervisors_) {
      for (NodeId vf : hyp.vfs) {
        sm_->assign_lid(vf, 1);
        ++report.lids_assigned;
      }
    }
  }
  sm_->compute_routes();
  report.path_computation_seconds = sm_->routing_result().compute_seconds;
  report.distribution = sm_->distribute_lfts();
  booted_ = true;
  IBVS_INFO("vswitch") << "booted " << to_string(scheme_) << ": "
                       << report.discovery.nodes_found << " nodes, "
                       << report.lids_assigned << " LIDs, "
                       << report.distribution.smps << " LFT SMPs";
  return report;
}

Lid VSwitchFabric::pf_lid(std::size_t hypervisor) const {
  return sm_->fabric().node(hypervisors_[hypervisor].pf).lid();
}

std::optional<std::size_t> VSwitchFabric::free_vf_on(
    std::size_t hypervisor) const {
  IBVS_REQUIRE(hypervisor < hypervisors_.size(), "hypervisor out of range");
  const auto& free = free_slots_[hypervisor];
  if (free.empty()) return std::nullopt;
  return *free.begin();
}

std::size_t VSwitchFabric::free_vf_count(std::size_t hypervisor) const {
  IBVS_REQUIRE(hypervisor < hypervisors_.size(), "hypervisor out of range");
  return free_slots_[hypervisor].size();
}

std::optional<std::size_t> VSwitchFabric::find_free_hypervisor(
    std::optional<std::size_t> exclude) const {
  for (std::size_t h = 0; h < hypervisors_.size(); ++h) {
    if (exclude && *exclude == h) continue;
    if (free_vf_on(h)) return h;
  }
  return std::nullopt;
}

CreateReport VSwitchFabric::create_vm(std::optional<std::size_t> hypervisor) {
  IBVS_REQUIRE(booted_, "boot() first");
  std::size_t h;
  if (hypervisor) {
    h = *hypervisor;
    IBVS_REQUIRE(h < hypervisors_.size(), "hypervisor out of range");
  } else {
    const auto found = find_free_hypervisor();
    IBVS_REQUIRE(found.has_value(), "no free VF in the subnet");
    h = *found;
  }
  const auto vf_idx = free_vf_on(h);
  IBVS_REQUIRE(vf_idx.has_value(), "no free VF on that hypervisor");

  Fabric& fabric = sm_->fabric();
  auto& transport = sm_->transport();
  const VirtualHca& hyp = hypervisors_[h];
  const NodeId vf = hyp.vfs[*vf_idx];

  auto span = telemetry::Tracer::global().span(
      "vswitch.create_vm", {{"scheme", to_string(scheme_)}});
  CreateReport report;
  Vm vm;
  vm.id = next_vm_id_++;
  vm.hypervisor = h;
  vm.vf_index = *vf_idx;
  vm.vguid = fabric.allocate_guid();
  fabric.node(vf).alias_guid = vm.vguid;
  transport.send_guid_info(hyp.pf, static_cast<PortNum>(*vf_idx), vm.vguid);
  ++report.hypervisor_smps;

  if (scheme_ == LidScheme::kPrepopulated) {
    // The VM inherits the LID already sitting on the VF; paths exist, no
    // reconfiguration of any kind (§V-A).
    vm.lid = fabric.node(vf).lid();
    IBVS_ENSURE(vm.lid.valid(), "prepopulated VF without a LID");
  } else {
    // §V-B: next free LID; no path computation — copy the PF's forwarding
    // entry into every physical switch, one SMP each.
    vm.lid = sm_->lids().assign_next(fabric, vf, 1);
    transport.send_vf_lid_assign(hyp.pf, static_cast<PortNum>(*vf_idx),
                                 vm.lid);
    ++report.hypervisor_smps;

    const Lid pf = pf_lid(h);
    const auto& routing = sm_->routing_result();
    transport.begin_batch();
    for (routing::SwitchIdx s = 0; s < routing.graph.num_switches(); ++s) {
      const PortNum pf_port = routing.lfts[s].get(pf);
      if (routing.lfts[s].get(vm.lid) == pf_port) continue;
      sm_->update_master_entry(s, vm.lid, pf_port);
      report.lft_smps += sm_->push_dirty_blocks(s, SmpRouting::kLidRouted);
    }
    report.time_us = transport.end_batch();
    sm_->bump_generation();
  }
  sm_->refresh_targets();

  mark_slot_used(h, *vf_idx, vm.id);
  report.vm = VmHandle{vm.id};
  report.lid = vm.lid;
  vms_.emplace(vm.id, vm);
  span.set_attr("lft_smps", std::to_string(report.lft_smps));
  return report;
}

void VSwitchFabric::destroy_vm(VmHandle handle) {
  Vm& vm = vm_mutable(handle);
  Fabric& fabric = sm_->fabric();
  const VirtualHca& hyp = hypervisors_[vm.hypervisor];
  const NodeId vf = hyp.vfs[vm.vf_index];
  fabric.node(vf).alias_guid = kInvalidGuid;
  if (scheme_ == LidScheme::kDynamic) {
    // Release the LID; stale LFT entries are left behind deliberately (they
    // are overwritten when the LID is reused — scrubbing would cost one SMP
    // per switch for no functional gain).
    sm_->lids().release(fabric, vm.lid);
    sm_->transport().send_vf_lid_assign(hyp.pf,
                                       static_cast<PortNum>(vm.vf_index),
                                       kInvalidLid);
    sm_->refresh_targets();
  }
  mark_slot_free(vm.hypervisor, vm.vf_index);
  vms_.erase(handle.id);
}

MigrationTxn VSwitchFabric::begin_migration(VmHandle handle,
                                            std::size_t dst_hypervisor,
                                            const MigrationOptions& options) {
  if (!booted_) {
    throw MigrationError(MigrationErrc::kNotBooted, "boot() first");
  }
  const auto it = vms_.find(handle.id);
  if (it == vms_.end()) {
    throw MigrationError(MigrationErrc::kUnknownVm,
                         "vm " + std::to_string(handle.id));
  }
  Vm& vm = it->second;
  if (dst_hypervisor >= hypervisors_.size()) {
    throw MigrationError(MigrationErrc::kBadDestination,
                         "hypervisor " + std::to_string(dst_hypervisor) +
                             " out of range (have " +
                             std::to_string(hypervisors_.size()) + ")");
  }
  if (dst_hypervisor == vm.hypervisor) {
    throw MigrationError(MigrationErrc::kSameHypervisor,
                         "destination equals source hypervisor");
  }
  const auto dst_vf_idx = free_vf_on(dst_hypervisor);
  if (!dst_vf_idx) {
    throw MigrationError(
        MigrationErrc::kNoFreeVf,
        "no free VF on hypervisor " + std::to_string(dst_hypervisor));
  }

  const VirtualHca& src = hypervisors_[vm.hypervisor];
  const VirtualHca& dst = hypervisors_[dst_hypervisor];
  MigrationTxn txn;
  txn.vm = handle;
  txn.src_hypervisor = vm.hypervisor;
  txn.dst_hypervisor = dst_hypervisor;
  txn.src_vf_index = vm.vf_index;
  txn.dst_vf_index = *dst_vf_idx;
  txn.vm_lid = vm.lid;
  txn.vguid = vm.vguid;
  txn.options = options;
  txn.intra_leaf = src.leaf == dst.leaf;
  if (scheme_ == LidScheme::kPrepopulated) {
    txn.swapped_lid = sm_->fabric().node(dst.vfs[*dst_vf_idx]).lid();
    IBVS_ENSURE(txn.swapped_lid.valid(), "destination VF lost its LID");
  }

  // Open the write-ahead record: durable identities for the SM (a new
  // master replays by NodeId/Lid), orchestrator tags for reconciliation.
  sm::MigrationRecord record;
  record.vm_id = vm.id;
  record.vm_lid = vm.lid;
  record.swapped_lid = txn.swapped_lid;
  record.vguid = vm.vguid;
  record.src_vf = src.vfs[vm.vf_index];
  record.dst_vf = dst.vfs[*dst_vf_idx];
  record.src_pf = src.pf;
  record.dst_pf = dst.pf;
  record.src_vf_slot = static_cast<PortNum>(vm.vf_index);
  record.dst_vf_slot = static_cast<PortNum>(*dst_vf_idx);
  record.src_hypervisor = vm.hypervisor;
  record.dst_hypervisor = dst_hypervisor;
  record.src_vf_index = vm.vf_index;
  record.dst_vf_index = *dst_vf_idx;
  txn.id = journal_.begin(std::move(record));
  return txn;
}

MigrationTxn VSwitchFabric::begin_swap(VmHandle vm_a, VmHandle vm_b,
                                       const MigrationOptions& options) {
  if (!booted_) {
    throw MigrationError(MigrationErrc::kNotBooted, "boot() first");
  }
  const auto it_a = vms_.find(vm_a.id);
  if (it_a == vms_.end()) {
    throw MigrationError(MigrationErrc::kUnknownVm,
                         "vm " + std::to_string(vm_a.id));
  }
  const auto it_b = vms_.find(vm_b.id);
  if (it_b == vms_.end()) {
    throw MigrationError(MigrationErrc::kUnknownVm,
                         "vm " + std::to_string(vm_b.id));
  }
  const Vm& a = it_a->second;
  const Vm& b = it_b->second;
  if (a.hypervisor == b.hypervisor) {
    throw MigrationError(MigrationErrc::kSameHypervisor,
                         "swap peers share hypervisor " +
                             std::to_string(a.hypervisor));
  }

  const VirtualHca& src = hypervisors_[a.hypervisor];
  const VirtualHca& dst = hypervisors_[b.hypervisor];
  MigrationTxn txn;
  txn.vm = vm_a;
  txn.is_swap = true;
  txn.peer_vm = vm_b;
  txn.peer_vguid = b.vguid;
  txn.src_hypervisor = a.hypervisor;
  txn.dst_hypervisor = b.hypervisor;
  txn.src_vf_index = a.vf_index;
  txn.dst_vf_index = b.vf_index;
  txn.vm_lid = a.lid;
  txn.swapped_lid = b.lid;  // the peer's LID swaps back, both schemes
  txn.vguid = a.vguid;
  txn.options = options;
  txn.intra_leaf = src.leaf == dst.leaf;

  sm::MigrationRecord record;
  record.vm_id = a.id;
  record.vm_lid = a.lid;
  record.swapped_lid = b.lid;
  record.vguid = a.vguid;
  record.swap_pair = true;
  record.peer_vm_id = b.id;
  record.peer_vguid = b.vguid;
  record.src_vf = src.vfs[a.vf_index];
  record.dst_vf = dst.vfs[b.vf_index];
  record.src_pf = src.pf;
  record.dst_pf = dst.pf;
  record.src_vf_slot = static_cast<PortNum>(a.vf_index);
  record.dst_vf_slot = static_cast<PortNum>(b.vf_index);
  record.src_hypervisor = a.hypervisor;
  record.dst_hypervisor = b.hypervisor;
  record.src_vf_index = a.vf_index;
  record.dst_vf_index = b.vf_index;
  txn.id = journal_.begin(std::move(record));
  return txn;
}

void VSwitchFabric::txn_move_addresses(MigrationTxn& txn) {
  IBVS_REQUIRE(!txn.terminal() && !txn.addresses_moved,
               "addresses move at most once, before a terminal state");
  Fabric& fabric = sm_->fabric();
  auto& transport = sm_->transport();
  const VirtualHca& src = hypervisors_[txn.src_hypervisor];
  const VirtualHca& dst = hypervisors_[txn.dst_hypervisor];
  if (!fabric.physical_attachment(dst.pf)) {
    // Nothing sent yet; the caller rolls the (empty) transaction back.
    throw MigrationError(MigrationErrc::kDestinationDetached,
                         "hypervisor " + std::to_string(txn.dst_hypervisor) +
                             " is physically detached");
  }
  if (txn.is_swap && !fabric.physical_attachment(src.pf)) {
    // A swap programs *both* PFs; the source losing attachment is just as
    // fatal as the destination.
    throw MigrationError(MigrationErrc::kDestinationDetached,
                         "hypervisor " + std::to_string(txn.src_hypervisor) +
                             " is physically detached");
  }
  const NodeId vf_src = src.vfs[txn.src_vf_index];
  const NodeId vf_dst = dst.vfs[txn.dst_vf_index];

  // Write-ahead: the journal learns the addresses are moving before the
  // first SMP leaves the SM.
  journal_.record_addresses_moved(txn.id);

  // ---- Step (a): migrate the IB addresses (§V-C a). One SMP per
  // participating hypervisor for the LID, one per vGUID landing. ----
  if (txn.is_swap) {
    // Both VFs stay populated: each side takes the peer's LID and vGUID.
    // This is why a swap needs no free VF anywhere.
    transport.send_vf_lid_assign(src.pf,
                                 static_cast<PortNum>(txn.src_vf_index),
                                 txn.swapped_lid, txn.options.smp_routing);
    transport.send_vf_lid_assign(dst.pf,
                                 static_cast<PortNum>(txn.dst_vf_index),
                                 txn.vm_lid, txn.options.smp_routing);
    txn.stats.hypervisor_lid_smps = 2;
    fabric.node(vf_src).alias_guid = txn.peer_vguid;
    fabric.node(vf_dst).alias_guid = txn.vguid;
    transport.send_guid_info(dst.pf, static_cast<PortNum>(txn.dst_vf_index),
                             txn.vguid, txn.options.smp_routing);
    transport.send_guid_info(src.pf, static_cast<PortNum>(txn.src_vf_index),
                             txn.peer_vguid, txn.options.smp_routing);
    txn.stats.guid_smps = 2;
  } else {
    transport.send_vf_lid_assign(src.pf,
                                 static_cast<PortNum>(txn.src_vf_index),
                                 kInvalidLid, txn.options.smp_routing);
    transport.send_vf_lid_assign(dst.pf,
                                 static_cast<PortNum>(txn.dst_vf_index),
                                 txn.vm_lid, txn.options.smp_routing);
    txn.stats.hypervisor_lid_smps = 2;
    fabric.node(vf_src).alias_guid = kInvalidGuid;
    fabric.node(vf_dst).alias_guid = txn.vguid;
    transport.send_guid_info(dst.pf, static_cast<PortNum>(txn.dst_vf_index),
                             txn.vguid, txn.options.smp_routing);
    txn.stats.guid_smps = 1;
  }

  if (txn.swapped_lid.valid()) {
    // Swap the two LIDs' owners; the VM keeps vm_lid at the destination,
    // the second LID (destination VF's or the peer VM's) moves to the
    // vacated source VF.
    sm_->lids().move(fabric, txn.vm_lid, vf_dst, 1);
    sm_->lids().move(fabric, txn.swapped_lid, vf_src, 1);
  } else {
    sm_->lids().move(fabric, txn.vm_lid, vf_dst, 1);
  }
  sm_->refresh_targets();
  txn.addresses_moved = true;
  txn.state = TxnState::kReconfiguring;
}

void VSwitchFabric::txn_apply_lfts(MigrationTxn& txn,
                                   const ApplyOptions& apply) {
  IBVS_REQUIRE(txn.state == TxnState::kReconfiguring && txn.addresses_moved,
               "move the addresses before applying LFTs");
  Fabric& fabric = sm_->fabric();
  auto& transport = sm_->transport();
  const Lid vm_lid = txn.vm_lid;
  const Lid swapped_lid = txn.swapped_lid;

  // ---- Step (b): update the LFTs (§V-C b). ----
  const auto& routing = sm_->routing_result();
  const std::size_t s_count = routing.graph.num_switches();
  txn.stats.switches_total = s_count;

  // Plan the new entries. Two LIDs participate whenever swapped_lid is
  // valid: a prepopulated migration (the destination VF's LID swaps back)
  // or a destination swap in either scheme (the peer VM's LID). The fused
  // delta set lets each switch push its dirty blocks once for both LIDs —
  // 1 SMP when they share a 64-entry block — which is the entire SMP
  // advantage of a swap over two copies.
  const bool use_swap = swapped_lid.valid();
  last_delta_ = EntryDelta{};
  last_delta_.old_entry.resize(s_count);
  last_delta_.new_entry.resize(s_count);
  EntryDelta swap_delta;  // for the swapped LID
  if (use_swap) {
    swap_delta.old_entry.resize(s_count);
    swap_delta.new_entry.resize(s_count);
  }
  const Lid dst_pf = pf_lid(txn.dst_hypervisor);
  for (routing::SwitchIdx s = 0; s < s_count; ++s) {
    const PortNum p_vm = routing.lfts[s].get(vm_lid);
    last_delta_.old_entry[s] = p_vm;
    if (use_swap) {
      // Swap: the VM LID takes the second LID's path and vice versa,
      // preserving the balancing of the initial routing.
      const PortNum p_vf = routing.lfts[s].get(swapped_lid);
      last_delta_.new_entry[s] = p_vf;
      swap_delta.old_entry[s] = p_vf;
      swap_delta.new_entry[s] = p_vm;
    } else {
      // Copy: the VM LID follows the destination hypervisor's PF.
      last_delta_.new_entry[s] = routing.lfts[s].get(dst_pf);
    }
  }

  // The §VI-D minimal (skyline) sets, always computed for reporting. Each
  // LID gets its *own* set: a minimal set is a fixpoint of "updated
  // switches use new entries, the rest keep old ones" for that LID —
  // applying one LID's new entries outside its own set would create
  // old/new hybrids the fixpoint never validated (and can loop).
  const auto vm_attach = sm_->lids().attachment(fabric, vm_lid);
  IBVS_ENSURE(vm_attach.has_value(), "migrated VM is not attached");
  const std::vector<routing::SwitchIdx> minimal_vm = minimal_update_set(
      routing.graph, last_delta_, routing.graph.dense(vm_attach->first),
      vm_attach->second);
  std::vector<routing::SwitchIdx> minimal_vf;
  if (use_swap) {
    const auto vf_attach = sm_->lids().attachment(fabric, swapped_lid);
    IBVS_ENSURE(vf_attach.has_value(), "swapped VF LID is not attached");
    minimal_vf = minimal_update_set(
        routing.graph, swap_delta, routing.graph.dense(vf_attach->first),
        vf_attach->second);
  }
  std::vector<routing::SwitchIdx> minimal_union;
  std::set_union(minimal_vm.begin(), minimal_vm.end(), minimal_vf.begin(),
                 minimal_vf.end(), std::back_inserter(minimal_union));
  txn.minimal_set_size = minimal_union.size();

  // Select the per-LID update sets.
  std::vector<routing::SwitchIdx> vm_set;
  std::vector<routing::SwitchIdx> vf_set;
  if (txn.options.mode == ReconfigMode::kMinimal) {
    vm_set = minimal_vm;
    vf_set = minimal_vf;
  } else {
    // Algorithm 1: everywhere the entries change. For the swap both LIDs
    // change on exactly the same switches (entries differ symmetrically).
    for (routing::SwitchIdx s = 0; s < s_count; ++s) {
      if (last_delta_.old_entry[s] != last_delta_.new_entry[s]) {
        vm_set.push_back(s);
      }
    }
    if (use_swap) vf_set = vm_set;
  }
  std::vector<routing::SwitchIdx> update_set;
  std::set_union(vm_set.begin(), vm_set.end(), vf_set.begin(), vf_set.end(),
                 std::back_inserter(update_set));
  std::vector<bool> in_vm_set(s_count, false);
  std::vector<bool> in_vf_set(s_count, false);
  for (routing::SwitchIdx s : vm_set) in_vm_set[s] = true;
  for (routing::SwitchIdx s : vf_set) in_vf_set[s] = true;

  // Write-ahead: the full planned delta set (both LIDs, logical old -> new,
  // keyed by durable NodeId) reaches the journal before the first drain or
  // swap/copy SMP goes out.
  std::vector<sm::LftDelta> planned;
  planned.reserve(update_set.size() * 2);
  for (routing::SwitchIdx s : update_set) {
    const NodeId sw = routing.graph.switches[s];
    if (in_vm_set[s]) {
      planned.push_back(
          {sw, vm_lid, last_delta_.old_entry[s], last_delta_.new_entry[s]});
    }
    if (in_vf_set[s]) {
      planned.push_back(
          {sw, swapped_lid, swap_delta.old_entry[s], swap_delta.new_entry[s]});
    }
  }
  journal_.record_deltas(txn.id, std::move(planned));

  // Optional drain pass (§VI-C): drop traffic for the VM LID on every
  // switch about to change, one SMP each, before the real update.
  if (txn.options.drain_first && !vm_set.empty()) {
    VSwitchMetrics::get().drain_passes.inc();
    transport.begin_batch();
    for (routing::SwitchIdx s : vm_set) {
      if (apply.require_reachable &&
          !transport.hops_to(routing.graph.switches[s])) {
        txn.stats.drain_time_us += transport.end_batch();
        throw MigrationError(MigrationErrc::kSwitchUnreachable,
                             fabric.node(routing.graph.switches[s]).name +
                                 " unreachable during the drain pass");
      }
      txn.applied.push_back({routing.graph.switches[s], vm_lid,
                             routing.lfts[s].get(vm_lid), kDropPort});
      sm_->update_master_entry(s, vm_lid, kDropPort);
      txn.stats.drain_smps +=
          sm_->push_dirty_blocks(s, txn.options.smp_routing);
      if (txn.stats.drain_smps + txn.stats.lft_smps >=
          apply.abort_after_smps) {
        txn.stats.drain_time_us += transport.end_batch();
        throw MigrationError(MigrationErrc::kInterrupted,
                             "reconfiguration batch cut short mid-drain");
      }
    }
    txn.stats.drain_time_us += transport.end_batch();
  }

  // The real update: 1 SMP per touched block — for a swap that is 1 when
  // both LIDs share a 64-LID block, else 2 (Fig. 5); for a copy always 1.
  // txn.applied captures the entry value actually in place immediately
  // before each write (kDropPort on drained switches), so rollback can
  // restore the exact prior bytes by replaying inverses in reverse.
  transport.begin_batch();
  for (routing::SwitchIdx s : update_set) {
    if (apply.require_reachable &&
        !transport.hops_to(routing.graph.switches[s])) {
      txn.stats.lft_time_us += transport.end_batch();
      throw MigrationError(MigrationErrc::kSwitchUnreachable,
                           fabric.node(routing.graph.switches[s]).name +
                               " unreachable during reconfiguration");
    }
    if (in_vm_set[s]) {
      txn.applied.push_back({routing.graph.switches[s], vm_lid,
                             routing.lfts[s].get(vm_lid),
                             last_delta_.new_entry[s]});
      sm_->update_master_entry(s, vm_lid, last_delta_.new_entry[s]);
    }
    if (in_vf_set[s]) {
      txn.applied.push_back({routing.graph.switches[s], swapped_lid,
                             routing.lfts[s].get(swapped_lid),
                             swap_delta.new_entry[s]});
      sm_->update_master_entry(s, swapped_lid, swap_delta.new_entry[s]);
    }
    txn.stats.lft_smps += sm_->push_dirty_blocks(s, txn.options.smp_routing);
    if (txn.stats.drain_smps + txn.stats.lft_smps >= apply.abort_after_smps) {
      txn.stats.lft_time_us += transport.end_batch();
      throw MigrationError(MigrationErrc::kInterrupted,
                           "reconfiguration batch cut short mid-update");
    }
  }
  txn.stats.lft_time_us += transport.end_batch();
  txn.stats.switches_updated = update_set.size();
  sm_->bump_generation();

  auto& metrics = VSwitchMetrics::get();
  (use_swap ? metrics.reconfig_swap : metrics.reconfig_copy).inc();
  metrics.switches_updated.inc(txn.stats.switches_updated);
  metrics.switches_skipped.inc(txn.stats.switches_total -
                               txn.stats.switches_updated);
}

void VSwitchFabric::txn_rollback(MigrationTxn& txn) {
  IBVS_REQUIRE(!txn.terminal(), "transaction already terminal");
  Fabric& fabric = sm_->fabric();
  auto& transport = sm_->transport();
  const auto& routing = sm_->routing_result();

  // Inverse LFT deltas, newest first: undoing in reverse restores the
  // pre-transaction bytes exactly, drain writes included.
  if (!txn.applied.empty()) {
    std::vector<routing::SwitchIdx> touched;
    for (auto it = txn.applied.rbegin(); it != txn.applied.rend(); ++it) {
      const routing::SwitchIdx s = routing.graph.dense(it->switch_node);
      if (s == routing::kNoSwitch) continue;
      sm_->update_master_entry(s, it->lid, it->old_port);
      if (std::find(touched.begin(), touched.end(), s) == touched.end()) {
        touched.push_back(s);
      }
    }
    transport.begin_batch();
    for (routing::SwitchIdx s : touched) {
      txn.rollback_smps += sm_->push_dirty_blocks(s, txn.options.smp_routing);
    }
    txn.rollback_time_us += transport.end_batch();
  }

  // Re-attach the VF at the source: reverse of step (a).
  if (txn.addresses_moved) {
    const VirtualHca& src = hypervisors_[txn.src_hypervisor];
    const VirtualHca& dst = hypervisors_[txn.dst_hypervisor];
    const NodeId vf_src = src.vfs[txn.src_vf_index];
    const NodeId vf_dst = dst.vfs[txn.dst_vf_index];
    sm_->lids().move(fabric, txn.vm_lid, vf_src, 1);
    if (txn.swapped_lid.valid()) {
      sm_->lids().move(fabric, txn.swapped_lid, vf_dst, 1);
    }
    fabric.node(vf_src).alias_guid = txn.vguid;
    fabric.node(vf_dst).alias_guid =
        txn.is_swap ? txn.peer_vguid : kInvalidGuid;
    transport.begin_batch();
    transport.send_vf_lid_assign(src.pf,
                                 static_cast<PortNum>(txn.src_vf_index),
                                 txn.vm_lid, txn.options.smp_routing);
    transport.send_vf_lid_assign(
        dst.pf, static_cast<PortNum>(txn.dst_vf_index),
        txn.swapped_lid.valid() ? txn.swapped_lid : kInvalidLid,
        txn.options.smp_routing);
    transport.send_guid_info(src.pf, static_cast<PortNum>(txn.src_vf_index),
                             txn.vguid, txn.options.smp_routing);
    txn.rollback_smps += 3;
    if (txn.is_swap) {
      // The peer's vGUID moved too; restore it to the destination VF.
      transport.send_guid_info(dst.pf, static_cast<PortNum>(txn.dst_vf_index),
                               txn.peer_vguid, txn.options.smp_routing);
      txn.rollback_smps += 1;
    }
    txn.rollback_time_us += transport.end_batch();
    sm_->refresh_targets();
    txn.addresses_moved = false;
  }
  sm_->bump_generation();

  journal_.roll_back(txn.id);
  if (auto* record = journal_.find(txn.id)) record->reconciled = true;
  txn.state = TxnState::kRolledBack;
  auto& metrics = VSwitchMetrics::get();
  metrics.migrations_rolled_back.inc();
  metrics.rollback_smps.observe(static_cast<double>(txn.rollback_smps));
  IBVS_INFO("vswitch") << "rolled back migration of vm " << txn.vm.id
                       << " to hyp " << txn.dst_hypervisor << ": "
                       << txn.rollback_smps << " SMPs to undo";
}

void VSwitchFabric::txn_commit(MigrationTxn& txn) {
  IBVS_REQUIRE(txn.state == TxnState::kReconfiguring ||
                   txn.state == TxnState::kAttached,
               "commit follows reconfiguration");
  Vm& vm = vm_mutable(txn.vm);
  if (txn.is_swap) {
    // Both slots stay occupied — the VMs trade places.
    Vm& peer = vm_mutable(txn.peer_vm);
    mark_slot_used(txn.src_hypervisor, txn.src_vf_index, peer.id);
    mark_slot_used(txn.dst_hypervisor, txn.dst_vf_index, vm.id);
    peer.hypervisor = txn.src_hypervisor;
    peer.vf_index = txn.src_vf_index;
  } else {
    mark_slot_free(txn.src_hypervisor, txn.src_vf_index);
    mark_slot_used(txn.dst_hypervisor, txn.dst_vf_index, vm.id);
  }
  vm.hypervisor = txn.dst_hypervisor;
  vm.vf_index = txn.dst_vf_index;
  journal_.commit(txn.id);
  if (auto* record = journal_.find(txn.id)) record->reconciled = true;
  txn.state = TxnState::kCommitted;
  VSwitchMetrics::get().migrations_committed.inc();
}

VSwitchFabric::ReconcileReport VSwitchFabric::reconcile_with_journal() {
  ReconcileReport report;
  auto& metrics = VSwitchMetrics::get();
  for (const sm::MigrationRecord& r : journal_.records()) {
    if (r.reconciled || r.state == sm::RecordState::kInFlight) continue;
    const auto it = vms_.find(r.vm_id);
    if (it != vms_.end()) {
      Vm& vm = it->second;
      if (r.state == sm::RecordState::kCommitted &&
          (vm.hypervisor != r.dst_hypervisor ||
           vm.vf_index != r.dst_vf_index)) {
        if (r.swap_pair) {
          const auto peer_it = vms_.find(r.peer_vm_id);
          if (peer_it != vms_.end()) {
            Vm& peer = peer_it->second;
            mark_slot_used(r.src_hypervisor, r.src_vf_index, peer.id);
            peer.hypervisor = r.src_hypervisor;
            peer.vf_index = r.src_vf_index;
          }
        } else {
          mark_slot_free(r.src_hypervisor, r.src_vf_index);
        }
        mark_slot_used(r.dst_hypervisor, r.dst_vf_index, vm.id);
        vm.hypervisor = r.dst_hypervisor;
        vm.vf_index = r.dst_vf_index;
      }
      // A rolled-back record needs no fixup: the transaction path only
      // advances the slot bookkeeping at commit, so the VM still sits at
      // the source.
    }
    if (r.state == sm::RecordState::kCommitted) {
      ++report.committed;
      metrics.migrations_committed.inc();
    } else {
      ++report.rolled_back;
      metrics.migrations_rolled_back.inc();
    }
    journal_.find(r.id)->reconciled = true;
  }
  return report;
}

void VSwitchFabric::adopt_subnet_manager(sm::SubnetManager& sm) {
  // Compare against the fabric captured at construction: the previous SM may
  // already be destroyed (SmElection replaces it on takeover), so sm_ must
  // not be dereferenced here.
  IBVS_REQUIRE(&sm.fabric() == fabric_,
               "the adopting SM must manage the same fabric");
  IBVS_REQUIRE(sm.has_routing(),
               "the adopting SM must have swept the subnet first");
  sm_ = &sm;
}

MigrationReport VSwitchFabric::migrate_vm(VmHandle handle,
                                          std::size_t dst_hypervisor,
                                          const MigrationOptions& options) {
  MigrationTxn txn = begin_migration(handle, dst_hypervisor, options);
  auto span = telemetry::Tracer::global().span(
      "vswitch.migrate", {{"scheme", to_string(scheme_)}});
  try {
    txn_move_addresses(txn);
    txn_apply_lfts(txn);
  } catch (...) {
    // One-shot semantics with an undo: any mid-flight failure restores the
    // source placement before surfacing to the caller.
    txn_rollback(txn);
    throw;
  }
  txn_commit(txn);

  MigrationReport report;
  report.vm = handle.id;
  report.src_hypervisor = txn.src_hypervisor;
  report.dst_hypervisor = txn.dst_hypervisor;
  report.vm_lid = txn.vm_lid;
  report.swapped_lid = txn.swapped_lid;
  report.intra_leaf = txn.intra_leaf;
  report.reconfig = txn.stats;
  report.minimal_set_size = txn.minimal_set_size;
  span.set_attr("intra_leaf", report.intra_leaf ? "true" : "false");
  span.set_attr("switches_updated",
                std::to_string(report.reconfig.switches_updated));
  span.set_attr("lft_smps", std::to_string(report.reconfig.lft_smps));

  IBVS_DEBUG("vswitch") << "migrated vm " << handle.id << " hyp "
                        << report.src_hypervisor << " -> " << dst_hypervisor
                        << " (" << to_string(scheme_) << "): updated "
                        << report.reconfig.switches_updated << "/"
                        << report.reconfig.switches_total << " switches, "
                        << report.reconfig.lft_smps << " LFT SMPs";
  return report;
}

MigrationReport VSwitchFabric::swap_vms(VmHandle vm_a, VmHandle vm_b,
                                        const MigrationOptions& options) {
  MigrationTxn txn = begin_swap(vm_a, vm_b, options);
  auto span = telemetry::Tracer::global().span(
      "vswitch.swap", {{"scheme", to_string(scheme_)}});
  try {
    txn_move_addresses(txn);
    txn_apply_lfts(txn);
  } catch (...) {
    txn_rollback(txn);
    throw;
  }
  txn_commit(txn);

  MigrationReport report;
  report.vm = vm_a.id;
  report.src_hypervisor = txn.src_hypervisor;
  report.dst_hypervisor = txn.dst_hypervisor;
  report.vm_lid = txn.vm_lid;
  report.swapped_lid = txn.swapped_lid;
  report.intra_leaf = txn.intra_leaf;
  report.reconfig = txn.stats;
  report.minimal_set_size = txn.minimal_set_size;
  span.set_attr("switches_updated",
                std::to_string(report.reconfig.switches_updated));
  span.set_attr("lft_smps", std::to_string(report.reconfig.lft_smps));

  IBVS_DEBUG("vswitch") << "swapped vm " << vm_a.id << " (hyp "
                        << report.src_hypervisor << ") with vm " << vm_b.id
                        << " (hyp " << report.dst_hypervisor << "): "
                        << report.reconfig.lft_smps << " LFT SMPs fused";
  return report;
}

VSwitchFabric::HotAddReport VSwitchFabric::add_hypervisor(
    const topology::HostSlot& slot, std::size_t num_vfs,
    std::string_view name) {
  IBVS_REQUIRE(booted_, "boot() first");
  HotAddReport report;
  report.hypervisor = hypervisors_.size();
  hypervisors_.push_back(
      attach_hypervisor(sm_->fabric(), slot, num_vfs, name));
  slots_.emplace_back(num_vfs);
  free_slots_.emplace_back();
  for (std::size_t i = 0; i < num_vfs; ++i) free_slots_.back().insert(i);
  sm_->transport().invalidate_topology();

  // Address the newcomer: PF always; all VFs too under prepopulation.
  const VirtualHca& hyp = hypervisors_.back();
  sm_->assign_lid(hyp.pf, 1);
  ++report.lids_assigned;
  if (scheme_ == LidScheme::kPrepopulated) {
    for (NodeId vf : hyp.vfs) {
      sm_->assign_lid(vf, 1);
      ++report.lids_assigned;
    }
  }
  // Mirror the PF LID onto the vSwitch (shared, §V-A).
  sm_->fabric().set_lid(hyp.vswitch, 0,
                       sm_->fabric().node(hyp.pf).lid());

  // A new attachment point means real path computation — no shortcut.
  sm_->compute_routes();
  report.path_computation_seconds = sm_->routing_result().compute_seconds;
  report.distribution = sm_->distribute_lfts();
  return report;
}

sm::SweepReport VSwitchFabric::full_reconfigure() {
  IBVS_REQUIRE(booted_, "boot() first");
  sm::SweepReport report;
  sm_->compute_routes();
  report.path_computation_seconds = sm_->routing_result().compute_seconds;
  report.distribution = sm_->distribute_lfts();
  return report;
}

const Vm& VSwitchFabric::vm(VmHandle handle) const {
  const auto it = vms_.find(handle.id);
  IBVS_REQUIRE(it != vms_.end(), "unknown VM");
  return it->second;
}

Vm& VSwitchFabric::vm_mutable(VmHandle handle) {
  const auto it = vms_.find(handle.id);
  IBVS_REQUIRE(it != vms_.end(), "unknown VM");
  return it->second;
}

std::vector<std::uint32_t> VSwitchFabric::active_vm_ids() const {
  std::vector<std::uint32_t> ids;
  ids.reserve(vms_.size());
  for (const auto& [id, vm] : vms_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

NodeId VSwitchFabric::vm_node(VmHandle handle) const {
  const Vm& v = vm(handle);
  return hypervisors_[v.hypervisor].vfs[v.vf_index];
}

}  // namespace ibvs::core
