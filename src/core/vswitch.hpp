// The proposed vSwitch architecture (§V) and its dynamic reconfiguration.
//
// Two LID schemes with the paper's exact trade-offs:
//
//  * Prepopulated LIDs (§V-A): every VF is addressed at boot. Larger initial
//    path computation (paths exist for all VFs), a hard cap of
//    switches+PFs+VFs <= 49151, LMC-like multipathing per VM — and
//    migration reconfigures by *swapping* two LFT entries per switch, which
//    costs 1 SMP when both LIDs share a 64-entry block and 2 otherwise.
//
//  * Dynamic LID assignment (§V-B): a VF is addressed when a VM is created.
//    Fast initial configuration, no cap on *spare* VFs, but VM creation
//    costs one SMP per switch (copying the PF's forwarding entry) and
//    migration reconfigures by *copying* — always at most 1 SMP per switch.
//
// Both reconfigurations skip every switch whose entries do not change
// (n' <= n) and never recompute paths: the PCt term of eq. (1) is gone,
// which is the headline result of the paper.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/errors.hpp"
#include "core/skyline.hpp"
#include "core/virtualizer.hpp"
#include "sm/reconfig_journal.hpp"
#include "sm/subnet_manager.hpp"

namespace ibvs::core {

struct MigrationTxn;  // core/migration_txn.hpp

enum class LidScheme { kPrepopulated, kDynamic };

[[nodiscard]] std::string to_string(LidScheme scheme);

/// How step (b) picks the switches to update.
enum class ReconfigMode {
  /// Algorithm 1: iterate all switches, update where entries change.
  /// Preserves the initial balancing.
  kDeterministic,
  /// §VI-D: update only a connectivity-sufficient (skyline) set. Touches
  /// fewer switches — exactly one for an intra-leaf migration — at the cost
  /// of possibly degrading the initial balancing.
  kMinimal,
};

struct MigrationOptions {
  /// The paper's eq. (5) improvement: migration SMPs may be destination
  /// routed because switch routes are unaffected by VM moves.
  SmpRouting smp_routing = SmpRouting::kLidRouted;
  ReconfigMode mode = ReconfigMode::kDeterministic;
  /// §VI-C partially-static variant: first invalidate the VM's LID on every
  /// switch to be updated (forward to port 255), then reconfigure. Costs n'
  /// extra SMPs but prevents transient-cycle deadlocks.
  bool drain_first = false;
};

struct VmHandle {
  std::uint32_t id = 0;
  [[nodiscard]] bool valid() const noexcept { return id != 0; }
};

struct Vm {
  std::uint32_t id = 0;
  std::size_t hypervisor = 0;  ///< index into hypervisors()
  std::size_t vf_index = 0;    ///< VF slot on that hypervisor
  Lid lid;
  Guid vguid;
};

struct CreateReport {
  VmHandle vm;
  Lid lid;
  std::uint64_t lft_smps = 0;       ///< 0 prepopulated; <= n dynamic
  std::uint64_t hypervisor_smps = 0;
  double time_us = 0.0;
};

struct ReconfigStats {
  std::size_t switches_total = 0;    ///< n
  std::size_t switches_updated = 0;  ///< n'
  std::uint64_t lft_smps = 0;        ///< sum of m' over updated switches
  std::uint64_t drain_smps = 0;
  std::uint64_t hypervisor_lid_smps = 0;
  std::uint64_t guid_smps = 0;
  double lft_time_us = 0.0;   ///< batch makespan of the LFT updates
  double drain_time_us = 0.0;

  [[nodiscard]] std::uint64_t total_smps() const noexcept {
    return lft_smps + drain_smps + hypervisor_lid_smps + guid_smps;
  }
};

struct MigrationReport {
  std::uint32_t vm = 0;
  std::size_t src_hypervisor = 0;
  std::size_t dst_hypervisor = 0;
  Lid vm_lid;
  /// Prepopulated only: the destination VF's LID that swapped back.
  Lid swapped_lid;
  bool intra_leaf = false;
  ReconfigStats reconfig;
  /// Size of the §VI-D minimal set for this move (computed for reporting
  /// even in deterministic mode; equals switches_updated in minimal mode).
  std::size_t minimal_set_size = 0;
};

/// Full-subnet view of a vSwitch-enabled IB cloud: owns VM lifecycle and the
/// reconfiguration machinery on top of a SubnetManager.
class VSwitchFabric {
 public:
  VSwitchFabric(sm::SubnetManager& sm, std::vector<VirtualHca> hypervisors,
                LidScheme scheme);

  [[nodiscard]] LidScheme scheme() const noexcept { return scheme_; }
  [[nodiscard]] const std::vector<VirtualHca>& hypervisors() const noexcept {
    return hypervisors_;
  }
  [[nodiscard]] sm::SubnetManager& subnet_manager() noexcept { return *sm_; }
  [[nodiscard]] const sm::SubnetManager& subnet_manager() const noexcept {
    return *sm_;
  }

  /// Discovery, LID assignment (including all VFs when prepopulated), path
  /// computation and LFT distribution.
  sm::SweepReport boot();

  /// Starts a VM on `hypervisor` (first hypervisor with a free VF if
  /// nullopt). Throws when no VF — or, dynamic scheme, no LID — is free.
  CreateReport create_vm(std::optional<std::size_t> hypervisor = {});

  void destroy_vm(VmHandle vm);

  /// Algorithm 1: detach, migrate addresses (step a), update LFTs (step b).
  /// Implemented on top of the transactional phases below (begin, move
  /// addresses, apply LFTs, commit) with the exact SMP stream of the
  /// original one-shot path; failures surface as MigrationError.
  MigrationReport migrate_vm(VmHandle vm, std::size_t dst_hypervisor,
                             const MigrationOptions& options = {});

  /// Destination swap: two live VMs trade slots in ONE fused transaction.
  /// Needs no free VF on either side (the move a full cloud cannot express
  /// as copies), and both schemes reconfigure by the symmetric entry swap —
  /// each switch pushes its dirty blocks once for both LIDs, so a swap
  /// costs at most the larger of the two copies instead of their sum.
  /// Happy-path composition of begin_swap + the shared txn phases.
  MigrationReport swap_vms(VmHandle vm_a, VmHandle vm_b,
                           const MigrationOptions& options = {});

  // --- Transactional migration phases (see core/migration_txn.hpp). ---
  // The orchestrator (or the chaos harness) drives these individually to
  // get abort points, typed failures and rollback; migrate_vm() is the
  // happy-path composition. Every transaction writes ahead to journal().

  /// Validates the request with typed errors (kUnknownVm, kBadDestination,
  /// kSameHypervisor, kNoFreeVf), reserves the destination VF choice and
  /// opens the write-ahead journal record. Sends nothing.
  MigrationTxn begin_migration(VmHandle vm, std::size_t dst_hypervisor,
                               const MigrationOptions& options = {});

  /// Opens a destination-swap transaction: vm_a's slot becomes src_*,
  /// vm_b's becomes dst_*, and the journal record carries the pair so a
  /// recovering SM restores *both* VMs' addresses. Sends nothing.
  MigrationTxn begin_swap(VmHandle vm_a, VmHandle vm_b,
                          const MigrationOptions& options = {});

  /// §V-C step (a): moves the VM's LID and vGUID to the destination VF
  /// (swap for prepopulated). Throws kDestinationDetached — before sending
  /// anything — when the destination PF lost physical attachment.
  void txn_move_addresses(MigrationTxn& txn);

  /// Controls for txn_apply_lfts: fault-injection and reachability policy.
  struct ApplyOptions {
    /// Simulated master death: throw kInterrupted after this many LFT SMPs
    /// (drain included), leaving the batch genuinely half-sent — exactly
    /// what journal recovery must clean up.
    std::size_t abort_after_smps = std::numeric_limits<std::size_t>::max();
    /// Throw kSwitchUnreachable when a switch in the update set cannot be
    /// reached from the SM (the transactional path rolls back; the legacy
    /// path keeps the old behavior of sending into the void).
    bool require_reachable = false;
  };

  /// §V-C step (b): plans the delta set, records it in the journal, then
  /// updates and pushes per switch. Partial progress is tracked in
  /// txn.applied so a rollback can restore the exact prior bytes.
  void txn_apply_lfts(MigrationTxn& txn, const ApplyOptions& apply);
  void txn_apply_lfts(MigrationTxn& txn) { txn_apply_lfts(txn, ApplyOptions{}); }

  /// Applies the inverse deltas in reverse order (reverse swap for
  /// prepopulated, restore-entry for dynamic), re-attaches the VF at the
  /// source, and marks the journal record rolled back.
  void txn_rollback(MigrationTxn& txn);

  /// Finalizes slot bookkeeping and commits the journal record.
  void txn_commit(MigrationTxn& txn);

  /// The write-ahead reconfiguration journal backing every migration.
  [[nodiscard]] sm::ReconfigJournal& journal() noexcept { return journal_; }
  [[nodiscard]] const sm::ReconfigJournal& journal() const noexcept {
    return journal_;
  }

  /// Folds journal outcomes decided *outside* the transaction path — a new
  /// master's ReconfigJournal::recover() after failover — into the slot/VM
  /// bookkeeping. Idempotent (records are marked reconciled).
  struct ReconcileReport {
    std::size_t committed = 0;
    std::size_t rolled_back = 0;
  };
  ReconcileReport reconcile_with_journal();

  /// Re-points this fabric at a different SubnetManager — the standby
  /// promoted by SmElection after the previous master died. The new SM must
  /// have swept the subnet already (has_routing()).
  void adopt_subnet_manager(sm::SubnetManager& sm);

  /// Traditional baseline for comparison: full path recomputation plus
  /// complete LFT redistribution (what a LID move would cost without the
  /// paper's method).
  sm::SweepReport full_reconfigure();

  /// Hot-adds a hypervisor to a running subnet. Unlike starting a VM —
  /// which the schemes make path-computation-free — a *new attachment
  /// point* genuinely needs routes: this performs the full compute +
  /// diff-distribution, which is exactly the cost the paper's VM-level
  /// tricks avoid (§V-B's "computing a new set of routes can take several
  /// minutes" motivates why VM creation must not look like this).
  struct HotAddReport {
    std::size_t hypervisor = 0;
    double path_computation_seconds = 0.0;
    sm::DistributionReport distribution;
    std::size_t lids_assigned = 0;
  };
  HotAddReport add_hypervisor(const topology::HostSlot& slot,
                              std::size_t num_vfs, std::string_view name);

  [[nodiscard]] const Vm& vm(VmHandle handle) const;
  [[nodiscard]] std::vector<std::uint32_t> active_vm_ids() const;
  [[nodiscard]] std::size_t active_vms() const noexcept { return vms_.size(); }

  /// Fabric node of the VF currently backing this VM.
  [[nodiscard]] NodeId vm_node(VmHandle handle) const;

  /// First hypervisor (other than `exclude`) with a free VF slot.
  [[nodiscard]] std::optional<std::size_t> find_free_hypervisor(
      std::optional<std::size_t> exclude = {}) const;
  /// Lowest free VF slot on `hypervisor` — O(log vfs) via the per-host
  /// free-list, so fleet-scale planners can probe capacity without a scan.
  [[nodiscard]] std::optional<std::size_t> free_vf_on(
      std::size_t hypervisor) const;
  /// Free VF slots on `hypervisor`, O(1).
  [[nodiscard]] std::size_t free_vf_count(std::size_t hypervisor) const;

  /// The EntryDelta of the last migration (for skyline analysis in tests).
  [[nodiscard]] const EntryDelta& last_delta() const noexcept {
    return last_delta_;
  }

 private:
  struct Slot {
    std::uint32_t vm = 0;  ///< 0 = free
  };

  Lid pf_lid(std::size_t hypervisor) const;
  Vm& vm_mutable(VmHandle handle);
  /// Keep slots_ and the per-hypervisor free-lists in lockstep.
  void mark_slot_used(std::size_t hypervisor, std::size_t vf,
                      std::uint32_t vm_id);
  void mark_slot_free(std::size_t hypervisor, std::size_t vf);

  sm::SubnetManager* sm_;  ///< reseatable: adopt_subnet_manager on failover
  Fabric* fabric_;         ///< the subnet itself, stable across SM failovers
  std::vector<VirtualHca> hypervisors_;
  LidScheme scheme_;
  std::vector<std::vector<Slot>> slots_;  ///< [hypervisor][vf]
  /// Free VF slot indices per hypervisor, ordered — free_vf_on() keeps the
  /// historical lowest-index-first semantics without the linear scan.
  std::vector<std::set<std::size_t>> free_slots_;
  std::unordered_map<std::uint32_t, Vm> vms_;
  std::uint32_t next_vm_id_ = 1;
  bool booted_ = false;
  EntryDelta last_delta_;
  sm::ReconfigJournal journal_;
};

}  // namespace ibvs::core
