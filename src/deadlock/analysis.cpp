#include "deadlock/analysis.hpp"

namespace ibvs::deadlock {

void collect_lid_dependencies(const routing::SwitchGraph& graph,
                              const std::vector<Lft>& lfts, Lid lid,
                              DependencyDigraph& into) {
  const std::size_t s_count = graph.num_switches();
  for (std::size_t v = 0; v < s_count; ++v) {
    const PortNum out_port = lfts[v].get(lid);
    if (out_port == kDropPort) continue;
    const std::uint32_t e_out =
        graph.edge_of(static_cast<routing::SwitchIdx>(v), out_port);
    if (e_out == routing::SwitchGraph::kNoEdge) continue;  // local delivery
    const auto [first, last] =
        graph.out(static_cast<routing::SwitchIdx>(v));
    for (const auto* e = first; e != last; ++e) {
      const routing::SwitchIdx u = e->to;
      const std::uint32_t eid =
          static_cast<std::uint32_t>(e - graph.edges.data());
      const std::uint32_t e_in = graph.reverse_edge[eid];
      // u funnels into v for this LID iff u's egress is the u->v channel.
      if (lfts[u].get(lid) == graph.edges[e_in].out_port) {
        into.add(e_in, e_out);
      }
    }
  }
}

CdgReport analyze_routing(const routing::RoutingResult& routing) {
  CdgReport report;
  const auto& g = routing.graph;
  std::vector<DependencyDigraph> per_vl;
  per_vl.reserve(routing.num_vls);
  for (unsigned vl = 0; vl < routing.num_vls; ++vl) {
    per_vl.emplace_back(g.num_edges());
  }

  if (!routing.pair_layer.empty()) {
    // LASH-style: the layer depends on the source switch, so dependencies
    // must be collected per (src, dst) pair by walking the path.
    const std::size_t s_count = g.num_switches();
    for (const auto& target : g.targets) {
      if (target.port == 0) continue;  // management traffic rides VL15
      for (routing::SwitchIdx ss = 0; ss < s_count; ++ss) {
        if (ss == target.sw) continue;
        const std::uint8_t layer =
            routing.pair_layer[static_cast<std::size_t>(ss) * s_count +
                               target.sw];
        if (layer == 0xFF || layer >= per_vl.size()) continue;
        std::uint32_t prev = routing::SwitchGraph::kNoEdge;
        routing::SwitchIdx x = ss;
        std::size_t guard = 0;
        while (x != target.sw && guard++ <= s_count) {
          const PortNum port = routing.lfts[x].get(target.lid);
          const std::uint32_t e = g.edge_of(x, port);
          if (port == kDropPort || e == routing::SwitchGraph::kNoEdge) break;
          if (prev != routing::SwitchGraph::kNoEdge) {
            per_vl[layer].add(prev, e);
          }
          prev = e;
          x = g.edges[e].to;
        }
      }
    }
  } else {
    // Destination-keyed VLs (minhop/ftree/updn on VL0, DFSSSP's dest_vl).
    for (const auto& target : g.targets) {
      if (target.port == 0) continue;  // management traffic rides VL15
      const unsigned vl =
          target.lid.value() < routing.dest_vl.size()
              ? routing.dest_vl[target.lid.value()]
              : 0;
      collect_lid_dependencies(g, routing.lfts, target.lid,
                               per_vl[vl < per_vl.size() ? vl : 0]);
    }
  }

  for (unsigned vl = 0; vl < per_vl.size(); ++vl) {
    VlReport r;
    r.vl = vl;
    r.dependencies = per_vl[vl].num_edges();
    r.cycle = per_vl[vl].find_cycle();
    r.acyclic = r.cycle.empty();
    report.per_vl.push_back(std::move(r));
  }
  return report;
}

TransitionReport analyze_transition(const routing::SwitchGraph& graph,
                                    const std::vector<Lft>& old_lfts,
                                    const std::vector<Lft>& new_lfts,
                                    const std::vector<Lid>& affected_lids,
                                    const std::vector<Lid>& stable_lids) {
  DependencyDigraph cdg(graph.num_edges());
  // The stable LIDs contribute their (unchanged) dependencies once; the
  // affected LIDs contribute dependencies of *both* tables, since any
  // subset of switches may have been updated at a given instant, and
  // packets in flight may chain old and new hops.
  for (Lid lid : stable_lids) {
    collect_lid_dependencies(graph, new_lfts, lid, cdg);
  }
  for (Lid lid : affected_lids) {
    collect_lid_dependencies(graph, old_lfts, lid, cdg);
    collect_lid_dependencies(graph, new_lfts, lid, cdg);
  }
  TransitionReport report;
  report.union_dependencies = cdg.num_edges();
  report.cycle = cdg.find_cycle();
  report.transient_cycle_possible = !report.cycle.empty();
  return report;
}

}  // namespace ibvs::deadlock
