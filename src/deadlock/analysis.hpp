// Channel-dependency analysis of computed routings (§VI-C).
//
// Builds the per-virtual-lane channel dependency graph induced by a routing
// and reports cycles. Also analyses the *transition* state of a live
// migration: while switches are being reconfigured one by one, the old and
// the new forwarding entries for the migrated LID coexist, and — as the
// paper notes — the combination of two individually deadlock-free routing
// functions need not be deadlock free (Duato's transition condition). The
// paper's position is that such transient cycles are tolerated and resolved
// by IB timeouts; transition_analysis() makes them observable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "deadlock/digraph.hpp"
#include "routing/engine.hpp"

namespace ibvs::deadlock {

struct VlReport {
  unsigned vl = 0;
  std::size_t dependencies = 0;
  bool acyclic = true;
  /// Channels (edge ids of the routing's SwitchGraph) forming one cycle.
  std::vector<std::uint32_t> cycle;
};

struct CdgReport {
  std::vector<VlReport> per_vl;
  [[nodiscard]] bool deadlock_free() const {
    for (const auto& vl : per_vl) {
      if (!vl.acyclic) return false;
    }
    return true;
  }
};

/// Builds the CDG of every VL used by `routing` and checks acyclicity.
CdgReport analyze_routing(const routing::RoutingResult& routing);

/// Dependencies induced on VL `vl` by a single LID's routes under the given
/// LFT set (helper shared by analyze_routing and transition analysis).
void collect_lid_dependencies(const routing::SwitchGraph& graph,
                              const std::vector<Lft>& lfts, Lid lid,
                              DependencyDigraph& into);

/// Transition analysis of a migration: the union CDG of the old and new
/// tables for the affected LIDs (typically the migrated VM's LID and, for
/// the prepopulated scheme, the swapped VF LID), overlaid on the stable
/// dependencies of all other LIDs. Reports whether a transient cycle can
/// exist while the switch updates are in flight.
struct TransitionReport {
  bool transient_cycle_possible = false;
  std::vector<std::uint32_t> cycle;  ///< channel ids, empty when clean
  std::size_t union_dependencies = 0;
};

TransitionReport analyze_transition(const routing::SwitchGraph& graph,
                                    const std::vector<Lft>& old_lfts,
                                    const std::vector<Lft>& new_lfts,
                                    const std::vector<Lid>& affected_lids,
                                    const std::vector<Lid>& stable_lids);

}  // namespace ibvs::deadlock
