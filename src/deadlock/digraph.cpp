#include "deadlock/digraph.hpp"

#include <algorithm>

#include "util/expect.hpp"

namespace ibvs::deadlock {

void DependencyDigraph::add(std::uint32_t from, std::uint32_t to) {
  IBVS_REQUIRE(from < out_.size() && to < out_.size(),
               "node id out of range");
  auto& out = out_[from];
  if (std::find(out.begin(), out.end(), to) != out.end()) return;
  out.push_back(to);
  ++edges_;
}

std::vector<std::uint32_t> DependencyDigraph::find_cycle() const {
  enum : std::uint8_t { kWhite, kGray, kBlack };
  std::vector<std::uint8_t> color(out_.size(), kWhite);
  std::vector<std::uint32_t> parent(out_.size(), ~0u);
  std::vector<std::pair<std::uint32_t, std::size_t>> frames;

  for (std::uint32_t root = 0; root < out_.size(); ++root) {
    if (color[root] != kWhite) continue;
    frames.clear();
    frames.emplace_back(root, 0);
    color[root] = kGray;
    while (!frames.empty()) {
      auto& [u, cursor] = frames.back();
      if (cursor < out_[u].size()) {
        const std::uint32_t v = out_[u][cursor++];
        if (color[v] == kGray) {
          std::vector<std::uint32_t> cycle{v};
          for (std::uint32_t x = u; x != v; x = parent[x]) cycle.push_back(x);
          std::reverse(cycle.begin() + 1, cycle.end());
          return cycle;
        }
        if (color[v] == kWhite) {
          color[v] = kGray;
          parent[v] = u;
          frames.emplace_back(v, 0);
        }
      } else {
        color[u] = kBlack;
        frames.pop_back();
      }
    }
  }
  return {};
}

}  // namespace ibvs::deadlock
