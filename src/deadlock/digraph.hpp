// Permissive dependency digraph for *analysis* (cycles are findings here,
// not errors — contrast with routing::ChannelDepGraph, which refuses them).
#pragma once

#include <cstdint>
#include <vector>

namespace ibvs::deadlock {

class DependencyDigraph {
 public:
  explicit DependencyDigraph(std::size_t nodes) : out_(nodes) {}

  [[nodiscard]] std::size_t size() const noexcept { return out_.size(); }
  [[nodiscard]] std::size_t num_edges() const noexcept { return edges_; }

  void add(std::uint32_t from, std::uint32_t to);

  [[nodiscard]] bool acyclic() const { return find_cycle().empty(); }

  /// One cycle as a node sequence (first node repeats implicitly); empty if
  /// the graph is acyclic.
  [[nodiscard]] std::vector<std::uint32_t> find_cycle() const;

 private:
  std::vector<std::vector<std::uint32_t>> out_;
  std::size_t edges_ = 0;
};

}  // namespace ibvs::deadlock
