#include "fabric/credit_sim.hpp"

#include <deque>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "util/expect.hpp"

namespace ibvs::fabric {

namespace {

struct Packet {
  Lid dst;
  std::uint8_t vl = 0;
  std::uint32_t dwords = 0;         ///< payload size (PMA data units)
  bool marked = false;              ///< FECN-style congestion mark applied
  std::uint64_t blocked_since = 0;  ///< step the packet last moved
};

/// One directed link's receive buffers, one FIFO per VL.
struct Channel {
  NodeId from = kInvalidNode;    ///< transmitting node
  PortNum from_port = 0;         ///< egress port at the transmitter
  NodeId to = kInvalidNode;      ///< receiving node
  PortNum to_port = 0;           ///< ingress port at the receiver
  std::vector<std::deque<Packet>> vls;
};

bool ca_owns_lid(const Node& node, Lid lid) {
  for (PortNum p = 1; p <= node.num_ports(); ++p) {
    if (node.ports[p].owns(lid)) return true;
  }
  return false;
}

class Simulator {
 public:
  Simulator(const Fabric& fabric, const CreditSimConfig& config)
      : fabric_(fabric), config_(config) {
    channel_of_.assign(fabric.size() * 256, ~0u);
    for (NodeId id = 0; id < fabric.size(); ++id) {
      const Node& n = fabric.node(id);
      for (PortNum p = 1; p <= n.num_ports(); ++p) {
        const Port& port = n.ports[p];
        if (!port.connected()) continue;
        Channel ch;
        ch.from = id;
        ch.from_port = p;
        ch.to = port.peer;
        ch.to_port = port.peer_port;
        ch.vls.resize(config.num_vls);
        channel_of_[id * 256 + p] = static_cast<std::uint32_t>(
            channels_.size());
        channels_.push_back(std::move(ch));
      }
    }
  }

  CreditSimReport run(const std::vector<FlowSpec>& flows) {
    struct Source {
      FlowSpec spec;
      std::size_t sent = 0;
      std::uint32_t first_channel = ~0u;
    };
    std::vector<Source> sources;
    for (const auto& flow : flows) {
      IBVS_REQUIRE(fabric_.node(flow.src).is_ca(),
                   "flows originate at CA endpoints");
      IBVS_REQUIRE(flow.vl < config_.num_vls, "flow VL out of range");
      Source s{flow, 0, channel_of_[flow.src * 256 + 1]};
      IBVS_REQUIRE(s.first_channel != ~0u, "source is not cabled");
      sources.push_back(s);
      report_.injected += flow.packets;
    }

    std::size_t in_flight = 0;
    for (std::uint64_t step = 0; step < config_.max_steps; ++step) {
      report_.steps = step + 1;
      if (config_.on_step) config_.on_step(step);

      bool moved = false;

      // 1. Inject where the first link has a free slot.
      for (auto& src : sources) {
        if (src.sent == src.spec.packets) continue;
        auto& fifo = channels_[src.first_channel].vls[src.spec.vl];
        if (fifo.size() >= config_.credits_per_channel) continue;
        Packet packet;
        packet.dst = src.spec.dst;
        packet.vl = src.spec.vl;
        packet.dwords = src.spec.packet_dwords;
        packet.blocked_since = step;
        count_link_crossing(channels_[src.first_channel], packet);
        ++src.sent;
        moved = true;
        if (crossing_faulted(channels_[src.first_channel])) continue;
        fifo.push_back(packet);
        ++in_flight;
      }

      // 2. Advance head-of-line packets (one per channel FIFO per step).
      for (auto& channel : channels_) {
        for (auto& fifo : channel.vls) {
          if (fifo.empty()) continue;
          Packet& packet = fifo.front();
          const Node& here = fabric_.node(channel.to);

          if (here.is_ca()) {
            // Arrived at an endpoint.
            if (ca_owns_lid(here, packet.dst)) {
              ++report_.delivered;
            } else {
              ++report_.dropped_unrouted;
              here.ports[channel.to_port].counters.add_rcv_error();
            }
            fifo.pop_front();
            --in_flight;
            moved = true;
            continue;
          }

          const std::uint32_t next = next_channel(here, channel, packet);
          if (next == kDeliveredHere) {
            ++report_.delivered;
            fifo.pop_front();
            --in_flight;
            moved = true;
            continue;
          }
          if (next == kDropChannel) {
            ++report_.dropped_unrouted;
            here.ports[channel.to_port].counters.add_rcv_error();
            fifo.pop_front();
            --in_flight;
            moved = true;
            continue;
          }
          auto& next_fifo = channels_[next].vls[packet.vl];
          const Port& egress =
              fabric_.node(channels_[next].from).ports[channels_[next].from_port];
          if (next_fifo.size() < config_.credits_per_channel) {
            packet.blocked_since = step;
            count_link_crossing(channels_[next], packet);
            if (crossing_faulted(channels_[next])) {
              fifo.pop_front();
              --in_flight;
              moved = true;
              continue;
            }
            next_fifo.push_back(packet);
            fifo.pop_front();
            moved = true;
            continue;
          }
          // Blocked: data waiting for a credit ticks PortXmitWait, and the
          // first blocked tick applies a FECN-style congestion mark.
          egress.counters.add_xmit_wait();
          if (!packet.marked) {
            packet.marked = true;
            egress.counters.add_congestion_mark();
          }
          // The IB timeout eventually discards it.
          if (config_.timeout_steps > 0 &&
              step - packet.blocked_since >= config_.timeout_steps) {
            ++report_.dropped_timeout;
            egress.counters.add_xmit_discard();
            fifo.pop_front();
            --in_flight;
            moved = true;
          }
        }
      }

      if (in_flight == 0) {
        bool pending = false;
        for (const auto& src : sources) {
          if (src.sent < src.spec.packets) pending = true;
        }
        if (!pending) return report_;  // drained
      }
      if (!moved && config_.timeout_steps == 0) {
        // Nothing moved and no timeout can ever fire: permanently wedged.
        report_.deadlocked = true;
        report_.stuck = in_flight;
        return report_;
      }
      // With timeouts enabled a motionless step just ages the blocked
      // packets; the drop will unwedge the cycle.
    }
    report_.exhausted = true;
    report_.stuck = in_flight;
    return report_;
  }

 private:
  static constexpr std::uint32_t kDropChannel = ~0u;
  static constexpr std::uint32_t kDeliveredHere = ~0u - 1;

  /// One link crossing: the transmitter's egress port counts xmit, the
  /// receiver's ingress port counts rcv.
  void count_link_crossing(const Channel& ch, const Packet& packet) const {
    fabric_.node(ch.from).ports[ch.from_port].counters.add_xmit(
        packet.dwords);
    fabric_.node(ch.to).ports[ch.to_port].counters.add_rcv(packet.dwords);
  }

  /// Asks the fault plane whether this crossing lost the packet; a drop
  /// ticks a symbol error at the receiving port and is tallied.
  bool crossing_faulted(const Channel& ch) {
    if (config_.faults == nullptr) return false;
    if (!config_.faults->drop_on_link(ch.from, ch.from_port, ch.to,
                                      ch.to_port)) {
      return false;
    }
    fabric_.node(ch.to).ports[ch.to_port].counters.add_symbol_errors();
    ++report_.dropped_faulted;
    return true;
  }

  std::uint32_t next_channel(const Node& here, const Channel& arrived,
                             const Packet& packet) const {
    const NodeId here_id = arrived.to;
    if (here.is_vswitch()) {
      // Local endpoint owning the LID, else the uplink.
      for (PortNum p = 1; p <= here.num_ports(); ++p) {
        const Port& port = here.ports[p];
        if (p == arrived.to_port || !port.connected()) continue;
        const Node& peer = fabric_.node(port.peer);
        if (peer.is_ca() && ca_owns_lid(peer, packet.dst)) {
          return channel_of_[here_id * 256 + p];
        }
      }
      const auto uplink = fabric_.vswitch_uplink(here_id);
      if (!uplink || *uplink == arrived.to_port) return kDropChannel;
      return channel_of_[here_id * 256 + *uplink];
    }
    // Physical switch. Its own LID terminates at the management port.
    if (here.lid() == packet.dst) return kDeliveredHere;
    const PortNum out = here.lft.get(packet.dst);
    if (out == kDropPort || out == 0 || out > here.num_ports()) {
      return kDropChannel;
    }
    const std::uint32_t ch = channel_of_[here_id * 256 + out];
    return ch == ~0u ? kDropChannel : ch;
  }

  const Fabric& fabric_;
  const CreditSimConfig& config_;
  std::vector<Channel> channels_;
  std::vector<std::uint32_t> channel_of_;  ///< (node, port) -> channel
  CreditSimReport report_;
};

}  // namespace

CreditSimReport simulate_flows(const Fabric& fabric,
                               const std::vector<FlowSpec>& flows,
                               const CreditSimConfig& config) {
  IBVS_REQUIRE(config.credits_per_channel > 0, "need at least one credit");
  IBVS_REQUIRE(config.num_vls >= 1, "need at least one VL");
  auto span = telemetry::Tracer::global().span(
      "creditsim.run", {{"flows", std::to_string(flows.size())}});
  Simulator sim(fabric, config);
  const CreditSimReport report = sim.run(flows);

  auto& reg = telemetry::Registry::global();
  static telemetry::Counter& injected =
      reg.counter("ibvs_creditsim_packets_total", {{"outcome", "injected"}},
                  "Credit-simulator packets by final outcome");
  static telemetry::Counter& delivered =
      reg.counter("ibvs_creditsim_packets_total", {{"outcome", "delivered"}});
  static telemetry::Counter& dropped_timeout = reg.counter(
      "ibvs_creditsim_packets_total", {{"outcome", "dropped_timeout"}});
  static telemetry::Counter& dropped_unrouted = reg.counter(
      "ibvs_creditsim_packets_total", {{"outcome", "dropped_unrouted"}});
  static telemetry::Counter& deadlocks = reg.counter(
      "ibvs_creditsim_deadlocks_total", {},
      "Runs that wedged with timeouts disabled");
  static telemetry::Gauge& stuck = reg.gauge(
      "ibvs_creditsim_stuck_packets", {},
      "Packets still in-network when the last run ended (credit stalls)");
  static telemetry::Gauge& steps = reg.gauge(
      "ibvs_creditsim_last_steps", {}, "Steps the last run took to settle");
  injected.inc(report.injected);
  delivered.inc(report.delivered);
  dropped_timeout.inc(report.dropped_timeout);
  dropped_unrouted.inc(report.dropped_unrouted);
  if (report.deadlocked) deadlocks.inc();
  stuck.set(static_cast<double>(report.stuck));
  steps.set(static_cast<double>(report.steps));
  span.set_attr("steps", std::to_string(report.steps));
  span.set_attr("deadlocked", report.deadlocked ? "true" : "false");
  return report;
}

}  // namespace ibvs::fabric
