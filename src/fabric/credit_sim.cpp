#include "fabric/credit_sim.hpp"

#include <deque>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "util/expect.hpp"
#include "util/rng.hpp"

namespace ibvs::fabric {

namespace {

/// Registry handles resolved once per process (the de-lookup treatment
/// TransportMetrics got). Counters are sharded: chaos drives simulators
/// from pool workers concurrently, and the end-of-run ticks all landing on
/// the same atomics would bounce the lines between threads. A registry
/// fold hook drains the cells before any export; the gauges stay plain
/// (last-writer-wins is their semantics either way).
struct CreditSimMetrics {
  telemetry::ShardedCounter injected;
  telemetry::ShardedCounter delivered;
  telemetry::ShardedCounter dropped_timeout;
  telemetry::ShardedCounter dropped_unrouted;
  telemetry::ShardedCounter dropped_faulted;
  telemetry::ShardedCounter deadlocks;
  telemetry::Gauge* stuck = nullptr;
  telemetry::Gauge* steps = nullptr;
  telemetry::ShardedCounter int_sampled;
  telemetry::ShardedCounter int_delivered;
  telemetry::ShardedCounter int_truncated;
  telemetry::ShardedCounter int_dropped;
  telemetry::ShardedCounter int_overhead_dwords;

  void fold() noexcept {
    injected.fold();
    delivered.fold();
    dropped_timeout.fold();
    dropped_unrouted.fold();
    dropped_faulted.fold();
    deadlocks.fold();
    int_sampled.fold();
    int_delivered.fold();
    int_truncated.fold();
    int_dropped.fold();
    int_overhead_dwords.fold();
  }

  static CreditSimMetrics& get() {
    static CreditSimMetrics& metrics = []() -> CreditSimMetrics& {
      static CreditSimMetrics m;
      auto& reg = telemetry::Registry::global();
      m.injected.bind(
          reg.counter("ibvs_creditsim_packets_total",
                      {{"outcome", "injected"}},
                      "Credit-simulator packets by final outcome"));
      m.delivered.bind(reg.counter("ibvs_creditsim_packets_total",
                                   {{"outcome", "delivered"}}));
      m.dropped_timeout.bind(reg.counter("ibvs_creditsim_packets_total",
                                         {{"outcome", "dropped_timeout"}}));
      m.dropped_unrouted.bind(reg.counter("ibvs_creditsim_packets_total",
                                          {{"outcome", "dropped_unrouted"}}));
      m.dropped_faulted.bind(reg.counter("ibvs_creditsim_packets_total",
                                         {{"outcome", "dropped_faulted"}}));
      m.deadlocks.bind(
          reg.counter("ibvs_creditsim_deadlocks_total", {},
                      "Runs that wedged with timeouts disabled"));
      m.stuck = &reg.gauge(
          "ibvs_creditsim_stuck_packets", {},
          "Packets still in-network when the last run ended (credit stalls)");
      m.steps = &reg.gauge("ibvs_creditsim_last_steps", {},
                           "Steps the last run took to settle");
      m.int_sampled.bind(
          reg.counter("ibvs_int_packets_total", {{"outcome", "sampled"}},
                      "INT-carrying packets by final stack outcome"));
      m.int_delivered.bind(reg.counter("ibvs_int_packets_total",
                                       {{"outcome", "delivered"}}));
      m.int_truncated.bind(reg.counter("ibvs_int_packets_total",
                                       {{"outcome", "truncated"}}));
      m.int_dropped.bind(
          reg.counter("ibvs_int_packets_total", {{"outcome", "dropped"}}));
      m.int_overhead_dwords.bind(reg.counter(
          "ibvs_int_overhead_dwords_total", {},
          "In-band telemetry metadata dwords that crossed links (also "
          "present in the PMA data counters of the ports traversed)"));
      // Capture the instance, not get() (see TransportMetrics for the
      // fold-hook/magic-static lock-order hazard).
      reg.add_fold_hook([&m] { m.fold(); });
      return m;
    }();
    return metrics;
  }
};

struct Packet {
  Lid dst;
  std::uint8_t vl = 0;
  std::uint32_t dwords = 0;         ///< payload size (PMA data units)
  bool marked = false;              ///< FECN-style congestion mark applied
  std::uint64_t blocked_since = 0;  ///< step the packet last moved
  // --- INT mode ---
  NodeId src = kInvalidNode;  ///< flow source (for the path record)
  std::uint32_t tenant = 0;
  bool has_int = false;       ///< sampled: carries a metadata stack
  bool truncated = false;     ///< path outgrew the stack bound
  std::vector<IntHop> stack;  ///< per-hop records, appended per switch
};

/// One directed link's receive buffers, one FIFO per VL.
struct Channel {
  NodeId from = kInvalidNode;    ///< transmitting node
  PortNum from_port = 0;         ///< egress port at the transmitter
  NodeId to = kInvalidNode;      ///< receiving node
  PortNum to_port = 0;           ///< ingress port at the receiver
  std::vector<std::deque<Packet>> vls;
};

bool ca_owns_lid(const Node& node, Lid lid) {
  for (PortNum p = 1; p <= node.num_ports(); ++p) {
    if (node.ports[p].owns(lid)) return true;
  }
  return false;
}

class Simulator {
 public:
  Simulator(const Fabric& fabric, const CreditSimConfig& config)
      : fabric_(fabric), config_(config), int_rng_(config.int_mode.seed) {
    channel_of_.assign(fabric.size() * 256, ~0u);
    for (NodeId id = 0; id < fabric.size(); ++id) {
      const Node& n = fabric.node(id);
      for (PortNum p = 1; p <= n.num_ports(); ++p) {
        const Port& port = n.ports[p];
        if (!port.connected()) continue;
        Channel ch;
        ch.from = id;
        ch.from_port = p;
        ch.to = port.peer;
        ch.to_port = port.peer_port;
        ch.vls.resize(config.num_vls);
        channel_of_[id * 256 + p] = static_cast<std::uint32_t>(
            channels_.size());
        channels_.push_back(std::move(ch));
      }
    }
  }

  CreditSimReport run(const std::vector<FlowSpec>& flows) {
    struct Source {
      FlowSpec spec;
      std::size_t sent = 0;
      std::uint32_t first_channel = ~0u;
    };
    std::vector<Source> sources;
    for (const auto& flow : flows) {
      IBVS_REQUIRE(fabric_.node(flow.src).is_ca(),
                   "flows originate at CA endpoints");
      IBVS_REQUIRE(flow.vl < config_.num_vls, "flow VL out of range");
      Source s{flow, 0, channel_of_[flow.src * 256 + 1]};
      IBVS_REQUIRE(s.first_channel != ~0u, "source is not cabled");
      sources.push_back(s);
      report_.injected += flow.packets;
    }

    std::size_t in_flight = 0;
    for (std::uint64_t step = 0; step < config_.max_steps; ++step) {
      report_.steps = step + 1;
      if (config_.on_step) config_.on_step(step);

      bool moved = false;

      // 1. Inject where the first link has a free slot.
      for (auto& src : sources) {
        if (src.sent == src.spec.packets) continue;
        auto& fifo = channels_[src.first_channel].vls[src.spec.vl];
        if (fifo.size() >= config_.credits_per_channel) continue;
        Packet packet;
        packet.dst = src.spec.dst;
        packet.vl = src.spec.vl;
        packet.dwords = src.spec.packet_dwords;
        packet.blocked_since = step;
        packet.src = src.spec.src;
        packet.tenant = src.spec.tenant;
        if (config_.int_mode.enabled &&
            int_rng_.uniform() < config_.int_mode.sample_rate) {
          packet.has_int = true;
          ++report_.int_sampled;
        }
        count_link_crossing(channels_[src.first_channel], packet);
        ++src.sent;
        moved = true;
        if (crossing_faulted(channels_[src.first_channel])) {
          shed_int_stack(packet);
          continue;
        }
        fifo.push_back(std::move(packet));
        ++in_flight;
      }

      // 2. Advance head-of-line packets (one per channel FIFO per step).
      for (auto& channel : channels_) {
        for (auto& fifo : channel.vls) {
          if (fifo.empty()) continue;
          Packet& packet = fifo.front();
          const Node& here = fabric_.node(channel.to);

          if (here.is_ca()) {
            // Arrived at an endpoint.
            if (ca_owns_lid(here, packet.dst)) {
              ++report_.delivered;
              deliver_int_stack(packet);
            } else {
              ++report_.dropped_unrouted;
              here.ports[channel.to_port].counters.add_rcv_error();
              shed_int_stack(packet);
            }
            fifo.pop_front();
            --in_flight;
            moved = true;
            continue;
          }

          const std::uint32_t next = next_channel(here, channel, packet);
          if (next == kDeliveredHere) {
            ++report_.delivered;
            deliver_int_stack(packet);
            fifo.pop_front();
            --in_flight;
            moved = true;
            continue;
          }
          if (next == kDropChannel) {
            ++report_.dropped_unrouted;
            here.ports[channel.to_port].counters.add_rcv_error();
            shed_int_stack(packet);
            fifo.pop_front();
            --in_flight;
            moved = true;
            continue;
          }
          auto& next_fifo = channels_[next].vls[packet.vl];
          const Port& egress =
              fabric_.node(channels_[next].from).ports[channels_[next].from_port];
          if (next_fifo.size() < config_.credits_per_channel) {
            // Forwarding happens: the switch appends its INT hop record
            // (credit occupancy seen, steps spent blocked here) before the
            // packet crosses — so the crossing's PMA data counters include
            // the new record's dwords too.
            if (packet.has_int) {
              append_int_hop(packet, channel, next, step);
            }
            packet.blocked_since = step;
            count_link_crossing(channels_[next], packet);
            if (crossing_faulted(channels_[next])) {
              shed_int_stack(packet);
              fifo.pop_front();
              --in_flight;
              moved = true;
              continue;
            }
            next_fifo.push_back(std::move(packet));
            fifo.pop_front();
            moved = true;
            continue;
          }
          // Blocked: data waiting for a credit ticks PortXmitWait, and the
          // first blocked tick applies a FECN-style congestion mark.
          egress.counters.add_xmit_wait();
          if (!packet.marked) {
            packet.marked = true;
            egress.counters.add_congestion_mark();
          }
          // The IB timeout eventually discards it.
          if (config_.timeout_steps > 0 &&
              step - packet.blocked_since >= config_.timeout_steps) {
            ++report_.dropped_timeout;
            egress.counters.add_xmit_discard();
            shed_int_stack(packet);
            fifo.pop_front();
            --in_flight;
            moved = true;
          }
        }
      }

      if (in_flight == 0) {
        bool pending = false;
        for (const auto& src : sources) {
          if (src.sent < src.spec.packets) pending = true;
        }
        if (!pending) return report_;  // drained
      }
      if (!moved && config_.timeout_steps == 0) {
        // Nothing moved and no timeout can ever fire: permanently wedged.
        report_.deadlocked = true;
        report_.stuck = in_flight;
        shed_stuck_int_stacks();
        return report_;
      }
      // With timeouts enabled a motionless step just ages the blocked
      // packets; the drop will unwedge the cycle.
    }
    report_.exhausted = true;
    report_.stuck = in_flight;
    shed_stuck_int_stacks();
    return report_;
  }

 private:
  static constexpr std::uint32_t kDropChannel = ~0u;
  static constexpr std::uint32_t kDeliveredHere = ~0u - 1;

  /// One link crossing: the transmitter's egress port counts xmit, the
  /// receiver's ingress port counts rcv. A stacked INT packet is bigger on
  /// the wire — its accumulated metadata is priced into the data counters.
  void count_link_crossing(const Channel& ch, const Packet& packet) {
    std::uint32_t dwords = packet.dwords;
    if (packet.has_int && !packet.stack.empty()) {
      const std::uint64_t overhead =
          static_cast<std::uint64_t>(packet.stack.size()) *
          config_.int_mode.dwords_per_hop;
      dwords += static_cast<std::uint32_t>(overhead);
      report_.int_overhead_dwords += overhead;
    }
    fabric_.node(ch.from).ports[ch.from_port].counters.add_xmit(dwords);
    fabric_.node(ch.to).ports[ch.to_port].counters.add_rcv(dwords);
  }

  /// The switch at `arrived.to` forwards `packet` into channel `next`:
  /// append its hop record, respecting the stack bound.
  void append_int_hop(Packet& packet, const Channel& arrived,
                      std::uint32_t next, std::uint64_t step) {
    if (packet.stack.size() >= config_.int_mode.max_hops) {
      packet.truncated = true;
      return;
    }
    IntHop hop;
    hop.node = arrived.to;
    hop.ingress_port = arrived.to_port;
    hop.egress_port = channels_[next].from_port;
    hop.vl = packet.vl;
    hop.occupancy =
        static_cast<std::uint32_t>(channels_[next].vls[packet.vl].size());
    hop.blocked_steps = step - packet.blocked_since;
    packet.stack.push_back(hop);
  }

  /// Delivered sampled packet: hand the stack to the sink.
  void deliver_int_stack(const Packet& packet) {
    if (!packet.has_int) return;
    ++report_.int_stacks_delivered;
    if (packet.truncated) ++report_.int_stacks_truncated;
    if (config_.int_mode.sink == nullptr) return;
    IntPathRecord record;
    record.src = packet.src;
    record.dst = packet.dst;
    record.tenant = packet.tenant;
    record.truncated = packet.truncated;
    record.hops = packet.stack;
    config_.int_mode.sink->on_path(record);
  }

  /// Lost sampled packet: the stack dies with it, never reaching the sink.
  void shed_int_stack(const Packet& packet) {
    if (packet.has_int) ++report_.int_stacks_dropped;
  }

  /// Deadlocked/exhausted runs leave sampled packets in-network; their
  /// stacks count as dropped so sampled == delivered + dropped always.
  void shed_stuck_int_stacks() {
    for (const auto& channel : channels_) {
      for (const auto& fifo : channel.vls) {
        for (const auto& packet : fifo) shed_int_stack(packet);
      }
    }
  }

  /// Asks the fault plane whether this crossing lost the packet; a drop
  /// ticks a symbol error at the receiving port and is tallied.
  bool crossing_faulted(const Channel& ch) {
    if (config_.faults == nullptr) return false;
    if (!config_.faults->drop_on_link(ch.from, ch.from_port, ch.to,
                                      ch.to_port)) {
      return false;
    }
    fabric_.node(ch.to).ports[ch.to_port].counters.add_symbol_errors();
    ++report_.dropped_faulted;
    return true;
  }

  std::uint32_t next_channel(const Node& here, const Channel& arrived,
                             const Packet& packet) const {
    const NodeId here_id = arrived.to;
    if (here.is_vswitch()) {
      // Local endpoint owning the LID, else the uplink.
      for (PortNum p = 1; p <= here.num_ports(); ++p) {
        const Port& port = here.ports[p];
        if (p == arrived.to_port || !port.connected()) continue;
        const Node& peer = fabric_.node(port.peer);
        if (peer.is_ca() && ca_owns_lid(peer, packet.dst)) {
          return channel_of_[here_id * 256 + p];
        }
      }
      const auto uplink = fabric_.vswitch_uplink(here_id);
      if (!uplink || *uplink == arrived.to_port) return kDropChannel;
      return channel_of_[here_id * 256 + *uplink];
    }
    // Physical switch. Its own LID terminates at the management port.
    if (here.lid() == packet.dst) return kDeliveredHere;
    const PortNum out = here.lft.get(packet.dst);
    if (out == kDropPort || out == 0 || out > here.num_ports()) {
      return kDropChannel;
    }
    const std::uint32_t ch = channel_of_[here_id * 256 + out];
    return ch == ~0u ? kDropChannel : ch;
  }

  const Fabric& fabric_;
  const CreditSimConfig& config_;
  std::vector<Channel> channels_;
  std::vector<std::uint32_t> channel_of_;  ///< (node, port) -> channel
  CreditSimReport report_;
  SplitMix64 int_rng_;  ///< seeded INT sampling stream (injection order)
};

}  // namespace

CreditSimReport simulate_flows(const Fabric& fabric,
                               const std::vector<FlowSpec>& flows,
                               const CreditSimConfig& config) {
  IBVS_REQUIRE(config.credits_per_channel > 0, "need at least one credit");
  IBVS_REQUIRE(config.num_vls >= 1, "need at least one VL");
  if (config.int_mode.enabled) {
    IBVS_REQUIRE(config.int_mode.max_hops > 0, "INT stack needs depth");
    IBVS_REQUIRE(config.int_mode.sample_rate >= 0.0 &&
                     config.int_mode.sample_rate <= 1.0,
                 "INT sample rate is a fraction");
  }
  auto span = telemetry::Tracer::global().span(
      "creditsim.run", {{"flows", std::to_string(flows.size())}});
  Simulator sim(fabric, config);
  const CreditSimReport report = sim.run(flows);

  CreditSimMetrics& m = CreditSimMetrics::get();
  m.injected.inc(report.injected);
  m.delivered.inc(report.delivered);
  m.dropped_timeout.inc(report.dropped_timeout);
  m.dropped_unrouted.inc(report.dropped_unrouted);
  m.dropped_faulted.inc(report.dropped_faulted);
  if (report.deadlocked) m.deadlocks.inc();
  m.stuck->set(static_cast<double>(report.stuck));
  m.steps->set(static_cast<double>(report.steps));
  m.int_sampled.inc(report.int_sampled);
  m.int_delivered.inc(report.int_stacks_delivered);
  m.int_truncated.inc(report.int_stacks_truncated);
  m.int_dropped.inc(report.int_stacks_dropped);
  m.int_overhead_dwords.inc(report.int_overhead_dwords);
  span.set_attr("steps", std::to_string(report.steps));
  span.set_attr("deadlocked", report.deadlocked ? "true" : "false");
  if (config.int_mode.enabled) {
    span.set_attr("int_sampled", std::to_string(report.int_sampled));
  }
  return report;
}

}  // namespace ibvs::fabric
