// Credit-based flow simulation: making deadlock (and its resolution)
// observable, not just predictable.
//
// The deadlock analyzer (src/deadlock) proves properties about channel
// dependency graphs; this module *runs* traffic. Channels (directed links)
// have a finite number of credits (buffer slots) per virtual lane; packets
// occupy a slot until the next hop has a free slot. A routing whose CDG has
// a cycle will, under enough load, wedge into a state where no packet can
// move — the deadlock of §VI-C. InfiniBand's answer in the paper ("resolved
// by IB timeouts") is modeled too: with a timeout configured, head-of-line
// packets that have waited too long are dropped, credits free up, and the
// fabric drains.
//
// The simulator walks the *installed* (hardware) LFTs, so tables can be
// mutated mid-flight (via the on_step hook) to reproduce the transient
// old/new coexistence of a live migration.
//
// INT mode (in-band network telemetry): a seeded, configurable fraction of
// packets carries a per-hop metadata stack. Every switch crossing appends
// one IntHop — switch NodeId, ingress/egress ports, the egress
// (channel, VL) credit occupancy at forwarding time, and the steps the
// packet spent credit-blocked at that switch (a hop-latency proxy). The
// stack is bounded (`max_hops`) and each stacked hop costs
// `dwords_per_hop` extra dwords on every subsequent link, priced into the
// PMA data counters — telemetry load is itself visible traffic. Delivered
// stacks are handed to an IntSink (perf::IntCollector builds the fabric
// congestion map from them); stacks on lost packets are shed, never
// reported.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "fabric/fault.hpp"
#include "ib/fabric.hpp"

namespace ibvs::fabric {

struct FlowSpec {
  NodeId src = kInvalidNode;  ///< source CA endpoint
  Lid dst;                    ///< destination LID
  std::size_t packets = 1;    ///< packets to inject
  std::uint8_t vl = 0;        ///< virtual lane (from the routing's layering)
  /// Payload size in 4-byte dwords (PMA data counters use this unit).
  std::uint32_t packet_dwords = 64;
  /// Tenant owning the flow; INT stacks carry it so the congestion map can
  /// attribute queueing to a tenant's paths (PMA counters cannot: they
  /// aggregate per port).
  std::uint32_t tenant = 0;
};

/// One INT metadata record, appended as the packet is forwarded by a switch
/// (physical or vSwitch).
struct IntHop {
  NodeId node = kInvalidNode;  ///< the switch that appended this record
  PortNum ingress_port = 0;    ///< where the packet arrived
  PortNum egress_port = 0;     ///< the forwarding decision taken
  std::uint8_t vl = 0;
  /// Packets already queued in the egress (channel, VL) FIFO at forwarding
  /// time — the instantaneous credit occupancy this packet saw.
  std::uint32_t occupancy = 0;
  /// Steps this packet spent credit-blocked at this switch before the
  /// forward happened (hop-latency proxy in the step-based model).
  std::uint64_t blocked_steps = 0;

  [[nodiscard]] bool operator==(const IntHop&) const = default;
};

/// A delivered per-packet INT stack: the path record the last hop exports.
struct IntPathRecord {
  NodeId src = kInvalidNode;
  Lid dst;
  std::uint32_t tenant = 0;
  bool truncated = false;  ///< the path was deeper than the stack bound
  std::vector<IntHop> hops;
};

/// Consumer of delivered INT stacks (perf::IntCollector). Called once per
/// delivered sampled packet, from the simulation thread, in delivery order.
class IntSink {
 public:
  virtual ~IntSink() = default;
  virtual void on_path(const IntPathRecord& record) = 0;
};

struct IntConfig {
  bool enabled = false;
  /// Fraction of injected packets that carry an INT stack, decided per
  /// packet by a SplitMix64 stream seeded with `seed` (deterministic:
  /// injection happens in flow order on the simulation thread).
  double sample_rate = 1.0;
  std::uint64_t seed = 0x1B7E1E5EED1234ULL;
  /// Stack depth bound; deeper paths set `truncated` and stop appending.
  std::size_t max_hops = 8;
  /// Metadata cost per stacked hop, priced into every subsequent link
  /// crossing's PMA data counters (kIntHopDwords by default).
  std::uint32_t dwords_per_hop = kIntHopDwords;
  IntSink* sink = nullptr;  ///< delivered stacks go here (may be null)
};

struct CreditSimConfig {
  std::size_t credits_per_channel = 2;  ///< buffer slots per (channel, VL)
  unsigned num_vls = 1;
  /// Head-of-line packets blocked for this many steps are dropped (the IB
  /// timeout). 0 disables timeouts: a wedged fabric reports deadlock.
  std::uint64_t timeout_steps = 0;
  std::uint64_t max_steps = 100000;
  /// Invoked at the start of every step; may mutate installed LFTs (e.g.
  /// apply a reconfiguration mid-flight).
  std::function<void(std::uint64_t step)> on_step;
  /// Optional fault plane (src/inject): consulted per link crossing; a
  /// dropped crossing loses the packet and ticks a symbol error at the
  /// receiver. Jitter is ignored — the simulator is step-, not time-based.
  LinkFaultModel* faults = nullptr;
  /// In-band telemetry sampling (off by default: zero overhead).
  IntConfig int_mode;
};

struct CreditSimReport {
  bool deadlocked = false;   ///< wedged with timeouts disabled
  bool exhausted = false;    ///< hit max_steps without settling
  std::uint64_t steps = 0;
  std::size_t injected = 0;
  std::size_t delivered = 0;
  std::size_t dropped_timeout = 0;
  std::size_t dropped_unrouted = 0;  ///< hit a drop entry / wrong delivery
  std::size_t dropped_faulted = 0;   ///< lost on an injected-faulty link
  std::size_t stuck = 0;             ///< packets still in-network at the end
  // --- INT mode (all zero when int_mode.enabled is false). ---
  std::size_t int_sampled = 0;            ///< packets injected with a stack
  std::size_t int_stacks_delivered = 0;   ///< stacks handed to the sink
  std::size_t int_stacks_truncated = 0;   ///< delivered but depth-capped
  /// Sampled packets lost in-network (timeout/unrouted/faulted/stuck): their
  /// stacks are shed and never reach the sink.
  std::size_t int_stacks_dropped = 0;
  /// Metadata dwords that crossed links — the in-band telemetry overhead,
  /// also present in the PMA xmit/rcv data counters.
  std::uint64_t int_overhead_dwords = 0;

  [[nodiscard]] bool all_delivered() const noexcept {
    return !deadlocked && !exhausted && stuck == 0 &&
           dropped_timeout == 0 && dropped_unrouted == 0 &&
           dropped_faulted == 0 && delivered == injected;
  }
};

/// Runs the flows to completion (or deadlock / step budget). As packets
/// move they tick the PMA PortCounters of every port they cross: xmit/rcv
/// data+packets per hop, xmit-wait (and a FECN-style congestion mark) while
/// credit-blocked, discards on timeout, rcv-errors on unroutable arrivals.
CreditSimReport simulate_flows(const Fabric& fabric,
                               const std::vector<FlowSpec>& flows,
                               const CreditSimConfig& config = {});

}  // namespace ibvs::fabric
