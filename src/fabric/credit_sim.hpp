// Credit-based flow simulation: making deadlock (and its resolution)
// observable, not just predictable.
//
// The deadlock analyzer (src/deadlock) proves properties about channel
// dependency graphs; this module *runs* traffic. Channels (directed links)
// have a finite number of credits (buffer slots) per virtual lane; packets
// occupy a slot until the next hop has a free slot. A routing whose CDG has
// a cycle will, under enough load, wedge into a state where no packet can
// move — the deadlock of §VI-C. InfiniBand's answer in the paper ("resolved
// by IB timeouts") is modeled too: with a timeout configured, head-of-line
// packets that have waited too long are dropped, credits free up, and the
// fabric drains.
//
// The simulator walks the *installed* (hardware) LFTs, so tables can be
// mutated mid-flight (via the on_step hook) to reproduce the transient
// old/new coexistence of a live migration.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "fabric/fault.hpp"
#include "ib/fabric.hpp"

namespace ibvs::fabric {

struct FlowSpec {
  NodeId src = kInvalidNode;  ///< source CA endpoint
  Lid dst;                    ///< destination LID
  std::size_t packets = 1;    ///< packets to inject
  std::uint8_t vl = 0;        ///< virtual lane (from the routing's layering)
  /// Payload size in 4-byte dwords (PMA data counters use this unit).
  std::uint32_t packet_dwords = 64;
};

struct CreditSimConfig {
  std::size_t credits_per_channel = 2;  ///< buffer slots per (channel, VL)
  unsigned num_vls = 1;
  /// Head-of-line packets blocked for this many steps are dropped (the IB
  /// timeout). 0 disables timeouts: a wedged fabric reports deadlock.
  std::uint64_t timeout_steps = 0;
  std::uint64_t max_steps = 100000;
  /// Invoked at the start of every step; may mutate installed LFTs (e.g.
  /// apply a reconfiguration mid-flight).
  std::function<void(std::uint64_t step)> on_step;
  /// Optional fault plane (src/inject): consulted per link crossing; a
  /// dropped crossing loses the packet and ticks a symbol error at the
  /// receiver. Jitter is ignored — the simulator is step-, not time-based.
  LinkFaultModel* faults = nullptr;
};

struct CreditSimReport {
  bool deadlocked = false;   ///< wedged with timeouts disabled
  bool exhausted = false;    ///< hit max_steps without settling
  std::uint64_t steps = 0;
  std::size_t injected = 0;
  std::size_t delivered = 0;
  std::size_t dropped_timeout = 0;
  std::size_t dropped_unrouted = 0;  ///< hit a drop entry / wrong delivery
  std::size_t dropped_faulted = 0;   ///< lost on an injected-faulty link
  std::size_t stuck = 0;             ///< packets still in-network at the end

  [[nodiscard]] bool all_delivered() const noexcept {
    return !deadlocked && !exhausted && stuck == 0 &&
           dropped_timeout == 0 && dropped_unrouted == 0 &&
           dropped_faulted == 0 && delivered == injected;
  }
};

/// Runs the flows to completion (or deadlock / step budget). As packets
/// move they tick the PMA PortCounters of every port they cross: xmit/rcv
/// data+packets per hop, xmit-wait (and a FECN-style congestion mark) while
/// credit-blocked, discards on timeout, rcv-errors on unroutable arrivals.
CreditSimReport simulate_flows(const Fabric& fabric,
                               const std::vector<FlowSpec>& flows,
                               const CreditSimConfig& config = {});

}  // namespace ibvs::fabric
