// Link-level fault hook shared by the management and data planes.
//
// The transport (SMP/MAD delivery) and the credit simulator (data packets)
// both move traffic link by link; a LinkFaultModel lets an external fault
// plane — src/inject's deterministic injector — decide, per traversal,
// whether the unit is lost and how much extra latency the link adds. The
// interface lives here (not in src/inject) so fabric-level code depends only
// on the hook, never on the injector: a null model costs one pointer check.
#pragma once

#include "ib/types.hpp"

namespace ibvs::fabric {

class LinkFaultModel {
 public:
  virtual ~LinkFaultModel() = default;

  /// Is this traversal — leaving `from`/`from_port`, arriving at
  /// `to`/`to_port` — lost on the wire? Called once per unit per link per
  /// direction; implementations draw from their own deterministic RNG.
  virtual bool drop_on_link(NodeId from, PortNum from_port, NodeId to,
                            PortNum to_port) = 0;

  /// Extra one-way latency this traversal suffers, in microseconds.
  virtual double jitter_us(NodeId from, PortNum from_port, NodeId to,
                           PortNum to_port) = 0;
};

}  // namespace ibvs::fabric
