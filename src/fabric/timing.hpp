// Timing model for subnet management traffic (§VI-A/VI-B).
//
// The paper's cost equations use two per-SMP terms:
//   k — the time an SMP needs to traverse the network to its switch
//       (switches closer to the SM are reached faster, so k is an average;
//       here it is derived from actual hop counts times a per-hop latency),
//   r — the extra latency of *directed routing*, where every hop must
//       process and rewrite the SMP header (hop pointer / reverse path),
// plus the observation that OpenSM pipelines LFT block updates, dividing
// the serial sum by the SM's pipelining capability.
#pragma once

#include <cstdint>

namespace ibvs::fabric {

struct TimingModel {
  /// Wire+switching latency per hop, microseconds (the per-hop share of k).
  double hop_latency_us = 1.0;
  /// Extra per-hop processing for directed-routed SMPs (the share of r).
  double directed_hop_overhead_us = 4.0;
  /// SM-side processing gap between consecutive SMP issues.
  double sm_issue_gap_us = 0.5;
  /// Outstanding SMPs the SM keeps in flight (1 = fully serial, matching
  /// the "assuming no pipelining" form of eq. (2)).
  unsigned pipeline_depth = 1;
  /// Endpoint response turnaround (Get/Set ack processing at the target).
  double target_processing_us = 2.0;

  // --- Reliable-MAD semantics (OpenSM: MADs are unreliable datagrams; the
  // --- sender arms a response timer and resends a bounded number of times).
  /// How long the SM waits for a response before declaring the attempt lost.
  double response_timeout_us = 100.0;
  /// Resends after the first attempt (OpenSM default: 3 retries).
  unsigned max_mad_retries = 3;
  /// Each successive timeout waits this factor longer (exponential backoff).
  double retry_backoff = 2.0;

  /// One-way latency of an SMP over `hops` hops.
  [[nodiscard]] double smp_latency_us(std::size_t hops,
                                      bool directed) const noexcept {
    const double per_hop =
        hop_latency_us + (directed ? directed_hop_overhead_us : 0.0);
    return static_cast<double>(hops) * per_hop + target_processing_us;
  }

  /// Response timeout armed for attempt `attempt` (0 = the first send).
  [[nodiscard]] double retry_timeout_us(unsigned attempt) const noexcept {
    double timeout = response_timeout_us;
    for (unsigned i = 0; i < attempt; ++i) timeout *= retry_backoff;
    return timeout;
  }

  /// Worst-case wall-clock budget for one reliable MAD over `hops` hops:
  /// every attempt but the last times out, the last completes round-trip.
  /// Step timeouts for migration transactions are derived from this — any
  /// SMP still unanswered past the budget is genuinely lost, not slow.
  [[nodiscard]] double mad_budget_us(std::size_t hops) const noexcept {
    double budget = 0.0;
    for (unsigned a = 0; a < max_mad_retries; ++a) {
      budget += retry_timeout_us(a);
    }
    return budget + 2.0 * smp_latency_us(hops, true) + sm_issue_gap_us;
  }
};

}  // namespace ibvs::fabric
