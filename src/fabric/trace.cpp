#include "fabric/trace.hpp"

#include <algorithm>
#include <set>

#include "util/expect.hpp"

namespace ibvs::fabric {

std::string to_string(TraceStatus status) {
  // Exhaustive switch: -Wswitch flags any enumerator added without a name
  // here (test_trace covers every one). Out-of-range values (bad casts)
  // fall through to an explicit, greppable spelling instead of "?".
  switch (status) {
    case TraceStatus::kDelivered:
      return "delivered";
    case TraceStatus::kDropped:
      return "dropped";
    case TraceStatus::kLoop:
      return "loop";
    case TraceStatus::kNoRoute:
      return "no-route";
    case TraceStatus::kWrongDelivery:
      return "wrong-delivery";
  }
  return "invalid-trace-status(" + std::to_string(static_cast<int>(status)) +
         ")";
}

namespace {

/// Does any port of CA `node` own `lid` (including LMC aliases)?
bool ca_owns_lid(const Node& node, Lid lid) {
  for (PortNum p = 1; p <= node.num_ports(); ++p) {
    if (node.ports[p].owns(lid)) return true;
  }
  return false;
}

}  // namespace

TraceResult trace_unicast(const Fabric& fabric, NodeId src, Lid dest_lid) {
  TraceResult result;
  IBVS_REQUIRE(fabric.node(src).is_ca(), "trace starts at a CA endpoint");
  IBVS_REQUIRE(dest_lid.valid(), "destination LID must be valid");

  result.path.push_back(src);
  if (ca_owns_lid(fabric.node(src), dest_lid)) {
    result.status = TraceStatus::kDelivered;  // loopback
    return result;
  }

  auto hop = fabric.peer(src, 1);
  const std::size_t hop_budget = fabric.size() + 2;
  while (hop) {
    if (++result.hops > hop_budget) {
      result.status = TraceStatus::kLoop;
      return result;
    }
    const auto [here, in_port] = *hop;
    result.path.push_back(here);
    const Node& n = fabric.node(here);

    if (n.is_ca()) {
      result.status = ca_owns_lid(n, dest_lid) ? TraceStatus::kDelivered
                                               : TraceStatus::kWrongDelivery;
      return result;
    }

    if (n.is_vswitch()) {
      // The vSwitch's own LID (shared with the PF) also terminates here —
      // but in practice it belongs to the PF, found below.
      PortNum out = 0;
      for (PortNum p = 1; p <= n.num_ports() && out == 0; ++p) {
        const Port& port = n.ports[p];
        if (p == in_port || !port.connected()) continue;
        const Node& peer = fabric.node(port.peer);
        if (peer.is_ca() && ca_owns_lid(peer, dest_lid)) out = p;
      }
      if (out == 0) {
        const auto uplink = fabric.vswitch_uplink(here);
        if (!uplink || *uplink == in_port) {
          // Arrived from the uplink and nobody local owns the LID.
          result.status = TraceStatus::kDropped;
          return result;
        }
        out = *uplink;
      }
      hop = fabric.peer(here, out);
      continue;
    }

    // Physical switch: hardware LFT.
    if (n.lid() == dest_lid) {
      result.status = TraceStatus::kDelivered;
      return result;
    }
    const PortNum out = n.lft.get(dest_lid);
    if (out == kDropPort) {
      result.status = TraceStatus::kDropped;
      return result;
    }
    if (out == 0 || out > n.num_ports()) {
      // Port 0 without owning the LID (or a bogus port) drops the packet.
      result.status = TraceStatus::kDropped;
      return result;
    }
    hop = fabric.peer(here, out);
  }
  result.status = TraceStatus::kNoRoute;
  return result;
}

std::vector<NodeId> trace_multicast(const Fabric& fabric, NodeId src,
                                    Lid mlid) {
  IBVS_REQUIRE(fabric.node(src).is_ca(), "trace starts at a CA endpoint");
  IBVS_REQUIRE(is_multicast(mlid), "destination must be a multicast LID");

  std::vector<NodeId> delivered;
  // Work items: (node, ingress port). Dedup on the pair to stay loop-safe
  // even against a corrupted (cyclic) tree.
  std::set<std::pair<NodeId, PortNum>> seen;
  std::vector<std::pair<NodeId, PortNum>> queue;

  const auto push = [&](NodeId node, PortNum in_port) {
    if (seen.emplace(node, in_port).second) queue.emplace_back(node, in_port);
  };
  const auto first = fabric.peer(src, 1);
  if (!first) return delivered;
  push(first->first, first->second);

  for (std::size_t head = 0; head < queue.size(); ++head) {
    const auto [here, in_port] = queue[head];
    const Node& n = fabric.node(here);
    if (n.is_ca()) {
      delivered.push_back(here);
      continue;
    }
    if (n.is_vswitch()) {
      // A vSwitch replicates to every connected port except the ingress:
      // local endpoints and the uplink alike. The vHCAs filter copies by
      // membership (not modeled here).
      for (PortNum p = 1; p <= n.num_ports(); ++p) {
        if (p == in_port || !n.ports[p].connected()) continue;
        const auto hop = fabric.peer(here, p);
        if (hop) push(hop->first, hop->second);
      }
      continue;
    }
    // Physical switch: MFT port mask minus the ingress.
    const PortMask mask = n.mft.get(mlid);
    for (PortNum p = 1; p <= n.num_ports(); ++p) {
      if (p == in_port || !mask.test(p) || !n.ports[p].connected()) continue;
      const auto hop = fabric.peer(here, p);
      if (hop) push(hop->first, hop->second);
    }
  }
  std::sort(delivered.begin(), delivered.end());
  delivered.erase(std::unique(delivered.begin(), delivered.end()),
                  delivered.end());
  return delivered;
}

bool all_reach(const Fabric& fabric, const std::vector<NodeId>& sources,
               Lid dest_lid) {
  for (NodeId src : sources) {
    if (!trace_unicast(fabric, src, dest_lid).delivered()) return false;
  }
  return true;
}

}  // namespace ibvs::fabric
