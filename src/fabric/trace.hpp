// Data-path traversal over the *installed* forwarding state.
//
// Follows a unicast packet from a source endpoint to a destination LID using
// the hardware LFTs of physical switches and the functional forwarding of
// vSwitches (local endpoint if the LID is attached, uplink otherwise). This
// is how the tests observe connectivity: before, during, and after a
// reconfiguration — e.g. proving that a migrated VM is reachable again only
// once the reconfigurator's SMPs have landed.
#pragma once

#include <string>
#include <vector>

#include "ib/fabric.hpp"

namespace ibvs::fabric {

enum class TraceStatus {
  kDelivered,
  kDropped,       ///< hit an unrouted LFT entry or the drop port 255
  kLoop,          ///< exceeded the hop budget: forwarding loop
  kNoRoute,       ///< left the cabled network (dangling port)
  kWrongDelivery  ///< arrived at an endpoint that does not own the LID
};

struct TraceResult {
  TraceStatus status = TraceStatus::kNoRoute;
  std::vector<NodeId> path;  ///< nodes visited, source first
  std::size_t hops = 0;

  [[nodiscard]] bool delivered() const noexcept {
    return status == TraceStatus::kDelivered;
  }
};

[[nodiscard]] std::string to_string(TraceStatus status);

/// Traces from CA endpoint `src` (port 1) to `dest_lid`.
TraceResult trace_unicast(const Fabric& fabric, NodeId src, Lid dest_lid);

/// Convenience: do all of `sources` currently reach `dest_lid`?
bool all_reach(const Fabric& fabric, const std::vector<NodeId>& sources,
               Lid dest_lid);

/// Multicast replication trace: injects one packet for `mlid` at CA `src`
/// and follows the installed MFT port masks (physical switches) and the
/// vSwitch replication (all local endpoints + uplink, minus ingress).
/// Returns the CA endpoints that received a copy, sorted. Note that a vHCA
/// filters by group membership in reality; endpoints behind the same
/// vSwitch as a member may appear here although their HCA would discard
/// the copy.
std::vector<NodeId> trace_multicast(const Fabric& fabric, NodeId src,
                                    Lid mlid);

}  // namespace ibvs::fabric
