#include "fabric/transport.hpp"

#include <algorithm>
#include <array>

#include "util/expect.hpp"

namespace ibvs::fabric {

namespace {

/// Telemetry handles used on the per-SMP path, resolved once per *process*
/// rather than once per transport instance: chaos and the benches construct
/// transports by the dozen, and account() must not touch the registry mutex
/// or a lazy-init branch for every send. Children are never deleted, so the
/// references stay valid for the process lifetime.
struct TransportMetrics {
  static constexpr std::size_t kNumAttributes = 9;
  /// The counters tick inside the parallel sweep's send loops, so they are
  /// sharded: increments land in per-thread cells and a registry fold hook
  /// drains them before any export — no cache line is shared on the SMP
  /// path. The latency histogram stays a plain pointer: transports are
  /// driven serially per instance and observe() is off the contended path.
  std::array<telemetry::ShardedCounter, kNumAttributes * 2 * 2> by_shape{};
  telemetry::ShardedCounter undeliverable;
  telemetry::ShardedCounter retries;
  telemetry::ShardedCounter timeouts;
  telemetry::Histogram* latency = nullptr;

  /// Flat index of one (attribute, method, routing) shape.
  static std::size_t shape_index(const Smp& smp) noexcept {
    return (static_cast<std::size_t>(smp.attribute) * 2 +
            (smp.method == SmpMethod::kSet ? 1 : 0)) *
               2 +
           (smp.routing == SmpRouting::kLidRouted ? 1 : 0);
  }

  void fold() noexcept {
    for (auto& c : by_shape) c.fold();
    undeliverable.fold();
    retries.fold();
    timeouts.fold();
  }

  static TransportMetrics& get() {
    static TransportMetrics& metrics = []() -> TransportMetrics& {
      static TransportMetrics m;
      auto& reg = telemetry::Registry::global();
      for (std::size_t a = 0; a < kNumAttributes; ++a) {
        for (const SmpMethod method : {SmpMethod::kGet, SmpMethod::kSet}) {
          for (const SmpRouting routing :
               {SmpRouting::kDirected, SmpRouting::kLidRouted}) {
            Smp smp;
            smp.attribute = static_cast<SmpAttribute>(a);
            smp.method = method;
            smp.routing = routing;
            m.by_shape[shape_index(smp)].bind(reg.counter(
                "ibvs_smp_total",
                {{"attribute", to_string(smp.attribute)},
                 {"method", method == SmpMethod::kSet ? "Set" : "Get"},
                 {"routing",
                  routing == SmpRouting::kDirected ? "directed" : "lid"}},
                "SMPs sent by the SM, by attribute/method/routing"));
          }
        }
      }
      m.undeliverable.bind(reg.counter(
          "ibvs_smp_undeliverable_total", {},
          "SMPs the SM gave up on (no path, or every retry timed out)"));
      m.retries.bind(reg.counter("ibvs_smp_retries_total", {},
                                 "MAD resends after a response timeout"));
      m.timeouts.bind(reg.counter(
          "ibvs_smp_timeouts_total", {},
          "MAD response timeouts (lost request or response)"));
      m.latency = &reg.histogram(
          "ibvs_smp_latency_us", {},
          telemetry::HistogramOptions{.min_bound = 0.0625, .num_buckets = 24},
          "Simulated per-SMP latency under the timing model");
      // Capture the instance, not get(): a hook that re-entered get() could
      // deadlock against a thread still inside this initializer (fold hook
      // mutex vs. the magic-static guard, taken in opposite orders).
      reg.add_fold_hook([&m] { m.fold(); });
      return m;
    }();
    return metrics;
  }
};

}  // namespace

SmpTransport::SmpTransport(Fabric& fabric, NodeId sm_node, TimingModel timing)
    : fabric_(fabric), sm_node_(sm_node), timing_(timing) {}

void SmpTransport::recompute_hops() {
  hops_cache_.assign(fabric_.size(), ~0u);
  via_.assign(fabric_.size(), Via{});
  std::vector<NodeId> queue;
  hops_cache_[sm_node_] = 0;
  queue.push_back(sm_node_);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const NodeId u = queue[head];
    const Node& n = fabric_.node(u);
    // CAs other than the SM host do not forward traffic.
    if (n.is_ca() && u != sm_node_) continue;
    for (PortNum p = 1; p <= n.num_ports(); ++p) {
      const Port& port = n.ports[p];
      if (!port.connected() || hops_cache_[port.peer] != ~0u) continue;
      hops_cache_[port.peer] = hops_cache_[u] + 1;
      via_[port.peer] = Via{u, p, port.peer_port};
      queue.push_back(port.peer);
    }
  }
  hops_valid_ = true;
}

bool SmpTransport::collect_path(NodeId target) {
  scratch_path_.clear();
  NodeId at = target;
  while (at != sm_node_ && at != kInvalidNode) {
    const Via& via = via_[at];
    if (via.parent == kInvalidNode) return false;  // stale cache entry
    scratch_path_.push_back(
        PathLink{via.parent, via.parent_port, at, via.ingress});
    at = via.parent;
  }
  std::reverse(scratch_path_.begin(), scratch_path_.end());
  return true;
}

void SmpTransport::run_attempts(const Smp& smp, SendOutcome& outcome) {
  const bool directed = smp.routing == SmpRouting::kDirected;
  const double clean_latency_us =
      timing_.smp_latency_us(outcome.hops, directed);
  const unsigned max_attempts =
      fault_model_ == nullptr ? 1 : 1 + timing_.max_mad_retries;

  outcome.attempts = 0;
  outcome.timeouts = 0;
  outcome.latency_us = 0.0;
  for (unsigned attempt = 0; attempt < max_attempts; ++attempt) {
    ++outcome.attempts;
    double jitter_us = 0.0;
    bool lost = false;
    // Request direction: SM -> target. Each traversal ticks the PMA
    // counters of both ports; a dropped traversal shows up as a symbol
    // error at the receiver (the corrupted MAD never reaches the node).
    for (const PathLink& link : scratch_path_) {
      const Port& egress = fabric_.node(link.parent).ports[link.parent_port];
      const Port& ingress = fabric_.node(link.child).ports[link.child_port];
      egress.counters.add_xmit(kMadDwords);
      ingress.counters.add_rcv(kMadDwords);
      if (fault_model_ != nullptr &&
          fault_model_->drop_on_link(link.parent, link.parent_port,
                                     link.child, link.child_port)) {
        ingress.counters.add_symbol_errors();
        lost = true;
        break;
      }
      if (fault_model_ != nullptr) {
        jitter_us += fault_model_->jitter_us(link.parent, link.parent_port,
                                             link.child, link.child_port);
      }
    }
    // Response direction: target -> SM, same links in reverse.
    if (!lost) {
      for (auto it = scratch_path_.rbegin(); it != scratch_path_.rend();
           ++it) {
        const Port& egress = fabric_.node(it->child).ports[it->child_port];
        const Port& ingress =
            fabric_.node(it->parent).ports[it->parent_port];
        egress.counters.add_xmit(kMadDwords);
        ingress.counters.add_rcv(kMadDwords);
        if (fault_model_ != nullptr &&
            fault_model_->drop_on_link(it->child, it->child_port, it->parent,
                                       it->parent_port)) {
          ingress.counters.add_symbol_errors();
          lost = true;
          break;
        }
        if (fault_model_ != nullptr) {
          jitter_us += fault_model_->jitter_us(it->child, it->child_port,
                                               it->parent, it->parent_port);
        }
      }
    }
    if (!lost) {
      outcome.delivered = true;
      outcome.latency_us += clean_latency_us + jitter_us;
      return;
    }
    // Attempt lost (either direction): the SM learns nothing until the
    // response timer fires, then backs off and resends.
    ++outcome.timeouts;
    outcome.latency_us += timing_.retry_timeout_us(attempt);
  }
  outcome.delivered = false;  // retries exhausted
}

std::optional<std::size_t> SmpTransport::hops_to(NodeId target) {
  if (!hops_valid_) recompute_hops();
  IBVS_REQUIRE(target < fabric_.size(), "target out of range");
  if (hops_cache_[target] == ~0u) return std::nullopt;
  return hops_cache_[target];
}

SendOutcome SmpTransport::account(const Smp& smp,
                                  std::optional<std::size_t> hops) {
  TransportMetrics& metrics = TransportMetrics::get();
  if (smp_tap_ != nullptr) smp_tap_->push_back(smp);
  counters_.record(smp);
  metrics.by_shape[TransportMetrics::shape_index(smp)].inc();
  SendOutcome outcome;
  if (!hops) {  // no path at all: counted, zero progress
    ++counters_.undeliverable;
    metrics.undeliverable.inc();
    return outcome;
  }
  outcome.hops = *hops;
  if (!hops_valid_) recompute_hops();
  const bool have_path =
      smp.target < via_.size() && collect_path(smp.target);
  if (have_path) {
    run_attempts(smp, outcome);
  } else {
    // Target is the SM node itself (empty path) or the cache is stale:
    // deliver at the modeled latency without per-link accounting.
    outcome.delivered = true;
    outcome.latency_us = timing_.smp_latency_us(
        *hops, smp.routing == SmpRouting::kDirected);
  }
  if (outcome.attempts > 1) {
    counters_.retries += outcome.attempts - 1;
    metrics.retries.inc(outcome.attempts - 1);
  }
  if (outcome.timeouts > 0) {
    counters_.timeouts += outcome.timeouts;
    metrics.timeouts.inc(outcome.timeouts);
  }
  if (!outcome.delivered) {
    // Retries exhausted: the time spent waiting still accrues.
    ++counters_.undeliverable;
    metrics.undeliverable.inc();
  }
  metrics.latency->observe(outcome.latency_us);

  if (in_batch_) {
    // Window of `pipeline_depth` outstanding SMPs: a new SMP is issued
    // `sm_issue_gap_us` after the previous issue, but no earlier than the
    // completion of the SMP occupying its window slot.
    double issue = batch_clock_us_;
    if (inflight_.size() == timing_.pipeline_depth) {
      issue = std::max(issue, inflight_[inflight_next_]);
    }
    const double done = issue + outcome.latency_us;
    if (inflight_.size() < timing_.pipeline_depth) {
      inflight_.push_back(done);
    } else {
      inflight_[inflight_next_] = done;
      inflight_next_ = (inflight_next_ + 1) % inflight_.size();
    }
    batch_clock_us_ = issue + timing_.sm_issue_gap_us;
    batch_makespan_us_ = std::max(batch_makespan_us_, done);
  } else {
    total_us_ += outcome.latency_us + timing_.sm_issue_gap_us;
  }
  return outcome;
}

SendOutcome SmpTransport::send_lft_block(NodeId target_switch,
                                         std::uint32_t block,
                                         std::span<const PortNum> data,
                                         SmpRouting routing) {
  Node& sw = fabric_.node(target_switch);
  IBVS_REQUIRE(sw.is_physical_switch(),
               "LFT SMPs target physical switches");
  Smp smp;
  smp.method = SmpMethod::kSet;
  smp.attribute = SmpAttribute::kLinearFwdTable;
  smp.routing = routing;
  smp.target = target_switch;
  smp.block = block;
  const auto outcome = account(smp, hops_to(target_switch));
  if (outcome.delivered) sw.lft.set_block(block, data);
  return outcome;
}

SendOutcome SmpTransport::send_mft_slice(NodeId target_switch,
                                         std::uint32_t block,
                                         std::uint8_t position,
                                         SmpRouting routing) {
  IBVS_REQUIRE(fabric_.node(target_switch).is_physical_switch(),
               "MFT SMPs target physical switches");
  Smp smp;
  smp.method = SmpMethod::kSet;
  smp.attribute = SmpAttribute::kMulticastFwdTable;
  smp.routing = routing;
  smp.target = target_switch;
  smp.block = block;
  smp.target_port = position;
  return account(smp, hops_to(target_switch));
}

SendOutcome SmpTransport::send_vf_lid_assign(NodeId hypervisor_endpoint,
                                             PortNum vf_port, Lid lid,
                                             SmpRouting routing) {
  Smp smp;
  smp.method = SmpMethod::kSet;
  smp.attribute = SmpAttribute::kVSwitchLidAssign;
  smp.routing = routing;
  smp.target = hypervisor_endpoint;
  smp.target_port = vf_port;
  (void)lid;  // the LID value itself is applied by the caller via LidMap
  return account(smp, hops_to(hypervisor_endpoint));
}

SendOutcome SmpTransport::send_guid_info(NodeId endpoint, PortNum port,
                                         Guid vguid, SmpRouting routing) {
  Smp smp;
  smp.method = SmpMethod::kSet;
  smp.attribute = SmpAttribute::kGuidInfo;
  smp.routing = routing;
  smp.target = endpoint;
  smp.target_port = port;
  (void)vguid;
  return account(smp, hops_to(endpoint));
}

SendOutcome SmpTransport::send_port_info_set(NodeId node, PortNum port,
                                             SmpRouting routing) {
  Smp smp;
  smp.method = SmpMethod::kSet;
  smp.attribute = SmpAttribute::kPortInfo;
  smp.routing = routing;
  smp.target = node;
  smp.target_port = port;
  return account(smp, hops_to(node));
}

SendOutcome SmpTransport::send_discovery_get(NodeId node,
                                             SmpAttribute attribute,
                                             std::size_t hops_override) {
  Smp smp;
  smp.method = SmpMethod::kGet;
  smp.attribute = attribute;
  smp.routing = SmpRouting::kDirected;  // discovery precedes LFTs
  smp.target = node;
  return account(smp, hops_override);
}

SendOutcome SmpTransport::send_perf_get(NodeId node, PortNum port,
                                        SmpAttribute attribute,
                                        SmpRouting routing) {
  IBVS_REQUIRE(attribute == SmpAttribute::kPortCounters ||
                   attribute == SmpAttribute::kPortCountersExtended,
               "send_perf_get carries PMA attributes only");
  Smp smp;
  smp.method = SmpMethod::kGet;
  smp.attribute = attribute;
  smp.routing = routing;
  smp.target = node;
  smp.target_port = port;
  return account(smp, hops_to(node));
}

SendOutcome SmpTransport::send_perf_clear(NodeId node, PortNum port,
                                          SmpRouting routing) {
  Smp smp;
  smp.method = SmpMethod::kSet;
  smp.attribute = SmpAttribute::kPortCounters;
  smp.routing = routing;
  smp.target = node;
  smp.target_port = port;
  const auto outcome = account(smp, hops_to(node));
  if (outcome.delivered) {
    const Node& n = fabric_.node(node);
    IBVS_REQUIRE(port < n.ports.size(), "perf clear port out of range");
    n.ports[port].counters.clear_classic();
  }
  return outcome;
}

void SmpTransport::begin_batch() {
  IBVS_REQUIRE(!in_batch_, "batch already open");
  in_batch_ = true;
  batch_clock_us_ = 0.0;
  batch_makespan_us_ = 0.0;
  inflight_.clear();
  inflight_next_ = 0;
}

double SmpTransport::end_batch() {
  IBVS_REQUIRE(in_batch_, "no batch open");
  in_batch_ = false;
  total_us_ += batch_makespan_us_;
  return batch_makespan_us_;
}

}  // namespace ibvs::fabric
