// SMP transport simulator (the ibsim role).
//
// Carries management packets from the SM node to switches and endpoints,
// accounting for every SMP (counts feed Table I) and for its latency under
// the TimingModel (feeds the reconfiguration-time benches). Set-LFT SMPs
// actually install the block into the target switch's hardware table, so the
// simulated fabric's data path (see trace.hpp) reflects exactly what an SM
// has distributed — including the transient states mid-reconfiguration.
//
// MADs are unreliable datagrams. With a LinkFaultModel attached (see
// fault.hpp) the transport models OpenSM's answer to that: every send arms
// a response timeout, lost attempts are resent with exponential backoff,
// and the timeouts are priced into the same batched timing model, so a
// degraded fabric is visibly slower to reconfigure — not just lossier.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "fabric/fault.hpp"
#include "fabric/timing.hpp"
#include "ib/fabric.hpp"
#include "ib/smp.hpp"
#include "telemetry/metrics.hpp"

namespace ibvs::fabric {

/// Result of one logical send. With a fault model attached one send may
/// cost several wire attempts; `latency_us` then includes the response
/// timeouts spent before the attempt that got through (or gave up).
struct SendOutcome {
  bool delivered = false;
  std::size_t hops = 0;
  double latency_us = 0.0;
  std::uint32_t attempts = 1;  ///< wire attempts (1 + resends)
  std::uint32_t timeouts = 0;  ///< attempts whose response timer fired
};

class SmpTransport {
 public:
  /// `sm_node` is the CA endpoint (or switch) hosting the subnet manager.
  SmpTransport(Fabric& fabric, NodeId sm_node, TimingModel timing = {});

  [[nodiscard]] NodeId sm_node() const noexcept { return sm_node_; }
  [[nodiscard]] const TimingModel& timing() const noexcept { return timing_; }
  void set_timing(const TimingModel& timing) noexcept { timing_ = timing; }

  /// Must be called after cabling changes so hop counts are recomputed.
  void invalidate_topology() noexcept { hops_valid_ = false; }

  /// Attaches a fault model consulted per link traversal of every MAD
  /// (request and response direction). While attached, sends follow
  /// OpenSM's unreliable-datagram semantics: a lost traversal costs a
  /// response timeout, the SM resends up to `timing().max_mad_retries`
  /// times with exponential backoff, and a send whose every attempt is
  /// lost comes back undelivered. nullptr detaches (the default: every
  /// MAD arrives on the first attempt, as before).
  void set_fault_model(LinkFaultModel* model) noexcept {
    fault_model_ = model;
  }
  [[nodiscard]] LinkFaultModel* fault_model() const noexcept {
    return fault_model_;
  }

  /// Test hook: while attached, every accounted SMP is appended to `*sink`
  /// in send order. The parallel-sweep determinism tests compare these
  /// streams between single- and multi-threaded runs. nullptr detaches.
  void set_smp_tap(std::vector<Smp>* sink) noexcept { smp_tap_ = sink; }

  /// Hop count from the SM node to `target` (through switches/vSwitches).
  [[nodiscard]] std::optional<std::size_t> hops_to(NodeId target);

  // --- Typed sends. Every call accounts one SMP. ---

  /// Installs one LFT block on a physical switch.
  SendOutcome send_lft_block(NodeId target_switch, std::uint32_t block,
                             std::span<const PortNum> data,
                             SmpRouting routing = SmpRouting::kDirected);

  /// Accounts one MFT (block, position) write on a physical switch. The
  /// multicast manager installs the masks afterwards; this models the MAD
  /// traffic and its latency.
  SendOutcome send_mft_slice(NodeId target_switch, std::uint32_t block,
                             std::uint8_t position,
                             SmpRouting routing = SmpRouting::kDirected);

  /// Sets/unsets the LID of a VF at a hypervisor (§V-C step a).
  SendOutcome send_vf_lid_assign(NodeId hypervisor_endpoint, PortNum vf_port,
                                 Lid lid,
                                 SmpRouting routing = SmpRouting::kDirected);

  /// Programs a vGUID (alias GUID) on an HCA port.
  SendOutcome send_guid_info(NodeId endpoint, PortNum port, Guid vguid,
                             SmpRouting routing = SmpRouting::kDirected);

  /// Assigns a LID to a port via PortInfo (LID programming during sweep).
  SendOutcome send_port_info_set(NodeId node, PortNum port,
                                 SmpRouting routing = SmpRouting::kDirected);

  /// Discovery Get (NodeInfo / PortInfo / SwitchInfo).
  SendOutcome send_discovery_get(NodeId node, SmpAttribute attribute,
                                 std::size_t hops_override);

  /// PMA Get(PortCounters / PortCountersExtended) for one port of `node` —
  /// the PerfMgr polling path. PMA MADs are GMPs riding QP1, so they
  /// default to LID routing like normal traffic.
  SendOutcome send_perf_get(NodeId node, PortNum port,
                            SmpAttribute attribute,
                            SmpRouting routing = SmpRouting::kLidRouted);

  /// PMA Set(PortCounters): clears the classic counter block of (node,
  /// port) when delivered (the saturation-avoidance clear).
  SendOutcome send_perf_clear(NodeId node, PortNum port,
                              SmpRouting routing = SmpRouting::kLidRouted);

  // --- Batching: models OpenSM's pipelined LFT distribution. ---
  /// Begins a batch; subsequent sends contribute to the batch completion
  /// time computed with `pipeline_depth` outstanding SMPs.
  void begin_batch();
  /// Ends the batch and returns its makespan in microseconds.
  double end_batch();

  [[nodiscard]] const SmpCounters& counters() const noexcept {
    return counters_;
  }
  void reset_counters() noexcept { counters_ = {}; }

  /// Total simulated microseconds spent in sends (batch-aware).
  [[nodiscard]] double total_time_us() const noexcept { return total_us_; }
  void reset_time() noexcept { total_us_ = 0.0; }

 private:
  /// One directed step of the SM->target BFS path.
  struct PathLink {
    NodeId parent = kInvalidNode;
    PortNum parent_port = 0;  ///< egress at the parent (towards the target)
    NodeId child = kInvalidNode;
    PortNum child_port = 0;  ///< ingress at the child
  };

  SendOutcome account(const Smp& smp, std::optional<std::size_t> hops);
  void recompute_hops();
  /// Collects the BFS path SM -> `target` into `scratch_path_` (SM-side
  /// link first). Returns false on a stale cache entry.
  bool collect_path(NodeId target);
  /// Runs the wire attempts for one MAD over `scratch_path_`, ticking PMA
  /// traffic counters per traversal and symbol errors where the fault
  /// model drops. Fills delivery, attempts, timeouts and latency.
  void run_attempts(const Smp& smp, SendOutcome& outcome);

  Fabric& fabric_;
  NodeId sm_node_;
  TimingModel timing_;
  SmpCounters counters_;
  double total_us_ = 0.0;
  LinkFaultModel* fault_model_ = nullptr;
  std::vector<Smp>* smp_tap_ = nullptr;  ///< see set_smp_tap()
  std::vector<PathLink> scratch_path_;  ///< reused per send

  // Hop cache (BFS from the SM node over all cabled nodes), plus the BFS
  // tree itself so MAD traffic can be attributed to the ports it crosses.
  struct Via {
    NodeId parent = kInvalidNode;
    PortNum parent_port = 0;  ///< egress at the parent
    PortNum ingress = 0;      ///< ingress here
  };
  std::vector<std::uint32_t> hops_cache_;
  std::vector<Via> via_;
  bool hops_valid_ = false;

  // Batch state: completion times of the in-flight window.
  bool in_batch_ = false;
  double batch_clock_us_ = 0.0;    ///< next issue time
  double batch_makespan_us_ = 0.0;
  std::vector<double> inflight_;   ///< completion times, ring buffer
  std::size_t inflight_next_ = 0;
};

}  // namespace ibvs::fabric
