#include "ib/fabric.hpp"

#include <algorithm>

#include "util/expect.hpp"

namespace ibvs {

NodeId Fabric::add_switch(std::string_view name, std::size_t num_ports,
                          SwitchFlavor flavor) {
  IBVS_REQUIRE(num_ports >= 1 && num_ports <= 254,
               "switch port count must be in [1, 254]");
  Node n;
  n.kind = NodeKind::kSwitch;
  n.flavor = flavor;
  n.name = std::string(name);
  n.guid = allocate_guid();
  n.ports.resize(num_ports + 1);
  nodes_.push_back(std::move(n));
  return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId Fabric::add_ca(std::string_view name, std::size_t num_ports,
                      CaRole role) {
  IBVS_REQUIRE(num_ports >= 1 && num_ports <= 254,
               "CA port count must be in [1, 254]");
  Node n;
  n.kind = NodeKind::kCa;
  n.role = role;
  n.name = std::string(name);
  n.guid = allocate_guid();
  n.ports.resize(num_ports + 1);
  nodes_.push_back(std::move(n));
  return static_cast<NodeId>(nodes_.size() - 1);
}

void Fabric::connect(NodeId a, PortNum port_a, NodeId b, PortNum port_b) {
  IBVS_REQUIRE(a != b, "cannot cable a node to itself");
  Node& na = node(a);
  Node& nb = node(b);
  IBVS_REQUIRE(port_a >= 1 && port_a <= na.num_ports(),
               "port A out of range");
  IBVS_REQUIRE(port_b >= 1 && port_b <= nb.num_ports(),
               "port B out of range");
  IBVS_REQUIRE(!na.ports[port_a].connected(), "port A already cabled");
  IBVS_REQUIRE(!nb.ports[port_b].connected(), "port B already cabled");
  na.ports[port_a].peer = b;
  na.ports[port_a].peer_port = port_b;
  nb.ports[port_b].peer = a;
  nb.ports[port_b].peer_port = port_a;
}

void Fabric::disconnect(NodeId id, PortNum port) {
  Node& n = node(id);
  IBVS_REQUIRE(port >= 1 && port <= n.num_ports(), "port out of range");
  Port& p = n.ports[port];
  IBVS_REQUIRE(p.connected(), "port not cabled");
  Node& peer_node = node(p.peer);
  Port& q = peer_node.ports[p.peer_port];
  q.peer = kInvalidNode;
  q.peer_port = 0;
  p.peer = kInvalidNode;
  p.peer_port = 0;
  // Both ends see the link go down (LinkDownedCounter).
  p.counters.add_link_downed();
  q.counters.add_link_downed();
}

std::vector<CableSpec> Fabric::cables_of(NodeId id) const {
  const Node& n = node(id);
  std::vector<CableSpec> result;
  for (PortNum p = 1; p <= n.num_ports(); ++p) {
    const Port& port = n.ports[p];
    if (!port.connected()) continue;
    result.push_back(CableSpec{id, p, port.peer, port.peer_port});
  }
  return result;
}

std::vector<CableSpec> Fabric::sever_all(NodeId id) {
  std::vector<CableSpec> cables = cables_of(id);
  for (const CableSpec& c : cables) disconnect(c.a, c.port_a);
  return cables;
}

void Fabric::restore_cables(const std::vector<CableSpec>& cables) {
  for (const CableSpec& c : cables) connect(c.a, c.port_a, c.b, c.port_b);
}

std::optional<PortNum> Fabric::free_port(NodeId id) const {
  const Node& n = node(id);
  for (PortNum p = 1; p <= n.num_ports(); ++p) {
    if (!n.ports[p].connected()) return p;
  }
  return std::nullopt;
}

const Node& Fabric::node(NodeId id) const {
  IBVS_REQUIRE(id < nodes_.size(), "node id out of range");
  return nodes_[id];
}

Node& Fabric::node(NodeId id) {
  IBVS_REQUIRE(id < nodes_.size(), "node id out of range");
  return nodes_[id];
}

std::vector<NodeId> Fabric::switch_ids(bool physical_only) const {
  std::vector<NodeId> result;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    if (!n.is_switch()) continue;
    if (physical_only && n.flavor != SwitchFlavor::kPhysical) continue;
    result.push_back(id);
  }
  return result;
}

std::vector<NodeId> Fabric::ca_ids() const {
  std::vector<NodeId> result;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id].is_ca()) result.push_back(id);
  }
  return result;
}

std::size_t Fabric::num_switches(bool physical_only) const {
  return static_cast<std::size_t>(std::count_if(
      nodes_.begin(), nodes_.end(), [&](const Node& n) {
        return n.is_switch() &&
               (!physical_only || n.flavor == SwitchFlavor::kPhysical);
      }));
}

std::size_t Fabric::num_cas() const {
  return static_cast<std::size_t>(std::count_if(
      nodes_.begin(), nodes_.end(),
      [](const Node& n) { return n.is_ca(); }));
}

void Fabric::set_lid(NodeId id, PortNum port, Lid lid) {
  Node& n = node(id);
  IBVS_REQUIRE(port < n.ports.size(), "port out of range");
  IBVS_REQUIRE(!n.is_switch() || port == 0,
               "switch LIDs live on the management port 0");
  n.ports[port].lid = lid;
}

void Fabric::set_lmc(NodeId id, PortNum port, std::uint8_t lmc) {
  Node& n = node(id);
  IBVS_REQUIRE(port < n.ports.size(), "port out of range");
  IBVS_REQUIRE(lmc <= 7, "LMC is a 3-bit field");
  Port& p = n.ports[port];
  IBVS_REQUIRE(!p.lid.valid() || (p.lid.value() & ((1u << lmc) - 1)) == 0,
               "base LID must be 2^lmc aligned");
  p.lmc = lmc;
}

std::optional<std::pair<NodeId, PortNum>> Fabric::peer(NodeId id,
                                                       PortNum port) const {
  const Node& n = node(id);
  if (port < 1 || port > n.num_ports()) return std::nullopt;
  const Port& p = n.ports[port];
  if (!p.connected()) return std::nullopt;
  return std::make_pair(p.peer, p.peer_port);
}

std::optional<PortNum> Fabric::vswitch_uplink(NodeId vswitch) const {
  const Node& n = node(vswitch);
  IBVS_REQUIRE(n.is_vswitch(), "not a vSwitch");
  for (PortNum p = 1; p <= n.num_ports(); ++p) {
    const Port& port = n.ports[p];
    if (port.connected() && node(port.peer).is_switch()) return p;
  }
  return std::nullopt;
}

std::optional<std::pair<NodeId, PortNum>> Fabric::physical_attachment(
    NodeId ca, PortNum port) const {
  const Node& n = node(ca);
  IBVS_REQUIRE(n.is_ca(), "physical_attachment expects a CA endpoint");
  auto hop = peer(ca, port);
  // Walk through at most one vSwitch layer (nested vSwitches do not exist in
  // the architecture, but a bounded loop keeps this robust).
  for (int depth = 0; depth < 4 && hop; ++depth) {
    const Node& via = node(hop->first);
    if (via.is_physical_switch()) return hop;
    if (via.is_vswitch()) {
      auto up = vswitch_uplink(hop->first);
      if (!up) return std::nullopt;
      hop = peer(hop->first, *up);
      continue;
    }
    return std::nullopt;  // CA cabled to a CA: not attached to the network
  }
  return hop && node(hop->first).is_physical_switch() ? hop : std::nullopt;
}

std::optional<NodeId> Fabric::find_ca_by_guid(Guid guid) const {
  if (!guid.valid()) return std::nullopt;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    if (!n.is_ca()) continue;
    // Alias first: a vGUID on a VF shadows nothing (alias values are
    // allocated from the same sequential pool as manufacturer GUIDs).
    if (n.alias_guid == guid || n.guid == guid) return id;
  }
  return std::nullopt;
}

void Fabric::validate() const {
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    IBVS_ENSURE(!n.ports.empty(), "node without port array: " + n.name);
    for (PortNum p = 1; p <= n.num_ports(); ++p) {
      const Port& port = n.ports[p];
      if (!port.connected()) continue;
      IBVS_ENSURE(port.peer < nodes_.size(),
                  "dangling cable from " + n.name);
      const Node& peer_node = nodes_[port.peer];
      IBVS_ENSURE(port.peer_port >= 1 &&
                      port.peer_port <= peer_node.num_ports(),
                  "peer port out of range from " + n.name);
      const Port& back = peer_node.ports[port.peer_port];
      IBVS_ENSURE(back.peer == id && back.peer_port == p,
                  "asymmetric cable between " + n.name + " and " +
                      peer_node.name);
    }
  }
}

}  // namespace ibvs
