// The subnet: nodes (switches and channel adapters), ports, and links.
//
// Switches come in two flavours. *Physical* switches are real crossbars with
// a hardware LFT that the SM programs via SMPs — every SMP count in the paper
// refers to these. *vSwitches* are the SR-IOV vSwitch entities of §IV-B: the
// HCA presents itself to the subnet as a tiny switch with the PF and the VFs
// hanging off it. A vSwitch has no LFT of its own here; it forwards
// functionally (towards a local endpoint if the destination LID is attached,
// otherwise out of the uplink), mirroring the fact that all VFs share the
// PF's uplink — the property the paper's reconfiguration method exploits.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "ib/lft.hpp"
#include "ib/mft.hpp"
#include "ib/port_counters.hpp"
#include "ib/types.hpp"

namespace ibvs {

enum class NodeKind : std::uint8_t { kSwitch, kCa };

/// Distinguishes what a channel adapter endpoint represents.
enum class CaRole : std::uint8_t {
  kPhysical,  ///< a plain (non-virtualized) HCA port
  kPf,        ///< SR-IOV physical function, used by the hypervisor
  kVf,        ///< SR-IOV virtual function, assigned to a VM
};

enum class SwitchFlavor : std::uint8_t {
  kPhysical,  ///< real switch with a hardware LFT
  kVSwitch,   ///< SR-IOV vSwitch emulated inside an HCA
};

/// One port of a node. Ports are numbered 1..N; switch port 0 is the
/// management port (it carries the switch LID but never a cable).
struct Port {
  NodeId peer = kInvalidNode;
  PortNum peer_port = 0;
  Lid lid;  ///< base LID of this port (CA ports); unused for switch external ports
  /// LID Mask Control: the port answers to 2^lmc consecutive LIDs starting
  /// at `lid` (the base must be aligned). §V-A compares this classic
  /// multipathing feature against prepopulated VF LIDs, which provide the
  /// same alternative-path benefit without the sequentiality requirement.
  std::uint8_t lmc = 0;
  /// PMA counter block. Hardware counters tick even on read-only views of
  /// the fabric (credit_sim takes const Fabric&), hence mutable.
  mutable PortCounters counters;

  [[nodiscard]] bool connected() const noexcept { return peer != kInvalidNode; }

  /// Does this port answer to `l` (base LID or any LMC alias)?
  [[nodiscard]] bool owns(Lid l) const noexcept {
    if (!lid.valid() || !l.valid()) return false;
    const std::uint32_t base = lid.value();
    return l.value() >= base && l.value() < base + (1u << lmc);
  }
};

struct Node {
  NodeKind kind = NodeKind::kCa;
  SwitchFlavor flavor = SwitchFlavor::kPhysical;  // switches only
  CaRole role = CaRole::kPhysical;                // CAs only
  std::string name;
  Guid guid;
  /// Alias (virtual) GUID, used on VFs: it migrates with the VM while the
  /// manufacturer `guid` stays with the hardware function.
  Guid alias_guid;
  /// ports[0] is the management port; external ports are 1..num_ports.
  std::vector<Port> ports;
  /// Installed (hardware) LFT. Physical switches only.
  Lft lft;
  /// Installed (hardware) multicast forwarding table. Physical switches.
  Mft mft;

  [[nodiscard]] bool is_switch() const noexcept {
    return kind == NodeKind::kSwitch;
  }
  [[nodiscard]] bool is_physical_switch() const noexcept {
    return is_switch() && flavor == SwitchFlavor::kPhysical;
  }
  [[nodiscard]] bool is_vswitch() const noexcept {
    return is_switch() && flavor == SwitchFlavor::kVSwitch;
  }
  [[nodiscard]] bool is_ca() const noexcept { return kind == NodeKind::kCa; }

  /// Number of external ports (1..num_ports usable).
  [[nodiscard]] std::size_t num_ports() const noexcept {
    return ports.empty() ? 0 : ports.size() - 1;
  }

  /// Switch LID lives on port 0; CA LID on port 1 (single-port CAs).
  [[nodiscard]] Lid lid() const noexcept {
    if (is_switch()) return ports.empty() ? Lid{} : ports[0].lid;
    return ports.size() > 1 ? ports[1].lid : Lid{};
  }
};

/// One physical cable, described from `a`'s side. Topology deltas record
/// cables in this form so an exact cabling can be severed and later restored
/// (rollback of a detach, revival of a killed switch).
struct CableSpec {
  NodeId a = kInvalidNode;
  PortNum port_a = 0;
  NodeId b = kInvalidNode;
  PortNum port_b = 0;
};

/// Mutable container for the whole subnet.
class Fabric {
 public:
  Fabric() = default;

  /// Adds a switch with `num_ports` external ports. Returns its NodeId.
  NodeId add_switch(std::string_view name, std::size_t num_ports,
                    SwitchFlavor flavor = SwitchFlavor::kPhysical);

  /// Adds a channel adapter with `num_ports` external ports (usually 1).
  NodeId add_ca(std::string_view name, std::size_t num_ports = 1,
                CaRole role = CaRole::kPhysical);

  /// Cables port `port_a` of `a` to port `port_b` of `b`. Both must be free.
  void connect(NodeId a, PortNum port_a, NodeId b, PortNum port_b);

  /// Removes the cable attached to (node, port), both ends.
  void disconnect(NodeId node, PortNum port);

  /// All cables attached to `id`, described from `id`'s side, in ascending
  /// port order.
  [[nodiscard]] std::vector<CableSpec> cables_of(NodeId id) const;

  /// Disconnects every cable on `id` and returns them (ascending port order)
  /// so the caller can restore the exact cabling later. Topology-delta hook:
  /// detach_switch severs with this and keeps the list in its journal record
  /// for byte-identical rollback.
  std::vector<CableSpec> sever_all(NodeId id);

  /// Re-plugs cables previously returned by sever_all/cables_of. Every
  /// endpoint pair must currently be free.
  void restore_cables(const std::vector<CableSpec>& cables);

  /// Lowest-numbered unconnected external port of `id`, if any.
  [[nodiscard]] std::optional<PortNum> free_port(NodeId id) const;

  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }
  [[nodiscard]] const Node& node(NodeId id) const;
  [[nodiscard]] Node& node(NodeId id);

  [[nodiscard]] std::vector<NodeId> switch_ids(
      bool physical_only = true) const;
  [[nodiscard]] std::vector<NodeId> ca_ids() const;

  [[nodiscard]] std::size_t num_switches(bool physical_only = true) const;
  [[nodiscard]] std::size_t num_cas() const;

  /// Sets/clears the LID of (node, port). For switches use port 0.
  void set_lid(NodeId id, PortNum port, Lid lid);

  /// Sets the LMC of a CA port (its base LID must be 2^lmc aligned).
  void set_lmc(NodeId id, PortNum port, std::uint8_t lmc);

  /// (node, port) on the far side of the cable, if any.
  [[nodiscard]] std::optional<std::pair<NodeId, PortNum>> peer(
      NodeId id, PortNum port) const;

  /// First physical switch reached from a CA port, walking through any
  /// vSwitch in between. Returns the switch and its ingress-facing port
  /// (i.e. the physical switch port the traffic for this CA arrives from).
  /// nullopt if the endpoint is not attached to the physical network.
  [[nodiscard]] std::optional<std::pair<NodeId, PortNum>> physical_attachment(
      NodeId ca, PortNum port = 1) const;

  /// The vSwitch uplink: the external port of `vswitch` cabled to a physical
  /// switch (or to another switch). Exactly one is expected.
  [[nodiscard]] std::optional<PortNum> vswitch_uplink(NodeId vswitch) const;

  /// Checks structural consistency (symmetric cables, port ranges). Throws
  /// std::logic_error with a description on the first violation.
  void validate() const;

  /// CA node owning `guid` either as manufacturer GUID or as alias (vGUID).
  [[nodiscard]] std::optional<NodeId> find_ca_by_guid(Guid guid) const;

  /// Next unassigned manufacturer GUID (deterministic, sequential).
  Guid allocate_guid() noexcept {
    return Guid{next_guid_++};
  }

 private:
  std::vector<Node> nodes_;
  std::uint64_t next_guid_ = 0x0002C90300000001ULL;  // Mellanox-style OUI
};

}  // namespace ibvs
