#include "ib/lft.hpp"

#include <algorithm>

#include "util/expect.hpp"

namespace ibvs {

// kAllDropWord spells kDropPort in every byte lane.
static_assert(kDropPort == 0xFF, "all-drop word pattern assumes 0xFF");
static_assert(sizeof(PortNum) == 1, "word-at-a-time scans assume byte entries");
static_assert(kLftBlockSize % sizeof(std::uint64_t) == 0,
              "blocks must be whole words");

Lft::Lft(Lid top_lid) { ensure_capacity(top_lid); }

void Lft::ensure_capacity(Lid top_lid) {
  const std::size_t needed_blocks = lft_blocks_for(top_lid);
  if (needed_blocks * kLftBlockSize <= entries_.size()) return;
  entries_.resize(needed_blocks * kLftBlockSize, kDropPort);
  dirty_words_.resize((needed_blocks + 63) / 64, 0);
}

void Lft::set(Lid lid, PortNum port) {
  IBVS_REQUIRE(lid.valid() && lid <= kTopmostUnicastLid,
               "LFT entries exist only for unicast LIDs");
  ensure_capacity(lid);
  PortNum& entry = entries_[lid.value()];
  if (entry == port) return;
  entry = port;
  mark_dirty(lft_block_of(lid));
}

std::span<const PortNum> Lft::block(std::size_t block_index) const {
  IBVS_REQUIRE(block_index < block_count(), "block out of range");
  return {entries_.data() + block_index * kLftBlockSize, kLftBlockSize};
}

void Lft::set_block(std::size_t block_index, std::span<const PortNum> data) {
  IBVS_REQUIRE(data.size() == kLftBlockSize, "LFT block is 64 entries");
  const Lid top{static_cast<std::uint16_t>(
      std::min<std::size_t>((block_index + 1) * kLftBlockSize - 1,
                            kTopmostUnicastLid.value()))};
  ensure_capacity(top);
  auto* dst = entries_.data() + block_index * kLftBlockSize;
  if (std::equal(data.begin(), data.end(), dst)) return;
  std::copy(data.begin(), data.end(), dst);
  mark_dirty(block_index);
}

bool Lft::block_differs(const Lft& other, std::size_t block_index) const {
  const bool here = block_index < block_count();
  const bool there = block_index < other.block_count();
  if (!here && !there) return false;
  const auto all_drop = [](const PortNum* p) {
    std::uint64_t acc = kAllDropWord;
    for (std::size_t w = 0; w < kWordsPerBlock; ++w) {
      acc &= load_word(p + w * sizeof(std::uint64_t));
    }
    return acc == kAllDropWord;
  };
  if (!here) {
    return !all_drop(other.entries_.data() + block_index * kLftBlockSize);
  }
  if (!there) {
    return !all_drop(entries_.data() + block_index * kLftBlockSize);
  }
  const PortNum* a = entries_.data() + block_index * kLftBlockSize;
  const PortNum* b = other.entries_.data() + block_index * kLftBlockSize;
  std::uint64_t acc = 0;
  for (std::size_t w = 0; w < kWordsPerBlock; ++w) {
    acc |= load_word(a + w * sizeof(std::uint64_t)) ^
           load_word(b + w * sizeof(std::uint64_t));
  }
  return acc != 0;
}

std::vector<std::size_t> Lft::diff_blocks(const Lft& other) const {
  std::vector<std::size_t> result;
  for_each_diff_block(other, [&](std::size_t b) { result.push_back(b); });
  return result;
}

std::vector<std::size_t> Lft::dirty_blocks() const {
  std::vector<std::size_t> result;
  for_each_dirty_block([&](std::size_t b) { result.push_back(b); });
  return result;
}

void Lft::clear_dirty() {
  std::fill(dirty_words_.begin(), dirty_words_.end(), 0);
}

void Lft::clear() {
  std::fill(entries_.begin(), entries_.end(), kDropPort);
  // Mark exactly the existing blocks dirty; bits past block_count() must
  // stay clear or a later ensure_capacity() would inherit phantom dirt.
  std::fill(dirty_words_.begin(), dirty_words_.end(), ~std::uint64_t{0});
  const std::size_t tail = block_count() % 64;
  if (tail != 0 && !dirty_words_.empty()) {
    dirty_words_.back() = (std::uint64_t{1} << tail) - 1;
  }
}

std::size_t Lft::routed_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(entries_.begin(), entries_.end(),
                    [](PortNum p) { return p != kDropPort; }));
}

bool Lft::operator==(const Lft& other) const {
  const std::size_t blocks = std::max(block_count(), other.block_count());
  for (std::size_t b = 0; b < blocks; ++b) {
    if (block_differs(other, b)) return false;
  }
  return true;
}

}  // namespace ibvs
