#include "ib/lft.hpp"

#include <algorithm>

#include "util/expect.hpp"

namespace ibvs {

Lft::Lft(Lid top_lid) { ensure_capacity(top_lid); }

void Lft::ensure_capacity(Lid top_lid) {
  const std::size_t needed_blocks = lft_blocks_for(top_lid);
  if (needed_blocks * kLftBlockSize <= entries_.size()) return;
  entries_.resize(needed_blocks * kLftBlockSize, kDropPort);
  dirty_.resize(needed_blocks, false);
}

void Lft::set(Lid lid, PortNum port) {
  IBVS_REQUIRE(lid.valid() && lid <= kTopmostUnicastLid,
               "LFT entries exist only for unicast LIDs");
  ensure_capacity(lid);
  PortNum& entry = entries_[lid.value()];
  if (entry == port) return;
  entry = port;
  dirty_[lft_block_of(lid)] = true;
}

std::span<const PortNum> Lft::block(std::size_t block_index) const {
  IBVS_REQUIRE(block_index < block_count(), "block out of range");
  return {entries_.data() + block_index * kLftBlockSize, kLftBlockSize};
}

void Lft::set_block(std::size_t block_index, std::span<const PortNum> data) {
  IBVS_REQUIRE(data.size() == kLftBlockSize, "LFT block is 64 entries");
  const Lid top{static_cast<std::uint16_t>(
      std::min<std::size_t>((block_index + 1) * kLftBlockSize - 1,
                            kTopmostUnicastLid.value()))};
  ensure_capacity(top);
  auto* dst = entries_.data() + block_index * kLftBlockSize;
  if (std::equal(data.begin(), data.end(), dst)) return;
  std::copy(data.begin(), data.end(), dst);
  dirty_[block_index] = true;
}

bool Lft::block_differs(const Lft& other, std::size_t block_index) const {
  const bool here = block_index < block_count();
  const bool there = block_index < other.block_count();
  if (!here && !there) return false;
  const auto all_drop = [](std::span<const PortNum> data) {
    return std::all_of(data.begin(), data.end(),
                       [](PortNum p) { return p == kDropPort; });
  };
  if (!here) return !all_drop(other.block(block_index));
  if (!there) return !all_drop(block(block_index));
  const auto a = block(block_index);
  const auto b = other.block(block_index);
  return !std::equal(a.begin(), a.end(), b.begin());
}

std::vector<std::size_t> Lft::diff_blocks(const Lft& other) const {
  std::vector<std::size_t> result;
  for_each_diff_block(other, [&](std::size_t b) { result.push_back(b); });
  return result;
}

std::vector<std::size_t> Lft::dirty_blocks() const {
  std::vector<std::size_t> result;
  for_each_dirty_block([&](std::size_t b) { result.push_back(b); });
  return result;
}

void Lft::clear_dirty() {
  std::fill(dirty_.begin(), dirty_.end(), false);
}

void Lft::clear() {
  std::fill(entries_.begin(), entries_.end(), kDropPort);
  std::fill(dirty_.begin(), dirty_.end(), true);
}

std::size_t Lft::routed_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(entries_.begin(), entries_.end(),
                    [](PortNum p) { return p != kDropPort; }));
}

bool Lft::operator==(const Lft& other) const {
  const std::size_t blocks = std::max(block_count(), other.block_count());
  for (std::size_t b = 0; b < blocks; ++b) {
    if (block_differs(other, b)) return false;
  }
  return true;
}

}  // namespace ibvs
