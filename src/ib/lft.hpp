// Linear Forwarding Table (LFT) of an IB switch.
//
// Maps every unicast LID to the egress port that traffic for that LID takes.
// Hardware reads/writes LFTs in blocks of 64 entries; one SMP updates one
// block. The reconfiguration cost analysis of the paper (§VI) is entirely in
// terms of which blocks change, so this class tracks per-block dirty state
// and can diff itself against a previous snapshot block-by-block.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "ib/types.hpp"

namespace ibvs {

class Lft {
 public:
  Lft() = default;
  /// Creates a table able to route LIDs 0..top_lid, all entries kDropPort.
  explicit Lft(Lid top_lid);

  /// Grows (never shrinks) the table to cover `top_lid`. New entries drop.
  void ensure_capacity(Lid top_lid);

  /// Number of LIDs covered (always a multiple of kLftBlockSize).
  [[nodiscard]] std::size_t capacity() const noexcept {
    return entries_.size();
  }
  [[nodiscard]] std::size_t block_count() const noexcept {
    return entries_.size() / kLftBlockSize;
  }

  /// Egress port for `lid`; kDropPort when unrouted or out of range.
  [[nodiscard]] PortNum get(Lid lid) const noexcept {
    const std::size_t i = lid.value();
    return i < entries_.size() ? entries_[i] : kDropPort;
  }

  /// Routes `lid` out of `port`, growing the table if needed and marking the
  /// containing block dirty when the value actually changes.
  void set(Lid lid, PortNum port);

  /// One 64-entry block, for SMP payload construction.
  [[nodiscard]] std::span<const PortNum> block(std::size_t block_index) const;

  /// Overwrites one block (the receive side of an LFT SMP).
  void set_block(std::size_t block_index, std::span<const PortNum> data);

  /// True if block contents differ from `other` in block `block_index`
  /// (missing blocks compare as all-kDropPort).
  [[nodiscard]] bool block_differs(const Lft& other,
                                   std::size_t block_index) const;

  /// Indices of blocks that differ from `other`, i.e. the SMPs a distribution
  /// pass must send to bring `other` up to date with *this.
  [[nodiscard]] std::vector<std::size_t> diff_blocks(const Lft& other) const;

  /// Calls `f(block_index)` in ascending order for every block that differs
  /// from `other` — the allocation-free form of diff_blocks(), used by the
  /// sweep's hot diff phase (one call per switch per sweep).
  template <typename F>
  void for_each_diff_block(const Lft& other, F&& f) const {
    const std::size_t blocks = std::max(block_count(), other.block_count());
    for (std::size_t b = 0; b < blocks; ++b) {
      if (block_differs(other, b)) f(b);
    }
  }

  /// Blocks touched by set() since the last clear_dirty(). Sorted, unique.
  [[nodiscard]] std::vector<std::size_t> dirty_blocks() const;

  /// Calls `f(block_index)` in ascending order for every dirty block, without
  /// materializing the index vector (push_dirty_blocks runs per migration).
  template <typename F>
  void for_each_dirty_block(F&& f) const {
    for (std::size_t b = 0; b < dirty_.size(); ++b) {
      if (dirty_[b]) f(b);
    }
  }

  void clear_dirty();

  /// Resets every entry to kDropPort without changing capacity.
  void clear();

  /// Number of entries currently routing somewhere (not kDropPort).
  [[nodiscard]] std::size_t routed_count() const noexcept;

  [[nodiscard]] bool operator==(const Lft& other) const;

  /// Raw storage view (read-only), used by the deadlock analyzer's hot loops.
  [[nodiscard]] std::span<const PortNum> raw() const noexcept {
    return entries_;
  }

 private:
  std::vector<PortNum> entries_;
  std::vector<bool> dirty_;  // one flag per block
};

}  // namespace ibvs
