// Linear Forwarding Table (LFT) of an IB switch.
//
// Maps every unicast LID to the egress port that traffic for that LID takes.
// Hardware reads/writes LFTs in blocks of 64 entries; one SMP updates one
// block. The reconfiguration cost analysis of the paper (§VI) is entirely in
// terms of which blocks change, so this class tracks per-block dirty state
// and can diff itself against a previous snapshot block-by-block.
//
// Storage is flat and word-addressable: entries live in one contiguous
// arena whose size is always a multiple of the 64-entry block (so a block
// is exactly eight aligned std::uint64_t words), and the per-block dirty
// mask is a packed word bitset. The sweep's hot diff phase XOR-scans eight
// entries per load instead of touching bytes (or std::vector<bool> bits)
// one at a time.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "ib/types.hpp"

namespace ibvs {

class Lft {
 public:
  /// One 64-entry block spans eight 64-bit words (PortNum is one byte).
  static constexpr std::size_t kWordsPerBlock =
      kLftBlockSize / sizeof(std::uint64_t);
  /// A word of eight kDropPort entries — what absent table space diffs as.
  static constexpr std::uint64_t kAllDropWord =
      ~std::uint64_t{0};  // kDropPort == 0xFF in every byte

  Lft() = default;
  /// Creates a table able to route LIDs 0..top_lid, all entries kDropPort.
  explicit Lft(Lid top_lid);

  /// Grows (never shrinks) the table to cover `top_lid`. New entries drop.
  void ensure_capacity(Lid top_lid);

  /// Number of LIDs covered (always a multiple of kLftBlockSize).
  [[nodiscard]] std::size_t capacity() const noexcept {
    return entries_.size();
  }
  [[nodiscard]] std::size_t block_count() const noexcept {
    return entries_.size() / kLftBlockSize;
  }

  /// Egress port for `lid`; kDropPort when unrouted or out of range.
  [[nodiscard]] PortNum get(Lid lid) const noexcept {
    const std::size_t i = lid.value();
    return i < entries_.size() ? entries_[i] : kDropPort;
  }

  /// Routes `lid` out of `port`, growing the table if needed and marking the
  /// containing block dirty when the value actually changes.
  void set(Lid lid, PortNum port);

  /// One 64-entry block, for SMP payload construction.
  [[nodiscard]] std::span<const PortNum> block(std::size_t block_index) const;

  /// Overwrites one block (the receive side of an LFT SMP).
  void set_block(std::size_t block_index, std::span<const PortNum> data);

  /// True if block contents differ from `other` in block `block_index`
  /// (missing blocks compare as all-kDropPort).
  [[nodiscard]] bool block_differs(const Lft& other,
                                   std::size_t block_index) const;

  /// Indices of blocks that differ from `other`, i.e. the SMPs a distribution
  /// pass must send to bring `other` up to date with *this.
  [[nodiscard]] std::vector<std::size_t> diff_blocks(const Lft& other) const;

  /// Calls `f(block_index)` in ascending order for every block that differs
  /// from `other` — the allocation-free form of diff_blocks(), used by the
  /// sweep's hot diff phase (one call per switch per sweep). The scan is
  /// word-at-a-time: eight entries per XOR, blocks beyond the shorter table
  /// per AND against the all-drop pattern.
  template <typename F>
  void for_each_diff_block(const Lft& other, F&& f) const {
    const std::size_t blocks_a = block_count();
    const std::size_t blocks_b = other.block_count();
    const std::size_t common = std::min(blocks_a, blocks_b);
    for (std::size_t b = 0; b < common; ++b) {
      const PortNum* pa = entries_.data() + b * kLftBlockSize;
      const PortNum* pb = other.entries_.data() + b * kLftBlockSize;
      std::uint64_t acc = 0;
      for (std::size_t w = 0; w < kWordsPerBlock; ++w) {
        acc |= load_word(pa + w * sizeof(std::uint64_t)) ^
               load_word(pb + w * sizeof(std::uint64_t));
      }
      if (acc != 0) f(b);
    }
    // Tail of the longer table: a block differs unless it is all-drop.
    const Lft& longer = blocks_a > blocks_b ? *this : other;
    for (std::size_t b = common; b < longer.block_count(); ++b) {
      const PortNum* p = longer.entries_.data() + b * kLftBlockSize;
      std::uint64_t acc = kAllDropWord;
      for (std::size_t w = 0; w < kWordsPerBlock; ++w) {
        acc &= load_word(p + w * sizeof(std::uint64_t));
      }
      if (acc != kAllDropWord) f(b);
    }
  }

  /// Blocks touched by set() since the last clear_dirty(). Sorted, unique.
  [[nodiscard]] std::vector<std::size_t> dirty_blocks() const;

  /// Calls `f(block_index)` in ascending order for every dirty block — an
  /// allocation-free scan of the packed word bitset (push_dirty_blocks runs
  /// per migration): whole words of clean blocks cost one load each.
  template <typename F>
  void for_each_dirty_block(F&& f) const {
    const std::size_t blocks = block_count();
    for (std::size_t w = 0; w < dirty_words_.size(); ++w) {
      std::uint64_t word = dirty_words_[w];
      while (word != 0) {
        const std::size_t bit =
            static_cast<std::size_t>(std::countr_zero(word));
        const std::size_t b = w * 64 + bit;
        if (b >= blocks) return;
        f(b);
        word &= word - 1;  // clear the lowest set bit
      }
    }
  }

  void clear_dirty();

  /// Resets every entry to kDropPort without changing capacity.
  void clear();

  /// Number of entries currently routing somewhere (not kDropPort).
  [[nodiscard]] std::size_t routed_count() const noexcept;

  [[nodiscard]] bool operator==(const Lft& other) const;

  /// Raw storage view (read-only), used by the deadlock analyzer's hot loops.
  [[nodiscard]] std::span<const PortNum> raw() const noexcept {
    return entries_;
  }

 private:
  /// Aliasing-safe 64-bit load of eight consecutive entries (compiles to a
  /// single mov on every target that matters).
  [[nodiscard]] static std::uint64_t load_word(const PortNum* p) noexcept {
    std::uint64_t w;
    std::memcpy(&w, p, sizeof(w));
    return w;
  }

  void mark_dirty(std::size_t block) noexcept {
    dirty_words_[block / 64] |= std::uint64_t{1} << (block % 64);
  }

  std::vector<PortNum> entries_;            ///< flat arena, block-aligned size
  std::vector<std::uint64_t> dirty_words_;  ///< one bit per block, packed
};

}  // namespace ibvs
