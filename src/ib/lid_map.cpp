#include "ib/lid_map.hpp"

#include "util/expect.hpp"

namespace ibvs {

Lid LidMap::assign_next(Fabric& fabric, NodeId node, PortNum port) {
  for (std::uint32_t v = next_hint_; v <= kTopmostUnicastLid.value(); ++v) {
    if (!owners_[v].valid()) {
      const Lid lid{static_cast<std::uint16_t>(v)};
      assign(fabric, node, port, lid);
      next_hint_ = static_cast<std::uint16_t>(v + 1);
      return lid;
    }
  }
  // The hint may have skipped over released LIDs; do one full scan before
  // declaring exhaustion.
  for (std::uint32_t v = 1; v < next_hint_; ++v) {
    if (!owners_[v].valid()) {
      const Lid lid{static_cast<std::uint16_t>(v)};
      assign(fabric, node, port, lid);
      return lid;
    }
  }
  throw std::runtime_error("unicast LID space exhausted (49151 LIDs in use)");
}

void LidMap::assign(Fabric& fabric, NodeId node, PortNum port, Lid lid) {
  IBVS_REQUIRE(lid.valid() && lid <= kTopmostUnicastLid,
               "LID must be unicast");
  IBVS_REQUIRE(!owners_[lid.value()].valid(), "LID already assigned");
  set_owner(fabric, lid, Owner{node, port});
  ++count_;
  if (lid > top_lid_) top_lid_ = lid;
}

Lid LidMap::assign_lmc_block(Fabric& fabric, NodeId node, PortNum port,
                             std::uint8_t lmc) {
  IBVS_REQUIRE(lmc <= 7, "LMC is a 3-bit field");
  const std::uint32_t width = 1u << lmc;
  for (std::uint32_t base = width;  // LID 0 is reserved, so start aligned >0
       base + width - 1 <= kTopmostUnicastLid.value(); base += width) {
    bool free = true;
    for (std::uint32_t v = base; v < base + width && free; ++v) {
      if (owners_[v].valid()) free = false;
    }
    if (!free) continue;
    // All aliases share the owner; the port carries the base + LMC.
    for (std::uint32_t v = base; v < base + width; ++v) {
      owners_[v] = Owner{node, port};
      ++count_;
      if (Lid{static_cast<std::uint16_t>(v)} > top_lid_) {
        top_lid_ = Lid{static_cast<std::uint16_t>(v)};
      }
    }
    const Lid base_lid{static_cast<std::uint16_t>(base)};
    fabric.set_lid(node, port, base_lid);
    fabric.set_lmc(node, port, lmc);
    return base_lid;
  }
  throw std::runtime_error("no aligned free LID block of width " +
                           std::to_string(width));
}

void LidMap::release(Fabric& fabric, Lid lid) {
  IBVS_REQUIRE(lid.valid() && assigned(lid), "LID not assigned");
  const Owner old = owners_[lid.value()];
  fabric.set_lid(old.node, old.port, kInvalidLid);
  owners_[lid.value()] = Owner{};
  --count_;
  if (lid.value() < next_hint_) next_hint_ = lid.value();
  if (lid == top_lid_) recompute_top();
}

void LidMap::move(Fabric& fabric, Lid lid, NodeId node, PortNum port) {
  IBVS_REQUIRE(lid.valid() && assigned(lid), "LID not assigned");
  const Owner old = owners_[lid.value()];
  // Clear the old port only if it still carries this LID: during a swap the
  // counterpart move may already have written the other LID there.
  if (fabric.node(old.node).ports[old.port].lid == lid) {
    fabric.set_lid(old.node, old.port, kInvalidLid);
  }
  set_owner(fabric, lid, Owner{node, port});
}

void LidMap::set_owner(Fabric& fabric, Lid lid, Owner owner) {
  fabric.set_lid(owner.node, owner.port, lid);
  owners_[lid.value()] = owner;
}

void LidMap::recompute_top() noexcept {
  std::uint32_t v = top_lid_.value();
  while (v > 0 && !owners_[v].valid()) --v;
  top_lid_ = Lid{static_cast<std::uint16_t>(v)};
}

std::vector<Lid> LidMap::assigned_lids() const {
  std::vector<Lid> result;
  result.reserve(count_);
  for (std::uint32_t v = 1; v <= top_lid_.value(); ++v) {
    if (owners_[v].valid()) result.push_back(Lid{static_cast<std::uint16_t>(v)});
  }
  return result;
}

std::optional<std::pair<NodeId, PortNum>> LidMap::attachment(
    const Fabric& fabric, Lid lid) const {
  const Owner who = owner(lid);
  if (!who.valid()) return std::nullopt;
  const Node& n = fabric.node(who.node);
  if (n.is_physical_switch()) return std::make_pair(who.node, PortNum{0});
  if (n.is_vswitch()) {
    // A vSwitch shares the PF's uplink; its LID attaches where the uplink
    // lands on the physical network.
    auto up = fabric.vswitch_uplink(who.node);
    if (!up) return std::nullopt;
    auto hop = fabric.peer(who.node, *up);
    if (!hop || !fabric.node(hop->first).is_physical_switch())
      return std::nullopt;
    return hop;
  }
  return fabric.physical_attachment(who.node, who.port);
}

}  // namespace ibvs
