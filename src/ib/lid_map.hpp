// LID address space management.
//
// Tracks which LID is assigned to which (node, port), supports sequential
// and free-list allocation, and answers the queries the routing engines and
// the vSwitch reconfigurators need: where does a LID physically attach, and
// what is the topmost LID in use (which determines the number of LFT blocks
// per switch — the `m` of eq. (2), see Table I's "Min LFT Blocks/Switch").
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "ib/fabric.hpp"
#include "ib/types.hpp"

namespace ibvs {

class LidMap {
 public:
  struct Owner {
    NodeId node = kInvalidNode;
    PortNum port = 0;

    [[nodiscard]] bool valid() const noexcept { return node != kInvalidNode; }
    bool operator==(const Owner&) const = default;
  };

  LidMap() : owners_(kUnicastLidCount + 1) {}

  /// Assigns the lowest free unicast LID to (node, port) and mirrors it into
  /// the fabric. Throws when the unicast space is exhausted.
  Lid assign_next(Fabric& fabric, NodeId node, PortNum port);

  /// Assigns a specific LID (must be free).
  void assign(Fabric& fabric, NodeId node, PortNum port, Lid lid);

  /// Assigns an aligned block of 2^lmc consecutive LIDs to (node, port) —
  /// the LID Mask Control multipathing of §V-A. Returns the base LID and
  /// programs the port's LMC. The alignment requirement is exactly the
  /// inflexibility the prepopulated-VF scheme escapes: its alternative
  /// paths come from *independent* LIDs that may sit anywhere.
  Lid assign_lmc_block(Fabric& fabric, NodeId node, PortNum port,
                       std::uint8_t lmc);

  /// Releases a LID (e.g. a VM was destroyed) and clears it in the fabric.
  void release(Fabric& fabric, Lid lid);

  /// Moves an assigned LID to a new (node, port) — the address migration of
  /// §V-C step (a). The LID value itself does not change.
  void move(Fabric& fabric, Lid lid, NodeId node, PortNum port);

  [[nodiscard]] Owner owner(Lid lid) const noexcept {
    const std::size_t i = lid.value();
    return i < owners_.size() ? owners_[i] : Owner{};
  }
  [[nodiscard]] bool assigned(Lid lid) const noexcept {
    return owner(lid).valid();
  }

  /// Largest LID currently assigned (invalid Lid when empty).
  [[nodiscard]] Lid top_lid() const noexcept { return top_lid_; }

  /// Number of assigned unicast LIDs ("LIDs consumed" in Table I).
  [[nodiscard]] std::size_t count() const noexcept { return count_; }

  /// LFT blocks each switch minimally needs: ceil over the topmost LID.
  [[nodiscard]] std::size_t min_lft_blocks() const noexcept {
    return top_lid_.valid() ? lft_blocks_for(top_lid_) : 0;
  }

  /// All assigned LIDs in increasing order.
  [[nodiscard]] std::vector<Lid> assigned_lids() const;

  /// Physical switch + ingress port where traffic for `lid` must be
  /// delivered. For a switch LID that is the switch itself (port 0).
  [[nodiscard]] std::optional<std::pair<NodeId, PortNum>> attachment(
      const Fabric& fabric, Lid lid) const;

 private:
  void set_owner(Fabric& fabric, Lid lid, Owner owner);
  void recompute_top() noexcept;

  std::vector<Owner> owners_;  // indexed by LID value
  Lid top_lid_;
  std::size_t count_ = 0;
  std::uint16_t next_hint_ = 1;  // lowest possibly-free LID
};

}  // namespace ibvs
