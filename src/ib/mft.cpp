#include "ib/mft.hpp"

#include <algorithm>
#include <set>

#include "util/expect.hpp"

namespace ibvs {

std::vector<PortNum> PortMask::ports() const {
  std::vector<PortNum> result;
  for (unsigned w = 0; w < 4; ++w) {
    std::uint64_t bits = words[w];
    while (bits != 0) {
      const unsigned bit = static_cast<unsigned>(__builtin_ctzll(bits));
      result.push_back(static_cast<PortNum>(w * 64 + bit));
      bits &= bits - 1;
    }
  }
  return result;
}

PortMask Mft::get(Lid mlid) const {
  IBVS_REQUIRE(is_multicast(mlid), "MFT entries exist only for MLIDs");
  const auto it = entries_.find(mlid.value());
  return it == entries_.end() ? PortMask{} : it->second;
}

void Mft::set(Lid mlid, const PortMask& mask) {
  IBVS_REQUIRE(is_multicast(mlid), "MFT entries exist only for MLIDs");
  if (mask.empty()) {
    entries_.erase(mlid.value());
  } else {
    entries_[mlid.value()] = mask;
  }
}

std::vector<std::pair<std::uint32_t, std::uint8_t>> Mft::diff_blocks(
    const Mft& other, PortNum max_port) const {
  const std::uint8_t positions = static_cast<std::uint8_t>(
      (static_cast<std::size_t>(max_port) + kMftPositionPorts) /
      kMftPositionPorts);
  // Collect the MLIDs present on either side.
  std::set<std::uint16_t> mlids;
  for (const auto& [mlid, mask] : entries_) mlids.insert(mlid);
  for (const auto& [mlid, mask] : other.entries_) mlids.insert(mlid);

  std::set<std::pair<std::uint32_t, std::uint8_t>> dirty;
  for (const std::uint16_t mlid : mlids) {
    const PortMask a = get(Lid{mlid});
    const PortMask b = other.get(Lid{mlid});
    if (a == b) continue;
    const std::uint32_t block = mft_block_of(Lid{mlid});
    for (std::uint8_t p = 0; p < positions; ++p) {
      if (a.position_bits(p) != b.position_bits(p)) {
        dirty.emplace(block, p);
      }
    }
  }
  return {dirty.begin(), dirty.end()};
}

}  // namespace ibvs
