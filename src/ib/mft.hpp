// Multicast Forwarding Table (MFT) of an IB switch.
//
// Multicast LIDs live in 0xC000..0xFFFE. For each MLID a switch holds a
// *port mask*: an arriving multicast packet is replicated out of every
// masked port except the one it came in on. Hardware reads/writes MFTs in
// blocks of 32 MLIDs, and because the mask is wider than a MAD payload,
// each block is split into *positions* of 16 ports — one SMP programs one
// (block, position) pair, which is the granularity the distribution code
// accounts.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ib/types.hpp"

namespace ibvs {

/// First multicast LID.
inline constexpr std::uint16_t kFirstMulticastLid = 0xC000;
/// Last assignable multicast LID (0xFFFF is the permissive LID).
inline constexpr std::uint16_t kLastMulticastLid = 0xFFFE;
/// MLIDs per MFT block.
inline constexpr std::size_t kMftBlockSize = 32;
/// Ports per MFT position.
inline constexpr std::size_t kMftPositionPorts = 16;

[[nodiscard]] constexpr bool is_multicast(Lid lid) noexcept {
  return lid.value() >= kFirstMulticastLid &&
         lid.value() <= kLastMulticastLid;
}

/// 256-bit port mask (ports 0..255).
struct PortMask {
  std::uint64_t words[4] = {0, 0, 0, 0};

  void set(PortNum port) noexcept {
    words[port >> 6] |= 1ull << (port & 63);
  }
  void clear(PortNum port) noexcept {
    words[port >> 6] &= ~(1ull << (port & 63));
  }
  [[nodiscard]] bool test(PortNum port) const noexcept {
    return (words[port >> 6] >> (port & 63)) & 1;
  }
  [[nodiscard]] bool empty() const noexcept {
    return (words[0] | words[1] | words[2] | words[3]) == 0;
  }
  bool operator==(const PortMask&) const = default;

  /// The 16-bit slice of the mask covering `position` (ports 16p..16p+15).
  [[nodiscard]] std::uint16_t position_bits(std::size_t position) const {
    const std::size_t bit = position * kMftPositionPorts;
    return static_cast<std::uint16_t>(words[bit >> 6] >> (bit & 63));
  }

  [[nodiscard]] std::vector<PortNum> ports() const;
};

class Mft {
 public:
  /// Replication mask for `mlid` (empty mask when unprogrammed).
  [[nodiscard]] PortMask get(Lid mlid) const;

  /// Programs the mask (an empty mask erases the entry).
  void set(Lid mlid, const PortMask& mask);

  void clear() { entries_.clear(); }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  /// (block, position) pairs that differ from `other` — the SMPs needed to
  /// bring `other` in sync with *this. `max_port` bounds the positions
  /// worth comparing (ceil((max_port+1)/16)).
  [[nodiscard]] std::vector<std::pair<std::uint32_t, std::uint8_t>>
  diff_blocks(const Mft& other, PortNum max_port) const;

  [[nodiscard]] const std::unordered_map<std::uint16_t, PortMask>& entries()
      const noexcept {
    return entries_;
  }

 private:
  std::unordered_map<std::uint16_t, PortMask> entries_;  // keyed by MLID
};

[[nodiscard]] constexpr std::uint32_t mft_block_of(Lid mlid) noexcept {
  return (mlid.value() - kFirstMulticastLid) / kMftBlockSize;
}

}  // namespace ibvs
