#include "ib/port_counters.hpp"

namespace ibvs {

bool PortCounters::any_classic_saturated() const noexcept {
  return xmit_data == kMax32 || rcv_data == kMax32 ||
         xmit_pkts == kMax32 || rcv_pkts == kMax32 || xmit_wait == kMax32 ||
         symbol_errors == kMax16 || xmit_discards == kMax16 ||
         rcv_errors == kMax16 || congestion_marks == kMax16 ||
         link_downed == kMax8 || link_error_recovery == kMax8;
}

void PortCounters::clear_classic() noexcept {
  xmit_data = 0;
  rcv_data = 0;
  xmit_pkts = 0;
  rcv_pkts = 0;
  xmit_wait = 0;
  symbol_errors = 0;
  xmit_discards = 0;
  rcv_errors = 0;
  congestion_marks = 0;
  link_downed = 0;
  link_error_recovery = 0;
}

}  // namespace ibvs
