// Per-port performance counters (the PMA's PortCounters attribute).
//
// Every port of every node — switch external ports, CA/PF/VF ports, vSwitch
// ports — carries a hardware counter block that increments as a side effect
// of traffic moving through the simulated fabric (credit_sim data packets,
// SmpTransport management datagrams). Two families coexist, as on real HCAs:
//
//  * Classic counters (IBA PortCounters): narrow fields that *saturate* at
//    their width instead of wrapping — 32 bits for data/packet/wait counts,
//    16 bits for error tallies, 8 bits for link-downed. Once pegged they
//    stay pegged until a PMA Set(PortCounters) clears them, which is why a
//    PerfMgr must poll often enough and clear proactively.
//
//  * Extended counters (IBA PortCountersExtended): 64-bit data/packet
//    counts that for all practical purposes never overflow. Error counters
//    have no extended variant, exactly as in the specification.
//
// Data counters are in dwords (4-byte units), the IBA convention.
#pragma once

#include <cstdint>

namespace ibvs {

/// One IB MAD is 256 bytes = 64 dwords; management traffic is accounted at
/// this size on every port it traverses.
inline constexpr std::uint32_t kMadDwords = 64;

/// Default size of one in-band telemetry (INT) hop record carried in a data
/// packet: 8 bytes = 2 dwords. Like MADs, INT metadata is accounted in the
/// data counters of every port it traverses — a packet that stacked h hop
/// records costs `payload + h * kIntHopDwords` dwords on its next link, so
/// telemetry load is attributed to the same PMA counters as tenant traffic.
inline constexpr std::uint32_t kIntHopDwords = 2;

struct PortCounters {
  // --- Classic (saturating at field width). ---
  std::uint32_t xmit_data = 0;     ///< dwords transmitted
  std::uint32_t rcv_data = 0;      ///< dwords received
  std::uint32_t xmit_pkts = 0;
  std::uint32_t rcv_pkts = 0;
  /// Ticks a head-of-line packet had data to send but no credit to send it.
  std::uint32_t xmit_wait = 0;
  std::uint16_t symbol_errors = 0;   ///< physical-layer symbol errors
  std::uint16_t xmit_discards = 0;   ///< packets dropped before transmit
  std::uint16_t rcv_errors = 0;      ///< unroutable / misdelivered arrivals
  std::uint16_t congestion_marks = 0;  ///< FECN-style marks applied here
  std::uint8_t link_downed = 0;      ///< times the link went down
  std::uint8_t link_error_recovery = 0;  ///< times the link retrained/came back
  // --- Extended (64-bit, non-saturating). ---
  std::uint64_t ext_xmit_data = 0;
  std::uint64_t ext_rcv_data = 0;
  std::uint64_t ext_xmit_pkts = 0;
  std::uint64_t ext_rcv_pkts = 0;

  static constexpr std::uint32_t kMax32 = 0xFFFFFFFFu;
  static constexpr std::uint16_t kMax16 = 0xFFFFu;
  static constexpr std::uint8_t kMax8 = 0xFFu;

  /// Saturating add at the field's width (the classic-counter semantics).
  template <typename T>
  static void sat_add(T& field, std::uint64_t delta) noexcept {
    const std::uint64_t max = static_cast<T>(~T{0});
    const std::uint64_t sum = field + delta;
    field = static_cast<T>(sum < field || sum > max ? max : sum);
  }

  void add_xmit(std::uint32_t dwords, std::uint32_t pkts = 1) noexcept {
    sat_add(xmit_data, dwords);
    sat_add(xmit_pkts, pkts);
    ext_xmit_data += dwords;
    ext_xmit_pkts += pkts;
  }
  void add_rcv(std::uint32_t dwords, std::uint32_t pkts = 1) noexcept {
    sat_add(rcv_data, dwords);
    sat_add(rcv_pkts, pkts);
    ext_rcv_data += dwords;
    ext_rcv_pkts += pkts;
  }
  void add_xmit_wait(std::uint32_t ticks = 1) noexcept {
    sat_add(xmit_wait, ticks);
  }
  void add_symbol_errors(std::uint32_t n = 1) noexcept {
    sat_add(symbol_errors, n);
  }
  void add_xmit_discard() noexcept { sat_add(xmit_discards, 1); }
  void add_rcv_error() noexcept { sat_add(rcv_errors, 1); }
  void add_congestion_mark() noexcept { sat_add(congestion_marks, 1); }
  void add_link_downed() noexcept { sat_add(link_downed, 1); }
  void add_link_error_recovery() noexcept { sat_add(link_error_recovery, 1); }

  /// Any classic field pegged at its width? Deltas computed from a pegged
  /// counter are lower bounds; the PerfMgr clears and flags them.
  [[nodiscard]] bool any_classic_saturated() const noexcept;

  /// The PMA Set(PortCounters) clear: zeroes the classic block only. The
  /// extended counters keep running, which is what makes them usable for
  /// long-horizon rate computation.
  void clear_classic() noexcept;
};

}  // namespace ibvs
