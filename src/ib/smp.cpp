#include "ib/smp.hpp"

#include <ostream>

namespace ibvs {

std::string to_string(SmpAttribute attribute) {
  switch (attribute) {
    case SmpAttribute::kNodeInfo:
      return "NodeInfo";
    case SmpAttribute::kPortInfo:
      return "PortInfo";
    case SmpAttribute::kSwitchInfo:
      return "SwitchInfo";
    case SmpAttribute::kLinearFwdTable:
      return "LinearFwdTable";
    case SmpAttribute::kMulticastFwdTable:
      return "MulticastFwdTable";
    case SmpAttribute::kGuidInfo:
      return "GuidInfo";
    case SmpAttribute::kVSwitchLidAssign:
      return "VSwitchLidAssign";
    case SmpAttribute::kPortCounters:
      return "PortCounters";
    case SmpAttribute::kPortCountersExtended:
      return "PortCountersExtended";
  }
  return "Unknown";
}

std::ostream& operator<<(std::ostream& os, const Smp& smp) {
  os << (smp.method == SmpMethod::kSet ? "Set(" : "Get(")
     << to_string(smp.attribute) << ") -> node " << smp.target;
  if (smp.attribute == SmpAttribute::kLinearFwdTable) {
    os << " block " << smp.block;
  }
  os << (smp.routing == SmpRouting::kDirected ? " [DR " : " [LR ")
     << smp.hops() << " hops]";
  return os;
}

void SmpCounters::record(const Smp& smp) noexcept {
  ++total;
  switch (smp.attribute) {
    case SmpAttribute::kLinearFwdTable:
      ++lft_block_writes;
      break;
    case SmpAttribute::kMulticastFwdTable:
      ++mft_block_writes;
      break;
    case SmpAttribute::kPortInfo:
      ++port_info;
      break;
    case SmpAttribute::kGuidInfo:
      ++guid_info;
      break;
    case SmpAttribute::kVSwitchLidAssign:
      ++vf_lid_assign;
      break;
    case SmpAttribute::kNodeInfo:
    case SmpAttribute::kSwitchInfo:
      ++discovery;
      break;
    case SmpAttribute::kPortCounters:
    case SmpAttribute::kPortCountersExtended:
      ++perf_mgmt;
      break;
  }
  if (smp.routing == SmpRouting::kDirected) {
    ++directed;
  } else {
    ++lid_routed;
  }
}

SmpCounters& SmpCounters::operator+=(const SmpCounters& other) noexcept {
  total += other.total;
  lft_block_writes += other.lft_block_writes;
  mft_block_writes += other.mft_block_writes;
  port_info += other.port_info;
  guid_info += other.guid_info;
  vf_lid_assign += other.vf_lid_assign;
  discovery += other.discovery;
  perf_mgmt += other.perf_mgmt;
  directed += other.directed;
  lid_routed += other.lid_routed;
  retries += other.retries;
  timeouts += other.timeouts;
  undeliverable += other.undeliverable;
  return *this;
}

}  // namespace ibvs
