// Subnet Management Packet (SMP) model.
//
// SMPs travel on QP0, VL15. Two routing modes exist (IBA §14.2):
//   * Directed routing — the packet carries the hop-by-hop output-port path;
//     every intermediate switch rewrites the hop pointer, which adds
//     per-hop processing latency (the `r` term of eq. (2)). OpenSM uses this
//     for everything because it works before LFTs exist.
//   * LID (destination-based) routing — forwarded like normal traffic; valid
//     only once the switches already have routes, which is exactly the case
//     the paper exploits in eq. (5) for migration SMPs.
//
// The simulator does not serialize MAD wire formats; an Smp carries just the
// fields the experiments account for: attribute, routing mode, target, and
// (for LFT writes) the block index.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "ib/types.hpp"

namespace ibvs {

enum class SmpAttribute : std::uint8_t {
  kNodeInfo,        ///< discovery: who are you
  kPortInfo,        ///< discovery / LID programming of a port
  kSwitchInfo,      ///< discovery: switch properties
  kLinearFwdTable,  ///< one 64-entry LFT block
  kMulticastFwdTable,  ///< one (32-MLID block, 16-port position) MFT slice
  kGuidInfo,        ///< vGUID (alias GUID) programming on an HCA port
  kVSwitchLidAssign,  ///< vendor-style: set/unset the LID of a VF (§V-C step a)
  // Performance-management class (PMA). Real PMA MADs are GMPs on QP1 —
  // LID-routed like normal traffic — but they share the MAD wire format and
  // this simulator's transport, so the PerfMgr's polling cost lands in the
  // same accounting as SMPs.
  kPortCounters,       ///< Get: poll classic counters; Set: clear them
  kPortCountersExtended,  ///< Get: poll the 64-bit extended counters
};

enum class SmpMethod : std::uint8_t { kGet, kSet };

enum class SmpRouting : std::uint8_t { kDirected, kLidRouted };

struct Smp {
  SmpMethod method = SmpMethod::kGet;
  SmpAttribute attribute = SmpAttribute::kNodeInfo;
  SmpRouting routing = SmpRouting::kDirected;
  /// Destination node (switch or CA/hypervisor endpoint).
  NodeId target = kInvalidNode;
  /// Affected port at the target, where relevant (PortInfo, VF LID assign).
  PortNum target_port = 0;
  /// LFT block index for kLinearFwdTable.
  std::uint32_t block = 0;
  /// Directed route: output ports from the SM node, one per hop.
  std::vector<PortNum> route;

  [[nodiscard]] std::size_t hops() const noexcept { return route.size(); }

  /// Field-wise equality — the determinism tests compare whole SMP streams
  /// between single- and multi-threaded sweeps.
  [[nodiscard]] bool operator==(const Smp& other) const = default;
};

[[nodiscard]] std::string to_string(SmpAttribute attribute);
std::ostream& operator<<(std::ostream& os, const Smp& smp);

/// Aggregate counters kept by everything that emits SMPs. The paper's results
/// (Table I, eqs. 2–5) are statements about these numbers.
struct SmpCounters {
  std::uint64_t total = 0;
  std::uint64_t lft_block_writes = 0;
  std::uint64_t mft_block_writes = 0;
  std::uint64_t port_info = 0;
  std::uint64_t guid_info = 0;
  std::uint64_t vf_lid_assign = 0;
  std::uint64_t discovery = 0;
  std::uint64_t perf_mgmt = 0;  ///< PMA polls and clears (PerfMgr traffic)
  std::uint64_t directed = 0;
  std::uint64_t lid_routed = 0;
  // Reliable-MAD bookkeeping (bumped by the transport, not by record():
  // one logical send may cost several wire attempts).
  std::uint64_t retries = 0;        ///< resends after a response timeout
  std::uint64_t timeouts = 0;       ///< attempts whose response timer fired
  std::uint64_t undeliverable = 0;  ///< sends abandoned (no path / retries
                                    ///< exhausted)

  void record(const Smp& smp) noexcept;
  SmpCounters& operator+=(const SmpCounters& other) noexcept;
};

}  // namespace ibvs
