#include "ib/types.hpp"

#include <iomanip>
#include <ostream>

namespace ibvs {

std::ostream& operator<<(std::ostream& os, Lid lid) {
  return os << lid.value();
}

std::ostream& operator<<(std::ostream& os, Guid guid) {
  const auto flags = os.flags();
  os << "0x" << std::hex << std::setw(16) << std::setfill('0') << guid.value();
  os.flags(flags);
  return os;
}

std::ostream& operator<<(std::ostream& os, const Gid& gid) {
  const auto flags = os.flags();
  os << std::hex << std::setw(16) << std::setfill('0') << gid.prefix << ":"
     << std::setw(16) << std::setfill('0') << gid.guid.value();
  os.flags(flags);
  return os;
}

}  // namespace ibvs
