// Fundamental InfiniBand identifiers and constants (IBA spec 1.2.1, §4).
//
// The three IB address types the paper revolves around:
//   * LID  — 16-bit local identifier, assigned by the SM, routes within a
//            subnet. Unicast range is 0x0001..0xBFFF (49151 addresses), which
//            bounds the subnet size and drives the whole prepopulated-vs-
//            dynamic LID trade-off of §V.
//   * GUID — 64-bit EUI, burned in by the manufacturer; the SM may assign
//            additional *virtual* GUIDs (vGUIDs) to VFs.
//   * GID  — 128-bit (64-bit subnet prefix + 64-bit GUID), a valid IPv6
//            address.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <limits>

namespace ibvs {

/// 16-bit Local Identifier. Strong type: a Lid is not an integer index and
/// must not silently mix with port numbers or node ids.
class Lid {
 public:
  constexpr Lid() noexcept : value_(0) {}
  constexpr explicit Lid(std::uint16_t value) noexcept : value_(value) {}

  [[nodiscard]] constexpr std::uint16_t value() const noexcept {
    return value_;
  }
  /// LID 0 is reserved and used here as "unassigned".
  [[nodiscard]] constexpr bool valid() const noexcept { return value_ != 0; }

  constexpr auto operator<=>(const Lid&) const noexcept = default;

 private:
  std::uint16_t value_;
};

inline constexpr Lid kInvalidLid{};
/// Highest unicast LID (0xBFFF); 0xC000..0xFFFE are multicast, 0xFFFF is
/// the permissive LID.
inline constexpr Lid kTopmostUnicastLid{0xBFFF};
/// Number of usable unicast LIDs (1..0xBFFF).
inline constexpr std::size_t kUnicastLidCount = 0xBFFF;

/// Linear forwarding tables are read and written in blocks of 64 entries;
/// one SubnMgt(LinearForwardingTable) SMP carries exactly one block. This
/// granularity is what makes the paper's LID-swap cost 1 *or* 2 SMPs.
inline constexpr std::size_t kLftBlockSize = 64;

/// Port number within a node. Port 0 is the switch management port.
using PortNum = std::uint8_t;

/// Forwarding a LID to port 255 drops traffic for it at that switch (used by
/// the partially-static "drain" reconfiguration variant of §VI-C).
inline constexpr PortNum kDropPort = 255;

/// Index of a node inside a Fabric. Dense, assigned at creation.
using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// 64-bit Global Unique Identifier.
class Guid {
 public:
  constexpr Guid() noexcept : value_(0) {}
  constexpr explicit Guid(std::uint64_t value) noexcept : value_(value) {}

  [[nodiscard]] constexpr std::uint64_t value() const noexcept {
    return value_;
  }
  [[nodiscard]] constexpr bool valid() const noexcept { return value_ != 0; }

  constexpr auto operator<=>(const Guid&) const noexcept = default;

 private:
  std::uint64_t value_;
};

inline constexpr Guid kInvalidGuid{};

/// 128-bit Global Identifier: subnet prefix + GUID. Valid IPv6 unicast.
struct Gid {
  std::uint64_t prefix = 0;
  Guid guid;

  [[nodiscard]] constexpr bool valid() const noexcept { return guid.valid(); }
  constexpr auto operator<=>(const Gid&) const noexcept = default;
};

/// Default subnet prefix (the IBA link-local prefix fe80::/64).
inline constexpr std::uint64_t kDefaultSubnetPrefix = 0xFE80000000000000ULL;

/// Forms the GID of a port from the fabric-wide prefix and the port GUID.
[[nodiscard]] constexpr Gid make_gid(std::uint64_t prefix, Guid guid) noexcept {
  return Gid{prefix, guid};
}

/// LFT block index that contains `lid`.
[[nodiscard]] constexpr std::size_t lft_block_of(Lid lid) noexcept {
  return lid.value() / kLftBlockSize;
}

/// Number of LFT blocks needed to cover LIDs 0..top inclusive.
[[nodiscard]] constexpr std::size_t lft_blocks_for(Lid top) noexcept {
  return lft_block_of(top) + 1;
}

std::ostream& operator<<(std::ostream& os, Lid lid);
std::ostream& operator<<(std::ostream& os, Guid guid);
std::ostream& operator<<(std::ostream& os, const Gid& gid);

}  // namespace ibvs

template <>
struct std::hash<ibvs::Lid> {
  std::size_t operator()(ibvs::Lid lid) const noexcept {
    return std::hash<std::uint16_t>{}(lid.value());
  }
};

template <>
struct std::hash<ibvs::Guid> {
  std::size_t operator()(ibvs::Guid guid) const noexcept {
    return std::hash<std::uint64_t>{}(guid.value());
  }
};
