#include "inject/chaos.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "cloud/planner.hpp"
#include "sm/topology_txn.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "util/expect.hpp"

namespace ibvs::inject {

namespace {

// FNV-1a, the digest two same-seed runs must agree on.
constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void fold(std::uint64_t& h, std::string_view s) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
}

void fold(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= kFnvPrime;
  }
}

struct CableRef {
  NodeId a = kInvalidNode;
  PortNum a_port = 0;
  NodeId b = kInvalidNode;
  PortNum b_port = 0;
};

/// Nodes reachable from `start` over cables, optionally pretending one
/// cable is cut or one node is gone.
std::vector<bool> reachable_set(const Fabric& fabric, NodeId start,
                                const CableRef* skip_cable,
                                NodeId skip_node) {
  std::vector<bool> seen(fabric.size(), false);
  if (start == skip_node) return seen;
  std::vector<NodeId> queue{start};
  seen[start] = true;
  while (!queue.empty()) {
    const NodeId u = queue.back();
    queue.pop_back();
    const Node& n = fabric.node(u);
    for (PortNum p = 1; p <= n.num_ports(); ++p) {
      const Port& port = n.ports[p];
      if (!port.connected()) continue;
      if (skip_cable != nullptr &&
          ((u == skip_cable->a && p == skip_cable->a_port) ||
           (u == skip_cable->b && p == skip_cable->b_port))) {
        continue;
      }
      const NodeId v = port.peer;
      if (v == skip_node || seen[v]) continue;
      seen[v] = true;
      queue.push_back(v);
    }
  }
  return seen;
}

/// Safety filter: removing the cable (or the whole node) must not cost any
/// *other* currently-reachable node its connectivity to the SM.
bool safe_to_remove(const Fabric& fabric, NodeId sm_node,
                    const CableRef* cable, NodeId node) {
  const auto before = reachable_set(fabric, sm_node, nullptr, kInvalidNode);
  const auto after = reachable_set(fabric, sm_node, cable, node);
  for (NodeId id = 0; id < fabric.size(); ++id) {
    if (id == node) continue;
    if (before[id] && !after[id]) return false;
  }
  return true;
}

/// Switch-to-switch cables, each counted once, in (NodeId, port) order.
std::vector<CableRef> inter_switch_cables(const Fabric& fabric) {
  std::vector<CableRef> out;
  for (NodeId id = 0; id < fabric.size(); ++id) {
    const Node& n = fabric.node(id);
    if (!n.is_physical_switch()) continue;
    for (PortNum p = 1; p <= n.num_ports(); ++p) {
      const Port& port = n.ports[p];
      if (!port.connected()) continue;
      if (!fabric.node(port.peer).is_physical_switch()) continue;
      if (port.peer < id) continue;  // the lower end enumerates the cable
      out.push_back({id, p, port.peer, port.peer_port});
    }
  }
  return out;
}

std::string cable_name(const Fabric& fabric, const CableRef& c) {
  return fabric.node(c.a).name + ":" + std::to_string(c.a_port) + "<->" +
         fabric.node(c.b).name + ":" + std::to_string(c.b_port);
}

enum class EventKind {
  kLinkCut,
  kLinkRestore,
  kLinkFlap,
  kSwitchKill,
  kSwitchRevive,
  kMigrate,
  kKillDstMidMigration,
  kKillMasterMidReconfig,
  kAttachSwitch,
  kDetachSwitch,
  kKillSwitchMidAttach,
  kKillMasterMidDetach,
};

const char* kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kLinkCut:
      return "link_cut";
    case EventKind::kLinkRestore:
      return "link_restore";
    case EventKind::kLinkFlap:
      return "link_flap";
    case EventKind::kSwitchKill:
      return "switch_kill";
    case EventKind::kSwitchRevive:
      return "switch_revive";
    case EventKind::kMigrate:
      return "migrate";
    case EventKind::kKillDstMidMigration:
      return "kill_dst_mid_migration";
    case EventKind::kKillMasterMidReconfig:
      return "kill_master_mid_reconfig";
    case EventKind::kAttachSwitch:
      return "attach_switch";
    case EventKind::kDetachSwitch:
      return "detach_switch";
    case EventKind::kKillSwitchMidAttach:
      return "kill_switch_mid_attach";
    case EventKind::kKillMasterMidDetach:
      return "kill_master_mid_detach";
  }
  return "?";
}

struct ChaosMetrics {
  telemetry::Counter& steps;
  telemetry::Counter& violations;
  telemetry::Counter& recovery_smps;

  static ChaosMetrics& get() {
    auto& reg = telemetry::Registry::global();
    static ChaosMetrics m{
        reg.counter("ibvs_chaos_steps_total", {}, "Chaos steps executed"),
        reg.counter("ibvs_chaos_violations_total", {},
                    "FabricChecker violations observed after recoveries"),
        reg.counter("ibvs_chaos_recovery_smps_total", {},
                    "LFT SMPs spent re-converging after chaos events"),
    };
    return m;
  }
};

}  // namespace

std::string to_string(const ChaosReport& report) {
  std::ostringstream os;
  os << "chaos seed=" << report.seed << " steps=" << report.steps << "\n";
  os << std::left << std::setw(4) << "#" << std::setw(18) << "event"
     << std::setw(34) << "detail" << std::right << std::setw(7) << "rounds"
     << std::setw(7) << "smps" << std::setw(9) << "retries" << std::setw(9)
     << "timeouts" << std::setw(12) << "time_us" << std::setw(6) << "viol"
     << "\n";
  for (std::size_t i = 0; i < report.events.size(); ++i) {
    const ChaosEvent& e = report.events[i];
    os << std::left << std::setw(4) << i << std::setw(18) << e.kind
       << std::setw(34) << e.detail << std::right << std::setw(7) << e.rounds
       << std::setw(7) << e.smps << std::setw(9) << e.retries << std::setw(9)
       << e.timeouts << std::setw(12) << std::fixed << std::setprecision(1)
       << e.time_us << std::setw(6) << e.violations << "\n";
  }
  if (report.evacuation_moves + report.evacuation_batches > 0) {
    os << "evacuation: hyp" << report.evacuation_hypervisor << " moves="
       << report.evacuation_moves << " swaps=" << report.evacuation_swaps
       << " batches=" << report.evacuation_batches
       << " replans=" << report.evacuation_replans
       << " complete=" << (report.evacuation_complete ? "yes" : "no") << "\n";
  }
  os << "totals: smps=" << report.reconverge_smps
     << " retries=" << report.reconverge_retries
     << " timeouts=" << report.reconverge_timeouts
     << " undeliverable=" << report.undeliverable << " time_us=" << std::fixed
     << std::setprecision(1) << report.reconverge_time_us
     << " violations=" << report.checker_violations
     << " converged=" << (report.all_converged ? "yes" : "no") << std::hex
     << " digest=0x" << report.digest << std::dec << "\n";
  if (report.migration_commits + report.migration_rollbacks > 0) {
    os << "migration txns: committed=" << report.migration_commits
       << " rolled_back=" << report.migration_rollbacks << "\n";
  }
  if (report.topology_commits + report.topology_rollbacks > 0) {
    os << "topology txns: committed=" << report.topology_commits
       << " rolled_back=" << report.topology_rollbacks << "\n";
  }
  return os.str();
}

namespace {

/// The kEvacuation scenario: drain one hypervisor through the fleet
/// planner while a switch dies mid-plan. Every batch boundary reconverges
/// and checker-verifies; the digest folds the same (kind, detail, smps,
/// violations) stream as the steady-state harness, so two same-seed runs
/// must agree bit for bit.
ChaosReport run_evacuation_chaos(cloud::CloudOrchestrator& cloud,
                                 FaultInjector& injector,
                                 const ChaosConfig& config) {
  core::VSwitchFabric& vsf = cloud.fabric();
  sm::SubnetManager& sm = vsf.subnet_manager();
  Fabric& fabric = sm.fabric();
  IBVS_REQUIRE(sm.has_routing(), "boot the fabric before running chaos");

  auto span = telemetry::Tracer::global().span(
      "chaos.evacuation", {{"seed", std::to_string(config.seed)}});

  fabric::SmpTransport& transport = sm.transport();
  injector.attach_transport(&transport);
  fabric::LinkFaultModel* const previous_model = transport.fault_model();
  transport.set_fault_model(&injector);
  injector.set_global_fault(config.mad_faults);

  SplitMix64 rng(config.seed);
  const FabricChecker checker(sm, config.checker);
  const NodeId sm_node = transport.sm_node();

  ChaosReport report;
  report.seed = config.seed;
  report.digest = kFnvOffset;

  // The host to drain: config override, else the fullest one (lowest index
  // on ties — the loop only replaces on strictly-more VMs).
  const auto& hyps = vsf.hypervisors();
  std::size_t target = config.evacuate_hypervisor;
  if (target >= hyps.size()) {
    std::size_t most_used = 0;
    target = 0;
    for (std::size_t h = 0; h < hyps.size(); ++h) {
      const std::size_t used = hyps[h].vfs.size() - vsf.free_vf_count(h);
      if (used > most_used) {
        most_used = used;
        target = h;
      }
    }
  }
  report.evacuation_hypervisor = target;

  const auto recover_and_check = [&](ChaosEvent event) {
    const SmpCounters before = transport.counters();
    const auto recovery = sm.reconverge(config.max_reconverge_rounds);
    const SmpCounters after = transport.counters();
    event.rounds = recovery.rounds;
    event.smps = recovery.smps;
    event.time_us = recovery.time_us;
    event.retries = after.retries - before.retries;
    event.timeouts = after.timeouts - before.timeouts;
    report.undeliverable += after.undeliverable - before.undeliverable;
    if (!recovery.converged) report.all_converged = false;
    const CheckReport checked = checker.check(&vsf);
    event.violations = checked.violations.size();
    report.reconverge_rounds += event.rounds;
    report.reconverge_smps += event.smps;
    report.reconverge_retries += event.retries;
    report.reconverge_timeouts += event.timeouts;
    report.reconverge_time_us += event.time_us;
    report.checker_violations += event.violations;
    ChaosMetrics::get().violations.inc(event.violations);
    ChaosMetrics::get().recovery_smps.inc(event.smps);
    fold(report.digest, event.kind);
    fold(report.digest, event.detail);
    fold(report.digest, event.smps);
    fold(report.digest, static_cast<std::uint64_t>(event.violations));
    ++report.steps;
    report.events.push_back(std::move(event));
  };

  cloud::MigrationPlanner::Options planner_options;
  planner_options.mode = core::ReconfigMode::kMinimal;
  cloud::MigrationPlanner planner(cloud, planner_options);
  cloud::FleetGoal goal;
  goal.kind = cloud::FleetGoalKind::kEvacuateHypervisor;
  goal.hypervisor = target;
  const auto plan = planner.plan(goal);

  {
    // Planning sends nothing, but the plan shape is part of the digest.
    ChaosEvent event;
    event.kind = "plan";
    event.detail = "hyp" + std::to_string(target) + ": " +
                   std::to_string(plan.total_moves()) + " moves in " +
                   std::to_string(plan.batches.size()) + " batches";
    fold(report.digest, event.kind);
    fold(report.digest, event.detail);
    ++report.steps;
    report.events.push_back(std::move(event));
  }

  // One seeded draw decides which batch the switch dies in front of; the
  // victim itself is drawn when the moment arrives, against live state.
  const std::size_t kill_before =
      config.kill_switch_mid_plan && !plan.batches.empty()
          ? rng.below(plan.batches.size())
          : static_cast<std::size_t>(-1);
  NodeId killed = kInvalidNode;

  cloud::ExecutorPolicy policy;
  policy.txn.backoff_base_s = 0.0;  // simulated clock only
  policy.on_batch_start = [&](std::size_t index,
                              const cloud::MigrationBatch&) {
    if (index != kill_before || killed != kInvalidNode) return;
    std::vector<NodeId> candidates;
    for (NodeId id = 0; id < fabric.size(); ++id) {
      if (!fabric.node(id).is_physical_switch()) continue;
      if (injector.is_dead(id)) continue;
      if (!safe_to_remove(fabric, sm_node, nullptr, id)) continue;
      candidates.push_back(id);
    }
    if (candidates.empty()) return;
    killed = candidates[rng.below(candidates.size())];
    ChaosEvent event;
    event.kind = "switch_kill";
    event.detail =
        fabric.node(killed).name + " before batch " + std::to_string(index);
    injector.kill_node(killed);
    ++report.structural_events;
    recover_and_check(std::move(event));
  };
  policy.on_batch_end = [&](std::size_t index, const cloud::MigrationBatch&,
                            const cloud::BatchExecution& be) {
    ++report.evacuation_batches;
    report.migration_commits += be.committed;
    report.migration_rollbacks += be.rolled_back;
    report.migrations += be.committed + be.rolled_back + be.failed;
    ChaosEvent event;
    event.kind = "batch";
    event.detail = "b" + std::to_string(index) + ": " +
                   std::to_string(be.committed) + " committed, " +
                   std::to_string(be.rolled_back) + " rolled back, " +
                   std::to_string(be.skipped) + " skipped";
    recover_and_check(std::move(event));
  };

  cloud::PlanExecutor executor(cloud);
  // Execute in the mode the planner predicted with.
  const core::MigrationOptions move_options{
      .mode = core::ReconfigMode::kMinimal};
  const auto exec = executor.execute(planner, plan, move_options, policy);
  report.evacuation_moves += exec.committed;
  report.evacuation_swaps += exec.swaps_committed;
  report.evacuation_replans += exec.replans;

  if (killed != kInvalidNode) {
    ChaosEvent event;
    event.kind = "switch_revive";
    event.detail = fabric.node(killed).name;
    injector.revive_node(killed);
    ++report.structural_events;
    recover_and_check(std::move(event));
  }

  // The dead switch may have stranded VMs on the target host; with every
  // switch back, one more planned pass must finish the drain.
  const auto residual = [&]() {
    std::size_t n = 0;
    for (const std::uint32_t id : vsf.active_vm_ids()) {
      if (vsf.vm({id}).hypervisor == target) ++n;
    }
    return n;
  };
  if (residual() > 0) {
    const auto retry_plan = planner.plan(goal);
    const auto retry =
        executor.execute(planner, retry_plan, move_options, policy);
    report.evacuation_moves += retry.committed;
    report.evacuation_swaps += retry.swaps_committed;
    report.evacuation_replans += retry.replans;
  }
  report.evacuation_complete = residual() == 0;
  fold(report.digest, std::string_view(report.evacuation_complete
                                           ? "complete"
                                           : "incomplete"));

  transport.set_fault_model(previous_model);
  span.set_attr("moves", std::to_string(report.evacuation_moves));
  span.set_attr("violations", std::to_string(report.checker_violations));
  return report;
}

}  // namespace

ChaosReport run_chaos(cloud::CloudOrchestrator& cloud,
                      FaultInjector& injector, const ChaosConfig& config) {
  if (config.scenario == ChaosScenario::kEvacuation) {
    return run_evacuation_chaos(cloud, injector, config);
  }
  core::VSwitchFabric& vsf = cloud.fabric();
  sm::SubnetManager& sm = vsf.subnet_manager();
  Fabric& fabric = sm.fabric();
  IBVS_REQUIRE(sm.has_routing(), "boot the fabric before running chaos");

  auto span = telemetry::Tracer::global().span(
      "chaos.run", {{"seed", std::to_string(config.seed)},
                    {"steps", std::to_string(config.steps)}});

  fabric::SmpTransport& transport = sm.transport();
  injector.attach_transport(&transport);
  fabric::LinkFaultModel* const previous_model = transport.fault_model();
  transport.set_fault_model(&injector);
  injector.set_global_fault(config.mad_faults);

  SplitMix64 rng(config.seed);
  const FabricChecker checker(sm, config.checker);

  ChaosReport report;
  report.seed = config.seed;
  report.digest = kFnvOffset;

  const struct {
    EventKind kind;
    unsigned weight;
  } kinds[] = {
      {EventKind::kLinkCut, config.weight_link_cut},
      {EventKind::kLinkRestore, config.weight_link_restore},
      {EventKind::kLinkFlap, config.weight_link_flap},
      {EventKind::kSwitchKill, config.weight_switch_kill},
      {EventKind::kSwitchRevive, config.weight_switch_revive},
      {EventKind::kMigrate, config.weight_migrate},
      {EventKind::kKillDstMidMigration, config.weight_kill_dst_mid_migration},
      {EventKind::kKillMasterMidReconfig,
       config.weight_kill_master_mid_reconfig},
      {EventKind::kAttachSwitch, config.weight_attach_switch},
      {EventKind::kDetachSwitch, config.weight_detach_switch},
      {EventKind::kKillSwitchMidAttach, config.weight_kill_switch_mid_attach},
      {EventKind::kKillMasterMidDetach, config.weight_kill_master_mid_detach},
  };
  unsigned total_weight = 0;
  for (const auto& k : kinds) total_weight += k.weight;
  IBVS_REQUIRE(total_weight > 0, "every chaos event weight is zero");

  const NodeId sm_node = transport.sm_node();

  // Shared candidate selection for every migration-flavored event: a
  // uniformly drawn active VM, then a uniformly drawn destination with a
  // free VF that is physically attached and SM-reachable. Draw order is
  // part of the determinism contract — exactly one draw for the VM and one
  // for the destination, skipping (no draws consumed beyond the VM's) when
  // either candidate set is empty.
  struct MigrationPick {
    core::VmHandle vm;
    std::size_t src = 0;
    std::size_t dst = 0;
  };
  const auto pick_migration = [&]() -> std::optional<MigrationPick> {
    std::vector<std::uint32_t> vms = vsf.active_vm_ids();
    std::sort(vms.begin(), vms.end());
    if (vms.empty()) return std::nullopt;
    const core::VmHandle vm{vms[rng.below(vms.size())]};
    const std::size_t src_hyp = vsf.vm(vm).hypervisor;
    std::vector<std::size_t> dsts;
    for (std::size_t h = 0; h < vsf.hypervisors().size(); ++h) {
      if (h == src_hyp || !vsf.free_vf_on(h)) continue;
      const NodeId pf = vsf.hypervisors()[h].pf;
      if (!fabric.physical_attachment(pf)) continue;
      if (!transport.hops_to(pf)) continue;
      dsts.push_back(h);
    }
    if (dsts.empty()) return std::nullopt;
    return MigrationPick{vm, src_hyp, dsts[rng.below(dsts.size())]};
  };

  // Topology-delta plumbing (only exercised when the corresponding weights
  // are non-zero — default configs never construct a transaction).
  sm::TopologyTxnManager topo(sm, vsf.journal());

  /// Live, reachable physical switches with at least one free port — the
  /// peers a new chaos switch can cable into.
  const auto attach_peers = [&]() {
    std::vector<NodeId> out;
    for (NodeId id = 0; id < fabric.size(); ++id) {
      if (!fabric.node(id).is_physical_switch()) continue;
      if (injector.is_dead(id)) continue;
      if (!fabric.free_port(id)) continue;
      if (!transport.hops_to(id)) continue;
      out.push_back(id);
    }
    return out;
  };

  /// Draws one or two distinct peers and cables a brand-new 4-port switch
  /// toward them (two draws when two peers exist — part of the determinism
  /// contract). Returns the new switch and its cable list.
  const auto draw_attach =
      [&](const std::vector<NodeId>& peers)
      -> std::pair<NodeId, std::vector<CableSpec>> {
    const NodeId p1 = peers[rng.below(peers.size())];
    NodeId p2 = kInvalidNode;
    std::vector<NodeId> rest;
    for (const NodeId id : peers) {
      if (id != p1) rest.push_back(id);
    }
    if (!rest.empty()) p2 = rest[rng.below(rest.size())];
    const NodeId sw = fabric.add_switch(
        "chaos-sw" + std::to_string(fabric.size()), 4);
    std::vector<CableSpec> cables{{sw, 1, p1, *fabric.free_port(p1)}};
    if (p2 != kInvalidNode) cables.push_back({sw, 2, p2, *fabric.free_port(p2)});
    return {sw, std::move(cables)};
  };

  /// Switches a detach transaction would accept: alive, cabled, endpoint-
  /// free (no assigned LID attaches through them), not hosting the SM, and
  /// removable without cutting any currently-reachable node off.
  const auto detach_candidates = [&]() {
    std::vector<NodeId> out;
    const auto sm_attach = fabric.node(sm_node).is_ca()
                               ? fabric.physical_attachment(sm_node)
                               : std::nullopt;
    for (NodeId id = 0; id < fabric.size(); ++id) {
      if (!fabric.node(id).is_physical_switch()) continue;
      if (injector.is_dead(id)) continue;
      if (id == sm_node || (sm_attach && sm_attach->first == id)) continue;
      if (fabric.cables_of(id).empty()) continue;
      if (!safe_to_remove(fabric, sm_node, nullptr, id)) continue;
      bool hosts_endpoint = false;
      for (const Lid lid : sm.lids().assigned_lids()) {
        if (sm.lids().owner(lid).node == id) continue;
        const auto att = sm.lids().attachment(fabric, lid);
        if (att && att->first == id) {
          hosts_endpoint = true;
          break;
        }
      }
      if (!hosts_endpoint) out.push_back(id);
    }
    return out;
  };

  for (std::size_t step = 0; step < config.steps; ++step) {
    ++report.steps;
    ChaosMetrics::get().steps.inc();

    // 1. Pick the event kind (one RNG draw, weight-proportional).
    EventKind kind = EventKind::kMigrate;
    std::uint64_t roll = rng.below(total_weight);
    for (const auto& k : kinds) {
      if (roll < k.weight) {
        kind = k.kind;
        break;
      }
      roll -= k.weight;
    }

    // 2. Enumerate candidates and apply. Empty candidate sets record a
    // skip (still part of the digest: the RNG draw happened).
    ChaosEvent event;
    event.kind = kind_name(kind);
    bool applied = false;
    bool structural = false;

    switch (kind) {
      case EventKind::kLinkCut: {
        std::vector<CableRef> candidates;
        for (const CableRef& c : inter_switch_cables(fabric)) {
          if (safe_to_remove(fabric, sm_node, &c, kInvalidNode)) {
            candidates.push_back(c);
          }
        }
        if (!candidates.empty()) {
          const CableRef c = candidates[rng.below(candidates.size())];
          event.detail = cable_name(fabric, c);
          injector.cut_link(c.a, c.a_port);
          applied = structural = true;
        }
        break;
      }
      case EventKind::kLinkRestore: {
        std::vector<FaultInjector::Cable> candidates;
        for (const auto& c : injector.severed()) {
          if (injector.is_dead(c.a) || injector.is_dead(c.b)) continue;
          candidates.push_back(c);
        }
        if (!candidates.empty()) {
          const auto c = candidates[rng.below(candidates.size())];
          event.detail = cable_name(fabric, {c.a, c.a_port, c.b, c.b_port});
          injector.restore_link(c.a, c.a_port);
          applied = structural = true;
        }
        break;
      }
      case EventKind::kLinkFlap: {
        const auto cables = inter_switch_cables(fabric);
        if (!cables.empty()) {
          const CableRef c = cables[rng.below(cables.size())];
          event.detail = cable_name(fabric, c);
          injector.flap_link(c.a, c.a_port);
          applied = structural = true;
        }
        break;
      }
      case EventKind::kSwitchKill: {
        std::vector<NodeId> candidates;
        for (NodeId id = 0; id < fabric.size(); ++id) {
          if (!fabric.node(id).is_physical_switch()) continue;
          if (injector.is_dead(id)) continue;
          if (!safe_to_remove(fabric, sm_node, nullptr, id)) continue;
          candidates.push_back(id);
        }
        if (!candidates.empty()) {
          const NodeId id = candidates[rng.below(candidates.size())];
          event.detail = fabric.node(id).name;
          injector.kill_node(id);
          applied = structural = true;
        }
        break;
      }
      case EventKind::kSwitchRevive: {
        std::vector<NodeId> candidates;
        for (NodeId id = 0; id < fabric.size(); ++id) {
          if (injector.is_dead(id)) candidates.push_back(id);
        }
        if (!candidates.empty()) {
          const NodeId id = candidates[rng.below(candidates.size())];
          event.detail = fabric.node(id).name;
          injector.revive_node(id);
          applied = structural = true;
        }
        break;
      }
      case EventKind::kMigrate: {
        if (const auto pick = pick_migration()) {
          event.detail = "vm" + std::to_string(pick->vm.id) + " hyp" +
                         std::to_string(pick->src) + "->hyp" +
                         std::to_string(pick->dst);
          cloud.migrate(pick->vm, pick->dst);
          ++report.migrations;
          applied = true;
        }
        break;
      }
      case EventKind::kKillDstMidMigration: {
        // The destination hypervisor dies mid-flight: its vSwitch is
        // killed either before the addresses move (at kCopied) or after
        // the LFTs are rewritten (at kAttached). The orchestrator's policy
        // machinery must re-place the VM on a live host or roll the whole
        // transaction back — the fabric never stays half-migrated.
        if (const auto pick = pick_migration()) {
          const bool kill_late = rng.below(2) == 1;
          const core::TxnState kill_at = kill_late ? core::TxnState::kAttached
                                                   : core::TxnState::kCopied;
          const NodeId dst_vswitch = vsf.hypervisors()[pick->dst].vswitch;
          bool killed = false;
          cloud::TxnPolicy policy;
          policy.backoff_base_s = 0.0;  // simulated clock only
          policy.on_step = [&](core::TxnState state,
                               const core::MigrationTxn& txn) {
            if (!killed && state == kill_at &&
                txn.dst_hypervisor == pick->dst) {
              injector.kill_node(dst_vswitch);
              killed = true;
            }
          };
          const auto flow = cloud.migrate_txn(pick->vm, pick->dst, {}, policy);
          if (killed) injector.revive_node(dst_vswitch);
          event.detail = "vm" + std::to_string(pick->vm.id) + " hyp" +
                         std::to_string(pick->src) + "->hyp" +
                         std::to_string(pick->dst) + " kill@" +
                         (kill_late ? "attach" : "copy") + " -> " +
                         cloud::to_string(flow.outcome) +
                         (flow.replaced
                              ? " hyp" + std::to_string(flow.dst_hypervisor)
                              : "");
          if (flow.outcome == cloud::TxnOutcome::kCommitted) {
            ++report.migration_commits;
          } else {
            ++report.migration_rollbacks;
          }
          ++report.migrations;
          applied = true;
        }
        break;
      }
      case EventKind::kKillMasterMidReconfig: {
        // The master SM dies after a random number of LFT SMPs of an
        // in-flight migration. The write-ahead journal then decides —
        // exactly as a standby promoted by SmElection would (the election
        // path itself is exercised in the tests); here the surviving SM
        // object replays its own journal, which runs the identical code.
        if (const auto pick = pick_migration()) {
          auto txn = vsf.begin_migration(pick->vm, pick->dst);
          vsf.txn_move_addresses(txn);
          const std::uint64_t abort_after = 1 + rng.below(4);
          bool interrupted = false;
          try {
            vsf.txn_apply_lfts(
                txn, core::VSwitchFabric::ApplyOptions{
                         .abort_after_smps =
                             static_cast<std::size_t>(abort_after)});
          } catch (const core::MigrationError&) {
            interrupted = true;
          }
          event.detail = "vm" + std::to_string(pick->vm.id) + " hyp" +
                         std::to_string(pick->src) + "->hyp" +
                         std::to_string(pick->dst);
          if (!interrupted) {
            // The batch was smaller than the abort point; no death.
            vsf.txn_commit(txn);
            event.detail += " survived";
            ++report.migration_commits;
          } else {
            const auto recovery =
                vsf.journal().recover(sm, config.max_reconverge_rounds);
            const auto reconciled = vsf.reconcile_with_journal();
            report.migration_commits += reconciled.committed;
            report.migration_rollbacks += reconciled.rolled_back;
            event.detail +=
                " died@" + std::to_string(abort_after) + "smp -> " +
                (recovery.rolled_forward > 0 ? "rolled_forward"
                                             : "rolled_back");
          }
          ++report.migrations;
          applied = true;
        }
        break;
      }
      case EventKind::kAttachSwitch: {
        // Expand the fabric live: a brand-new switch cabled to one or two
        // reachable peers through a journaled transaction — minimal
        // re-route, no full sweep.
        const auto peers = attach_peers();
        if (!peers.empty()) {
          const auto [sw, cables] = draw_attach(peers);
          event.detail = fabric.node(sw).name;
          try {
            const auto txn = topo.attach_switch(sw, cables);
            event.detail += " +" + std::to_string(txn.stats.lft_smps) + "smp";
            ++report.topology_commits;
          } catch (const sm::TopologyError& err) {
            event.detail += std::string(" failed: ") + to_string(err.code());
            ++report.topology_rollbacks;
          }
          applied = structural = true;
        }
        break;
      }
      case EventKind::kDetachSwitch: {
        const auto candidates = detach_candidates();
        if (!candidates.empty()) {
          const NodeId id = candidates[rng.below(candidates.size())];
          event.detail = fabric.node(id).name;
          try {
            const auto txn = topo.detach_switch(id);
            event.detail += " -" + std::to_string(txn.stats.lft_smps) + "smp";
            ++report.topology_commits;
          } catch (const sm::TopologyError& err) {
            event.detail += std::string(" failed: ") + to_string(err.code());
            ++report.topology_rollbacks;
          }
          applied = structural = true;
        }
        break;
      }
      case EventKind::kKillSwitchMidAttach: {
        // The subject dies between the cabling mutation and the re-route:
        // the transaction must notice the unreachable switch and roll back
        // to a byte-identical fabric. The bricked switch stays dead
        // (awaiting replacement) with no cables plugged.
        const auto peers = attach_peers();
        if (!peers.empty()) {
          const auto [sw, cables] = draw_attach(peers);
          event.detail = fabric.node(sw).name;
          auto txn = topo.begin_attach_switch(sw, cables);
          try {
            topo.txn_mutate(txn);
            injector.kill_node(sw);
            topo.txn_reroute(txn);
            topo.txn_commit(txn);
            event.detail += " survived";
            ++report.topology_commits;
          } catch (const sm::TopologyError&) {
            topo.txn_rollback(txn);
            event.detail += " killed mid-attach -> rolled_back";
            ++report.topology_rollbacks;
          }
          applied = structural = true;
        }
        break;
      }
      case EventKind::kKillMasterMidDetach: {
        // The master SM dies after a random number of the detach's LFT
        // SMPs; the write-ahead journal replays the record — forward when
        // the delta set was journaled, back otherwise — exactly as a
        // standby promoted by SmElection would.
        const auto candidates = detach_candidates();
        if (!candidates.empty()) {
          const NodeId id = candidates[rng.below(candidates.size())];
          // Die either right after the cabling mutation (the record holds
          // cables but no delta set — recovery must roll BACK, re-plugging
          // the exact cables) or after a random number of apply SMPs (the
          // delta set is journaled — recovery rolls FORWARD).
          const bool die_early = rng.below(2) == 1;
          const std::uint64_t abort_after = 1 + rng.below(4);
          event.detail = fabric.node(id).name;
          auto txn = topo.begin_detach_switch(id);
          sm::TopologyApplyOptions opts;
          opts.abort_after_smps = abort_after;
          try {
            topo.txn_mutate(txn);
            if (die_early) {
              const auto recovery =
                  vsf.journal().recover(sm, config.max_reconverge_rounds);
              event.detail +=
                  " died@mutate -> " + std::string(recovery.rolled_back > 0
                                                       ? "rolled_back"
                                                       : "rolled_forward");
              ++report.topology_rollbacks;
              applied = structural = true;
              break;
            }
            topo.txn_reroute(txn, opts);
            topo.txn_commit(txn);
            event.detail += " survived";
            ++report.topology_commits;
          } catch (const sm::TopologyError& err) {
            if (err.code() == sm::TopologyErrc::kInterrupted) {
              const auto recovery =
                  vsf.journal().recover(sm, config.max_reconverge_rounds);
              const bool forward = recovery.rolled_forward > 0;
              event.detail += " died@" + std::to_string(abort_after) +
                              "smp -> " +
                              (forward ? "rolled_forward" : "rolled_back");
              if (forward) {
                ++report.topology_commits;
              } else {
                ++report.topology_rollbacks;
              }
            } else {
              if (!txn.terminal()) topo.txn_rollback(txn);
              event.detail += std::string(" failed: ") +
                              to_string(err.code()) + " -> rolled_back";
              ++report.topology_rollbacks;
            }
          }
          applied = structural = true;
        }
        break;
      }
    }

    if (!applied) {
      event.kind = std::string("skip:") + kind_name(kind);
      ++report.skipped;
      fold(report.digest, event.kind);
      report.events.push_back(std::move(event));
      continue;
    }
    if (structural) ++report.structural_events;

    // 3. Recover: the SM's reconvergence loop, priced on the simulated
    // clock, under whatever MAD faults are active.
    const SmpCounters before = transport.counters();
    const auto recovery = sm.reconverge(config.max_reconverge_rounds);
    const SmpCounters after = transport.counters();
    event.rounds = recovery.rounds;
    event.smps = recovery.smps;
    event.time_us = recovery.time_us;
    event.retries = after.retries - before.retries;
    event.timeouts = after.timeouts - before.timeouts;
    report.undeliverable += after.undeliverable - before.undeliverable;
    if (!recovery.converged) report.all_converged = false;

    // 4. Verify: the installed fabric must satisfy every invariant.
    const CheckReport checked = checker.check(&vsf);
    event.violations = checked.violations.size();

    report.reconverge_rounds += event.rounds;
    report.reconverge_smps += event.smps;
    report.reconverge_retries += event.retries;
    report.reconverge_timeouts += event.timeouts;
    report.reconverge_time_us += event.time_us;
    report.checker_violations += event.violations;
    ChaosMetrics::get().violations.inc(event.violations);
    ChaosMetrics::get().recovery_smps.inc(event.smps);

    fold(report.digest, event.kind);
    fold(report.digest, event.detail);
    fold(report.digest, event.smps);
    fold(report.digest, static_cast<std::uint64_t>(event.violations));
    report.events.push_back(std::move(event));
  }

  transport.set_fault_model(previous_model);
  span.set_attr("smps", std::to_string(report.reconverge_smps));
  span.set_attr("violations", std::to_string(report.checker_violations));
  return report;
}

ChaosReport run_chaos(core::VSwitchFabric& fabric, std::uint64_t seed,
                      std::size_t steps) {
  if (!fabric.subnet_manager().has_routing()) fabric.boot();
  cloud::CloudOrchestrator cloud(fabric, cloud::Placement::kSpread);
  if (fabric.active_vms() == 0) {
    cloud.launch_vms(fabric.hypervisors().size());
  }
  FaultInjector injector(fabric.subnet_manager().fabric(), seed);
  ChaosConfig config;
  config.seed = seed;
  config.steps = steps;
  config.mad_faults.drop_probability = 0.02;
  return run_chaos(cloud, injector, config);
}

}  // namespace ibvs::inject
