// Chaos harness: randomized faults against a live vSwitch cloud.
//
// Drives a seeded stream of events — link cuts, restores, flaps, switch
// death and revival, interleaved with orchestrated VM migrations — against
// a booted subnet, and after every event runs the SM's recovery loop
// (SubnetManager::reconverge) followed by the full FabricChecker invariant
// suite. The harness measures what the paper's reconfiguration story must
// survive in practice: how many SMPs, resends and simulated microseconds
// the fabric needs to return to a provably consistent state.
//
// Structural events are *safety-filtered*: a cable is only cut (a switch
// only killed) when a BFS from the SM shows every currently-reachable node
// stays reachable without it. That keeps the invariant "zero checker
// violations after every recovery" meaningful — the harness exercises
// redundancy, it does not amputate endpoints and then excuse them.
//
// Everything is deterministic from the seed: event choice, candidate
// enumeration order, the injector's drop/jitter draws, and the simulated
// clock (transport time, never wall-clock). Two runs with the same seed
// produce identical reports, digest included — the property the chaos-smoke
// CI job asserts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cloud/orchestrator.hpp"
#include "inject/checker.hpp"
#include "inject/injector.hpp"

namespace ibvs::inject {

enum class ChaosScenario {
  /// The original harness: a seeded stream of independent fault/migration
  /// events against a quiescent cloud.
  kSteadyState,
  /// Fleet evacuation under fire: a MigrationPlanner drains one hypervisor
  /// batch by batch while the harness kills a safe-to-remove switch
  /// mid-plan; every batch boundary reconverges and checker-verifies, and
  /// the run only counts as complete when the host is empty afterwards.
  kEvacuation,
};

struct ChaosConfig {
  std::uint64_t seed = 1;
  std::size_t steps = 32;

  ChaosScenario scenario = ChaosScenario::kSteadyState;
  /// kEvacuation: the hypervisor to drain. npos auto-picks the host with
  /// the most VMs (ties to the lowest index).
  std::size_t evacuate_hypervisor = static_cast<std::size_t>(-1);
  /// kEvacuation: kill one (safety-filtered) switch right before a seeded
  /// batch of the plan, and revive it once the plan ran.
  bool kill_switch_mid_plan = true;

  // Relative event weights (0 disables the kind).
  unsigned weight_link_cut = 3;
  unsigned weight_link_restore = 2;
  unsigned weight_link_flap = 2;
  unsigned weight_switch_kill = 1;
  unsigned weight_switch_revive = 1;
  unsigned weight_migrate = 4;
  // Migration-fault events (default 0: enabling them must not perturb the
  // digests of existing seeds). kill_dst_mid_migration kills the
  // destination hypervisor's vSwitch at a random transaction state and
  // lets the orchestrator re-place or roll back; kill_master_mid_reconfig
  // cuts the LFT batch short after a random number of SMPs and replays the
  // write-ahead journal, as a freshly elected master would.
  unsigned weight_kill_dst_mid_migration = 0;
  unsigned weight_kill_master_mid_reconfig = 0;
  // Topology-delta events (default 0: enabling them must not perturb the
  // digests of existing seeds). attach_switch cables a brand-new switch to
  // one or two reachable peers through a journaled TopologyTxn;
  // detach_switch severs a safety-filtered, endpoint-free switch the same
  // way; kill_switch_mid_attach kills the subject between the cabling
  // mutation and the re-route (the transaction must roll back to a
  // byte-identical fabric); kill_master_mid_detach cuts the detach's LFT
  // batch short after a random number of SMPs and replays the write-ahead
  // journal, as a freshly elected master would.
  unsigned weight_attach_switch = 0;
  unsigned weight_detach_switch = 0;
  unsigned weight_kill_switch_mid_attach = 0;
  unsigned weight_kill_master_mid_detach = 0;

  /// Probabilistic MAD plane active for the whole run (drops force the
  /// transport's retry/backoff machinery; jitter perturbs latencies).
  LinkFault mad_faults{};

  /// Cap on SubnetManager::reconverge rounds after each event.
  std::size_t max_reconverge_rounds = 64;

  CheckerConfig checker{};
};

/// One step of the run: the event applied and what recovery cost.
struct ChaosEvent {
  std::string kind;    ///< link_cut, link_restore, link_flap, switch_kill,
                       ///< switch_revive, migrate, or skip:<kind>
  std::string detail;  ///< the affected cable / switch / VM, by name
  std::size_t rounds = 0;       ///< reconvergence rounds
  std::uint64_t smps = 0;       ///< LFT SMPs the recovery sent
  std::uint64_t retries = 0;    ///< MAD resends during recovery
  std::uint64_t timeouts = 0;   ///< response timeouts during recovery
  double time_us = 0.0;         ///< simulated recovery time
  std::size_t violations = 0;   ///< checker violations after recovery
};

struct ChaosReport {
  std::uint64_t seed = 0;
  std::size_t steps = 0;
  std::size_t structural_events = 0;
  std::size_t migrations = 0;
  /// Transactional outcomes from the migration-fault events: every such
  /// migration must end committed or rolled back, never in between.
  std::size_t migration_commits = 0;
  std::size_t migration_rollbacks = 0;
  /// Transactional outcomes from the topology-delta events: every delta
  /// must end committed or rolled back (possibly via journal replay).
  std::size_t topology_commits = 0;
  std::size_t topology_rollbacks = 0;
  std::size_t skipped = 0;  ///< steps whose picked kind had no candidate
  std::size_t reconverge_rounds = 0;
  std::uint64_t reconverge_smps = 0;
  std::uint64_t reconverge_retries = 0;
  std::uint64_t reconverge_timeouts = 0;
  std::uint64_t undeliverable = 0;
  double reconverge_time_us = 0.0;  ///< simulated, deterministic
  std::size_t checker_violations = 0;
  bool all_converged = true;  ///< every recovery hit a zero-send round
  // kEvacuation only (all zero/true-by-default in steady state).
  std::size_t evacuation_hypervisor = 0;
  std::size_t evacuation_moves = 0;    ///< committed planner moves
  std::size_t evacuation_swaps = 0;    ///< ...of which destination swaps
  std::size_t evacuation_batches = 0;  ///< batches executed (replans incl.)
  std::size_t evacuation_replans = 0;
  bool evacuation_complete = true;  ///< the drained host ended empty
  /// FNV-1a over the event stream (kind, detail, smps, violations): two
  /// runs with the same seed must produce the same digest.
  std::uint64_t digest = 0;
  std::vector<ChaosEvent> events;
};

/// Formats the per-event table plus totals (for quickstart --chaos).
[[nodiscard]] std::string to_string(const ChaosReport& report);

/// Runs `config.steps` chaos steps against a booted cloud. The injector's
/// LinkFaultModel is attached to the SM transport for the duration (the
/// previous model is restored on return) and `config.mad_faults` becomes
/// its global fault. The orchestrator supplies migrations; its fabric must
/// be the one the injector mutates.
ChaosReport run_chaos(cloud::CloudOrchestrator& cloud,
                      FaultInjector& injector, const ChaosConfig& config);

/// Convenience: builds the orchestrator and injector, boots the fabric if
/// needed, launches one VM per hypervisor when none are active, and runs
/// with a 2% MAD drop probability.
ChaosReport run_chaos(core::VSwitchFabric& fabric, std::uint64_t seed,
                      std::size_t steps);

}  // namespace ibvs::inject
