#include "inject/checker.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "fabric/trace.hpp"
#include "util/expect.hpp"
#include "util/thread_pool.hpp"

namespace ibvs::inject {

namespace {

std::string port_name(const Fabric& fabric, NodeId node, PortNum port) {
  return fabric.node(node).name + ":" + std::to_string(port);
}

/// Does any port of CA `node` own `lid` (including LMC aliases)? Mirrors
/// the delivery test of fabric::trace_unicast.
bool ca_owns_lid(const Node& node, Lid lid) {
  for (PortNum p = 1; p <= node.num_ports(); ++p) {
    if (node.ports[p].owns(lid)) return true;
  }
  return false;
}

/// Terminal state of one (source, target) walk. The values double as the
/// TraceStatus a hop-by-hop trace of the same pair would have reported.
enum class WalkStatus : std::uint8_t {
  kInFlight = 0,  ///< still walking (not a terminal)
  kDelivered,
  kDropped,
  kNoRoute,
  kWrongDelivery,
  kLoop,
};

fabric::TraceStatus to_trace_status(WalkStatus s) {
  switch (s) {
    case WalkStatus::kDelivered:
      return fabric::TraceStatus::kDelivered;
    case WalkStatus::kDropped:
      return fabric::TraceStatus::kDropped;
    case WalkStatus::kNoRoute:
      return fabric::TraceStatus::kNoRoute;
    case WalkStatus::kWrongDelivery:
      return fabric::TraceStatus::kWrongDelivery;
    case WalkStatus::kLoop:
      return fabric::TraceStatus::kLoop;
    case WalkStatus::kInFlight:
      break;
  }
  IBVS_ENSURE(false, "in-flight walk has no trace status");
  std::abort();  // unreachable; IBVS_ENSURE(false) throws
}

/// One reachability violation, keyed for the serial index-ordered merge.
struct Finding {
  std::size_t target_index;  ///< global target index (serial scan order)
  std::string what;
};

/// Blocked bitset-reachability over one contiguous target range.
///
/// Instead of tracing every (source, target) pair hop by hop — each trace
/// allocating a path vector and re-walking shared prefixes — the shard
/// advances *all* of its targets one hop per round as a flat uint64_t
/// bitset keyed by (node, ingress port). Rounds are synchronized, so
/// "round r" means "every in-flight packet has entered its r-th node" —
/// exceeding the serial trace's hop budget therefore identifies exactly
/// the pairs a per-pair trace would have flagged as forwarding loops.
///
/// Three layers keep the per-round work off the per-target scalar path:
///
///  * Per-switch *port tables* (O(ports), built on first visit) classify
///    each egress cable once — forwarding hop, dead cable, or CA delivery
///    — so the sparse walk per set bit is one LFT load plus one table
///    load, with no per-target precomputation.
///  * A switch that sees a dense frontier (the source's own leaf sees
///    every target at once) builds a *dense plan*: per-target egress
///    codes plus one bitset mask per egress port, after which the whole
///    frontier moves with AND/OR word ops, 64 targets at a time.
///  * Outcomes are *memoized across sources*. Forwarding at a physical
///    switch ignores the ingress port, so once any source's walk shows
///    that target t entering switch s ends in status X, every later
///    source reaching (s, t) must end in X too. After each source the
///    shard folds its statuses back onto the switches the walk transited
///    (word-ORs into per-switch resolved/outcome bitsets); later sources
///    then resolve whole words at the first shared switch instead of
///    re-walking the subtree. The serial trace's hop budget cannot
///    change a memoized outcome: an acyclic walk revisits no physical
///    switch and re-enters a vSwitch only via its uplink (a CA never
///    forwards), so its arrival count is at most nodes + 2 — exactly the
///    budget — and only true cycles (which never resolve, and fall out
///    of the round loop as kLoop for every source) can exceed it.
///
/// Port tables, dense plans, and memos live for the duration of the
/// shard (the installed tables are constant across one check()).
class ReachabilityShard {
 public:
  ReachabilityShard(const Fabric& fabric, const std::vector<Lid>& targets,
                    std::size_t t0, std::size_t t1)
      : fabric_(fabric),
        targets_(targets),
        t0_(t0),
        count_(t1 - t0),
        words_((count_ + 63) / 64),
        hop_budget_(fabric.size() + 2),
        log_min_(2),
        status_(count_),
        vswitch_(fabric.size(), 0),
        info_index_(fabric.size(), -1),
        plan_index_(fabric.size(), -1),
        memo_index_(fabric.size(), -1),
        slot_(fabric.size(), -1),
        logged_(fabric.size(), 0) {
    for (NodeId id = 0; id < fabric.size(); ++id) {
      vswitch_[id] = fabric.node(id).is_vswitch() ? 1 : 0;
    }
    Lid max_lid;
    for (std::size_t t = 0; t < count_; ++t) {
      if (!max_lid.valid() || targets_[t0_ + t].value() > max_lid.value()) {
        max_lid = targets_[t0_ + t];
      }
    }
    lid2t_.assign(max_lid.valid() ? max_lid.value() + 1 : 0, kNoTarget);
    for (std::size_t t = 0; t < count_; ++t) {
      lid2t_[targets_[t0_ + t].value()] = static_cast<std::uint32_t>(t);
    }
    for (auto& b : cls_src_) b.assign(words_, 0);
  }

  /// Walks every target of the shard from `src` and appends one Finding per
  /// undelivered target, in ascending target order (the inner order of a
  /// serial per-pair scan).
  void run(NodeId src, std::vector<Finding>& out);

 private:
  using Bits = std::vector<std::uint64_t>;

  static constexpr std::uint32_t kNoTarget = 0xFFFFFFFFu;

  /// One frontier cell: the targets currently entering `node` via `in_port`.
  /// [lo, hi) brackets the live words — deep in the walk most cells carry a
  /// handful of topologically adjacent (hence bit-adjacent) targets, so
  /// scans touch one or two words instead of the whole shard width.
  struct Entry {
    NodeId node = kInvalidNode;
    PortNum in_port = 0;
    std::uint32_t lo = 0, hi = 0;  ///< live word range, half-open
    Bits bits;

    void touch(std::size_t w) noexcept {
      lo = std::min(lo, static_cast<std::uint32_t>(w));
      hi = std::max(hi, static_cast<std::uint32_t>(w) + 1);
    }
    void set(std::size_t t) noexcept {
      bits[t / 64] |= std::uint64_t{1} << (t % 64);
      touch(t / 64);
    }
    void or_word(std::size_t w, std::uint64_t v) noexcept {
      bits[w] |= v;
      touch(w);
    }
  };

  /// What one egress port of a physical switch does to any packet routed
  /// out of it. Built once per switch in O(ports) — the sparse walk then
  /// classifies a target with one LFT load and one table load.
  struct PortClass {
    enum Kind : std::uint8_t {
      kForward,  ///< cable to a switch/vSwitch: (node, in) is the next cell
      kNoRoute,  ///< dead cable: a hop-by-hop trace leaves the network here
      kCa,       ///< cable to CA `node`: the walk terminates on arrival
    };
    Kind kind = kNoRoute;
    NodeId node = kInvalidNode;
    PortNum in = 0;
  };

  struct SwitchInfo {
    Lid own;
    PortNum num_ports = 0;
    std::vector<PortClass> port;  ///< indexed 1..num_ports
  };

  /// Dense plan codes: values above any port number are terminals; any
  /// other value is the egress port itself (its PortClass gives the hop).
  static constexpr std::uint8_t kPlanDropped = 0xFF;  // kDropPort/0/out-of-range
  static constexpr std::uint8_t kPlanNoRoute = 0xFE;
  static constexpr std::uint8_t kPlanDelivered = 0xFD;  // the switch's own LID
  static constexpr std::uint8_t kPlanCaDelivered = 0xFC;
  static constexpr std::uint8_t kPlanCaWrong = 0xFB;
  static constexpr std::uint8_t kPlanFirstSpecial = kPlanCaWrong;

  /// Per-target composition of one switch, built on the first dense visit
  /// only (a frontier carrying a large slice of the shard, i.e. the
  /// switches within a hop or two of a source). Sparse-only switches
  /// never pay for it.
  struct DensePlan {
    std::vector<std::uint8_t> code;  ///< per target: egress port or kPlan*
    Bits terminal;                   ///< targets with a kPlan* special code
    std::vector<PortNum> active;     ///< egress ports with a non-empty mask
    std::vector<Bits> mask;          ///< per egress port: targets routed there
  };

  /// Cross-source memo of one physical switch: `resolved` marks targets
  /// whose walk outcome from this switch is known from an earlier source;
  /// the four `bad` masks split the non-delivered ones by status (a
  /// resolved target in none of them was delivered).
  struct Memo {
    Bits resolved;
    std::array<Bits, 4> bad;  ///< kBadStatus order; empty until a bad folds
    bool has_bad = false;     ///< clean fabrics never pay for the bad masks
  };
  static constexpr std::array<WalkStatus, 4> kBadStatus = {
      WalkStatus::kDropped, WalkStatus::kNoRoute, WalkStatus::kWrongDelivery,
      WalkStatus::kLoop};

  static int bad_class(WalkStatus s) noexcept {
    switch (s) {
      case WalkStatus::kDropped:
        return 0;
      case WalkStatus::kNoRoute:
        return 1;
      case WalkStatus::kWrongDelivery:
        return 2;
      case WalkStatus::kLoop:
        return 3;
      default:
        return -1;
    }
  }

  Bits acquire() {
    if (pool_.empty()) return Bits(words_, 0);
    Bits b = std::move(pool_.back());
    pool_.pop_back();
    std::fill(b.begin(), b.end(), 0);
    return b;
  }
  void release(Bits b) { pool_.push_back(std::move(b)); }

  static void set_bit(Bits& b, std::size_t t) noexcept {
    b[t / 64] |= std::uint64_t{1} << (t % 64);
  }
  static void clear_bit(Bits& b, std::size_t t) noexcept {
    b[t / 64] &= ~(std::uint64_t{1} << (t % 64));
  }
  static bool test_bit(const Bits& b, std::size_t t) noexcept {
    return (b[t / 64] >> (t % 64)) & 1;
  }

  template <typename F>
  static void for_each_bit(const Bits& b, F&& f) {
    for (std::size_t w = 0; w < b.size(); ++w) {
      std::uint64_t word = b[w];
      while (word != 0) {
        f(w * 64 + static_cast<std::size_t>(std::countr_zero(word)));
        word &= word - 1;
      }
    }
  }

  template <typename F>
  static void for_each_bit(const Entry& e, F&& f) {
    for (std::size_t w = e.lo; w < e.hi; ++w) {
      std::uint64_t word = e.bits[w];
      while (word != 0) {
        f(w * 64 + static_cast<std::size_t>(std::countr_zero(word)));
        word &= word - 1;
      }
    }
  }

  static std::size_t popcount(const Bits& b) noexcept {
    std::size_t n = 0;
    for (const std::uint64_t w : b) {
      n += static_cast<std::size_t>(std::popcount(w));
    }
    return n;
  }

  static std::size_t popcount(const Entry& e) noexcept {
    std::size_t n = 0;
    for (std::size_t w = e.lo; w < e.hi; ++w) {
      n += static_cast<std::size_t>(std::popcount(e.bits[w]));
    }
    return n;
  }

  /// Frontier cell for (node, in_port) in the next round, created on first
  /// use; slot_ gives O(1) lookup per node. Physical switches and CAs
  /// forward/terminate independently of the ingress port, so every ingress
  /// merges into one cell per node — a leaf reached through nine spines is
  /// one cell, not nine. Only vSwitches (whose first-match local scan
  /// skips the ingress) need distinct per-ingress cells; two ingresses in
  /// one round is possible only on a walk's first hop there, so the linear
  /// fallback is cold.
  Entry& bucket(NodeId node, PortNum in_port) {
    const std::int32_t cached = slot_[node];
    if (cached >= 0) {
      Entry& e = next_[static_cast<std::size_t>(cached)];
      if (!vswitch_[node] || e.in_port == in_port) return e;
      for (Entry& other : next_) {
        if (other.node == node && other.in_port == in_port) return other;
      }
    }
    next_.push_back(Entry{node, in_port,
                          static_cast<std::uint32_t>(words_), 0, acquire()});
    if (cached < 0) {
      slot_[node] = static_cast<std::int32_t>(next_.size() - 1);
      touched_.push_back(node);
    }
    return next_.back();
  }

  /// Status bytes default to kDelivered for every source, so the common
  /// outcome never touches memory — only undelivered walks store.
  /// Terminal CA arrivals are resolved inline (no frontier entry for the
  /// CA) but round-guarded: a serial trace charges the CA arrival one hop
  /// before testing delivery, so an arrival exactly one past the budget
  /// must still report kLoop.
  void apply_ca(std::size_t t, bool owns) noexcept {
    if (round_ >= hop_budget_) {
      status_[t] = static_cast<std::uint8_t>(WalkStatus::kLoop);
      return;
    }
    if (!owns) {
      status_[t] = static_cast<std::uint8_t>(WalkStatus::kWrongDelivery);
    }
  }

  SwitchInfo& info_for(NodeId node);
  DensePlan& plan_for(NodeId node, const SwitchInfo& info);
  Memo& memo_for(NodeId node);
  std::size_t apply_memo(const Memo& m, Entry& e);
  void hop_through_vswitch(std::size_t t, NodeId vnode, PortNum in);
  void fold_back();
  void process_switch(Entry& e);
  void process_dense(const Entry& e, const SwitchInfo& info);
  void process_vswitch(Entry& e);
  void process_vswitch_dense(Entry& e);
  void process_ca(const Entry& e);

  const Fabric& fabric_;
  const std::vector<Lid>& targets_;
  const std::size_t t0_;          ///< global index of the shard's first target
  const std::size_t count_;       ///< targets in this shard
  const std::size_t words_;       ///< bitset words covering `count_` targets
  const std::size_t hop_budget_;  ///< serial trace budget: fabric.size() + 2
  const std::size_t log_min_;     ///< min live targets to fold into the memo
  std::size_t round_ = 0;         ///< current synchronized round (== hops)

  std::vector<std::uint8_t> status_;   ///< WalkStatus per shard-local target
  std::vector<std::uint8_t> vswitch_;  ///< node -> is_vswitch(), for bucket()
  std::vector<std::uint32_t> lid2t_;   ///< LID value -> shard target index
  std::vector<SwitchInfo> infos_;
  std::vector<DensePlan> plans_;
  std::vector<Memo> memos_;
  std::vector<std::int32_t> info_index_;  ///< node -> infos_ index or -1
  std::vector<std::int32_t> plan_index_;  ///< node -> plans_ index or -1
  std::vector<std::int32_t> memo_index_;  ///< node -> memos_ index or -1
  std::vector<std::int32_t> slot_;        ///< node -> next_ index this round
  std::vector<NodeId> touched_;           ///< slot_ entries to reset
  std::vector<Entry> frontier_, next_;
  std::vector<Bits> pool_;  ///< recycled bitset buffers

  // Per-source fold-back scratch: the switches this source's walk
  // transited (first visit only, in_port unused) and the source's
  // statuses split by bad class.
  std::vector<Entry> log_;
  std::vector<std::uint8_t> logged_;  ///< node -> already in log_ this source
  std::array<Bits, 4> cls_src_;
  bool any_bad_ = false;
};

ReachabilityShard::SwitchInfo& ReachabilityShard::info_for(NodeId node) {
  std::int32_t idx = info_index_[node];
  if (idx >= 0) return infos_[static_cast<std::size_t>(idx)];
  info_index_[node] = static_cast<std::int32_t>(infos_.size());
  infos_.emplace_back();
  SwitchInfo& info = infos_.back();
  const Node& n = fabric_.node(node);
  info.own = n.lid();
  info.num_ports = n.num_ports();
  IBVS_ENSURE(info.num_ports < kPlanFirstSpecial,
              "switch port count collides with dense plan codes");
  info.port.resize(static_cast<std::size_t>(info.num_ports) + 1);
  for (PortNum p = 1; p <= info.num_ports; ++p) {
    const Port& port = n.ports[p];
    PortClass& pc = info.port[p];
    if (!port.connected()) {
      pc.kind = PortClass::kNoRoute;
      continue;
    }
    pc.node = port.peer;
    pc.in = port.peer_port;
    pc.kind =
        fabric_.node(port.peer).is_ca() ? PortClass::kCa : PortClass::kForward;
  }
  return info;
}

ReachabilityShard::DensePlan& ReachabilityShard::plan_for(
    NodeId node, const SwitchInfo& info) {
  std::int32_t idx = plan_index_[node];
  if (idx >= 0) return plans_[static_cast<std::size_t>(idx)];
  plan_index_[node] = static_cast<std::int32_t>(plans_.size());
  plans_.emplace_back();
  DensePlan& plan = plans_.back();
  plan.code.resize(count_);
  plan.terminal.assign(words_, 0);
  plan.mask.resize(static_cast<std::size_t>(info.num_ports) + 1);
  const Node& n = fabric_.node(node);
  for (std::size_t t = 0; t < count_; ++t) {
    const Lid lid = targets_[t0_ + t];
    if (info.own == lid) {
      plan.code[t] = kPlanDelivered;
      set_bit(plan.terminal, t);
      continue;
    }
    const PortNum out = n.lft.get(lid);
    if (out == 0 || out > info.num_ports) {  // covers kDropPort
      plan.code[t] = kPlanDropped;
      set_bit(plan.terminal, t);
      continue;
    }
    const PortClass& pc = info.port[out];
    if (pc.kind == PortClass::kForward) {
      plan.code[t] = out;
      Bits& mask = plan.mask[out];
      if (mask.empty()) {
        mask.assign(words_, 0);
        plan.active.push_back(out);
      }
      set_bit(mask, t);
      continue;
    }
    if (pc.kind == PortClass::kNoRoute) {
      plan.code[t] = kPlanNoRoute;
    } else {
      plan.code[t] = ca_owns_lid(fabric_.node(pc.node), lid) ? kPlanCaDelivered
                                                             : kPlanCaWrong;
    }
    set_bit(plan.terminal, t);
  }
  return plan;
}

ReachabilityShard::Memo& ReachabilityShard::memo_for(NodeId node) {
  std::int32_t idx = memo_index_[node];
  if (idx >= 0) return memos_[static_cast<std::size_t>(idx)];
  memo_index_[node] = static_cast<std::int32_t>(memos_.size());
  memos_.emplace_back();
  Memo& m = memos_.back();
  m.resolved = acquire();
  return m;
}

/// Strips memoized targets out of an arriving frontier cell, storing their
/// known outcomes, and returns how many targets remain live. Delivered
/// targets (the overwhelming majority) cost one AND-NOT per word and no
/// stores.
std::size_t ReachabilityShard::apply_memo(const Memo& m, Entry& e) {
  std::size_t live = 0;
  for (std::size_t w = e.lo; w < e.hi; ++w) {
    const std::uint64_t hit = e.bits[w] & m.resolved[w];
    if (hit == 0) {
      live += static_cast<std::size_t>(std::popcount(e.bits[w]));
      continue;
    }
    e.bits[w] &= ~m.resolved[w];
    live += static_cast<std::size_t>(std::popcount(e.bits[w]));
    if (!m.has_bad) continue;  // every memoized outcome here was delivered
    std::uint64_t bad =
        hit & (m.bad[0][w] | m.bad[1][w] | m.bad[2][w] | m.bad[3][w]);
    while (bad != 0) {
      const std::size_t t =
          w * 64 + static_cast<std::size_t>(std::countr_zero(bad));
      const std::uint64_t bit = bad & (~bad + 1);
      for (std::size_t c = 0; c < m.bad.size(); ++c) {
        if ((m.bad[c][w] & bit) != 0) {
          status_[t] = static_cast<std::uint8_t>(kBadStatus[c]);
          break;
        }
      }
      bad &= bad - 1;
    }
  }
  return live;
}

/// After one source finishes, every (switch, target) its walk transited is
/// an established outcome: forwarding past a physical switch does not
/// depend on how the packet got there, so `status_[t]` is the verdict for
/// *any* future walk entering that switch with target t. Word-OR the
/// source's statuses into the transit switches' memos.
void ReachabilityShard::fold_back() {
  if (!log_.empty()) {
    for (auto& b : cls_src_) std::fill(b.begin(), b.end(), 0);
    any_bad_ = false;
    for (std::size_t t = 0; t < count_; ++t) {
      const int c = bad_class(static_cast<WalkStatus>(status_[t]));
      if (c >= 0) {
        set_bit(cls_src_[static_cast<std::size_t>(c)], t);
        any_bad_ = true;
      }
    }
  }
  for (Entry& e : log_) {
    Memo& m = memo_for(e.node);
    if (any_bad_ && !m.has_bad) {
      for (auto& b : m.bad) b.assign(words_, 0);
      m.has_bad = true;
    }
    for (std::size_t w = e.lo; w < e.hi; ++w) {
      const std::uint64_t fresh = e.bits[w] & ~m.resolved[w];
      if (fresh == 0) continue;
      m.resolved[w] |= fresh;
      if (m.has_bad) {
        for (std::size_t c = 0; c < m.bad.size(); ++c) {
          m.bad[c][w] |= fresh & cls_src_[c][w];
        }
      }
    }
    logged_[e.node] = 0;
    release(std::move(e.bits));
  }
  log_.clear();
}

/// A vSwitch transits inline, in the same round its ingress switch fired:
/// functional forwarding cannot dwell inside the vSwitch, and statuses are
/// round-independent short of a true cycle (which both schemes report as
/// kLoop), so collapsing the hop preserves the serial statuses while
/// skipping a one-bit frontier cell per down-path target — the dominant
/// cell count of a naive pass.
void ReachabilityShard::hop_through_vswitch(std::size_t t, NodeId vnode,
                                            PortNum in) {
  const Node& n = fabric_.node(vnode);
  const Lid lid = targets_[t0_ + t];
  PortNum out = 0;
  for (PortNum p = 1; p <= n.num_ports() && out == 0; ++p) {
    const Port& port = n.ports[p];
    if (p == in || !port.connected()) continue;
    const Node& peer = fabric_.node(port.peer);
    if (peer.is_ca() && ca_owns_lid(peer, lid)) out = p;
  }
  if (out == 0) {
    const auto uplink = fabric_.vswitch_uplink(vnode);
    if (!uplink || *uplink == in) {
      // Arrived from the uplink and nobody local owns the LID.
      status_[t] = static_cast<std::uint8_t>(WalkStatus::kDropped);
      return;
    }
    out = *uplink;
  }
  const auto hop = fabric_.peer(vnode, out);
  if (!hop) {
    status_[t] = static_cast<std::uint8_t>(WalkStatus::kNoRoute);
    return;
  }
  const Node& peer = fabric_.node(hop->first);
  if (peer.is_ca()) {
    apply_ca(t, ca_owns_lid(peer, lid));
    return;
  }
  bucket(hop->first, hop->second).set(t);
}

void ReachabilityShard::process_switch(Entry& e) {
  const std::int32_t mi = memo_index_[e.node];
  const std::size_t live =
      mi >= 0 ? apply_memo(memos_[static_cast<std::size_t>(mi)], e)
              : popcount(e);
  if (live == 0) return;
  const SwitchInfo& info = info_for(e.node);
  if (live >= log_min_ && logged_[e.node] == 0) {
    logged_[e.node] = 1;
    Entry copy{e.node, 0, e.lo, e.hi, acquire()};
    std::copy(e.bits.begin() + e.lo, e.bits.begin() + e.hi,
              copy.bits.begin() + e.lo);
    log_.push_back(std::move(copy));
  }
  // Dense composition pays once the frontier carries a real slice of the
  // shard (the switches within a hop or two of a source); thin down-path
  // frontiers walk set bits through the port table instead.
  if (live * 4 > count_) {
    process_dense(e, info);
    return;
  }
  const Node& n = fabric_.node(e.node);
  for_each_bit(e, [&](std::size_t t) {
    const Lid lid = targets_[t0_ + t];
    if (info.own == lid) return;  // delivered at the switch's own LID
    const PortNum out = n.lft.get(lid);
    if (out == 0 || out > info.num_ports) {
      status_[t] = static_cast<std::uint8_t>(WalkStatus::kDropped);
      return;
    }
    const PortClass& pc = info.port[out];
    if (pc.kind == PortClass::kForward) {
      if (vswitch_[pc.node]) {
        hop_through_vswitch(t, pc.node, pc.in);
      } else {
        bucket(pc.node, pc.in).set(t);
      }
    } else if (pc.kind == PortClass::kNoRoute) {
      status_[t] = static_cast<std::uint8_t>(WalkStatus::kNoRoute);
    } else {
      apply_ca(t, ca_owns_lid(fabric_.node(pc.node), lid));
    }
  });
}

void ReachabilityShard::process_dense(const Entry& e, const SwitchInfo& info) {
  DensePlan& plan = plan_for(e.node, info);
  for (std::size_t w = e.lo; w < e.hi; ++w) {
    std::uint64_t term = e.bits[w] & plan.terminal[w];
    while (term != 0) {
      const std::size_t t =
          w * 64 + static_cast<std::size_t>(std::countr_zero(term));
      switch (plan.code[t]) {
        case kPlanDelivered:
          break;
        case kPlanDropped:
          status_[t] = static_cast<std::uint8_t>(WalkStatus::kDropped);
          break;
        case kPlanNoRoute:
          status_[t] = static_cast<std::uint8_t>(WalkStatus::kNoRoute);
          break;
        default:
          apply_ca(t, plan.code[t] == kPlanCaDelivered);
          break;
      }
      term &= term - 1;
    }
  }
  for (const PortNum p : plan.active) {
    const Bits& mask = plan.mask[p];
    Entry* out = nullptr;  // resolved lazily: most ports miss the frontier
    for (std::size_t w = e.lo; w < e.hi; ++w) {
      const std::uint64_t moved = e.bits[w] & mask[w];
      if (moved == 0) continue;
      if (out == nullptr) out = &bucket(info.port[p].node, info.port[p].in);
      out->or_word(w, moved);
    }
  }
}

void ReachabilityShard::process_vswitch(Entry& e) {
  // Functional forwarding, replicated from fabric::trace_unicast: deliver
  // towards the first local CA owning the LID, else out of the uplink,
  // else drop. A vSwitch normally sees only its local VFs' LIDs — except
  // on the source's own first hop, where the whole shard enters at once
  // and the bulk path below moves it in word ops.
  if (popcount(e) > 4 * words_) {
    process_vswitch_dense(e);
    return;
  }
  const Node& n = fabric_.node(e.node);
  for_each_bit(e, [&](std::size_t t) {
    const Lid lid = targets_[t0_ + t];
    PortNum out = 0;
    for (PortNum p = 1; p <= n.num_ports() && out == 0; ++p) {
      const Port& port = n.ports[p];
      if (p == e.in_port || !port.connected()) continue;
      const Node& peer = fabric_.node(port.peer);
      if (peer.is_ca() && ca_owns_lid(peer, lid)) out = p;
    }
    if (out == 0) {
      const auto uplink = fabric_.vswitch_uplink(e.node);
      if (!uplink || *uplink == e.in_port) {
        // Arrived from the uplink and nobody local owns the LID.
        status_[t] = static_cast<std::uint8_t>(WalkStatus::kDropped);
        return;
      }
      out = *uplink;
    }
    const auto hop = fabric_.peer(e.node, out);
    if (!hop) {
      status_[t] = static_cast<std::uint8_t>(WalkStatus::kNoRoute);
      return;
    }
    const Node& peer = fabric_.node(hop->first);
    if (peer.is_ca()) {
      apply_ca(t, ca_owns_lid(peer, lid));
      return;
    }
    bucket(hop->first, hop->second).set(t);
  });
}

/// The source's first hop: every target of the shard enters its vSwitch
/// at once. The local scan delivers only LIDs a local CA owns — a handful
/// of bits, patched out via lid2t_ — and everything else rides the uplink
/// as one word-OR instead of a per-target scan.
void ReachabilityShard::process_vswitch_dense(Entry& e) {
  const Node& n = fabric_.node(e.node);
  for (PortNum p = 1; p <= n.num_ports(); ++p) {
    const Port& port = n.ports[p];
    if (p == e.in_port || !port.connected()) continue;
    const Node& peer = fabric_.node(port.peer);
    if (!peer.is_ca()) continue;
    for (PortNum q = 1; q <= peer.num_ports(); ++q) {
      const Port& pp = peer.ports[q];
      if (!pp.lid.valid()) continue;
      const std::uint32_t base = pp.lid.value();
      for (std::uint32_t l = base; l < base + (1u << pp.lmc); ++l) {
        if (l >= lid2t_.size() || lid2t_[l] == kNoTarget) continue;
        const std::size_t t = lid2t_[l];
        if (!test_bit(e.bits, t)) continue;
        clear_bit(e.bits, t);
        apply_ca(t, true);  // the owning local CA delivers
      }
    }
  }
  const auto uplink = fabric_.vswitch_uplink(e.node);
  const auto set_rest = [&](WalkStatus s) {
    for_each_bit(e, [&](std::size_t t) {
      status_[t] = static_cast<std::uint8_t>(s);
    });
  };
  if (!uplink || *uplink == e.in_port) {
    set_rest(WalkStatus::kDropped);
    return;
  }
  const auto hop = fabric_.peer(e.node, *uplink);
  if (!hop) {
    set_rest(WalkStatus::kNoRoute);
    return;
  }
  const Node& peer = fabric_.node(hop->first);
  if (peer.is_ca()) {
    for_each_bit(e, [&](std::size_t t) {
      apply_ca(t, ca_owns_lid(peer, targets_[t0_ + t]));
    });
    return;
  }
  Entry& out = bucket(hop->first, hop->second);
  for (std::size_t w = e.lo; w < e.hi; ++w) {
    if (e.bits[w] != 0) out.or_word(w, e.bits[w]);
  }
}

void ReachabilityShard::process_ca(const Entry& e) {
  const Node& n = fabric_.node(e.node);
  for_each_bit(e, [&](std::size_t t) {
    if (!ca_owns_lid(n, targets_[t0_ + t])) {
      status_[t] = static_cast<std::uint8_t>(WalkStatus::kWrongDelivery);
    }
  });
}

void ReachabilityShard::run(NodeId src, std::vector<Finding>& out) {
  // Delivered is the default verdict: only undelivered walks store.
  std::memset(status_.data(), static_cast<int>(WalkStatus::kDelivered),
              status_.size());
  const Node& src_node = fabric_.node(src);
  const auto first_hop = fabric_.peer(src, 1);

  // Everything starts in flight except the source's own LIDs (loopback
  // delivery, same test as the serial trace's ca_owns_lid preamble).
  Bits init = acquire();
  if (count_ > 0) {
    std::fill(init.begin(), init.end(), ~std::uint64_t{0});
    if (count_ % 64 != 0) {
      init[words_ - 1] = (std::uint64_t{1} << (count_ % 64)) - 1;
    }
  }
  for (PortNum p = 1; p <= src_node.num_ports(); ++p) {
    const Port& port = src_node.ports[p];
    if (!port.lid.valid()) continue;
    const std::uint32_t base = port.lid.value();
    for (std::uint32_t l = base; l < base + (1u << port.lmc); ++l) {
      if (l < lid2t_.size() && lid2t_[l] != kNoTarget) {
        clear_bit(init, lid2t_[l]);
      }
    }
  }
  frontier_.clear();
  if (!first_hop) {
    for_each_bit(init, [&](std::size_t t) {
      status_[t] = static_cast<std::uint8_t>(WalkStatus::kNoRoute);
    });
    release(std::move(init));
  } else if (popcount(init) > 0) {
    frontier_.push_back(Entry{first_hop->first, first_hop->second, 0,
                              static_cast<std::uint32_t>(words_),
                              std::move(init)});
  } else {
    release(std::move(init));
  }

  // Synchronized rounds: after round r every in-flight target has entered
  // its r-th node, so the serial trace's hop budget translates directly.
  round_ = 0;
  while (!frontier_.empty() && round_ < hop_budget_) {
    ++round_;
    next_.clear();
    for (Entry& e : frontier_) {
      const Node& n = fabric_.node(e.node);
      if (n.is_ca()) {
        process_ca(e);
      } else if (n.is_vswitch()) {
        process_vswitch(e);
      } else {
        process_switch(e);
      }
      release(std::move(e.bits));
    }
    for (const NodeId node : touched_) slot_[node] = -1;
    touched_.clear();
    frontier_.swap(next_);
  }
  // Anything still in flight has entered more nodes than the budget allows:
  // a forwarding cycle.
  for (Entry& e : frontier_) {
    for_each_bit(e, [&](std::size_t t) {
      status_[t] = static_cast<std::uint8_t>(WalkStatus::kLoop);
    });
    release(std::move(e.bits));
  }
  frontier_.clear();

  fold_back();

  for (std::size_t t = 0; t < count_; ++t) {
    const auto status = static_cast<WalkStatus>(status_[t]);
    if (status == WalkStatus::kDelivered) continue;
    const Lid lid = targets_[t0_ + t];
    if (status == WalkStatus::kLoop) {
      out.push_back({t0_ + t, "routing loop tracing LID " +
                                  std::to_string(lid.value()) + " from " +
                                  src_node.name});
    } else {
      out.push_back({t0_ + t,
                     "LID " + std::to_string(lid.value()) +
                         " unreachable from " + src_node.name + " (" +
                         fabric::to_string(to_trace_status(status)) + ")"});
    }
  }
}

}  // namespace

FabricChecker::FabricChecker(const sm::SubnetManager& sm, CheckerConfig config)
    : sm_(sm), config_(config) {}

void FabricChecker::add_violation(CheckReport& report,
                                  std::string what) const {
  if (report.violations.size() >= config_.max_violations) {
    report.truncated = true;
    return;
  }
  report.violations.push_back(std::move(what));
}

CheckReport FabricChecker::check(const core::VSwitchFabric* cloud) const {
  CheckReport report;
  check_duplicate_lids(report);
  check_lidmap_consistency(report);
  check_reachability(report);
  if (cloud != nullptr) check_vswitch_mapping(report, *cloud);
  return report;
}

void FabricChecker::check_duplicate_lids(CheckReport& report) const {
  const Fabric& fabric = sm_.fabric();
  struct PortRef {
    NodeId node;
    PortNum port;
  };
  // Flat CSR over LID values instead of a hash map of vectors: one counting
  // pass sizes per-LID buckets, a prefix sum places them, a second pass
  // fills the refs in (node, port) scan order. Collisions then iterate in
  // ascending-LID order, which is also the 1-vs-N-thread stable order.
  std::uint16_t max_lid = 0;
  for (NodeId id = 0; id < fabric.size(); ++id) {
    const Node& n = fabric.node(id);
    const PortNum first = n.is_switch() ? 0 : 1;
    const PortNum last = n.is_switch() ? 0 : n.num_ports();
    for (PortNum p = first; p <= last; ++p) {
      if (n.ports[p].lid.valid()) max_lid = std::max(max_lid, n.ports[p].lid.value());
    }
  }
  std::vector<std::uint32_t> start(static_cast<std::size_t>(max_lid) + 2, 0);
  for (NodeId id = 0; id < fabric.size(); ++id) {
    const Node& n = fabric.node(id);
    const PortNum first = n.is_switch() ? 0 : 1;
    const PortNum last = n.is_switch() ? 0 : n.num_ports();
    for (PortNum p = first; p <= last; ++p) {
      if (n.ports[p].lid.valid()) ++start[n.ports[p].lid.value() + 1u];
    }
  }
  for (std::size_t i = 1; i < start.size(); ++i) start[i] += start[i - 1];
  std::vector<PortRef> refs(start.back());
  {
    std::vector<std::uint32_t> fill(start.begin(), start.end() - 1);
    for (NodeId id = 0; id < fabric.size(); ++id) {
      const Node& n = fabric.node(id);
      const PortNum first = n.is_switch() ? 0 : 1;
      const PortNum last = n.is_switch() ? 0 : n.num_ports();
      for (PortNum p = first; p <= last; ++p) {
        if (n.ports[p].lid.valid()) refs[fill[n.ports[p].lid.value()]++] = {id, p};
      }
    }
  }
  for (std::uint32_t lid = 0; lid <= max_lid; ++lid) {
    const std::uint32_t lo = start[lid];
    const std::uint32_t hi = start[lid + 1u];
    if (hi - lo < 2) continue;
    // The one sanctioned share: a PF and the vSwitch(es) it sits behind
    // answer to the same LID (§V). Anything else is an address collision.
    const PortRef* pf = nullptr;
    bool ok = true;
    for (std::uint32_t i = lo; i < hi; ++i) {
      const Node& n = fabric.node(refs[i].node);
      if (n.is_ca() && n.role == CaRole::kPf) {
        if (pf != nullptr) ok = false;  // two PFs on one LID
        pf = &refs[i];
      } else if (!n.is_vswitch()) {
        ok = false;
      }
    }
    if (ok && pf != nullptr) {
      for (std::uint32_t i = lo; i < hi; ++i) {
        const Node& n = fabric.node(refs[i].node);
        if (!n.is_vswitch()) continue;
        // The vSwitch must actually host this PF.
        bool cabled = false;
        for (PortNum p = 1; p <= n.num_ports(); ++p) {
          if (n.ports[p].peer == pf->node) cabled = true;
        }
        if (!cabled) ok = false;
      }
    } else {
      ok = false;
    }
    if (!ok) {
      std::string what = "duplicate LID " + std::to_string(lid) + " on";
      for (std::uint32_t i = lo; i < hi; ++i) {
        what += " " + port_name(fabric, refs[i].node, refs[i].port);
      }
      add_violation(report, std::move(what));
    }
  }
}

void FabricChecker::check_lidmap_consistency(CheckReport& report) const {
  const Fabric& fabric = sm_.fabric();
  const LidMap& lids = sm_.lids();
  for (const Lid lid : lids.assigned_lids()) {
    ++report.lids_checked;
    const LidMap::Owner owner = lids.owner(lid);
    if (!owner.valid() || owner.node >= fabric.size()) {
      add_violation(report, "LidMap owner of LID " +
                                std::to_string(lid.value()) + " is invalid");
      continue;
    }
    const Node& n = fabric.node(owner.node);
    if (owner.port >= n.ports.size() || !n.ports[owner.port].owns(lid)) {
      add_violation(report,
                    "LID " + std::to_string(lid.value()) +
                        " owner port " + port_name(fabric, owner.node, owner.port) +
                        " does not answer to it");
      continue;
    }
    const auto attach = lids.attachment(fabric, lid);
    if (!attach) {
      ++report.lids_skipped_detached;
      continue;
    }
    const auto [sw, port] = *attach;
    if (port == 0) continue;  // the switch's own LID terminates at port 0
    const PortNum installed = fabric.node(sw).lft.get(lid);
    if (installed != port) {
      add_violation(report,
                    "LID " + std::to_string(lid.value()) +
                        " attaches to " + port_name(fabric, sw, port) +
                        " but switch forwards it to port " +
                        std::to_string(installed));
    }
  }
}

void FabricChecker::check_reachability(CheckReport& report) const {
  const Fabric& fabric = sm_.fabric();
  const LidMap& lids = sm_.lids();

  std::vector<NodeId> sources;
  for (NodeId id = 0; id < fabric.size(); ++id) {
    const Node& n = fabric.node(id);
    if (!n.is_ca() || !n.ports[1].connected()) continue;
    if (!fabric.physical_attachment(id)) continue;
    sources.push_back(id);
  }
  if (config_.max_sources > 0 && sources.size() > config_.max_sources) {
    // Deterministic even spread over the candidates, endpoints included.
    std::vector<NodeId> sampled;
    sampled.reserve(config_.max_sources);
    const std::size_t n = sources.size();
    const std::size_t k = config_.max_sources;
    for (std::size_t i = 0; i < k; ++i) {
      sampled.push_back(sources[k > 1 ? i * (n - 1) / (k - 1) : 0]);
    }
    sampled.erase(std::unique(sampled.begin(), sampled.end()), sampled.end());
    sources = std::move(sampled);
  }
  report.sources_sampled = sources.size();

  // A LID is an *active* target only while its owner is physically on the
  // fabric. A dead switch keeps its LID assignment (it returns with the
  // node), but with every cable cut the address is legitimately dark —
  // demanding reachability for it would flag every switch-death as a
  // violation.
  const auto any_port_connected = [](const Node& n) {
    for (PortNum p = 1; p <= n.num_ports(); ++p) {
      if (n.ports[p].connected()) return true;
    }
    return false;
  };
  std::vector<Lid> targets;
  for (const Lid lid : lids.assigned_lids()) {
    if (!lids.attachment(fabric, lid)) continue;
    const LidMap::Owner owner = lids.owner(lid);
    if (owner.valid() && owner.node < fabric.size() &&
        !any_port_connected(fabric.node(owner.node))) {
      ++report.lids_skipped_detached;
      continue;
    }
    targets.push_back(lid);
  }

  // The walks are pure reads of the installed tables, so the target space
  // fans out over the pool in contiguous shards; every shard runs the
  // bitset pass for all sources over its own range. The merge below
  // replays the findings in (source, target) order and reconstructs
  // exactly what a serial per-pair trace scan would have reported —
  // including the violation cap, the truncated flag, and the paths_traced
  // count at the point a serial scan would have bailed out.
  ThreadPool& pool = ThreadPool::global();
  const std::size_t shards = std::max<std::size_t>(
      pool.shard_count(targets.size()), 1);
  std::vector<std::vector<std::vector<Finding>>> findings(
      shards, std::vector<std::vector<Finding>>(sources.size()));
  if (!targets.empty() && !sources.empty()) {
    pool.parallel_for_shards(
        0, targets.size(),
        [&](std::size_t shard, std::size_t t0, std::size_t t1) {
          ReachabilityShard worker(fabric, targets, t0, t1);
          for (std::size_t i = 0; i < sources.size(); ++i) {
            worker.run(sources[i], findings[shard][i]);
          }
        });
  }

  for (std::size_t i = 0; i < sources.size(); ++i) {
    for (std::size_t shard = 0; shard < shards; ++shard) {
      for (Finding& f : findings[shard][i]) {
        add_violation(report, std::move(f.what));
        if (report.violations.size() >= config_.max_violations) {
          report.truncated = true;
          // A serial scan would have returned right here, having traced
          // every pair up to and including this one.
          report.paths_traced += i * targets.size() + f.target_index + 1;
          return;
        }
      }
    }
  }
  report.paths_traced += sources.size() * targets.size();
}

void FabricChecker::check_vswitch_mapping(
    CheckReport& report, const core::VSwitchFabric& cloud) const {
  const Fabric& fabric = sm_.fabric();
  const LidMap& lids = sm_.lids();
  const auto& hyps = cloud.hypervisors();
  for (const std::uint32_t id : cloud.active_vm_ids()) {
    const core::VmHandle handle{id};
    const core::Vm& vm = cloud.vm(handle);
    const NodeId node = cloud.vm_node(handle);
    const Node& n = fabric.node(node);
    if (!n.is_ca() || n.role != CaRole::kVf) {
      add_violation(report, "VM " + std::to_string(id) +
                                " is not backed by a VF node");
      continue;
    }
    if (vm.hypervisor >= hyps.size() ||
        vm.vf_index >= hyps[vm.hypervisor].vfs.size() ||
        hyps[vm.hypervisor].vfs[vm.vf_index] != node) {
      add_violation(report, "VM " + std::to_string(id) +
                                " VF slot bookkeeping is inconsistent");
      continue;
    }
    if (!vm.lid.valid() || !n.ports[1].owns(vm.lid)) {
      add_violation(report, "VM " + std::to_string(id) + " VF port (" +
                                n.name + ") does not own the VM's LID " +
                                std::to_string(vm.lid.value()));
      continue;
    }
    const LidMap::Owner owner = lids.owner(vm.lid);
    if (owner.node != node) {
      add_violation(report, "VM " + std::to_string(id) + " LID " +
                                std::to_string(vm.lid.value()) +
                                " is not owned by its VF in the LidMap");
    }
  }
}

}  // namespace ibvs::inject
