#include "inject/checker.hpp"

#include <algorithm>
#include <unordered_map>

#include "fabric/trace.hpp"
#include "util/expect.hpp"
#include "util/thread_pool.hpp"

namespace ibvs::inject {

namespace {

std::string port_name(const Fabric& fabric, NodeId node, PortNum port) {
  return fabric.node(node).name + ":" + std::to_string(port);
}

}  // namespace

FabricChecker::FabricChecker(const sm::SubnetManager& sm, CheckerConfig config)
    : sm_(sm), config_(config) {}

void FabricChecker::add_violation(CheckReport& report,
                                  std::string what) const {
  if (report.violations.size() >= config_.max_violations) {
    report.truncated = true;
    return;
  }
  report.violations.push_back(std::move(what));
}

CheckReport FabricChecker::check(const core::VSwitchFabric* cloud) const {
  CheckReport report;
  check_duplicate_lids(report);
  check_lidmap_consistency(report);
  check_reachability(report);
  if (cloud != nullptr) check_vswitch_mapping(report, *cloud);
  return report;
}

void FabricChecker::check_duplicate_lids(CheckReport& report) const {
  const Fabric& fabric = sm_.fabric();
  struct PortRef {
    NodeId node;
    PortNum port;
  };
  std::unordered_map<std::uint16_t, std::vector<PortRef>> owners;
  for (NodeId id = 0; id < fabric.size(); ++id) {
    const Node& n = fabric.node(id);
    if (n.is_switch()) {
      if (n.ports[0].lid.valid()) {
        owners[n.ports[0].lid.value()].push_back({id, 0});
      }
      continue;
    }
    for (PortNum p = 1; p <= n.num_ports(); ++p) {
      if (n.ports[p].lid.valid()) owners[n.ports[p].lid.value()].push_back({id, p});
    }
  }
  for (const auto& [lid, refs] : owners) {
    if (refs.size() < 2) continue;
    // The one sanctioned share: a PF and the vSwitch(es) it sits behind
    // answer to the same LID (§V). Anything else is an address collision.
    const PortRef* pf = nullptr;
    bool ok = true;
    for (const PortRef& r : refs) {
      const Node& n = fabric.node(r.node);
      if (n.is_ca() && n.role == CaRole::kPf) {
        if (pf != nullptr) ok = false;  // two PFs on one LID
        pf = &r;
      } else if (!n.is_vswitch()) {
        ok = false;
      }
    }
    if (ok && pf != nullptr) {
      for (const PortRef& r : refs) {
        const Node& n = fabric.node(r.node);
        if (!n.is_vswitch()) continue;
        // The vSwitch must actually host this PF.
        bool cabled = false;
        for (PortNum p = 1; p <= n.num_ports(); ++p) {
          if (n.ports[p].peer == pf->node) cabled = true;
        }
        if (!cabled) ok = false;
      }
    } else {
      ok = false;
    }
    if (!ok) {
      std::string what = "duplicate LID " + std::to_string(lid) + " on";
      for (const PortRef& r : refs) {
        what += " " + port_name(fabric, r.node, r.port);
      }
      add_violation(report, std::move(what));
    }
  }
}

void FabricChecker::check_lidmap_consistency(CheckReport& report) const {
  const Fabric& fabric = sm_.fabric();
  const LidMap& lids = sm_.lids();
  for (const Lid lid : lids.assigned_lids()) {
    ++report.lids_checked;
    const LidMap::Owner owner = lids.owner(lid);
    if (!owner.valid() || owner.node >= fabric.size()) {
      add_violation(report, "LidMap owner of LID " +
                                std::to_string(lid.value()) + " is invalid");
      continue;
    }
    const Node& n = fabric.node(owner.node);
    if (owner.port >= n.ports.size() || !n.ports[owner.port].owns(lid)) {
      add_violation(report,
                    "LID " + std::to_string(lid.value()) +
                        " owner port " + port_name(fabric, owner.node, owner.port) +
                        " does not answer to it");
      continue;
    }
    const auto attach = lids.attachment(fabric, lid);
    if (!attach) {
      ++report.lids_skipped_detached;
      continue;
    }
    const auto [sw, port] = *attach;
    if (port == 0) continue;  // the switch's own LID terminates at port 0
    const PortNum installed = fabric.node(sw).lft.get(lid);
    if (installed != port) {
      add_violation(report,
                    "LID " + std::to_string(lid.value()) +
                        " attaches to " + port_name(fabric, sw, port) +
                        " but switch forwards it to port " +
                        std::to_string(installed));
    }
  }
}

void FabricChecker::check_reachability(CheckReport& report) const {
  const Fabric& fabric = sm_.fabric();
  const LidMap& lids = sm_.lids();

  std::vector<NodeId> sources;
  for (NodeId id = 0; id < fabric.size(); ++id) {
    const Node& n = fabric.node(id);
    if (!n.is_ca() || !n.ports[1].connected()) continue;
    if (!fabric.physical_attachment(id)) continue;
    sources.push_back(id);
  }
  if (config_.max_sources > 0 && sources.size() > config_.max_sources) {
    // Deterministic even spread over the candidates, endpoints included.
    std::vector<NodeId> sampled;
    sampled.reserve(config_.max_sources);
    const std::size_t n = sources.size();
    const std::size_t k = config_.max_sources;
    for (std::size_t i = 0; i < k; ++i) {
      sampled.push_back(sources[k > 1 ? i * (n - 1) / (k - 1) : 0]);
    }
    sampled.erase(std::unique(sampled.begin(), sampled.end()), sampled.end());
    sources = std::move(sampled);
  }
  report.sources_sampled = sources.size();

  // A LID is an *active* target only while its owner is physically on the
  // fabric. A dead switch keeps its LID assignment (it returns with the
  // node), but with every cable cut the address is legitimately dark —
  // demanding reachability for it would flag every switch-death as a
  // violation.
  const auto any_port_connected = [](const Node& n) {
    for (PortNum p = 1; p <= n.num_ports(); ++p) {
      if (n.ports[p].connected()) return true;
    }
    return false;
  };
  std::vector<Lid> targets;
  for (const Lid lid : lids.assigned_lids()) {
    if (!lids.attachment(fabric, lid)) continue;
    const LidMap::Owner owner = lids.owner(lid);
    if (owner.valid() && owner.node < fabric.size() &&
        !any_port_connected(fabric.node(owner.node))) {
      ++report.lids_skipped_detached;
      continue;
    }
    targets.push_back(lid);
  }

  // The traces are pure reads of the installed tables (trace_unicast never
  // touches counters), so every source's target scan runs on the pool. The
  // merge below replays the findings in (source, target) order and
  // reconstructs exactly what a serial scan would have reported — including
  // the violation cap, the truncated flag, and the paths_traced count at
  // the point a serial scan would have bailed out.
  struct Finding {
    std::size_t target_index;
    std::string what;
  };
  std::vector<std::vector<Finding>> findings(sources.size());
  ThreadPool::global().parallel_for(0, sources.size(), [&](std::size_t i) {
    const NodeId src = sources[i];
    for (std::size_t t = 0; t < targets.size(); ++t) {
      const Lid lid = targets[t];
      const auto result = fabric::trace_unicast(fabric, src, lid);
      if (result.delivered()) continue;
      if (result.status == fabric::TraceStatus::kLoop) {
        findings[i].push_back({t, "routing loop tracing LID " +
                                      std::to_string(lid.value()) + " from " +
                                      fabric.node(src).name});
      } else {
        findings[i].push_back({t, "LID " + std::to_string(lid.value()) +
                                      " unreachable from " +
                                      fabric.node(src).name + " (" +
                                      fabric::to_string(result.status) + ")"});
      }
    }
  });

  for (std::size_t i = 0; i < sources.size(); ++i) {
    for (Finding& f : findings[i]) {
      add_violation(report, std::move(f.what));
      if (report.violations.size() >= config_.max_violations) {
        report.truncated = true;
        // A serial scan would have returned right here, having traced every
        // pair up to and including this one.
        report.paths_traced += i * targets.size() + f.target_index + 1;
        return;
      }
    }
  }
  report.paths_traced += sources.size() * targets.size();
}

void FabricChecker::check_vswitch_mapping(
    CheckReport& report, const core::VSwitchFabric& cloud) const {
  const Fabric& fabric = sm_.fabric();
  const LidMap& lids = sm_.lids();
  const auto& hyps = cloud.hypervisors();
  for (const std::uint32_t id : cloud.active_vm_ids()) {
    const core::VmHandle handle{id};
    const core::Vm& vm = cloud.vm(handle);
    const NodeId node = cloud.vm_node(handle);
    const Node& n = fabric.node(node);
    if (!n.is_ca() || n.role != CaRole::kVf) {
      add_violation(report, "VM " + std::to_string(id) +
                                " is not backed by a VF node");
      continue;
    }
    if (vm.hypervisor >= hyps.size() ||
        vm.vf_index >= hyps[vm.hypervisor].vfs.size() ||
        hyps[vm.hypervisor].vfs[vm.vf_index] != node) {
      add_violation(report, "VM " + std::to_string(id) +
                                " VF slot bookkeeping is inconsistent");
      continue;
    }
    if (!vm.lid.valid() || !n.ports[1].owns(vm.lid)) {
      add_violation(report, "VM " + std::to_string(id) + " VF port (" +
                                n.name + ") does not own the VM's LID " +
                                std::to_string(vm.lid.value()));
      continue;
    }
    const LidMap::Owner owner = lids.owner(vm.lid);
    if (owner.node != node) {
      add_violation(report, "VM " + std::to_string(id) + " LID " +
                                std::to_string(vm.lid.value()) +
                                " is not owned by its VF in the LidMap");
    }
  }
}

}  // namespace ibvs::inject
