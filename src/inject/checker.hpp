// Fabric invariant suite: what must hold after every recovery.
//
// The chaos harness (and the failure tests) assert convergence not by
// inspecting SM bookkeeping but by checking the *installed* state of the
// fabric — the same hardware tables a packet would actually traverse:
//
//   * reachability — every assigned LID with a physical attachment is
//     delivered from every (sampled) CA endpoint. Implemented as a blocked
//     bitset-reachability pass: per-switch next-hop composition over flat
//     uint64_t target bitsets, sharded across pool workers in contiguous
//     target (LID) ranges, with a serial index-ordered merge that
//     reproduces a hop-by-hop per-pair trace scan byte for byte (same
//     violations, same cap/truncation point, same paths_traced),
//   * no routing loops — a walk exceeding its hop budget means the LFTs
//     form a forwarding cycle,
//   * LFT <-> LidMap consistency — the attachment switch of every LID
//     forwards that LID out of its delivery port,
//   * no duplicate LIDs — only the architectural vSwitch/PF share (§V:
//     "the vSwitch does not need to occupy an additional LID") is allowed,
//   * vSwitch VF mapping — every active VM sits on a VF whose port owns
//     the VM's LID and whose LidMap owner points back at it.
//
// LIDs whose owner currently has no physical attachment (their uplink or
// leaf is down) are legitimately unreachable and skipped; the checker
// verifies the fabric the SM can still serve, not the parts that are gone.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/vswitch.hpp"
#include "sm/subnet_manager.hpp"

namespace ibvs::inject {

struct CheckerConfig {
  /// Stop collecting after this many violations (the report notes the cap).
  std::size_t max_violations = 16;
  /// Reachability sources sampled from the connected CA endpoints (0 = all).
  /// Sampling is deterministic: evenly spaced in NodeId order.
  std::size_t max_sources = 8;
};

struct CheckReport {
  std::size_t lids_checked = 0;
  std::size_t lids_skipped_detached = 0;  ///< owner physically unreachable
  std::size_t sources_sampled = 0;
  std::size_t paths_traced = 0;
  std::vector<std::string> violations;
  bool truncated = false;  ///< hit max_violations; more may exist

  [[nodiscard]] bool clean() const noexcept { return violations.empty(); }
};

class FabricChecker {
 public:
  explicit FabricChecker(const sm::SubnetManager& sm,
                         CheckerConfig config = {});

  /// Runs every invariant. Pass the vSwitch layer to include the VF-mapping
  /// checks (nullptr skips them, e.g. on a purely physical subnet).
  [[nodiscard]] CheckReport check(
      const core::VSwitchFabric* cloud = nullptr) const;

 private:
  void add_violation(CheckReport& report, std::string what) const;
  void check_duplicate_lids(CheckReport& report) const;
  void check_lidmap_consistency(CheckReport& report) const;
  void check_reachability(CheckReport& report) const;
  void check_vswitch_mapping(CheckReport& report,
                             const core::VSwitchFabric& cloud) const;

  const sm::SubnetManager& sm_;
  CheckerConfig config_;
};

}  // namespace ibvs::inject
