#include "inject/injector.hpp"

#include <algorithm>
#include <string_view>

#include "telemetry/metrics.hpp"
#include "util/expect.hpp"

namespace ibvs::inject {

namespace {

telemetry::Counter& event_counter(std::string_view event) {
  return telemetry::Registry::global().counter(
      "ibvs_inject_events_total", {{"event", std::string(event)}},
      "Fault-injection events applied, by kind");
}

}  // namespace

FaultInjector::FaultInjector(Fabric& fabric, std::uint64_t seed)
    : fabric_(fabric), seed_(seed), rng_(seed), dead_(fabric.size(), false) {}

void FaultInjector::attach_transport(fabric::SmpTransport* transport) {
  if (transport == nullptr) return;
  if (std::find(transports_.begin(), transports_.end(), transport) ==
      transports_.end()) {
    transports_.push_back(transport);
  }
}

void FaultInjector::set_link_fault(NodeId node, PortNum port,
                                   const LinkFault& fault) {
  link_faults_[key(node, port)] = fault;
  // Mirror onto the far end so either direction of the cable sees it.
  if (const auto far = fabric_.peer(node, port)) {
    link_faults_[key(far->first, far->second)] = fault;
  }
}

void FaultInjector::clear_link_fault(NodeId node, PortNum port) {
  link_faults_.erase(key(node, port));
  if (const auto far = fabric_.peer(node, port)) {
    link_faults_.erase(key(far->first, far->second));
  }
}

void FaultInjector::clear_link_faults() { link_faults_.clear(); }

const LinkFault& FaultInjector::fault_for(NodeId from, PortNum from_port,
                                          NodeId to,
                                          PortNum to_port) const noexcept {
  if (auto it = link_faults_.find(key(from, from_port));
      it != link_faults_.end()) {
    return it->second;
  }
  if (auto it = link_faults_.find(key(to, to_port));
      it != link_faults_.end()) {
    return it->second;
  }
  return global_fault_;
}

bool FaultInjector::drop_on_link(NodeId from, PortNum from_port, NodeId to,
                                 PortNum to_port) {
  const LinkFault& f = fault_for(from, from_port, to, to_port);
  if (f.drop_probability <= 0.0) return false;
  if (rng_.uniform() >= f.drop_probability) return false;
  ++events_.drops;
  return true;
}

double FaultInjector::jitter_us(NodeId from, PortNum from_port, NodeId to,
                                PortNum to_port) {
  const LinkFault& f = fault_for(from, from_port, to, to_port);
  if (f.jitter_max_us <= 0.0) return 0.0;
  return rng_.uniform() * f.jitter_max_us;
}

bool FaultInjector::cut_link(NodeId node, PortNum port) {
  const auto far = fabric_.peer(node, port);
  if (!far) return false;
  Cable cable{node, port, far->first, far->second};
  // Fabric::disconnect ticks LinkDowned on both ports.
  fabric_.disconnect(node, port);
  severed_.push_back(cable);
  ++events_.cuts;
  note_structural_event("link_cut");
  return true;
}

bool FaultInjector::restore_link(NodeId node, PortNum port) {
  const auto it = std::find_if(
      severed_.begin(), severed_.end(), [&](const Cable& c) {
        return (c.a == node && c.a_port == port) ||
               (c.b == node && c.b_port == port);
      });
  if (it == severed_.end()) return false;
  const Cable cable = *it;
  if (fabric_.node(cable.a).ports[cable.a_port].connected() ||
      fabric_.node(cable.b).ports[cable.b_port].connected()) {
    return false;  // an end was re-cabled in the meantime
  }
  severed_.erase(it);
  fabric_.connect(cable.a, cable.a_port, cable.b, cable.b_port);
  fabric_.node(cable.a).ports[cable.a_port].counters
      .add_link_error_recovery();
  fabric_.node(cable.b).ports[cable.b_port].counters
      .add_link_error_recovery();
  ++events_.restores;
  note_structural_event("link_restore");
  return true;
}

bool FaultInjector::flap_link(NodeId node, PortNum port) {
  if (!cut_link(node, port)) return false;
  IBVS_REQUIRE(restore_link(node, port), "flap could not restore its cut");
  ++events_.flaps;
  event_counter("link_flap").inc();
  return true;
}

std::size_t FaultInjector::kill_node(NodeId node) {
  IBVS_REQUIRE(node < fabric_.size(), "kill_node: node out of range");
  std::size_t cut = 0;
  const Node& n = fabric_.node(node);
  for (PortNum p = 1; p <= n.num_ports(); ++p) {
    if (n.ports[p].connected() && cut_link(node, p)) ++cut;
  }
  if (dead_.size() < fabric_.size()) dead_.resize(fabric_.size(), false);
  dead_[node] = true;
  ++events_.kills;
  note_structural_event("node_kill");
  return cut;
}

std::size_t FaultInjector::revive_node(NodeId node) {
  IBVS_REQUIRE(node < fabric_.size(), "revive_node: node out of range");
  std::size_t restored = 0;
  // Walk a snapshot: restore_link mutates severed_.
  std::vector<Cable> mine;
  for (const Cable& c : severed_) {
    if (c.a == node || c.b == node) mine.push_back(c);
  }
  for (const Cable& c : mine) {
    const PortNum port = c.a == node ? c.a_port : c.b_port;
    if (restore_link(node, port)) ++restored;
  }
  if (node < dead_.size()) dead_[node] = false;
  ++events_.revivals;
  note_structural_event("node_revive");
  return restored;
}

bool FaultInjector::is_dead(NodeId node) const noexcept {
  return node < dead_.size() && dead_[node];
}

void FaultInjector::invalidate_transports() {
  for (fabric::SmpTransport* t : transports_) t->invalidate_topology();
}

void FaultInjector::note_structural_event(const char* label) {
  event_counter(label).inc();
  invalidate_transports();
}

}  // namespace ibvs::inject
