// Seeded, deterministic fault injection against a live fabric.
//
// The FaultInjector is the library's fault plane: it implements the
// fabric::LinkFaultModel hook (probabilistic MAD/packet drops and latency
// jitter, drawn from a SplitMix64 stream so every run replays exactly from
// its seed) and applies *structural* events directly to the Fabric — link
// cuts, link flaps, whole-node death and revival. Structural events behave
// like the physical world the PerfMgr watches: a cut ticks LinkDowned on
// both ports, a revival ticks LinkErrorRecovery, and a probabilistic drop
// ticks SymbolErrors at the receiver (done by the transport / credit
// simulator at the point of loss). Severed cables are remembered so a dead
// node can be revived with its exact original cabling.
//
// Attached SmpTransports are topology-invalidated on every structural
// change, the same contract Fabric::connect/disconnect callers follow.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "fabric/fault.hpp"
#include "fabric/transport.hpp"
#include "ib/fabric.hpp"
#include "util/rng.hpp"

namespace ibvs::inject {

/// Per-link fault parameters (applies to both directions of the cable).
struct LinkFault {
  double drop_probability = 0.0;  ///< per-traversal loss probability
  double jitter_max_us = 0.0;     ///< extra latency, uniform in [0, max)
};

class FaultInjector final : public fabric::LinkFaultModel {
 public:
  explicit FaultInjector(Fabric& fabric, std::uint64_t seed = 1);

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// Registers a transport whose hop cache must be invalidated whenever a
  /// structural event changes the cabling.
  void attach_transport(fabric::SmpTransport* transport);

  // --- Probabilistic faults (the LinkFaultModel plane). ---

  /// Applies to every link that has no per-link override.
  void set_global_fault(const LinkFault& fault) noexcept {
    global_fault_ = fault;
  }
  [[nodiscard]] const LinkFault& global_fault() const noexcept {
    return global_fault_;
  }

  /// Sets the fault parameters of one cable, identified by either end.
  void set_link_fault(NodeId node, PortNum port, const LinkFault& fault);
  void clear_link_fault(NodeId node, PortNum port);
  void clear_link_faults();

  bool drop_on_link(NodeId from, PortNum from_port, NodeId to,
                    PortNum to_port) override;
  double jitter_us(NodeId from, PortNum from_port, NodeId to,
                   PortNum to_port) override;

  // --- Structural events. ---

  /// Severs the cable at (node, port): both ports tick LinkDowned, the
  /// cable is remembered for restore_link()/revive_node(). No-op (returns
  /// false) if the port is not cabled.
  bool cut_link(NodeId node, PortNum port);

  /// Re-plugs the remembered cable at (node, port); both ports tick
  /// LinkErrorRecovery. Returns false when no severed cable matches or an
  /// end is no longer free.
  bool restore_link(NodeId node, PortNum port);

  /// Cut followed by immediate restore — the transient a retrained link
  /// shows: LinkDowned and LinkErrorRecovery both tick.
  bool flap_link(NodeId node, PortNum port);

  /// Severs every cable of `node` (each one a cut_link) and marks it dead.
  /// Returns the number of cables severed.
  std::size_t kill_node(NodeId node);

  /// Re-plugs every remembered cable of a dead `node` whose far end is
  /// still available. Returns the number of cables restored.
  std::size_t revive_node(NodeId node);

  [[nodiscard]] bool is_dead(NodeId node) const noexcept;

  /// Cables currently severed (most recent last).
  struct Cable {
    NodeId a = kInvalidNode;
    PortNum a_port = 0;
    NodeId b = kInvalidNode;
    PortNum b_port = 0;
  };
  [[nodiscard]] const std::vector<Cable>& severed() const noexcept {
    return severed_;
  }

  /// Totals over the injector's lifetime (also exported as the
  /// `ibvs_inject_events_total{event=...}` counter family).
  struct EventCounts {
    std::uint64_t cuts = 0;
    std::uint64_t restores = 0;
    std::uint64_t flaps = 0;
    std::uint64_t kills = 0;
    std::uint64_t revivals = 0;
    std::uint64_t drops = 0;  ///< probabilistic losses delivered via the hook
  };
  [[nodiscard]] const EventCounts& events() const noexcept { return events_; }

 private:
  [[nodiscard]] static std::uint64_t key(NodeId node, PortNum port) noexcept {
    return (static_cast<std::uint64_t>(node) << 8) | port;
  }
  /// The fault governing a traversal out of (from, from_port) into
  /// (to, to_port): per-link override on either end, else the global one.
  [[nodiscard]] const LinkFault& fault_for(NodeId from, PortNum from_port,
                                           NodeId to,
                                           PortNum to_port) const noexcept;
  void invalidate_transports();
  void note_structural_event(const char* label);

  Fabric& fabric_;
  std::uint64_t seed_;
  SplitMix64 rng_;
  LinkFault global_fault_;
  std::unordered_map<std::uint64_t, LinkFault> link_faults_;
  std::vector<Cable> severed_;
  std::vector<bool> dead_;
  std::vector<fabric::SmpTransport*> transports_;
  EventCounts events_;
};

}  // namespace ibvs::inject
