#include "model/cost.hpp"

namespace ibvs::model {

double lft_distribution_us(const CostParams& p) noexcept {
  return static_cast<double>(p.n) * static_cast<double>(p.m) *
         (p.k_us + p.r_us);
}

double full_reconfiguration_us(double pc_us, const CostParams& p) noexcept {
  return pc_us + lft_distribution_us(p);
}

double vswitch_reconfiguration_us(std::size_t n_prime, std::size_t m_prime,
                                  double k_us, double r_us) noexcept {
  return static_cast<double>(n_prime) * static_cast<double>(m_prime) *
         (k_us + r_us);
}

double vswitch_reconfiguration_destrouted_us(std::size_t n_prime,
                                             std::size_t m_prime,
                                             double k_us) noexcept {
  return static_cast<double>(n_prime) * static_cast<double>(m_prime) * k_us;
}

double pipelined_us(double serial_us, unsigned depth) noexcept {
  return depth <= 1 ? serial_us : serial_us / static_cast<double>(depth);
}

Table1Row table1_row(std::size_t nodes, std::size_t switches) {
  Table1Row row;
  row.nodes = nodes;
  row.switches = switches;
  row.lids = nodes + switches;
  row.min_lft_blocks = (row.lids + kLftBlockSize - 1) / kLftBlockSize;
  row.min_smps_full_rc =
      static_cast<std::uint64_t>(switches) * row.min_lft_blocks;
  row.min_smps_vswitch = 1;
  row.max_smps_swap = 2ull * switches;
  row.max_smps_copy = switches;
  return row;
}

std::vector<Table1Row> table1_paper_rows() {
  return {
      table1_row(324, 36),
      table1_row(648, 54),
      table1_row(5832, 972),
      table1_row(11664, 1620),
  };
}

PrepopulatedLimits prepopulated_limits(
    std::size_t vfs_per_hypervisor) noexcept {
  PrepopulatedLimits limits;
  limits.lids_per_hypervisor = 1 + vfs_per_hypervisor;
  limits.max_hypervisors =
      kUnicastLidCount / (limits.lids_per_hypervisor == 0
                              ? 1
                              : limits.lids_per_hypervisor);
  limits.max_vms = limits.max_hypervisors * vfs_per_hypervisor;
  return limits;
}

}  // namespace ibvs::model
