// Analytical cost model — equations (1) through (5) of §VI, plus the
// closed-form SMP counts behind Table I.
//
// Notation (paper's): n = switches, m = LFT blocks updated per switch,
// k = average SMP network traversal time, r = average directed-routing
// overhead per SMP, PCt = path computation time, LFTDt = LFT distribution
// time, RCt = full reconfiguration time.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ib/types.hpp"

namespace ibvs::model {

struct CostParams {
  std::size_t n = 0;   ///< switches in the subnet
  std::size_t m = 0;   ///< LFT blocks to update per switch
  double k_us = 0.0;   ///< average per-SMP traversal time
  double r_us = 0.0;   ///< average per-SMP directed-routing overhead
};

/// Eq. (2): LFTDt = n * m * (k + r).
[[nodiscard]] double lft_distribution_us(const CostParams& p) noexcept;

/// Eq. (3): RCt = PCt + n * m * (k + r).
[[nodiscard]] double full_reconfiguration_us(double pc_us,
                                             const CostParams& p) noexcept;

/// Eq. (4): vSwitch RCt = n' * m' * (k + r), with m' in {1, 2}.
[[nodiscard]] double vswitch_reconfiguration_us(std::size_t n_prime,
                                                std::size_t m_prime,
                                                double k_us,
                                                double r_us) noexcept;

/// Eq. (5): destination-based routing eliminates r.
[[nodiscard]] double vswitch_reconfiguration_destrouted_us(
    std::size_t n_prime, std::size_t m_prime, double k_us) noexcept;

/// Pipelining refinement (§VI-B, last paragraph): with `depth` SMPs kept in
/// flight, the serial sum divides by the pipelining capability.
[[nodiscard]] double pipelined_us(double serial_us, unsigned depth) noexcept;

/// One row of Table I.
struct Table1Row {
  std::size_t nodes = 0;
  std::size_t switches = 0;
  std::size_t lids = 0;            ///< nodes + switches
  std::size_t min_lft_blocks = 0;  ///< ceil(lids / 64)
  std::uint64_t min_smps_full_rc = 0;    ///< switches * blocks
  std::uint64_t min_smps_vswitch = 1;    ///< best case: a single SMP
  std::uint64_t max_smps_swap = 0;       ///< 2 * switches (prepopulated)
  std::uint64_t max_smps_copy = 0;       ///< 1 * switches (dynamic)
};

/// Closed-form row for a subnet with `nodes` endpoints and `switches`
/// switches, each consuming one LID (the paper's accounting).
[[nodiscard]] Table1Row table1_row(std::size_t nodes, std::size_t switches);

/// The four rows of Table I (324/648/5832/11664-node fat-trees).
[[nodiscard]] std::vector<Table1Row> table1_paper_rows();

/// §V-A sizing: with `vfs_per_hypervisor` VFs each consuming a LID, the
/// hypervisor ceiling of a prepopulated-LIDs subnet and its VM ceiling.
struct PrepopulatedLimits {
  std::size_t lids_per_hypervisor = 0;  ///< 1 (PF) + VFs
  std::size_t max_hypervisors = 0;      ///< floor(49151 / per-hyp)
  std::size_t max_vms = 0;              ///< hypervisors * VFs
};
[[nodiscard]] PrepopulatedLimits prepopulated_limits(
    std::size_t vfs_per_hypervisor) noexcept;

}  // namespace ibvs::model
