#include "perf/health.hpp"

#include <algorithm>
#include <sstream>

#include "telemetry/metrics.hpp"
#include "util/expect.hpp"

namespace ibvs::perf {

namespace {

struct HealthMetrics {
  telemetry::Gauge& ports_ok;
  telemetry::Gauge& ports_degraded;
  telemetry::Gauge& ports_error;
  telemetry::Gauge& ports_stuck;
  telemetry::Gauge& fabric_status;
  telemetry::Counter& findings;

  static HealthMetrics& get() {
    auto& reg = telemetry::Registry::global();
    static HealthMetrics m{
        reg.gauge("ibvs_health_ports", {{"status", "ok"}},
                  "Ports by health verdict in the last analyzed sweep"),
        reg.gauge("ibvs_health_ports", {{"status", "degraded"}}),
        reg.gauge("ibvs_health_ports", {{"status", "error"}}),
        reg.gauge("ibvs_health_stuck_ports", {},
                  "Ports wedged (waiting, moving nothing) for consecutive "
                  "sweeps"),
        reg.gauge("ibvs_health_fabric_status", {},
                  "Overall fabric verdict: 0=ok 1=degraded 2=error"),
        reg.counter("ibvs_health_findings_total", {},
                    "Non-Ok port findings produced by the health monitor"),
    };
    return m;
  }
};

void append_reason(std::string& reason, const std::string& part) {
  if (!reason.empty()) reason += ", ";
  reason += part;
}

}  // namespace

std::string_view to_string(PortStatus status) noexcept {
  switch (status) {
    case PortStatus::kOk: return "OK";
    case PortStatus::kDegraded: return "DEGRADED";
    case PortStatus::kError: return "ERROR";
  }
  return "?";
}

HealthReport HealthMonitor::analyze(const SweepReport& sweep) {
  HealthReport report;
  report.sweep_index = sweep.sweep_index;
  report.ports = sweep.deltas.size();

  for (const PortDelta& d : sweep.deltas) {
    PortStatus status = PortStatus::kOk;
    std::string reason;
    const auto raise = [&](PortStatus s, const std::string& why) {
      status = std::max(status, s);
      append_reason(reason, why);
    };
    if (d.link_downed >= thresholds_.link_downed_error) {
      raise(PortStatus::kError,
            std::to_string(d.link_downed) + " link-downed");
    }
    if (d.symbol_errors >= thresholds_.symbol_errors_error) {
      raise(PortStatus::kError,
            std::to_string(d.symbol_errors) + " symbol errors");
    } else if (d.symbol_errors >= thresholds_.symbol_errors_degraded) {
      raise(PortStatus::kDegraded,
            std::to_string(d.symbol_errors) + " symbol errors");
    }
    if (d.rcv_errors >= thresholds_.rcv_errors_degraded) {
      raise(PortStatus::kDegraded,
            std::to_string(d.rcv_errors) + " rcv errors");
    }
    if (d.xmit_discards >= thresholds_.discards_degraded) {
      raise(PortStatus::kDegraded,
            std::to_string(d.xmit_discards) + " xmit discards");
    }

    switch (status) {
      case PortStatus::kOk: ++report.ok; break;
      case PortStatus::kDegraded: ++report.degraded; break;
      case PortStatus::kError: ++report.errors; break;
    }
    if (status != PortStatus::kOk) {
      report.findings.push_back({d.node, d.port, status, std::move(reason)});
    }

    // Stuck detection: waiting for credits but moving nothing, sweep after
    // sweep. Uses the same key scheme as the PerfMgr history.
    const std::uint64_t k =
        (static_cast<std::uint64_t>(d.node) << 8) | d.port;
    if (d.xmit_wait > 0 && d.xmit_pkts == 0) {
      if (++wedged_streak_[k] >= thresholds_.stuck_sweeps) {
        report.stuck.push_back({d.node, d.port});
      }
    } else {
      wedged_streak_.erase(k);
    }
  }

  // Congestion hotspots: top-k ports by xmit-wait movement.
  std::vector<Hotspot> waiting;
  for (const PortDelta& d : sweep.deltas) {
    if (d.xmit_wait >= thresholds_.min_hotspot_wait) {
      waiting.push_back({d.node, d.port, d.xmit_wait});
    }
  }
  const std::size_t k = std::min(thresholds_.top_k_hotspots, waiting.size());
  std::partial_sort(waiting.begin(), waiting.begin() + k, waiting.end(),
                    [](const Hotspot& a, const Hotspot& b) {
                      return a.xmit_wait > b.xmit_wait;
                    });
  waiting.resize(k);
  report.hotspots = std::move(waiting);

  auto& metrics = HealthMetrics::get();
  metrics.ports_ok.set(static_cast<double>(report.ok));
  metrics.ports_degraded.set(static_cast<double>(report.degraded));
  metrics.ports_error.set(static_cast<double>(report.errors));
  metrics.ports_stuck.set(static_cast<double>(report.stuck.size()));
  metrics.fabric_status.set(
      static_cast<double>(static_cast<int>(report.fabric_status())));
  metrics.findings.inc(report.findings.size());
  return report;
}

std::string render_fabric_health(const HealthReport& report,
                                 const Fabric& fabric) {
  const auto port_name = [&fabric](NodeId node, PortNum port) {
    std::ostringstream os;
    os << fabric.node(node).name << "/p" << static_cast<unsigned>(port);
    return os.str();
  };
  std::ostringstream os;
  os << "ibvs-fabric-health: sweep #" << report.sweep_index << " — "
     << to_string(report.fabric_status()) << "\n";
  os << "  ports polled : " << report.ports << "\n";
  os << "  ok           : " << report.ok << "\n";
  os << "  degraded     : " << report.degraded << "\n";
  os << "  error        : " << report.errors << "\n";
  if (!report.findings.empty()) {
    os << "findings:\n";
    for (const PortFinding& f : report.findings) {
      os << "  [" << to_string(f.status) << "] "
         << port_name(f.node, f.port) << ": " << f.reason << "\n";
    }
  }
  if (!report.hotspots.empty()) {
    os << "congestion hotspots (by xmit-wait delta):\n";
    for (const Hotspot& h : report.hotspots) {
      os << "  " << port_name(h.node, h.port) << "  wait=" << h.xmit_wait
         << "\n";
    }
  }
  if (!report.stuck.empty()) {
    os << "stuck ports (waiting, moving nothing):\n";
    for (const PortKey& p : report.stuck) {
      os << "  " << port_name(p.node, p.port) << "\n";
    }
  }
  return os.str();
}

void apply_to_sm(sm::SubnetManager& sm, const HealthReport& report) {
  for (const PortFinding& f : report.findings) {
    sm.flag_degraded_port(f.node, f.port, f.reason);
  }
}

}  // namespace ibvs::perf
