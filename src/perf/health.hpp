// Fabric health and anomaly detection on top of PerfMgr sweep deltas.
//
// Three detectors, all operating on per-sweep counter movement (so a long-
// running fabric with old accumulated errors is not permanently "sick"):
//
//  * link quality  — symbol-error / rcv-error / discard / link-downed rates
//    against thresholds, classifying each port Ok / Degraded / Error;
//  * congestion hotspots — the top-k ports by PortXmitWait delta, the
//    standard "where is the fabric backed up" question;
//  * stuck ports — ports that accumulate xmit-wait but move no packets for
//    several consecutive sweeps (head-of-line wedged, e.g. a routing loop
//    or a dead peer that still grants no credits).
//
// The summary is exported through the telemetry registry (Prometheus/JSON)
// and renderable as an ibdiagnet-style text report; apply_to_sm() feeds the
// verdicts back into the SubnetManager so the SM can flag degraded links.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "perf/perf_mgr.hpp"

namespace ibvs::perf {

enum class PortStatus : std::uint8_t { kOk, kDegraded, kError };

[[nodiscard]] std::string_view to_string(PortStatus status) noexcept;

struct HealthThresholds {
  /// Symbol-error delta per sweep at which a link counts as degraded /
  /// broken. BER spikes show up here first on real fabrics.
  std::uint64_t symbol_errors_degraded = 1;
  std::uint64_t symbol_errors_error = 64;
  std::uint64_t rcv_errors_degraded = 1;
  std::uint64_t discards_degraded = 1;
  /// Any link-downed event within a sweep is an error.
  std::uint64_t link_downed_error = 1;
  /// Congestion hotspots reported: top-k by xmit-wait delta.
  std::size_t top_k_hotspots = 4;
  std::uint64_t min_hotspot_wait = 1;
  /// Consecutive sweeps of (xmit_wait > 0, xmit_pkts == 0) before a port
  /// counts as stuck.
  std::uint64_t stuck_sweeps = 2;
};

struct PortFinding {
  NodeId node = kInvalidNode;
  PortNum port = 0;
  PortStatus status = PortStatus::kOk;
  std::string reason;
};

struct Hotspot {
  NodeId node = kInvalidNode;
  PortNum port = 0;
  std::uint64_t xmit_wait = 0;  ///< delta this sweep
};

struct HealthReport {
  std::uint64_t sweep_index = 0;
  std::size_t ports = 0;
  std::size_t ok = 0;
  std::size_t degraded = 0;
  std::size_t errors = 0;
  std::vector<PortFinding> findings;  ///< the non-Ok ports
  std::vector<Hotspot> hotspots;      ///< top-k by xmit-wait delta
  std::vector<PortKey> stuck;

  [[nodiscard]] PortStatus fabric_status() const noexcept {
    if (errors > 0) return PortStatus::kError;
    if (degraded > 0 || !stuck.empty()) return PortStatus::kDegraded;
    return PortStatus::kOk;
  }
};

class HealthMonitor {
 public:
  explicit HealthMonitor(HealthThresholds thresholds = {})
      : thresholds_(thresholds) {}

  /// Classifies every port of the sweep, updates stuck-port streaks, and
  /// refreshes the registry gauges. Call once per sweep, in order.
  HealthReport analyze(const SweepReport& sweep);

  [[nodiscard]] const HealthThresholds& thresholds() const noexcept {
    return thresholds_;
  }

 private:
  HealthThresholds thresholds_;
  /// (node<<8)|port -> consecutive wedged sweeps.
  std::unordered_map<std::uint64_t, std::uint64_t> wedged_streak_;
};

/// ibdiagnet-style human-readable report ("ibvs-fabric-health").
[[nodiscard]] std::string render_fabric_health(const HealthReport& report,
                                               const Fabric& fabric);

/// Feeds non-Ok findings into the SM (SubnetManager::flag_degraded_port).
void apply_to_sm(sm::SubnetManager& sm, const HealthReport& report);

}  // namespace ibvs::perf
