#include "perf/int_collector.hpp"

#include <algorithm>
#include <bit>
#include <sstream>

#include "telemetry/metrics.hpp"

namespace ibvs::perf {

namespace {

/// ibvs_int_* registry handles, resolved once (hot-path de-lookup).
struct IntMetrics {
  telemetry::Counter* stacks = nullptr;
  telemetry::Counter* hops = nullptr;
  telemetry::Counter* truncated = nullptr;
  telemetry::Histogram* hop_blocked = nullptr;
  telemetry::Histogram* hop_occupancy = nullptr;
  telemetry::Gauge* hot_links = nullptr;
  telemetry::Counter* map_builds = nullptr;

  static const IntMetrics& get() {
    static const IntMetrics metrics = [] {
      IntMetrics m;
      auto& reg = telemetry::Registry::global();
      m.stacks = &reg.counter("ibvs_int_stacks_total", {},
                              "Delivered INT stacks aggregated");
      m.hops = &reg.counter("ibvs_int_hops_total", {},
                            "Per-hop INT records aggregated");
      m.truncated =
          &reg.counter("ibvs_int_stacks_truncated_total", {},
                       "Delivered stacks that hit the depth bound");
      m.hop_blocked = &reg.histogram(
          "ibvs_int_hop_blocked_steps", {},
          telemetry::HistogramOptions{.min_bound = 1.0, .num_buckets = 20},
          "Blocked steps one hop record reported (hop-latency proxy)");
      m.hop_occupancy = &reg.histogram(
          "ibvs_int_hop_occupancy", {},
          telemetry::HistogramOptions{.min_bound = 1.0, .num_buckets = 10},
          "Egress (channel, VL) credit occupancy at forwarding time");
      m.hot_links = &reg.gauge(
          "ibvs_int_hot_links", {},
          "Hot links in the last congestion map built (top-k ranking size)");
      m.map_builds = &reg.counter("ibvs_int_map_builds_total", {},
                                  "Congestion maps built from INT stacks");
      return m;
    }();
    return metrics;
  }
};

}  // namespace

void Log2Distribution::observe(std::uint64_t v) noexcept {
  counts[std::bit_width(v)] += 1;
  ++total;
  sum += v;
  if (v > max) max = v;
}

std::uint64_t Log2Distribution::quantile(double q) const noexcept {
  if (total == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const std::uint64_t rank =
      static_cast<std::uint64_t>(q * static_cast<double>(total - 1)) + 1;
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += counts[b];
    if (seen >= rank) {
      // Upper bound of bucket b: values with bit_width b are < 2^b.
      const std::uint64_t bound = b == 0 ? 0 : (1ULL << b) - 1;
      return std::min(bound, max);
    }
  }
  return max;
}

void IntCollector::on_path(const fabric::IntPathRecord& record) {
  const IntMetrics& m = IntMetrics::get();
  ++stacks_;
  m.stacks->inc();
  if (record.truncated) {
    ++truncated_;
    m.truncated->inc();
  }
  std::uint64_t path_blocked = 0;
  for (const auto& hop : record.hops) {
    ++hops_;
    m.hops->inc();
    m.hop_blocked->observe(static_cast<double>(hop.blocked_steps));
    m.hop_occupancy->observe(static_cast<double>(hop.occupancy));
    auto& link = links_[LinkKey{hop.node, hop.egress_port}];
    ++link.samples;
    link.occupancy.observe(hop.occupancy);
    link.blocked.observe(hop.blocked_steps);
    link.tenant_blocked[record.tenant] += hop.blocked_steps;
    path_blocked += hop.blocked_steps;
  }
  tenant_blocked_[record.tenant] += path_blocked;
  auto& flow =
      flows_[FlowKey{record.src, record.dst.value(), record.tenant}];
  ++flow.packets;
  flow.blocked_total += path_blocked;
  if (record.truncated) {
    ++flow.truncated;
  } else {
    flow.last_hops = record.hops;
  }
}

CongestionMap IntCollector::build_map(std::size_t top_k) const {
  CongestionMap map;
  map.stacks = stacks_;
  map.hops = hops_;
  map.truncated = truncated_;
  map.links = links_;
  map.tenant_blocked = tenant_blocked_;

  // Rank by total blocked steps, then by key so ties are deterministic.
  std::vector<HotLink> ranking;
  ranking.reserve(links_.size());
  for (const auto& [key, link] : links_) {
    if (link.blocked.sum == 0) continue;  // never congested: not rankable
    HotLink hot;
    hot.link = key;
    hot.blocked_total = link.blocked.sum;
    hot.samples = link.samples;
    hot.occupancy_p95 = link.occupancy.quantile(0.95);
    hot.blocked_p95 = link.blocked.quantile(0.95);
    ranking.push_back(hot);
  }
  std::sort(ranking.begin(), ranking.end(),
            [](const HotLink& a, const HotLink& b) {
              if (a.blocked_total != b.blocked_total) {
                return a.blocked_total > b.blocked_total;
              }
              return a.link < b.link;
            });
  if (ranking.size() > top_k) ranking.resize(top_k);
  map.hot_links = std::move(ranking);

  const IntMetrics& m = IntMetrics::get();
  m.hot_links->set(static_cast<double>(map.hot_links.size()));
  m.map_builds->inc();
  return map;
}

void IntCollector::reset() {
  stacks_ = 0;
  hops_ = 0;
  truncated_ = 0;
  links_.clear();
  flows_.clear();
  tenant_blocked_.clear();
}

std::uint64_t CongestionMap::blocked_on(NodeId node,
                                        PortNum port) const noexcept {
  const auto it = links.find(LinkKey{node, port});
  return it == links.end() ? 0 : it->second.blocked.sum;
}

bool CongestionMap::is_hot(NodeId node, PortNum port) const noexcept {
  const LinkKey key{node, port};
  for (const auto& hot : hot_links) {
    if (hot.link == key) return true;
  }
  return false;
}

std::string CongestionMap::to_json() const {
  std::ostringstream os;
  os << "{\"stacks\":" << stacks << ",\"hops\":" << hops
     << ",\"truncated\":" << truncated << ",\"links\":[";
  bool first = true;
  for (const auto& [key, link] : links) {
    if (!first) os << ",";
    first = false;
    os << "{\"node\":" << key.node << ",\"port\":" << unsigned{key.port}
       << ",\"samples\":" << link.samples
       << ",\"occupancy_p50\":" << link.occupancy.quantile(0.5)
       << ",\"occupancy_p95\":" << link.occupancy.quantile(0.95)
       << ",\"occupancy_max\":" << link.occupancy.max
       << ",\"blocked_p50\":" << link.blocked.quantile(0.5)
       << ",\"blocked_p95\":" << link.blocked.quantile(0.95)
       << ",\"blocked_max\":" << link.blocked.max
       << ",\"blocked_total\":" << link.blocked.sum << ",\"tenants\":[";
    bool tfirst = true;
    for (const auto& [tenant, blocked] : link.tenant_blocked) {
      if (!tfirst) os << ",";
      tfirst = false;
      os << "{\"tenant\":" << tenant << ",\"blocked\":" << blocked << "}";
    }
    os << "]}";
  }
  os << "],\"hot_links\":[";
  first = true;
  for (const auto& hot : hot_links) {
    if (!first) os << ",";
    first = false;
    os << "{\"node\":" << hot.link.node
       << ",\"port\":" << unsigned{hot.link.port}
       << ",\"blocked_total\":" << hot.blocked_total
       << ",\"samples\":" << hot.samples
       << ",\"occupancy_p95\":" << hot.occupancy_p95
       << ",\"blocked_p95\":" << hot.blocked_p95 << "}";
  }
  os << "],\"tenants\":[";
  first = true;
  for (const auto& [tenant, blocked] : tenant_blocked) {
    if (!first) os << ",";
    first = false;
    os << "{\"tenant\":" << tenant << ",\"blocked\":" << blocked << "}";
  }
  os << "]}";
  return os.str();
}

std::string_view to_string(LinkVerdict verdict) noexcept {
  switch (verdict) {
    case LinkVerdict::kHot:
      return "hot";
    case LinkVerdict::kBroken:
      return "broken";
    case LinkVerdict::kHotAndBroken:
      return "hot+broken";
  }
  return "?";
}

std::vector<LinkDiagnosis> fuse_with_health(const CongestionMap& map,
                                            const HealthReport& health) {
  // Index the health findings (non-Ok ports) by link.
  std::map<LinkKey, const PortFinding*> broken;
  for (const auto& finding : health.findings) {
    broken[LinkKey{finding.node, finding.port}] = &finding;
  }

  std::map<LinkKey, LinkDiagnosis> out;
  for (const auto& hot : map.hot_links) {
    LinkDiagnosis d;
    d.link = hot.link;
    d.blocked_total = hot.blocked_total;
    const auto it = broken.find(hot.link);
    if (it != broken.end()) {
      d.verdict = LinkVerdict::kHotAndBroken;
      d.reason = "INT: " + std::to_string(hot.blocked_total) +
                 " blocked steps; PMA: " + it->second->reason;
    } else {
      d.verdict = LinkVerdict::kHot;
      d.reason = "INT: " + std::to_string(hot.blocked_total) +
                 " blocked steps, no PMA errors — congestion, not a fault";
    }
    out[d.link] = std::move(d);
  }
  for (const auto& [key, finding] : broken) {
    if (out.count(key) != 0) continue;
    LinkDiagnosis d;
    d.link = key;
    d.verdict = LinkVerdict::kBroken;
    d.blocked_total = map.blocked_on(key.node, key.port);
    d.reason = "PMA: " + finding->reason + "; INT sees no queueing";
    out[key] = std::move(d);
  }

  std::vector<LinkDiagnosis> result;
  result.reserve(out.size());
  for (auto& [key, d] : out) result.push_back(std::move(d));
  return result;
}

}  // namespace ibvs::perf
