// INT collector: from delivered per-packet hop stacks to a fabric-wide
// congestion map.
//
// The credit simulator's INT mode (fabric/credit_sim.hpp) samples packets
// and appends one metadata record per switch crossing; this sink aggregates
// the delivered stacks into:
//
//  * per-flow path records — the last observed path and the queueing it
//    met, keyed by (src, dst LID, tenant);
//  * per-link congestion stats — occupancy and blocked-step distributions
//    (log2-bucketed, so percentiles are deterministic and memory stays
//    O(links)) for every (switch, egress port) that appeared in a stack,
//    with per-tenant blocked-step attribution;
//  * a CongestionMap — the control-plane export: per-link percentiles,
//    top-k hot links by blocked steps, per-tenant totals, serialized to
//    JSON for the benches' --int-out flag and summarized into the metrics
//    registry (ibvs_int_* families).
//
// This is the signal PMA port counters structurally cannot provide: a
// counter aggregates everything that crossed the port, so it cannot say
// *whose* packets queued there. The stack can. fuse_with_health() combines
// the map with PerfMgr's PMA-delta view so a hot link (queueing, no errors)
// is distinguishable from a broken one (symbol errors, discards).
//
// Aggregation is deterministic: records arrive in delivery order from the
// (single-threaded) simulator, all containers are ordered maps, and the
// JSON export is byte-stable for a given record stream regardless of the
// global thread pool's size.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "fabric/credit_sim.hpp"
#include "perf/health.hpp"

namespace ibvs::perf {

/// A directed link identified by its transmitting (egress) side.
struct LinkKey {
  NodeId node = kInvalidNode;
  PortNum port = 0;
  [[nodiscard]] auto operator<=>(const LinkKey&) const = default;
};

/// Log2-bucketed distribution: bucket b counts values v with
/// bit_width(v) == b (bucket 0 is v == 0). Percentile estimates report the
/// bucket's upper bound — coarse, but deterministic and O(1) memory.
struct Log2Distribution {
  static constexpr std::size_t kBuckets = 65;
  std::uint64_t counts[kBuckets] = {};
  std::uint64_t total = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;

  void observe(std::uint64_t v) noexcept;
  /// Upper bound of the bucket holding the q-quantile (q in [0,1]).
  [[nodiscard]] std::uint64_t quantile(double q) const noexcept;
  [[nodiscard]] double mean() const noexcept {
    return total == 0 ? 0.0 : static_cast<double>(sum) /
                                  static_cast<double>(total);
  }
};

/// Everything the stacks said about one link.
struct LinkCongestion {
  std::uint64_t samples = 0;  ///< hop records naming this egress
  Log2Distribution occupancy;
  Log2Distribution blocked;
  /// Blocked steps attributed per tenant — the question PMA counters
  /// cannot answer.
  std::map<std::uint32_t, std::uint64_t> tenant_blocked;
};

/// One entry of the top-k hot-link ranking.
struct HotLink {
  LinkKey link;
  std::uint64_t blocked_total = 0;  ///< sum of blocked steps observed here
  std::uint64_t samples = 0;
  std::uint64_t occupancy_p95 = 0;
  std::uint64_t blocked_p95 = 0;
};

/// The last path one flow took and the queueing it met.
struct FlowPath {
  std::uint64_t packets = 0;         ///< delivered sampled packets
  std::uint64_t blocked_total = 0;   ///< across all sampled packets
  std::uint64_t truncated = 0;
  std::vector<fabric::IntHop> last_hops;  ///< most recent complete stack
};

struct FlowKey {
  NodeId src = kInvalidNode;
  std::uint32_t dst_lid = 0;
  std::uint32_t tenant = 0;
  [[nodiscard]] auto operator<=>(const FlowKey&) const = default;
};

/// Control-plane export of the aggregated stacks.
struct CongestionMap {
  std::uint64_t stacks = 0;
  std::uint64_t hops = 0;
  std::uint64_t truncated = 0;
  std::map<LinkKey, LinkCongestion> links;
  std::vector<HotLink> hot_links;  ///< top-k by blocked_total, ties by key
  std::map<std::uint32_t, std::uint64_t> tenant_blocked;

  /// Total blocked steps the stacks attribute to this egress (0 when the
  /// link never appeared — i.e. no sampled packet crossed it).
  [[nodiscard]] std::uint64_t blocked_on(NodeId node,
                                         PortNum port) const noexcept;
  /// Is (node, port) in the hot-link ranking?
  [[nodiscard]] bool is_hot(NodeId node, PortNum port) const noexcept;

  /// Deterministic JSON ({"stacks":..., "links":[...],
  /// "hot_links":[...], "tenants":[...]}) — the payload of --int-out.
  [[nodiscard]] std::string to_json() const;
};

/// IntSink implementation: aggregate stacks, build maps. Feed it from one
/// simulation at a time (the simulator is single-threaded); reset() between
/// scenarios that must not mix.
class IntCollector : public fabric::IntSink {
 public:
  void on_path(const fabric::IntPathRecord& record) override;

  /// Builds the congestion map from everything collected so far and
  /// refreshes the ibvs_int_* registry summary (hot-link gauge, histogram
  /// observations are ticked per record in on_path).
  [[nodiscard]] CongestionMap build_map(std::size_t top_k = 8) const;

  [[nodiscard]] const std::map<FlowKey, FlowPath>& flows() const noexcept {
    return flows_;
  }
  [[nodiscard]] std::uint64_t stacks() const noexcept { return stacks_; }

  void reset();

 private:
  std::uint64_t stacks_ = 0;
  std::uint64_t hops_ = 0;
  std::uint64_t truncated_ = 0;
  std::map<LinkKey, LinkCongestion> links_;
  std::map<FlowKey, FlowPath> flows_;
  std::map<std::uint32_t, std::uint64_t> tenant_blocked_;
};

/// PMA ∪ INT fusion verdict for one link.
enum class LinkVerdict : std::uint8_t {
  kHot,          ///< INT sees queueing, PMA sees no errors: congestion
  kBroken,       ///< PMA sees errors, INT sees no queueing: link fault
  kHotAndBroken, ///< both — a dying link backing traffic up
};

[[nodiscard]] std::string_view to_string(LinkVerdict verdict) noexcept;

struct LinkDiagnosis {
  LinkKey link;
  LinkVerdict verdict = LinkVerdict::kHot;
  std::uint64_t blocked_total = 0;  ///< from the map (0 for pure kBroken)
  std::string reason;               ///< health finding / hot-link evidence
};

/// Fuses the congestion map with a PerfMgr health report: every hot link
/// and every non-Ok health finding yields one diagnosis, so "hot" is
/// distinguishable from "broken" (and from both). Deterministic order
/// (sorted by LinkKey).
[[nodiscard]] std::vector<LinkDiagnosis> fuse_with_health(
    const CongestionMap& map, const HealthReport& health);

}  // namespace ibvs::perf
