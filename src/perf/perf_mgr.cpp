#include "perf/perf_mgr.hpp"

#include <string>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "util/expect.hpp"

namespace ibvs::perf {

namespace {

struct PerfMetrics {
  telemetry::Counter& sweeps;
  telemetry::Counter& ports_polled;
  telemetry::Counter& clears;
  telemetry::Gauge& last_mads;
  telemetry::Gauge& last_time_us;
  telemetry::Gauge& last_ports;

  static PerfMetrics& get() {
    auto& reg = telemetry::Registry::global();
    static PerfMetrics m{
        reg.counter("ibvs_perf_sweeps_total", {},
                    "PerfMgr polling sweeps completed"),
        reg.counter("ibvs_perf_ports_polled_total", {},
                    "Ports polled across all PerfMgr sweeps"),
        reg.counter("ibvs_perf_counter_clears_total", {},
                    "Proactive classic-counter clears (saturation avoidance)"),
        reg.gauge("ibvs_perf_last_sweep_mads", {},
                  "PMA MADs the last sweep cost"),
        reg.gauge("ibvs_perf_last_sweep_time_us", {},
                  "Batch makespan of the last sweep under the timing model"),
        reg.gauge("ibvs_perf_last_sweep_ports", {},
                  "Ports polled by the last sweep"),
    };
    return m;
  }
};

/// Delta of one classic (saturating) field. A sample smaller than the
/// previous one means the block was cleared between polls, so the new
/// sample *is* the delta.
std::uint64_t classic_delta(std::uint64_t prev, std::uint64_t now) noexcept {
  return now >= prev ? now - prev : now;
}

/// Would OpenSM-style proactive clearing fire for this block?
bool wants_clear(const PortCounters& c, double fraction) noexcept {
  if (fraction <= 0.0) return false;
  const auto over = [fraction](std::uint64_t value, std::uint64_t max) {
    return static_cast<double>(value) >=
           fraction * static_cast<double>(max);
  };
  return over(c.xmit_data, PortCounters::kMax32) ||
         over(c.rcv_data, PortCounters::kMax32) ||
         over(c.xmit_pkts, PortCounters::kMax32) ||
         over(c.rcv_pkts, PortCounters::kMax32) ||
         over(c.xmit_wait, PortCounters::kMax32) ||
         over(c.symbol_errors, PortCounters::kMax16) ||
         over(c.xmit_discards, PortCounters::kMax16) ||
         over(c.rcv_errors, PortCounters::kMax16) ||
         over(c.congestion_marks, PortCounters::kMax16) ||
         over(c.link_downed, PortCounters::kMax8);
}

}  // namespace

const PortDelta* SweepReport::find(NodeId node, PortNum port) const {
  for (const PortDelta& d : deltas) {
    if (d.node == node && d.port == port) return &d;
  }
  return nullptr;
}

PerfMgr::PerfMgr(sm::SubnetManager& sm, PerfMgrConfig config)
    : sm_(sm), config_(config) {}

PortDelta PerfMgr::poll_port(NodeId node, PortNum port, SweepReport& report) {
  auto& transport = sm_.transport();
  transport.send_perf_get(node, port, SmpAttribute::kPortCounters,
                          config_.routing);
  ++report.mads;
  if (config_.poll_extended) {
    transport.send_perf_get(node, port, SmpAttribute::kPortCountersExtended,
                            config_.routing);
    ++report.mads;
  }

  // What the Get responses carry: a snapshot taken after the request MADs
  // themselves crossed the fabric (polling observes its own traffic).
  const PortCounters now = sm_.fabric().node(node).ports[port].counters;

  PortDelta delta;
  delta.node = node;
  delta.port = port;
  History& hist = history_[key(node, port)];
  const PortCounters prev = hist.valid ? hist.last : PortCounters{};

  if (config_.poll_extended) {
    // 64-bit counters wrap modulo 2^64; unsigned subtraction is exact.
    delta.from_extended = true;
    delta.xmit_data = now.ext_xmit_data - prev.ext_xmit_data;
    delta.rcv_data = now.ext_rcv_data - prev.ext_rcv_data;
    delta.xmit_pkts = now.ext_xmit_pkts - prev.ext_xmit_pkts;
    delta.rcv_pkts = now.ext_rcv_pkts - prev.ext_rcv_pkts;
  } else {
    delta.xmit_data = classic_delta(prev.xmit_data, now.xmit_data);
    delta.rcv_data = classic_delta(prev.rcv_data, now.rcv_data);
    delta.xmit_pkts = classic_delta(prev.xmit_pkts, now.xmit_pkts);
    delta.rcv_pkts = classic_delta(prev.rcv_pkts, now.rcv_pkts);
  }
  delta.xmit_wait = classic_delta(prev.xmit_wait, now.xmit_wait);
  delta.symbol_errors =
      classic_delta(prev.symbol_errors, now.symbol_errors);
  delta.xmit_discards =
      classic_delta(prev.xmit_discards, now.xmit_discards);
  delta.rcv_errors = classic_delta(prev.rcv_errors, now.rcv_errors);
  delta.congestion_marks =
      classic_delta(prev.congestion_marks, now.congestion_marks);
  delta.link_downed = classic_delta(prev.link_downed, now.link_downed);
  delta.link_error_recovery =
      classic_delta(prev.link_error_recovery, now.link_error_recovery);
  delta.saturated = now.any_classic_saturated();

  if (wants_clear(now, config_.clear_fraction)) {
    transport.send_perf_clear(node, port, config_.routing);
    ++report.mads;
    ++report.clears;
    delta.cleared = true;
  }
  // Re-read after a possible clear so the next delta starts from the
  // zeroed classic block (extended counters keep running through it).
  hist.last = sm_.fabric().node(node).ports[port].counters;
  hist.valid = true;
  return delta;
}

SweepReport PerfMgr::sweep() {
  SweepReport report;
  report.sweep_index = ++sweeps_;
  auto span = telemetry::Tracer::global().span(
      "perf.sweep", {{"sweep", std::to_string(report.sweep_index)}});

  auto& transport = sm_.transport();
  const Fabric& fabric = sm_.fabric();
  transport.begin_batch();
  for (NodeId id = 0; id < fabric.size(); ++id) {
    const Node& n = fabric.node(id);
    if (n.is_ca() && !config_.include_ca_ports) continue;
    for (PortNum p = 1; p <= n.num_ports(); ++p) {
      if (!n.ports[p].connected()) continue;
      if (!transport.hops_to(id)) continue;  // unreachable: nothing answers
      report.deltas.push_back(poll_port(id, p, report));
      ++report.ports_polled;
    }
  }
  report.time_us = transport.end_batch();

  auto& metrics = PerfMetrics::get();
  metrics.sweeps.inc();
  metrics.ports_polled.inc(report.ports_polled);
  metrics.clears.inc(report.clears);
  metrics.last_mads.set(static_cast<double>(report.mads));
  metrics.last_time_us.set(report.time_us);
  metrics.last_ports.set(static_cast<double>(report.ports_polled));
  span.set_attr("ports", std::to_string(report.ports_polled));
  span.set_attr("mads", std::to_string(report.mads));
  span.set_attr("clears", std::to_string(report.clears));
  return report;
}

std::vector<PortReading> PerfMgr::read_ports(
    const std::vector<PortKey>& ports) {
  auto& transport = sm_.transport();
  std::vector<PortReading> readings;
  readings.reserve(ports.size());
  for (const PortKey& pk : ports) {
    IBVS_REQUIRE(pk.node < sm_.fabric().size(), "port key out of range");
    transport.send_perf_get(pk.node, pk.port, SmpAttribute::kPortCounters,
                            config_.routing);
    transport.send_perf_get(pk.node, pk.port,
                            SmpAttribute::kPortCountersExtended,
                            config_.routing);
    const PortCounters& c = sm_.fabric().node(pk.node).ports[pk.port].counters;
    PortReading r;
    r.node = pk.node;
    r.port = pk.port;
    r.xmit_data = c.ext_xmit_data;
    r.rcv_data = c.ext_rcv_data;
    r.xmit_pkts = c.ext_xmit_pkts;
    r.rcv_pkts = c.ext_rcv_pkts;
    r.xmit_wait = c.xmit_wait;
    r.xmit_discards = c.xmit_discards;
    r.symbol_errors = c.symbol_errors;
    readings.push_back(r);
  }
  return readings;
}

}  // namespace ibvs::perf
