// PerfMgr: periodic PMA polling sweeps over the fabric (the OpenSM PerfMgr
// / ibdiagnet role).
//
// Each sweep issues one Get(PortCounters) — plus, by default, one
// Get(PortCountersExtended) — per connected port, through the same
// SmpTransport the SM uses, so monitoring is not free: its MADs land in the
// ibvs_smp_total telemetry, consume the batch pipeline, and even tick the
// very PortCounters they read on the ports they traverse.
//
// Across sweeps the PerfMgr keeps the previous sample per port and reports
// *deltas*, with the classic-counter pathologies handled the way a real
// PerfMgr must:
//
//  * a classic field pegged at its width makes the delta a lower bound
//    (flagged `saturated`);
//  * a sample smaller than the previous one means the counter block was
//    cleared between polls, so the delta restarts from zero;
//  * once any classic field passes `clear_fraction` of its width the
//    PerfMgr issues a Set(PortCounters) clear itself — one more MAD —
//    keeping the narrow counters usable (OpenSM clears at 3/4 full);
//  * with `poll_extended` the 64-bit data/packet counters take over delta
//    computation entirely (`from_extended`), immune to saturation.
//
// The health/anomaly layer on top lives in perf/health.hpp.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sm/subnet_manager.hpp"

namespace ibvs::perf {

struct PerfMgrConfig {
  /// Also poll PortCountersExtended (doubles the Get MADs per port, removes
  /// 32-bit saturation from the data/packet deltas).
  bool poll_extended = true;
  /// Poll CA/PF/VF ports too, not just switch external ports.
  bool include_ca_ports = true;
  /// Clear the classic block once any field passes this fraction of its
  /// width. <= 0 disables proactive clearing.
  double clear_fraction = 0.75;
  /// PMA MADs are GMPs on QP1: LID-routed unless the fabric has no routes.
  SmpRouting routing = SmpRouting::kLidRouted;
};

/// Counter movement of one port between the last two polls (64-bit: deltas
/// never saturate even when the underlying classic counters do).
struct PortDelta {
  NodeId node = kInvalidNode;
  PortNum port = 0;
  std::uint64_t xmit_data = 0;
  std::uint64_t rcv_data = 0;
  std::uint64_t xmit_pkts = 0;
  std::uint64_t rcv_pkts = 0;
  std::uint64_t xmit_wait = 0;
  std::uint64_t symbol_errors = 0;
  std::uint64_t xmit_discards = 0;
  std::uint64_t rcv_errors = 0;
  std::uint64_t congestion_marks = 0;
  std::uint64_t link_downed = 0;
  std::uint64_t link_error_recovery = 0;
  bool saturated = false;      ///< a classic field pegged: lower-bound delta
  bool cleared = false;        ///< PerfMgr cleared the block after reading
  bool from_extended = false;  ///< data/pkt deltas came from 64-bit counters
};

struct SweepReport {
  std::uint64_t sweep_index = 0;  ///< 1-based
  std::size_t ports_polled = 0;
  std::uint64_t mads = 0;    ///< Gets + clears this sweep cost
  std::uint64_t clears = 0;  ///< proactive Set(PortCounters) clears
  double time_us = 0.0;      ///< batch makespan under the timing model
  std::vector<PortDelta> deltas;  ///< one per polled port

  [[nodiscard]] const PortDelta* find(NodeId node, PortNum port) const;
};

struct PortKey {
  NodeId node = kInvalidNode;
  PortNum port = 0;
};

/// Absolute 64-bit reading of one port, for before/after snapshots.
struct PortReading {
  NodeId node = kInvalidNode;
  PortNum port = 0;
  std::uint64_t xmit_data = 0;
  std::uint64_t rcv_data = 0;
  std::uint64_t xmit_pkts = 0;
  std::uint64_t rcv_pkts = 0;
  std::uint64_t xmit_wait = 0;
  std::uint64_t xmit_discards = 0;
  std::uint64_t symbol_errors = 0;
};

/// Traffic measured across one migration on the source and destination
/// hypervisor uplinks (leaf-switch egress ports), polled via PMA MADs by
/// the orchestrator right before and right after the flow.
struct MigrationImpact {
  PortReading src_before, src_after;
  PortReading dst_before, dst_after;
  std::uint64_t poll_mads = 0;  ///< MADs the two snapshots themselves cost

  [[nodiscard]] std::uint64_t src_pkts_delta() const noexcept {
    return (src_after.xmit_pkts - src_before.xmit_pkts) +
           (src_after.rcv_pkts - src_before.rcv_pkts);
  }
  [[nodiscard]] std::uint64_t dst_pkts_delta() const noexcept {
    return (dst_after.xmit_pkts - dst_before.xmit_pkts) +
           (dst_after.rcv_pkts - dst_before.rcv_pkts);
  }
  [[nodiscard]] std::uint64_t data_dwords_delta() const noexcept {
    return (src_after.xmit_data - src_before.xmit_data) +
           (src_after.rcv_data - src_before.rcv_data) +
           (dst_after.xmit_data - dst_before.xmit_data) +
           (dst_after.rcv_data - dst_before.rcv_data);
  }
};

class PerfMgr {
 public:
  explicit PerfMgr(sm::SubnetManager& sm, PerfMgrConfig config = {});

  /// One polling sweep over every connected port. MAD costs go through the
  /// SM's transport (batched, so time_us is a pipelined makespan).
  SweepReport sweep();

  /// Polls just the given ports (both classic and extended) and returns
  /// absolute readings. Does not disturb the sweep delta history.
  std::vector<PortReading> read_ports(const std::vector<PortKey>& ports);

  [[nodiscard]] std::uint64_t sweeps_completed() const noexcept {
    return sweeps_;
  }
  [[nodiscard]] const PerfMgrConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] sm::SubnetManager& subnet_manager() noexcept { return sm_; }

 private:
  struct History {
    PortCounters last;
    bool valid = false;
  };
  static std::uint64_t key(NodeId node, PortNum port) noexcept {
    return (static_cast<std::uint64_t>(node) << 8) | port;
  }
  PortDelta poll_port(NodeId node, PortNum port, SweepReport& report);

  sm::SubnetManager& sm_;
  PerfMgrConfig config_;
  std::uint64_t sweeps_ = 0;
  std::unordered_map<std::uint64_t, History> history_;
};

}  // namespace ibvs::perf
