#include "routing/cdg.hpp"

#include <algorithm>

#include "util/expect.hpp"

namespace ibvs::routing {

ChannelDepGraph::ChannelDepGraph(std::size_t num_channels)
    : out_(num_channels),
      in_(num_channels),
      ord_(num_channels),
      mark_(num_channels, 0) {
  for (std::uint32_t i = 0; i < num_channels; ++i) ord_[i] = i;
}

bool ChannelDepGraph::has(std::uint32_t from, std::uint32_t to) const {
  const auto& out = out_[from];
  return std::find(out.begin(), out.end(), to) != out.end();
}

bool ChannelDepGraph::collect_forward(std::uint32_t start,
                                      std::uint32_t limit,
                                      std::uint32_t forbidden) {
  delta_f_.clear();
  stack_.clear();
  stack_.push_back(start);
  mark_[start] = epoch_;
  while (!stack_.empty()) {
    const std::uint32_t u = stack_.back();
    stack_.pop_back();
    if (u == forbidden) return false;
    delta_f_.push_back(u);
    for (std::uint32_t v : out_[u]) {
      if (ord_[v] > limit || mark_[v] == epoch_) continue;
      mark_[v] = epoch_;
      stack_.push_back(v);
    }
  }
  return true;
}

void ChannelDepGraph::collect_backward(std::uint32_t start,
                                       std::uint32_t limit) {
  delta_b_.clear();
  stack_.clear();
  stack_.push_back(start);
  mark_[start] = epoch_;
  while (!stack_.empty()) {
    const std::uint32_t u = stack_.back();
    stack_.pop_back();
    delta_b_.push_back(u);
    for (std::uint32_t v : in_[u]) {
      if (ord_[v] < limit || mark_[v] == epoch_) continue;
      mark_[v] = epoch_;
      stack_.push_back(v);
    }
  }
}

void ChannelDepGraph::reorder() {
  // Pearce–Kelly: the affected nodes (delta_b_ then delta_f_) keep their
  // relative order and are packed into the sorted pool of their old indices.
  const auto by_ord = [this](std::uint32_t a, std::uint32_t b) {
    return ord_[a] < ord_[b];
  };
  std::sort(delta_b_.begin(), delta_b_.end(), by_ord);
  std::sort(delta_f_.begin(), delta_f_.end(), by_ord);

  std::vector<std::uint32_t> pool;
  pool.reserve(delta_b_.size() + delta_f_.size());
  for (std::uint32_t n : delta_b_) pool.push_back(ord_[n]);
  for (std::uint32_t n : delta_f_) pool.push_back(ord_[n]);
  std::sort(pool.begin(), pool.end());

  std::size_t i = 0;
  for (std::uint32_t n : delta_b_) ord_[n] = pool[i++];
  for (std::uint32_t n : delta_f_) ord_[n] = pool[i++];
}

ChannelDepGraph::Add ChannelDepGraph::add(std::uint32_t from,
                                          std::uint32_t to) {
  IBVS_REQUIRE(from < out_.size() && to < out_.size(),
               "channel id out of range");
  if (from == to) return Add::kRejected;
  if (has(from, to)) return Add::kPresent;
  if (ord_[from] > ord_[to]) {
    // Possible order violation: discover the affected region.
    ++epoch_;
    if (!collect_forward(to, ord_[from], from)) return Add::kRejected;
    collect_backward(from, ord_[to]);
    reorder();
  }
  out_[from].push_back(to);
  in_[to].push_back(from);
  ++num_deps_;
  return Add::kInserted;
}

void ChannelDepGraph::remove_edge(std::uint32_t from, std::uint32_t to) {
  auto& out = out_[from];
  auto it = std::find(out.begin(), out.end(), to);
  IBVS_ENSURE(it != out.end(), "removing a dependency that is not present");
  out.erase(it);
  auto& in = in_[to];
  auto jt = std::find(in.begin(), in.end(), from);
  in.erase(jt);
  --num_deps_;
}

bool ChannelDepGraph::try_add_batch(
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& deps) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> inserted;
  inserted.reserve(deps.size());
  for (const auto& [from, to] : deps) {
    switch (add(from, to)) {
      case Add::kInserted:
        inserted.emplace_back(from, to);
        break;
      case Add::kPresent:
        break;
      case Add::kRejected:
        // Removing edges never invalidates a topological order, so the
        // maintained ord_ stays correct after rollback.
        for (auto it = inserted.rbegin(); it != inserted.rend(); ++it) {
          remove_edge(it->first, it->second);
        }
        return false;
    }
  }
  return true;
}

bool ChannelDepGraph::order_consistent() const {
  for (std::uint32_t u = 0; u < out_.size(); ++u) {
    for (std::uint32_t v : out_[u]) {
      if (ord_[u] >= ord_[v]) return false;
    }
  }
  return true;
}

}  // namespace ibvs::routing
