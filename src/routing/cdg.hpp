// Acyclicity-maintaining channel dependency graph.
//
// A "channel" is one directed switch-to-switch link (a SwitchGraph edge). A
// route that enters a switch on channel a and leaves on channel b creates
// the dependency a -> b; a routing function is deadlock free on a virtual
// lane iff the dependencies it creates on that lane form a DAG (Duato's
// condition for deterministic routing).
//
// DFSSSP and LASH assign destinations / switch pairs to layers by
// *tentatively* adding a route's dependencies and backing out on a cycle, so
// insertion must be fast: this class maintains a dynamic topological order
// with the Pearce–Kelly algorithm, making the common (order-respecting)
// insert O(1) and confining the work of the rest to the affected region.
//
// For *analysing* an existing (possibly deadlocky) routing — where cycles
// are the finding, not an error — use ibvs::deadlock::DependencyDigraph.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace ibvs::routing {

class ChannelDepGraph {
 public:
  enum class Add : std::uint8_t {
    kInserted,  ///< new dependency, graph still acyclic
    kPresent,   ///< dependency already existed
    kRejected,  ///< insertion would close a cycle; graph unchanged
  };

  explicit ChannelDepGraph(std::size_t num_channels);

  [[nodiscard]] std::size_t num_channels() const noexcept {
    return out_.size();
  }
  [[nodiscard]] std::size_t num_deps() const noexcept { return num_deps_; }

  [[nodiscard]] bool has(std::uint32_t from, std::uint32_t to) const;

  /// Single-edge insertion preserving acyclicity.
  Add add(std::uint32_t from, std::uint32_t to);

  /// Adds all dependencies or none: on the first rejection every edge this
  /// call inserted is removed again and false is returned.
  bool try_add_batch(
      const std::vector<std::pair<std::uint32_t, std::uint32_t>>& deps);

  /// Topological position of a channel (for tests / diagnostics).
  [[nodiscard]] std::uint32_t order_of(std::uint32_t channel) const {
    return ord_[channel];
  }

  /// Verifies the maintained order is a valid topological order (tests).
  [[nodiscard]] bool order_consistent() const;

 private:
  void remove_edge(std::uint32_t from, std::uint32_t to);
  /// Forward DFS from `start` over nodes with ord <= limit; returns false if
  /// `forbidden` was reached (cycle). Visited nodes collected into delta_f_.
  bool collect_forward(std::uint32_t start, std::uint32_t limit,
                       std::uint32_t forbidden);
  void collect_backward(std::uint32_t start, std::uint32_t limit);
  void reorder();

  std::vector<std::vector<std::uint32_t>> out_;
  std::vector<std::vector<std::uint32_t>> in_;
  std::vector<std::uint32_t> ord_;  ///< channel -> topological index
  std::size_t num_deps_ = 0;

  // DFS scratch (epoch-stamped to avoid per-query clears).
  mutable std::vector<std::uint32_t> mark_;
  mutable std::uint32_t epoch_ = 0;
  std::vector<std::uint32_t> delta_f_;
  std::vector<std::uint32_t> delta_b_;
  std::vector<std::uint32_t> stack_;
};

}  // namespace ibvs::routing
