// DFSSSP routing engine (Domke, Hoefler, Nagel — "Deadlock-free oblivious
// routing for arbitrary topologies", IPDPS 2011; OpenSM "dfsssp").
//
// Two phases, both sequential over destinations by design (each destination's
// Dijkstra sees the link loads accumulated by the previous ones — that is
// the balancing mechanism):
//
//  1. Routing: for every destination LID, a single-source shortest-path run
//     with edge weights 1 + load; every switch's next hop is its parent in
//     the SP tree, and the loads of the used links grow by the number of
//     sources funnelled through them.
//  2. Deadlock removal: destinations are assigned to virtual lanes. A
//     destination's routes contribute channel dependencies; the destination
//     goes to the first VL whose dependency graph stays acyclic (checked
//     with the incremental Pearce–Kelly CDG). Runs out of VLs -> error.
//
// The per-destination Dijkstra sweep is what makes DFSSSP markedly more
// expensive than minhop/ftree in Fig. 7, and the CDG bookkeeping adds on
// top; both effects reproduce here.
#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

#include "routing/cdg.hpp"
#include "routing/engine.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace ibvs::routing {

namespace {

constexpr unsigned kMaxVls = 8;

class DfssspEngine final : public RoutingEngine {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "dfsssp";
  }

  [[nodiscard]] RoutingResult compute(const Fabric& fabric,
                                      const LidMap& lids) override {
    Stopwatch watch;
    RoutingResult result;
    result.graph = SwitchGraph::build(fabric, lids);
    const SwitchGraph& g = result.graph;
    const std::size_t s_count = g.num_switches();
    const std::size_t e_count = g.num_edges();
    result.lfts.assign(s_count, Lft(lids.top_lid()));
    if (s_count == 0 || g.targets.empty()) {
      result.compute_seconds = watch.elapsed_seconds();
      return result;
    }

    // Endpoint count per switch: how many sources inject there (weights for
    // the load update; switches themselves also originate management
    // traffic, counted as one source each).
    std::vector<std::uint32_t> sources_at(s_count, 1);
    for (const auto& t : g.targets) {
      if (t.port != 0) ++sources_at[t.sw];
    }

    std::vector<std::uint64_t> edge_load(e_count, 0);
    std::vector<std::uint64_t> dist(s_count);
    std::vector<std::uint32_t> parent_edge(s_count);  // edge x -> next hop
    std::vector<SwitchIdx> order(s_count);            // settle order
    using HeapItem = std::pair<std::uint64_t, SwitchIdx>;
    std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
    std::vector<std::uint32_t> flow(s_count);

    // Lexicographic (hops, accumulated load) distance packed into 64 bits:
    // routes stay hop-minimal (as DFSSSP requires — otherwise detours
    // proliferate down->up turns and the CDG cannot be layered), and the
    // channel loads pick among the minimal paths.
    constexpr unsigned kLoadBits = 40;
    constexpr std::uint64_t kLoadMask = (1ull << kLoadBits) - 1;
    const auto hop_part = [](std::uint64_t d) { return d >> kLoadBits; };
    const auto load_part = [](std::uint64_t d) { return d & kLoadMask; };

    // --- Phase 1: routing. ---
    for (const auto& target : g.targets) {
      std::fill(dist.begin(), dist.end(),
                std::numeric_limits<std::uint64_t>::max());
      std::fill(parent_edge.begin(), parent_edge.end(), SwitchGraph::kNoEdge);
      std::size_t settled = 0;
      dist[target.sw] = 0;
      heap.emplace(0, target.sw);
      while (!heap.empty()) {
        const auto [d, y] = heap.top();
        heap.pop();
        if (d != dist[y]) continue;  // stale
        order[settled++] = y;
        const auto [first, last] = g.out(y);
        for (const auto* e = first; e != last; ++e) {
          // Relax backward: x = e->to would forward to y over the *reverse*
          // edge (x -> y), whose load is the weight that matters.
          const std::uint32_t eid =
              static_cast<std::uint32_t>(e - g.edges.data());
          const std::uint32_t fwd = g.reverse_edge[eid];
          const std::uint64_t nd =
              ((hop_part(d) + 1) << kLoadBits) +
              std::min(load_part(d) + edge_load[fwd], kLoadMask);
          if (nd < dist[e->to]) {
            dist[e->to] = nd;
            parent_edge[e->to] = fwd;
            heap.emplace(nd, e->to);
          }
        }
      }

      // LFT entries + load update. Processing switches farthest-first lets
      // the flow of every subtree accumulate before it is pushed down.
      std::fill(flow.begin(), flow.end(), 0);
      for (std::size_t i = settled; i-- > 1;) {
        const SwitchIdx x = order[i];
        const std::uint32_t eid = parent_edge[x];
        if (eid == SwitchGraph::kNoEdge) continue;
        result.lfts[x].set(target.lid, g.edges[eid].out_port);
        const std::uint32_t total = flow[x] + sources_at[x];
        edge_load[eid] += total;
        flow[g.edges[eid].to] += total;
      }
      result.lfts[target.sw].set(target.lid, target.port);
    }

    // --- Phase 2: deadlock removal by VL layering. ---
    result.dest_vl.assign(static_cast<std::size_t>(lids.top_lid().value()) + 1,
                          0);
    std::vector<ChannelDepGraph> layers;
    layers.reserve(kMaxVls);
    layers.emplace_back(e_count);
    // Dependency extraction — for each destination, the O(switches x
    // out-degree) scan of the finished LFTs — is by far the expensive half
    // of this phase and touches nothing mutable, so it fans out over the
    // pool in bounded waves. VL admission into the Pearce–Kelly CDG is
    // order-dependent (a destination goes to the first VL whose graph stays
    // acyclic *given everything admitted before it*) and stays sequential
    // over destinations, which keeps dest_vl byte-identical to a
    // single-threaded run.
    const std::size_t t_count = g.targets.size();
    constexpr std::size_t kWave = 256;  // bounds the buffered dep lists
    std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>> wave(
        std::min(kWave, t_count));
    for (std::size_t wave_begin = 0; wave_begin < t_count;
         wave_begin += kWave) {
      const std::size_t wave_end = std::min(t_count, wave_begin + kWave);
      ThreadPool::global().parallel_for(
          wave_begin, wave_end, [&](std::size_t t) {
            auto& deps = wave[t - wave_begin];
            deps.clear();
            const auto& target = g.targets[t];
            // Switch LIDs receive only management traffic, which rides the
            // dedicated VL15 — they do not participate in the data-VL CDG.
            // (Their routes may legitimately turn down-then-up, e.g. core ->
            // spine -> core, and would otherwise poison the layering.)
            if (target.port == 0) return;
            // Dependencies of this destination's route DAG: for every
            // switch v whose egress toward the target is a switch link,
            // every used ingress channel (u -> v) depends on the egress.
            for (std::size_t v = 0; v < s_count; ++v) {
              const PortNum out_port = result.lfts[v].get(target.lid);
              if (out_port == kDropPort) continue;
              const std::uint32_t e_out =
                  g.edge_of(static_cast<SwitchIdx>(v), out_port);
              if (e_out == SwitchGraph::kNoEdge) continue;  // local delivery
              const auto [first, last] = g.out(static_cast<SwitchIdx>(v));
              for (const auto* e = first; e != last; ++e) {
                const SwitchIdx u = e->to;
                const PortNum u_out = result.lfts[u].get(target.lid);
                const std::uint32_t eid =
                    static_cast<std::uint32_t>(e - g.edges.data());
                // u's egress is the reverse of (v -> u) iff u forwards
                // into v.
                const std::uint32_t e_in = g.reverse_edge[eid];
                if (u_out == g.edges[e_in].out_port) {
                  deps.emplace_back(e_in, e_out);
                }
              }
            }
          });
      for (std::size_t t = wave_begin; t < wave_end; ++t) {
        const auto& target = g.targets[t];
        if (target.port == 0) continue;
        const auto& deps = wave[t - wave_begin];
        unsigned vl = 0;
        for (;; ++vl) {
          if (vl == layers.size()) {
            if (layers.size() == kMaxVls) {
              throw std::runtime_error(
                  "dfsssp: cannot break CDG cycles within " +
                  std::to_string(kMaxVls) + " VLs");
            }
            layers.emplace_back(e_count);
          }
          if (layers[vl].try_add_batch(deps)) break;
        }
        result.dest_vl[target.lid.value()] = static_cast<std::uint8_t>(vl);
      }
    }
    result.num_vls = static_cast<unsigned>(layers.size());
    for (auto& lft : result.lfts) lft.clear_dirty();

    result.compute_seconds = watch.elapsed_seconds();
    return result;
  }
};

}  // namespace

std::unique_ptr<RoutingEngine> make_dfsssp_engine() {
  return std::make_unique<DfssspEngine>();
}

}  // namespace ibvs::routing
