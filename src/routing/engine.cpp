#include "routing/engine.hpp"

#include "util/expect.hpp"

namespace ibvs::routing {

// Defined by the individual engine translation units.
std::unique_ptr<RoutingEngine> make_min_hop_engine();
std::unique_ptr<RoutingEngine> make_fat_tree_engine();
std::unique_ptr<RoutingEngine> make_up_down_engine();
std::unique_ptr<RoutingEngine> make_dfsssp_engine();
std::unique_ptr<RoutingEngine> make_lash_engine();

std::unique_ptr<RoutingEngine> make_engine(EngineKind kind) {
  switch (kind) {
    case EngineKind::kMinHop:
      return make_min_hop_engine();
    case EngineKind::kFatTree:
      return make_fat_tree_engine();
    case EngineKind::kUpDown:
      return make_up_down_engine();
    case EngineKind::kDfsssp:
      return make_dfsssp_engine();
    case EngineKind::kLash:
      return make_lash_engine();
  }
  throw std::invalid_argument("unknown routing engine");
}

std::string to_string(EngineKind kind) {
  switch (kind) {
    case EngineKind::kMinHop:
      return "minhop";
    case EngineKind::kFatTree:
      return "fat-tree";
    case EngineKind::kUpDown:
      return "updn";
    case EngineKind::kDfsssp:
      return "dfsssp";
    case EngineKind::kLash:
      return "lash";
  }
  return "?";
}

std::vector<EngineKind> all_engines() {
  return {EngineKind::kMinHop, EngineKind::kFatTree, EngineKind::kUpDown,
          EngineKind::kDfsssp, EngineKind::kLash};
}

std::vector<EngineKind> fig7_engines() {
  return {EngineKind::kFatTree, EngineKind::kMinHop, EngineKind::kDfsssp,
          EngineKind::kLash};
}

}  // namespace ibvs::routing
