// Routing-engine interface.
//
// An engine consumes the subnet (fabric + LID assignment) and produces a
// full set of linear forwarding tables for the physical switches, plus the
// virtual-lane layering needed for deadlock freedom where the engine relies
// on VLs (DFSSSP, LASH). This mirrors OpenSM's routing-engine plug-in
// boundary; the four engines of Fig. 7 (fat-tree, minhop, dfsssp, lash) and
// Up*/Down* are implemented against it.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "ib/lft.hpp"
#include "routing/graph.hpp"

namespace ibvs::routing {

/// Output of a path-computation run.
struct RoutingResult {
  /// The switch view the tables are indexed by (dense switch index).
  SwitchGraph graph;
  /// One LFT per physical switch, graph-dense-indexed.
  std::vector<Lft> lfts;
  /// Number of virtual lanes/layers the engine needs (1 = no VL layering).
  unsigned num_vls = 1;
  /// DFSSSP-style layering: VL per destination LID value (empty = all VL0).
  std::vector<std::uint8_t> dest_vl;
  /// LASH-style layering: layer per (src switch, dst switch) dense pair,
  /// row-major S*S (empty when unused). 0xFF = pair unrouted.
  std::vector<std::uint8_t> pair_layer;
  /// Wall-clock path-computation time (the PCt of eq. (1)).
  double compute_seconds = 0.0;

  /// Egress port on switch `s` for `lid` (kDropPort if unrouted).
  [[nodiscard]] PortNum port_at(SwitchIdx s, Lid lid) const {
    return lfts[s].get(lid);
  }

  /// VL assigned to traffic from `src_sw` to LID `lid`.
  [[nodiscard]] std::uint8_t vl_for(SwitchIdx src_sw, Lid lid,
                                    SwitchIdx dst_sw) const {
    if (!dest_vl.empty() && lid.value() < dest_vl.size())
      return dest_vl[lid.value()];
    if (!pair_layer.empty())
      return pair_layer[static_cast<std::size_t>(src_sw) *
                            graph.num_switches() +
                        dst_sw];
    return 0;
  }
};

class RoutingEngine {
 public:
  virtual ~RoutingEngine() = default;
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  /// Computes LFTs for all physical switches. Deterministic for a given
  /// fabric + LID assignment.
  [[nodiscard]] virtual RoutingResult compute(const Fabric& fabric,
                                              const LidMap& lids) = 0;
};

enum class EngineKind { kMinHop, kFatTree, kUpDown, kDfsssp, kLash };

[[nodiscard]] std::unique_ptr<RoutingEngine> make_engine(EngineKind kind);
[[nodiscard]] std::string to_string(EngineKind kind);
[[nodiscard]] std::vector<EngineKind> all_engines();

/// The engines of the paper's Fig. 7, in its plotting order.
[[nodiscard]] std::vector<EngineKind> fig7_engines();

}  // namespace ibvs::routing
