// Fat-tree routing engine (OpenSM "ftree" equivalent, d-mod-k flavour).
//
// Switches are ranked by distance from the leaf tier. Traffic for a
// destination goes *down* along the unique tree path wherever the
// destination lies below, and *up* otherwise, with the uplink chosen as
// lid % |up ports| — the classic destination-mod-k spreading that gives a
// fat tree its full-bisection load balance. Because the choice depends only
// on the destination LID, two LIDs on the same hypervisor can ride
// different spines: the LMC-like multipathing the paper credits to the
// prepopulated-LIDs scheme (§V-A).
#include <algorithm>
#include <cstring>

#include "routing/engine.hpp"
#include "util/expect.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace ibvs::routing {

namespace {

class FatTreeEngine final : public RoutingEngine {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "fat-tree";
  }

  [[nodiscard]] RoutingResult compute(const Fabric& fabric,
                                      const LidMap& lids) override {
    Stopwatch watch;
    RoutingResult result;
    result.graph = SwitchGraph::build(fabric, lids);
    const SwitchGraph& g = result.graph;
    const std::size_t s_count = g.num_switches();
    const std::size_t t_count = g.targets.size();

    // --- Rank switches: leaves are switches with endpoint attachments. ---
    std::vector<std::uint8_t> level(s_count, 0xFF);
    std::vector<SwitchIdx> queue;
    for (const auto& t : g.targets) {
      if (t.port != 0 && level[t.sw] == 0xFF) {
        level[t.sw] = 0;
        queue.push_back(t.sw);
      }
    }
    if (queue.empty()) {
      // Degenerate fabric without endpoints: rank from switch 0.
      if (s_count > 0) {
        level[0] = 0;
        queue.push_back(0);
      }
    }
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const SwitchIdx u = queue[head];
      const auto [first, last] = g.out(u);
      for (const auto* e = first; e != last; ++e) {
        if (level[e->to] == 0xFF) {
          level[e->to] = static_cast<std::uint8_t>(level[u] + 1);
          queue.push_back(e->to);
        }
      }
    }

    // --- Up-port lists (sorted, deduplicated) per switch. ---
    std::vector<std::vector<PortNum>> up_ports(s_count);
    for (std::size_t s = 0; s < s_count; ++s) {
      const auto [first, last] = g.out(static_cast<SwitchIdx>(s));
      for (const auto* e = first; e != last; ++e) {
        if (level[e->to] == level[s] + 1) up_ports[s].push_back(e->out_port);
      }
      std::sort(up_ports[s].begin(), up_ports[s].end());
      up_ports[s].erase(
          std::unique(up_ports[s].begin(), up_ports[s].end()),
          up_ports[s].end());
    }

    // --- Phase 1: per destination, the unique downward tree. ---
    // route[t * s_count + s] = down port at switch s for target t, or
    // kDropPort where the up-rule applies.
    std::vector<PortNum> route(t_count * s_count, kDropPort);
    ThreadPool::global().parallel_for_chunks(
        0, t_count, [&](std::size_t begin, std::size_t end) {
          std::vector<SwitchIdx> frontier;
          for (std::size_t ti = begin; ti < end; ++ti) {
            const auto& target = g.targets[ti];
            PortNum* row = route.data() + ti * s_count;
            row[target.sw] = target.port;
            frontier.clear();
            frontier.push_back(target.sw);
            if (target.port == 0) {
              // Switch LID (management traffic): a plain shortest-path tree
              // toward the switch. No spreading needed, and the up-rule
              // below cannot reach mid-tier switches.
              for (std::size_t head = 0; head < frontier.size(); ++head) {
                const SwitchIdx near = frontier[head];
                const auto [nf, nl] = g.out(near);
                for (const auto* e = nf; e != nl; ++e) {
                  const SwitchIdx far = e->to;
                  if (row[far] != kDropPort || far == target.sw) continue;
                  // far forwards toward `near`: find far's port facing near.
                  const auto [ff, fl] = g.out(far);
                  for (const auto* back = ff; back != fl; ++back) {
                    if (back->to == near) {
                      row[far] = back->out_port;
                      break;
                    }
                  }
                  frontier.push_back(far);
                }
              }
              continue;
            }
            // Endpoint LID: BFS upward from the attachment switch; every
            // ancestor's down port is its port toward the child it was
            // discovered from. Non-ancestors use the d-mod-k up-rule.
            for (std::size_t head = 0; head < frontier.size(); ++head) {
              const SwitchIdx child = frontier[head];
              const auto [cf, cl] = g.out(child);
              for (const auto* e = cf; e != cl; ++e) {
                const SwitchIdx anc = e->to;
                if (level[anc] != level[child] + 1) continue;
                if (row[anc] != kDropPort) continue;  // already reached
                // Find the ancestor's port facing this child.
                const auto [af, al] = g.out(anc);
                for (const auto* back = af; back != al; ++back) {
                  if (back->to == child) {
                    row[anc] = back->out_port;
                    break;
                  }
                }
                frontier.push_back(anc);
              }
            }
          }
        });

    // --- Phase 2: assemble LFTs; up-rule fills the gaps. ---
    result.lfts.assign(s_count, Lft(lids.top_lid()));
    ThreadPool::global().parallel_for_chunks(
        0, s_count, [&](std::size_t begin, std::size_t end) {
          for (std::size_t s = begin; s < end; ++s) {
            Lft& lft = result.lfts[s];
            for (std::size_t ti = 0; ti < t_count; ++ti) {
              PortNum port = route[ti * s_count + s];
              if (port == kDropPort) {
                const auto& ups = up_ports[s];
                if (ups.empty()) continue;  // disconnected from the tree
                port = ups[g.targets[ti].lid.value() % ups.size()];
              }
              lft.set(g.targets[ti].lid, port);
            }
            lft.clear_dirty();
          }
        });
    result.compute_seconds = watch.elapsed_seconds();
    return result;
  }
};

}  // namespace

std::unique_ptr<RoutingEngine> make_fat_tree_engine() {
  return std::make_unique<FatTreeEngine>();
}

}  // namespace ibvs::routing
