#include "routing/graph.hpp"

#include <algorithm>

#include "util/expect.hpp"
#include "util/thread_pool.hpp"

namespace ibvs::routing {

SwitchGraph SwitchGraph::build(const Fabric& fabric, const LidMap& lids) {
  SwitchGraph g;
  g.dense_of.assign(fabric.size(), kNoSwitch);
  for (NodeId id = 0; id < fabric.size(); ++id) {
    if (fabric.node(id).is_physical_switch()) {
      g.dense_of[id] = static_cast<SwitchIdx>(g.switches.size());
      g.switches.push_back(id);
    }
  }

  // CSR adjacency: count, prefix-sum, fill.
  std::vector<std::uint32_t> degree(g.switches.size(), 0);
  for (std::size_t s = 0; s < g.switches.size(); ++s) {
    const Node& n = fabric.node(g.switches[s]);
    for (PortNum p = 1; p <= n.num_ports(); ++p) {
      const Port& port = n.ports[p];
      if (port.connected() && g.dense_of[port.peer] != kNoSwitch) ++degree[s];
    }
  }
  g.adj_offset.assign(g.switches.size() + 1, 0);
  for (std::size_t s = 0; s < g.switches.size(); ++s) {
    g.adj_offset[s + 1] = g.adj_offset[s] + degree[s];
  }
  g.edges.resize(g.adj_offset.back());
  std::vector<std::uint32_t> cursor(g.adj_offset.begin(),
                                    g.adj_offset.end() - 1);
  for (std::size_t s = 0; s < g.switches.size(); ++s) {
    const Node& n = fabric.node(g.switches[s]);
    for (PortNum p = 1; p <= n.num_ports(); ++p) {
      const Port& port = n.ports[p];
      if (!port.connected()) continue;
      const SwitchIdx to = g.dense_of[port.peer];
      if (to == kNoSwitch) continue;
      g.edges[cursor[s]++] = Edge{to, p};
    }
  }

  // Reverse-edge, per-port and edge-source lookup tables.
  g.edge_by_port.assign(g.switches.size() * 256, kNoEdge);
  g.edge_src.resize(g.edges.size());
  for (std::size_t s = 0; s < g.switches.size(); ++s) {
    for (std::uint32_t e = g.adj_offset[s]; e < g.adj_offset[s + 1]; ++e) {
      g.edge_by_port[s * 256 + g.edges[e].out_port] = e;
      g.edge_src[e] = static_cast<SwitchIdx>(s);
    }
  }
  g.reverse_edge.resize(g.edges.size());
  for (std::size_t s = 0; s < g.switches.size(); ++s) {
    const Node& n = fabric.node(g.switches[s]);
    for (std::uint32_t e = g.adj_offset[s]; e < g.adj_offset[s + 1]; ++e) {
      const Port& port = n.ports[g.edges[e].out_port];
      // The cable's far end: same edge seen from the peer switch.
      const SwitchIdx peer = g.dense_of[port.peer];
      g.reverse_edge[e] = g.edge_of(peer, port.peer_port);
    }
  }

  g.rebuild_targets(fabric, lids);
  return g;
}

void SwitchGraph::rebuild_targets(const Fabric& fabric, const LidMap& lids) {
  targets.clear();
  for (Lid lid : lids.assigned_lids()) {
    const auto attach = lids.attachment(fabric, lid);
    if (!attach) continue;
    const SwitchIdx sw = dense_of[attach->first];
    if (sw == kNoSwitch) continue;
    targets.push_back(Target{lid, sw, attach->second});
  }
}

std::vector<std::uint8_t> switch_hop_matrix(const SwitchGraph& graph) {
  const std::size_t s_count = graph.num_switches();
  std::vector<std::uint8_t> hops(s_count * s_count, 0xFF);
  if (s_count == 0) return hops;

  ThreadPool::global().parallel_for_chunks(
      0, s_count, [&](std::size_t begin, std::size_t end) {
        std::vector<SwitchIdx> queue(s_count);
        for (std::size_t src = begin; src < end; ++src) {
          std::uint8_t* row = hops.data() + src * s_count;
          row[src] = 0;
          std::size_t head = 0;
          std::size_t tail = 0;
          queue[tail++] = static_cast<SwitchIdx>(src);
          while (head < tail) {
            const SwitchIdx u = queue[head++];
            const std::uint8_t du = row[u];
            if (du == 0xFE) continue;  // saturate rather than wrap
            const auto [first, last] = graph.out(u);
            for (const auto* e = first; e != last; ++e) {
              if (row[e->to] != 0xFF) continue;
              row[e->to] = static_cast<std::uint8_t>(du + 1);
              queue[tail++] = e->to;
            }
          }
        }
      });
  return hops;
}

}  // namespace ibvs::routing
