// Compact switch-level view of a fabric for the routing engines.
//
// Path computation only cares about physical switches and where each LID
// attaches to them; CAs, PFs, VFs and vSwitches all collapse onto their
// attachment (switch, port). This is both a performance necessity at the
// paper's 11664-node scale and the structural reason the vSwitch
// reconfiguration works: every LID behind a hypervisor shares one
// attachment point.
#pragma once

#include <cstdint>
#include <vector>

#include "ib/fabric.hpp"
#include "ib/lid_map.hpp"
#include "ib/types.hpp"

namespace ibvs::routing {

/// Dense index of a switch inside a SwitchGraph.
using SwitchIdx = std::uint32_t;
inline constexpr SwitchIdx kNoSwitch = ~SwitchIdx{0};

struct SwitchGraph {
  /// One directed half of a cable between two physical switches.
  struct Edge {
    SwitchIdx to = kNoSwitch;
    PortNum out_port = 0;  ///< egress port on the source switch
  };

  /// An assigned LID and where its traffic must be delivered.
  struct Target {
    Lid lid;
    SwitchIdx sw = kNoSwitch;  ///< attachment switch
    PortNum port = 0;          ///< delivery port (0 = the switch itself)
  };

  std::vector<NodeId> switches;       ///< dense index -> fabric NodeId
  std::vector<SwitchIdx> dense_of;    ///< fabric NodeId -> dense index
  std::vector<std::uint32_t> adj_offset;  ///< CSR offsets, size S+1
  std::vector<Edge> edges;                ///< CSR payload
  std::vector<Target> targets;        ///< every routable LID, LID-ascending
  /// edges[i]'s opposite direction on the same cable: edges[reverse_edge[i]].
  std::vector<std::uint32_t> reverse_edge;
  /// (switch, out port) -> edge index (kNoEdge if that port has no
  /// switch-to-switch cable). Row-major, 256 ports per switch.
  std::vector<std::uint32_t> edge_by_port;

  static constexpr std::uint32_t kNoEdge = ~std::uint32_t{0};

  /// Source switch of an edge (derivable from CSR; precomputed for speed).
  std::vector<SwitchIdx> edge_src;

  [[nodiscard]] std::uint32_t edge_of(SwitchIdx s, PortNum port) const {
    return edge_by_port[static_cast<std::size_t>(s) * 256 + port];
  }

  [[nodiscard]] std::size_t num_switches() const noexcept {
    return switches.size();
  }
  [[nodiscard]] std::size_t num_edges() const noexcept { return edges.size(); }

  /// Edges leaving switch `s`.
  [[nodiscard]] std::pair<const Edge*, const Edge*> out(SwitchIdx s) const {
    return {edges.data() + adj_offset[s], edges.data() + adj_offset[s + 1]};
  }

  [[nodiscard]] SwitchIdx dense(NodeId node) const {
    return node < dense_of.size() ? dense_of[node] : kNoSwitch;
  }

  /// Builds the view. Targets cover every LID in `lids` that resolves to a
  /// physical attachment; unattached LIDs are skipped (and later unrouted).
  static SwitchGraph build(const Fabric& fabric, const LidMap& lids);

  /// Recomputes only the target list (cheap). Needed after LIDs move —
  /// create/destroy/migrate — when the switch fabric itself is unchanged.
  void rebuild_targets(const Fabric& fabric, const LidMap& lids);
};

/// Hop-count matrix between switches (row-major, S*S, 0xFF = unreachable).
/// Shared by Min-Hop and Fat-Tree routing; computed by parallel BFS.
std::vector<std::uint8_t> switch_hop_matrix(const SwitchGraph& graph);

}  // namespace ibvs::routing
