// LASH routing engine (LAyered SHortest path; OpenSM "lash").
//
// Minimal routing on arbitrary topologies made deadlock free by partitioning
// *switch pairs* into virtual layers: each (src, dst) switch pair's shortest
// path is assigned to a layer such that the channel dependencies of every
// layer stay acyclic; traffic for that pair then uses the layer's VL.
//
// Like OpenSM, the layer admission test tentatively adds the path's
// dependencies and re-checks the layer for cycles, per pair. The per-pair
// check here is a DFS from the newly inserted dependencies (complete, since
// any new cycle passes through a new edge) rather than OpenSM's whole-graph
// scan, but the O(switch-pairs x dependency-graph) admission loop is the
// same — which is why LASH's path computation time explodes on the paper's
// large fat-trees (39145 s at 11664 nodes in Fig. 7) while staying
// competitive on small ones.
#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "routing/engine.hpp"
#include "util/timer.hpp"

namespace ibvs::routing {

namespace {

constexpr unsigned kMaxLayers = 8;

/// Plain digraph over channels with batch rollback and full-DFS cycle check.
class LayerCdg {
 public:
  explicit LayerCdg(std::size_t channels)
      : out_(channels), mark_(channels, 0) {}

  /// Adds missing deps; returns how many were inserted (for rollback).
  std::size_t add_new(
      const std::vector<std::pair<std::uint32_t, std::uint32_t>>& deps,
      std::vector<std::pair<std::uint32_t, std::uint32_t>>& inserted) {
    inserted.clear();
    for (const auto& [a, b] : deps) {
      auto& out = out_[a];
      if (std::find(out.begin(), out.end(), b) != out.end()) continue;
      out.push_back(b);
      inserted.emplace_back(a, b);
    }
    return inserted.size();
  }

  void rollback(
      const std::vector<std::pair<std::uint32_t, std::uint32_t>>& inserted) {
    for (auto it = inserted.rbegin(); it != inserted.rend(); ++it) {
      out_[it->first].pop_back();
    }
  }

  /// Cycle test after a batch insertion. Any cycle the batch created must
  /// pass through an inserted edge (the graph was acyclic before), so a DFS
  /// from each inserted edge's head looking for its tail is complete.
  [[nodiscard]] bool introduces_cycle(
      const std::vector<std::pair<std::uint32_t, std::uint32_t>>& inserted) {
    for (const auto& [a, b] : inserted) {
      if (reaches(b, a)) return true;
    }
    return false;
  }

  /// OpenSM-cost-model check: a full three-colour DFS over the whole layer,
  /// the way osm_ucast_lash re-scans its dependency structure per admitted
  /// path. Same verdicts as introduces_cycle(), vastly more work — this is
  /// what makes LASH explode in Fig. 7.
  [[nodiscard]] bool full_scan_has_cycle() {
    color_.assign(out_.size(), 0);
    for (std::uint32_t root = 0; root < out_.size(); ++root) {
      if (color_[root] != 0) continue;
      frames_.clear();
      frames_.emplace_back(root, 0);
      color_[root] = 1;
      while (!frames_.empty()) {
        auto& [u, cursor] = frames_.back();
        if (cursor < out_[u].size()) {
          const std::uint32_t v = out_[u][cursor++];
          if (color_[v] == 1) return true;
          if (color_[v] == 0) {
            color_[v] = 1;
            frames_.emplace_back(v, 0);
          }
        } else {
          color_[u] = 2;
          frames_.pop_back();
        }
      }
    }
    return false;
  }

 private:
  [[nodiscard]] bool reaches(std::uint32_t start, std::uint32_t goal) {
    ++epoch_;
    stack_.clear();
    stack_.push_back(start);
    mark_[start] = epoch_;
    while (!stack_.empty()) {
      const std::uint32_t u = stack_.back();
      stack_.pop_back();
      if (u == goal) return true;
      for (std::uint32_t v : out_[u]) {
        if (mark_[v] == epoch_) continue;
        mark_[v] = epoch_;
        stack_.push_back(v);
      }
    }
    return false;
  }

  std::vector<std::vector<std::uint32_t>> out_;
  std::vector<std::uint32_t> mark_;
  std::uint32_t epoch_ = 0;
  std::vector<std::uint32_t> stack_;
  std::vector<std::uint8_t> color_;
  std::vector<std::pair<std::uint32_t, std::size_t>> frames_;
};

class LashEngine final : public RoutingEngine {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "lash";
  }

  [[nodiscard]] RoutingResult compute(const Fabric& fabric,
                                      const LidMap& lids) override {
    Stopwatch watch;
    RoutingResult result;
    result.graph = SwitchGraph::build(fabric, lids);
    const SwitchGraph& g = result.graph;
    const std::size_t s_count = g.num_switches();
    result.lfts.assign(s_count, Lft(lids.top_lid()));
    if (s_count == 0 || g.targets.empty()) {
      result.compute_seconds = watch.elapsed_seconds();
      return result;
    }

    // --- Shortest-path next hops per destination *switch* (all LIDs on a
    // switch share routes; layers are per switch pair). ---
    // next_port[ds * s_count + x] = egress at switch x toward switch ds.
    std::vector<PortNum> next_port(s_count * s_count, kDropPort);
    {
      std::vector<std::uint16_t> dist(s_count);
      std::vector<SwitchIdx> queue(s_count);
      for (SwitchIdx ds = 0; ds < s_count; ++ds) {
        PortNum* row = next_port.data() +
                       static_cast<std::size_t>(ds) * s_count;
        std::fill(dist.begin(), dist.end(), 0xFFFF);
        std::size_t head = 0;
        std::size_t tail = 0;
        dist[ds] = 0;
        queue[tail++] = ds;
        while (head < tail) {
          const SwitchIdx y = queue[head++];
          const auto [first, last] = g.out(y);
          for (const auto* e = first; e != last; ++e) {
            if (dist[e->to] != 0xFFFF) continue;
            dist[e->to] = static_cast<std::uint16_t>(dist[y] + 1);
            // e->to forwards toward ds via the reverse of (y -> e->to).
            const std::uint32_t eid =
                static_cast<std::uint32_t>(e - g.edges.data());
            row[e->to] = g.edges[g.reverse_edge[eid]].out_port;
            queue[tail++] = e->to;
          }
        }
      }
    }

    // LFTs follow the per-switch-pair paths.
    for (const auto& target : g.targets) {
      const PortNum* row =
          next_port.data() + static_cast<std::size_t>(target.sw) * s_count;
      for (std::size_t x = 0; x < s_count; ++x) {
        if (x == target.sw) {
          result.lfts[x].set(target.lid, target.port);
        } else if (row[x] != kDropPort) {
          result.lfts[x].set(target.lid, row[x]);
        }
      }
    }

    // IBVS_LASH_FAITHFUL=1 switches the admission test to OpenSM's
    // whole-graph rescan, reproducing the cost profile behind the paper's
    // 39145 s data point (the routing produced is identical).
    const char* faithful_env = std::getenv("IBVS_LASH_FAITHFUL");
    const bool opensm_cost_model =
        faithful_env != nullptr && faithful_env[0] != '\0' &&
        faithful_env[0] != '0';

    // --- Layer assignment per ordered switch pair. ---
    // Only pairs that carry *data* traffic need a layer: both endpoints
    // must host at least one CA (management traffic to bare switch LIDs
    // rides VL15 and is outside the data-VL CDG).
    std::vector<bool> hosts_ca(s_count, false);
    for (const auto& target : g.targets) {
      if (target.port != 0) hosts_ca[target.sw] = true;
    }
    result.pair_layer.assign(s_count * s_count, 0xFF);
    std::vector<LayerCdg> layers;
    layers.emplace_back(g.num_edges());
    std::vector<std::pair<std::uint32_t, std::uint32_t>> deps;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> inserted;
    for (SwitchIdx ss = 0; ss < s_count; ++ss) {
      if (!hosts_ca[ss]) continue;
      for (SwitchIdx ds = 0; ds < s_count; ++ds) {
        if (ss == ds || !hosts_ca[ds]) continue;
        const PortNum* row =
            next_port.data() + static_cast<std::size_t>(ds) * s_count;
        if (row[ss] == kDropPort) continue;  // disconnected
        // Walk the path, collecting consecutive-channel dependencies.
        deps.clear();
        std::uint32_t prev_edge = SwitchGraph::kNoEdge;
        SwitchIdx x = ss;
        while (x != ds) {
          const std::uint32_t e = g.edge_of(x, row[x]);
          if (prev_edge != SwitchGraph::kNoEdge)
            deps.emplace_back(prev_edge, e);
          prev_edge = e;
          x = g.edges[e].to;
        }
        unsigned layer = 0;
        for (;; ++layer) {
          if (layer == layers.size()) {
            if (layers.size() == kMaxLayers) {
              throw std::runtime_error("lash: out of virtual layers");
            }
            layers.emplace_back(g.num_edges());
          }
          const std::size_t added = layers[layer].add_new(deps, inserted);
          if (!opensm_cost_model && added == 0) break;
          const bool cycle = opensm_cost_model
                                 ? layers[layer].full_scan_has_cycle()
                                 : layers[layer].introduces_cycle(inserted);
          if (!cycle) break;
          layers[layer].rollback(inserted);
        }
        result.pair_layer[static_cast<std::size_t>(ss) * s_count + ds] =
            static_cast<std::uint8_t>(layer);
      }
      // A switch talking to itself stays on layer 0.
      result.pair_layer[static_cast<std::size_t>(ss) * s_count + ss] = 0;
    }
    result.num_vls = static_cast<unsigned>(layers.size());
    for (auto& lft : result.lfts) lft.clear_dirty();

    result.compute_seconds = watch.elapsed_seconds();
    return result;
  }
};

}  // namespace

std::unique_ptr<RoutingEngine> make_lash_engine() {
  return std::make_unique<LashEngine>();
}

}  // namespace ibvs::routing
