// Min-Hop routing engine (OpenSM "minhop" equivalent).
//
// Per switch: every destination LID is forwarded out of a port that lies on
// a minimal-hop path, choosing among the minimal ports the one with the
// least destinations already assigned (OpenSM's port-load balancing).
// Deterministic: targets are processed in ascending LID order with
// lowest-port tie breaking.
#include <algorithm>
#include <limits>

#include "routing/engine.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace ibvs::routing {

namespace {

class MinHopEngine final : public RoutingEngine {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "minhop";
  }

  [[nodiscard]] RoutingResult compute(const Fabric& fabric,
                                      const LidMap& lids) override {
    Stopwatch watch;
    RoutingResult result;
    result.graph = SwitchGraph::build(fabric, lids);
    const SwitchGraph& g = result.graph;
    const std::size_t s_count = g.num_switches();
    const auto hops = switch_hop_matrix(g);

    result.lfts.assign(s_count, Lft(lids.top_lid()));
    ThreadPool::global().parallel_for_chunks(
        0, s_count, [&](std::size_t begin, std::size_t end) {
          std::vector<std::uint32_t> port_load(256, 0);
          for (std::size_t s = begin; s < end; ++s) {
            std::fill(port_load.begin(), port_load.end(), 0);
            Lft& lft = result.lfts[s];
            const auto [first, last] = g.out(static_cast<SwitchIdx>(s));
            for (const auto& target : g.targets) {
              PortNum chosen;
              if (target.sw == s) {
                chosen = target.port;  // local delivery (port 0 = self)
              } else {
                // Minimal hop count via any neighbor, then least-loaded port.
                std::uint32_t best_dist =
                    std::numeric_limits<std::uint32_t>::max();
                std::uint32_t best_load =
                    std::numeric_limits<std::uint32_t>::max();
                PortNum best_port = kDropPort;
                for (const auto* e = first; e != last; ++e) {
                  const std::uint8_t h =
                      hops[static_cast<std::size_t>(e->to) * s_count +
                           target.sw];
                  if (h == 0xFF) continue;
                  const std::uint32_t dist = 1u + h;
                  const std::uint32_t load = port_load[e->out_port];
                  if (dist < best_dist ||
                      (dist == best_dist && load < best_load) ||
                      (dist == best_dist && load == best_load &&
                       e->out_port < best_port)) {
                    best_dist = dist;
                    best_load = load;
                    best_port = e->out_port;
                  }
                }
                chosen = best_port;
                if (chosen != kDropPort) ++port_load[chosen];
              }
              if (chosen != kDropPort) lft.set(target.lid, chosen);
            }
            lft.clear_dirty();
          }
        });

    result.compute_seconds = watch.elapsed_seconds();
    return result;
  }
};

}  // namespace

std::unique_ptr<RoutingEngine> make_min_hop_engine() {
  return std::make_unique<MinHopEngine>();
}

}  // namespace ibvs::routing
