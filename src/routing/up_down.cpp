// Up*/Down* routing engine.
//
// Classic deadlock-free routing for arbitrary topologies: orient every link
// up (toward a root) or down; legal paths climb zero or more up links, then
// descend zero or more down links, and never turn up again. Cycles in the
// channel dependency graph would need a down->up turn, so none can form.
//
// LFT construction must be *turn-consistent*: a single forwarding entry per
// destination cannot know whether a packet already descended. We therefore
// commit a switch to the descending phase as soon as *any* down-only path to
// the destination exists (finite d_down), and climb only otherwise. By
// induction every produced path is legal: a switch that was entered from
// above was chosen by its predecessor because it has a finite down-only
// distance, so it keeps descending. The price is that a switch with a long
// down-only path will take it even when a shorter up-then-down path exists;
// that mild inflation on irregular graphs is the classic up*/down* trade-off
// for single-LFT determinism.
#include <algorithm>
#include <limits>

#include "routing/engine.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace ibvs::routing {

namespace {

constexpr std::uint16_t kInf16 = std::numeric_limits<std::uint16_t>::max();

void bfs(const SwitchGraph& g, SwitchIdx src,
         std::vector<std::uint16_t>& dist) {
  std::fill(dist.begin(), dist.end(), kInf16);
  std::vector<SwitchIdx> queue(g.num_switches());
  std::size_t head = 0;
  std::size_t tail = 0;
  dist[src] = 0;
  queue[tail++] = src;
  while (head < tail) {
    const SwitchIdx u = queue[head++];
    const auto [first, last] = g.out(u);
    for (const auto* e = first; e != last; ++e) {
      if (dist[e->to] == kInf16) {
        dist[e->to] = static_cast<std::uint16_t>(dist[u] + 1);
        queue[tail++] = e->to;
      }
    }
  }
}

/// Double-BFS midpoint: an approximately most-central switch, keeping the
/// up/down tree shallow.
SwitchIdx pick_root(const SwitchGraph& g) {
  std::vector<std::uint16_t> dist(g.num_switches(), kInf16);
  bfs(g, 0, dist);
  SwitchIdx far = 0;
  for (SwitchIdx s = 0; s < dist.size(); ++s) {
    if (dist[s] != kInf16 && dist[s] > dist[far]) far = s;
  }
  std::vector<std::uint16_t> dist2(g.num_switches(), kInf16);
  bfs(g, far, dist2);
  SwitchIdx far2 = far;
  for (SwitchIdx s = 0; s < dist2.size(); ++s) {
    if (dist2[s] != kInf16 && dist2[s] > dist2[far2]) far2 = s;
  }
  SwitchIdx mid = far2;
  std::uint16_t steps = dist2[far2] / 2;
  while (steps-- > 0) {
    const auto [first, last] = g.out(mid);
    for (const auto* e = first; e != last; ++e) {
      if (dist2[e->to] + 1 == dist2[mid]) {
        mid = e->to;
        break;
      }
    }
  }
  return mid;
}

class UpDownEngine final : public RoutingEngine {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "updn";
  }

  [[nodiscard]] RoutingResult compute(const Fabric& fabric,
                                      const LidMap& lids) override {
    Stopwatch watch;
    RoutingResult result;
    result.graph = SwitchGraph::build(fabric, lids);
    const SwitchGraph& g = result.graph;
    const std::size_t s_count = g.num_switches();
    const std::size_t t_count = g.targets.size();
    result.lfts.assign(s_count, Lft(lids.top_lid()));
    if (s_count == 0 || t_count == 0) {
      result.compute_seconds = watch.elapsed_seconds();
      return result;
    }

    std::vector<std::uint16_t> dist_root(s_count, kInf16);
    bfs(g, pick_root(g), dist_root);

    // Strict total order on (distance-to-root, index): every edge has one up
    // end and one down end, so the orientation is acyclic.
    const auto edge_is_up = [&](SwitchIdx from, SwitchIdx to) {
      if (dist_root[to] != dist_root[from])
        return dist_root[to] < dist_root[from];
      return to < from;
    };

    // Phase 1 (parallel over targets): next-hop port per (target, switch).
    std::vector<PortNum> route(t_count * s_count, kDropPort);
    ThreadPool::global().parallel_for_chunks(
        0, t_count, [&](std::size_t begin, std::size_t end) {
          std::vector<std::uint16_t> d_down(s_count);
          std::vector<std::uint16_t> d_any(s_count);
          std::vector<std::vector<SwitchIdx>> buckets;
          std::vector<SwitchIdx> queue(s_count);
          for (std::size_t ti = begin; ti < end; ++ti) {
            const auto& target = g.targets[ti];
            PortNum* row = route.data() + ti * s_count;

            // d_down: backward BFS along *down* forward-edges.
            std::fill(d_down.begin(), d_down.end(), kInf16);
            d_down[target.sw] = 0;
            std::size_t head = 0;
            std::size_t tail = 0;
            queue[tail++] = target.sw;
            while (head < tail) {
              const SwitchIdx y = queue[head++];
              const auto [first, last] = g.out(y);
              for (const auto* e = first; e != last; ++e) {
                // Forward edge (x=e->to -> y) is down iff (y -> x) is up.
                if (!edge_is_up(y, e->to)) continue;
                if (d_down[e->to] != kInf16) continue;
                d_down[e->to] = static_cast<std::uint16_t>(d_down[y] + 1);
                queue[tail++] = e->to;
              }
            }

            // d_any = min(d_down, 1 + d_any over an up edge): bucketed
            // multi-source Dijkstra with unit weights.
            d_any = d_down;
            buckets.assign(s_count + 1, {});
            for (SwitchIdx s = 0; s < s_count; ++s) {
              if (d_any[s] != kInf16) buckets[d_any[s]].push_back(s);
            }
            for (std::size_t d = 0; d < buckets.size(); ++d) {
              for (std::size_t i = 0; i < buckets[d].size(); ++i) {
                const SwitchIdx z = buckets[d][i];
                if (d_any[z] != d) continue;  // stale entry
                const auto [first, last] = g.out(z);
                for (const auto* e = first; e != last; ++e) {
                  // x = e->to climbs into z iff forward edge (x -> z) is up,
                  // i.e. (z -> x) is down.
                  if (edge_is_up(z, e->to)) continue;
                  if (d + 1 < d_any[e->to]) {
                    d_any[e->to] = static_cast<std::uint16_t>(d + 1);
                    if (d + 1 < buckets.size())
                      buckets[d + 1].push_back(e->to);
                  }
                }
              }
            }

            // Next hops.
            for (SwitchIdx s = 0; s < s_count; ++s) {
              if (s == target.sw) {
                row[s] = target.port;
                continue;
              }
              const auto [first, last] = g.out(s);
              PortNum candidates[64];
              std::size_t n = 0;
              if (d_down[s] != kInf16) {
                for (const auto* e = first; e != last && n < 64; ++e) {
                  if (edge_is_up(s, e->to)) continue;  // down edges only
                  if (d_down[e->to] != kInf16 &&
                      d_down[e->to] + 1 == d_down[s])
                    candidates[n++] = e->out_port;
                }
              } else if (d_any[s] != kInf16) {
                for (const auto* e = first; e != last && n < 64; ++e) {
                  if (!edge_is_up(s, e->to)) continue;  // up edges only
                  if (d_any[e->to] != kInf16 && d_any[e->to] + 1 == d_any[s])
                    candidates[n++] = e->out_port;
                }
              }
              if (n > 0) {
                std::sort(candidates, candidates + n);
                row[s] = candidates[target.lid.value() % n];
              }
            }
          }
        });

    // Phase 2: assemble LFTs per switch.
    ThreadPool::global().parallel_for_chunks(
        0, s_count, [&](std::size_t begin, std::size_t end) {
          for (std::size_t s = begin; s < end; ++s) {
            Lft& lft = result.lfts[s];
            for (std::size_t ti = 0; ti < t_count; ++ti) {
              const PortNum port = route[ti * s_count + s];
              if (port != kDropPort) lft.set(g.targets[ti].lid, port);
            }
            lft.clear_dirty();
          }
        });

    result.compute_seconds = watch.elapsed_seconds();
    return result;
  }
};

}  // namespace

std::unique_ptr<RoutingEngine> make_up_down_engine() {
  return std::make_unique<UpDownEngine>();
}

}  // namespace ibvs::routing
