#include "routing/verify.hpp"

#include <sstream>

namespace ibvs::routing {

VerifyReport verify_routing(const RoutingResult& result,
                            std::size_t max_issues) {
  const SwitchGraph& g = result.graph;
  const std::size_t s_count = g.num_switches();
  VerifyReport report;
  std::uint64_t hop_total = 0;

  const auto complain = [&](const std::string& what) {
    report.ok = false;
    if (report.issues.size() < max_issues) report.issues.push_back(what);
  };

  for (const auto& target : g.targets) {
    for (SwitchIdx start = 0; start < s_count; ++start) {
      ++report.pairs_checked;
      SwitchIdx x = start;
      std::uint32_t hops = 0;
      const std::uint32_t limit = static_cast<std::uint32_t>(s_count) + 1;
      bool delivered = false;
      while (hops <= limit) {
        if (x == target.sw) {
          // Local delivery: entry must name the attachment port (or the
          // management port 0 for the switch's own LID).
          const PortNum port = result.lfts[x].get(target.lid);
          if (port == target.port) {
            delivered = true;
          } else {
            std::ostringstream os;
            os << "switch " << x << " delivers lid " << target.lid
               << " to port " << int(port) << ", expected "
               << int(target.port);
            complain(os.str());
          }
          break;
        }
        const PortNum port = result.lfts[x].get(target.lid);
        const std::uint32_t e = g.edge_of(x, port);
        if (port == kDropPort || e == SwitchGraph::kNoEdge) {
          ++report.unreachable;
          std::ostringstream os;
          os << "lid " << target.lid << " unrouted at switch " << x
             << " (port " << int(port) << ")";
          complain(os.str());
          break;
        }
        x = g.edges[e].to;
        ++hops;
      }
      if (hops > limit) {
        ++report.loops;
        std::ostringstream os;
        os << "forwarding loop for lid " << target.lid << " from switch "
           << start;
        complain(os.str());
        continue;
      }
      if (delivered) {
        hop_total += hops;
        report.max_hops = std::max(report.max_hops, hops);
      }
    }
  }
  report.avg_hops = report.pairs_checked
                        ? static_cast<double>(hop_total) /
                              static_cast<double>(report.pairs_checked)
                        : 0.0;
  return report;
}

std::vector<std::uint32_t> channel_route_load(const RoutingResult& result) {
  const SwitchGraph& g = result.graph;
  std::vector<std::uint32_t> load(g.num_edges(), 0);
  for (const auto& target : g.targets) {
    for (SwitchIdx start = 0; start < g.num_switches(); ++start) {
      SwitchIdx x = start;
      std::uint32_t guard = 0;
      while (x != target.sw && guard++ <= g.num_switches()) {
        const PortNum port = result.lfts[x].get(target.lid);
        const std::uint32_t e = g.edge_of(x, port);
        if (port == kDropPort || e == SwitchGraph::kNoEdge) break;
        ++load[e];
        x = g.edges[e].to;
      }
    }
  }
  return load;
}

}  // namespace ibvs::routing
