// Correctness checks over a computed routing.
//
// Used by the test suite's property sweeps and by the reconfigurator's
// sanity mode: every assigned LID must be reachable from every switch by
// following the LFTs, without loops, and the hop counts must stay sane.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "routing/engine.hpp"

namespace ibvs::routing {

struct VerifyReport {
  bool ok = true;
  std::size_t pairs_checked = 0;
  std::size_t unreachable = 0;
  std::size_t loops = 0;
  std::uint32_t max_hops = 0;
  double avg_hops = 0.0;
  std::vector<std::string> issues;  ///< first few problems, human readable
};

/// Follows `result`'s LFTs from every switch to every target LID.
/// `max_issues` bounds the diagnostics collected.
VerifyReport verify_routing(const RoutingResult& result,
                            std::size_t max_issues = 8);

/// Per-link load histogram of a routing: for every switch-to-switch channel,
/// how many (switch, destination LID) routes traverse it. Used by the
/// balancing tests and the prepopulated-vs-dynamic comparison benches.
std::vector<std::uint32_t> channel_route_load(const RoutingResult& result);

}  // namespace ibvs::routing
