#include "sm/election.hpp"

#include "util/expect.hpp"

namespace ibvs::sm {

std::string to_string(SmState state) {
  switch (state) {
    case SmState::kNotActive:
      return "not-active";
    case SmState::kDiscovering:
      return "discovering";
    case SmState::kStandby:
      return "standby";
    case SmState::kMaster:
      return "master";
  }
  return "?";
}

SmElection::SmElection(
    Fabric& fabric,
    std::function<std::unique_ptr<routing::RoutingEngine>()> engine_factory)
    : fabric_(fabric), engine_factory_(std::move(engine_factory)) {
  IBVS_REQUIRE(engine_factory_ != nullptr, "engine factory required");
}

std::size_t SmElection::add_candidate(NodeId node, std::uint8_t priority,
                                      bool qp0_usable) {
  IBVS_REQUIRE(fabric_.node(node).is_ca(), "SM candidates are CA endpoints");
  SmCandidate candidate;
  candidate.node = node;
  candidate.priority = priority;
  candidate.qp0_usable = qp0_usable;
  candidate.state =
      qp0_usable ? SmState::kDiscovering : SmState::kNotActive;
  candidates_.push_back(candidate);
  alive_.push_back(true);
  return candidates_.size() - 1;
}

std::optional<std::size_t> SmElection::pick_winner() const {
  std::optional<std::size_t> best;
  for (std::size_t i = 0; i < candidates_.size(); ++i) {
    const auto& c = candidates_[i];
    if (!c.qp0_usable || !alive_[i]) continue;
    if (!best) {
      best = i;
      continue;
    }
    const auto& champion = candidates_[*best];
    if (c.priority > champion.priority ||
        (c.priority == champion.priority &&
         fabric_.node(c.node).guid > fabric_.node(champion.node).guid)) {
      best = i;
    }
  }
  return best;
}

void SmElection::promote(std::size_t index) {
  master_ = index;
  for (std::size_t i = 0; i < candidates_.size(); ++i) {
    auto& c = candidates_[i];
    if (!c.qp0_usable) {
      c.state = SmState::kNotActive;
    } else if (!alive_[i]) {
      c.state = SmState::kDiscovering;  // gone; rejoins if it comes back
    } else {
      c.state = i == index ? SmState::kMaster : SmState::kStandby;
    }
  }
  // The new master drives a fresh SubnetManager from its own vantage
  // point. LIDs already assigned in the fabric are inherited implicitly:
  // the takeover sweep re-registers them (simplification: the new SM
  // starts a clean LidMap and reassigns; installed LFT diffs keep the SMP
  // cost of an unchanged subnet at zero after the first sweep).
  sm_ = std::make_unique<SubnetManager>(fabric_, candidates_[index].node,
                                        engine_factory_());
}

ElectionReport SmElection::elect() {
  ElectionReport report;
  const auto winner = pick_winner();
  if (winner) {
    // One SMInfo exchange per healthy candidate pair with the winner.
    for (std::size_t i = 0; i < candidates_.size(); ++i) {
      if (i != *winner && alive_[i] && candidates_[i].qp0_usable) {
        ++sminfo_smps_;
        ++report.sminfo_smps;
      }
    }
    if (master_ != winner) promote(*winner);
  } else {
    master_.reset();
    sm_.reset();
  }
  report.master = master_;
  for (std::size_t i = 0; i < candidates_.size(); ++i) {
    if (candidates_[i].state == SmState::kStandby) ++report.standbys;
    if (candidates_[i].state == SmState::kNotActive) ++report.disqualified;
  }
  return report;
}

void SmElection::fail_candidate(std::size_t index) {
  IBVS_REQUIRE(index < candidates_.size(), "candidate out of range");
  alive_[index] = false;
  if (master_ == index) {
    // The master is gone; the subnet keeps forwarding (LFTs are in the
    // switches) but has no SM until a standby notices via poll().
    candidates_[index].state = SmState::kDiscovering;
  }
}

ElectionReport SmElection::poll() {
  // Standbys probe the master's SMInfo.
  ElectionReport report;
  bool master_ok = master_.has_value() && alive_[*master_];
  for (std::size_t i = 0; i < candidates_.size(); ++i) {
    if (candidates_[i].state == SmState::kStandby && alive_[i]) {
      ++sminfo_smps_;
      ++report.sminfo_smps;
    }
  }
  if (master_ok) {
    report.master = master_;
    for (const auto& c : candidates_) {
      if (c.state == SmState::kStandby) ++report.standbys;
      if (c.state == SmState::kNotActive) ++report.disqualified;
    }
    return report;
  }
  // Failover: re-elect and let the winner take the subnet over.
  auto elected = elect();
  elected.sminfo_smps += report.sminfo_smps;
  if (master_) {
    master_sweep();
    // Crash consistency: whatever migration the dead master had in flight
    // is replayed to completion or rolled back from the write-ahead
    // journal, then the diffs are redistributed — the fabric must never
    // stay half-reconfigured across a failover.
    if (journal_ != nullptr && journal_->in_flight() > 0) {
      elected.journal_recovery = journal_->recover(*sm_);
    }
  }
  return elected;
}

SweepReport SmElection::master_sweep() {
  IBVS_REQUIRE(sm_ != nullptr, "no master elected");
  return sm_->full_sweep();
}

}  // namespace ibvs::sm
