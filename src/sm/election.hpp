// Subnet manager election and failover (IBA §14.4 SMInfo, simplified).
//
// Every IB subnet has exactly one master SM; standbys poll the master's
// SMInfo and take over when it dies. The paper's §IV makes an architectural
// point out of this: under Shared Port, VFs cannot use QP0, so *an SM can
// never run inside a VM* — under vSwitch every VF is a complete vHCA and a
// VM-hosted SM becomes possible. This module models the election so that
// exactly that can be demonstrated: a fleet of candidates (bare-metal nodes,
// hypervisor PFs, or vSwitch VFs), master selection by (priority, GUID),
// failure detection by missed SMInfo polls, and a standby takeover that
// re-runs the sweep and heals the subnet.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "sm/reconfig_journal.hpp"
#include "sm/subnet_manager.hpp"

namespace ibvs::sm {

enum class SmState : std::uint8_t {
  kNotActive,    ///< disqualified (e.g. a Shared Port VF: no QP0)
  kDiscovering,  ///< joining the election
  kStandby,      ///< healthy, polling the master
  kMaster,       ///< owns the subnet
};

[[nodiscard]] std::string to_string(SmState state);

struct SmCandidate {
  NodeId node = kInvalidNode;
  std::uint8_t priority = 0;  ///< higher wins; GUID breaks ties (higher wins)
  bool qp0_usable = true;     ///< false for Shared Port VFs (§IV-A)
  SmState state = SmState::kDiscovering;
};

/// Outcome of one election round or takeover.
struct ElectionReport {
  std::optional<std::size_t> master;  ///< index into candidates()
  std::size_t standbys = 0;
  std::size_t disqualified = 0;
  std::uint64_t sminfo_smps = 0;  ///< SMInfo exchanges this round
  /// Journal recovery run by a takeover (zero-valued unless a journal is
  /// attached and the new master found in-flight migration records).
  RecoveryReport journal_recovery;
};

/// Coordinates the candidates of one subnet. The master candidate drives a
/// real SubnetManager; on failover the new master inherits the subnet (it
/// re-discovers and re-routes, like OpenSM taking over).
class SmElection {
 public:
  /// `fabric` outlives the election. The engine factory supplies a routing
  /// engine for whichever candidate becomes master.
  SmElection(Fabric& fabric,
             std::function<std::unique_ptr<routing::RoutingEngine>()>
                 engine_factory);

  /// Registers a candidate; qp0_usable=false models a Shared Port VF.
  std::size_t add_candidate(NodeId node, std::uint8_t priority,
                            bool qp0_usable = true);

  [[nodiscard]] const std::vector<SmCandidate>& candidates() const noexcept {
    return candidates_;
  }

  /// Runs the election: the highest (priority, GUID) among qp0-usable,
  /// alive candidates becomes master; everyone else healthy is standby.
  ElectionReport elect();

  /// Marks a candidate dead (its node crashed or was cut off). Does not
  /// re-elect by itself — poll() notices, like a real standby would.
  void fail_candidate(std::size_t index);

  /// One SMInfo polling round: standbys probe the master; if it is dead (or
  /// unreachable), a new election runs and the winner performs a takeover
  /// sweep. Returns the (possibly new) election state.
  ElectionReport poll();

  /// The master's subnet manager (nullptr before the first election).
  [[nodiscard]] SubnetManager* master_sm() noexcept { return sm_.get(); }

  /// Full sweep by the current master (discovery, LIDs, routes, LFTs).
  SweepReport master_sweep();

  /// Attaches the subnet's reconfiguration journal (shared, durable state —
  /// outlives any one SubnetManager instance). A takeover in poll() then
  /// replays in-flight migration records right after its sweep, so a master
  /// death mid-reconfiguration can never leave the fabric mixed. nullptr
  /// detaches.
  void attach_journal(ReconfigJournal* journal) noexcept {
    journal_ = journal;
  }

 private:
  [[nodiscard]] std::optional<std::size_t> pick_winner() const;
  void promote(std::size_t index);

  Fabric& fabric_;
  std::function<std::unique_ptr<routing::RoutingEngine>()> engine_factory_;
  std::vector<SmCandidate> candidates_;
  std::vector<bool> alive_;
  std::optional<std::size_t> master_;
  std::unique_ptr<SubnetManager> sm_;
  ReconfigJournal* journal_ = nullptr;
  std::uint64_t sminfo_smps_ = 0;
};

}  // namespace ibvs::sm
