#include "sm/multicast.hpp"

#include <algorithm>

#include "util/expect.hpp"
#include "util/thread_pool.hpp"

namespace ibvs::sm {

Lid McGroupManager::create_group(Guid mgid) {
  IBVS_REQUIRE(next_mlid_ <= kLastMulticastLid,
               "multicast LID space exhausted");
  const Lid mlid{next_mlid_++};
  McGroup group;
  group.mlid = mlid;
  group.mgid = mgid;
  groups_.emplace(mlid.value(), group);
  return mlid;
}

const McGroup& McGroupManager::group(Lid mlid) const {
  const auto it = groups_.find(mlid.value());
  IBVS_REQUIRE(it != groups_.end(), "unknown multicast group");
  return it->second;
}

void McGroupManager::join(Lid mlid, Lid member_lid) {
  auto it = groups_.find(mlid.value());
  IBVS_REQUIRE(it != groups_.end(), "unknown multicast group");
  IBVS_REQUIRE(sm_.lids().assigned(member_lid),
               "member LID is not assigned");
  it->second.members.insert(member_lid);
  recompute_tree(it->second);
}

void McGroupManager::leave(Lid mlid, Lid member_lid) {
  auto it = groups_.find(mlid.value());
  IBVS_REQUIRE(it != groups_.end(), "unknown multicast group");
  IBVS_REQUIRE(it->second.members.erase(member_lid) == 1,
               "not a member of the group");
  recompute_tree(it->second);
}

void McGroupManager::refresh_after_move(Lid member_lid) {
  for (auto& [mlid, group] : groups_) {
    if (group.members.count(member_lid) != 0) recompute_tree(group);
  }
}

void McGroupManager::recompute_all() {
  for (auto& [mlid, group] : groups_) recompute_tree(group);
}

void McGroupManager::recompute_tree(McGroup& group) {
  const Fabric& fabric = sm_.fabric();
  const LidMap& lids = sm_.lids();

  // Member attachment points: (switch NodeId) -> delivery ports there.
  std::unordered_map<NodeId, std::vector<PortNum>> delivery;
  std::vector<NodeId> member_switches;
  for (const Lid member : group.members) {
    const auto attach = lids.attachment(fabric, member);
    if (!attach) continue;  // member fell off the network: skip
    if (delivery.find(attach->first) == delivery.end()) {
      member_switches.push_back(attach->first);
    }
    delivery[attach->first].push_back(attach->second);
  }

  // Erase the group's old masks from the master everywhere.
  for (auto& [node, mft] : master_) mft.set(group.mlid, PortMask{});
  if (member_switches.empty()) return;

  // BFS tree from the first member switch over the physical switch graph;
  // keep only the union of root->member paths (prune idle branches).
  std::unordered_map<NodeId, std::pair<NodeId, PortNum>> parent;  // child->(parent, parent's port to child)
  std::vector<NodeId> order;
  const NodeId root = member_switches.front();
  parent.emplace(root, std::make_pair(kInvalidNode, PortNum{0}));
  order.push_back(root);
  for (std::size_t head = 0; head < order.size(); ++head) {
    const NodeId u = order[head];
    const Node& n = fabric.node(u);
    for (PortNum p = 1; p <= n.num_ports(); ++p) {
      const Port& port = n.ports[p];
      if (!port.connected()) continue;
      if (!fabric.node(port.peer).is_physical_switch()) continue;
      if (parent.find(port.peer) != parent.end()) continue;
      parent.emplace(port.peer, std::make_pair(u, p));
      order.push_back(port.peer);
    }
  }

  // Tree masks: walk each member switch up to the root, marking both link
  // directions on the way.
  std::unordered_map<NodeId, PortMask> masks;
  for (const NodeId member_switch : member_switches) {
    auto it = parent.find(member_switch);
    IBVS_ENSURE(it != parent.end(),
                "multicast member switch unreachable from the tree root");
    NodeId x = member_switch;
    while (x != root) {
      const auto [up, up_port] = parent.at(x);
      // up forwards down to x via up_port; x forwards up via the reverse.
      masks[up].set(up_port);
      const auto peer = fabric.peer(up, up_port);
      IBVS_ENSURE(peer.has_value(), "tree edge lost its cable");
      masks[x].set(peer->second);
      x = up;
    }
  }
  // Delivery ports at member switches.
  for (const auto& [node, ports] : delivery) {
    for (const PortNum p : ports) masks[node].set(p);
  }
  for (const auto& [node, mask] : masks) {
    master_[node].set(group.mlid, mask);
  }
}

McDistribution McGroupManager::distribute(SmpRouting routing) {
  McDistribution report;
  auto& transport = sm_.transport();
  const std::vector<NodeId> switches = sm_.fabric().switch_ids();
  // Same shape as the unicast sweep fast path: the per-switch MFT diffs
  // are independent pure reads, so they run on the pool in one contiguous
  // switch range per worker; the send loop below stays serial in switch
  // order, keeping the SMP stream identical to a single-threaded
  // distribution. Switches without a master entry diff against an empty
  // table instead of default-inserting one.
  static const Mft kEmptyMft;
  std::vector<const Mft*> masters(switches.size(), &kEmptyMft);
  for (std::size_t i = 0; i < switches.size(); ++i) {
    const auto it = master_.find(switches[i]);
    if (it != master_.end()) masters[i] = &it->second;
  }
  std::vector<std::vector<std::pair<std::uint32_t, std::uint8_t>>> diffs(
      switches.size());
  ThreadPool::global().parallel_for_shards(
      0, switches.size(),
      [&](std::size_t, std::size_t chunk_begin, std::size_t chunk_end) {
        for (std::size_t i = chunk_begin; i < chunk_end; ++i) {
          const Node& node = sm_.fabric().node(switches[i]);
          diffs[i] = masters[i]->diff_blocks(
              node.mft, static_cast<PortNum>(node.num_ports()));
        }
      });
  transport.begin_batch();
  for (std::size_t i = 0; i < switches.size(); ++i) {
    if (diffs[i].empty()) continue;
    ++report.switches_touched;
    for (const auto& [block, position] : diffs[i]) {
      transport.send_mft_slice(switches[i], block, position, routing);
      ++report.smps;
    }
    // The hardware adopts the master's state for this switch.
    sm_.fabric().node(switches[i]).mft = *masters[i];
  }
  report.time_us = transport.end_batch();
  return report;
}

}  // namespace ibvs::sm
