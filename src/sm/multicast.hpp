// Multicast group management (IBA §10.5 / OpenSM's osm_mcast_mgr,
// simplified to the parts that interact with the vSwitch architecture).
//
// Endpoints join multicast groups; each group gets an MLID (0xC000..) and a
// spanning tree over the switches connecting all member attachment points.
// Every switch on the tree holds an MFT port mask: tree ports plus member
// delivery ports. Distribution is diff-based per (32-MLID block, 16-port
// position) slice, mirroring the unicast machinery.
//
// The vSwitch tie-in: when a VM live-migrates, its LID stays — but its
// *attachment point* moves, so the trees of groups it belongs to must be
// recomputed (refresh_after_move()). This is the natural companion to the
// paper's unicast reconfiguration, and like it, the cost is a handful of
// MFT slices on the switches whose masks change, not a full multicast
// rebuild.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "sm/subnet_manager.hpp"

namespace ibvs::sm {

struct McGroup {
  Lid mlid;
  Guid mgid;  ///< group id (modeled as a 64-bit value)
  std::set<Lid> members;  ///< member port LIDs (unicast)
};

struct McDistribution {
  std::uint64_t smps = 0;           ///< MFT slice writes sent
  std::size_t switches_touched = 0;
  double time_us = 0.0;
};

class McGroupManager {
 public:
  explicit McGroupManager(SubnetManager& sm) : sm_(sm) {}

  /// Creates a group; the MLID is the lowest free multicast LID.
  Lid create_group(Guid mgid);

  /// Joins the endpoint owning `member_lid`. Recomputes the group's tree in
  /// the master MFTs (push with distribute()).
  void join(Lid mlid, Lid member_lid);
  void leave(Lid mlid, Lid member_lid);

  [[nodiscard]] const McGroup& group(Lid mlid) const;
  [[nodiscard]] std::size_t num_groups() const noexcept {
    return groups_.size();
  }

  /// Recomputes the trees of every group containing `member_lid` — called
  /// after the member's attachment moved (VM live migration).
  void refresh_after_move(Lid member_lid);

  /// Sends every master MFT slice that differs from the installed one.
  McDistribution distribute(SmpRouting routing = SmpRouting::kDirected);

  /// Recomputes every group's tree (e.g. after a topology change).
  void recompute_all();

 private:
  void recompute_tree(McGroup& group);

  SubnetManager& sm_;
  std::unordered_map<std::uint16_t, McGroup> groups_;  // keyed by MLID
  /// Master MFTs, keyed by fabric NodeId of the physical switch.
  std::unordered_map<NodeId, Mft> master_;
  std::uint16_t next_mlid_ = kFirstMulticastLid;
};

}  // namespace ibvs::sm
