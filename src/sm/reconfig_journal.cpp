#include "sm/reconfig_journal.hpp"

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "util/expect.hpp"
#include "util/log.hpp"

namespace ibvs::sm {

namespace {

struct JournalMetrics {
  telemetry::Counter& begun;
  telemetry::Counter& replays_forward;
  telemetry::Counter& replays_back;

  static JournalMetrics& get() {
    auto& reg = telemetry::Registry::global();
    static JournalMetrics m{
        reg.counter("ibvs_journal_records_total", {},
                    "Migration records opened in the reconfiguration journal"),
        reg.counter("ibvs_journal_replays_total", {{"action", "roll_forward"}},
                    "In-flight journal records resolved during recovery"),
        reg.counter("ibvs_journal_replays_total", {{"action", "roll_back"}}),
    };
    return m;
  }
};

}  // namespace

const char* to_string(RecordState state) {
  switch (state) {
    case RecordState::kInFlight:
      return "in-flight";
    case RecordState::kCommitted:
      return "committed";
    case RecordState::kRolledBack:
      return "rolled-back";
  }
  return "?";
}

std::uint64_t ReconfigJournal::begin(MigrationRecord record) {
  IBVS_REQUIRE(record.vm_lid.valid(), "journal record needs the VM LID");
  IBVS_REQUIRE(record.src_vf != kInvalidNode && record.dst_vf != kInvalidNode,
               "journal record needs both VF nodes");
  record.id = next_id_++;
  record.state = RecordState::kInFlight;
  record.reconciled = false;
  JournalMetrics::get().begun.inc();
  records_.push_back(std::move(record));
  return records_.back().id;
}

MigrationRecord* ReconfigJournal::find(std::uint64_t id) {
  for (MigrationRecord& r : records_) {
    if (r.id == id) return &r;
  }
  return nullptr;
}

const MigrationRecord* ReconfigJournal::find(std::uint64_t id) const {
  for (const MigrationRecord& r : records_) {
    if (r.id == id) return &r;
  }
  return nullptr;
}

void ReconfigJournal::record_addresses_moved(std::uint64_t id) {
  MigrationRecord* r = find(id);
  IBVS_REQUIRE(r != nullptr, "unknown journal record");
  IBVS_REQUIRE(r->state == RecordState::kInFlight,
               "record is no longer in flight");
  r->addresses_moved = true;
}

void ReconfigJournal::record_deltas(std::uint64_t id,
                                    std::vector<LftDelta> deltas) {
  MigrationRecord* r = find(id);
  IBVS_REQUIRE(r != nullptr, "unknown journal record");
  IBVS_REQUIRE(r->state == RecordState::kInFlight,
               "record is no longer in flight");
  r->deltas = std::move(deltas);
}

void ReconfigJournal::commit(std::uint64_t id) {
  MigrationRecord* r = find(id);
  IBVS_REQUIRE(r != nullptr, "unknown journal record");
  IBVS_REQUIRE(r->state == RecordState::kInFlight,
               "record is no longer in flight");
  r->state = RecordState::kCommitted;
}

void ReconfigJournal::roll_back(std::uint64_t id) {
  MigrationRecord* r = find(id);
  IBVS_REQUIRE(r != nullptr, "unknown journal record");
  IBVS_REQUIRE(r->state == RecordState::kInFlight,
               "record is no longer in flight");
  r->state = RecordState::kRolledBack;
}

std::size_t ReconfigJournal::in_flight() const {
  std::size_t n = 0;
  for (const MigrationRecord& r : records_) {
    if (r.state == RecordState::kInFlight) ++n;
  }
  return n;
}

std::size_t ReconfigJournal::truncate_reconciled() {
  const std::size_t before = records_.size();
  std::erase_if(records_, [](const MigrationRecord& r) {
    return r.state != RecordState::kInFlight && r.reconciled;
  });
  return before - records_.size();
}

RecoveryReport ReconfigJournal::recover(SubnetManager& sm,
                                        std::size_t max_rounds,
                                        SmpRouting routing) {
  RecoveryReport report;
  report.in_flight = in_flight();
  if (report.in_flight == 0) return report;
  IBVS_REQUIRE(sm.has_routing(),
               "recovery needs master tables (sweep the subnet first)");

  auto span = telemetry::Tracer::global().span(
      "journal.recover",
      {{"in_flight", std::to_string(report.in_flight)}});
  Fabric& fabric = sm.fabric();
  auto& transport = sm.transport();
  const auto& graph = sm.routing_result().graph;

  for (MigrationRecord& r : records_) {
    if (r.state != RecordState::kInFlight) continue;
    // Roll forward only when the write-ahead marks prove the migration got
    // past the address move AND the destination can still be programmed;
    // everything else is undone. Both branches are pure master-table and
    // LidMap fixups — redistribution below turns them into SMPs.
    const bool dst_reachable = transport.hops_to(r.dst_pf).has_value();
    const bool forward =
        r.addresses_moved && !r.deltas.empty() && dst_reachable;
    if (forward) {
      if (sm.lids().owner(r.vm_lid).node != r.dst_vf) {
        sm.lids().move(fabric, r.vm_lid, r.dst_vf, 1);
      }
      if (r.swapped_lid.valid() &&
          sm.lids().owner(r.swapped_lid).node != r.src_vf) {
        sm.lids().move(fabric, r.swapped_lid, r.src_vf, 1);
      }
      fabric.node(r.dst_vf).alias_guid = r.vguid;
      fabric.node(r.src_vf).alias_guid =
          r.swap_pair ? r.peer_vguid : kInvalidGuid;
      for (const LftDelta& d : r.deltas) {
        const routing::SwitchIdx s = graph.dense(d.switch_node);
        if (s == routing::kNoSwitch) continue;
        sm.update_master_entry(s, d.lid, d.new_port);
      }
      r.state = RecordState::kCommitted;
      ++report.rolled_forward;
      JournalMetrics::get().replays_forward.inc();
      IBVS_INFO("journal") << "record " << r.id << " (vm " << r.vm_id
                           << ") rolled forward: " << r.deltas.size()
                           << " deltas replayed";
    } else {
      for (auto it = r.deltas.rbegin(); it != r.deltas.rend(); ++it) {
        const routing::SwitchIdx s = graph.dense(it->switch_node);
        if (s == routing::kNoSwitch) continue;
        sm.update_master_entry(s, it->lid, it->old_port);
      }
      if (r.addresses_moved) {
        if (sm.lids().owner(r.vm_lid).node != r.src_vf) {
          sm.lids().move(fabric, r.vm_lid, r.src_vf, 1);
        }
        if (r.swapped_lid.valid() &&
            sm.lids().owner(r.swapped_lid).node != r.dst_vf) {
          sm.lids().move(fabric, r.swapped_lid, r.dst_vf, 1);
        }
        fabric.node(r.src_vf).alias_guid = r.vguid;
        fabric.node(r.dst_vf).alias_guid =
            r.swap_pair ? r.peer_vguid : kInvalidGuid;
        // Re-attach the VF addresses at the source: the reverse of §V-C
        // step (a), priced on the batch clock like the forward path. A
        // swap pair also restores the peer's vGUID at the destination.
        transport.begin_batch();
        transport.send_vf_lid_assign(r.src_pf, r.src_vf_slot, r.vm_lid,
                                     routing);
        transport.send_vf_lid_assign(
            r.dst_pf, r.dst_vf_slot,
            r.swapped_lid.valid() ? r.swapped_lid : kInvalidLid, routing);
        transport.send_guid_info(r.src_pf, r.src_vf_slot, r.vguid, routing);
        report.address_smps += 3;
        if (r.swap_pair) {
          transport.send_guid_info(r.dst_pf, r.dst_vf_slot, r.peer_vguid,
                                   routing);
          report.address_smps += 1;
        }
        report.address_time_us += transport.end_batch();
      }
      r.state = RecordState::kRolledBack;
      ++report.rolled_back;
      JournalMetrics::get().replays_back.inc();
      IBVS_INFO("journal") << "record " << r.id << " (vm " << r.vm_id
                           << ") rolled back: " << r.deltas.size()
                           << " inverse deltas applied";
    }
  }

  // The master tables now describe exactly one consistent outcome per
  // record; push the diffs until the installed fabric agrees. No route
  // recomputation — recovery stays PCt-free.
  sm.refresh_targets();
  sm.bump_generation();
  report.redistribution = sm.redistribute(max_rounds, routing);
  span.set_attr("rolled_forward", std::to_string(report.rolled_forward));
  span.set_attr("rolled_back", std::to_string(report.rolled_back));
  span.set_attr("smps", std::to_string(report.redistribution.smps));
  return report;
}

}  // namespace ibvs::sm
