#include "sm/reconfig_journal.hpp"

#include "routing/graph.hpp"
#include "sm/topology_txn.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "util/expect.hpp"
#include "util/log.hpp"

namespace ibvs::sm {

namespace {

struct JournalMetrics {
  telemetry::Counter& begun;
  telemetry::Counter& topology_begun;
  telemetry::Counter& replays_forward;
  telemetry::Counter& replays_back;

  static JournalMetrics& get() {
    auto& reg = telemetry::Registry::global();
    static JournalMetrics m{
        reg.counter("ibvs_journal_records_total", {},
                    "Migration records opened in the reconfiguration journal"),
        reg.counter("ibvs_journal_topology_records_total", {},
                    "Topology records opened in the reconfiguration journal"),
        reg.counter("ibvs_journal_replays_total", {{"action", "roll_forward"}},
                    "In-flight journal records resolved during recovery"),
        reg.counter("ibvs_journal_replays_total", {{"action", "roll_back"}}),
    };
    return m;
  }
};

/// Route repair after a topology rollback performed by a *recovering* SM.
///
/// A standby promoted mid-delta sweeps the half-mutated fabric before it
/// replays the journal, so its master tables describe the cabling as it was
/// at takeover. Rolling the record back then changes the cabling again —
/// re-plugging a detach subject the sweep saw severed (its LID column is
/// all-drop) or severing attach cables the sweep routed through. The
/// recorded inverse deltas cannot fix that: they were taken against the
/// *dying* master's tables. Recompute exactly the affected columns from BFS
/// on the restored graph. Roll-forward needs no such pass (the journaled
/// deltas are valid for the fully-mutated fabric), so the common recovery
/// path stays free of route recomputation.
void repair_rolled_back_routes(
    SubnetManager& sm, const std::vector<const TopologyRecord*>& rolled) {
  if (rolled.empty()) return;
  Fabric& fabric = sm.fabric();
  const auto& result = sm.routing_result();
  const auto& g = result.graph;
  const auto hops = routing::switch_hop_matrix(g);
  for (const TopologyRecord* r : rolled) {
    const bool removed_cables =
        r->op == TopologyOp::kAttachSwitch || r->op == TopologyOp::kAddLink;
    if (removed_cables) {
      // Any column still egressing into a now-unplugged port is recomputed
      // wholesale; untouched columns never routed through the cables.
      for (const Lid lid : sm.lids().assigned_lids()) {
        bool stale = false;
        for (const CableSpec& c : r->cables) {
          const routing::SwitchIdx sa = g.dense(c.a);
          const routing::SwitchIdx sb = g.dense(c.b);
          if ((sa != routing::kNoSwitch &&
               result.lfts[sa].get(lid) == c.port_a) ||
              (sb != routing::kNoSwitch &&
               result.lfts[sb].get(lid) == c.port_b)) {
            stale = true;
            break;
          }
        }
        if (!stale) continue;
        const auto att = sm.lids().attachment(fabric, lid);
        if (!att) continue;
        const routing::SwitchIdx t = g.dense(att->first);
        if (t == routing::kNoSwitch) continue;
        const auto column = repair_route_column(g, hops, t, att->second);
        for (routing::SwitchIdx s = 0; s < g.num_switches(); ++s) {
          sm.update_master_entry(s, lid, column[s]);
        }
      }
      // The released attach LID must not linger in any table.
      if (r->op == TopologyOp::kAttachSwitch && r->subject_lid.valid() &&
          !sm.lids().assigned(r->subject_lid)) {
        for (routing::SwitchIdx s = 0; s < g.num_switches(); ++s) {
          sm.update_master_entry(s, r->subject_lid, kDropPort);
        }
      }
    } else if (r->op == TopologyOp::kDetachSwitch) {
      // The re-plugged subject: route its restored LID everywhere and fill
      // its own table (the takeover sweep computed both against a fabric
      // where it was severed). Re-plugging only *adds* paths, so existing
      // non-drop entries still deliver — fill exactly the kDropPort gaps and
      // the recovery stays byte-identical when the tables were never stale
      // (a master rolling back its own abandoned detach).
      const routing::SwitchIdx me = g.dense(r->subject);
      if (me == routing::kNoSwitch || !r->subject_lid.valid() ||
          !sm.lids().assigned(r->subject_lid)) {
        continue;
      }
      const auto column = repair_route_column(g, hops, me, /*delivery=*/0);
      for (routing::SwitchIdx s = 0; s < g.num_switches(); ++s) {
        if (result.lfts[s].get(r->subject_lid) == kDropPort) {
          sm.update_master_entry(s, r->subject_lid, column[s]);
        }
      }
      for (const auto& target : g.targets) {
        if (result.lfts[me].get(target.lid) != kDropPort) continue;
        const PortNum port = target.sw == me
                                 ? target.port
                                 : repair_port_toward(g, hops, me, target.sw);
        sm.update_master_entry(me, target.lid, port);
      }
    }
    // kRemoveLink rolled back: the restored cable only adds capacity; the
    // routes the takeover sweep computed without it remain valid.
  }
}

}  // namespace

const char* to_string(RecordState state) {
  switch (state) {
    case RecordState::kInFlight:
      return "in-flight";
    case RecordState::kCommitted:
      return "committed";
    case RecordState::kRolledBack:
      return "rolled-back";
  }
  return "?";
}

const char* to_string(TopologyOp op) {
  switch (op) {
    case TopologyOp::kAttachSwitch:
      return "attach-switch";
    case TopologyOp::kDetachSwitch:
      return "detach-switch";
    case TopologyOp::kAddLink:
      return "add-link";
    case TopologyOp::kRemoveLink:
      return "remove-link";
  }
  return "?";
}

std::uint64_t ReconfigJournal::begin(MigrationRecord record) {
  IBVS_REQUIRE(record.vm_lid.valid(), "journal record needs the VM LID");
  IBVS_REQUIRE(record.src_vf != kInvalidNode && record.dst_vf != kInvalidNode,
               "journal record needs both VF nodes");
  record.id = next_id_++;
  record.state = RecordState::kInFlight;
  record.reconciled = false;
  JournalMetrics::get().begun.inc();
  records_.push_back(std::move(record));
  return records_.back().id;
}

MigrationRecord* ReconfigJournal::find(std::uint64_t id) {
  for (MigrationRecord& r : records_) {
    if (r.id == id) return &r;
  }
  return nullptr;
}

const MigrationRecord* ReconfigJournal::find(std::uint64_t id) const {
  for (const MigrationRecord& r : records_) {
    if (r.id == id) return &r;
  }
  return nullptr;
}

void ReconfigJournal::record_addresses_moved(std::uint64_t id) {
  MigrationRecord* r = find(id);
  IBVS_REQUIRE(r != nullptr, "unknown journal record");
  IBVS_REQUIRE(r->state == RecordState::kInFlight,
               "record is no longer in flight");
  r->addresses_moved = true;
}

void ReconfigJournal::record_deltas(std::uint64_t id,
                                    std::vector<LftDelta> deltas) {
  MigrationRecord* r = find(id);
  IBVS_REQUIRE(r != nullptr, "unknown journal record");
  IBVS_REQUIRE(r->state == RecordState::kInFlight,
               "record is no longer in flight");
  r->deltas = std::move(deltas);
}

void ReconfigJournal::commit(std::uint64_t id) {
  MigrationRecord* r = find(id);
  IBVS_REQUIRE(r != nullptr, "unknown journal record");
  IBVS_REQUIRE(r->state == RecordState::kInFlight,
               "record is no longer in flight");
  r->state = RecordState::kCommitted;
}

void ReconfigJournal::roll_back(std::uint64_t id) {
  MigrationRecord* r = find(id);
  IBVS_REQUIRE(r != nullptr, "unknown journal record");
  IBVS_REQUIRE(r->state == RecordState::kInFlight,
               "record is no longer in flight");
  r->state = RecordState::kRolledBack;
}

std::uint64_t ReconfigJournal::begin_topology(TopologyRecord record) {
  const bool switch_op = record.op == TopologyOp::kAttachSwitch ||
                         record.op == TopologyOp::kDetachSwitch;
  IBVS_REQUIRE(!switch_op || record.subject != kInvalidNode,
               "switch delta needs its subject node");
  IBVS_REQUIRE(!record.cables.empty(), "topology record needs its cable set");
  record.id = next_id_++;
  record.state = RecordState::kInFlight;
  record.reconciled = false;
  JournalMetrics::get().topology_begun.inc();
  topology_records_.push_back(std::move(record));
  return topology_records_.back().id;
}

TopologyRecord* ReconfigJournal::find_topology(std::uint64_t id) {
  for (TopologyRecord& r : topology_records_) {
    if (r.id == id) return &r;
  }
  return nullptr;
}

const TopologyRecord* ReconfigJournal::find_topology(std::uint64_t id) const {
  for (const TopologyRecord& r : topology_records_) {
    if (r.id == id) return &r;
  }
  return nullptr;
}

void ReconfigJournal::record_topology_mutated(std::uint64_t id) {
  TopologyRecord* r = find_topology(id);
  IBVS_REQUIRE(r != nullptr, "unknown topology record");
  IBVS_REQUIRE(r->state == RecordState::kInFlight,
               "record is no longer in flight");
  r->mutated = true;
}

void ReconfigJournal::record_topology_lid(std::uint64_t id, Lid lid) {
  TopologyRecord* r = find_topology(id);
  IBVS_REQUIRE(r != nullptr, "unknown topology record");
  IBVS_REQUIRE(r->state == RecordState::kInFlight,
               "record is no longer in flight");
  r->subject_lid = lid;
}

void ReconfigJournal::record_topology_deltas(std::uint64_t id,
                                             std::vector<LftDelta> deltas) {
  TopologyRecord* r = find_topology(id);
  IBVS_REQUIRE(r != nullptr, "unknown topology record");
  IBVS_REQUIRE(r->state == RecordState::kInFlight,
               "record is no longer in flight");
  r->deltas = std::move(deltas);
}

void ReconfigJournal::commit_topology(std::uint64_t id) {
  TopologyRecord* r = find_topology(id);
  IBVS_REQUIRE(r != nullptr, "unknown topology record");
  IBVS_REQUIRE(r->state == RecordState::kInFlight,
               "record is no longer in flight");
  r->state = RecordState::kCommitted;
}

void ReconfigJournal::roll_back_topology(std::uint64_t id) {
  TopologyRecord* r = find_topology(id);
  IBVS_REQUIRE(r != nullptr, "unknown topology record");
  IBVS_REQUIRE(r->state == RecordState::kInFlight,
               "record is no longer in flight");
  r->state = RecordState::kRolledBack;
}

std::size_t ReconfigJournal::in_flight() const {
  std::size_t n = 0;
  for (const MigrationRecord& r : records_) {
    if (r.state == RecordState::kInFlight) ++n;
  }
  for (const TopologyRecord& r : topology_records_) {
    if (r.state == RecordState::kInFlight) ++n;
  }
  return n;
}

std::size_t ReconfigJournal::truncate_reconciled() {
  const std::size_t before = records_.size() + topology_records_.size();
  std::erase_if(records_, [](const MigrationRecord& r) {
    return r.state != RecordState::kInFlight && r.reconciled;
  });
  std::erase_if(topology_records_, [](const TopologyRecord& r) {
    return r.state != RecordState::kInFlight && r.reconciled;
  });
  return before - records_.size() - topology_records_.size();
}

RecoveryReport ReconfigJournal::recover(SubnetManager& sm,
                                        std::size_t max_rounds,
                                        SmpRouting routing) {
  RecoveryReport report;
  report.in_flight = in_flight();
  if (report.in_flight == 0) return report;
  IBVS_REQUIRE(sm.has_routing(),
               "recovery needs master tables (sweep the subnet first)");

  auto span = telemetry::Tracer::global().span(
      "journal.recover",
      {{"in_flight", std::to_string(report.in_flight)}});
  Fabric& fabric = sm.fabric();
  auto& transport = sm.transport();

  // An in-flight topology delta means the cabling the recovering SM swept
  // may already be mid-mutation: adopt the current structure first so dense
  // lookups, reachability and redistribution all see the fabric as cabled
  // right now. Append-stable dense indices make this safe for the
  // migration records below too.
  bool topology_in_flight = false;
  for (const TopologyRecord& r : topology_records_) {
    if (r.state == RecordState::kInFlight) topology_in_flight = true;
  }
  if (topology_in_flight) sm.adopt_topology_change();
  const auto& graph = sm.routing_result().graph;

  for (MigrationRecord& r : records_) {
    if (r.state != RecordState::kInFlight) continue;
    // Roll forward only when the write-ahead marks prove the migration got
    // past the address move AND the destination can still be programmed;
    // everything else is undone. Both branches are pure master-table and
    // LidMap fixups — redistribution below turns them into SMPs.
    const bool dst_reachable = transport.hops_to(r.dst_pf).has_value();
    const bool forward =
        r.addresses_moved && !r.deltas.empty() && dst_reachable;
    if (forward) {
      if (sm.lids().owner(r.vm_lid).node != r.dst_vf) {
        sm.lids().move(fabric, r.vm_lid, r.dst_vf, 1);
      }
      if (r.swapped_lid.valid() &&
          sm.lids().owner(r.swapped_lid).node != r.src_vf) {
        sm.lids().move(fabric, r.swapped_lid, r.src_vf, 1);
      }
      fabric.node(r.dst_vf).alias_guid = r.vguid;
      fabric.node(r.src_vf).alias_guid =
          r.swap_pair ? r.peer_vguid : kInvalidGuid;
      for (const LftDelta& d : r.deltas) {
        const routing::SwitchIdx s = graph.dense(d.switch_node);
        if (s == routing::kNoSwitch) continue;
        sm.update_master_entry(s, d.lid, d.new_port);
      }
      r.state = RecordState::kCommitted;
      ++report.rolled_forward;
      JournalMetrics::get().replays_forward.inc();
      IBVS_INFO("journal") << "record " << r.id << " (vm " << r.vm_id
                           << ") rolled forward: " << r.deltas.size()
                           << " deltas replayed";
    } else {
      for (auto it = r.deltas.rbegin(); it != r.deltas.rend(); ++it) {
        const routing::SwitchIdx s = graph.dense(it->switch_node);
        if (s == routing::kNoSwitch) continue;
        sm.update_master_entry(s, it->lid, it->old_port);
      }
      if (r.addresses_moved) {
        if (sm.lids().owner(r.vm_lid).node != r.src_vf) {
          sm.lids().move(fabric, r.vm_lid, r.src_vf, 1);
        }
        if (r.swapped_lid.valid() &&
            sm.lids().owner(r.swapped_lid).node != r.dst_vf) {
          sm.lids().move(fabric, r.swapped_lid, r.dst_vf, 1);
        }
        fabric.node(r.src_vf).alias_guid = r.vguid;
        fabric.node(r.dst_vf).alias_guid =
            r.swap_pair ? r.peer_vguid : kInvalidGuid;
        // Re-attach the VF addresses at the source: the reverse of §V-C
        // step (a), priced on the batch clock like the forward path. A
        // swap pair also restores the peer's vGUID at the destination.
        transport.begin_batch();
        transport.send_vf_lid_assign(r.src_pf, r.src_vf_slot, r.vm_lid,
                                     routing);
        transport.send_vf_lid_assign(
            r.dst_pf, r.dst_vf_slot,
            r.swapped_lid.valid() ? r.swapped_lid : kInvalidLid, routing);
        transport.send_guid_info(r.src_pf, r.src_vf_slot, r.vguid, routing);
        report.address_smps += 3;
        if (r.swap_pair) {
          transport.send_guid_info(r.dst_pf, r.dst_vf_slot, r.peer_vguid,
                                   routing);
          report.address_smps += 1;
        }
        report.address_time_us += transport.end_batch();
      }
      r.state = RecordState::kRolledBack;
      ++report.rolled_back;
      JournalMetrics::get().replays_back.inc();
      IBVS_INFO("journal") << "record " << r.id << " (vm " << r.vm_id
                           << ") rolled back: " << r.deltas.size()
                           << " inverse deltas applied";
    }
  }

  std::vector<const TopologyRecord*> rolled_back_topology;
  for (TopologyRecord& r : topology_records_) {
    if (r.state != RecordState::kInFlight) continue;
    recover_topology(sm, r, report, routing);
    if (r.state == RecordState::kRolledBack) {
      rolled_back_topology.push_back(&r);
    }
  }
  // Rolling a topology record back (or forward past a partial mutation) can
  // change the cabling again; re-adopt so redistribution programs exactly
  // the switches that are really there.
  if (topology_in_flight) sm.adopt_topology_change();
  repair_rolled_back_routes(sm, rolled_back_topology);

  // The master tables now describe exactly one consistent outcome per
  // record; push the diffs until the installed fabric agrees. Only a
  // rolled-back topology delta triggers a (column-scoped) recomputation
  // above — the migration paths and topology roll-forward stay PCt-free.
  sm.refresh_targets();
  sm.bump_generation();
  report.redistribution = sm.redistribute(max_rounds, routing);
  span.set_attr("rolled_forward", std::to_string(report.rolled_forward));
  span.set_attr("rolled_back", std::to_string(report.rolled_back));
  span.set_attr("smps", std::to_string(report.redistribution.smps));
  return report;
}

void ReconfigJournal::recover_topology(SubnetManager& sm, TopologyRecord& r,
                                       RecoveryReport& report,
                                       SmpRouting routing) {
  Fabric& fabric = sm.fabric();
  auto& transport = sm.transport();
  const auto& graph = sm.routing_result().graph;
  // Roll forward only when the write-ahead marks prove the mutation began
  // AND the re-route plan was recorded. An attach additionally needs the
  // new switch to still be programmable — a switch that died mid-attach is
  // rolled back out of the fabric, never committed half-routed.
  bool forward = r.mutated && !r.deltas.empty();
  if (r.op == TopologyOp::kAttachSwitch) {
    forward = forward && transport.hops_to(r.subject).has_value();
  }
  if (forward) {
    for (const LftDelta& d : r.deltas) {
      const routing::SwitchIdx s = graph.dense(d.switch_node);
      if (s == routing::kNoSwitch) continue;
      sm.update_master_entry(s, d.lid, d.new_port);
    }
    if (r.op == TopologyOp::kAttachSwitch && r.subject_lid.valid() &&
        !sm.lids().assigned(r.subject_lid)) {
      // The crash hit between the mutation and the LID assignment: finish
      // the addressing. Directed-route PortInfo — the new switch's LID may
      // not be installed anywhere yet.
      sm.lids().assign(fabric, r.subject, 0, r.subject_lid);
      transport.begin_batch();
      transport.send_port_info_set(r.subject, 0, SmpRouting::kDirected);
      report.address_smps += 1;
      report.address_time_us += transport.end_batch();
    }
    if (r.op == TopologyOp::kDetachSwitch && r.subject_lid.valid() &&
        sm.lids().assigned(r.subject_lid) &&
        sm.lids().owner(r.subject_lid).node == r.subject) {
      sm.lids().release(fabric, r.subject_lid);
    }
    r.state = RecordState::kCommitted;
    r.reconciled = true;  // recovery is the only bookkeeper for these
    ++report.rolled_forward;
    JournalMetrics::get().replays_forward.inc();
    IBVS_INFO("journal") << "topology record " << r.id << " ("
                         << to_string(r.op) << ") rolled forward: "
                         << r.deltas.size() << " deltas replayed";
    return;
  }
  for (auto it = r.deltas.rbegin(); it != r.deltas.rend(); ++it) {
    const routing::SwitchIdx s = graph.dense(it->switch_node);
    if (s == routing::kNoSwitch) continue;
    sm.update_master_entry(s, it->lid, it->old_port);
  }
  const bool adds_cables =
      r.op == TopologyOp::kAttachSwitch || r.op == TopologyOp::kAddLink;
  if (adds_cables) {
    // Unplug whatever the attach managed to cable before dying; tolerate
    // cables the mutation never reached.
    for (const CableSpec& c : r.cables) {
      const auto peer = fabric.peer(c.a, c.port_a);
      if (peer && peer->first == c.b && peer->second == c.port_b) {
        fabric.disconnect(c.a, c.port_a);
      }
    }
    transport.invalidate_topology();
    if (r.op == TopologyOp::kAttachSwitch && r.subject_lid.valid() &&
        sm.lids().assigned(r.subject_lid) &&
        sm.lids().owner(r.subject_lid).node == r.subject) {
      sm.lids().release(fabric, r.subject_lid);
    }
  } else {
    // Re-plug exactly what the detach severed; tolerate cables it never
    // reached or that something else (a chaos cut) took down meanwhile.
    for (const CableSpec& c : r.cables) {
      if (!fabric.peer(c.a, c.port_a) && !fabric.peer(c.b, c.port_b)) {
        fabric.connect(c.a, c.port_a, c.b, c.port_b);
      }
    }
    transport.invalidate_topology();
    if (r.op == TopologyOp::kDetachSwitch && r.subject_lid.valid() &&
        !sm.lids().assigned(r.subject_lid)) {
      sm.lids().assign(fabric, r.subject, 0, r.subject_lid);
      transport.begin_batch();
      transport.send_port_info_set(r.subject, 0, SmpRouting::kDirected);
      report.address_smps += 1;
      report.address_time_us += transport.end_batch();
    }
  }
  r.state = RecordState::kRolledBack;
  r.reconciled = true;  // recovery is the only bookkeeper for these
  ++report.rolled_back;
  JournalMetrics::get().replays_back.inc();
  IBVS_INFO("journal") << "topology record " << r.id << " ("
                       << to_string(r.op) << ") rolled back: "
                       << r.deltas.size() << " inverse deltas applied";
  (void)routing;
}

}  // namespace ibvs::sm
