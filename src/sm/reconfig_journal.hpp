// Write-ahead reconfiguration journal for live migrations.
//
// The paper's migration (§V-C, Algorithm 1) rewrites LFT entries on up to n
// switches; a master-SM death mid-batch leaves the fabric half-reconfigured
// with no record of what was in flight. OpenSM solves the analogous problem
// for LID assignments with guid2lid cache files; this journal does the same
// for reconfiguration deltas: before the vSwitch layer moves any address or
// sends any swap/copy SMP it records the full per-switch delta set
// (switch, lid, old_port, new_port), so a recovering SM — the same instance
// after an aborted batch, or a *new* master elected via SmElection — can
// deterministically replay the in-flight record to completion or roll it
// back, then redistribute diffs until the fabric is provably un-mixed.
//
// Records are keyed by durable identities only (NodeId, Lid, PortNum — never
// SwitchIdx, which is an artifact of one routing run), and replay is
// idempotent: applying a delta that is already in place marks nothing dirty
// and sends nothing.
#pragma once

#include <cstdint>
#include <vector>

#include "sm/subnet_manager.hpp"

namespace ibvs::sm {

/// One LFT entry rewrite, recorded before it is sent. `switch_node` is the
/// fabric NodeId of the physical switch (durable across SM failovers).
struct LftDelta {
  NodeId switch_node = kInvalidNode;
  Lid lid;
  PortNum old_port = 0;
  PortNum new_port = 0;

  [[nodiscard]] LftDelta inverse() const noexcept {
    return {switch_node, lid, new_port, old_port};
  }
};

enum class RecordState : std::uint8_t {
  kInFlight,    ///< begun, neither committed nor rolled back
  kCommitted,   ///< reconfiguration completed (possibly by replay)
  kRolledBack,  ///< inverse deltas applied, addresses restored
};

[[nodiscard]] const char* to_string(RecordState state);

/// Everything a recovering SM needs to finish or undo one migration. The
/// hypervisor/VF indices are opaque orchestrator-side tags: the SM never
/// interprets them, but carrying them lets the vSwitch layer reconcile its
/// slot bookkeeping with whatever outcome recovery chose.
struct MigrationRecord {
  std::uint64_t id = 0;
  std::uint32_t vm_id = 0;
  Lid vm_lid;
  /// The second LID of the record: the destination VF's prepopulated LID
  /// for a plain migration, or the peer VM's LID when swap_pair is set.
  Lid swapped_lid;
  Guid vguid;
  /// Destination-swap pair: two live VMs trading slots in one record. The
  /// peer's identity rides along so recovery can restore *both* VMs'
  /// addresses (the dst VF holds peer_vguid, not kInvalidGuid, on undo).
  bool swap_pair = false;
  std::uint32_t peer_vm_id = 0;  ///< orchestrator tag
  Guid peer_vguid = kInvalidGuid;
  NodeId src_vf = kInvalidNode;
  NodeId dst_vf = kInvalidNode;
  NodeId src_pf = kInvalidNode;
  NodeId dst_pf = kInvalidNode;
  PortNum src_vf_slot = 0;  ///< VF slot number on the source PF (SMP target)
  PortNum dst_vf_slot = 0;
  std::size_t src_hypervisor = 0;  ///< orchestrator tag
  std::size_t dst_hypervisor = 0;  ///< orchestrator tag
  std::size_t src_vf_index = 0;    ///< orchestrator tag
  std::size_t dst_vf_index = 0;    ///< orchestrator tag
  /// Write-ahead flags: set *before* the corresponding SMPs go out.
  bool addresses_moved = false;
  std::vector<LftDelta> deltas;  ///< the full planned LFT delta set
  RecordState state = RecordState::kInFlight;
  /// Set once the vSwitch layer has folded this record's outcome into its
  /// slot bookkeeping (reconcile_with_journal), or when the record was
  /// committed / rolled back through the normal transaction path.
  bool reconciled = false;
};

/// Which structural change a topology record describes.
enum class TopologyOp : std::uint8_t {
  kAttachSwitch,  ///< new switch cabled in, LID assigned, routes grown
  kDetachSwitch,  ///< switch drained, cables severed, routes repaired
  kAddLink,       ///< one new cable between existing switches
  kRemoveLink,    ///< one cable removed, affected routes repaired
};

[[nodiscard]] const char* to_string(TopologyOp op);

/// Everything a recovering SM needs to finish or undo one topology delta.
/// Like MigrationRecord, keyed by durable identities only — the cable list
/// carries exact endpoints so a rolled-back detach re-plugs precisely what
/// was severed, and a rolled-back attach unplugs precisely what was added.
struct TopologyRecord {
  std::uint64_t id = 0;
  TopologyOp op = TopologyOp::kAddLink;
  /// The switch being attached or detached (kInvalidNode for link ops).
  NodeId subject = kInvalidNode;
  /// The subject switch's management LID: assigned on attach, released on
  /// detach, restored verbatim when the delta rolls back.
  Lid subject_lid;
  /// Cables this delta adds (attach/add_link) or removes
  /// (detach/remove_link).
  std::vector<CableSpec> cables;
  /// Write-ahead mark: the cabling mutation is about to begin.
  bool mutated = false;
  std::vector<LftDelta> deltas;  ///< the full planned re-route delta set
  RecordState state = RecordState::kInFlight;
  bool reconciled = false;
};

/// What ReconfigJournal::recover() did to the in-flight records.
struct RecoveryReport {
  std::size_t in_flight = 0;       ///< records that needed a decision
  std::size_t rolled_forward = 0;  ///< replayed to completion
  std::size_t rolled_back = 0;     ///< undone via inverse deltas
  std::uint64_t address_smps = 0;  ///< VF LID/GUID SMPs sent restoring
  double address_time_us = 0.0;    ///< batch makespan of those restores
  SubnetManager::ReconvergeReport redistribution;
};

class ReconfigJournal {
 public:
  /// Opens a record; assigns and returns its id. State starts kInFlight.
  std::uint64_t begin(MigrationRecord record);

  /// Write-ahead mark: the address-migration SMPs (§V-C step a) are about
  /// to be sent for record `id`.
  void record_addresses_moved(std::uint64_t id);

  /// Write-ahead mark: the LFT delta set for record `id`, recorded before
  /// any swap/copy SMP goes out.
  void record_deltas(std::uint64_t id, std::vector<LftDelta> deltas);

  void commit(std::uint64_t id);
  void roll_back(std::uint64_t id);

  [[nodiscard]] MigrationRecord* find(std::uint64_t id);
  [[nodiscard]] const MigrationRecord* find(std::uint64_t id) const;
  [[nodiscard]] const std::vector<MigrationRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] std::size_t in_flight() const;

  /// Opens a topology record; assigns and returns its id.
  std::uint64_t begin_topology(TopologyRecord record);

  /// Write-ahead mark: the cabling mutation for record `id` is about to run.
  void record_topology_mutated(std::uint64_t id);

  /// Write-ahead mark: the subject's LID for record `id`, recorded before
  /// the PortInfo SMP goes out (an attach learns the LID only mid-flight).
  void record_topology_lid(std::uint64_t id, Lid lid);

  /// Write-ahead mark: the re-route delta set for record `id`, recorded
  /// before any LFT SMP goes out.
  void record_topology_deltas(std::uint64_t id, std::vector<LftDelta> deltas);

  void commit_topology(std::uint64_t id);
  void roll_back_topology(std::uint64_t id);

  [[nodiscard]] TopologyRecord* find_topology(std::uint64_t id);
  [[nodiscard]] const TopologyRecord* find_topology(std::uint64_t id) const;
  [[nodiscard]] const std::vector<TopologyRecord>& topology_records()
      const noexcept {
    return topology_records_;
  }

  /// Drops terminal records the vSwitch layer has already reconciled,
  /// bounding journal growth. Returns how many were dropped.
  std::size_t truncate_reconciled();

  /// Crash-consistent replay, run by whichever SM owns the subnet now (a
  /// standby promoted by SmElection after the master died mid-batch, or the
  /// surviving instance after an aborted transaction). For every in-flight
  /// record, deterministically either
  ///   * rolls forward — addresses already moved, deltas recorded, and the
  ///     destination PF reachable: re-apply every delta to the master
  ///     tables and fix the LidMap/alias-GUID state, or
  ///   * rolls back — apply the inverse deltas and restore the addresses to
  ///     the source VF (reverse swap for prepopulated, restore-entry for
  ///     dynamic), pricing the VF LID/GUID SMPs on the batch clock,
  /// then redistributes master/installed diffs until convergence. No route
  /// recomputation happens: recovery keeps the PCt-free property (§VI).
  /// Idempotent — a second call finds nothing in flight and sends nothing.
  RecoveryReport recover(SubnetManager& sm, std::size_t max_rounds = 64,
                         SmpRouting routing = SmpRouting::kLidRouted);

 private:
  /// Resolves one in-flight topology record against the current fabric.
  void recover_topology(SubnetManager& sm, TopologyRecord& r,
                        RecoveryReport& report, SmpRouting routing);

  std::vector<MigrationRecord> records_;
  std::vector<TopologyRecord> topology_records_;
  std::uint64_t next_id_ = 1;
};

}  // namespace ibvs::sm
