#include "sm/sa.hpp"

namespace ibvs::sm {

std::optional<PathRecord> SaService::query(Lid src, Guid dst_guid) {
  ++queries_;
  if (!sm_.has_routing()) return std::nullopt;
  const Fabric& fabric = sm_.fabric();
  const LidMap& lids = sm_.lids();

  const auto dst_node = fabric.find_ca_by_guid(dst_guid);
  if (!dst_node) return std::nullopt;
  const Lid dst = fabric.node(*dst_node).lid();
  if (!dst.valid()) return std::nullopt;

  const auto& routing = sm_.routing_result();
  const auto src_attach = lids.attachment(fabric, src);
  const auto dst_attach = lids.attachment(fabric, dst);
  if (!src_attach || !dst_attach) return std::nullopt;
  const auto src_sw = routing.graph.dense(src_attach->first);
  const auto dst_sw = routing.graph.dense(dst_attach->first);
  if (src_sw == routing::kNoSwitch || dst_sw == routing::kNoSwitch)
    return std::nullopt;

  PathRecord record;
  record.slid = src;
  record.dlid = dst;
  record.dguid = dst_guid;
  record.sl = routing.vl_for(src_sw, dst, dst_sw);

  // Walk the master tables for the hop count.
  routing::SwitchIdx x = src_sw;
  std::size_t hops = 0;
  const std::size_t guard = routing.graph.num_switches() + 1;
  while (x != dst_sw && hops < guard) {
    const PortNum port = routing.lfts[x].get(dst);
    const std::uint32_t e = routing.graph.edge_of(x, port);
    if (port == kDropPort || e == routing::SwitchGraph::kNoEdge)
      return std::nullopt;
    x = routing.graph.edges[e].to;
    ++hops;
  }
  if (x != dst_sw) return std::nullopt;
  record.hops = static_cast<std::uint8_t>(hops);
  return record;
}

std::optional<PathRecord> PathRecordCache::resolve(Lid src, Guid dst_guid) {
  const std::uint64_t key =
      dst_guid.value() ^ (static_cast<std::uint64_t>(src.value()) << 48);
  const auto it = cache_.find(key);
  if (it != cache_.end()) {
    // Is the cached GUID -> LID binding still true? With vSwitch migration
    // it is (the VM carried its LID); with Shared Port it is not.
    const auto node = sm_.fabric().find_ca_by_guid(dst_guid);
    if (node && sm_.fabric().node(*node).lid() == it->second.dlid) {
      ++hits_;
      return it->second;
    }
    ++stale_;
    cache_.erase(it);
  }
  ++misses_;
  auto record = sa_.query(src, dst_guid);
  if (record) cache_[key] = *record;
  return record;
}

}  // namespace ibvs::sm
