// Subnet Administration (SA) path-record service with client-side caching.
//
// When a VM live-migrates, peers that lose the connection normally flood the
// SA with PathRecord queries to rediscover the destination (§I). The
// companion work the paper builds on (Tasoulas et al., CCGrid 2015 [10])
// showed that when each VM *keeps its addresses* across the migration — the
// very property the vSwitch architecture provides — peers can answer from a
// local cache: the GUID -> LID binding did not change, so the cached record
// is still valid. Under the Shared Port model the LID changes with the
// hypervisor, the cached record goes stale, and the peer must re-query.
// This module provides both halves so the benches can quantify the saved
// queries per migration.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "sm/subnet_manager.hpp"

namespace ibvs::sm {

struct PathRecord {
  Lid slid;
  Lid dlid;
  std::uint8_t sl = 0;    ///< service level (maps to the VL layer)
  std::uint8_t hops = 0;  ///< path length, switch hops
  Guid dguid;             ///< destination GUID the record resolves
};

/// The SA service: resolves (src LID, destination GUID) against the SM's
/// current state, like a real PathRecord query by GID. Counts queries — the
/// load the cache is designed to remove.
class SaService {
 public:
  explicit SaService(const SubnetManager& sm) : sm_(sm) {}

  /// PathRecord query by destination GUID (or alias/vGUID).
  std::optional<PathRecord> query(Lid src, Guid dst_guid);

  [[nodiscard]] std::uint64_t queries_served() const noexcept {
    return queries_;
  }

 private:
  const SubnetManager& sm_;
  std::uint64_t queries_ = 0;
};

/// Client-side cache in the spirit of [10], keyed by (src LID, dst GUID).
/// resolve() consults the cache first and verifies the cached LID still
/// belongs to the GUID (in reality the client notices via a failed connect;
/// the simulation checks directly). A still-valid record is a hit with zero
/// SA traffic — the vSwitch case. A changed binding is a stale hit: the
/// record is dropped and the SA is queried — the Shared Port case.
class PathRecordCache {
 public:
  PathRecordCache(SaService& sa, const SubnetManager& sm)
      : sa_(sa), sm_(sm) {}

  std::optional<PathRecord> resolve(Lid src, Guid dst_guid);

  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  [[nodiscard]] std::uint64_t stale_hits() const noexcept { return stale_; }

  void invalidate_all() noexcept { cache_.clear(); }

 private:
  SaService& sa_;
  const SubnetManager& sm_;
  std::unordered_map<std::uint64_t, PathRecord> cache_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t stale_ = 0;
};

}  // namespace ibvs::sm
