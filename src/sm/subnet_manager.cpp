#include "sm/subnet_manager.hpp"

#include <algorithm>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "util/expect.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace ibvs::sm {

namespace {

/// Sweep-phase counters, resolved once per process.
struct SweepMetrics {
  telemetry::Counter& sweeps;
  telemetry::Counter& discoveries;
  telemetry::Counter& lids_assigned;
  telemetry::Counter& route_computations;
  telemetry::Counter& blocks_sent;
  telemetry::Counter& blocks_skipped;
  telemetry::Gauge& last_pct_seconds;
  telemetry::Gauge& last_lftdt_us;
  telemetry::Counter& cold_resyncs;
  telemetry::Counter& topology_adoptions;

  static SweepMetrics& get() {
    auto& reg = telemetry::Registry::global();
    static SweepMetrics m{
        reg.counter("ibvs_sm_sweeps_total", {}, "Full sweeps run"),
        reg.counter("ibvs_sm_discoveries_total", {},
                    "Directed-route discovery passes"),
        reg.counter("ibvs_sm_lids_assigned_total", {},
                    "LIDs newly assigned by the SM"),
        reg.counter("ibvs_sm_route_computations_total", {},
                    "Routing-engine runs (the PCt the paper eliminates)"),
        reg.counter("ibvs_sm_lft_blocks_sent_total", {},
                    "LFT blocks distributed because they differed"),
        reg.counter("ibvs_sm_lft_blocks_skipped_total", {},
                    "LFT blocks skipped because the switch was up to date"),
        reg.gauge("ibvs_sm_last_pct_seconds", {},
                  "Path-computation time of the last routing run"),
        reg.gauge("ibvs_sm_last_lftdt_us", {},
                  "Batch makespan of the last LFT distribution"),
        reg.counter("ibvs_sm_cold_resyncs_total", {},
                    "Full-LFT resyncs of switches restored after an outage"),
        reg.counter("ibvs_sm_topology_adoptions_total", {},
                    "Structural fabric changes adopted without a PCt"),
    };
    return m;
  }
};

}  // namespace

SubnetManager::SubnetManager(Fabric& fabric, NodeId sm_host,
                             std::unique_ptr<routing::RoutingEngine> engine,
                             fabric::TimingModel timing)
    : fabric_(fabric),
      transport_(fabric, sm_host, timing),
      engine_(std::move(engine)) {
  IBVS_REQUIRE(engine_ != nullptr, "a routing engine is required");
}

void SubnetManager::set_engine(
    std::unique_ptr<routing::RoutingEngine> engine) {
  IBVS_REQUIRE(engine != nullptr, "a routing engine is required");
  engine_ = std::move(engine);
}

DiscoveryReport SubnetManager::discover() {
  DiscoveryReport report;
  auto span = telemetry::Tracer::global().span("sm.discovery");
  SweepMetrics::get().discoveries.inc();
  const std::uint64_t smps_before = transport_.counters().total;
  // Directed-route BFS from the SM host: each node costs one Get(NodeInfo)
  // (plus Get(SwitchInfo) for switches), each connected port one
  // Get(PortInfo). Hop counts follow the BFS depth, as directed routes do.
  std::vector<std::uint32_t> depth(fabric_.size(), ~0u);
  std::vector<NodeId> queue;
  const NodeId start = transport_.sm_node();
  depth[start] = 0;
  queue.push_back(start);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const NodeId u = queue[head];
    const Node& n = fabric_.node(u);
    ++report.nodes_found;
    if (n.is_switch()) {
      ++report.switches_found;
    } else {
      ++report.cas_found;
    }
    transport_.send_discovery_get(u, SmpAttribute::kNodeInfo, depth[u]);
    if (n.is_switch()) {
      transport_.send_discovery_get(u, SmpAttribute::kSwitchInfo, depth[u]);
    }
    const bool forwards = n.is_switch() || u == start;
    for (PortNum p = 1; p <= n.num_ports(); ++p) {
      const Port& port = n.ports[p];
      if (!port.connected()) continue;
      transport_.send_discovery_get(u, SmpAttribute::kPortInfo, depth[u]);
      if (forwards && depth[port.peer] == ~0u) {
        depth[port.peer] = depth[u] + 1;
        queue.push_back(port.peer);
      }
    }
  }
  report.smps = transport_.counters().total - smps_before;
  span.set_attr("nodes", std::to_string(report.nodes_found));
  span.set_attr("smps", std::to_string(report.smps));
  return report;
}

Lid SubnetManager::assign_lid(NodeId node, PortNum port) {
  const Lid lid = lids_.assign_next(fabric_, node, port);
  transport_.send_port_info_set(node, port);
  return lid;
}

std::size_t SubnetManager::adopt_lids() {
  std::size_t adopted = 0;
  const auto adopt = [&](NodeId id, PortNum port) {
    const Lid base = fabric_.node(id).ports[port].lid;
    if (!base.valid()) return;
    const std::uint32_t width = 1u << fabric_.node(id).ports[port].lmc;
    for (std::uint32_t v = base.value(); v < base.value() + width; ++v) {
      const Lid lid{static_cast<std::uint16_t>(v)};
      if (!lids_.assigned(lid)) {
        lids_.assign(fabric_, id, port, lid);
        ++adopted;
      }
    }
    // assign() mirrors each LID into the port; restore the block's base.
    fabric_.set_lid(id, port, base);
  };
  // CAs first so a shared PF/vSwitch LID is owned by the PF endpoint.
  for (NodeId id = 0; id < fabric_.size(); ++id) {
    const Node& n = fabric_.node(id);
    if (!n.is_ca()) continue;
    for (PortNum p = 1; p <= n.num_ports(); ++p) adopt(id, p);
  }
  for (NodeId id = 0; id < fabric_.size(); ++id) {
    if (fabric_.node(id).is_physical_switch()) adopt(id, 0);
  }
  return adopted;
}

std::size_t SubnetManager::assign_lids() {
  auto span = telemetry::Tracer::global().span("sm.lid_assignment");
  adopt_lids();
  std::size_t assigned = 0;
  for (NodeId id = 0; id < fabric_.size(); ++id) {
    const Node& n = fabric_.node(id);
    if (n.is_physical_switch()) {
      if (!n.lid().valid()) {
        assign_lid(id, 0);
        ++assigned;
      }
    } else if (n.is_ca() && n.role != CaRole::kVf) {
      // Plain hosts and PFs get LIDs here; VF addressing is policy —
      // prepopulated vs dynamic — and owned by the vSwitch layer.
      for (PortNum p = 1; p <= n.num_ports(); ++p) {
        if (n.ports[p].connected() && !n.ports[p].lid.valid()) {
          assign_lid(id, p);
          ++assigned;
        }
      }
    }
  }
  // vSwitches mirror their PF's LID (no LidMap entry, no LFT target).
  for (NodeId id = 0; id < fabric_.size(); ++id) {
    const Node& n = fabric_.node(id);
    if (!n.is_vswitch()) continue;
    for (PortNum p = 1; p <= n.num_ports(); ++p) {
      const Port& port = n.ports[p];
      if (!port.connected()) continue;
      const Node& peer = fabric_.node(port.peer);
      if (peer.is_ca() && peer.role == CaRole::kPf) {
        fabric_.set_lid(id, 0, peer.lid());
        break;
      }
    }
  }
  SweepMetrics::get().lids_assigned.inc(assigned);
  span.set_attr("assigned", std::to_string(assigned));
  return assigned;
}

const routing::RoutingResult& SubnetManager::compute_routes() {
  auto span = telemetry::Tracer::global().span(
      "sm.path_computation", {{"engine", std::string(engine_->name())}});
  routing_ = engine_->compute(fabric_, lids_);
  routing_ready_ = true;
  ++generation_;
  auto& metrics = SweepMetrics::get();
  metrics.route_computations.inc();
  metrics.last_pct_seconds.set(routing_.compute_seconds);
  return routing_;
}

void SubnetManager::collect_lft_diffs(
    std::vector<std::uint8_t>& reachable,
    std::vector<std::vector<std::uint32_t>>& to_send) {
  const auto& g = routing_.graph;
  const std::size_t n = g.num_switches();
  // Reachability is resolved serially up front: hops_to() owns a lazily
  // rebuilt BFS cache that must not be raced, and a severed switch cannot
  // be programmed anyway — diffing it would charge the sweep for SMPs that
  // can never be delivered (they are re-diffed once the switch returns).
  reachable.assign(n, 0);
  // The cold set is resolved in the same serial pass: a switch observed
  // unreachable is remembered; the first pass that sees it reachable again
  // schedules a cold full-table resend (after an outage the installed LFT
  // cannot be trusted on real hardware — the simulation preserves it, but
  // the SM must not rely on that) and drops it from the set, so the next
  // round diffs it normally and convergence still means a zero-send round.
  std::vector<std::uint8_t> cold(n, 0);
  for (std::size_t s = 0; s < n; ++s) {
    reachable[s] = transport_.hops_to(g.switches[s]).has_value() ? 1 : 0;
    if (!reachable[s]) {
      cold_pending_.insert(g.switches[s]);
    } else if (auto it = cold_pending_.find(g.switches[s]);
               it != cold_pending_.end()) {
      cold[s] = 1;
      cold_pending_.erase(it);
      SweepMetrics::get().cold_resyncs.inc();
    }
  }
  // The per-switch block scans are independent pure reads of the master and
  // installed tables, so they fan out over the pool into per-switch send
  // lists — one contiguous switch range per worker (not oversubscribed
  // chunks: the word-at-a-time diff makes each switch so cheap that task
  // hand-off would dominate). The caller's serial, index-ordered send loop
  // then reproduces the exact SMP stream of a single-threaded sweep.
  to_send.assign(n, {});
  ThreadPool::global().parallel_for_shards(
      0, n, [&](std::size_t, std::size_t chunk_begin, std::size_t chunk_end) {
        for (std::size_t s = chunk_begin; s < chunk_end; ++s) {
          if (!reachable[s]) continue;
          const Lft& master = routing_.lfts[s];
          if (cold[s]) {
            // Restored after an outage: resend every master block, matching
            // or not — content equality with a switch that just came back
            // proves nothing about what its hardware actually holds.
            for (std::size_t b = 0; b < master.block_count(); ++b) {
              to_send[s].push_back(static_cast<std::uint32_t>(b));
            }
            continue;
          }
          const Lft& installed = fabric_.node(g.switches[s]).lft;
          master.for_each_diff_block(installed, [&](std::size_t b) {
            // Blocks beyond the master's capacity have no payload to send;
            // they stay whatever the switch holds (as before the fast path).
            if (b < master.block_count()) {
              to_send[s].push_back(static_cast<std::uint32_t>(b));
            }
          });
        }
      });
}

DistributionReport SubnetManager::distribute_lfts(SmpRouting routing) {
  IBVS_REQUIRE(routing_ready_, "compute_routes() must run first");
  DistributionReport report;
  auto span = telemetry::Tracer::global().span("sm.lft_distribution");
  std::vector<std::uint8_t> reachable;
  std::vector<std::vector<std::uint32_t>> to_send;
  collect_lft_diffs(reachable, to_send);
  const auto& g = routing_.graph;
  transport_.begin_batch();
  for (routing::SwitchIdx s = 0; s < g.num_switches(); ++s) {
    if (!reachable[s]) continue;  // severed: cannot program
    const Lft& master = routing_.lfts[s];
    report.blocks_skipped += master.block_count() - to_send[s].size();
    for (const std::uint32_t b : to_send[s]) {
      transport_.send_lft_block(g.switches[s], b, master.block(b), routing);
      ++report.smps;
    }
    if (!to_send[s].empty()) ++report.switches_touched;
  }
  report.time_us = transport_.end_batch();
  auto& metrics = SweepMetrics::get();
  metrics.blocks_sent.inc(report.smps);
  metrics.blocks_skipped.inc(report.blocks_skipped);
  metrics.last_lftdt_us.set(report.time_us);
  span.set_attr("blocks_sent", std::to_string(report.smps));
  span.set_attr("blocks_skipped", std::to_string(report.blocks_skipped));
  span.set_attr("switches_touched",
                std::to_string(report.switches_touched));
  return report;
}

SubnetManager::ReconvergeReport SubnetManager::redistribute(
    std::size_t max_rounds, SmpRouting routing) {
  IBVS_REQUIRE(routing_ready_, "compute_routes() must run first");
  ReconvergeReport report;
  std::vector<std::uint8_t> reachable;
  std::vector<std::vector<std::uint32_t>> to_send;
  for (std::size_t round = 0; round < max_rounds; ++round) {
    ++report.rounds;
    collect_lft_diffs(reachable, to_send);
    const auto& g = routing_.graph;
    transport_.begin_batch();
    std::uint64_t sent = 0;
    for (routing::SwitchIdx s = 0; s < g.num_switches(); ++s) {
      if (!reachable[s]) continue;  // severed: cannot program
      const Lft& master = routing_.lfts[s];
      for (const std::uint32_t b : to_send[s]) {
        transport_.send_lft_block(g.switches[s], b, master.block(b),
                                  routing);
        ++sent;
      }
    }
    report.time_us += transport_.end_batch();
    report.smps += sent;
    if (sent == 0) {
      report.converged = true;
      break;
    }
  }
  SweepMetrics::get().blocks_sent.inc(report.smps);
  return report;
}

SubnetManager::ReconvergeReport SubnetManager::reconverge(
    std::size_t max_rounds, SmpRouting routing) {
  auto span = telemetry::Tracer::global().span("sm.reconverge");
  compute_routes();
  const ReconvergeReport report = redistribute(max_rounds, routing);
  span.set_attr("rounds", std::to_string(report.rounds));
  span.set_attr("smps", std::to_string(report.smps));
  span.set_attr("converged", report.converged ? "true" : "false");
  return report;
}

SweepReport SubnetManager::full_sweep() {
  auto span = telemetry::Tracer::global().span("sm.sweep");
  SweepMetrics::get().sweeps.inc();
  SweepReport report;
  report.discovery = discover();
  report.lids_assigned = assign_lids();
  compute_routes();
  report.path_computation_seconds = routing_.compute_seconds;
  report.distribution = distribute_lfts();
  span.set_attr("reconfig_time_us",
                std::to_string(report.reconfiguration_time_us()));
  IBVS_INFO("sm") << "sweep done: " << report.discovery.nodes_found
                  << " nodes, " << report.lids_assigned << " LIDs, "
                  << report.distribution.smps << " LFT SMPs, PCt="
                  << report.path_computation_seconds * 1e3 << " ms";
  return report;
}

void SubnetManager::flag_degraded_port(NodeId node, PortNum port,
                                       std::string_view reason) {
  IBVS_REQUIRE(node < fabric_.size(), "flagged node out of range");
  for (FlaggedPort& f : degraded_ports_) {
    if (f.node == node && f.port == port) {
      f.reason = std::string(reason);
      return;
    }
  }
  static telemetry::Counter& flagged = telemetry::Registry::global().counter(
      "ibvs_sm_degraded_ports_flagged_total", {},
      "Distinct ports the health layer reported to the SM");
  flagged.inc();
  degraded_ports_.push_back({node, port, std::string(reason)});
  IBVS_WARN("sm") << "degraded link flagged: " << fabric_.node(node).name
                  << "/p" << static_cast<unsigned>(port) << " (" << reason
                  << ")";
}

void SubnetManager::update_master_entry(routing::SwitchIdx sw, Lid lid,
                                        PortNum port) {
  IBVS_REQUIRE(routing_ready_, "no master tables yet");
  IBVS_REQUIRE(sw < routing_.lfts.size(), "switch index out of range");
  routing_.lfts[sw].set(lid, port);
}

void SubnetManager::refresh_targets() {
  IBVS_REQUIRE(routing_ready_, "no master tables yet");
  routing_.graph.rebuild_targets(fabric_, lids_);
}

void SubnetManager::adopt_topology_change() {
  IBVS_REQUIRE(routing_ready_, "no master tables yet");
  routing_.graph = routing::SwitchGraph::build(fabric_, lids_);
  // Physical switches are enumerated in NodeId order and nodes are never
  // removed, so every pre-existing switch keeps its dense index; newly
  // added switches append at the tail and get empty master tables (every
  // entry kDropPort) for the topology transaction to fill in.
  while (routing_.lfts.size() < routing_.graph.num_switches()) {
    routing_.lfts.emplace_back(lids_.top_lid());
  }
  transport_.invalidate_topology();
  ++generation_;
  SweepMetrics::get().topology_adoptions.inc();
}

std::uint64_t SubnetManager::push_dirty_blocks(routing::SwitchIdx sw,
                                               SmpRouting routing) {
  IBVS_REQUIRE(routing_ready_, "no master tables yet");
  Lft& master = routing_.lfts[sw];
  const NodeId node = routing_.graph.switches[sw];
  std::uint64_t sent = 0;
  master.for_each_dirty_block([&](std::size_t b) {
    transport_.send_lft_block(node, static_cast<std::uint32_t>(b),
                              master.block(b), routing);
    ++sent;
  });
  master.clear_dirty();
  return sent;
}

}  // namespace ibvs::sm
