// OpenSM-like subnet manager.
//
// Owns the management view of the subnet: the LID map, the chosen routing
// engine, and the *computed* (master) LFTs. A sweep performs the classic
// four stages, each individually measurable because the paper's cost model
// (eq. 1: RCt = PCt + LFTDt) splits exactly there:
//
//   1. discovery      — directed-route sweep, one Get(NodeInfo) per node +
//                       one Get(PortInfo) per connected port,
//   2. LID assignment — PortInfo Set per newly addressed port,
//   3. path computation (PCt) — the routing engine run,
//   4. LFT distribution (LFTDt) — per switch, send only the 64-entry blocks
//                       that differ from what the switch already has.
//
// The vSwitch layer (src/core) drives the same SubnetManager for its
// reconfigurations, writing individual LFT entries through
// update_lft_entry() so master state and hardware state stay in lockstep.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "fabric/transport.hpp"
#include "ib/fabric.hpp"
#include "ib/lid_map.hpp"
#include "routing/engine.hpp"

namespace ibvs::sm {

struct DiscoveryReport {
  std::size_t nodes_found = 0;
  std::size_t switches_found = 0;
  std::size_t cas_found = 0;
  std::uint64_t smps = 0;
};

struct DistributionReport {
  std::uint64_t smps = 0;          ///< LFT block writes actually sent
  std::uint64_t blocks_skipped = 0;  ///< blocks already up to date
  std::size_t switches_touched = 0;
  double time_us = 0.0;  ///< batch makespan under the timing model
};

struct SweepReport {
  DiscoveryReport discovery;
  std::size_t lids_assigned = 0;
  double path_computation_seconds = 0.0;  ///< PCt
  DistributionReport distribution;        ///< LFTDt lives here

  [[nodiscard]] double reconfiguration_time_us() const noexcept {
    return path_computation_seconds * 1e6 + distribution.time_us;
  }
};

class SubnetManager {
 public:
  /// The SM runs on `sm_host` (a CA endpoint, like a dedicated SM node or a
  /// hypervisor PF — never a VM VF: the Shared Port model forbids that and
  /// the vSwitch model would allow it, see §IV).
  SubnetManager(Fabric& fabric, NodeId sm_host,
                std::unique_ptr<routing::RoutingEngine> engine,
                fabric::TimingModel timing = {});

  [[nodiscard]] Fabric& fabric() noexcept { return fabric_; }
  [[nodiscard]] const Fabric& fabric() const noexcept { return fabric_; }
  [[nodiscard]] LidMap& lids() noexcept { return lids_; }
  [[nodiscard]] const LidMap& lids() const noexcept { return lids_; }
  [[nodiscard]] fabric::SmpTransport& transport() noexcept {
    return transport_;
  }
  [[nodiscard]] routing::RoutingEngine& engine() noexcept { return *engine_; }
  void set_engine(std::unique_ptr<routing::RoutingEngine> engine);

  /// Directed-route BFS over the fabric, counting discovery SMPs.
  DiscoveryReport discover();

  /// Adopts LIDs already programmed into the fabric's ports (what a real
  /// OpenSM does when taking over a running subnet: honor existing
  /// assignments read back via PortInfo). Returns how many were adopted.
  /// Idempotent; called automatically by assign_lids().
  std::size_t adopt_lids();

  /// Assigns LIDs to every unaddressed switch (port 0) and CA port, in node
  /// order, after adopting existing ones. vSwitches share their PF's LID
  /// (§V: "the vSwitch does not need to occupy an additional LID").
  /// Returns how many were newly assigned.
  std::size_t assign_lids();

  /// Assigns a LID to one port and accounts the PortInfo SMP.
  Lid assign_lid(NodeId node, PortNum port);

  /// Runs the routing engine; stores the result as the master tables.
  const routing::RoutingResult& compute_routes();

  /// Sends every master LFT block that differs from the installed one.
  /// Switches with no path from the SM are skipped (like reconverge():
  /// they cannot be programmed, so their blocks are neither counted as
  /// sent nor as skipped). Block diffing runs on the global thread pool;
  /// the SMP send order is that of a single-threaded sweep.
  DistributionReport distribute_lfts(
      SmpRouting routing = SmpRouting::kDirected);

  /// discover + assign_lids + compute_routes + distribute_lfts.
  SweepReport full_sweep();

  /// Outcome of reconverge(): repeated diff-distributions until the
  /// installed tables match the master ones.
  struct ReconvergeReport {
    std::size_t rounds = 0;  ///< distribution rounds run
    std::uint64_t smps = 0;  ///< LFT block writes across all rounds
    double time_us = 0.0;    ///< summed batch makespans
    bool converged = false;  ///< a round sent zero blocks
  };

  /// Recomputes routes, then repeatedly distributes the differing LFT
  /// blocks until a round sends none (every reachable switch verified up
  /// to date) or `max_rounds` is hit. Switches currently unreachable from
  /// the SM are skipped — they cannot be programmed — and remembered: once
  /// such a switch returns it gets a cold full-LFT resync (its installed
  /// state cannot be trusted after an outage), then rejoins normal
  /// diffing. With a lossy fault model attached to the
  /// transport this is the SM's recovery loop: a failed install leaves the
  /// block different, so the next round simply resends it.
  ReconvergeReport reconverge(std::size_t max_rounds = 64,
                              SmpRouting routing = SmpRouting::kDirected);

  /// The distribution half of reconverge(): repeated diff-rounds against the
  /// *current* master tables, without recomputing routes. This is the
  /// PCt-free recovery primitive the reconfiguration journal replays
  /// through — master entries patched by hand (update_master_entry, journal
  /// replay) must not be overwritten by a routing run before they reach the
  /// hardware.
  ReconvergeReport redistribute(std::size_t max_rounds = 64,
                                SmpRouting routing = SmpRouting::kDirected);

  /// Master tables of the last compute_routes() (empty before the first).
  [[nodiscard]] const routing::RoutingResult& routing_result() const {
    return routing_;
  }
  [[nodiscard]] bool has_routing() const noexcept { return routing_ready_; }

  /// Rewrites one master LFT entry (no SMP — the caller decides when and
  /// how to push blocks to hardware). Used by the vSwitch reconfigurators.
  void update_master_entry(routing::SwitchIdx sw, Lid lid, PortNum port);

  /// Refreshes the routing result's LID target list after LIDs were
  /// created, destroyed or moved without a full recompute.
  void refresh_targets();

  /// Adopts a structural fabric change — switch attached or detached, cable
  /// added or removed — without a routing recompute. Rebuilds the switch
  /// graph (dense indices are append-stable: nodes are never removed, so
  /// existing switches keep theirs), grows master LFTs for newly appended
  /// switches (born empty, every entry kDropPort), and invalidates the
  /// transport's cached topology. Existing master entries survive so
  /// topology transactions and journal replay can patch them incrementally
  /// instead of paying a full PCt.
  void adopt_topology_change();

  /// Switches currently known to need a cold full-LFT resync once they
  /// become reachable again (observed unreachable by a diff pass and not
  /// yet resynced). Exposed for tests.
  [[nodiscard]] std::size_t cold_resyncs_pending() const noexcept {
    return cold_pending_.size();
  }

  /// Pushes the master blocks containing `lid` (and any other dirty blocks
  /// of that switch) to the hardware of switch `sw`. Returns SMPs sent.
  std::uint64_t push_dirty_blocks(routing::SwitchIdx sw, SmpRouting routing);

  /// Monotone generation counter, bumped whenever routes change; the SA
  /// cache uses it for invalidation.
  [[nodiscard]] std::uint64_t routing_generation() const noexcept {
    return generation_;
  }
  void bump_generation() noexcept { ++generation_; }

  /// A port the health layer (PerfMgr) reported as unhealthy.
  struct FlaggedPort {
    NodeId node = kInvalidNode;
    PortNum port = 0;
    std::string reason;
  };

  /// Health-verdict intake: logs and remembers a degraded link. Repeated
  /// flags for the same (node, port) refresh the reason without growing the
  /// list, so steady-state polling does not spam.
  void flag_degraded_port(NodeId node, PortNum port, std::string_view reason);

  [[nodiscard]] const std::vector<FlaggedPort>& degraded_ports()
      const noexcept {
    return degraded_ports_;
  }
  void clear_degraded_ports() noexcept { degraded_ports_.clear(); }

 private:
  /// Parallel diff phase shared by distribute_lfts() and reconverge():
  /// fills `reachable[s]` (can the SM currently program switch `s`?) and
  /// `to_send[s]` (master block indices whose installed copy differs) for
  /// every switch of the routing graph. Block scans run on the global
  /// thread pool; callers keep their send loops serial and index-ordered so
  /// the SMP stream is byte-identical to a single-threaded sweep.
  void collect_lft_diffs(std::vector<std::uint8_t>& reachable,
                         std::vector<std::vector<std::uint32_t>>& to_send);

  Fabric& fabric_;
  LidMap lids_;
  fabric::SmpTransport transport_;
  std::unique_ptr<routing::RoutingEngine> engine_;
  routing::RoutingResult routing_;
  /// Switches seen unreachable by collect_lft_diffs(). On a real fabric a
  /// switch returning from a power event holds an LFT the SM cannot trust
  /// (the simulation preserves installed tables, real hardware does not),
  /// so the first diff pass that finds one of these reachable again resends
  /// its *entire* master table instead of only the blocks that differ.
  std::unordered_set<NodeId> cold_pending_;
  bool routing_ready_ = false;
  std::uint64_t generation_ = 0;
  std::vector<FlaggedPort> degraded_ports_;
};

}  // namespace ibvs::sm
