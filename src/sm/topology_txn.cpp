#include "sm/topology_txn.hpp"

#include <algorithm>
#include <unordered_set>

#include "core/skyline.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "util/expect.hpp"
#include "util/log.hpp"

namespace ibvs::sm {

namespace {

struct TopologyMetrics {
  telemetry::Counter& begun;
  telemetry::Counter& committed;
  telemetry::Counter& rolled_back;
  telemetry::Histogram& delta_smps;

  static TopologyMetrics& get() {
    auto& reg = telemetry::Registry::global();
    static TopologyMetrics m{
        reg.counter("ibvs_topology_txns_total", {},
                    "Topology delta transactions begun"),
        reg.counter("ibvs_topology_commits_total", {},
                    "Topology delta transactions committed"),
        reg.counter("ibvs_topology_rollbacks_total", {},
                    "Topology delta transactions rolled back"),
        reg.histogram("ibvs_topology_delta_smps", {}, {},
                      "LFT + addressing SMPs per committed topology delta"),
    };
    return m;
  }
};

constexpr std::uint8_t kUnreachableHops = 0xFF;

}  // namespace

/// First out-edge port of `s` on a shortest path toward `t` (adjacency
/// order, the same deterministic tie-break the BFS-based engines use).
PortNum repair_port_toward(const routing::SwitchGraph& g,
                           const std::vector<std::uint8_t>& hops,
                           routing::SwitchIdx s, routing::SwitchIdx t) {
  const std::size_t n = g.num_switches();
  const std::uint8_t h = hops[static_cast<std::size_t>(s) * n + t];
  if (h == kUnreachableHops || h == 0) return kDropPort;
  const auto [begin, end] = g.out(s);
  for (const auto* e = begin; e != end; ++e) {
    if (hops[static_cast<std::size_t>(e->to) * n + t] + 1 == h) {
      return e->out_port;
    }
  }
  return kDropPort;
}

/// Full forwarding column for a LID delivered at (t, delivery_port):
/// entry[s] is the egress port of switch s, kDropPort when s cannot reach t.
std::vector<PortNum> repair_route_column(const routing::SwitchGraph& g,
                                         const std::vector<std::uint8_t>& hops,
                                         routing::SwitchIdx t,
                                         PortNum delivery_port) {
  std::vector<PortNum> column(g.num_switches(), kDropPort);
  for (routing::SwitchIdx s = 0; s < g.num_switches(); ++s) {
    column[s] = s == t ? delivery_port : repair_port_toward(g, hops, s, t);
  }
  return column;
}

const char* to_string(TopologyErrc code) {
  switch (code) {
    case TopologyErrc::kNotASwitch:
      return "not a physical switch";
    case TopologyErrc::kAlreadyCabled:
      return "switch still cabled";
    case TopologyErrc::kNotCabled:
      return "no such cable";
    case TopologyErrc::kBadCable:
      return "invalid cable endpoints";
    case TopologyErrc::kNotDrained:
      return "switch still hosts endpoints";
    case TopologyErrc::kWouldSeverSm:
      return "delta would sever the SM";
    case TopologyErrc::kRerouteFailed:
      return "no connectivity-sufficient repair";
    case TopologyErrc::kInterrupted:
      return "reconfiguration batch interrupted";
  }
  return "?";
}

const char* to_string(TopologyTxnState state) {
  switch (state) {
    case TopologyTxnState::kPrepared:
      return "prepared";
    case TopologyTxnState::kMutated:
      return "mutated";
    case TopologyTxnState::kRerouted:
      return "rerouted";
    case TopologyTxnState::kCommitted:
      return "committed";
    case TopologyTxnState::kRolledBack:
      return "rolled-back";
  }
  return "?";
}

TopologyTxn TopologyTxnManager::open(TopologyRecord record) {
  TopologyTxn txn;
  txn.op = record.op;
  txn.subject = record.subject;
  txn.subject_lid = record.subject_lid;
  txn.cables = record.cables;
  txn.id = journal_.begin_topology(std::move(record));
  TopologyMetrics::get().begun.inc();
  return txn;
}

TopologyTxn TopologyTxnManager::begin_attach_switch(
    NodeId sw, std::vector<CableSpec> cables) {
  IBVS_REQUIRE(sm_.has_routing(), "sweep the subnet before topology deltas");
  const Fabric& fabric = sm_.fabric();
  if (sw >= fabric.size() || !fabric.node(sw).is_physical_switch()) {
    throw TopologyError(TopologyErrc::kNotASwitch,
                        "attach subject is not a physical switch");
  }
  if (!fabric.cables_of(sw).empty()) {
    throw TopologyError(TopologyErrc::kAlreadyCabled,
                        fabric.node(sw).name +
                            " still has cables plugged; attach wants a "
                            "fresh (or fully severed) switch");
  }
  if (cables.empty()) {
    throw TopologyError(TopologyErrc::kBadCable,
                        "attach needs at least one cable");
  }
  std::unordered_set<std::uint64_t> used;  // (node << 8 | port) both ends
  for (const CableSpec& c : cables) {
    const bool ends_ok =
        c.a == sw && c.b < fabric.size() && c.b != sw &&
        fabric.node(c.b).is_physical_switch() && c.port_a >= 1 &&
        c.port_a <= fabric.node(c.a).num_ports() && c.port_b >= 1 &&
        c.port_b <= fabric.node(c.b).num_ports();
    if (!ends_ok || fabric.peer(c.a, c.port_a) || fabric.peer(c.b, c.port_b) ||
        !used.insert((std::uint64_t{c.a} << 8) | c.port_a).second ||
        !used.insert((std::uint64_t{c.b} << 8) | c.port_b).second) {
      throw TopologyError(TopologyErrc::kBadCable,
                          "attach cable endpoints must be free switch ports "
                          "with the subject on the A side");
    }
  }
  TopologyRecord record;
  record.op = TopologyOp::kAttachSwitch;
  record.subject = sw;
  record.cables = std::move(cables);
  return open(std::move(record));
}

TopologyTxn TopologyTxnManager::begin_detach_switch(
    NodeId sw, bool allow_orphan_endpoints) {
  IBVS_REQUIRE(sm_.has_routing(), "sweep the subnet before topology deltas");
  const Fabric& fabric = sm_.fabric();
  if (sw >= fabric.size() || !fabric.node(sw).is_physical_switch()) {
    throw TopologyError(TopologyErrc::kNotASwitch,
                        "detach subject is not a physical switch");
  }
  std::vector<CableSpec> cables = fabric.cables_of(sw);
  if (cables.empty()) {
    throw TopologyError(TopologyErrc::kNotCabled,
                        fabric.node(sw).name + " has no cables to sever");
  }
  const NodeId sm_host = sm_.transport().sm_node();
  const auto sm_attach = fabric.node(sm_host).is_ca()
                             ? fabric.physical_attachment(sm_host)
                             : std::nullopt;
  if (sm_host == sw || (sm_attach && sm_attach->first == sw)) {
    throw TopologyError(TopologyErrc::kWouldSeverSm,
                        "detaching " + fabric.node(sw).name +
                            " would cut the SM off its own subnet");
  }
  // Drain-first policy: endpoint LIDs still attaching through the subject
  // block the detach unless the caller explicitly accepts orphaning them
  // (the cloud layer evacuates resident VMs first, then passes the flag for
  // the empty PF LIDs that remain).
  if (!allow_orphan_endpoints) {
    for (const Lid lid : sm_.lids().assigned_lids()) {
      const LidMap::Owner owner = sm_.lids().owner(lid);
      if (owner.node == sw) continue;  // the subject's own management LID
      const auto att = sm_.lids().attachment(fabric, lid);
      if (att && att->first == sw) {
        throw TopologyError(
            TopologyErrc::kNotDrained,
            fabric.node(sw).name + " still hosts lid " +
                std::to_string(lid.value()) + " (" +
                fabric.node(owner.node).name + "); drain first");
      }
    }
  }
  TopologyRecord record;
  record.op = TopologyOp::kDetachSwitch;
  record.subject = sw;
  record.subject_lid = fabric.node(sw).lid();
  record.cables = std::move(cables);
  TopologyTxn txn = open(std::move(record));
  txn.allow_orphan_endpoints = allow_orphan_endpoints;
  return txn;
}

TopologyTxn TopologyTxnManager::begin_add_link(CableSpec cable) {
  IBVS_REQUIRE(sm_.has_routing(), "sweep the subnet before topology deltas");
  const Fabric& fabric = sm_.fabric();
  const bool ends_ok =
      cable.a < fabric.size() && cable.b < fabric.size() &&
      cable.a != cable.b && fabric.node(cable.a).is_physical_switch() &&
      fabric.node(cable.b).is_physical_switch() && cable.port_a >= 1 &&
      cable.port_a <= fabric.node(cable.a).num_ports() && cable.port_b >= 1 &&
      cable.port_b <= fabric.node(cable.b).num_ports();
  if (!ends_ok || fabric.peer(cable.a, cable.port_a) ||
      fabric.peer(cable.b, cable.port_b)) {
    throw TopologyError(TopologyErrc::kBadCable,
                        "add_link wants two free ports on two distinct "
                        "physical switches");
  }
  TopologyRecord record;
  record.op = TopologyOp::kAddLink;
  record.cables = {cable};
  return open(std::move(record));
}

TopologyTxn TopologyTxnManager::begin_remove_link(NodeId node, PortNum port) {
  IBVS_REQUIRE(sm_.has_routing(), "sweep the subnet before topology deltas");
  const Fabric& fabric = sm_.fabric();
  if (node >= fabric.size() || !fabric.node(node).is_physical_switch()) {
    throw TopologyError(TopologyErrc::kNotASwitch,
                        "remove_link subject is not a physical switch");
  }
  const auto peer = fabric.peer(node, port);
  if (!peer) {
    throw TopologyError(TopologyErrc::kNotCabled,
                        fabric.node(node).name + "/p" +
                            std::to_string(unsigned{port}) +
                            " has no cable");
  }
  if (!fabric.node(peer->first).is_physical_switch()) {
    throw TopologyError(TopologyErrc::kBadCable,
                        "remove_link only removes inter-switch cables "
                        "(unplugging an endpoint is a detach concern)");
  }
  TopologyRecord record;
  record.op = TopologyOp::kRemoveLink;
  record.cables = {CableSpec{node, port, peer->first, peer->second}};
  return open(std::move(record));
}

void TopologyTxnManager::txn_mutate(TopologyTxn& txn) {
  IBVS_REQUIRE(txn.state == TopologyTxnState::kPrepared,
               "transaction already mutated");
  Fabric& fabric = sm_.fabric();
  // Write-ahead: the journal learns the mutation is starting before the
  // first plug/unplug, so a crash inside this loop still recovers.
  journal_.record_topology_mutated(txn.id);
  const bool adds = txn.op == TopologyOp::kAttachSwitch ||
                    txn.op == TopologyOp::kAddLink;
  for (const CableSpec& c : txn.cables) {
    if (adds) {
      fabric.connect(c.a, c.port_a, c.b, c.port_b);
    } else {
      fabric.disconnect(c.a, c.port_a);
    }
  }
  sm_.transport().invalidate_topology();
  txn.state = TopologyTxnState::kMutated;
}

void TopologyTxnManager::plan_attach(TopologyTxn& txn,
                                     std::vector<LftDelta>& planned) const {
  const auto& routing = sm_.routing_result();
  const auto& g = routing.graph;
  const routing::SwitchIdx me = g.dense(txn.subject);
  IBVS_ENSURE(me != routing::kNoSwitch, "attach subject missing from graph");
  const auto hops = routing::switch_hop_matrix(g);
  // 1) Every other switch learns the route toward the new switch's LID.
  for (routing::SwitchIdx s = 0; s < g.num_switches(); ++s) {
    if (s == me) continue;
    const PortNum old_port = routing.lfts[s].get(txn.subject_lid);
    const PortNum new_port = repair_port_toward(g, hops, s, me);
    if (old_port != new_port) {
      planned.push_back({g.switches[s], txn.subject_lid, old_port, new_port});
    }
  }
  // 2) The new switch's own table: one entry per routable LID (its master
  // was born empty in adopt_topology_change).
  for (const auto& target : g.targets) {
    const PortNum new_port = target.sw == me
                                 ? target.port
                                 : repair_port_toward(g, hops, me, target.sw);
    const PortNum old_port = routing.lfts[me].get(target.lid);
    if (old_port != new_port) {
      planned.push_back({txn.subject, target.lid, old_port, new_port});
    }
  }
}

void TopologyTxnManager::plan_detach(TopologyTxn& txn,
                                     std::vector<LftDelta>& planned) const {
  const Fabric& fabric = sm_.fabric();
  const auto& routing = sm_.routing_result();
  const auto& g = routing.graph;
  const routing::SwitchIdx me = g.dense(txn.subject);
  IBVS_ENSURE(me != routing::kNoSwitch, "detach subject missing from graph");
  const auto hops = routing::switch_hop_matrix(g);

  // A route transits the subject iff some ex-neighbor forwards out of the
  // port its severed cable used to occupy; the recorded cable list is the
  // only place that wiring still exists.
  std::vector<Lid> affected;
  for (const Lid lid : sm_.lids().assigned_lids()) {
    if (lid == txn.subject_lid) continue;  // handled by the cleanup below
    for (const CableSpec& c : txn.cables) {
      const routing::SwitchIdx nb = g.dense(c.b);
      if (nb == routing::kNoSwitch) continue;
      if (routing.lfts[nb].get(lid) == c.port_b) {
        affected.push_back(lid);
        break;
      }
    }
  }
  txn.stats.lids_rerouted = affected.size();

  for (const Lid lid : affected) {
    const auto att = sm_.lids().attachment(fabric, lid);
    // An owner that detached together with the subject (orphaned endpoint)
    // has nowhere to be delivered; the checker skips it and so do we.
    if (!att) continue;
    const routing::SwitchIdx t = g.dense(att->first);
    if (t == routing::kNoSwitch || t == me) continue;
    core::EntryDelta delta;
    delta.old_entry.resize(g.num_switches());
    for (routing::SwitchIdx s = 0; s < g.num_switches(); ++s) {
      delta.old_entry[s] = routing.lfts[s].get(lid);
    }
    delta.new_entry = repair_route_column(g, hops, t, att->second);
    const std::vector<routing::SwitchIdx> repair =
        core::minimal_update_set(g, delta, t, att->second);
    for (const routing::SwitchIdx s : repair) {
      if (s == me) continue;  // severed: cannot be programmed
      planned.push_back(
          {g.switches[s], lid, delta.old_entry[s], delta.new_entry[s]});
    }
  }

  // Scrub the released management LID everywhere so a later reassignment of
  // the same value cannot inherit routes into the severed switch.
  if (txn.subject_lid.valid()) {
    for (routing::SwitchIdx s = 0; s < g.num_switches(); ++s) {
      if (s == me) continue;
      const PortNum old_port = routing.lfts[s].get(txn.subject_lid);
      if (old_port != kDropPort) {
        planned.push_back({g.switches[s], txn.subject_lid, old_port,
                           kDropPort});
      }
    }
    ++txn.stats.lids_rerouted;
  }
}

void TopologyTxnManager::plan_remove_link(
    TopologyTxn& txn, std::vector<LftDelta>& planned) const {
  const Fabric& fabric = sm_.fabric();
  const auto& routing = sm_.routing_result();
  const auto& g = routing.graph;
  const CableSpec& cable = txn.cables.front();
  const routing::SwitchIdx sa = g.dense(cable.a);
  const routing::SwitchIdx sb = g.dense(cable.b);
  IBVS_ENSURE(sa != routing::kNoSwitch && sb != routing::kNoSwitch,
              "removed link endpoints missing from graph");
  const auto hops = routing::switch_hop_matrix(g);

  for (const Lid lid : sm_.lids().assigned_lids()) {
    const bool uses_link = routing.lfts[sa].get(lid) == cable.port_a ||
                           routing.lfts[sb].get(lid) == cable.port_b;
    if (!uses_link) continue;
    const auto att = sm_.lids().attachment(fabric, lid);
    if (!att) continue;
    const routing::SwitchIdx t = g.dense(att->first);
    if (t == routing::kNoSwitch) continue;
    core::EntryDelta delta;
    delta.old_entry.resize(g.num_switches());
    for (routing::SwitchIdx s = 0; s < g.num_switches(); ++s) {
      delta.old_entry[s] = routing.lfts[s].get(lid);
    }
    delta.new_entry = repair_route_column(g, hops, t, att->second);
    const std::vector<routing::SwitchIdx> repair =
        core::minimal_update_set(g, delta, t, att->second);
    for (const routing::SwitchIdx s : repair) {
      planned.push_back(
          {g.switches[s], lid, delta.old_entry[s], delta.new_entry[s]});
    }
    ++txn.stats.lids_rerouted;
  }
}

void TopologyTxnManager::apply_planned(TopologyTxn& txn,
                                       const std::vector<LftDelta>& planned,
                                       const TopologyApplyOptions& opts) {
  const auto& routing = sm_.routing_result();
  const auto& g = routing.graph;
  auto& transport = sm_.transport();
  const Fabric& fabric = sm_.fabric();
  transport.begin_batch();
  std::size_t i = 0;
  while (i < planned.size()) {
    const NodeId sw = planned[i].switch_node;
    const routing::SwitchIdx s = g.dense(sw);
    IBVS_ENSURE(s != routing::kNoSwitch, "planned delta for unknown switch");
    if (!transport.hops_to(sw)) {
      txn.stats.apply_time_us += transport.end_batch();
      throw TopologyError(TopologyErrc::kRerouteFailed,
                          fabric.node(sw).name +
                              " unreachable during topology delta");
    }
    for (; i < planned.size() && planned[i].switch_node == sw; ++i) {
      // Capture the value actually in place right before the write so
      // rollback restores the exact prior bytes.
      txn.applied.push_back({sw, planned[i].lid,
                             routing.lfts[s].get(planned[i].lid),
                             planned[i].new_port});
      sm_.update_master_entry(s, planned[i].lid, planned[i].new_port);
    }
    txn.stats.lft_smps += sm_.push_dirty_blocks(s, opts.routing);
    ++txn.stats.switches_updated;
    if (txn.stats.lft_smps + txn.stats.addressing_smps >=
        opts.abort_after_smps) {
      txn.stats.apply_time_us += transport.end_batch();
      throw TopologyError(TopologyErrc::kInterrupted,
                          "topology delta batch cut short");
    }
  }
  txn.stats.apply_time_us += transport.end_batch();
}

void TopologyTxnManager::txn_reroute(TopologyTxn& txn,
                                     const TopologyApplyOptions& opts) {
  IBVS_REQUIRE(txn.state == TopologyTxnState::kMutated,
               "mutate the topology before rerouting");
  auto span = telemetry::Tracer::global().span(
      "topology.reroute", {{"op", std::string(to_string(txn.op))}});
  Fabric& fabric = sm_.fabric();
  auto& transport = sm_.transport();
  // Adopt the mutated structure without a routing run: dense indices are
  // append-stable, new switches get empty master tables, and the transport
  // forgets its cached paths.
  sm_.adopt_topology_change();

  std::vector<LftDelta> planned;
  if (txn.op == TopologyOp::kAttachSwitch) {
    if (!transport.hops_to(txn.subject)) {
      throw TopologyError(TopologyErrc::kRerouteFailed,
                          fabric.node(txn.subject).name +
                              " unreachable after attach cabling");
    }
    // Address the new switch. The LID value reaches the journal before the
    // PortInfo SMP leaves the SM.
    const Lid lid = sm_.lids().assign_next(fabric, txn.subject, 0);
    journal_.record_topology_lid(txn.id, lid);
    txn.subject_lid = lid;
    txn.lid_assigned = true;
    sm_.refresh_targets();
    transport.begin_batch();
    transport.send_port_info_set(txn.subject, 0, SmpRouting::kDirected);
    txn.stats.addressing_smps += 1;
    txn.stats.apply_time_us += transport.end_batch();
  } else if (txn.op == TopologyOp::kDetachSwitch ||
             txn.op == TopologyOp::kRemoveLink) {
    // A severed component always contains an ex-neighbor of the cut, so
    // checking the recorded cable ends proves nobody else was disconnected.
    // (Skyline tolerates legitimately-dark switches, so without this guard
    // a bridge removal would *commit* with unreachable LIDs.)
    for (const CableSpec& c : txn.cables) {
      for (const NodeId end : {c.a, c.b}) {
        if (end == txn.subject) continue;
        if (fabric.node(end).is_physical_switch() && !transport.hops_to(end)) {
          throw TopologyError(TopologyErrc::kRerouteFailed,
                              fabric.node(end).name +
                                  " severed from the SM: the removed "
                                  "cabling was a bridge");
        }
      }
    }
    if (txn.op == TopologyOp::kDetachSwitch && txn.subject_lid.valid() &&
        sm_.lids().owner(txn.subject_lid).node == txn.subject) {
      sm_.lids().release(fabric, txn.subject_lid);
      txn.lid_released = true;
      sm_.refresh_targets();
    }
  }

  try {
    switch (txn.op) {
      case TopologyOp::kAttachSwitch:
        plan_attach(txn, planned);
        txn.stats.lids_rerouted = 1 + sm_.routing_result().graph.targets.size();
        break;
      case TopologyOp::kDetachSwitch:
        plan_detach(txn, planned);
        break;
      case TopologyOp::kRemoveLink:
        plan_remove_link(txn, planned);
        break;
      case TopologyOp::kAddLink:
        // Pure capacity: connectivity needs no repair, the delta set stays
        // empty and the journal rolls an in-flight add_link back (unplug).
        break;
    }
  } catch (const TopologyError&) {
    throw;
  } catch (const std::logic_error& err) {
    // minimal_update_set could not certify delivery — e.g. the removed
    // link was a bridge. The caller rolls back.
    throw TopologyError(TopologyErrc::kRerouteFailed, err.what());
  }

  txn.stats.switches_total = sm_.routing_result().graph.num_switches();
  if (!planned.empty()) {
    // Group by switch so the apply pass prices one dirty-block push per
    // switch. Keys (switch, lid) are unique, so reordering is safe.
    const auto& graph = sm_.routing_result().graph;
    std::stable_sort(planned.begin(), planned.end(),
                     [&graph](const LftDelta& x, const LftDelta& y) {
                       return graph.dense(x.switch_node) <
                              graph.dense(y.switch_node);
                     });
    // Write-ahead: the full planned delta set reaches the journal before
    // the first LFT SMP goes out.
    journal_.record_topology_deltas(txn.id, planned);
    apply_planned(txn, planned, opts);
  }

  // Verify: diff-redistribution until a zero-send round proves every
  // reachable switch holds exactly the master tables.
  txn.stats.verify = sm_.redistribute(opts.max_rounds, opts.routing);
  if (!txn.stats.verify.converged) {
    throw TopologyError(TopologyErrc::kRerouteFailed,
                        "delta redistribution did not converge");
  }
  sm_.bump_generation();
  txn.state = TopologyTxnState::kRerouted;
  span.set_attr("lft_smps", std::to_string(txn.stats.lft_smps));
  span.set_attr("switches_updated",
                std::to_string(txn.stats.switches_updated));
}

void TopologyTxnManager::txn_commit(TopologyTxn& txn) {
  IBVS_REQUIRE(txn.state == TopologyTxnState::kRerouted,
               "reroute before committing");
  journal_.commit_topology(txn.id);
  if (auto* record = journal_.find_topology(txn.id)) {
    record->reconciled = true;
  }
  txn.state = TopologyTxnState::kCommitted;
  auto& metrics = TopologyMetrics::get();
  metrics.committed.inc();
  metrics.delta_smps.observe(static_cast<double>(
      txn.stats.lft_smps + txn.stats.addressing_smps +
      txn.stats.verify.smps));
  IBVS_INFO("topology") << to_string(txn.op) << " committed: "
                        << txn.stats.switches_updated << "/"
                        << txn.stats.switches_total << " switches, "
                        << txn.stats.lft_smps << " LFT SMPs";
}

void TopologyTxnManager::txn_rollback(TopologyTxn& txn) {
  IBVS_REQUIRE(!txn.terminal(), "transaction already terminal");
  Fabric& fabric = sm_.fabric();
  auto& transport = sm_.transport();
  const auto& routing = sm_.routing_result();
  const auto& g = routing.graph;
  const routing::SwitchIdx me =
      txn.subject != kInvalidNode ? g.dense(txn.subject) : routing::kNoSwitch;

  // Inverse deltas newest-first: undoing in reverse restores the exact
  // pre-transaction master bytes.
  if (!txn.applied.empty()) {
    std::vector<routing::SwitchIdx> touched;
    for (auto it = txn.applied.rbegin(); it != txn.applied.rend(); ++it) {
      const routing::SwitchIdx s = g.dense(it->switch_node);
      if (s == routing::kNoSwitch) continue;
      sm_.update_master_entry(s, it->lid, it->old_port);
      if (std::find(touched.begin(), touched.end(), s) == touched.end()) {
        touched.push_back(s);
      }
    }
    transport.begin_batch();
    for (const routing::SwitchIdx s : touched) {
      // The attach subject is about to be unplugged again: restore its
      // master entries but waste no SMPs programming it.
      if (s == me && txn.op == TopologyOp::kAttachSwitch) continue;
      if (!transport.hops_to(g.switches[s])) continue;
      txn.rollback_smps += sm_.push_dirty_blocks(s, SmpRouting::kDirected);
    }
    txn.rollback_time_us += transport.end_batch();
  }

  // Un-mutate the cabling (reverse chronological order: the mutation
  // happened before the apply). Tolerate cables a crash or a chaos event
  // already changed.
  if (txn.state == TopologyTxnState::kMutated ||
      txn.state == TopologyTxnState::kRerouted) {
    const bool added = txn.op == TopologyOp::kAttachSwitch ||
                       txn.op == TopologyOp::kAddLink;
    for (const CableSpec& c : txn.cables) {
      if (added) {
        const auto peer = fabric.peer(c.a, c.port_a);
        if (peer && peer->first == c.b && peer->second == c.port_b) {
          fabric.disconnect(c.a, c.port_a);
        }
      } else if (!fabric.peer(c.a, c.port_a) && !fabric.peer(c.b, c.port_b)) {
        fabric.connect(c.a, c.port_a, c.b, c.port_b);
      }
    }
    sm_.adopt_topology_change();
  }

  // Restore the subject's addressing.
  if (txn.lid_assigned && txn.subject_lid.valid() &&
      sm_.lids().owner(txn.subject_lid).node == txn.subject) {
    sm_.lids().release(fabric, txn.subject_lid);
    sm_.refresh_targets();
  }
  if (txn.lid_released && txn.subject_lid.valid() &&
      !sm_.lids().assigned(txn.subject_lid)) {
    sm_.lids().assign(fabric, txn.subject, 0, txn.subject_lid);
    sm_.refresh_targets();
    transport.begin_batch();
    transport.send_port_info_set(txn.subject, 0, SmpRouting::kDirected);
    txn.rollback_smps += 1;
    txn.rollback_time_us += transport.end_batch();
  }

  // Settle any master/installed disagreement left by aborted pushes (and
  // give a re-plugged subject its cold resync) — still PCt-free.
  const auto settle = sm_.redistribute(64, SmpRouting::kDirected);
  txn.rollback_smps += settle.smps;
  txn.rollback_time_us += settle.time_us;
  sm_.bump_generation();

  journal_.roll_back_topology(txn.id);
  if (auto* record = journal_.find_topology(txn.id)) {
    record->reconciled = true;
  }
  txn.state = TopologyTxnState::kRolledBack;
  TopologyMetrics::get().rolled_back.inc();
  IBVS_INFO("topology") << to_string(txn.op) << " rolled back: "
                        << txn.rollback_smps << " SMPs to undo";
}

void TopologyTxnManager::run(TopologyTxn& txn,
                             const TopologyApplyOptions& opts) {
  try {
    txn_mutate(txn);
    txn_reroute(txn, opts);
    txn_commit(txn);
  } catch (...) {
    if (!txn.terminal()) {
      try {
        txn_rollback(txn);
      } catch (...) {
        // Rollback failures leave the journal record in flight; the next
        // recover() resolves it. The original error still propagates.
      }
    }
    throw;
  }
}

TopologyTxn TopologyTxnManager::attach_switch(NodeId sw,
                                              std::vector<CableSpec> cables,
                                              const TopologyApplyOptions& opts) {
  TopologyTxn txn = begin_attach_switch(sw, std::move(cables));
  run(txn, opts);
  return txn;
}

TopologyTxn TopologyTxnManager::detach_switch(NodeId sw,
                                              bool allow_orphan_endpoints,
                                              const TopologyApplyOptions& opts) {
  TopologyTxn txn = begin_detach_switch(sw, allow_orphan_endpoints);
  run(txn, opts);
  return txn;
}

TopologyTxn TopologyTxnManager::add_link(CableSpec cable,
                                         const TopologyApplyOptions& opts) {
  TopologyTxn txn = begin_add_link(cable);
  run(txn, opts);
  return txn;
}

TopologyTxn TopologyTxnManager::remove_link(NodeId node, PortNum port,
                                            const TopologyApplyOptions& opts) {
  TopologyTxn txn = begin_remove_link(node, port);
  run(txn, opts);
  return txn;
}

}  // namespace ibvs::sm
