// Transactional live topology reconfiguration.
//
// The paper's vSwitch architecture reconfigures a *fixed* fabric; production
// fabrics add and drain switches and links while tenants keep running. This
// manager makes those structural changes first-class reconfiguration
// transactions in the MigrationTxn state-machine style:
//
//   begin_*      — validate the delta and open a write-ahead journal record
//                  (subject, exact cable endpoints, the LID at stake),
//   txn_mutate   — change the cabling (mark journaled before the first
//                  plug/unplug),
//   txn_reroute  — adopt the new structure without a routing run
//                  (append-stable dense indices, empty master tables for new
//                  switches), plan the minimal per-LID repair via BFS columns
//                  + skyline minimal_update_set, journal the full delta set,
//                  then apply switch by switch through push_dirty_blocks and
//                  verify with a redistribute loop until a zero-send round,
//   txn_commit   — mark the journal record terminal, or
//   txn_rollback — replay inverse deltas newest-first, un-plug / re-plug the
//                  exact recorded cables and restore the subject's LID for a
//                  byte-identical return to the pre-transaction fabric.
//
// A master SM dying mid-transaction leaves the record in flight; the journal
// rolls it forward or back on the next recover() — including from a standby
// promoted by SmElection — so the fabric is never left half-mutated. No
// phase recomputes routes: topology deltas keep the PCt-free property the
// paper proves for VM migrations (§VI).
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "sm/reconfig_journal.hpp"

namespace ibvs::sm {

enum class TopologyErrc {
  kNotASwitch,     ///< subject is not a physical switch
  kAlreadyCabled,  ///< attach target still has cables plugged
  kNotCabled,      ///< detach/remove target has no cable to remove
  kBadCable,       ///< endpoint not a switch, port taken or out of range
  kNotDrained,     ///< detach target still hosts endpoint LIDs
  kWouldSeverSm,   ///< delta would cut the SM off its own subnet
  kRerouteFailed,  ///< no connectivity-sufficient repair exists
  kInterrupted,    ///< reconfiguration batch cut short (fault injection)
};

[[nodiscard]] const char* to_string(TopologyErrc code);

/// Typed failure for topology transactions, mirroring core::MigrationError.
class TopologyError : public std::runtime_error {
 public:
  TopologyError(TopologyErrc code, const std::string& what)
      : std::runtime_error(what), code_(code) {}

  [[nodiscard]] TopologyErrc code() const noexcept { return code_; }

 private:
  TopologyErrc code_;
};

enum class TopologyTxnState : std::uint8_t {
  kPrepared,    ///< validated, journal record open, nothing changed yet
  kMutated,     ///< cabling changed; re-route pending
  kRerouted,    ///< minimal repair applied and verified converged
  kCommitted,   ///< terminal: delta is part of the fabric
  kRolledBack,  ///< terminal: fabric byte-identical to before begin_*
};

[[nodiscard]] const char* to_string(TopologyTxnState state);

struct TopologyTxnStats {
  std::uint64_t lft_smps = 0;         ///< LFT block writes in the apply pass
  std::uint64_t addressing_smps = 0;  ///< PortInfo SMPs (subject LID)
  double apply_time_us = 0.0;         ///< batch makespan of the apply pass
  std::size_t switches_updated = 0;   ///< switches whose tables changed
  std::size_t switches_total = 0;     ///< switches in the routing graph
  std::size_t lids_rerouted = 0;      ///< LIDs with at least one delta
  /// The verification tail: diff-redistribution until a zero-send round.
  SubnetManager::ReconvergeReport verify;
};

/// One in-flight topology delta. Like MigrationTxn a plain value the caller
/// owns; `applied` records every master entry actually rewritten (with the
/// value in place immediately before the write) so rollback can restore the
/// exact prior bytes by replaying inverses newest-first.
struct TopologyTxn {
  std::uint64_t id = 0;  ///< journal record id
  TopologyOp op = TopologyOp::kAddLink;
  NodeId subject = kInvalidNode;
  Lid subject_lid;
  std::vector<CableSpec> cables;
  bool allow_orphan_endpoints = false;
  TopologyTxnState state = TopologyTxnState::kPrepared;
  bool lid_assigned = false;  ///< attach assigned subject_lid in reroute
  bool lid_released = false;  ///< detach released subject_lid in reroute
  std::vector<LftDelta> applied;
  TopologyTxnStats stats;
  std::uint64_t rollback_smps = 0;
  double rollback_time_us = 0.0;

  [[nodiscard]] bool terminal() const noexcept {
    return state == TopologyTxnState::kCommitted ||
           state == TopologyTxnState::kRolledBack;
  }
};

struct TopologyApplyOptions {
  /// Abort (throw kInterrupted) once this many SMPs went out — the chaos
  /// harness uses it to simulate a master death mid-delta.
  std::uint64_t abort_after_smps = std::numeric_limits<std::uint64_t>::max();
  std::size_t max_rounds = 64;  ///< verification redistribute bound
  SmpRouting routing = SmpRouting::kDirected;
};

/// BFS-column helpers shared by the transaction planner and the journal's
/// post-rollback route repair. `hops` is routing::switch_hop_matrix output.
/// repair_port_toward returns the first adjacency-order egress port of `s`
/// on a shortest path toward `t` (kDropPort when unreachable or s == t);
/// repair_route_column builds the full per-switch forwarding column for a
/// LID delivered at (t, delivery_port).
[[nodiscard]] PortNum repair_port_toward(const routing::SwitchGraph& g,
                                         const std::vector<std::uint8_t>& hops,
                                         routing::SwitchIdx s,
                                         routing::SwitchIdx t);
[[nodiscard]] std::vector<PortNum> repair_route_column(
    const routing::SwitchGraph& g, const std::vector<std::uint8_t>& hops,
    routing::SwitchIdx t, PortNum delivery_port);

class TopologyTxnManager {
 public:
  TopologyTxnManager(SubnetManager& sm, ReconfigJournal& journal)
      : sm_(sm), journal_(journal) {}

  /// Validates and journals an attach: `sw` must be a fresh (cable-free)
  /// physical switch, every cable `{sw, port, peer switch, peer port}` with
  /// both ports currently free.
  TopologyTxn begin_attach_switch(NodeId sw, std::vector<CableSpec> cables);

  /// Validates and journals a detach. Refuses (kNotDrained) while endpoint
  /// LIDs still attach through `sw` unless `allow_orphan_endpoints` — the
  /// cloud layer drains resident VMs first (see cloud::drain_and_detach).
  TopologyTxn begin_detach_switch(NodeId sw,
                                  bool allow_orphan_endpoints = false);

  TopologyTxn begin_add_link(CableSpec cable);
  TopologyTxn begin_remove_link(NodeId node, PortNum port);

  /// Applies the cabling change recorded at begin time.
  void txn_mutate(TopologyTxn& txn);

  /// Adopts the mutated structure, plans and applies the minimal re-route,
  /// verifies convergence. Throws kInterrupted on the abort hook and
  /// kRerouteFailed when no connectivity-sufficient repair exists (e.g. the
  /// removed link was a bridge) — the caller rolls back.
  void txn_reroute(TopologyTxn& txn, const TopologyApplyOptions& opts = {});

  void txn_commit(TopologyTxn& txn);
  void txn_rollback(TopologyTxn& txn);

  /// One-shot conveniences: begin → mutate → reroute → commit, rolling back
  /// and rethrowing on any failure.
  TopologyTxn attach_switch(NodeId sw, std::vector<CableSpec> cables,
                            const TopologyApplyOptions& opts = {});
  TopologyTxn detach_switch(NodeId sw, bool allow_orphan_endpoints = false,
                            const TopologyApplyOptions& opts = {});
  TopologyTxn add_link(CableSpec cable, const TopologyApplyOptions& opts = {});
  TopologyTxn remove_link(NodeId node, PortNum port,
                          const TopologyApplyOptions& opts = {});

 private:
  TopologyTxn open(TopologyRecord record);
  void run(TopologyTxn& txn, const TopologyApplyOptions& opts);
  void plan_attach(TopologyTxn& txn, std::vector<LftDelta>& planned) const;
  void plan_detach(TopologyTxn& txn, std::vector<LftDelta>& planned) const;
  void plan_remove_link(TopologyTxn& txn,
                        std::vector<LftDelta>& planned) const;
  void apply_planned(TopologyTxn& txn, const std::vector<LftDelta>& planned,
                     const TopologyApplyOptions& opts);

  SubnetManager& sm_;
  ReconfigJournal& journal_;
};

}  // namespace ibvs::sm
