#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/expect.hpp"

namespace ibvs::telemetry {

namespace {

Labels canonical(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

/// Doubles rendered the shortest way that round-trips (%.17g is exact but
/// ugly; %g at 15 digits matches for every value the registry produces).
std::string format_double(double v) {
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
      std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64,
                  static_cast<std::int64_t>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.15g", v);
  return buf;
}

std::string prometheus_labels(const Labels& labels) {
  if (labels.empty()) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += key;
    out += "=\"";
    out += json_escape(value);  // same escapes Prometheus wants
    out += "\"";
  }
  out += "}";
  return out;
}

std::string json_labels(const Labels& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(key) + "\":\"" + json_escape(value) + "\"";
  }
  out += "}";
  return out;
}

}  // namespace

std::string json_escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// --- Histogram ---

Histogram::Histogram(HistogramOptions options) {
  IBVS_REQUIRE(options.min_bound > 0.0, "min_bound must be positive");
  IBVS_REQUIRE(options.num_buckets >= 1, "need at least one bucket");
  bounds_.resize(options.num_buckets);
  double bound = options.min_bound;
  for (auto& b : bounds_) {
    b = bound;
    bound *= 2.0;
  }
  buckets_ = std::vector<std::atomic<std::uint64_t>>(bounds_.size() + 1);
}

void Histogram::observe(double value) noexcept {
  if (!detail::g_metrics_enabled.load(std::memory_order_relaxed)) return;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + value,
                                     std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::cumulative(std::size_t i) const {
  IBVS_REQUIRE(i <= bounds_.size(), "bucket index out of range");
  std::uint64_t total = 0;
  for (std::size_t b = 0; b <= i; ++b) {
    total += buckets_[b].load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::quantile(double q) const noexcept {
  const std::uint64_t total = count_.load(std::memory_order_relaxed);
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total);
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    const std::uint64_t in_bucket =
        buckets_[b].load(std::memory_order_relaxed);
    cum += in_bucket;
    if (in_bucket == 0 || static_cast<double>(cum) < rank) continue;
    if (b == bounds_.size()) return bounds_.back();  // overflow clamps
    const double lower = b == 0 ? 0.0 : bounds_[b - 1];
    const double frac =
        (rank - static_cast<double>(cum - in_bucket)) /
        static_cast<double>(in_bucket);
    return lower + (bounds_[b] - lower) * frac;
  }
  return bounds_.back();
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

// --- Registry ---

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

Registry::Family& Registry::family(std::string_view name, Kind kind,
                                   std::string_view help) {
  auto it = families_.find(name);
  if (it == families_.end()) {
    it = families_.emplace(std::string(name), Family{}).first;
    it->second.kind = kind;
    it->second.help = std::string(help);
  }
  IBVS_REQUIRE(it->second.kind == kind,
               "metric family registered with a different kind");
  return it->second;
}

Counter& Registry::counter(std::string_view name, Labels labels,
                           std::string_view help) {
  std::lock_guard<std::mutex> lock(mutex_);
  Family& fam = family(name, Kind::kCounter, help);
  auto& slot = fam.counters[canonical(std::move(labels))];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(std::string_view name, Labels labels,
                       std::string_view help) {
  std::lock_guard<std::mutex> lock(mutex_);
  Family& fam = family(name, Kind::kGauge, help);
  auto& slot = fam.gauges[canonical(std::move(labels))];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(std::string_view name, Labels labels,
                               HistogramOptions options,
                               std::string_view help) {
  std::lock_guard<std::mutex> lock(mutex_);
  Family& fam = family(name, Kind::kHistogram, help);
  if (fam.histograms.empty()) fam.histogram_options = options;
  auto& slot = fam.histograms[canonical(std::move(labels))];
  if (!slot) slot = std::make_unique<Histogram>(fam.histogram_options);
  return *slot;
}

void Registry::add_fold_hook(std::function<void()> hook) {
  std::lock_guard<std::mutex> lock(fold_mutex_);
  fold_hooks_.push_back(std::move(hook));
}

void Registry::run_fold_hooks() const {
  std::lock_guard<std::mutex> lock(fold_mutex_);
  for (const auto& hook : fold_hooks_) hook();
}

std::optional<std::uint64_t> Registry::counter_value(
    std::string_view name, const Labels& labels) const {
  run_fold_hooks();
  std::lock_guard<std::mutex> lock(mutex_);
  const auto fam = families_.find(name);
  if (fam == families_.end() || fam->second.kind != Kind::kCounter) {
    return std::nullopt;
  }
  const auto child = fam->second.counters.find(canonical(labels));
  if (child == fam->second.counters.end()) return std::nullopt;
  return child->second->value();
}

std::optional<double> Registry::gauge_value(std::string_view name,
                                            const Labels& labels) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto fam = families_.find(name);
  if (fam == families_.end() || fam->second.kind != Kind::kGauge) {
    return std::nullopt;
  }
  const auto child = fam->second.gauges.find(canonical(labels));
  if (child == fam->second.gauges.end()) return std::nullopt;
  return child->second->value();
}

std::uint64_t Registry::counter_family_total(std::string_view name) const {
  run_fold_hooks();
  std::lock_guard<std::mutex> lock(mutex_);
  const auto fam = families_.find(name);
  if (fam == families_.end() || fam->second.kind != Kind::kCounter) return 0;
  std::uint64_t total = 0;
  for (const auto& [labels, counter] : fam->second.counters) {
    total += counter->value();
  }
  return total;
}

std::vector<MetricSample> Registry::samples() const {
  run_fold_hooks();
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<MetricSample> out;
  for (const auto& [name, fam] : families_) {
    for (const auto& [labels, counter] : fam.counters) {
      out.push_back({name, labels,
                     static_cast<double>(counter->value()), nullptr});
    }
    for (const auto& [labels, gauge] : fam.gauges) {
      out.push_back({name, labels, gauge->value(), nullptr});
    }
    for (const auto& [labels, histogram] : fam.histograms) {
      out.push_back({name, labels, 0.0, histogram.get()});
    }
  }
  return out;
}

std::string Registry::prometheus_text() const {
  run_fold_hooks();
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  for (const auto& [name, fam] : families_) {
    if (!fam.help.empty()) os << "# HELP " << name << " " << fam.help << "\n";
    switch (fam.kind) {
      case Kind::kCounter:
        os << "# TYPE " << name << " counter\n";
        for (const auto& [labels, counter] : fam.counters) {
          os << name << prometheus_labels(labels) << " " << counter->value()
             << "\n";
        }
        break;
      case Kind::kGauge:
        os << "# TYPE " << name << " gauge\n";
        for (const auto& [labels, gauge] : fam.gauges) {
          os << name << prometheus_labels(labels) << " "
             << format_double(gauge->value()) << "\n";
        }
        break;
      case Kind::kHistogram:
        os << "# TYPE " << name << " histogram\n";
        for (const auto& [labels, histogram] : fam.histograms) {
          const auto& bounds = histogram->bounds();
          for (std::size_t b = 0; b < bounds.size(); ++b) {
            Labels with_le = labels;
            with_le.emplace_back("le", format_double(bounds[b]));
            os << name << "_bucket" << prometheus_labels(with_le) << " "
               << histogram->cumulative(b) << "\n";
          }
          Labels with_inf = labels;
          with_inf.emplace_back("le", "+Inf");
          os << name << "_bucket" << prometheus_labels(with_inf) << " "
             << histogram->count() << "\n";
          os << name << "_sum" << prometheus_labels(labels) << " "
             << format_double(histogram->sum()) << "\n";
          os << name << "_count" << prometheus_labels(labels) << " "
             << histogram->count() << "\n";
          // Estimated quantiles (what histogram_quantile() would compute
          // server-side), exported so a scrape is directly readable.
          for (const double q : {0.5, 0.95, 0.99}) {
            Labels with_q = labels;
            with_q.emplace_back("quantile", format_double(q));
            os << name << prometheus_labels(with_q) << " "
               << format_double(histogram->quantile(q)) << "\n";
          }
        }
        break;
    }
  }
  return os.str();
}

std::string Registry::json_snapshot() const {
  run_fold_hooks();
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream counters;
  std::ostringstream gauges;
  std::ostringstream histograms;
  bool first_c = true;
  bool first_g = true;
  bool first_h = true;
  for (const auto& [name, fam] : families_) {
    for (const auto& [labels, counter] : fam.counters) {
      if (!first_c) counters << ",";
      first_c = false;
      counters << "\n    {\"name\":\"" << json_escape(name)
               << "\",\"labels\":" << json_labels(labels)
               << ",\"value\":" << counter->value() << "}";
    }
    for (const auto& [labels, gauge] : fam.gauges) {
      if (!first_g) gauges << ",";
      first_g = false;
      gauges << "\n    {\"name\":\"" << json_escape(name)
             << "\",\"labels\":" << json_labels(labels)
             << ",\"value\":" << format_double(gauge->value()) << "}";
    }
    for (const auto& [labels, histogram] : fam.histograms) {
      if (!first_h) histograms << ",";
      first_h = false;
      histograms << "\n    {\"name\":\"" << json_escape(name)
                 << "\",\"labels\":" << json_labels(labels)
                 << ",\"count\":" << histogram->count()
                 << ",\"sum\":" << format_double(histogram->sum())
                 << ",\"quantiles\":{\"p50\":"
                 << format_double(histogram->quantile(0.5)) << ",\"p95\":"
                 << format_double(histogram->quantile(0.95)) << ",\"p99\":"
                 << format_double(histogram->quantile(0.99))
                 << "},\"buckets\":[";
      const auto& bounds = histogram->bounds();
      std::uint64_t prev_cumulative = 0;
      bool first_b = true;
      for (std::size_t b = 0; b <= bounds.size(); ++b) {
        // Sparse export: only buckets with observations.
        const std::uint64_t cumulative =
            b < bounds.size() ? histogram->cumulative(b) : histogram->count();
        const std::uint64_t in_bucket = cumulative - prev_cumulative;
        prev_cumulative = cumulative;
        if (in_bucket == 0) continue;
        if (!first_b) histograms << ",";
        first_b = false;
        histograms << "{\"le\":"
                   << (b < bounds.size()
                           ? format_double(bounds[b])
                           : std::string("\"+Inf\""))
                   << ",\"count\":" << in_bucket << "}";
      }
      histograms << "]}";
    }
  }
  std::ostringstream os;
  os << "{\n  \"counters\": [" << counters.str() << "\n  ],\n"
     << "  \"gauges\": [" << gauges.str() << "\n  ],\n"
     << "  \"histograms\": [" << histograms.str() << "\n  ]\n}\n";
  return os.str();
}

void Registry::reset_values() {
  // Drain sharded cells first so they zero along with their base counters
  // (a cell left pending would resurface in the next fold).
  run_fold_hooks();
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, fam] : families_) {
    for (auto& [labels, counter] : fam.counters) counter->reset();
    for (auto& [labels, gauge] : fam.gauges) gauge->reset();
    for (auto& [labels, histogram] : fam.histograms) histogram->reset();
  }
}

}  // namespace ibvs::telemetry
