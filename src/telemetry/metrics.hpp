// Fabric-wide metrics registry.
//
// The paper's evaluation is built on counting and timing management traffic
// (SMPs per reconfiguration, PCt/LFTDt decomposition); this registry makes
// those numbers first-class so every layer reports into one place instead of
// ad-hoc per-call report structs. Three metric kinds:
//
//   Counter   — monotone u64, relaxed atomic increments on hot paths
//   Gauge     — last-written double (set/add), also atomic
//   Histogram — fixed log-scale buckets (powers of two from `min_bound`),
//               atomic per-bucket counts plus sum/count
//
// Metrics live in *families* keyed by name; a family fans out into children
// keyed by a small ordered label set ({attribute="PortInfo", routing="DR"}).
// Lookup (counter()/gauge()/histogram()) takes a mutex and is meant for
// setup; hot paths cache the returned reference — children are never
// deleted, so references stay valid for the registry's lifetime.
//
// The whole registry can be switched off (Registry::set_enabled(false)):
// increments reduce to one relaxed atomic load and a predictable branch, so
// benches that must not observe the observer stay unperturbed.
//
// Export: Prometheus text exposition (prometheus_text) and a JSON snapshot
// (json_snapshot) consumed by the benches' --metrics-out flag.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ibvs::telemetry {

/// Ordered key=value labels identifying one child within a family. Kept
/// sorted by key so {a=1,b=2} and {b=2,a=1} address the same child.
using Labels = std::vector<std::pair<std::string, std::string>>;

namespace detail {
/// Process-wide on/off switch shared by all metric instances.
inline std::atomic<bool> g_metrics_enabled{true};
}  // namespace detail

class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    if (!detail::g_metrics_enabled.load(std::memory_order_relaxed)) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) noexcept {
    if (!detail::g_metrics_enabled.load(std::memory_order_relaxed)) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void add(double delta) noexcept {
    if (!detail::g_metrics_enabled.load(std::memory_order_relaxed)) return;
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

struct HistogramOptions {
  /// Upper bound of the first bucket; each next bound doubles.
  double min_bound = 1e-6;
  /// Number of finite buckets (a +Inf overflow bucket is implicit).
  std::size_t num_buckets = 40;
};

/// Fixed log-scale histogram: bucket b covers (min_bound*2^(b-1),
/// min_bound*2^b]; values beyond the last bound land in the overflow bucket.
class Histogram {
 public:
  explicit Histogram(HistogramOptions options = {});

  void observe(double value) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  /// Finite bucket upper bounds (overflow excluded).
  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  /// Cumulative count of observations <= bounds()[i]; index bounds().size()
  /// is the total (the +Inf bucket).
  [[nodiscard]] std::uint64_t cumulative(std::size_t i) const;
  /// Estimated q-quantile (q in [0,1]) from the bucket counts, with linear
  /// interpolation inside the bucket (the Prometheus histogram_quantile
  /// estimate). Observations in the overflow bucket clamp to the last
  /// finite bound; an empty histogram reports 0.
  [[nodiscard]] double quantile(double q) const noexcept;
  void reset() noexcept;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  ///< bounds + overflow
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// One exported metric in a snapshot (flattened family child).
struct MetricSample {
  std::string name;
  Labels labels;
  double value = 0.0;                  ///< counter/gauge
  const Histogram* histogram = nullptr;  ///< set for histograms only
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry the library layers report into.
  static Registry& global();

  /// Turns every Counter/Gauge/Histogram write in the process into a no-op.
  static void set_enabled(bool enabled) noexcept {
    detail::g_metrics_enabled.store(enabled, std::memory_order_relaxed);
  }
  [[nodiscard]] static bool enabled() noexcept {
    return detail::g_metrics_enabled.load(std::memory_order_relaxed);
  }

  /// Finds or creates the child; the reference stays valid for the
  /// registry's lifetime. `help` is recorded on first use of the name.
  Counter& counter(std::string_view name, Labels labels = {},
                   std::string_view help = {});
  Gauge& gauge(std::string_view name, Labels labels = {},
               std::string_view help = {});
  Histogram& histogram(std::string_view name, Labels labels = {},
                       HistogramOptions options = {},
                       std::string_view help = {});

  /// Point-in-time value of one child, if it exists.
  [[nodiscard]] std::optional<std::uint64_t> counter_value(
      std::string_view name, const Labels& labels = {}) const;
  [[nodiscard]] std::optional<double> gauge_value(
      std::string_view name, const Labels& labels = {}) const;

  /// Sum of every child of a counter family (all label combinations).
  [[nodiscard]] std::uint64_t counter_family_total(
      std::string_view name) const;

  /// All current samples, family by family, children in label order.
  [[nodiscard]] std::vector<MetricSample> samples() const;

  /// Prometheus text exposition format.
  [[nodiscard]] std::string prometheus_text() const;

  /// JSON snapshot: {"counters": [...], "gauges": [...],
  /// "histograms": [...]} — the payload of the benches' --metrics-out.
  [[nodiscard]] std::string json_snapshot() const;

  /// Zeroes every value, keeping families and children (and therefore all
  /// cached references) alive. For tests and benches that diff runs.
  void reset_values();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Family {
    Kind kind = Kind::kCounter;
    std::string help;
    HistogramOptions histogram_options;
    // Children keyed by the canonical (sorted) label set. Values are stable
    // heap objects: hot paths hold references across rehashes.
    std::map<Labels, std::unique_ptr<Counter>> counters;
    std::map<Labels, std::unique_ptr<Gauge>> gauges;
    std::map<Labels, std::unique_ptr<Histogram>> histograms;
  };

  Family& family(std::string_view name, Kind kind, std::string_view help);

  mutable std::mutex mutex_;
  std::map<std::string, Family, std::less<>> families_;
};

/// Escapes `\`, `"` and control characters for JSON string literals (shared
/// with the span tracer's JSON-lines export).
std::string json_escape(std::string_view raw);

}  // namespace ibvs::telemetry
