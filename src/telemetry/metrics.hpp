// Fabric-wide metrics registry.
//
// The paper's evaluation is built on counting and timing management traffic
// (SMPs per reconfiguration, PCt/LFTDt decomposition); this registry makes
// those numbers first-class so every layer reports into one place instead of
// ad-hoc per-call report structs. Three metric kinds:
//
//   Counter   — monotone u64, relaxed atomic increments on hot paths
//   Gauge     — last-written double (set/add), also atomic
//   Histogram — fixed log-scale buckets (powers of two from `min_bound`),
//               atomic per-bucket counts plus sum/count
//
// Metrics live in *families* keyed by name; a family fans out into children
// keyed by a small ordered label set ({attribute="PortInfo", routing="DR"}).
// Lookup (counter()/gauge()/histogram()) takes a mutex and is meant for
// setup; hot paths cache the returned reference — children are never
// deleted, so references stay valid for the registry's lifetime.
//
// The whole registry can be switched off (Registry::set_enabled(false)):
// increments reduce to one relaxed atomic load and a predictable branch, so
// benches that must not observe the observer stay unperturbed.
//
// Hot-path contention: a Counter is one cache line that every incrementing
// thread bounces. Subsystems whose counters tick inside SMP-level loops
// (transport accounting, the credit simulator) wrap them in ShardedCounter:
// per-thread cache-line-padded cells absorb the increments and a fold hook
// drains them into the underlying Counter before any registry read, so
// exported values stay exact while the SMP path never shares a line.
//
// Export: Prometheus text exposition (prometheus_text) and a JSON snapshot
// (json_snapshot) consumed by the benches' --metrics-out flag.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ibvs::telemetry {

/// Ordered key=value labels identifying one child within a family. Kept
/// sorted by key so {a=1,b=2} and {b=2,a=1} address the same child.
using Labels = std::vector<std::pair<std::string, std::string>>;

namespace detail {
/// Process-wide on/off switch shared by all metric instances.
inline std::atomic<bool> g_metrics_enabled{true};
}  // namespace detail

class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    if (!detail::g_metrics_enabled.load(std::memory_order_relaxed)) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  /// Unconditional add, bypassing the enabled gate — the fold path of
  /// ShardedCounter, whose cells were already gated at increment time.
  void merge(std::uint64_t n) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

namespace detail {
/// Small dense thread index for sharded-cell selection. Thread ids are
/// handed out once per thread, so two threads only share a cell when more
/// than kShardCells threads ever existed (and even then increments stay
/// exact — sharding is a contention optimisation, not a correctness one).
inline std::atomic<std::size_t> g_shard_slot_next{0};
inline std::size_t shard_slot() noexcept {
  thread_local const std::size_t slot =
      g_shard_slot_next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}
}  // namespace detail

/// Contention-free view over a Counter: increments land in a per-thread
/// cache-line-padded cell; fold() drains the cells into the base Counter.
/// The owner must arrange for fold() to run before the base value is read —
/// Registry::add_fold_hook() does exactly that for every registry export.
class ShardedCounter {
 public:
  static constexpr std::size_t kCells = 16;

  ShardedCounter() = default;
  explicit ShardedCounter(Counter& base) : base_(&base) {}

  void bind(Counter& base) noexcept { base_ = &base; }

  void inc(std::uint64_t n = 1) noexcept {
    if (!detail::g_metrics_enabled.load(std::memory_order_relaxed)) return;
    cells_[detail::shard_slot() % kCells].value.fetch_add(
        n, std::memory_order_relaxed);
  }

  /// Moves every pending cell value into the base Counter. Safe to run
  /// concurrently with inc() (increments between the exchange and the merge
  /// simply wait for the next fold).
  void fold() noexcept {
    if (base_ == nullptr) return;
    for (Cell& cell : cells_) {
      const std::uint64_t pending =
          cell.value.exchange(0, std::memory_order_relaxed);
      if (pending != 0) base_->merge(pending);
    }
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> value{0};
  };

  std::array<Cell, kCells> cells_{};
  Counter* base_ = nullptr;
};

class Gauge {
 public:
  void set(double v) noexcept {
    if (!detail::g_metrics_enabled.load(std::memory_order_relaxed)) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void add(double delta) noexcept {
    if (!detail::g_metrics_enabled.load(std::memory_order_relaxed)) return;
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

struct HistogramOptions {
  /// Upper bound of the first bucket; each next bound doubles.
  double min_bound = 1e-6;
  /// Number of finite buckets (a +Inf overflow bucket is implicit).
  std::size_t num_buckets = 40;
};

/// Fixed log-scale histogram: bucket b covers (min_bound*2^(b-1),
/// min_bound*2^b]; values beyond the last bound land in the overflow bucket.
class Histogram {
 public:
  explicit Histogram(HistogramOptions options = {});

  void observe(double value) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  /// Finite bucket upper bounds (overflow excluded).
  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  /// Cumulative count of observations <= bounds()[i]; index bounds().size()
  /// is the total (the +Inf bucket).
  [[nodiscard]] std::uint64_t cumulative(std::size_t i) const;
  /// Estimated q-quantile (q in [0,1]) from the bucket counts, with linear
  /// interpolation inside the bucket (the Prometheus histogram_quantile
  /// estimate). Observations in the overflow bucket clamp to the last
  /// finite bound; an empty histogram reports 0.
  [[nodiscard]] double quantile(double q) const noexcept;
  void reset() noexcept;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  ///< bounds + overflow
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// One exported metric in a snapshot (flattened family child).
struct MetricSample {
  std::string name;
  Labels labels;
  double value = 0.0;                  ///< counter/gauge
  const Histogram* histogram = nullptr;  ///< set for histograms only
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry the library layers report into.
  static Registry& global();

  /// Turns every Counter/Gauge/Histogram write in the process into a no-op.
  static void set_enabled(bool enabled) noexcept {
    detail::g_metrics_enabled.store(enabled, std::memory_order_relaxed);
  }
  [[nodiscard]] static bool enabled() noexcept {
    return detail::g_metrics_enabled.load(std::memory_order_relaxed);
  }

  /// Finds or creates the child; the reference stays valid for the
  /// registry's lifetime. `help` is recorded on first use of the name.
  Counter& counter(std::string_view name, Labels labels = {},
                   std::string_view help = {});
  Gauge& gauge(std::string_view name, Labels labels = {},
               std::string_view help = {});
  Histogram& histogram(std::string_view name, Labels labels = {},
                       HistogramOptions options = {},
                       std::string_view help = {});

  /// Point-in-time value of one child, if it exists.
  [[nodiscard]] std::optional<std::uint64_t> counter_value(
      std::string_view name, const Labels& labels = {}) const;
  [[nodiscard]] std::optional<double> gauge_value(
      std::string_view name, const Labels& labels = {}) const;

  /// Sum of every child of a counter family (all label combinations).
  [[nodiscard]] std::uint64_t counter_family_total(
      std::string_view name) const;

  /// All current samples, family by family, children in label order.
  [[nodiscard]] std::vector<MetricSample> samples() const;

  /// Prometheus text exposition format.
  [[nodiscard]] std::string prometheus_text() const;

  /// JSON snapshot: {"counters": [...], "gauges": [...],
  /// "histograms": [...]} — the payload of the benches' --metrics-out.
  [[nodiscard]] std::string json_snapshot() const;

  /// Zeroes every value, keeping families and children (and therefore all
  /// cached references) alive. For tests and benches that diff runs.
  /// Sharded cells are folded first, so they reset along with their bases.
  void reset_values();

  /// Registers a hook run before every registry read (samples, exports,
  /// counter_value, family totals) and before reset_values. Subsystems with
  /// ShardedCounters register one hook that folds them, making the sharding
  /// invisible to every consumer. Hooks live for the registry's lifetime.
  void add_fold_hook(std::function<void()> hook);

 private:
  /// Runs the registered fold hooks (outside mutex_: hooks touch counters,
  /// never the registry maps).
  void run_fold_hooks() const;

  enum class Kind { kCounter, kGauge, kHistogram };

  struct Family {
    Kind kind = Kind::kCounter;
    std::string help;
    HistogramOptions histogram_options;
    // Children keyed by the canonical (sorted) label set. Values are stable
    // heap objects: hot paths hold references across rehashes.
    std::map<Labels, std::unique_ptr<Counter>> counters;
    std::map<Labels, std::unique_ptr<Gauge>> gauges;
    std::map<Labels, std::unique_ptr<Histogram>> histograms;
  };

  Family& family(std::string_view name, Kind kind, std::string_view help);

  mutable std::mutex mutex_;
  std::map<std::string, Family, std::less<>> families_;
  mutable std::mutex fold_mutex_;
  std::vector<std::function<void()>> fold_hooks_;
};

/// Escapes `\`, `"` and control characters for JSON string literals (shared
/// with the span tracer's JSON-lines export).
std::string json_escape(std::string_view raw);

}  // namespace ibvs::telemetry
