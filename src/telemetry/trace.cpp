#include "telemetry/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>

namespace ibvs::telemetry {

namespace {

std::uint64_t monotonic_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t thread_ordinal() noexcept {
  static std::atomic<std::uint64_t> next{1};
  thread_local const std::uint64_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

/// Per-thread stack of open spans, shared across tracers (a span's parent is
/// the innermost open span of the *same* tracer).
struct OpenSpan {
  const Tracer* tracer;
  std::uint64_t id;
};
thread_local std::vector<OpenSpan> t_open_spans;

std::string format_us(double us) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", us);
  return buf;
}

}  // namespace

std::string SpanRecord::to_json() const {
  std::string out = "{\"name\":\"" + json_escape(name) + "\"";
  out += ",\"id\":" + std::to_string(id);
  if (parent != 0) out += ",\"parent\":" + std::to_string(parent);
  out += ",\"thread\":" + std::to_string(thread);
  out += ",\"start_us\":" + format_us(start_us);
  out += ",\"duration_us\":" + format_us(duration_us);
  if (!attrs.empty()) {
    out += ",\"attrs\":{";
    bool first = true;
    for (const auto& [key, value] : attrs) {
      if (!first) out += ",";
      first = false;
      out += "\"" + json_escape(key) + "\":\"" + json_escape(value) + "\"";
    }
    out += "}";
  }
  out += "}";
  return out;
}

// --- Span ---

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    end();
    tracer_ = other.tracer_;
    record_ = std::move(other.record_);
    start_ns_ = other.start_ns_;
    other.tracer_ = nullptr;
  }
  return *this;
}

void Span::set_attr(std::string_view key, std::string_view value) {
  if (!tracer_) return;
  for (auto& [k, v] : record_.attrs) {
    if (k == key) {
      v = std::string(value);
      return;
    }
  }
  record_.attrs.emplace_back(std::string(key), std::string(value));
}

void Span::end() {
  if (!tracer_) return;
  record_.duration_us =
      static_cast<double>(monotonic_ns() - start_ns_) * 1e-3;
  // Unwind this span from the per-thread stack. It is normally the top, but
  // out-of-order closes (moved spans) just remove the matching entry.
  auto& open = t_open_spans;
  for (auto it = open.rbegin(); it != open.rend(); ++it) {
    if (it->tracer == tracer_ && it->id == record_.id) {
      open.erase(std::next(it).base());
      break;
    }
  }
  Tracer* tracer = tracer_;
  tracer_ = nullptr;
  tracer->record(std::move(record_));
}

// --- Tracer ---

Tracer::Tracer() : epoch_ns_(monotonic_ns()) {}

Tracer& Tracer::global() {
  // Leaked on purpose: the atexit flush below must be able to run during
  // static destruction of other translation units without racing this
  // object's own teardown.
  static Tracer* instance = [] {
    auto* tracer = new Tracer;
    std::atexit([] {
      const char* path = std::getenv("IBVS_TRACE_OUT");
      if (path != nullptr && path[0] != '\0') {
        Tracer::global().flush_to_file(path);
      }
    });
    return tracer;
  }();
  return *instance;
}

bool Tracer::flush_to_file(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (finished_.empty()) return false;
  std::ofstream os(path);
  if (!os) return false;
  for (const auto& record : finished_) {
    os << record.to_json() << '\n';
  }
  return true;
}

double Tracer::now_us() const noexcept {
  return static_cast<double>(monotonic_ns() - epoch_ns_) * 1e-3;
}

Span Tracer::span(std::string_view name, Labels attrs) {
  Span span;
  if (!enabled()) return span;
  span.tracer_ = this;
  span.record_.name = std::string(name);
  span.record_.attrs = std::move(attrs);
  span.record_.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  span.record_.thread = thread_ordinal();
  for (auto it = t_open_spans.rbegin(); it != t_open_spans.rend(); ++it) {
    if (it->tracer == this) {
      span.record_.parent = it->id;
      break;
    }
  }
  span.start_ns_ = monotonic_ns();
  span.record_.start_us =
      static_cast<double>(span.start_ns_ - epoch_ns_) * 1e-3;
  t_open_spans.push_back({this, span.record_.id});
  return span;
}

void Tracer::set_sink(std::ostream* sink) {
  std::lock_guard<std::mutex> lock(mutex_);
  sink_ = sink;
}

void Tracer::record(SpanRecord&& record) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (sink_ != nullptr) {
    *sink_ << record.to_json() << '\n';
  }
  finished_.push_back(std::move(record));
}

std::vector<SpanRecord> Tracer::finished() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return finished_;
}

void Tracer::dump_jsonl(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& record : finished_) {
    os << record.to_json() << '\n';
  }
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  finished_.clear();
}

}  // namespace ibvs::telemetry
