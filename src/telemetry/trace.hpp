// Structured event/span tracing for management-plane operations.
//
// A Span brackets one operation (a sweep phase, a migration, a boot storm)
// with monotonic start/stop timestamps and small string attributes. Spans
// nest per thread: a span opened while another is active on the same thread
// records it as parent, so a full_sweep span contains its discovery /
// lid-assignment / path-computation / lft-distribution children.
//
// Finished spans are appended to an in-memory buffer on the tracer and,
// optionally, streamed to a sink as JSON lines (one object per span) the
// moment they close — suitable for tailing a boot storm live. The export
// format is stable:
//
//   {"name":"sm.sweep","id":7,"parent":6,"thread":1,
//    "start_us":12.5,"duration_us":1034.2,
//    "attrs":{"switches":"36"}}
//
// Tracing shares the telemetry on/off switch granularity with metrics but
// has its own flag (Tracer::set_enabled): spans allocate, so hot loops can
// keep metrics on while muting the tracer.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "telemetry/metrics.hpp"  // Labels, json_escape

namespace ibvs::telemetry {

/// One finished span, as stored/exported.
struct SpanRecord {
  std::string name;
  Labels attrs;
  std::uint64_t id = 0;
  std::uint64_t parent = 0;  ///< 0 = root
  std::uint64_t thread = 0;  ///< small per-process thread ordinal
  double start_us = 0.0;     ///< monotonic, relative to the tracer epoch
  double duration_us = 0.0;

  [[nodiscard]] std::string to_json() const;
};

class Tracer;

/// Move-only RAII handle; closing (end() or destruction) records the span.
class Span {
 public:
  Span() = default;
  Span(Span&& other) noexcept { *this = std::move(other); }
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { end(); }

  /// Attaches/overwrites one attribute (e.g. counts known only at the end).
  void set_attr(std::string_view key, std::string_view value);

  /// Closes the span now; idempotent.
  void end();

  [[nodiscard]] bool active() const noexcept { return tracer_ != nullptr; }
  [[nodiscard]] std::uint64_t id() const noexcept { return record_.id; }

 private:
  friend class Tracer;
  Tracer* tracer_ = nullptr;
  SpanRecord record_;
  std::uint64_t start_ns_ = 0;
};

class Tracer {
 public:
  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The process-wide tracer the library layers report into.
  static Tracer& global();

  /// Disabled tracers hand out inert spans (no allocation, no record).
  void set_enabled(bool enabled) noexcept {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Opens a span; the current thread's innermost open span becomes parent.
  [[nodiscard]] Span span(std::string_view name, Labels attrs = {});

  /// Streams each finished span to `sink` as one JSON line. nullptr stops
  /// streaming. The sink must outlive the tracer or the next set_sink.
  void set_sink(std::ostream* sink);

  /// Copies the finished spans buffered so far (oldest first).
  [[nodiscard]] std::vector<SpanRecord> finished() const;

  /// Writes all buffered spans as JSON lines.
  void dump_jsonl(std::ostream& os) const;

  /// Writes buffered spans as JSON lines to `path`, creating the file only
  /// when there is something to write. Returns whether a file was written.
  /// The global tracer calls this at process exit with $IBVS_TRACE_OUT so
  /// traces survive a run that forgets to export them.
  bool flush_to_file(const std::string& path) const;

  /// Drops buffered spans (streamed output is unaffected).
  void clear();

 private:
  friend class Span;
  void record(SpanRecord&& record);
  [[nodiscard]] double now_us() const noexcept;

  std::atomic<bool> enabled_{true};
  std::atomic<std::uint64_t> next_id_{1};
  std::uint64_t epoch_ns_ = 0;

  mutable std::mutex mutex_;
  std::vector<SpanRecord> finished_;
  std::ostream* sink_ = nullptr;
};

}  // namespace ibvs::telemetry
