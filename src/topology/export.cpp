#include "topology/export.hpp"

#include <map>
#include <sstream>

#include "util/expect.hpp"

namespace ibvs::topology {

std::string to_dot(const Fabric& fabric) {
  std::ostringstream os;
  os << "graph fabric {\n";
  for (NodeId id = 0; id < fabric.size(); ++id) {
    const Node& n = fabric.node(id);
    os << "  n" << id << " [label=\"" << n.name << "\" shape="
       << (n.is_switch() ? (n.is_vswitch() ? "diamond" : "box") : "ellipse")
       << "];\n";
  }
  for (NodeId id = 0; id < fabric.size(); ++id) {
    const Node& n = fabric.node(id);
    for (PortNum p = 1; p <= n.num_ports(); ++p) {
      const Port& port = n.ports[p];
      if (!port.connected()) continue;
      if (port.peer < id || (port.peer == id && port.peer_port < p)) continue;
      os << "  n" << id << " -- n" << port.peer << " [taillabel=\"" << int(p)
         << "\" headlabel=\"" << int(port.peer_port) << "\"];\n";
    }
  }
  os << "}\n";
  return os.str();
}

std::string to_link_list(const Fabric& fabric) {
  std::ostringstream os;
  for (NodeId id = 0; id < fabric.size(); ++id) {
    const Node& n = fabric.node(id);
    for (PortNum p = 1; p <= n.num_ports(); ++p) {
      const Port& port = n.ports[p];
      if (!port.connected()) continue;
      if (port.peer < id) continue;  // list each cable once
      os << n.name << " " << int(p) << " " << fabric.node(port.peer).name
         << " " << int(port.peer_port) << "\n";
    }
  }
  return os.str();
}

Fabric from_link_list(const std::string& text,
                      const std::vector<std::string>& switch_names) {
  Fabric fabric;
  std::map<std::string, NodeId> by_name;

  const auto looks_like_switch = [&](const std::string& name) {
    for (const auto& known : switch_names) {
      if (known == name) return true;
    }
    for (const char* prefix :
         {"sw", "leaf", "spine", "core", "ring", "torus", "pod"}) {
      if (name.rfind(prefix, 0) == 0) return true;
    }
    return false;
  };
  const auto node_of = [&](const std::string& name) {
    const auto it = by_name.find(name);
    if (it != by_name.end()) return it->second;
    const NodeId id = looks_like_switch(name)
                          ? fabric.add_switch(name, 36)
                          : fabric.add_ca(name);
    by_name.emplace(name, id);
    return id;
  };

  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string a_name;
    std::string b_name;
    int a_port = 0;
    int b_port = 0;
    if (!(fields >> a_name >> a_port >> b_name >> b_port)) {
      throw std::invalid_argument("malformed link list line " +
                                  std::to_string(line_no) + ": " + line);
    }
    IBVS_REQUIRE(a_port >= 1 && a_port <= 254 && b_port >= 1 &&
                     b_port <= 254,
                 "port out of range in link list");
    fabric.connect(node_of(a_name), static_cast<PortNum>(a_port),
                   node_of(b_name), static_cast<PortNum>(b_port));
  }
  fabric.validate();
  return fabric;
}

std::string summary(const Fabric& fabric) {
  std::ostringstream os;
  os << fabric.size() << " nodes: " << fabric.num_switches(true)
     << " physical switches, "
     << (fabric.num_switches(false) - fabric.num_switches(true))
     << " vswitches, " << fabric.num_cas() << " CAs";
  return os.str();
}

}  // namespace ibvs::topology
