// Textual exports of a fabric for debugging and documentation.
#pragma once

#include <iosfwd>
#include <string>

#include "ib/fabric.hpp"

namespace ibvs::topology {

/// Graphviz DOT rendering: switches as boxes, CAs as ellipses, one edge per
/// cable. Suitable for small fabrics.
std::string to_dot(const Fabric& fabric);

/// One line per cable: "<node> <port> <peer> <peer_port>", similar in spirit
/// to an ibnetdiscover dump. Deterministic order, each cable listed once.
std::string to_link_list(const Fabric& fabric);

/// Summary line: node/switch/CA counts.
std::string summary(const Fabric& fabric);

/// Rebuilds a fabric from a link list produced by to_link_list() (or written
/// by hand, ibnetdiscover style). Node names starting with "sw"/"leaf"/
/// "spine"/"core"/"ring"/"torus" (or listed in `switch_names`) become
/// 36-port switches, everything else single-port CAs. Round-trips with
/// to_link_list(). Throws std::invalid_argument on malformed input.
Fabric from_link_list(const std::string& text,
                      const std::vector<std::string>& switch_names = {});

}  // namespace ibvs::topology
