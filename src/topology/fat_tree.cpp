#include "topology/fat_tree.hpp"

#include <string>

#include "util/expect.hpp"

namespace ibvs::topology {

Built build_two_level_fat_tree(Fabric& fabric, const TwoLevelParams& p) {
  IBVS_REQUIRE(p.num_leaves > 0 && p.num_spines > 0, "empty tree");
  const std::size_t uplinks = p.num_spines * p.links_per_spine;
  IBVS_REQUIRE(p.hosts_per_leaf + uplinks <= p.radix,
               "leaf radix exceeded: hosts + uplinks > ports");
  IBVS_REQUIRE(p.num_leaves * p.links_per_spine <= p.radix,
               "spine radix exceeded");

  Built built;
  built.leaves.reserve(p.num_leaves);
  built.spines.reserve(p.num_spines);

  for (std::size_t i = 0; i < p.num_leaves; ++i) {
    built.leaves.push_back(
        fabric.add_switch("leaf-" + std::to_string(i), p.radix));
  }
  for (std::size_t i = 0; i < p.num_spines; ++i) {
    built.spines.push_back(
        fabric.add_switch("spine-" + std::to_string(i), p.radix));
  }

  // Host ports first (1..hosts_per_leaf), then uplinks; keeping the port
  // numbering stable makes test expectations and DOT dumps readable.
  for (std::size_t l = 0; l < p.num_leaves; ++l) {
    for (std::size_t h = 0; h < p.hosts_per_leaf; ++h) {
      built.host_slots.push_back(
          HostSlot{built.leaves[l], static_cast<PortNum>(1 + h)});
    }
    std::size_t up_port = p.hosts_per_leaf + 1;
    for (std::size_t s = 0; s < p.num_spines; ++s) {
      for (std::size_t k = 0; k < p.links_per_spine; ++k) {
        const PortNum spine_port =
            static_cast<PortNum>(1 + l * p.links_per_spine + k);
        fabric.connect(built.leaves[l], static_cast<PortNum>(up_port++),
                       built.spines[s], spine_port);
      }
    }
  }
  return built;
}

Built build_three_level_fat_tree(Fabric& fabric, const ThreeLevelParams& p) {
  IBVS_REQUIRE(p.num_pods > 0 && p.leaves_per_pod > 0 && p.spines_per_pod > 0,
               "empty tree");
  IBVS_REQUIRE(p.hosts_per_leaf + p.spines_per_pod <= p.radix,
               "leaf radix exceeded");
  IBVS_REQUIRE(p.leaves_per_pod * 2 <= p.radix + p.leaves_per_pod &&
                   p.leaves_per_pod <= p.radix,
               "pod spine radix exceeded");
  IBVS_REQUIRE(p.num_cores == p.spines_per_pod * p.leaves_per_pod ||
                   p.num_cores > 0,
               "core count");
  IBVS_REQUIRE(p.num_pods <= p.radix, "core radix exceeded: one link per pod");

  Built built;
  for (std::size_t pod = 0; pod < p.num_pods; ++pod) {
    std::vector<NodeId> pod_leaves;
    std::vector<NodeId> pod_spines;
    for (std::size_t l = 0; l < p.leaves_per_pod; ++l) {
      pod_leaves.push_back(fabric.add_switch(
          "pod" + std::to_string(pod) + "-leaf" + std::to_string(l), p.radix));
    }
    for (std::size_t s = 0; s < p.spines_per_pod; ++s) {
      pod_spines.push_back(fabric.add_switch(
          "pod" + std::to_string(pod) + "-spine" + std::to_string(s),
          p.radix));
    }
    // Leaf <-> pod-spine full bipartite mesh.
    for (std::size_t l = 0; l < p.leaves_per_pod; ++l) {
      for (std::size_t h = 0; h < p.hosts_per_leaf; ++h) {
        built.host_slots.push_back(
            HostSlot{pod_leaves[l], static_cast<PortNum>(1 + h)});
      }
      for (std::size_t s = 0; s < p.spines_per_pod; ++s) {
        fabric.connect(pod_leaves[l],
                       static_cast<PortNum>(1 + p.hosts_per_leaf + s),
                       pod_spines[s], static_cast<PortNum>(1 + l));
      }
    }
    built.leaves.insert(built.leaves.end(), pod_leaves.begin(),
                        pod_leaves.end());
    built.spines.insert(built.spines.end(), pod_spines.begin(),
                        pod_spines.end());
  }

  const std::size_t core_uplinks = p.num_cores / p.spines_per_pod;
  IBVS_REQUIRE(core_uplinks > 0 && p.num_cores % p.spines_per_pod == 0,
               "cores must divide evenly across pod spines");
  for (std::size_t c = 0; c < p.num_cores; ++c) {
    built.cores.push_back(
        fabric.add_switch("core-" + std::to_string(c), p.radix));
  }
  // Pod spine s, uplink u -> core s*core_uplinks + u; the core port is the
  // pod index, so each core has exactly one link into every pod.
  for (std::size_t pod = 0; pod < p.num_pods; ++pod) {
    for (std::size_t s = 0; s < p.spines_per_pod; ++s) {
      const NodeId spine = built.spines[pod * p.spines_per_pod + s];
      for (std::size_t u = 0; u < core_uplinks; ++u) {
        const NodeId core = built.cores[s * core_uplinks + u];
        fabric.connect(spine,
                       static_cast<PortNum>(1 + p.leaves_per_pod + u),
                       core, static_cast<PortNum>(1 + pod));
      }
    }
  }
  return built;
}

Built build_paper_fat_tree(Fabric& fabric, PaperFatTree which) {
  switch (which) {
    case PaperFatTree::k324:
      return build_two_level_fat_tree(
          fabric, TwoLevelParams{.num_leaves = 18,
                                 .num_spines = 18,
                                 .hosts_per_leaf = 18,
                                 .radix = 36});
    case PaperFatTree::k648:
      return build_two_level_fat_tree(
          fabric, TwoLevelParams{.num_leaves = 36,
                                 .num_spines = 18,
                                 .hosts_per_leaf = 18,
                                 .radix = 36});
    case PaperFatTree::k5832:
      return build_three_level_fat_tree(
          fabric, ThreeLevelParams{.num_pods = 18,
                                   .leaves_per_pod = 18,
                                   .spines_per_pod = 18,
                                   .num_cores = 324,
                                   .hosts_per_leaf = 18,
                                   .radix = 36});
    case PaperFatTree::k11664:
      return build_three_level_fat_tree(
          fabric, ThreeLevelParams{.num_pods = 36,
                                   .leaves_per_pod = 18,
                                   .spines_per_pod = 18,
                                   .num_cores = 324,
                                   .hosts_per_leaf = 18,
                                   .radix = 36});
  }
  throw std::invalid_argument("unknown paper fat-tree");
}

std::vector<PaperFatTree> all_paper_fat_trees() {
  return {PaperFatTree::k324, PaperFatTree::k648, PaperFatTree::k5832,
          PaperFatTree::k11664};
}

std::string to_string(PaperFatTree which) {
  switch (which) {
    case PaperFatTree::k324:
      return "2-level fat-tree, 324 nodes";
    case PaperFatTree::k648:
      return "2-level fat-tree, 648 nodes";
    case PaperFatTree::k5832:
      return "3-level fat-tree, 5832 nodes";
    case PaperFatTree::k11664:
      return "3-level fat-tree, 11664 nodes";
  }
  return "?";
}

}  // namespace ibvs::topology
