// Fat-tree topology builders.
//
// The paper's evaluation (§VII-C, Fig. 7, Table I) uses four regular
// fat-trees built from 36-port switches:
//
//   | nodes | switches | structure                                    |
//   |-------|----------|----------------------------------------------|
//   | 324   | 36       | 2 levels: 18 leaves (18 hosts) + 18 spines   |
//   | 648   | 54       | 2 levels: 36 leaves (18 hosts) + 18 spines   |
//   | 5832  | 972      | 3 levels: 18 pods (18+18 switches) + 324 core|
//   | 11664 | 1620     | 3 levels: 36 pods (18+18 switches) + 324 core|
//
// The builders create only the switch fabric and return the attachment
// points for hosts; plain hosts are attached via topology/hosts.hpp and
// virtualized (vSwitch) hypervisors via core/virtualizer.hpp. This split
// lets every experiment reuse the same switch fabric under either model.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "ib/fabric.hpp"

namespace ibvs::topology {

/// A free leaf-switch port where one host (or hypervisor) can be cabled.
struct HostSlot {
  NodeId leaf = kInvalidNode;
  PortNum port = 0;
};

/// Result of building a switch fabric: the switches by tier plus where
/// hosts may attach.
struct Built {
  std::vector<NodeId> leaves;
  std::vector<NodeId> spines;  ///< tier-2 (pod spines for 3-level trees)
  std::vector<NodeId> cores;   ///< tier-3, empty for 2-level trees
  std::vector<HostSlot> host_slots;

  [[nodiscard]] std::size_t num_switches() const noexcept {
    return leaves.size() + spines.size() + cores.size();
  }
};

struct TwoLevelParams {
  std::size_t num_leaves = 18;
  std::size_t num_spines = 18;
  std::size_t hosts_per_leaf = 18;
  std::size_t radix = 36;  ///< switch port count
  /// Uplinks from each leaf to each spine (1 for the paper's trees).
  std::size_t links_per_spine = 1;
};

/// Builds a 2-level fat-tree: every leaf connects `links_per_spine` times to
/// every spine.
Built build_two_level_fat_tree(Fabric& fabric, const TwoLevelParams& params);

struct ThreeLevelParams {
  std::size_t num_pods = 18;
  std::size_t leaves_per_pod = 18;
  std::size_t spines_per_pod = 18;
  std::size_t num_cores = 324;
  std::size_t hosts_per_leaf = 18;
  std::size_t radix = 36;
};

/// Builds a 3-level fat-tree: inside each pod every leaf connects to every
/// pod spine; pod spine `s`'s uplink `u` goes to core `s * spines_per_pod
/// + u`, giving each core exactly one link per pod.
Built build_three_level_fat_tree(Fabric& fabric,
                                 const ThreeLevelParams& params);

/// The four evaluation topologies of the paper, by node (host slot) count.
enum class PaperFatTree : int {
  k324 = 324,
  k648 = 648,
  k5832 = 5832,
  k11664 = 11664,
};

/// Builds one of the paper's fat-trees. The returned Built has exactly
/// `static_cast<int>(which)` host slots and the switch counts of Table I.
Built build_paper_fat_tree(Fabric& fabric, PaperFatTree which);

[[nodiscard]] std::vector<PaperFatTree> all_paper_fat_trees();
[[nodiscard]] std::string to_string(PaperFatTree which);

}  // namespace ibvs::topology
