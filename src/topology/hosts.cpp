#include "topology/hosts.hpp"

#include <string>

namespace ibvs::topology {

std::vector<NodeId> attach_hosts(Fabric& fabric,
                                 const std::vector<HostSlot>& slots,
                                 std::size_t max_hosts) {
  const std::size_t count =
      max_hosts == 0 ? slots.size() : std::min(max_hosts, slots.size());
  std::vector<NodeId> hosts;
  hosts.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const NodeId host = fabric.add_ca("host-" + std::to_string(i));
    fabric.connect(host, 1, slots[i].leaf, slots[i].port);
    hosts.push_back(host);
  }
  return hosts;
}

}  // namespace ibvs::topology
