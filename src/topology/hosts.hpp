// Attaching plain (non-virtualized) hosts to a built switch fabric.
//
// Used by the Fig. 7 / Table I experiments, which evaluate the *physical*
// subnet: each node is one single-port HCA consuming one LID, exactly as the
// paper counts them (nodes + switches = LIDs consumed). Virtualized
// hypervisors are attached via core/virtualizer.hpp instead.
#pragma once

#include <cstddef>
#include <vector>

#include "ib/fabric.hpp"
#include "topology/fat_tree.hpp"

namespace ibvs::topology {

/// Creates one single-port CA per host slot (up to `max_hosts`; all slots
/// when max_hosts == 0) and cables it to its leaf. Returns the CA node ids.
std::vector<NodeId> attach_hosts(Fabric& fabric,
                                 const std::vector<HostSlot>& slots,
                                 std::size_t max_hosts = 0);

}  // namespace ibvs::topology
