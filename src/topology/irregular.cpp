#include "topology/irregular.hpp"

#include <algorithm>
#include <string>

#include "util/expect.hpp"
#include "util/rng.hpp"

namespace ibvs::topology {

namespace {

/// Finds the lowest free external port on `node`.
PortNum free_port(const Fabric& fabric, NodeId node) {
  const Node& n = fabric.node(node);
  for (PortNum p = 1; p <= n.num_ports(); ++p) {
    if (!n.ports[p].connected()) return p;
  }
  throw std::runtime_error("node " + n.name + " has no free port");
}

// Host slots occupy the lowest ports, which the ring/torus builders keep
// free by cabling switch-to-switch links on the topmost ports.
void add_host_slots(Built& built, const std::vector<NodeId>& switches,
                    std::size_t hosts_per_switch) {
  for (NodeId sw : switches) {
    for (std::size_t h = 0; h < hosts_per_switch; ++h) {
      built.host_slots.push_back(HostSlot{sw, static_cast<PortNum>(1 + h)});
    }
  }
}

}  // namespace

Built build_ring(Fabric& fabric, std::size_t num_switches,
                 std::size_t hosts_per_switch, std::size_t radix) {
  IBVS_REQUIRE(num_switches >= 3, "a ring needs at least 3 switches");
  IBVS_REQUIRE(hosts_per_switch + 2 <= radix, "radix too small");

  Built built;
  for (std::size_t i = 0; i < num_switches; ++i) {
    built.leaves.push_back(
        fabric.add_switch("ring-" + std::to_string(i), radix));
  }
  // Ring cables occupy the two topmost ports, leaving low ports for hosts.
  for (std::size_t i = 0; i < num_switches; ++i) {
    const NodeId a = built.leaves[i];
    const NodeId b = built.leaves[(i + 1) % num_switches];
    fabric.connect(a, static_cast<PortNum>(radix), b,
                   static_cast<PortNum>(radix - 1));
  }
  add_host_slots(built, built.leaves, hosts_per_switch);
  return built;
}

Built build_torus_2d(Fabric& fabric, std::size_t rows, std::size_t cols,
                     std::size_t hosts_per_switch, std::size_t radix) {
  IBVS_REQUIRE(rows >= 3 && cols >= 3,
               "torus wrap links degenerate below 3x3");
  IBVS_REQUIRE(hosts_per_switch + 4 <= radix, "radix too small");

  Built built;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      built.leaves.push_back(fabric.add_switch(
          "torus-" + std::to_string(r) + "-" + std::to_string(c), radix));
    }
  }
  const auto at = [&](std::size_t r, std::size_t c) {
    return built.leaves[r * cols + c];
  };
  // +X links on port radix-0/-1, +Y links on radix-2/-3.
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      fabric.connect(at(r, c), static_cast<PortNum>(radix),
                     at(r, (c + 1) % cols), static_cast<PortNum>(radix - 1));
      fabric.connect(at(r, c), static_cast<PortNum>(radix - 2),
                     at((r + 1) % rows, c), static_cast<PortNum>(radix - 3));
    }
  }
  add_host_slots(built, built.leaves, hosts_per_switch);
  return built;
}

Built build_irregular(Fabric& fabric, const IrregularParams& p) {
  IBVS_REQUIRE(p.num_switches >= 2, "need at least two switches");
  SplitMix64 rng(p.seed);

  Built built;
  for (std::size_t i = 0; i < p.num_switches; ++i) {
    built.leaves.push_back(
        fabric.add_switch("sw-" + std::to_string(i), p.radix));
  }
  // Random spanning tree: node i attaches to a random earlier node.
  for (std::size_t i = 1; i < p.num_switches; ++i) {
    const NodeId a = built.leaves[i];
    const NodeId b = built.leaves[rng.below(i)];
    fabric.connect(a, free_port(fabric, a), b, free_port(fabric, b));
  }
  // Random chords; skip pairs that are already cabled or saturated.
  std::size_t added = 0;
  std::size_t attempts = 0;
  while (added < p.extra_links && attempts < p.extra_links * 20) {
    ++attempts;
    const std::size_t i = rng.below(p.num_switches);
    const std::size_t j = rng.below(p.num_switches);
    if (i == j) continue;
    const NodeId a = built.leaves[i];
    const NodeId b = built.leaves[j];
    try {
      const PortNum pa = free_port(fabric, a);
      const PortNum pb = free_port(fabric, b);
      fabric.connect(a, pa, b, pb);
      ++added;
    } catch (const std::runtime_error&) {
      continue;  // saturated switch; try another pair
    }
  }
  // Host slots use whatever ports remain free, assigned densely per switch.
  for (NodeId sw : built.leaves) {
    std::size_t placed = 0;
    const Node& n = fabric.node(sw);
    for (PortNum port = 1;
         port <= n.num_ports() && placed < p.hosts_per_switch; ++port) {
      if (!n.ports[port].connected()) {
        built.host_slots.push_back(HostSlot{sw, port});
        ++placed;
      }
    }
  }
  return built;
}

}  // namespace ibvs::topology
