// Non-fat-tree topologies.
//
// The reconfiguration method of §V-C is *topology agnostic*: it only relies
// on the vSwitch-shares-the-PF-uplink property, never on tree structure.
// These builders provide cyclic and irregular fabrics to exercise that claim
// in tests, and to give the deadlock analyzer (src/deadlock) graphs where
// cycles in the channel dependency graph actually arise.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ib/fabric.hpp"
#include "topology/fat_tree.hpp"

namespace ibvs::topology {

/// Ring of `num_switches` switches, `hosts_per_switch` host slots each.
/// The smallest topology whose minimal routing produces a cyclic CDG.
Built build_ring(Fabric& fabric, std::size_t num_switches,
                 std::size_t hosts_per_switch, std::size_t radix = 36);

/// 2D torus of `rows` x `cols` switches (wrap-around in both dimensions),
/// `hosts_per_switch` host slots each.
Built build_torus_2d(Fabric& fabric, std::size_t rows, std::size_t cols,
                     std::size_t hosts_per_switch, std::size_t radix = 36);

struct IrregularParams {
  std::size_t num_switches = 16;
  std::size_t hosts_per_switch = 4;
  /// Extra random cables added on top of a random spanning tree.
  std::size_t extra_links = 8;
  std::size_t radix = 36;
  std::uint64_t seed = 42;
};

/// Random connected switch graph: a random spanning tree plus
/// `extra_links` random chords. Deterministic for a given seed.
Built build_irregular(Fabric& fabric, const IrregularParams& params);

}  // namespace ibvs::topology
