// Precondition / invariant checking helpers.
//
// Library-boundary violations (bad user arguments) throw std::invalid_argument
// via IBVS_REQUIRE so callers can recover; internal invariant breaks throw
// std::logic_error via IBVS_ENSURE because they indicate a bug in this
// library, not in the caller.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace ibvs::detail {

[[noreturn]] inline void throw_require(const char* expr, const char* file,
                                       int line, const std::string& message) {
  std::ostringstream os;
  os << "requirement failed: " << expr << " at " << file << ":" << line;
  if (!message.empty()) os << " (" << message << ")";
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void throw_ensure(const char* expr, const char* file,
                                      int line, const std::string& message) {
  std::ostringstream os;
  os << "invariant failed: " << expr << " at " << file << ":" << line;
  if (!message.empty()) os << " (" << message << ")";
  throw std::logic_error(os.str());
}

}  // namespace ibvs::detail

/// Validates a caller-supplied argument; throws std::invalid_argument.
#define IBVS_REQUIRE(expr, message)                                       \
  do {                                                                    \
    if (!(expr))                                                          \
      ::ibvs::detail::throw_require(#expr, __FILE__, __LINE__, (message)); \
  } while (false)

/// Validates an internal invariant; throws std::logic_error.
#define IBVS_ENSURE(expr, message)                                       \
  do {                                                                   \
    if (!(expr))                                                         \
      ::ibvs::detail::throw_ensure(#expr, __FILE__, __LINE__, (message)); \
  } while (false)
