#include "util/log.hpp"

namespace ibvs {

std::atomic<int> Log::level_{static_cast<int>(LogLevel::kWarn)};

namespace {
std::mutex g_emit_mutex;

constexpr std::string_view level_tag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void Log::emit(LogLevel level, std::string_view component,
               std::string_view message) {
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::clog << "[" << level_tag(level) << "] " << component << ": " << message
            << '\n';
}

}  // namespace ibvs
