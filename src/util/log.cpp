#include "util/log.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>

namespace ibvs {

std::atomic<int> Log::level_{Log::kUninitialized};

namespace {
std::mutex g_emit_mutex;

constexpr std::string_view level_tag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const char ca = a[i] >= 'A' && a[i] <= 'Z' ? a[i] - 'A' + 'a' : a[i];
    if (ca != b[i]) return false;
  }
  return true;
}

/// Monotonic epoch captured on first emission; emitted timestamps are
/// seconds since then.
std::chrono::steady_clock::time_point log_epoch() noexcept {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

/// Small per-thread ordinal (1, 2, ...) — stable within a run, readable in
/// interleaved output, unlike the opaque std::thread::id hash.
std::uint64_t thread_ordinal() noexcept {
  static std::atomic<std::uint64_t> next{1};
  thread_local const std::uint64_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

}  // namespace

std::optional<LogLevel> Log::parse_level(std::string_view text) noexcept {
  if (iequals(text, "trace")) return LogLevel::kTrace;
  if (iequals(text, "debug")) return LogLevel::kDebug;
  if (iequals(text, "info")) return LogLevel::kInfo;
  if (iequals(text, "warn") || iequals(text, "warning")) {
    return LogLevel::kWarn;
  }
  if (iequals(text, "error")) return LogLevel::kError;
  if (iequals(text, "off") || iequals(text, "none")) return LogLevel::kOff;
  return std::nullopt;
}

int Log::init_from_env() noexcept {
  int level = static_cast<int>(LogLevel::kWarn);
  if (const char* env = std::getenv("IBVS_LOG_LEVEL")) {
    if (const auto parsed = parse_level(env)) {
      level = static_cast<int>(*parsed);
    }
  }
  // Racing first uses agree on the same value (the env cannot change
  // between them), so a plain store is fine — unless set_level() already
  // won the race, which must not be overwritten.
  int expected = kUninitialized;
  if (level_.compare_exchange_strong(expected, level,
                                     std::memory_order_relaxed)) {
    return level;
  }
  return expected;
}

void Log::reload_env() noexcept {
  level_.store(kUninitialized, std::memory_order_relaxed);
  (void)init_from_env();
}

void Log::emit(LogLevel level, std::string_view component,
               std::string_view message) {
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    log_epoch())
          .count();
  char prefix[64];
  std::snprintf(prefix, sizeof(prefix), "[%11.6f] [t%llu] ", seconds,
                static_cast<unsigned long long>(thread_ordinal()));
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::clog << prefix << "[" << level_tag(level) << "] " << component << ": "
            << message << '\n';
}

}  // namespace ibvs
