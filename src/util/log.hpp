// Minimal leveled logger for the ibvswitch library.
//
// The library is used both interactively (examples) and inside tight
// benchmark loops, so logging is cheap when disabled: the level check is a
// single relaxed atomic load and message formatting is lazy (stream built
// only when the record is emitted).
#pragma once

#include <atomic>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace ibvs {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Global logger configuration. Thread safe.
class Log {
 public:
  static void set_level(LogLevel level) noexcept {
    level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  static LogLevel level() noexcept {
    return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
  }
  static bool enabled(LogLevel level) noexcept {
    return static_cast<int>(level) >= level_.load(std::memory_order_relaxed);
  }

  /// Emits one record; serializes concurrent writers.
  static void emit(LogLevel level, std::string_view component,
                   std::string_view message);

 private:
  static std::atomic<int> level_;
};

namespace detail {
/// Builds the message lazily and emits it on destruction.
class LogRecord {
 public:
  LogRecord(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  LogRecord(const LogRecord&) = delete;
  LogRecord& operator=(const LogRecord&) = delete;
  ~LogRecord() { Log::emit(level_, component_, stream_.str()); }

  template <typename T>
  LogRecord& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view component_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace ibvs

#define IBVS_LOG(level, component)                 \
  if (!::ibvs::Log::enabled(level)) {              \
  } else                                           \
    ::ibvs::detail::LogRecord(level, component)

#define IBVS_TRACE(component) IBVS_LOG(::ibvs::LogLevel::kTrace, component)
#define IBVS_DEBUG(component) IBVS_LOG(::ibvs::LogLevel::kDebug, component)
#define IBVS_INFO(component) IBVS_LOG(::ibvs::LogLevel::kInfo, component)
#define IBVS_WARN(component) IBVS_LOG(::ibvs::LogLevel::kWarn, component)
#define IBVS_ERROR(component) IBVS_LOG(::ibvs::LogLevel::kError, component)
