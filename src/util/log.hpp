// Minimal leveled logger for the ibvswitch library.
//
// The library is used both interactively (examples) and inside tight
// benchmark loops, so logging is cheap when disabled: the level check is a
// single relaxed atomic load and message formatting is lazy (stream built
// only when the record is emitted).
//
// The initial level comes from the IBVS_LOG_LEVEL environment variable
// (trace/debug/info/warn/error/off, case-insensitive), read on the first
// level query; set_level() overrides it at any time. Emitted records carry a
// monotonic seconds-since-start timestamp and a small per-thread ordinal so
// interleaved thread-pool output stays attributable.
#pragma once

#include <atomic>
#include <iostream>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace ibvs {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Global logger configuration. Thread safe.
class Log {
 public:
  static void set_level(LogLevel level) noexcept {
    level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  static LogLevel level() noexcept {
    return static_cast<LogLevel>(current_level());
  }
  static bool enabled(LogLevel level) noexcept {
    return static_cast<int>(level) >= current_level();
  }

  /// Parses a level name ("trace".."error", "off"), case-insensitive.
  static std::optional<LogLevel> parse_level(std::string_view text) noexcept;

  /// Re-reads IBVS_LOG_LEVEL (falling back to the kWarn default). Normally
  /// implicit on first use; exposed so tests can exercise the env path.
  static void reload_env() noexcept;

  /// Emits one record; serializes concurrent writers.
  static void emit(LogLevel level, std::string_view component,
                   std::string_view message);

 private:
  static int current_level() noexcept {
    const int v = level_.load(std::memory_order_relaxed);
    return v == kUninitialized ? init_from_env() : v;
  }
  /// Slow path: applies IBVS_LOG_LEVEL (or the default) and returns it.
  static int init_from_env() noexcept;

  static constexpr int kUninitialized = -1;
  static std::atomic<int> level_;
};

namespace detail {
/// Builds the message lazily and emits it on destruction.
class LogRecord {
 public:
  LogRecord(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  LogRecord(const LogRecord&) = delete;
  LogRecord& operator=(const LogRecord&) = delete;
  ~LogRecord() { Log::emit(level_, component_, stream_.str()); }

  template <typename T>
  LogRecord& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view component_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace ibvs

#define IBVS_LOG(level, component)                 \
  if (!::ibvs::Log::enabled(level)) {              \
  } else                                           \
    ::ibvs::detail::LogRecord(level, component)

#define IBVS_TRACE(component) IBVS_LOG(::ibvs::LogLevel::kTrace, component)
#define IBVS_DEBUG(component) IBVS_LOG(::ibvs::LogLevel::kDebug, component)
#define IBVS_INFO(component) IBVS_LOG(::ibvs::LogLevel::kInfo, component)
#define IBVS_WARN(component) IBVS_LOG(::ibvs::LogLevel::kWarn, component)
#define IBVS_ERROR(component) IBVS_LOG(::ibvs::LogLevel::kError, component)
