// Deterministic pseudo-random number generation.
//
// All stochastic choices in the library (random topologies, randomized
// placement, fault injection in tests) flow through SplitMix64 so that every
// experiment is reproducible from a single seed. SplitMix64 is tiny, fast,
// and has no shared state, which keeps parallel benchmark shards independent.
#pragma once

#include <cstdint>
#include <limits>

#include "util/expect.hpp"

namespace ibvs {

/// SplitMix64 generator (public-domain algorithm by Sebastiano Vigna).
/// Satisfies UniformRandomBitGenerator so it composes with <random>.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit SplitMix64(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept
      : state_(seed) {}

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift reduction;
  /// the slight modulo bias is irrelevant for topology generation.
  std::uint64_t below(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>((*this)()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi) {
    IBVS_REQUIRE(lo <= hi, "empty range");
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Forks an independent stream (e.g. one per worker thread).
  SplitMix64 fork() noexcept { return SplitMix64((*this)() ^ 0xA02BDBF7BB3C0A7ULL); }

 private:
  std::uint64_t state_;
};

}  // namespace ibvs
