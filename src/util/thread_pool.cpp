#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>

namespace ibvs {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
  }
  wake_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for_chunks(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (begin >= end) return;
  const std::size_t total = end - begin;
  const std::size_t chunks = std::min(total, size() * 4);
  if (chunks <= 1) {
    body(begin, end);
    return;
  }
  const std::size_t chunk_size = (total + chunks - 1) / chunks;

  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::size_t pending = 0;
  std::exception_ptr first_error;

  for (std::size_t chunk_begin = begin; chunk_begin < end;
       chunk_begin += chunk_size) {
    const std::size_t chunk_end = std::min(end, chunk_begin + chunk_size);
    {
      std::lock_guard<std::mutex> lock(done_mutex);
      ++pending;
    }
    submit([&, chunk_begin, chunk_end] {
      try {
        body(chunk_begin, chunk_end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(done_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      {
        // Notify under the lock: the waiter owns done_cv on its stack, so
        // it must not be able to wake, see pending == 0, and destroy the
        // cv while this thread is still inside notify_one.
        std::lock_guard<std::mutex> lock(done_mutex);
        --pending;
        done_cv.notify_one();
      }
    });
  }

  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return pending == 0; });
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::parallel_for_shards(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  if (begin >= end) return;
  const std::size_t total = end - begin;
  const std::size_t shards = shard_count(total);
  if (shards <= 1) {
    body(0, begin, end);
    return;
  }
  // Balanced split: the first `total % shards` shards get one extra item,
  // so shard sizes differ by at most one.
  const std::size_t base = total / shards;
  const std::size_t extra = total % shards;

  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::size_t pending = 0;
  std::exception_ptr first_error;

  std::size_t at = begin;
  for (std::size_t shard = 0; shard < shards; ++shard) {
    const std::size_t shard_begin = at;
    const std::size_t shard_end = shard_begin + base + (shard < extra ? 1 : 0);
    at = shard_end;
    {
      std::lock_guard<std::mutex> lock(done_mutex);
      ++pending;
    }
    submit([&, shard, shard_begin, shard_end] {
      try {
        body(shard, shard_begin, shard_end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(done_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      {
        // Notify under the lock (see parallel_for_chunks).
        std::lock_guard<std::mutex> lock(done_mutex);
        --pending;
        done_cv.notify_one();
      }
    });
  }

  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return pending == 0; });
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body) {
  parallel_for_chunks(begin, end,
                      [&](std::size_t chunk_begin, std::size_t chunk_end) {
                        for (std::size_t i = chunk_begin; i < chunk_end; ++i) {
                          body(i);
                        }
                      });
}

namespace {

/// IBVS_THREADS=N sizes the global pool without touching code — the knob
/// the scaling benches and CI use for reproducible curves. 0/garbage means
/// "no override".
std::size_t env_threads() {
  const char* value = std::getenv("IBVS_THREADS");
  if (value == nullptr || *value == '\0') return 0;
  char* end = nullptr;
  const unsigned long parsed = std::strtoul(value, &end, 10);
  if (end == value || *end != '\0') return 0;
  return static_cast<std::size_t>(parsed);
}

struct GlobalPool {
  std::mutex mutex;
  std::unique_ptr<ThreadPool> pool;
  std::size_t override_threads = 0;  ///< 0 = IBVS_THREADS/hardware default
};

GlobalPool& global_slot() {
  static GlobalPool g;
  return g;
}

}  // namespace

ThreadPool& ThreadPool::global() {
  GlobalPool& g = global_slot();
  std::lock_guard<std::mutex> lock(g.mutex);
  if (!g.pool) {
    std::size_t threads = g.override_threads;
    if (threads == 0) threads = env_threads();
    g.pool = std::make_unique<ThreadPool>(threads);
  }
  return *g.pool;
}

void ThreadPool::set_global_threads(std::size_t threads) {
  GlobalPool& g = global_slot();
  std::lock_guard<std::mutex> lock(g.mutex);
  g.override_threads = threads;
  g.pool.reset();  // rebuilt lazily at the requested size
}

std::size_t ThreadPool::global_thread_count() {
  GlobalPool& g = global_slot();
  std::lock_guard<std::mutex> lock(g.mutex);
  if (g.pool) return g.pool->size();
  std::size_t threads = g.override_threads;
  if (threads == 0) threads = env_threads();
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  return threads;
}

}  // namespace ibvs
