// Fixed-size thread pool with a blocking parallel_for.
//
// The routing engines (Min-Hop BFS sweeps, DFSSSP Dijkstra sweeps) are
// embarrassingly parallel across destinations/sources; parallel_for gives
// them a simple static-chunked work distribution without exposing futures to
// the callers. The pool is created on demand and reused (thread creation at
// 11k-node scale would otherwise dominate small runs).
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ibvs {

class ThreadPool {
 public:
  /// Creates a pool with `threads` workers; 0 means hardware_concurrency.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Runs body(i) for every i in [begin, end), distributing contiguous chunks
  /// over the workers, and blocks until all iterations finished. Exceptions
  /// thrown by `body` propagate (the first one wins).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body);

  /// Like parallel_for but hands each worker a contiguous [chunk_begin,
  /// chunk_end) range, letting the body keep per-chunk scratch state.
  void parallel_for_chunks(
      std::size_t begin, std::size_t end,
      const std::function<void(std::size_t, std::size_t)>& body);

  /// Number of shards parallel_for_shards() will split `total` items into:
  /// one contiguous range per worker (never more shards than items). Callers
  /// use it to pre-size per-shard result slots before fanning out.
  [[nodiscard]] std::size_t shard_count(std::size_t total) const noexcept {
    return std::min(total, size());
  }

  /// Coarse-grained fan-out: splits [begin, end) into exactly
  /// shard_count(end - begin) contiguous, balanced ranges — one task per
  /// worker instead of the 4x-oversubscribed chunks of parallel_for_chunks.
  /// `body(shard, shard_begin, shard_end)` runs once per shard; shard
  /// indices are dense in [0, shard_count). This is the DPDK-style lcore
  /// model for the sweep hot paths: per-shard scratch state is touched by
  /// exactly one worker and task-queue traffic is O(workers), not O(items).
  void parallel_for_shards(
      std::size_t begin, std::size_t end,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& body);

  /// Process-wide shared pool. Sized, in priority order, by the last
  /// set_global_threads() call, the IBVS_THREADS environment variable, or
  /// hardware_concurrency.
  static ThreadPool& global();

  /// Resizes the global pool: the current one (if any) is torn down and the
  /// next global() call builds a pool with `threads` workers. 0 restores
  /// the IBVS_THREADS/hardware default. Must not be called while another
  /// thread is inside a global-pool parallel_for — the benches use it
  /// between measurements to sweep thread counts within one process.
  static void set_global_threads(std::size_t threads);

  /// Worker count the current (or next) global pool has (resolves the
  /// override/environment/hardware chain without forcing pool creation).
  static std::size_t global_thread_count();

 private:
  void submit(std::function<void()> task);
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable wake_;
  bool stopping_ = false;
};

}  // namespace ibvs
