// Wall-clock measurement helpers used for PCt / LFTDt style timings.
#pragma once

#include <chrono>
#include <cstdint>

namespace ibvs {

/// Monotonic stopwatch. Construction starts it; elapsed_* reads do not stop it.
class Stopwatch {
 public:
  using Clock = std::chrono::steady_clock;

  Stopwatch() noexcept : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  [[nodiscard]] std::chrono::nanoseconds elapsed() const noexcept {
    return Clock::now() - start_;
  }
  [[nodiscard]] double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(elapsed()).count();
  }
  [[nodiscard]] double elapsed_ms() const noexcept {
    return std::chrono::duration<double, std::milli>(elapsed()).count();
  }
  [[nodiscard]] std::uint64_t elapsed_us() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(elapsed())
            .count());
  }

 private:
  Clock::time_point start_;
};

}  // namespace ibvs
