// Shared fixtures for the ibvswitch test suite.
#pragma once

#include <memory>
#include <vector>

#include "core/virtualizer.hpp"
#include "core/vswitch.hpp"
#include "routing/engine.hpp"
#include "sm/subnet_manager.hpp"
#include "topology/fat_tree.hpp"
#include "topology/hosts.hpp"
#include "topology/irregular.hpp"

namespace ibvs::test {

/// A physical (non-virtualized) subnet with an SM on host 0.
struct PhysicalSubnet {
  Fabric fabric;
  topology::Built built;
  std::vector<NodeId> hosts;
  std::unique_ptr<sm::SubnetManager> sm;

  static PhysicalSubnet small_fat_tree(
      routing::EngineKind engine = routing::EngineKind::kMinHop) {
    PhysicalSubnet s;
    s.built = topology::build_two_level_fat_tree(
        s.fabric, topology::TwoLevelParams{.num_leaves = 4,
                                           .num_spines = 2,
                                           .hosts_per_leaf = 3,
                                           .radix = 8});
    s.hosts = topology::attach_hosts(s.fabric, s.built.host_slots);
    s.fabric.validate();
    s.sm = std::make_unique<sm::SubnetManager>(
        s.fabric, s.hosts[0], routing::make_engine(engine));
    return s;
  }

  static PhysicalSubnet paper_tree(
      topology::PaperFatTree which,
      routing::EngineKind engine = routing::EngineKind::kMinHop) {
    PhysicalSubnet s;
    s.built = topology::build_paper_fat_tree(s.fabric, which);
    s.hosts = topology::attach_hosts(s.fabric, s.built.host_slots);
    s.fabric.validate();
    s.sm = std::make_unique<sm::SubnetManager>(
        s.fabric, s.hosts[0], routing::make_engine(engine));
    return s;
  }
};

/// A virtualized subnet: hypervisors with vSwitches, an SM on a dedicated
/// node, and a VSwitchFabric in the requested scheme. Not yet booted.
struct VirtualSubnet {
  Fabric fabric;
  topology::Built built;
  std::vector<core::VirtualHca> hyps;
  NodeId sm_node = kInvalidNode;
  std::unique_ptr<sm::SubnetManager> sm;
  std::unique_ptr<core::VSwitchFabric> vsf;

  /// 4 leaves x 2 spines; `num_hyps` hypervisors with `vfs` VFs each spread
  /// over the leaves (3 host slots per leaf).
  static VirtualSubnet small(
      core::LidScheme scheme, std::size_t num_hyps = 8, std::size_t vfs = 4,
      routing::EngineKind engine = routing::EngineKind::kMinHop) {
    VirtualSubnet s;
    s.built = topology::build_two_level_fat_tree(
        s.fabric, topology::TwoLevelParams{.num_leaves = 4,
                                           .num_spines = 2,
                                           .hosts_per_leaf = 3,
                                           .radix = 12});
    s.finish(scheme, num_hyps, vfs, engine);
    return s;
  }

  /// Ring topology variant for topology-agnostic checks.
  static VirtualSubnet ring(
      core::LidScheme scheme, std::size_t switches = 6,
      std::size_t num_hyps = 6, std::size_t vfs = 2,
      routing::EngineKind engine = routing::EngineKind::kUpDown) {
    VirtualSubnet s;
    s.built = topology::build_ring(s.fabric, switches, 2, 8);
    s.finish(scheme, num_hyps, vfs, engine);
    return s;
  }

  core::VmHandle create_on(std::size_t hyp) {
    return vsf->create_vm(hyp).vm;
  }

  /// All PF nodes (used as trace sources).
  [[nodiscard]] std::vector<NodeId> pf_nodes() const {
    std::vector<NodeId> out;
    for (const auto& h : hyps) out.push_back(h.pf);
    return out;
  }

 private:
  void finish(core::LidScheme scheme, std::size_t num_hyps, std::size_t vfs,
              routing::EngineKind engine) {
    hyps = core::attach_hypervisors(fabric, built.host_slots, vfs, num_hyps);
    // The SM lives on a dedicated node cabled to the last free slot.
    const auto& slot = built.host_slots[num_hyps];
    sm_node = fabric.add_ca("sm-node");
    fabric.connect(sm_node, 1, slot.leaf, slot.port);
    fabric.validate();
    sm = std::make_unique<sm::SubnetManager>(fabric, sm_node,
                                             routing::make_engine(engine));
    vsf = std::make_unique<core::VSwitchFabric>(*sm, hyps, scheme);
  }
};

}  // namespace ibvs::test
