// LID adoption: a subnet manager taking over a running, already-addressed
// subnet must honor what it finds (the failover path of sm/election).
#include <gtest/gtest.h>

#include "routing/verify.hpp"
#include "tests/helpers.hpp"

namespace ibvs {
namespace {

TEST(AdoptLids, TakesOverExistingAssignments) {
  auto s = test::PhysicalSubnet::small_fat_tree();
  s.sm->full_sweep();
  const auto snapshot = s.sm->lids().assigned_lids();

  // A second SM on a different host inherits everything.
  sm::SubnetManager second(s.fabric, s.hosts[7],
                           routing::make_engine(routing::EngineKind::kMinHop));
  const std::size_t adopted = second.adopt_lids();
  EXPECT_EQ(adopted, snapshot.size());
  EXPECT_EQ(second.lids().assigned_lids(), snapshot);
  // Nothing new to assign afterwards.
  EXPECT_EQ(second.assign_lids(), 0u);
}

TEST(AdoptLids, AdoptionIsIdempotent) {
  auto s = test::PhysicalSubnet::small_fat_tree();
  s.sm->full_sweep();
  sm::SubnetManager second(s.fabric, s.hosts[7],
                           routing::make_engine(routing::EngineKind::kMinHop));
  EXPECT_GT(second.adopt_lids(), 0u);
  EXPECT_EQ(second.adopt_lids(), 0u);
}

TEST(AdoptLids, LmcBlocksAdoptedWhole) {
  Fabric fabric;
  const NodeId sw = fabric.add_switch("sw", 8);
  const NodeId ca = fabric.add_ca("ca");
  const NodeId sm_host = fabric.add_ca("sm");
  fabric.connect(ca, 1, sw, 1);
  fabric.connect(sm_host, 1, sw, 2);

  // First SM hands out an LMC block.
  sm::SubnetManager first(fabric, sm_host,
                          routing::make_engine(routing::EngineKind::kMinHop));
  first.assign_lids();
  const Lid block = first.lids().assign_lmc_block(fabric, ca, 1, 2);
  fabric.set_lid(ca, 1, block);  // ensure the base is what the port shows

  sm::SubnetManager second(fabric, sm_host,
                           routing::make_engine(routing::EngineKind::kMinHop));
  second.adopt_lids();
  // All four aliases adopted, port base/LMC preserved.
  for (std::uint16_t off = 0; off < 4; ++off) {
    EXPECT_TRUE(second.lids().assigned(
        Lid{static_cast<std::uint16_t>(block.value() + off)}));
  }
  EXPECT_EQ(fabric.node(ca).ports[1].lid, block);
  EXPECT_EQ(fabric.node(ca).ports[1].lmc, 2);
  EXPECT_EQ(second.lids().owner(block).node, ca);
}

TEST(AdoptLids, VirtualizedSubnetAdoptsPfAndVfLids) {
  auto s = test::VirtualSubnet::small(core::LidScheme::kPrepopulated);
  s.vsf->boot();
  const std::size_t before = s.sm->lids().count();

  sm::SubnetManager second(s.fabric, s.hyps[5].pf,
                           routing::make_engine(routing::EngineKind::kMinHop));
  EXPECT_EQ(second.adopt_lids(), before);
  // The takeover reroutes identically: zero distribution SMPs.
  second.compute_routes();
  EXPECT_TRUE(routing::verify_routing(second.routing_result()).ok);
  EXPECT_EQ(second.distribute_lfts().smps, 0u);
}

}  // namespace
}  // namespace ibvs
