#include <gtest/gtest.h>

#include "routing/cdg.hpp"
#include "util/rng.hpp"

namespace ibvs {
namespace {

using routing::ChannelDepGraph;
using Add = ChannelDepGraph::Add;

TEST(ChannelDepGraph, InsertChain) {
  ChannelDepGraph g(4);
  EXPECT_EQ(g.add(0, 1), Add::kInserted);
  EXPECT_EQ(g.add(1, 2), Add::kInserted);
  EXPECT_EQ(g.add(2, 3), Add::kInserted);
  EXPECT_EQ(g.num_deps(), 3u);
  EXPECT_TRUE(g.has(0, 1));
  EXPECT_FALSE(g.has(1, 0));
  EXPECT_TRUE(g.order_consistent());
}

TEST(ChannelDepGraph, DuplicateIsPresent) {
  ChannelDepGraph g(3);
  EXPECT_EQ(g.add(0, 1), Add::kInserted);
  EXPECT_EQ(g.add(0, 1), Add::kPresent);
  EXPECT_EQ(g.num_deps(), 1u);
}

TEST(ChannelDepGraph, RejectsTwoCycle) {
  ChannelDepGraph g(2);
  EXPECT_EQ(g.add(0, 1), Add::kInserted);
  EXPECT_EQ(g.add(1, 0), Add::kRejected);
  EXPECT_EQ(g.num_deps(), 1u);
  EXPECT_TRUE(g.order_consistent());
}

TEST(ChannelDepGraph, RejectsSelfLoop) {
  ChannelDepGraph g(2);
  EXPECT_EQ(g.add(1, 1), Add::kRejected);
}

TEST(ChannelDepGraph, RejectsLongCycle) {
  ChannelDepGraph g(5);
  EXPECT_EQ(g.add(0, 1), Add::kInserted);
  EXPECT_EQ(g.add(1, 2), Add::kInserted);
  EXPECT_EQ(g.add(2, 3), Add::kInserted);
  EXPECT_EQ(g.add(3, 4), Add::kInserted);
  EXPECT_EQ(g.add(4, 0), Add::kRejected);
  // But a forward chord is fine.
  EXPECT_EQ(g.add(0, 4), Add::kInserted);
  EXPECT_TRUE(g.order_consistent());
}

TEST(ChannelDepGraph, ReorderOnBackwardInsert) {
  // Insert edges against the initial index order to force Pearce-Kelly
  // reordering.
  ChannelDepGraph g(6);
  EXPECT_EQ(g.add(5, 4), Add::kInserted);
  EXPECT_EQ(g.add(4, 3), Add::kInserted);
  EXPECT_EQ(g.add(3, 2), Add::kInserted);
  EXPECT_EQ(g.add(2, 1), Add::kInserted);
  EXPECT_EQ(g.add(1, 0), Add::kInserted);
  EXPECT_TRUE(g.order_consistent());
  EXPECT_LT(g.order_of(5), g.order_of(0));
  EXPECT_EQ(g.add(0, 5), Add::kRejected);
}

TEST(ChannelDepGraph, BatchAllOrNothing) {
  ChannelDepGraph g(4);
  EXPECT_TRUE(g.try_add_batch({{0, 1}, {1, 2}}));
  EXPECT_EQ(g.num_deps(), 2u);
  // Second batch would close a cycle via its last edge: nothing sticks.
  EXPECT_FALSE(g.try_add_batch({{2, 3}, {3, 0}, {0, 2}}));
  EXPECT_EQ(g.num_deps(), 2u);
  EXPECT_FALSE(g.has(2, 3));
  EXPECT_TRUE(g.order_consistent());
  // And the same edges minus the cycle-maker insert fine afterwards.
  EXPECT_TRUE(g.try_add_batch({{2, 3}, {0, 2}}));
  EXPECT_EQ(g.num_deps(), 4u);
}

TEST(ChannelDepGraph, BatchWithDuplicatesRollsBackOnlyInserted) {
  ChannelDepGraph g(4);
  EXPECT_TRUE(g.try_add_batch({{0, 1}}));
  EXPECT_FALSE(g.try_add_batch({{0, 1}, {1, 2}, {2, 0}}));
  // {0,1} predates the failed batch and must survive the rollback.
  EXPECT_TRUE(g.has(0, 1));
  EXPECT_FALSE(g.has(1, 2));
  EXPECT_EQ(g.num_deps(), 1u);
}

TEST(ChannelDepGraph, OutOfRangeThrows) {
  ChannelDepGraph g(2);
  EXPECT_THROW(g.add(0, 7), std::invalid_argument);
  EXPECT_THROW(g.try_add_batch({{9, 0}}), std::invalid_argument);
}

/// Randomized differential test: PK structure vs a naive rebuild-and-check
/// oracle, over thousands of insertions.
TEST(ChannelDepGraph, RandomStressAgainstNaiveOracle) {
  constexpr std::size_t kChannels = 40;
  SplitMix64 rng(2024);
  ChannelDepGraph g(kChannels);
  std::vector<std::vector<std::uint32_t>> naive(kChannels);

  const auto naive_would_cycle = [&](std::uint32_t from, std::uint32_t to) {
    // DFS from `to` looking for `from`.
    std::vector<bool> seen(kChannels, false);
    std::vector<std::uint32_t> stack{to};
    seen[to] = true;
    while (!stack.empty()) {
      const auto u = stack.back();
      stack.pop_back();
      if (u == from) return true;
      for (auto v : naive[u]) {
        if (!seen[v]) {
          seen[v] = true;
          stack.push_back(v);
        }
      }
    }
    return false;
  };

  std::size_t inserted = 0;
  std::size_t rejected = 0;
  for (int i = 0; i < 4000; ++i) {
    const auto from = static_cast<std::uint32_t>(rng.below(kChannels));
    const auto to = static_cast<std::uint32_t>(rng.below(kChannels));
    const auto result = g.add(from, to);
    if (from == to) {
      ASSERT_EQ(result, Add::kRejected);
      continue;
    }
    const bool dup = std::find(naive[from].begin(), naive[from].end(), to) !=
                     naive[from].end();
    if (dup) {
      ASSERT_EQ(result, Add::kPresent) << from << "->" << to;
    } else if (naive_would_cycle(from, to)) {
      ASSERT_EQ(result, Add::kRejected) << from << "->" << to;
      ++rejected;
    } else {
      ASSERT_EQ(result, Add::kInserted) << from << "->" << to;
      naive[from].push_back(to);
      ++inserted;
    }
    ASSERT_TRUE(g.order_consistent()) << "after " << i << " operations";
  }
  EXPECT_GT(inserted, 100u);
  EXPECT_GT(rejected, 100u);
}

}  // namespace
}  // namespace ibvs
