#include <gtest/gtest.h>

#include <map>
#include <set>

#include "cloud/orchestrator.hpp"
#include "fabric/trace.hpp"
#include "tests/helpers.hpp"

namespace ibvs {
namespace {

using cloud::CloudOrchestrator;
using cloud::Placement;

struct CloudTest : ::testing::Test {
  test::VirtualSubnet s =
      test::VirtualSubnet::small(core::LidScheme::kDynamic);

  void SetUp() override { s.vsf->boot(); }
};

TEST_F(CloudTest, FirstFitPacks) {
  CloudOrchestrator orch(*s.vsf, Placement::kFirstFit);
  const auto vms = orch.launch_vms(5);
  // 4 VFs per hypervisor: the first four land on hyp 0, the fifth on hyp 1.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(s.vsf->vm(vms[i]).hypervisor, 0u);
  }
  EXPECT_EQ(s.vsf->vm(vms[4]).hypervisor, 1u);
}

TEST_F(CloudTest, RoundRobinCycles) {
  CloudOrchestrator orch(*s.vsf, Placement::kRoundRobin);
  const auto vms = orch.launch_vms(8);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(s.vsf->vm(vms[i]).hypervisor, i % 8);
  }
}

TEST_F(CloudTest, SpreadBalances) {
  CloudOrchestrator orch(*s.vsf, Placement::kSpread);
  orch.launch_vms(16);
  // 16 VMs over 8 hypervisors: exactly two each.
  std::map<std::size_t, int> per_hyp;
  for (auto id : s.vsf->active_vm_ids()) {
    ++per_hyp[s.vsf->vm(core::VmHandle{id}).hypervisor];
  }
  for (const auto& [h, count] : per_hyp) EXPECT_EQ(count, 2);
}

TEST_F(CloudTest, LaunchBeyondCapacityThrows) {
  CloudOrchestrator orch(*s.vsf, Placement::kFirstFit);
  orch.launch_vms(32);  // 8 hyps x 4 VFs
  EXPECT_THROW(orch.launch_vms(1), std::invalid_argument);
}

TEST_F(CloudTest, MigrationFlowTimeline) {
  cloud::FlowTiming timing;
  timing.detach_vf_s = 0.4;
  timing.attach_vf_s = 0.6;
  timing.vm_memory_gb = 4.0;
  timing.memory_copy_gbps = 8.0;
  CloudOrchestrator orch(*s.vsf, Placement::kFirstFit, timing);
  const auto vms = orch.launch_vms(1);
  const auto report = orch.migrate(vms[0], 5);
  EXPECT_DOUBLE_EQ(report.detach_s, 0.4);
  EXPECT_DOUBLE_EQ(report.attach_s, 0.6);
  EXPECT_DOUBLE_EQ(report.copy_s, 4.0);  // 4 GB at 8 Gbps = 4 s
  EXPECT_GT(report.reconfig_s, 0.0);
  EXPECT_LT(report.reconfig_s, 0.01);  // SMPs are microseconds, not seconds
  EXPECT_NEAR(report.total_s(), report.detach_s + report.copy_s +
                  report.signal_s + report.reconfig_s + report.attach_s,
              1e-12);
  EXPECT_EQ(s.vsf->vm(vms[0]).hypervisor, 5u);
}

TEST_F(CloudTest, PredictedSetMatchesExecutedDeterministicSet) {
  CloudOrchestrator orch(*s.vsf, Placement::kFirstFit);
  const auto vms = orch.launch_vms(1);
  const auto predicted = orch.predict_update_set(vms[0], 6);
  const auto report = orch.migrate(vms[0], 6);
  EXPECT_EQ(predicted.size(), report.network.reconfig.switches_updated);
}

TEST_F(CloudTest, ParallelPlanKeepsRoundsDisjoint) {
  CloudOrchestrator orch(*s.vsf, Placement::kRoundRobin);
  const auto vms = orch.launch_vms(4);
  // Hypervisors 0-2 share leaf 0, 3-5 leaf 1: two intra-leaf moves on
  // different leaves (disjoint under minimal reconfiguration) plus one
  // cross-leaf move.
  std::vector<cloud::MigrationRequest> requests{
      {vms[0], 1},  // leaf 0 -> leaf 0
      {vms[3], 4},  // leaf 1 -> leaf 1
      {vms[2], 7},  // leaf 0 -> leaf 2 (wide)
  };
  const auto mode = core::ReconfigMode::kMinimal;
  const auto plan = orch.plan_parallel(requests, mode);
  // Validate disjointness within every round.
  for (const auto& round : plan.rounds) {
    std::set<routing::SwitchIdx> seen;
    for (const auto& request : round) {
      for (auto sw : orch.predict_update_set(request.vm,
                                             request.dst_hypervisor, mode)) {
        EXPECT_TRUE(seen.insert(sw).second)
            << "switch " << sw << " shared within a round";
      }
    }
  }
  // The two intra-leaf migrations must share a round.
  ASSERT_FALSE(plan.rounds.empty());
  EXPECT_LT(plan.num_rounds(), requests.size());
}

TEST_F(CloudTest, ExecutePlanIsFasterThanSerial) {
  CloudOrchestrator orch(*s.vsf, Placement::kRoundRobin);
  const auto vms = orch.launch_vms(4);
  std::vector<cloud::MigrationRequest> requests{
      {vms[0], 1},  // intra leaf 0
      {vms[3], 4},  // intra leaf 1
  };
  core::MigrationOptions minimal;
  minimal.mode = core::ReconfigMode::kMinimal;
  const auto plan = orch.plan_parallel(requests, minimal.mode);
  ASSERT_EQ(plan.num_rounds(), 1u);
  const auto exec = orch.execute(plan, minimal);
  EXPECT_EQ(exec.reports.size(), 2u);
  EXPECT_LT(exec.elapsed_s, exec.serial_s);
  // All VMs still reachable.
  for (auto id : s.vsf->active_vm_ids()) {
    EXPECT_TRUE(fabric::all_reach(s.fabric, s.pf_nodes(),
                                  s.vsf->vm(core::VmHandle{id}).lid));
  }
}

TEST_F(CloudTest, IntraLeafMigrationsOnDistinctLeavesShareARound) {
  // §VI-D: as many concurrent migrations as there are leaf switches.
  CloudOrchestrator orch(*s.vsf, Placement::kRoundRobin);
  const auto vms = orch.launch_vms(8);  // one per hypervisor, 2 per leaf
  core::MigrationOptions minimal;
  minimal.mode = core::ReconfigMode::kMinimal;
  // Three intra-leaf migrations on three distinct leaves: hypervisors 0-2
  // share leaf 0, 3-5 leaf 1, 6-7 leaf 2.
  std::vector<cloud::MigrationRequest> requests{
      {vms[0], 1},
      {vms[3], 4},
      {vms[6], 7},
  };
  const auto plan = orch.plan_parallel(requests, minimal.mode);
  EXPECT_EQ(plan.num_rounds(), 1u);
  const auto exec = orch.execute(plan, minimal);
  EXPECT_EQ(exec.reports.size(), 3u);
  for (const auto& report : exec.reports) {
    EXPECT_TRUE(report.network.intra_leaf);
    EXPECT_EQ(report.network.reconfig.switches_updated, 1u);
  }
}

}  // namespace
}  // namespace ibvs
