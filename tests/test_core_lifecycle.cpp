// VM lifecycle under both vSwitch LID schemes (§V-A, §V-B).
#include <gtest/gtest.h>

#include "fabric/trace.hpp"
#include "routing/verify.hpp"
#include "tests/helpers.hpp"

namespace ibvs {
namespace {

using core::LidScheme;

class LifecycleTest : public ::testing::TestWithParam<LidScheme> {};

TEST_P(LifecycleTest, BootAssignsPerScheme) {
  auto s = test::VirtualSubnet::small(GetParam());
  const auto report = s.vsf->boot();
  // 6 switches + 8 PFs + 1 SM node = 15 always; prepopulated adds 8*4 VFs.
  const std::size_t base = 6 + 8 + 1;
  if (GetParam() == LidScheme::kPrepopulated) {
    EXPECT_EQ(s.sm->lids().count(), base + 32);
    for (const auto& hyp : s.hyps) {
      for (NodeId vf : hyp.vfs) {
        EXPECT_TRUE(s.fabric.node(vf).lid().valid());
      }
    }
  } else {
    EXPECT_EQ(s.sm->lids().count(), base);
  }
  EXPECT_GT(report.distribution.smps, 0u);
  EXPECT_TRUE(routing::verify_routing(s.sm->routing_result()).ok);
}

TEST_P(LifecycleTest, CreateVmIsReachableFromEveryPf) {
  auto s = test::VirtualSubnet::small(GetParam());
  s.vsf->boot();
  const auto report = s.vsf->create_vm(2);
  EXPECT_TRUE(report.vm.valid());
  EXPECT_TRUE(report.lid.valid());
  EXPECT_TRUE(fabric::all_reach(s.fabric, s.pf_nodes(), report.lid));
  // And the VM's VF node actually owns the LID.
  EXPECT_EQ(s.fabric.node(s.vsf->vm_node(report.vm)).lid(), report.lid);
}

TEST_P(LifecycleTest, CreateCostsMatchScheme) {
  auto s = test::VirtualSubnet::small(GetParam());
  s.vsf->boot();
  const auto report = s.vsf->create_vm(0);
  if (GetParam() == LidScheme::kPrepopulated) {
    // Paths were precomputed at boot: starting a VM sends no LFT SMPs.
    EXPECT_EQ(report.lft_smps, 0u);
  } else {
    // One SMP per physical switch to copy the PF entry (§V-B).
    EXPECT_GT(report.lft_smps, 0u);
    EXPECT_LE(report.lft_smps, 6u);
    EXPECT_GT(report.time_us, 0.0);
  }
}

TEST_P(LifecycleTest, VmsGetDistinctLidsAndGuids) {
  auto s = test::VirtualSubnet::small(GetParam());
  s.vsf->boot();
  std::set<std::uint16_t> lids;
  std::set<std::uint64_t> guids;
  for (int i = 0; i < 8; ++i) {
    const auto r = s.vsf->create_vm();
    lids.insert(r.lid.value());
    guids.insert(s.vsf->vm(r.vm).vguid.value());
  }
  EXPECT_EQ(lids.size(), 8u);
  EXPECT_EQ(guids.size(), 8u);
  EXPECT_EQ(s.vsf->active_vms(), 8u);
}

TEST_P(LifecycleTest, DestroyFreesTheSlot) {
  auto s = test::VirtualSubnet::small(GetParam());
  s.vsf->boot();
  const auto a = s.vsf->create_vm(1);
  s.vsf->destroy_vm(a.vm);
  EXPECT_EQ(s.vsf->active_vms(), 0u);
  EXPECT_THROW((void)s.vsf->vm(a.vm), std::invalid_argument);
  // The slot is reusable.
  const auto b = s.vsf->create_vm(1);
  EXPECT_TRUE(b.vm.valid());
  if (GetParam() == LidScheme::kDynamic) {
    // Dynamic: the released LID is recycled for the next VM.
    EXPECT_EQ(b.lid, a.lid);
  }
}

TEST_P(LifecycleTest, CapacityExhaustionThrows) {
  auto s = test::VirtualSubnet::small(GetParam(), 2, 2);  // 2 hyps x 2 VFs
  s.vsf->boot();
  for (int i = 0; i < 4; ++i) s.vsf->create_vm();
  EXPECT_THROW(s.vsf->create_vm(), std::invalid_argument);
  EXPECT_THROW(s.vsf->create_vm(0), std::invalid_argument);
}

TEST_P(LifecycleTest, FindFreeHypervisorHonoursExclude) {
  auto s = test::VirtualSubnet::small(GetParam(), 2, 1);
  s.vsf->boot();
  const auto h = s.vsf->find_free_hypervisor(std::size_t{0});
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(*h, 1u);
  s.vsf->create_vm(1);
  EXPECT_FALSE(s.vsf->find_free_hypervisor(std::size_t{0}).has_value());
}

INSTANTIATE_TEST_SUITE_P(
    BothSchemes, LifecycleTest,
    ::testing::Values(LidScheme::kPrepopulated, LidScheme::kDynamic),
    [](const auto& info) {
      return info.param == LidScheme::kPrepopulated ? "prepopulated"
                                                    : "dynamic";
    });

TEST(LifecycleGuards, OperationsRequireBoot) {
  auto s = test::VirtualSubnet::small(LidScheme::kDynamic);
  EXPECT_THROW(s.vsf->create_vm(), std::invalid_argument);
  s.vsf->boot();
  EXPECT_THROW(s.vsf->boot(), std::invalid_argument);
}

TEST(LifecycleGuards, DynamicVmLidFollowsPfPath) {
  // §V-B invariant: a dynamically assigned VM LID is forwarded exactly like
  // its hypervisor's PF LID on every switch.
  auto s = test::VirtualSubnet::small(LidScheme::kDynamic);
  s.vsf->boot();
  const auto r = s.vsf->create_vm(3);
  const Lid pf = s.fabric.node(s.hyps[3].pf).lid();
  const auto& routing = s.sm->routing_result();
  for (routing::SwitchIdx i = 0; i < routing.graph.num_switches(); ++i) {
    EXPECT_EQ(routing.lfts[i].get(r.lid), routing.lfts[i].get(pf));
  }
}

}  // namespace
}  // namespace ibvs
