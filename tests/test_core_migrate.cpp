// Live migration and the dynamic reconfiguration method (§V-C, §VI).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "fabric/trace.hpp"
#include "routing/verify.hpp"
#include "tests/helpers.hpp"
#include "util/rng.hpp"

namespace ibvs {
namespace {

using core::LidScheme;
using core::MigrationOptions;

class MigrateTest : public ::testing::TestWithParam<LidScheme> {
 protected:
  [[nodiscard]] static std::string scheme_name(LidScheme s) {
    return s == LidScheme::kPrepopulated ? "prepopulated" : "dynamic";
  }
};

TEST_P(MigrateTest, AddressesTravelWithTheVm) {
  auto s = test::VirtualSubnet::small(GetParam());
  s.vsf->boot();
  const auto created = s.vsf->create_vm(0);
  const Guid vguid = s.vsf->vm(created.vm).vguid;

  const auto report = s.vsf->migrate_vm(created.vm, 5);
  EXPECT_EQ(report.src_hypervisor, 0u);
  EXPECT_EQ(report.dst_hypervisor, 5u);
  // The headline property: LID, GUID (and hence GID) are unchanged.
  EXPECT_EQ(s.vsf->vm(created.vm).lid, created.lid);
  EXPECT_EQ(s.vsf->vm(created.vm).vguid, vguid);
  const NodeId new_vf = s.vsf->vm_node(created.vm);
  EXPECT_EQ(s.fabric.node(new_vf).lid(), created.lid);
  EXPECT_EQ(s.fabric.node(new_vf).alias_guid, vguid);
  EXPECT_EQ(s.vsf->vm(created.vm).hypervisor, 5u);
}

TEST_P(MigrateTest, ConnectivityRestoredForEveryone) {
  auto s = test::VirtualSubnet::small(GetParam());
  s.vsf->boot();
  std::vector<core::VmHandle> vms;
  for (int i = 0; i < 6; ++i) vms.push_back(s.vsf->create_vm().vm);

  s.vsf->migrate_vm(vms[0], 6);
  s.vsf->migrate_vm(vms[3], 7);

  for (const auto vm : vms) {
    const Lid lid = s.vsf->vm(vm).lid;
    EXPECT_TRUE(fabric::all_reach(s.fabric, s.pf_nodes(), lid))
        << "VM lid " << lid << " unreachable after migrations";
    // VM-to-VM connectivity as well.
    for (const auto other : vms) {
      if (other.id == vm.id) continue;
      const auto t = fabric::trace_unicast(
          s.fabric, s.vsf->vm_node(other), lid);
      EXPECT_TRUE(t.delivered());
    }
  }
}

TEST_P(MigrateTest, SmpBoundsOfTheMethod) {
  // §VI-B: m' in {1, 2}; at most 2n SMPs for swap, n for copy; n' <= n.
  auto s = test::VirtualSubnet::small(GetParam());
  s.vsf->boot();
  const auto created = s.vsf->create_vm(0);
  const auto report = s.vsf->migrate_vm(created.vm, 7);
  const auto& r = report.reconfig;
  EXPECT_GT(r.switches_updated, 0u);
  EXPECT_LE(r.switches_updated, r.switches_total);
  if (GetParam() == LidScheme::kPrepopulated) {
    EXPECT_LE(r.lft_smps, 2 * r.switches_updated);
  } else {
    EXPECT_LE(r.lft_smps, r.switches_updated);
  }
  EXPECT_GE(r.lft_smps, r.switches_updated);  // >= 1 SMP per touched switch
  EXPECT_EQ(r.hypervisor_lid_smps, 2u);
  EXPECT_EQ(r.guid_smps, 1u);
  EXPECT_GT(r.lft_time_us, 0.0);
}

TEST_P(MigrateTest, PathComputationIsNeverRun) {
  // The whole point: reconfiguration must not touch the routing engine.
  auto s = test::VirtualSubnet::small(GetParam());
  s.vsf->boot();
  const auto gen_routing = [&] {
    return s.sm->routing_result().compute_seconds;
  };
  const double pc_before = gen_routing();
  const auto created = s.vsf->create_vm(0);
  s.vsf->migrate_vm(created.vm, 4);
  EXPECT_EQ(gen_routing(), pc_before);  // same RoutingResult, no recompute
}

TEST_P(MigrateTest, MigrateBackAndForthIsStable) {
  auto s = test::VirtualSubnet::small(GetParam());
  s.vsf->boot();
  const auto created = s.vsf->create_vm(0);
  for (int round = 0; round < 4; ++round) {
    s.vsf->migrate_vm(created.vm, round % 2 == 0 ? 6 : 0);
    EXPECT_TRUE(fabric::all_reach(s.fabric, s.pf_nodes(), created.lid));
  }
  EXPECT_EQ(s.vsf->vm(created.vm).hypervisor, 0u);
  EXPECT_EQ(s.vsf->vm(created.vm).lid, created.lid);
}

TEST_P(MigrateTest, IntraLeafMinimalSetIsOneSwitch) {
  // §VI-D special case: hypervisors 0..2 share leaf 0; whatever the
  // topology, only that leaf *needs* updating.
  auto s = test::VirtualSubnet::small(GetParam());
  s.vsf->boot();
  const auto created = s.vsf->create_vm(0);
  const auto report = s.vsf->migrate_vm(created.vm, 1);
  EXPECT_TRUE(report.intra_leaf);
  EXPECT_EQ(report.minimal_set_size, 1u);
}

TEST_P(MigrateTest, MinimalModeUpdatesFewerOrEqualSwitches) {
  auto s1 = test::VirtualSubnet::small(GetParam());
  s1.vsf->boot();
  const auto v1 = s1.vsf->create_vm(0);
  const auto det = s1.vsf->migrate_vm(v1.vm, 7);

  auto s2 = test::VirtualSubnet::small(GetParam());
  s2.vsf->boot();
  const auto v2 = s2.vsf->create_vm(0);
  MigrationOptions opt;
  opt.mode = core::ReconfigMode::kMinimal;
  const auto min = s2.vsf->migrate_vm(v2.vm, 7, opt);

  EXPECT_LE(min.reconfig.switches_updated, det.reconfig.switches_updated);
  // Minimal mode must still restore connectivity.
  EXPECT_TRUE(fabric::all_reach(s2.fabric, s2.pf_nodes(), v2.lid));
}

TEST_P(MigrateTest, IntraLeafMinimalModeTouchesOnlyTheLeaf) {
  auto s = test::VirtualSubnet::small(GetParam());
  s.vsf->boot();
  const auto created = s.vsf->create_vm(0);
  MigrationOptions opt;
  opt.mode = core::ReconfigMode::kMinimal;
  const auto report = s.vsf->migrate_vm(created.vm, 2, opt);
  EXPECT_TRUE(report.intra_leaf);
  EXPECT_EQ(report.reconfig.switches_updated, 1u);
  EXPECT_TRUE(fabric::all_reach(s.fabric, s.pf_nodes(), created.lid));
}

TEST_P(MigrateTest, DrainAddsOneSmpPerUpdatedSwitch) {
  auto s = test::VirtualSubnet::small(GetParam());
  s.vsf->boot();
  const auto created = s.vsf->create_vm(0);
  MigrationOptions opt;
  opt.drain_first = true;
  const auto report = s.vsf->migrate_vm(created.vm, 7, opt);
  EXPECT_EQ(report.reconfig.drain_smps, report.reconfig.switches_updated);
  EXPECT_GT(report.reconfig.drain_time_us, 0.0);
  EXPECT_TRUE(fabric::all_reach(s.fabric, s.pf_nodes(), created.lid));
}

TEST_P(MigrateTest, DestinationRoutingIsUsedByDefault) {
  auto s = test::VirtualSubnet::small(GetParam());
  s.vsf->boot();
  const auto created = s.vsf->create_vm(0);
  const auto before = s.sm->transport().counters().directed;
  s.vsf->migrate_vm(created.vm, 7);
  // Eq. (5): migration SMPs go destination routed; no new directed SMPs.
  EXPECT_EQ(s.sm->transport().counters().directed, before);

  MigrationOptions opt;
  opt.smp_routing = SmpRouting::kDirected;
  s.vsf->migrate_vm(created.vm, 0, opt);
  EXPECT_GT(s.sm->transport().counters().directed, before);
}

TEST_P(MigrateTest, MigrationErrors) {
  auto s = test::VirtualSubnet::small(GetParam(), 3, 1);
  s.vsf->boot();
  const auto a = s.vsf->create_vm(0);
  const auto b = s.vsf->create_vm(1);
  EXPECT_THROW(s.vsf->migrate_vm(a.vm, 0), std::invalid_argument);  // self
  EXPECT_THROW(s.vsf->migrate_vm(a.vm, 1), std::invalid_argument);  // full
  EXPECT_THROW(s.vsf->migrate_vm(core::VmHandle{999}, 2),
               std::invalid_argument);
  (void)b;
}

TEST_P(MigrateTest, RandomChurnKeepsSubnetConsistent) {
  // Property sweep: a random create/destroy/migrate sequence never breaks
  // reachability of any active VM, under either scheme.
  auto s = test::VirtualSubnet::small(GetParam());
  s.vsf->boot();
  SplitMix64 rng(GetParam() == LidScheme::kPrepopulated ? 101 : 202);
  std::vector<core::VmHandle> vms;
  for (int step = 0; step < 60; ++step) {
    const auto dice = rng.below(10);
    if (dice < 4 || vms.empty()) {
      if (s.vsf->find_free_hypervisor()) {
        vms.push_back(s.vsf->create_vm().vm);
      }
    } else if (dice < 6) {
      const auto idx = rng.below(vms.size());
      s.vsf->destroy_vm(vms[idx]);
      vms.erase(vms.begin() + static_cast<std::ptrdiff_t>(idx));
    } else {
      const auto idx = rng.below(vms.size());
      const auto current = s.vsf->vm(vms[idx]).hypervisor;
      const auto dst = s.vsf->find_free_hypervisor(current);
      if (dst) s.vsf->migrate_vm(vms[idx], *dst);
    }
    for (const auto vm : vms) {
      ASSERT_TRUE(
          fabric::all_reach(s.fabric, s.pf_nodes(), s.vsf->vm(vm).lid))
          << "step " << step;
    }
  }
}

TEST_P(MigrateTest, WorksOnRingTopologyToo) {
  // The method is topology agnostic: nothing fat-tree-specific.
  auto s = test::VirtualSubnet::ring(GetParam());
  s.vsf->boot();
  const auto created = s.vsf->create_vm(0);
  const auto report = s.vsf->migrate_vm(created.vm, 3);
  EXPECT_GT(report.reconfig.switches_updated, 0u);
  EXPECT_TRUE(fabric::all_reach(s.fabric, s.pf_nodes(), created.lid));
}

INSTANTIATE_TEST_SUITE_P(
    BothSchemes, MigrateTest,
    ::testing::Values(LidScheme::kPrepopulated, LidScheme::kDynamic),
    [](const auto& info) {
      return info.param == LidScheme::kPrepopulated ? "prepopulated"
                                                    : "dynamic";
    });

// --- Scheme-specific behaviours. ---

TEST(PrepopulatedMigrate, LidsActuallySwap) {
  auto s = test::VirtualSubnet::small(LidScheme::kPrepopulated);
  s.vsf->boot();
  const auto created = s.vsf->create_vm(0);
  const NodeId old_vf = s.vsf->vm_node(created.vm);
  const Lid old_vf_lid = created.lid;
  // Destination VF 0 on hypervisor 7 currently holds some LID.
  const Lid dst_vf_lid = s.fabric.node(s.hyps[7].vfs[0]).lid();

  const auto report = s.vsf->migrate_vm(created.vm, 7);
  EXPECT_EQ(report.swapped_lid, dst_vf_lid);
  // VM LID now on the destination VF; the destination's old LID moved back
  // to the vacated source VF — LID count is conserved.
  EXPECT_EQ(s.fabric.node(s.hyps[7].vfs[0]).lid(), old_vf_lid);
  EXPECT_EQ(s.fabric.node(old_vf).lid(), dst_vf_lid);
  // The swapped-back LID is reachable as well (it is a VF somebody may use).
  EXPECT_TRUE(fabric::all_reach(s.fabric, s.pf_nodes(), dst_vf_lid));
}

TEST(PrepopulatedMigrate, SwapPreservesPerPortEntryCounts) {
  // The deterministic swap preserves the initial balancing: on every
  // switch, the multiset of egress ports over all LIDs is unchanged.
  auto s = test::VirtualSubnet::small(LidScheme::kPrepopulated);
  s.vsf->boot();
  const auto& routing = s.sm->routing_result();
  std::vector<std::map<PortNum, std::size_t>> before(
      routing.graph.num_switches());
  for (routing::SwitchIdx i = 0; i < routing.graph.num_switches(); ++i) {
    for (const auto& t : routing.graph.targets) {
      ++before[i][routing.lfts[i].get(t.lid)];
    }
  }
  const auto created = s.vsf->create_vm(0);
  s.vsf->migrate_vm(created.vm, 7);
  for (routing::SwitchIdx i = 0; i < routing.graph.num_switches(); ++i) {
    std::map<PortNum, std::size_t> after;
    for (const auto& t : routing.graph.targets) {
      ++after[routing.lfts[i].get(t.lid)];
    }
    EXPECT_EQ(after, before[i]) << "switch " << i;
  }
}

TEST(PrepopulatedMigrate, SameBlockSwapCostsOneSmpPerSwitch) {
  // Fig. 5: when both LIDs fall in the same 64-entry block, one SMP per
  // switch suffices. With few hypervisors every LID is < 64 here.
  auto s = test::VirtualSubnet::small(LidScheme::kPrepopulated, 4, 2);
  s.vsf->boot();
  ASSERT_LE(s.sm->lids().top_lid().value(), 63u);
  const auto created = s.vsf->create_vm(0);
  const auto report = s.vsf->migrate_vm(created.vm, 3);
  EXPECT_EQ(report.reconfig.lft_smps, report.reconfig.switches_updated);
}

TEST(PrepopulatedMigrate, CrossBlockSwapCostsTwoSmpsPerSwitch) {
  // Force the two LIDs into different blocks by moving the VM LID above 63.
  auto s = test::VirtualSubnet::small(LidScheme::kPrepopulated, 8, 8);
  s.vsf->boot();
  ASSERT_GT(s.sm->lids().top_lid().value(), 63u);
  // VM on hypervisor 0, VF 0 -> low LID; find a destination whose first
  // free VF LID lives in another block.
  const auto created = s.vsf->create_vm(0);
  ASSERT_LT(lft_block_of(created.lid), lft_block_of(
      s.fabric.node(s.hyps[7].vfs.back()).lid()));
  // Fill hypervisor 7's low-LID VFs so the free VF is the last one.
  std::vector<core::VmHandle> fillers;
  for (std::size_t i = 0; i + 1 < s.hyps[7].vfs.size(); ++i) {
    fillers.push_back(s.vsf->create_vm(7).vm);
  }
  const auto report = s.vsf->migrate_vm(created.vm, 7);
  ASSERT_NE(lft_block_of(report.vm_lid), lft_block_of(report.swapped_lid));
  // Every updated switch needed exactly two block writes.
  EXPECT_EQ(report.reconfig.lft_smps, 2 * report.reconfig.switches_updated);
}

TEST(DynamicMigrate, CopiedEntriesEqualDestinationPf) {
  auto s = test::VirtualSubnet::small(LidScheme::kDynamic);
  s.vsf->boot();
  const auto created = s.vsf->create_vm(0);
  s.vsf->migrate_vm(created.vm, 6);
  const Lid pf = s.fabric.node(s.hyps[6].pf).lid();
  const auto& routing = s.sm->routing_result();
  for (routing::SwitchIdx i = 0; i < routing.graph.num_switches(); ++i) {
    EXPECT_EQ(routing.lfts[i].get(created.lid), routing.lfts[i].get(pf));
  }
}

TEST(DynamicMigrate, AlwaysSingleSmpPerSwitch) {
  auto s = test::VirtualSubnet::small(LidScheme::kDynamic, 8, 8);
  s.vsf->boot();
  const auto created = s.vsf->create_vm(0);
  const auto report = s.vsf->migrate_vm(created.vm, 7);
  // Copying touches one LID -> one block -> one SMP per switch, always
  // (§V-C2), regardless of where LIDs sit in the blocks.
  EXPECT_EQ(report.reconfig.lft_smps, report.reconfig.switches_updated);
}

TEST(PrepopulatedMigrate, MinimalModeChurnKeepsEveryVfLidDeliverable) {
  // Regression: each LID of a swap must be updated on *its own* minimal
  // set. Applying one LID's new entries on the union of both sets creates
  // unvalidated old/new hybrids, which slowly corrupted the routes of
  // *free* VF LIDs (nobody traced them) until a later migration picked one
  // as destination and found its entries looping.
  auto s = test::VirtualSubnet::small(LidScheme::kPrepopulated);
  s.vsf->boot();
  SplitMix64 rng(4711);
  std::vector<core::VmHandle> vms;
  for (int i = 0; i < 12; ++i) vms.push_back(s.vsf->create_vm().vm);
  MigrationOptions minimal;
  minimal.mode = core::ReconfigMode::kMinimal;
  for (int i = 0; i < 40; ++i) {
    const auto vm = vms[rng.below(vms.size())];
    const auto dst = s.vsf->find_free_hypervisor(s.vsf->vm(vm).hypervisor);
    if (!dst) continue;
    s.vsf->migrate_vm(vm, *dst, minimal);
    // Every VF LID in the subnet — used or free — must stay deliverable.
    for (const auto& hyp : s.hyps) {
      for (NodeId vf : hyp.vfs) {
        const Lid lid = s.fabric.node(vf).lid();
        ASSERT_TRUE(lid.valid());
        ASSERT_TRUE(fabric::all_reach(s.fabric, s.pf_nodes(), lid))
            << "VF lid " << lid << " broken after migration " << i;
      }
    }
  }
}

TEST(FullReconfigureBaseline, MatchesSweepAndRestoresInvariants) {
  auto s = test::VirtualSubnet::small(LidScheme::kPrepopulated);
  s.vsf->boot();
  const auto v = s.vsf->create_vm(0);
  s.vsf->migrate_vm(v.vm, 7);
  // A traditional full reconfiguration from scratch also works — and costs
  // a full distribution, unlike the method's 1-2 SMPs per switch.
  const auto report = s.vsf->full_reconfigure();
  EXPECT_GT(report.path_computation_seconds, 0.0);
  EXPECT_TRUE(routing::verify_routing(s.sm->routing_result()).ok);
  EXPECT_TRUE(fabric::all_reach(s.fabric, s.pf_nodes(), v.lid));
}

}  // namespace
}  // namespace ibvs
