// Credit-based flow simulation: deadlocks become observable (§VI-C).
#include <gtest/gtest.h>

#include "fabric/credit_sim.hpp"
#include "tests/helpers.hpp"
#include "topology/irregular.hpp"

namespace ibvs {
namespace {

using fabric::CreditSimConfig;
using fabric::FlowSpec;
using routing::EngineKind;

struct RoutedRing {
  Fabric fabric;
  LidMap lids;
  std::vector<NodeId> hosts;
  routing::RoutingResult result;

  explicit RoutedRing(EngineKind engine, std::size_t switches = 6) {
    const auto built = topology::build_ring(fabric, switches, 1, 8);
    hosts = topology::attach_hosts(fabric, built.host_slots);
    for (NodeId sw : fabric.switch_ids()) lids.assign_next(fabric, sw, 0);
    for (NodeId host : hosts) lids.assign_next(fabric, host, 1);
    result = routing::make_engine(engine)->compute(fabric, lids);
    install();
  }

  void install() {
    for (routing::SwitchIdx i = 0; i < result.graph.num_switches(); ++i) {
      Node& sw = fabric.node(result.graph.switches[i]);
      for (std::size_t b = 0; b < result.lfts[i].block_count(); ++b) {
        sw.lft.set_block(b, result.lfts[i].block(b));
      }
    }
  }

  /// All-to-all host flows, `packets` each, with the routing's VLs.
  std::vector<FlowSpec> all_to_all(std::size_t packets) const {
    std::vector<FlowSpec> flows;
    for (NodeId src : hosts) {
      for (NodeId dst : hosts) {
        if (src == dst) continue;
        FlowSpec f;
        f.src = src;
        f.dst = fabric.node(dst).lid();
        f.packets = packets;
        const auto src_attach = fabric.physical_attachment(src);
        const auto dst_attach = fabric.physical_attachment(dst);
        f.vl = result.vl_for(result.graph.dense(src_attach->first), f.dst,
                             result.graph.dense(dst_attach->first));
        flows.push_back(f);
      }
    }
    return flows;
  }
};

TEST(CreditSim, FatTreeMinHopDrains) {
  auto s = test::PhysicalSubnet::small_fat_tree();
  s.sm->full_sweep();
  std::vector<FlowSpec> flows;
  for (NodeId src : s.hosts) {
    for (NodeId dst : s.hosts) {
      if (src != dst) {
        flows.push_back(FlowSpec{src, s.fabric.node(dst).lid(), 3, 0});
      }
    }
  }
  const auto report = fabric::simulate_flows(s.fabric, flows);
  EXPECT_TRUE(report.all_delivered());
  EXPECT_EQ(report.delivered, flows.size() * 3);
  EXPECT_FALSE(report.deadlocked);
}

TEST(CreditSim, MinHopRingDeadlocksOnOneVl) {
  // The canonical credit deadlock: minimal routing on a ring, single VL,
  // all-to-all traffic. The analyzer predicts a CDG cycle; the simulator
  // actually wedges.
  RoutedRing ring(EngineKind::kMinHop, /*switches=*/7);
  auto flows = ring.all_to_all(20);
  for (auto& f : flows) f.vl = 0;  // force everything onto one lane
  CreditSimConfig config;
  config.credits_per_channel = 1;
  const auto report = fabric::simulate_flows(ring.fabric, flows, config);
  EXPECT_TRUE(report.deadlocked);
  EXPECT_GT(report.stuck, 0u);
}

TEST(CreditSim, DfssspVlsPreventTheRingDeadlock) {
  RoutedRing ring(EngineKind::kDfsssp, /*switches=*/7);
  ASSERT_GT(ring.result.num_vls, 1u);
  const auto flows = ring.all_to_all(20);
  CreditSimConfig config;
  config.credits_per_channel = 1;
  config.num_vls = ring.result.num_vls;
  const auto report = fabric::simulate_flows(ring.fabric, flows, config);
  EXPECT_FALSE(report.deadlocked);
  EXPECT_TRUE(report.all_delivered());
}

TEST(CreditSim, UpDownAvoidsTheDeadlockWithoutVls) {
  RoutedRing ring(EngineKind::kUpDown, /*switches=*/7);
  const auto flows = ring.all_to_all(20);
  CreditSimConfig config;
  config.credits_per_channel = 1;
  const auto report = fabric::simulate_flows(ring.fabric, flows, config);
  EXPECT_FALSE(report.deadlocked);
  EXPECT_TRUE(report.all_delivered());
}

TEST(CreditSim, LashLayersPreventTheRingDeadlock) {
  RoutedRing ring(EngineKind::kLash, /*switches=*/7);
  ASSERT_GT(ring.result.num_vls, 1u);
  const auto flows = ring.all_to_all(20);
  CreditSimConfig config;
  config.credits_per_channel = 1;
  config.num_vls = ring.result.num_vls;
  const auto report = fabric::simulate_flows(ring.fabric, flows, config);
  EXPECT_FALSE(report.deadlocked);
  EXPECT_TRUE(report.all_delivered());
}

TEST(CreditSim, IbTimeoutResolvesTheDeadlock) {
  // §VI-C: "deadlocks ... will be resolved by IB timeouts". Same wedge as
  // above, but with a timeout: the fabric drains, at the price of drops.
  RoutedRing ring(EngineKind::kMinHop, /*switches=*/7);
  auto flows = ring.all_to_all(20);
  for (auto& f : flows) f.vl = 0;
  CreditSimConfig config;
  config.credits_per_channel = 1;
  config.timeout_steps = 50;
  const auto report = fabric::simulate_flows(ring.fabric, flows, config);
  EXPECT_FALSE(report.deadlocked);
  EXPECT_FALSE(report.exhausted);
  EXPECT_GT(report.dropped_timeout, 0u);
  EXPECT_GT(report.delivered, 0u);
  EXPECT_EQ(report.delivered + report.dropped_timeout +
                report.dropped_unrouted,
            report.injected);
}

TEST(CreditSim, CraftedForwardingCycleWedges) {
  // A LID routed in a full circle (what a broken transition state could
  // produce): enough packets fill the cycle's buffers and wedge it.
  RoutedRing ring(EngineKind::kUpDown);
  const Lid victim = ring.fabric.node(ring.hosts[0]).lid();
  const auto& g = ring.result.graph;
  for (routing::SwitchIdx s = 0; s < g.num_switches(); ++s) {
    Node& sw = ring.fabric.node(g.switches[s]);
    // Every switch forwards the victim LID clockwise (its last port).
    sw.lft.set(victim, static_cast<PortNum>(sw.num_ports()));
  }
  std::vector<FlowSpec> flows;
  for (std::size_t i = 1; i < ring.hosts.size(); ++i) {
    flows.push_back(FlowSpec{ring.hosts[i], victim, 10, 0});
  }
  CreditSimConfig config;
  config.credits_per_channel = 1;
  const auto report = fabric::simulate_flows(ring.fabric, flows, config);
  EXPECT_TRUE(report.deadlocked);
  EXPECT_EQ(report.delivered, 0u);
}

TEST(CreditSim, ReconfigurationMidFlightKeepsDelivering) {
  // Packets in flight while a migration's LFT updates land: the §V-C
  // reconfiguration on a fat-tree never wedges the fabric.
  auto s = test::VirtualSubnet::small(core::LidScheme::kDynamic);
  s.vsf->boot();
  const auto vm = s.vsf->create_vm(0);
  std::vector<FlowSpec> flows;
  for (const auto& hyp : s.hyps) {
    flows.push_back(FlowSpec{hyp.pf, vm.lid, 50, 0});
  }
  bool migrated = false;
  CreditSimConfig config;
  config.credits_per_channel = 2;
  config.timeout_steps = 64;  // IB timeouts cover the transient
  config.on_step = [&](std::uint64_t step) {
    if (step == 20 && !migrated) {
      migrated = true;
      s.vsf->migrate_vm(vm.vm, 7);
    }
  };
  const auto report = fabric::simulate_flows(s.fabric, flows, config);
  EXPECT_FALSE(report.deadlocked);
  EXPECT_FALSE(report.exhausted);
  EXPECT_TRUE(migrated);
  // Most packets arrive; a transient few may be dropped mid-swap, none may
  // linger forever.
  EXPECT_EQ(report.stuck, 0u);
  EXPECT_GT(report.delivered, report.injected / 2);
}

TEST(CreditSim, DeadlockFreeEnginesNeverWedgeOnRandomGraphs) {
  // Property sweep: on random irregular (cyclic) topologies, the
  // deadlock-free engines must drain an all-to-all workload with 1 credit
  // per channel — the strictest buffer budget.
  for (const std::uint64_t seed : {3ull, 11ull, 29ull}) {
    Fabric fabric;
    LidMap lids;
    const auto built = topology::build_irregular(
        fabric, topology::IrregularParams{.num_switches = 8,
                                          .hosts_per_switch = 1,
                                          .extra_links = 5,
                                          .radix = 10,
                                          .seed = seed});
    const auto hosts = topology::attach_hosts(fabric, built.host_slots);
    for (NodeId sw : fabric.switch_ids()) lids.assign_next(fabric, sw, 0);
    for (NodeId host : hosts) lids.assign_next(fabric, host, 1);

    for (const auto engine :
         {EngineKind::kUpDown, EngineKind::kDfsssp, EngineKind::kLash}) {
      auto result = routing::make_engine(engine)->compute(fabric, lids);
      for (routing::SwitchIdx i = 0; i < result.graph.num_switches(); ++i) {
        Node& sw = fabric.node(result.graph.switches[i]);
        for (std::size_t b = 0; b < result.lfts[i].block_count(); ++b) {
          sw.lft.set_block(b, result.lfts[i].block(b));
        }
      }
      std::vector<FlowSpec> flows;
      for (NodeId src : hosts) {
        for (NodeId dst : hosts) {
          if (src == dst) continue;
          FlowSpec f;
          f.src = src;
          f.dst = fabric.node(dst).lid();
          f.packets = 10;
          const auto sa = fabric.physical_attachment(src);
          const auto da = fabric.physical_attachment(dst);
          f.vl = result.vl_for(result.graph.dense(sa->first), f.dst,
                               result.graph.dense(da->first));
          flows.push_back(f);
        }
      }
      CreditSimConfig config;
      config.credits_per_channel = 1;
      config.num_vls = result.num_vls;
      const auto report = fabric::simulate_flows(fabric, flows, config);
      EXPECT_TRUE(report.all_delivered())
          << routing::to_string(engine) << " seed " << seed
          << (report.deadlocked ? " DEADLOCKED" : " incomplete");
    }
  }
}

TEST(CreditSim, ConfigValidation) {
  Fabric fabric;
  const NodeId sw = fabric.add_switch("sw", 4);
  const NodeId ca = fabric.add_ca("ca");
  fabric.connect(ca, 1, sw, 1);
  fabric.set_lid(ca, 1, Lid{1});
  CreditSimConfig bad;
  bad.credits_per_channel = 0;
  EXPECT_THROW(fabric::simulate_flows(fabric, {}, bad),
               std::invalid_argument);
  CreditSimConfig config;
  EXPECT_THROW(
      fabric::simulate_flows(fabric, {FlowSpec{sw, Lid{1}, 1, 0}}, config),
      std::invalid_argument);  // flows start at CAs
  EXPECT_THROW(
      fabric::simulate_flows(fabric, {FlowSpec{ca, Lid{1}, 1, 3}}, config),
      std::invalid_argument);  // VL out of range
}

TEST(CreditSim, LoopbackAndUnroutedCounting) {
  auto s = test::PhysicalSubnet::small_fat_tree();
  s.sm->full_sweep();
  // A destination LID nobody owns: counted as unrouted drops.
  std::vector<FlowSpec> flows{FlowSpec{s.hosts[0], Lid{4000}, 5, 0}};
  const auto report = fabric::simulate_flows(s.fabric, flows);
  EXPECT_EQ(report.dropped_unrouted, 5u);
  EXPECT_EQ(report.delivered, 0u);
  EXPECT_FALSE(report.deadlocked);
}

}  // namespace
}  // namespace ibvs
