// Credit-based flow simulation: deadlocks become observable (§VI-C).
#include <gtest/gtest.h>

#include "fabric/credit_sim.hpp"
#include "perf/int_collector.hpp"
#include "tests/helpers.hpp"
#include "topology/irregular.hpp"

namespace ibvs {
namespace {

using fabric::CreditSimConfig;
using fabric::FlowSpec;
using routing::EngineKind;

struct RoutedRing {
  Fabric fabric;
  LidMap lids;
  std::vector<NodeId> hosts;
  routing::RoutingResult result;

  explicit RoutedRing(EngineKind engine, std::size_t switches = 6) {
    const auto built = topology::build_ring(fabric, switches, 1, 8);
    hosts = topology::attach_hosts(fabric, built.host_slots);
    for (NodeId sw : fabric.switch_ids()) lids.assign_next(fabric, sw, 0);
    for (NodeId host : hosts) lids.assign_next(fabric, host, 1);
    result = routing::make_engine(engine)->compute(fabric, lids);
    install();
  }

  void install() {
    for (routing::SwitchIdx i = 0; i < result.graph.num_switches(); ++i) {
      Node& sw = fabric.node(result.graph.switches[i]);
      for (std::size_t b = 0; b < result.lfts[i].block_count(); ++b) {
        sw.lft.set_block(b, result.lfts[i].block(b));
      }
    }
  }

  /// All-to-all host flows, `packets` each, with the routing's VLs.
  std::vector<FlowSpec> all_to_all(std::size_t packets) const {
    std::vector<FlowSpec> flows;
    for (NodeId src : hosts) {
      for (NodeId dst : hosts) {
        if (src == dst) continue;
        FlowSpec f;
        f.src = src;
        f.dst = fabric.node(dst).lid();
        f.packets = packets;
        const auto src_attach = fabric.physical_attachment(src);
        const auto dst_attach = fabric.physical_attachment(dst);
        f.vl = result.vl_for(result.graph.dense(src_attach->first), f.dst,
                             result.graph.dense(dst_attach->first));
        flows.push_back(f);
      }
    }
    return flows;
  }
};

TEST(CreditSim, FatTreeMinHopDrains) {
  auto s = test::PhysicalSubnet::small_fat_tree();
  s.sm->full_sweep();
  std::vector<FlowSpec> flows;
  for (NodeId src : s.hosts) {
    for (NodeId dst : s.hosts) {
      if (src != dst) {
        flows.push_back(FlowSpec{src, s.fabric.node(dst).lid(), 3, 0});
      }
    }
  }
  const auto report = fabric::simulate_flows(s.fabric, flows);
  EXPECT_TRUE(report.all_delivered());
  EXPECT_EQ(report.delivered, flows.size() * 3);
  EXPECT_FALSE(report.deadlocked);
}

TEST(CreditSim, MinHopRingDeadlocksOnOneVl) {
  // The canonical credit deadlock: minimal routing on a ring, single VL,
  // all-to-all traffic. The analyzer predicts a CDG cycle; the simulator
  // actually wedges.
  RoutedRing ring(EngineKind::kMinHop, /*switches=*/7);
  auto flows = ring.all_to_all(20);
  for (auto& f : flows) f.vl = 0;  // force everything onto one lane
  CreditSimConfig config;
  config.credits_per_channel = 1;
  const auto report = fabric::simulate_flows(ring.fabric, flows, config);
  EXPECT_TRUE(report.deadlocked);
  EXPECT_GT(report.stuck, 0u);
}

TEST(CreditSim, DfssspVlsPreventTheRingDeadlock) {
  RoutedRing ring(EngineKind::kDfsssp, /*switches=*/7);
  ASSERT_GT(ring.result.num_vls, 1u);
  const auto flows = ring.all_to_all(20);
  CreditSimConfig config;
  config.credits_per_channel = 1;
  config.num_vls = ring.result.num_vls;
  const auto report = fabric::simulate_flows(ring.fabric, flows, config);
  EXPECT_FALSE(report.deadlocked);
  EXPECT_TRUE(report.all_delivered());
}

TEST(CreditSim, UpDownAvoidsTheDeadlockWithoutVls) {
  RoutedRing ring(EngineKind::kUpDown, /*switches=*/7);
  const auto flows = ring.all_to_all(20);
  CreditSimConfig config;
  config.credits_per_channel = 1;
  const auto report = fabric::simulate_flows(ring.fabric, flows, config);
  EXPECT_FALSE(report.deadlocked);
  EXPECT_TRUE(report.all_delivered());
}

TEST(CreditSim, LashLayersPreventTheRingDeadlock) {
  RoutedRing ring(EngineKind::kLash, /*switches=*/7);
  ASSERT_GT(ring.result.num_vls, 1u);
  const auto flows = ring.all_to_all(20);
  CreditSimConfig config;
  config.credits_per_channel = 1;
  config.num_vls = ring.result.num_vls;
  const auto report = fabric::simulate_flows(ring.fabric, flows, config);
  EXPECT_FALSE(report.deadlocked);
  EXPECT_TRUE(report.all_delivered());
}

TEST(CreditSim, IbTimeoutResolvesTheDeadlock) {
  // §VI-C: "deadlocks ... will be resolved by IB timeouts". Same wedge as
  // above, but with a timeout: the fabric drains, at the price of drops.
  RoutedRing ring(EngineKind::kMinHop, /*switches=*/7);
  auto flows = ring.all_to_all(20);
  for (auto& f : flows) f.vl = 0;
  CreditSimConfig config;
  config.credits_per_channel = 1;
  config.timeout_steps = 50;
  const auto report = fabric::simulate_flows(ring.fabric, flows, config);
  EXPECT_FALSE(report.deadlocked);
  EXPECT_FALSE(report.exhausted);
  EXPECT_GT(report.dropped_timeout, 0u);
  EXPECT_GT(report.delivered, 0u);
  EXPECT_EQ(report.delivered + report.dropped_timeout +
                report.dropped_unrouted,
            report.injected);
}

TEST(CreditSim, CraftedForwardingCycleWedges) {
  // A LID routed in a full circle (what a broken transition state could
  // produce): enough packets fill the cycle's buffers and wedge it.
  RoutedRing ring(EngineKind::kUpDown);
  const Lid victim = ring.fabric.node(ring.hosts[0]).lid();
  const auto& g = ring.result.graph;
  for (routing::SwitchIdx s = 0; s < g.num_switches(); ++s) {
    Node& sw = ring.fabric.node(g.switches[s]);
    // Every switch forwards the victim LID clockwise (its last port).
    sw.lft.set(victim, static_cast<PortNum>(sw.num_ports()));
  }
  std::vector<FlowSpec> flows;
  for (std::size_t i = 1; i < ring.hosts.size(); ++i) {
    flows.push_back(FlowSpec{ring.hosts[i], victim, 10, 0});
  }
  CreditSimConfig config;
  config.credits_per_channel = 1;
  const auto report = fabric::simulate_flows(ring.fabric, flows, config);
  EXPECT_TRUE(report.deadlocked);
  EXPECT_EQ(report.delivered, 0u);
}

TEST(CreditSim, ReconfigurationMidFlightKeepsDelivering) {
  // Packets in flight while a migration's LFT updates land: the §V-C
  // reconfiguration on a fat-tree never wedges the fabric.
  auto s = test::VirtualSubnet::small(core::LidScheme::kDynamic);
  s.vsf->boot();
  const auto vm = s.vsf->create_vm(0);
  std::vector<FlowSpec> flows;
  for (const auto& hyp : s.hyps) {
    flows.push_back(FlowSpec{hyp.pf, vm.lid, 50, 0});
  }
  bool migrated = false;
  CreditSimConfig config;
  config.credits_per_channel = 2;
  config.timeout_steps = 64;  // IB timeouts cover the transient
  config.on_step = [&](std::uint64_t step) {
    if (step == 20 && !migrated) {
      migrated = true;
      s.vsf->migrate_vm(vm.vm, 7);
    }
  };
  const auto report = fabric::simulate_flows(s.fabric, flows, config);
  EXPECT_FALSE(report.deadlocked);
  EXPECT_FALSE(report.exhausted);
  EXPECT_TRUE(migrated);
  // Most packets arrive; a transient few may be dropped mid-swap, none may
  // linger forever.
  EXPECT_EQ(report.stuck, 0u);
  EXPECT_GT(report.delivered, report.injected / 2);
}

TEST(CreditSim, DeadlockFreeEnginesNeverWedgeOnRandomGraphs) {
  // Property sweep: on random irregular (cyclic) topologies, the
  // deadlock-free engines must drain an all-to-all workload with 1 credit
  // per channel — the strictest buffer budget.
  for (const std::uint64_t seed : {3ull, 11ull, 29ull}) {
    Fabric fabric;
    LidMap lids;
    const auto built = topology::build_irregular(
        fabric, topology::IrregularParams{.num_switches = 8,
                                          .hosts_per_switch = 1,
                                          .extra_links = 5,
                                          .radix = 10,
                                          .seed = seed});
    const auto hosts = topology::attach_hosts(fabric, built.host_slots);
    for (NodeId sw : fabric.switch_ids()) lids.assign_next(fabric, sw, 0);
    for (NodeId host : hosts) lids.assign_next(fabric, host, 1);

    for (const auto engine :
         {EngineKind::kUpDown, EngineKind::kDfsssp, EngineKind::kLash}) {
      auto result = routing::make_engine(engine)->compute(fabric, lids);
      for (routing::SwitchIdx i = 0; i < result.graph.num_switches(); ++i) {
        Node& sw = fabric.node(result.graph.switches[i]);
        for (std::size_t b = 0; b < result.lfts[i].block_count(); ++b) {
          sw.lft.set_block(b, result.lfts[i].block(b));
        }
      }
      std::vector<FlowSpec> flows;
      for (NodeId src : hosts) {
        for (NodeId dst : hosts) {
          if (src == dst) continue;
          FlowSpec f;
          f.src = src;
          f.dst = fabric.node(dst).lid();
          f.packets = 10;
          const auto sa = fabric.physical_attachment(src);
          const auto da = fabric.physical_attachment(dst);
          f.vl = result.vl_for(result.graph.dense(sa->first), f.dst,
                               result.graph.dense(da->first));
          flows.push_back(f);
        }
      }
      CreditSimConfig config;
      config.credits_per_channel = 1;
      config.num_vls = result.num_vls;
      const auto report = fabric::simulate_flows(fabric, flows, config);
      EXPECT_TRUE(report.all_delivered())
          << routing::to_string(engine) << " seed " << seed
          << (report.deadlocked ? " DEADLOCKED" : " incomplete");
    }
  }
}

TEST(CreditSim, ConfigValidation) {
  Fabric fabric;
  const NodeId sw = fabric.add_switch("sw", 4);
  const NodeId ca = fabric.add_ca("ca");
  fabric.connect(ca, 1, sw, 1);
  fabric.set_lid(ca, 1, Lid{1});
  CreditSimConfig bad;
  bad.credits_per_channel = 0;
  EXPECT_THROW(fabric::simulate_flows(fabric, {}, bad),
               std::invalid_argument);
  CreditSimConfig config;
  EXPECT_THROW(
      fabric::simulate_flows(fabric, {FlowSpec{sw, Lid{1}, 1, 0}}, config),
      std::invalid_argument);  // flows start at CAs
  EXPECT_THROW(
      fabric::simulate_flows(fabric, {FlowSpec{ca, Lid{1}, 1, 3}}, config),
      std::invalid_argument);  // VL out of range
}

TEST(CreditSim, LoopbackAndUnroutedCounting) {
  auto s = test::PhysicalSubnet::small_fat_tree();
  s.sm->full_sweep();
  // A destination LID nobody owns: counted as unrouted drops.
  std::vector<FlowSpec> flows{FlowSpec{s.hosts[0], Lid{4000}, 5, 0}};
  const auto report = fabric::simulate_flows(s.fabric, flows);
  EXPECT_EQ(report.dropped_unrouted, 5u);
  EXPECT_EQ(report.delivered, 0u);
  EXPECT_FALSE(report.deadlocked);
}

// --- INT mode ---------------------------------------------------------

TEST(CreditSimInt, StacksDeliveredAndOverheadAccounted) {
  auto s = test::PhysicalSubnet::small_fat_tree();
  s.sm->full_sweep();
  std::vector<FlowSpec> flows;
  for (NodeId src : s.hosts) {
    for (NodeId dst : s.hosts) {
      if (src != dst) {
        flows.push_back(FlowSpec{src, s.fabric.node(dst).lid(), 3, 0});
      }
    }
  }
  perf::IntCollector collector;
  CreditSimConfig config;
  config.int_mode.enabled = true;  // sample_rate 1.0: every packet stacks
  config.int_mode.sink = &collector;
  const auto report = fabric::simulate_flows(s.fabric, flows, config);
  EXPECT_TRUE(report.all_delivered());
  EXPECT_EQ(report.int_sampled, report.injected);
  EXPECT_EQ(report.int_stacks_delivered, report.delivered);
  EXPECT_EQ(report.int_stacks_dropped, 0u);
  EXPECT_EQ(collector.stacks(), report.int_stacks_delivered);
  // Every path crosses at least one switch, so metadata crossed links.
  EXPECT_GT(report.int_overhead_dwords, 0u);
}

TEST(CreditSimInt, SamplingIsSeededAndDeterministic) {
  auto a = test::PhysicalSubnet::small_fat_tree();
  a.sm->full_sweep();
  std::vector<FlowSpec> flows;
  for (NodeId src : a.hosts) {
    for (NodeId dst : a.hosts) {
      if (src != dst) {
        flows.push_back(FlowSpec{src, a.fabric.node(dst).lid(), 4, 0});
      }
    }
  }
  const auto run = [&flows](test::PhysicalSubnet& s, std::uint64_t seed) {
    perf::IntCollector collector;
    CreditSimConfig config;
    config.int_mode.enabled = true;
    config.int_mode.sample_rate = 0.5;
    config.int_mode.seed = seed;
    config.int_mode.sink = &collector;
    const auto report = fabric::simulate_flows(s.fabric, flows, config);
    return std::pair{report.int_sampled,
                     collector.build_map(4).to_json()};
  };
  const auto first = run(a, 99);
  EXPECT_GT(first.first, 0u);
  EXPECT_LT(first.first, flows.size() * 4);  // 50%: neither none nor all
  auto b = test::PhysicalSubnet::small_fat_tree();
  b.sm->full_sweep();
  const auto second = run(b, 99);
  EXPECT_EQ(first.first, second.first);
  EXPECT_EQ(first.second, second.second);  // byte-identical map
}

/// Fault plane dropping every crossing that arrives at one node.
struct DropInto final : fabric::LinkFaultModel {
  NodeId victim;
  explicit DropInto(NodeId v) : victim(v) {}
  bool drop_on_link(NodeId, PortNum, NodeId to, PortNum) override {
    return to == victim;
  }
  double jitter_us(NodeId, PortNum, NodeId, PortNum) override { return 0; }
};

TEST(CreditSimInt, FaultedLinkShedsStackBeforeTheCollector) {
  auto s = test::PhysicalSubnet::small_fat_tree();
  s.sm->full_sweep();
  const NodeId victim = s.hosts[1];
  // Packets die on their final link; their INT stacks must die with them.
  std::vector<FlowSpec> flows{
      FlowSpec{s.hosts[0], s.fabric.node(victim).lid(), 5, 0}};
  DropInto faults(victim);
  perf::IntCollector collector;
  CreditSimConfig config;
  config.faults = &faults;
  config.int_mode.enabled = true;
  config.int_mode.sink = &collector;
  const auto report = fabric::simulate_flows(s.fabric, flows, config);
  EXPECT_EQ(report.delivered, 0u);
  EXPECT_EQ(report.dropped_faulted, 5u);
  EXPECT_EQ(report.int_sampled, 5u);
  EXPECT_EQ(report.int_stacks_dropped, 5u);
  EXPECT_EQ(report.int_stacks_delivered, 0u);
  EXPECT_EQ(collector.stacks(), 0u);  // nothing leaked to the sink
  // The receiver still attributes the loss: symbol errors at its port.
  const auto attach = s.fabric.physical_attachment(victim);
  ASSERT_TRUE(attach.has_value());
  EXPECT_EQ(s.fabric.node(victim).ports[1].counters.symbol_errors, 5u);
}

TEST(CreditSimInt, PmaAttributionIsUnchangedByIntMode) {
  // INT metadata rides inside data packets: it must not perturb scheduling,
  // waits, congestion marks, or fault attribution — only the data dwords.
  const auto build_flows = [](test::PhysicalSubnet& s) {
    std::vector<FlowSpec> flows;  // incast onto host 0 plus cross traffic
    const Lid hot = s.fabric.node(s.hosts[0]).lid();
    for (std::size_t i = 1; i < s.hosts.size(); ++i) {
      flows.push_back(FlowSpec{s.hosts[i], hot, 8, 0});
    }
    return flows;
  };
  const auto run = [&](bool int_on) {
    auto s = test::PhysicalSubnet::small_fat_tree();
    s.sm->full_sweep();
    DropInto faults(s.hosts[2]);
    auto flows = build_flows(s);
    flows.push_back(  // a flow that dies on a faulted link
        FlowSpec{s.hosts[3], s.fabric.node(s.hosts[2]).lid(), 4, 0});
    CreditSimConfig config;
    config.credits_per_channel = 1;
    config.faults = &faults;
    config.int_mode.enabled = int_on;
    const auto report = fabric::simulate_flows(s.fabric, flows, config);
    EXPECT_EQ(report.dropped_faulted, 4u);
    struct PortStats {
      std::uint32_t xmit_wait, xmit_data;
      std::uint16_t symbol_errors, congestion_marks;
    };
    std::vector<PortStats> stats;
    std::uint64_t data = 0;
    for (NodeId n = 0; n < s.fabric.size(); ++n) {
      const auto& node = s.fabric.node(n);
      for (std::size_t p = 1; p < node.ports.size(); ++p) {
        const auto& c = node.ports[p].counters;
        stats.push_back(PortStats{c.xmit_wait, c.xmit_data, c.symbol_errors,
                                  c.congestion_marks});
        data += c.xmit_data;
      }
    }
    return std::pair{stats, data};
  };
  const auto [off, off_data] = run(false);
  const auto [on, on_data] = run(true);
  ASSERT_EQ(off.size(), on.size());
  for (std::size_t i = 0; i < off.size(); ++i) {
    EXPECT_EQ(off[i].xmit_wait, on[i].xmit_wait) << "port " << i;
    EXPECT_EQ(off[i].symbol_errors, on[i].symbol_errors) << "port " << i;
    EXPECT_EQ(off[i].congestion_marks, on[i].congestion_marks)
        << "port " << i;
    EXPECT_LE(off[i].xmit_data, on[i].xmit_data) << "port " << i;
  }
  EXPECT_GT(on_data, off_data);  // the telemetry overhead is PMA-visible
}

TEST(CreditSimInt, DeepPathsTruncateAtTheStackBound) {
  // A long ring path outgrows a 2-hop stack bound: the record is delivered
  // truncated, and hops stop being appended (bounded overhead).
  RoutedRing ring(EngineKind::kUpDown, /*switches=*/7);
  std::vector<FlowSpec> flows{FlowSpec{
      ring.hosts[0], ring.fabric.node(ring.hosts[4]).lid(), 3, 0}};
  perf::IntCollector collector;
  CreditSimConfig config;
  config.int_mode.enabled = true;
  config.int_mode.max_hops = 2;
  config.int_mode.sink = &collector;
  const auto report = fabric::simulate_flows(ring.fabric, flows, config);
  EXPECT_TRUE(report.all_delivered());
  EXPECT_EQ(report.int_stacks_truncated, 3u);
  EXPECT_EQ(collector.stacks(), 3u);
  for (const auto& [key, flow] : collector.flows()) {
    EXPECT_EQ(flow.truncated, 3u);
  }
  const auto map = collector.build_map(8);
  EXPECT_EQ(map.truncated, 3u);
  EXPECT_EQ(map.hops, 6u);  // 2 hops per packet, never more
}

TEST(CreditSimInt, InvalidIntConfigThrows) {
  auto s = test::PhysicalSubnet::small_fat_tree();
  s.sm->full_sweep();
  std::vector<FlowSpec> flows{
      FlowSpec{s.hosts[0], s.fabric.node(s.hosts[1]).lid(), 1, 0}};
  CreditSimConfig bad;
  bad.int_mode.enabled = true;
  bad.int_mode.max_hops = 0;
  EXPECT_THROW(fabric::simulate_flows(s.fabric, flows, bad),
               std::invalid_argument);
  bad.int_mode.max_hops = 8;
  bad.int_mode.sample_rate = 1.5;
  EXPECT_THROW(fabric::simulate_flows(s.fabric, flows, bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace ibvs
