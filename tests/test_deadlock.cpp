#include <gtest/gtest.h>

#include "deadlock/analysis.hpp"
#include "routing/verify.hpp"
#include "topology/fat_tree.hpp"
#include "topology/hosts.hpp"
#include "topology/irregular.hpp"

namespace ibvs {
namespace {

using routing::EngineKind;

TEST(DependencyDigraph, FindsCycles) {
  deadlock::DependencyDigraph g(4);
  g.add(0, 1);
  g.add(1, 2);
  EXPECT_TRUE(g.acyclic());
  g.add(2, 0);
  EXPECT_FALSE(g.acyclic());
  const auto cycle = g.find_cycle();
  ASSERT_EQ(cycle.size(), 3u);
  // The cycle contains exactly channels 0, 1, 2.
  std::vector<std::uint32_t> sorted = cycle;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<std::uint32_t>{0, 1, 2}));
}

TEST(DependencyDigraph, DeduplicatesEdges) {
  deadlock::DependencyDigraph g(3);
  g.add(0, 1);
  g.add(0, 1);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_THROW(g.add(0, 5), std::invalid_argument);
}

struct RoutedTopo {
  Fabric fabric;
  LidMap lids;
  routing::RoutingResult result;
};

std::unique_ptr<RoutedTopo> route_ring(EngineKind engine,
                                       std::size_t switches = 6) {
  auto rt = std::make_unique<RoutedTopo>();
  const auto built = topology::build_ring(rt->fabric, switches, 2, 8);
  const auto hosts = topology::attach_hosts(rt->fabric, built.host_slots);
  for (NodeId sw : rt->fabric.switch_ids())
    rt->lids.assign_next(rt->fabric, sw, 0);
  for (NodeId host : hosts) rt->lids.assign_next(rt->fabric, host, 1);
  rt->result = routing::make_engine(engine)->compute(rt->fabric, rt->lids);
  return rt;
}

std::unique_ptr<RoutedTopo> route_torus(EngineKind engine) {
  auto rt = std::make_unique<RoutedTopo>();
  const auto built = topology::build_torus_2d(rt->fabric, 4, 4, 1, 8);
  const auto hosts = topology::attach_hosts(rt->fabric, built.host_slots);
  for (NodeId sw : rt->fabric.switch_ids())
    rt->lids.assign_next(rt->fabric, sw, 0);
  for (NodeId host : hosts) rt->lids.assign_next(rt->fabric, host, 1);
  rt->result = routing::make_engine(engine)->compute(rt->fabric, rt->lids);
  return rt;
}

TEST(DeadlockAnalysis, MinHopOnRingHasCycle) {
  // Minimal routing on a ring without VLs is the textbook deadlock: the CDG
  // of the single lane must contain a cycle (with >= 5 switches, traffic
  // wraps in both directions all the way around).
  const auto rt = route_ring(EngineKind::kMinHop);
  const auto report = deadlock::analyze_routing(rt->result);
  EXPECT_FALSE(report.deadlock_free());
  ASSERT_FALSE(report.per_vl.empty());
  EXPECT_FALSE(report.per_vl[0].cycle.empty());
}

TEST(DeadlockAnalysis, UpDownOnRingIsDeadlockFree) {
  const auto rt = route_ring(EngineKind::kUpDown);
  EXPECT_TRUE(routing::verify_routing(rt->result).ok);
  const auto report = deadlock::analyze_routing(rt->result);
  EXPECT_TRUE(report.deadlock_free());
  EXPECT_EQ(rt->result.num_vls, 1u);
}

TEST(DeadlockAnalysis, DfssspOnRingLayersAreAcyclic) {
  const auto rt = route_ring(EngineKind::kDfsssp);
  EXPECT_TRUE(routing::verify_routing(rt->result).ok);
  const auto report = deadlock::analyze_routing(rt->result);
  EXPECT_TRUE(report.deadlock_free());
  // The ring forces DFSSSP to actually use more than one virtual lane.
  EXPECT_GT(rt->result.num_vls, 1u);
}

TEST(DeadlockAnalysis, LashOnRingLayersAreAcyclic) {
  const auto rt = route_ring(EngineKind::kLash);
  EXPECT_TRUE(routing::verify_routing(rt->result).ok);
  const auto report = deadlock::analyze_routing(rt->result);
  EXPECT_TRUE(report.deadlock_free());
  EXPECT_GT(rt->result.num_vls, 1u);
}

TEST(DeadlockAnalysis, DfssspOnTorusLayersAreAcyclic) {
  const auto rt = route_torus(EngineKind::kDfsssp);
  EXPECT_TRUE(routing::verify_routing(rt->result).ok);
  EXPECT_TRUE(deadlock::analyze_routing(rt->result).deadlock_free());
}

TEST(DeadlockAnalysis, LashOnTorusLayersAreAcyclic) {
  const auto rt = route_torus(EngineKind::kLash);
  EXPECT_TRUE(routing::verify_routing(rt->result).ok);
  EXPECT_TRUE(deadlock::analyze_routing(rt->result).deadlock_free());
}

TEST(DeadlockAnalysis, UpDownOnIrregularGraphsIsDeadlockFree) {
  for (std::uint64_t seed : {1ull, 7ull, 13ull, 99ull}) {
    RoutedTopo rt;
    const auto built = topology::build_irregular(
        rt.fabric, topology::IrregularParams{.num_switches = 12,
                                             .hosts_per_switch = 2,
                                             .extra_links = 8,
                                             .radix = 12,
                                             .seed = seed});
    const auto hosts = topology::attach_hosts(rt.fabric, built.host_slots);
    for (NodeId sw : rt.fabric.switch_ids())
      rt.lids.assign_next(rt.fabric, sw, 0);
    for (NodeId host : hosts) rt.lids.assign_next(rt.fabric, host, 1);
    rt.result = routing::make_engine(EngineKind::kUpDown)
                    ->compute(rt.fabric, rt.lids);
    EXPECT_TRUE(routing::verify_routing(rt.result).ok) << "seed " << seed;
    EXPECT_TRUE(deadlock::analyze_routing(rt.result).deadlock_free())
        << "seed " << seed;
  }
}

TEST(DeadlockAnalysis, FatTreeMinHopIsNaturallyAcyclic) {
  RoutedTopo rt;
  const auto built = topology::build_two_level_fat_tree(
      rt.fabric, topology::TwoLevelParams{.num_leaves = 4,
                                          .num_spines = 2,
                                          .hosts_per_leaf = 3,
                                          .radix = 8});
  const auto hosts = topology::attach_hosts(rt.fabric, built.host_slots);
  for (NodeId sw : rt.fabric.switch_ids())
    rt.lids.assign_next(rt.fabric, sw, 0);
  for (NodeId host : hosts) rt.lids.assign_next(rt.fabric, host, 1);
  rt.result =
      routing::make_engine(EngineKind::kMinHop)->compute(rt.fabric, rt.lids);
  EXPECT_TRUE(deadlock::analyze_routing(rt.result).deadlock_free());
}

TEST(TransitionAnalysis, CoexistingOldAndNewRoutesCanCycle) {
  // Craft the §VI-C hazard on a ring: the old route sends a LID clockwise,
  // the new route counter-clockwise; their union around the ring plus the
  // stable traffic closes a dependency cycle that neither function has
  // alone. analyze_transition must surface it.
  const auto rt = route_ring(EngineKind::kUpDown, 6);
  const auto& g = rt->result.graph;

  // Pick an endpoint LID attached at switch 0.
  Lid moved;
  for (const auto& t : g.targets) {
    if (t.sw == 0 && t.port != 0) {
      moved = t.lid;
      break;
    }
  }
  ASSERT_TRUE(moved.valid());

  // New tables: the LID "moves" to the diametrically opposite switch and is
  // routed the opposite way around than up*/down* would.
  std::vector<Lft> new_lfts = rt->result.lfts;
  const std::size_t s_count = g.num_switches();
  for (routing::SwitchIdx s = 0; s < s_count; ++s) {
    // Force clockwise forwarding: the edge to switch (s+1) % n.
    const auto [first, last] = g.out(s);
    for (const auto* e = first; e != last; ++e) {
      if (e->to == (s + 1) % s_count) {
        new_lfts[s].set(moved, e->out_port);
        break;
      }
    }
  }
  std::vector<Lid> stable;
  for (const auto& t : g.targets) {
    if (t.lid != moved) stable.push_back(t.lid);
  }

  const auto report = deadlock::analyze_transition(
      g, rt->result.lfts, new_lfts, {moved}, stable);
  EXPECT_TRUE(report.transient_cycle_possible);
  EXPECT_FALSE(report.cycle.empty());
  EXPECT_GT(report.union_dependencies, 0u);
}

TEST(TransitionAnalysis, IdenticalTablesAreClean) {
  const auto rt = route_ring(EngineKind::kUpDown, 6);
  std::vector<Lid> all;
  for (const auto& t : rt->result.graph.targets) all.push_back(t.lid);
  const auto report = deadlock::analyze_transition(
      rt->result.graph, rt->result.lfts, rt->result.lfts, all, {});
  EXPECT_FALSE(report.transient_cycle_possible);
}

}  // namespace
}  // namespace ibvs
