// SM election, failover, and the §IV "SM in a VM" architectural point.
#include <gtest/gtest.h>

#include "fabric/trace.hpp"
#include "routing/verify.hpp"
#include "sm/election.hpp"
#include "tests/helpers.hpp"

namespace ibvs {
namespace {

auto engine_factory() {
  return [] { return routing::make_engine(routing::EngineKind::kMinHop); };
}

struct ElectionTest : ::testing::Test {
  test::PhysicalSubnet s = test::PhysicalSubnet::small_fat_tree();
};

TEST_F(ElectionTest, HighestPriorityWins) {
  sm::SmElection election(s.fabric, engine_factory());
  election.add_candidate(s.hosts[0], 3);
  election.add_candidate(s.hosts[1], 7);
  election.add_candidate(s.hosts[2], 5);
  const auto report = election.elect();
  ASSERT_TRUE(report.master.has_value());
  EXPECT_EQ(*report.master, 1u);
  EXPECT_EQ(report.standbys, 2u);
  EXPECT_EQ(election.candidates()[1].state, sm::SmState::kMaster);
  EXPECT_EQ(election.candidates()[0].state, sm::SmState::kStandby);
}

TEST_F(ElectionTest, GuidBreaksTies) {
  sm::SmElection election(s.fabric, engine_factory());
  election.add_candidate(s.hosts[0], 5);
  election.add_candidate(s.hosts[1], 5);  // later node: higher GUID
  const auto report = election.elect();
  ASSERT_TRUE(report.master.has_value());
  EXPECT_EQ(*report.master, 1u);
}

TEST_F(ElectionTest, QP0LessCandidatesAreDisqualified) {
  // A Shared Port VF cannot source SMPs: it never becomes master, whatever
  // its priority — the §IV-A limitation.
  sm::SmElection election(s.fabric, engine_factory());
  election.add_candidate(s.hosts[0], 1);
  election.add_candidate(s.hosts[1], 15, /*qp0_usable=*/false);
  const auto report = election.elect();
  ASSERT_TRUE(report.master.has_value());
  EXPECT_EQ(*report.master, 0u);
  EXPECT_EQ(report.disqualified, 1u);
  EXPECT_EQ(election.candidates()[1].state, sm::SmState::kNotActive);
}

TEST_F(ElectionTest, MasterSweepsAndSubnetWorks) {
  sm::SmElection election(s.fabric, engine_factory());
  election.add_candidate(s.hosts[0], 5);
  election.add_candidate(s.hosts[11], 3);
  election.elect();
  const auto sweep = election.master_sweep();
  EXPECT_EQ(sweep.discovery.nodes_found, 18u);
  EXPECT_TRUE(
      routing::verify_routing(election.master_sm()->routing_result()).ok);
}

TEST_F(ElectionTest, FailoverPreservesAddressingAndHeals) {
  sm::SmElection election(s.fabric, engine_factory());
  election.add_candidate(s.hosts[0], 5);
  election.add_candidate(s.hosts[11], 3);
  election.elect();
  election.master_sweep();
  const Lid host5_before = s.fabric.node(s.hosts[5]).lid();

  // Master dies; a poll notices and the standby takes over.
  election.fail_candidate(0);
  const auto report = election.poll();
  ASSERT_TRUE(report.master.has_value());
  EXPECT_EQ(*report.master, 1u);

  // The takeover adopted the existing LIDs: nothing was renumbered.
  EXPECT_EQ(s.fabric.node(s.hosts[5]).lid(), host5_before);
  EXPECT_TRUE(
      routing::verify_routing(election.master_sm()->routing_result()).ok);
  // And the data path still works end to end.
  EXPECT_TRUE(
      fabric::trace_unicast(s.fabric, s.hosts[3], host5_before).delivered());
}

TEST_F(ElectionTest, TakeoverOfUnchangedSubnetSendsNoLftSmps) {
  sm::SmElection election(s.fabric, engine_factory());
  election.add_candidate(s.hosts[0], 5);
  election.add_candidate(s.hosts[11], 3);
  election.elect();
  election.master_sweep();

  election.fail_candidate(0);
  election.poll();
  // The new master recomputed identical routes; the diff-based
  // distribution found every installed block already correct.
  const auto& counters = election.master_sm()->transport().counters();
  EXPECT_EQ(counters.lft_block_writes, 0u);
}

TEST_F(ElectionTest, NoEligibleCandidates) {
  sm::SmElection election(s.fabric, engine_factory());
  election.add_candidate(s.hosts[0], 5, /*qp0_usable=*/false);
  const auto report = election.elect();
  EXPECT_FALSE(report.master.has_value());
  EXPECT_EQ(election.master_sm(), nullptr);
  EXPECT_THROW(election.master_sweep(), std::invalid_argument);
}

TEST(ElectionVSwitch, SmRunsInsideAVm) {
  // The vSwitch payoff of §IV: a VF is a complete vHCA with its own QP0, so
  // an SM can live in a VM. Boot a virtualized subnet, start a VM, make its
  // VF an SM candidate, kill the bare-metal master, and watch the VM-hosted
  // SM take the subnet over and keep it routable.
  auto s = test::VirtualSubnet::small(core::LidScheme::kPrepopulated);
  s.vsf->boot();
  const auto vm = s.vsf->create_vm(2);
  const NodeId vm_vf = s.vsf->vm_node(vm.vm);

  sm::SmElection election(s.fabric, [] {
    return routing::make_engine(routing::EngineKind::kMinHop);
  });
  election.add_candidate(s.sm_node, 9);
  election.add_candidate(vm_vf, 5, /*qp0_usable=*/true);  // vSwitch: full vHCA
  election.elect();
  election.master_sweep();

  election.fail_candidate(0);
  const auto report = election.poll();
  ASSERT_TRUE(report.master.has_value());
  EXPECT_EQ(*report.master, 1u);  // the VM is now the subnet manager
  // The subnet remains fully functional under the VM-hosted SM.
  EXPECT_TRUE(
      routing::verify_routing(election.master_sm()->routing_result()).ok);
  EXPECT_TRUE(fabric::all_reach(s.fabric, s.pf_nodes(), vm.lid));
}

}  // namespace
}  // namespace ibvs
