#include <gtest/gtest.h>

#include "ib/fabric.hpp"

namespace ibvs {
namespace {

TEST(Fabric, AddAndConnect) {
  Fabric fabric;
  const NodeId sw = fabric.add_switch("sw", 4);
  const NodeId ca = fabric.add_ca("ca");
  EXPECT_EQ(fabric.size(), 2u);
  EXPECT_TRUE(fabric.node(sw).is_switch());
  EXPECT_TRUE(fabric.node(sw).is_physical_switch());
  EXPECT_TRUE(fabric.node(ca).is_ca());
  EXPECT_EQ(fabric.node(sw).num_ports(), 4u);

  fabric.connect(ca, 1, sw, 2);
  const auto peer = fabric.peer(ca, 1);
  ASSERT_TRUE(peer.has_value());
  EXPECT_EQ(peer->first, sw);
  EXPECT_EQ(peer->second, 2);
  fabric.validate();
}

TEST(Fabric, ConnectErrors) {
  Fabric fabric;
  const NodeId sw = fabric.add_switch("sw", 2);
  const NodeId a = fabric.add_ca("a");
  const NodeId b = fabric.add_ca("b");
  fabric.connect(a, 1, sw, 1);
  EXPECT_THROW(fabric.connect(b, 1, sw, 1), std::invalid_argument);  // taken
  EXPECT_THROW(fabric.connect(b, 1, sw, 3), std::invalid_argument);  // range
  EXPECT_THROW(fabric.connect(b, 0, sw, 2), std::invalid_argument);  // port 0
  EXPECT_THROW(fabric.connect(sw, 2, sw, 2), std::invalid_argument);  // self
}

TEST(Fabric, Disconnect) {
  Fabric fabric;
  const NodeId sw = fabric.add_switch("sw", 2);
  const NodeId ca = fabric.add_ca("ca");
  fabric.connect(ca, 1, sw, 1);
  fabric.disconnect(ca, 1);
  EXPECT_FALSE(fabric.peer(ca, 1).has_value());
  EXPECT_FALSE(fabric.peer(sw, 1).has_value());
  EXPECT_THROW(fabric.disconnect(ca, 1), std::invalid_argument);
  // Port is free again.
  fabric.connect(ca, 1, sw, 2);
  fabric.validate();
}

TEST(Fabric, CountsAndIdLists) {
  Fabric fabric;
  fabric.add_switch("p1", 4);
  fabric.add_switch("v1", 4, SwitchFlavor::kVSwitch);
  fabric.add_ca("c1");
  fabric.add_ca("c2", 1, CaRole::kPf);
  fabric.add_ca("c3", 1, CaRole::kVf);
  EXPECT_EQ(fabric.num_switches(true), 1u);
  EXPECT_EQ(fabric.num_switches(false), 2u);
  EXPECT_EQ(fabric.num_cas(), 3u);
  EXPECT_EQ(fabric.switch_ids(true).size(), 1u);
  EXPECT_EQ(fabric.switch_ids(false).size(), 2u);
  EXPECT_EQ(fabric.ca_ids().size(), 3u);
}

TEST(Fabric, LidsOnPorts) {
  Fabric fabric;
  const NodeId sw = fabric.add_switch("sw", 2);
  const NodeId ca = fabric.add_ca("ca");
  fabric.set_lid(sw, 0, Lid{10});
  fabric.set_lid(ca, 1, Lid{11});
  EXPECT_EQ(fabric.node(sw).lid(), Lid{10});
  EXPECT_EQ(fabric.node(ca).lid(), Lid{11});
  // Switch LIDs live on port 0 only.
  EXPECT_THROW(fabric.set_lid(sw, 1, Lid{12}), std::invalid_argument);
}

TEST(Fabric, PhysicalAttachmentDirect) {
  Fabric fabric;
  const NodeId sw = fabric.add_switch("sw", 4);
  const NodeId ca = fabric.add_ca("ca");
  fabric.connect(ca, 1, sw, 3);
  const auto attach = fabric.physical_attachment(ca);
  ASSERT_TRUE(attach.has_value());
  EXPECT_EQ(attach->first, sw);
  EXPECT_EQ(attach->second, 3);
}

TEST(Fabric, PhysicalAttachmentThroughVSwitch) {
  Fabric fabric;
  const NodeId leaf = fabric.add_switch("leaf", 4);
  const NodeId vsw = fabric.add_switch("vsw", 4, SwitchFlavor::kVSwitch);
  const NodeId pf = fabric.add_ca("pf", 1, CaRole::kPf);
  const NodeId vf = fabric.add_ca("vf", 1, CaRole::kVf);
  fabric.connect(vsw, 1, leaf, 2);  // uplink
  fabric.connect(pf, 1, vsw, 2);
  fabric.connect(vf, 1, vsw, 3);

  EXPECT_EQ(fabric.vswitch_uplink(vsw), PortNum{1});
  // PF and VF share the uplink: both attach at (leaf, 2) — the property the
  // dynamic reconfiguration method exploits.
  const auto pf_attach = fabric.physical_attachment(pf);
  const auto vf_attach = fabric.physical_attachment(vf);
  ASSERT_TRUE(pf_attach && vf_attach);
  EXPECT_EQ(*pf_attach, *vf_attach);
  EXPECT_EQ(pf_attach->first, leaf);
  EXPECT_EQ(pf_attach->second, 2);
}

TEST(Fabric, UnattachedEndpointHasNoAttachment) {
  Fabric fabric;
  const NodeId ca = fabric.add_ca("lonely");
  EXPECT_FALSE(fabric.physical_attachment(ca).has_value());
}

TEST(Fabric, GuidsAreUniqueAndFindable) {
  Fabric fabric;
  const NodeId a = fabric.add_ca("a");
  const NodeId b = fabric.add_ca("b");
  EXPECT_NE(fabric.node(a).guid, fabric.node(b).guid);
  EXPECT_EQ(fabric.find_ca_by_guid(fabric.node(b).guid), b);
  EXPECT_FALSE(fabric.find_ca_by_guid(Guid{0x999999}).has_value());
  EXPECT_FALSE(fabric.find_ca_by_guid(kInvalidGuid).has_value());
}

TEST(Fabric, AliasGuidShadowsLookup) {
  Fabric fabric;
  const NodeId vf = fabric.add_ca("vf", 1, CaRole::kVf);
  const Guid vguid = fabric.allocate_guid();
  fabric.node(vf).alias_guid = vguid;
  EXPECT_EQ(fabric.find_ca_by_guid(vguid), vf);
  fabric.node(vf).alias_guid = kInvalidGuid;
  EXPECT_FALSE(fabric.find_ca_by_guid(vguid).has_value());
}

TEST(Fabric, PortCountLimits) {
  Fabric fabric;
  EXPECT_THROW(fabric.add_switch("x", 0), std::invalid_argument);
  EXPECT_THROW(fabric.add_switch("x", 255), std::invalid_argument);
  EXPECT_NO_THROW(fabric.add_switch("x", 254));
  EXPECT_THROW(fabric.add_ca("y", 0), std::invalid_argument);
}

}  // namespace
}  // namespace ibvs
