// Fault injection: link and switch failures, SM re-sweep behaviour, and the
// §V-B disaster-recovery flexibility of spare VFs.
#include <gtest/gtest.h>

#include "fabric/trace.hpp"
#include "routing/verify.hpp"
#include "telemetry/metrics.hpp"
#include "tests/helpers.hpp"

namespace ibvs {
namespace {

TEST(Failures, LinkLossReroutesAfterResweep) {
  auto s = test::PhysicalSubnet::small_fat_tree();
  s.sm->full_sweep();
  // Kill the leaf0 -> spine0 uplink.
  const NodeId leaf0 = s.built.leaves[0];
  const Node& leaf = s.fabric.node(leaf0);
  PortNum uplink = 0;
  for (PortNum p = 1; p <= leaf.num_ports(); ++p) {
    if (leaf.ports[p].connected() &&
        leaf.ports[p].peer == s.built.spines[0]) {
      uplink = p;
      break;
    }
  }
  ASSERT_NE(uplink, 0);
  s.fabric.disconnect(leaf0, uplink);
  s.sm->transport().invalidate_topology();

  // Before the re-sweep some routes are broken (they pointed into the dead
  // link)...
  bool any_broken = false;
  for (NodeId host : s.hosts) {
    for (NodeId dst : s.hosts) {
      if (host != dst &&
          !fabric::trace_unicast(s.fabric, host, s.fabric.node(dst).lid())
               .delivered()) {
        any_broken = true;
      }
    }
  }
  EXPECT_TRUE(any_broken);

  // ...after recompute + distribution everything heals via spine 1.
  s.sm->compute_routes();
  const auto dist = s.sm->distribute_lfts();
  EXPECT_GT(dist.smps, 0u);
  EXPECT_TRUE(routing::verify_routing(s.sm->routing_result()).ok);
  for (NodeId host : s.hosts) {
    for (NodeId dst : s.hosts) {
      if (host == dst) continue;
      EXPECT_TRUE(
          fabric::trace_unicast(s.fabric, host, s.fabric.node(dst).lid())
              .delivered());
    }
  }
}

TEST(Failures, ResweepSendsOnlyChangedBlocks) {
  auto s = test::PhysicalSubnet::small_fat_tree();
  const auto first = s.sm->full_sweep();
  // A no-change recompute distributes nothing...
  s.sm->compute_routes();
  EXPECT_EQ(s.sm->distribute_lfts().smps, 0u);
  // ...and a one-link failure redistributes at most what the first sweep
  // sent (diff-based distribution, not a full reload).
  s.fabric.disconnect(s.built.leaves[0], 4);
  s.sm->transport().invalidate_topology();
  s.sm->compute_routes();
  const auto dist = s.sm->distribute_lfts();
  EXPECT_GT(dist.smps, 0u);
  EXPECT_LE(dist.smps, first.distribution.smps);
}

TEST(Failures, SpineDeathSurvivable) {
  auto s = test::PhysicalSubnet::small_fat_tree();
  s.sm->full_sweep();
  // Disconnect every cable of spine 0: the tree degrades to one spine.
  const NodeId spine = s.built.spines[0];
  for (PortNum p = 1; p <= s.fabric.node(spine).num_ports(); ++p) {
    if (s.fabric.node(spine).ports[p].connected()) {
      s.fabric.disconnect(spine, p);
    }
  }
  s.sm->transport().invalidate_topology();
  s.sm->compute_routes();
  s.sm->distribute_lfts();
  // The dead spine's own LID is unreachable, but all host pairs heal.
  for (NodeId host : s.hosts) {
    for (NodeId dst : s.hosts) {
      if (host == dst) continue;
      EXPECT_TRUE(
          fabric::trace_unicast(s.fabric, host, s.fabric.node(dst).lid())
              .delivered());
    }
  }
}

TEST(Failures, SmpToDisconnectedSwitchIsUndeliverable) {
  auto s = test::PhysicalSubnet::small_fat_tree();
  s.sm->full_sweep();
  const NodeId spine = s.built.spines[1];
  for (PortNum p = 1; p <= s.fabric.node(spine).num_ports(); ++p) {
    if (s.fabric.node(spine).ports[p].connected()) {
      s.fabric.disconnect(spine, p);
    }
  }
  s.sm->transport().invalidate_topology();
  const auto& registry = telemetry::Registry::global();
  const auto exported_before =
      registry.counter_family_total("ibvs_smp_undeliverable_total");
  const std::uint64_t counted_before =
      s.sm->transport().counters().undeliverable;
  std::vector<PortNum> block(kLftBlockSize, kDropPort);
  const auto outcome = s.sm->transport().send_lft_block(spine, 0, block);
  EXPECT_FALSE(outcome.delivered);
  // Counted (the SM tried) but no time accrued for a delivery.
  EXPECT_EQ(outcome.hops, 0u);
  // Both the transport tally and the exported counter record the loss.
  EXPECT_EQ(s.sm->transport().counters().undeliverable, counted_before + 1);
  EXPECT_EQ(registry.counter_family_total("ibvs_smp_undeliverable_total"),
            exported_before + 1);
}

TEST(Failures, HypervisorUplinkLossCutsItsVmsOnly) {
  auto s = test::VirtualSubnet::small(core::LidScheme::kPrepopulated);
  s.vsf->boot();
  const auto victim = s.vsf->create_vm(3);
  const auto bystander = s.vsf->create_vm(4);

  // Cut hypervisor 3's uplink (vSwitch port 1).
  s.fabric.disconnect(s.hyps[3].vswitch, 1);
  EXPECT_FALSE(fabric::trace_unicast(s.fabric, s.hyps[0].pf,
                                     s.vsf->vm(victim.vm).lid)
                   .delivered());
  EXPECT_TRUE(fabric::trace_unicast(s.fabric, s.hyps[0].pf,
                                    s.vsf->vm(bystander.vm).lid)
                  .delivered());
}

TEST(Failures, SpareVfsEnableEvacuation) {
  // §V-B: "having more spare hypervisors and VFs adds flexibility for
  // disaster recovery". A failing hypervisor's VMs evacuate onto spares —
  // live migrations that keep every address.
  auto s = test::VirtualSubnet::small(core::LidScheme::kDynamic);
  s.vsf->boot();
  std::vector<core::VmHandle> vms;
  for (int i = 0; i < 3; ++i) vms.push_back(s.vsf->create_vm(2).vm);

  // Hypervisor 2 reports imminent failure: evacuate everything.
  for (const auto vm : vms) {
    const auto dst = s.vsf->find_free_hypervisor(std::size_t{2});
    ASSERT_TRUE(dst.has_value());
    const auto before = s.vsf->vm(vm).lid;
    s.vsf->migrate_vm(vm, *dst);
    EXPECT_EQ(s.vsf->vm(vm).lid, before);
  }
  // Now the uplink can die without any VM impact.
  s.fabric.disconnect(s.hyps[2].vswitch, 1);
  for (const auto vm : vms) {
    EXPECT_TRUE(fabric::trace_unicast(s.fabric, s.hyps[0].pf,
                                      s.vsf->vm(vm).lid)
                    .delivered());
  }
}

}  // namespace
}  // namespace ibvs
