// Hot-adding hypervisors to a running subnet (§V-B's growth scenario).
#include <gtest/gtest.h>

#include "fabric/trace.hpp"
#include "routing/verify.hpp"
#include "tests/helpers.hpp"

namespace ibvs {
namespace {

using core::LidScheme;

class HotAddTest : public ::testing::TestWithParam<LidScheme> {};

TEST_P(HotAddTest, NewHypervisorJoinsAndHostsVms) {
  // Leave slots 9..11 free for growth (8 hypervisors + SM on slot 8).
  auto s = test::VirtualSubnet::small(GetParam());
  s.vsf->boot();
  const auto before_hyps = s.vsf->hypervisors().size();
  const auto existing = s.vsf->create_vm(0);

  const auto report =
      s.vsf->add_hypervisor(s.built.host_slots[9], 4, "hyp-new");
  EXPECT_EQ(report.hypervisor, before_hyps);
  EXPECT_GT(report.path_computation_seconds, 0.0);  // real PCt, no shortcut
  if (GetParam() == LidScheme::kPrepopulated) {
    EXPECT_EQ(report.lids_assigned, 5u);  // PF + 4 VFs
  } else {
    EXPECT_EQ(report.lids_assigned, 1u);  // PF only
  }
  EXPECT_GT(report.distribution.smps, 0u);
  EXPECT_TRUE(routing::verify_routing(s.sm->routing_result()).ok);

  // The newcomer hosts a VM and everyone can talk to it.
  const auto vm = s.vsf->create_vm(report.hypervisor);
  EXPECT_TRUE(fabric::all_reach(s.fabric, s.pf_nodes(), vm.lid));
  // Pre-existing VMs are untouched.
  EXPECT_TRUE(fabric::all_reach(s.fabric, s.pf_nodes(), existing.lid));
}

TEST_P(HotAddTest, MigrationsToAndFromTheNewcomer) {
  auto s = test::VirtualSubnet::small(GetParam());
  s.vsf->boot();
  const auto vm = s.vsf->create_vm(0);
  const auto report =
      s.vsf->add_hypervisor(s.built.host_slots[10], 4, "hyp-new");

  const auto there = s.vsf->migrate_vm(vm.vm, report.hypervisor);
  EXPECT_GT(there.reconfig.switches_updated, 0u);
  EXPECT_TRUE(fabric::all_reach(s.fabric, s.pf_nodes(), vm.lid));

  const auto back = s.vsf->migrate_vm(vm.vm, 0);
  EXPECT_TRUE(fabric::all_reach(s.fabric, s.pf_nodes(), vm.lid));
  (void)back;
}

TEST_P(HotAddTest, VmStartStaysCheapAfterGrowth) {
  // The asymmetry the schemes are built around: adding a *hypervisor*
  // costs a path computation; adding a *VM* afterwards still does not.
  auto s = test::VirtualSubnet::small(GetParam());
  s.vsf->boot();
  const auto report =
      s.vsf->add_hypervisor(s.built.host_slots[9], 4, "hyp-new");
  const double pc_after_growth = s.sm->routing_result().compute_seconds;
  const auto vm = s.vsf->create_vm(report.hypervisor);
  EXPECT_EQ(s.sm->routing_result().compute_seconds, pc_after_growth);
  EXPECT_TRUE(vm.vm.valid());
}

INSTANTIATE_TEST_SUITE_P(
    BothSchemes, HotAddTest,
    ::testing::Values(LidScheme::kPrepopulated, LidScheme::kDynamic),
    [](const auto& info) {
      return info.param == LidScheme::kPrepopulated ? "prepopulated"
                                                    : "dynamic";
    });

TEST(HotAddGuards, RequiresBoot) {
  auto s = test::VirtualSubnet::small(LidScheme::kDynamic);
  EXPECT_THROW(s.vsf->add_hypervisor(s.built.host_slots[9], 4, "x"),
               std::invalid_argument);
}

}  // namespace
}  // namespace ibvs
